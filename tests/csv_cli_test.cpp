#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/cli.hpp"
#include "common/csv_writer.hpp"
#include "common/logging.hpp"

namespace hetsgd {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = (std::filesystem::temp_directory_path() /
                       "hetsgd_csv_test.csv")
                          .string();
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, HeaderAndRows) {
  {
    CsvWriter csv(path_, {"a", "b", "c"});
    csv.row(std::vector<double>{1.0, 2.5, -3.0});
    csv.row(std::vector<std::string>{"x", "y", "z"});
    csv.flush();
  }
  EXPECT_EQ(read_file(path_), "a,b,c\n1,2.5,-3\nx,y,z\n");
}

TEST_F(CsvTest, DoublesRoundTripPrecision) {
  {
    CsvWriter csv(path_, {"v"});
    csv.row(std::vector<double>{0.1234567891});
    csv.flush();
  }
  std::string content = read_file(path_);
  EXPECT_NE(content.find("0.1234567891"), std::string::npos);
}

TEST_F(CsvTest, PathAccessor) {
  CsvWriter csv(path_, {"v"});
  EXPECT_EQ(csv.path(), path_);
}

class CliTest : public ::testing::Test {
 protected:
  std::vector<char*> make_argv(std::vector<std::string>& args) {
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>("prog"));
    for (auto& a : args) argv.push_back(a.data());
    return argv;
  }
};

TEST_F(CliTest, ParsesAllTypes) {
  bool flag = false;
  std::int64_t count = 5;
  double rate = 0.5;
  std::string name = "default";
  CliParser cli("prog", "test");
  cli.add_flag("verbose", &flag, "flag");
  cli.add_int("count", &count, "int");
  cli.add_double("rate", &rate, "double");
  cli.add_string("name", &name, "string");

  std::vector<std::string> args{"--verbose", "--count", "42",
                                "--rate=2.5", "--name", "hello"};
  auto argv = make_argv(args);
  EXPECT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(flag);
  EXPECT_EQ(count, 42);
  EXPECT_DOUBLE_EQ(rate, 2.5);
  EXPECT_EQ(name, "hello");
}

TEST_F(CliTest, DefaultsWhenAbsent) {
  std::int64_t count = 7;
  CliParser cli("prog", "test");
  cli.add_int("count", &count, "int");
  std::vector<std::string> args{};
  auto argv = make_argv(args);
  EXPECT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(count, 7);
}

TEST_F(CliTest, HelpReturnsFalse) {
  CliParser cli("prog", "test");
  std::vector<std::string> args{"--help"};
  auto argv = make_argv(args);
  EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST_F(CliTest, UsageListsFlags) {
  std::int64_t count = 7;
  CliParser cli("prog", "my description");
  cli.add_int("count", &count, "number of things");
  std::string usage = cli.usage();
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("number of things"), std::string::npos);
  EXPECT_NE(usage.find("default: 7"), std::string::npos);
}

TEST_F(CliTest, UnknownFlagDies) {
  CliParser cli("prog", "test");
  std::vector<std::string> args{"--nope"};
  auto argv = make_argv(args);
  EXPECT_EXIT(cli.parse(static_cast<int>(argv.size()), argv.data()),
              ::testing::ExitedWithCode(2), "unknown flag");
}

TEST_F(CliTest, BadIntegerDies) {
  std::int64_t count = 0;
  CliParser cli("prog", "test");
  cli.add_int("count", &count, "int");
  std::vector<std::string> args{"--count", "abc"};
  auto argv = make_argv(args);
  EXPECT_EXIT(cli.parse(static_cast<int>(argv.size()), argv.data()),
              ::testing::ExitedWithCode(2), "invalid integer");
}

TEST(Logging, ParseLevels) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_TRUE(parse_log_level("debug", level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(parse_log_level("error", level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_FALSE(parse_log_level("bogus", level));
  EXPECT_EQ(level, LogLevel::kError);  // unchanged on failure
}

TEST(Logging, SetAndGet) {
  LogLevel old = log_level();
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  set_log_level(old);
}

}  // namespace
}  // namespace hetsgd
