#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "concurrent/blocking_queue.hpp"
#include "concurrent/mpsc_queue.hpp"
#include "concurrent/sharded_counter.hpp"
#include "concurrent/spin_barrier.hpp"
#include "concurrent/spsc_ring.hpp"
#include "concurrent/thread_pool.hpp"

namespace hetsgd::concurrent {
namespace {

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
}

TEST(BlockingQueue, TryPopEmpty) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BlockingQueue, CloseDrainsThenEnds) {
  BlockingQueue<int> q;
  q.push(1);
  q.close();
  EXPECT_FALSE(q.push(2));
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BlockingQueue, CrossThreadDelivery) {
  BlockingQueue<int> q;
  std::thread producer([&] {
    for (int i = 0; i < 1000; ++i) q.push(i);
    q.close();
  });
  int expected = 0;
  while (auto v = q.pop()) {
    EXPECT_EQ(*v, expected++);
  }
  EXPECT_EQ(expected, 1000);
  producer.join();
}

TEST(MpscQueue, SingleThreadFifo) {
  MpscQueue<int> q;
  q.push(1);
  q.push(2);
  EXPECT_EQ(q.try_pop().value(), 1);
  EXPECT_EQ(q.try_pop().value(), 2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpscQueue, CloseStopsProducersAfterDrain) {
  MpscQueue<int> q;
  q.push(7);
  q.close();
  EXPECT_FALSE(q.push(8));
  EXPECT_EQ(q.pop().value(), 7);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(MpscQueue, MultiProducerCountIntegrity) {
  MpscQueue<int> q;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }
  std::vector<int> seen;
  seen.reserve(kProducers * kPerProducer);
  std::thread consumer([&] {
    for (int i = 0; i < kProducers * kPerProducer; ++i) {
      auto v = q.pop();
      ASSERT_TRUE(v.has_value());
      seen.push_back(*v);
    }
  });
  for (auto& t : producers) t.join();
  consumer.join();
  // Every value delivered exactly once.
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    ASSERT_EQ(seen[static_cast<std::size_t>(i)], i);
  }
  // Per-producer FIFO is implied by the full-order check above only per
  // value; verify explicitly on a fresh queue.
}

TEST(MpscQueue, PerProducerOrderPreserved) {
  MpscQueue<std::pair<int, int>> q;
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 3000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push({p, i}));
      }
    });
  }
  std::vector<int> next(kProducers, 0);
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(v->second, next[static_cast<std::size_t>(v->first)]++);
  }
  for (auto& t : producers) t.join();
}

// Stress the close() vs pop_for() interleaving: consumers parked inside
// pop_for's sleep/wake protocol must all wake and observe the drain-then-
// nullopt sequence when producers race a close. Exercises the sleeping_
// flag handshake under contention (a lost wakeup here -> this test hangs
// until the 2s pop_for deadline and the count check fails).
TEST(MpscQueue, ClosePopForInterleavingStress) {
  constexpr int kRounds = 50;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 40;
  for (int round = 0; round < kRounds; ++round) {
    MpscQueue<int> q;
    std::atomic<int> pushed{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&] {
        for (int i = 0; i < kPerProducer; ++i) {
          // After close, push must reject; count only accepted values.
          if (q.push(i)) pushed.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    int popped = 0;
    std::thread consumer([&] {
      // Mix short-timeout (forces the sleep path) and long-timeout pops.
      for (;;) {
        auto v = q.pop_for(std::chrono::milliseconds(popped % 2 == 0 ? 0 : 2000));
        if (v.has_value()) {
          ++popped;
        } else if (q.closed()) {
          // Drained-and-closed is the only sanctioned nullopt exit here
          // once the final drain below confirms emptiness.
          if (!q.try_pop().has_value()) break;
          ++popped;
        }
        // Timeout on an open queue: keep going.
      }
    });
    // Close mid-stream on even rounds, after the producers on odd rounds,
    // to vary which pushes lose the race.
    if (round % 2 == 0) {
      q.close();
      for (auto& t : producers) t.join();
    } else {
      for (auto& t : producers) t.join();
      q.close();
    }
    consumer.join();
    EXPECT_EQ(popped, pushed.load()) << "round " << round;
  }
}

TEST(SpscRing, PushPop) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  EXPECT_EQ(ring.try_pop().value(), 1);
  EXPECT_EQ(ring.try_pop().value(), 2);
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(SpscRing, FullRejects) {
  SpscRing<int> ring(2);
  EXPECT_EQ(ring.capacity(), 2u);
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  EXPECT_FALSE(ring.try_push(3));
  ring.try_pop();
  EXPECT_TRUE(ring.try_push(3));
}

TEST(SpscRing, CapacityRoundsToPowerOfTwo) {
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(SpscRing, CrossThreadStream) {
  SpscRing<int> ring(64);
  constexpr int kCount = 100000;
  std::thread producer([&] {
    for (int i = 0; i < kCount;) {
      if (ring.try_push(i)) ++i;
    }
  });
  int expected = 0;
  while (expected < kCount) {
    if (auto v = ring.try_pop()) {
      ASSERT_EQ(*v, expected++);
    }
  }
  producer.join();
}

// Index wraparound: with a tiny ring and far more pushes than capacity,
// the monotonically increasing head/tail counters lap the buffer many
// times; masking must keep slots disjoint and FIFO intact. Values carry a
// payload distinct from their index so a masking bug shows up as a value
// mismatch, not just a reorder.
TEST(SpscRing, WraparoundPreservesFifoAcrossManyLaps) {
  SpscRing<std::pair<int, int>> ring(4);  // capacity 4 -> thousands of laps
  constexpr int kCount = 20000;
  std::thread producer([&] {
    for (int i = 0; i < kCount;) {
      if (ring.try_push({i, i * 31 + 7})) {
        ++i;
      } else {
        std::this_thread::yield();  // full: let the consumer drain
      }
    }
  });
  for (int expected = 0; expected < kCount;) {
    if (auto v = ring.try_pop()) {
      ASSERT_EQ(v->first, expected);
      ASSERT_EQ(v->second, expected * 31 + 7);
      ++expected;
    } else {
      std::this_thread::yield();  // empty: let the producer refill
    }
  }
  EXPECT_FALSE(ring.try_pop().has_value());
  producer.join();
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 3u);  // +1 caller lane
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t b, std::size_t e, std::size_t) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RunOnAllUsesDistinctLanes) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> lane_hits(3);
  pool.run_on_all([&](std::size_t lane) {
    ASSERT_LT(lane, 3u);
    lane_hits[lane].fetch_add(1);
  });
  for (auto& h : lane_hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SequentialJobsDoNotInterfere) {
  ThreadPool pool(2);
  std::atomic<long> total{0};
  for (int round = 0; round < 100; ++round) {
    pool.parallel_for(10, [&](std::size_t b, std::size_t e, std::size_t) {
      total.fetch_add(static_cast<long>(e - b));
    });
  }
  EXPECT_EQ(total.load(), 1000);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 0u);
  int x = 0;
  pool.parallel_for(5, [&](std::size_t b, std::size_t e, std::size_t lane) {
    EXPECT_EQ(lane, 0u);
    x += static_cast<int>(e - b);
  });
  EXPECT_EQ(x, 5);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(SpinBarrier, SynchronizesPhases) {
  constexpr std::size_t kThreads = 4;
  SpinBarrier barrier(kThreads);
  std::atomic<int> phase_counter{0};
  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int phase = 0; phase < 50; ++phase) {
        phase_counter.fetch_add(1);
        barrier.arrive_and_wait();
        // After the barrier, all arrivals of this phase are visible.
        if (phase_counter.load() < static_cast<int>(kThreads) * (phase + 1)) {
          ok = false;
        }
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(phase_counter.load(), static_cast<int>(kThreads) * 50);
}

TEST(ShardedCounter, SumsAcrossShards) {
  ShardedCounter counter(8);
  EXPECT_EQ(counter.shard_count(), 8u);
  for (std::size_t s = 0; s < 8; ++s) counter.add(s, s + 1);
  EXPECT_EQ(counter.total(), 36u);
  counter.reset();
  EXPECT_EQ(counter.total(), 0u);
}

TEST(ShardedCounter, ConcurrentIncrements) {
  ShardedCounter counter(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&counter, t] {
      for (int i = 0; i < 100000; ++i) {
        counter.add(static_cast<std::size_t>(t));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.total(), 400000u);
}

}  // namespace
}  // namespace hetsgd::concurrent
