#include "tensor/matrix.hpp"

#include <cstdint>

#include <gtest/gtest.h>

#include "tensor/buffer.hpp"

namespace hetsgd::tensor {
namespace {

TEST(AlignedBuffer, AlignmentIs64) {
  AlignedBuffer<Scalar> buf(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 64, 0u);
}

TEST(AlignedBuffer, CopySemantics) {
  AlignedBuffer<Scalar> a(10);
  for (std::size_t i = 0; i < 10; ++i) a[i] = static_cast<Scalar>(i);
  AlignedBuffer<Scalar> b(a);
  EXPECT_EQ(b.size(), 10u);
  b[3] = 99;
  EXPECT_EQ(a[3], 3);  // deep copy
  a = b;
  EXPECT_EQ(a[3], 99);
}

TEST(AlignedBuffer, MoveSemantics) {
  AlignedBuffer<Scalar> a(10);
  a[0] = 42;
  Scalar* p = a.data();
  AlignedBuffer<Scalar> b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b[0], 42);
  EXPECT_TRUE(a.empty());
}

TEST(AlignedBuffer, EmptyBuffer) {
  AlignedBuffer<Scalar> buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.data(), nullptr);
}

TEST(Matrix, ConstructionZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.size(), 12);
  for (Index r = 0; r < 3; ++r) {
    for (Index c = 0; c < 4; ++c) {
      EXPECT_EQ(m(r, c), 0);
    }
  }
}

TEST(Matrix, InitializerList) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m(0, 0), 1);
  EXPECT_EQ(m(1, 2), 6);
}

TEST(Matrix, RowMajorLayout) {
  Matrix m{{1, 2}, {3, 4}};
  EXPECT_EQ(m.data()[0], 1);
  EXPECT_EQ(m.data()[1], 2);
  EXPECT_EQ(m.data()[2], 3);
  EXPECT_EQ(m.data()[3], 4);
  EXPECT_EQ(m.row(1)[0], 3);
}

TEST(Matrix, FillAndZero) {
  Matrix m(2, 2);
  m.fill(7);
  EXPECT_EQ(m(1, 1), 7);
  m.set_zero();
  EXPECT_EQ(m(1, 1), 0);
}

TEST(Matrix, Reshape) {
  Matrix m(2, 6);
  m(1, 5) = 9;
  m.reshape(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m(2, 3), 9);  // same linear position
}

TEST(Matrix, ResizeDiscards) {
  Matrix m(2, 2);
  m.fill(5);
  m.resize(3, 3);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m(0, 0), 0);
  // Same-shape resize keeps contents.
  m.fill(4);
  m.resize(3, 3);
  EXPECT_EQ(m(0, 0), 4);
}

TEST(Matrix, RowsView) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  auto v = m.rows_view(1, 2);
  EXPECT_EQ(v.rows(), 2);
  EXPECT_EQ(v.cols(), 2);
  EXPECT_EQ(v(0, 0), 3);
  EXPECT_EQ(v(1, 1), 6);
  v(0, 0) = 30;
  EXPECT_EQ(m(1, 0), 30);  // view aliases the matrix
}

TEST(Matrix, NestedViews) {
  Matrix m{{1}, {2}, {3}, {4}};
  auto v = m.rows_view(1, 3);
  auto w = v.rows_view(1, 1);
  EXPECT_EQ(w(0, 0), 3);
}

TEST(Matrix, ConstViewFromMutable) {
  Matrix m{{1, 2}};
  MatrixView v = m.view();
  ConstMatrixView cv = v;  // implicit conversion
  EXPECT_EQ(cv(0, 1), 2);
}

TEST(Matrix, SameShape) {
  Matrix a(2, 3), b(2, 3), c(3, 2);
  EXPECT_TRUE(a.same_shape(b));
  EXPECT_FALSE(a.same_shape(c));
}

TEST(Matrix, ShapeStr) {
  Matrix m(5, 7);
  EXPECT_EQ(m.shape_str(), "5x7");
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_DEATH(m.at(2, 0), "out of range");
  EXPECT_DEATH(m.at(0, -1), "out of range");
}

TEST(Matrix, RowsViewBoundsChecked) {
  Matrix m(3, 2);
  EXPECT_DEATH(m.rows_view(2, 2), "out of range");
}

TEST(Matrix, RaggedInitializerDies) {
  EXPECT_DEATH((Matrix{{1, 2}, {3}}), "ragged");
}

}  // namespace
}  // namespace hetsgd::tensor
