// Integration tests: full training runs through the framework for every
// algorithm on a small synthetic problem.
#include "core/trainer.hpp"

#include <cmath>
#include <cstdlib>

#include <gtest/gtest.h>

#include "data/synthetic.hpp"

namespace hetsgd::core {
namespace {

data::Dataset small_dataset(std::uint64_t seed = 11) {
  data::SyntheticSpec spec;
  spec.name = "integration";
  spec.examples = 1024;
  spec.dim = 16;
  spec.classes = 3;
  spec.feature_noise = 0.5;
  spec.seed = seed;
  return data::make_synthetic(spec);
}

TrainingConfig small_config(Algorithm a) {
  TrainingConfig config;
  config.algorithm = a;
  config.mlp.hidden_layers = 1;
  config.mlp.hidden_units = 16;
  config.learning_rate = 1e-3;
  config.time_budget_vseconds = 0.01;
  config.eval_interval_vseconds = 0.002;
  config.gpu.batch = 256;
  config.gpu.min_batch = 64;
  config.gpu.max_batch = 256;
  config.cpu.sim_lanes = 8;  // keep real work small in tests
  config.real_threads = 2;
  // CI runs this suite once per registered backend: HETSGD_BACKEND picks
  // the execution engine for device workers (scripts/check_all.sh gate 1).
  if (const char* env = std::getenv("HETSGD_BACKEND")) config.backend = env;
  return config;
}

class AlgorithmRun : public ::testing::TestWithParam<Algorithm> {};

TEST_P(AlgorithmRun, LossDecreasesWithinBudget) {
  Trainer trainer(small_dataset(), small_config(GetParam()));
  TrainingResult r = trainer.run();
  ASSERT_GE(r.loss_curve.size(), 2u);
  EXPECT_GT(r.initial_loss, 0.0);
  EXPECT_LT(r.final_loss, r.initial_loss) << algorithm_name(GetParam());
  EXPECT_GT(r.epochs, 0.0);
  EXPECT_GT(r.total_vtime, 0.0);
}

TEST_P(AlgorithmRun, UpdatesAttributedToTheRightDevices) {
  Trainer trainer(small_dataset(), small_config(GetParam()));
  TrainingResult r = trainer.run();
  const Algorithm a = GetParam();
  if (algorithm_uses_cpu(a)) {
    EXPECT_GT(r.cpu_updates, 0u);
  } else {
    EXPECT_EQ(r.cpu_updates, 0u);
  }
  if (algorithm_uses_gpu(a)) {
    EXPECT_GT(r.gpu_updates, 0u);
  } else {
    EXPECT_EQ(r.gpu_updates, 0u);
  }
}

TEST_P(AlgorithmRun, BudgetRespected) {
  TrainingConfig config = small_config(GetParam());
  Trainer trainer(small_dataset(), config);
  TrainingResult r = trainer.run();
  // Clocks may overshoot by at most one batch; allow 100% slack.
  EXPECT_LT(r.total_vtime, 2.0 * config.time_budget_vseconds);
}

TEST_P(AlgorithmRun, LossCurveTimesMonotone) {
  Trainer trainer(small_dataset(), small_config(GetParam()));
  TrainingResult r = trainer.run();
  for (std::size_t i = 1; i < r.loss_curve.size(); ++i) {
    EXPECT_GE(r.loss_curve[i].vtime, r.loss_curve[i - 1].vtime);
    EXPECT_GE(r.loss_curve[i].epochs, r.loss_curve[i - 1].epochs);
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, AlgorithmRun,
                         ::testing::Values(Algorithm::kHogwildCpu,
                                           Algorithm::kMinibatchGpu,
                                           Algorithm::kCpuGpuHogbatch,
                                           Algorithm::kAdaptiveHogbatch,
                                           Algorithm::kTensorFlow),
                         [](const auto& param_info) {
                           std::string name = algorithm_name(param_info.param);
                           for (auto& c : name) {
                             if (c == '-' || c == '+') c = '_';
                           }
                           return name;
                         });

TEST(Trainer, MaxEpochsStopsTraining) {
  TrainingConfig config = small_config(Algorithm::kMinibatchGpu);
  config.time_budget_vseconds = 1e9;
  config.max_epochs = 3;
  config.eval_interval_vseconds = 0.0;  // evaluate at epoch boundaries
  Trainer trainer(small_dataset(), config);
  TrainingResult r = trainer.run();
  EXPECT_NEAR(r.epochs, 3.0, 0.01);
}

TEST(Trainer, ReferenceIsDeterministic) {
  TrainingConfig config = small_config(Algorithm::kTensorFlow);
  Trainer trainer(small_dataset(), config);
  TrainingResult a = trainer.run();
  TrainingResult b = trainer.run();
  ASSERT_EQ(a.loss_curve.size(), b.loss_curve.size());
  for (std::size_t i = 0; i < a.loss_curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.loss_curve[i].loss, b.loss_curve[i].loss);
    EXPECT_DOUBLE_EQ(a.loss_curve[i].vtime, b.loss_curve[i].vtime);
  }
}

TEST(Trainer, TensorFlowMirrorsGpuMinibatchStatistically) {
  // Fig. 6: "The overlapped curves confirm that our implementation and
  // TensorFlow are identical" — same per-epoch loss trajectory.
  TrainingConfig config = small_config(Algorithm::kTensorFlow);
  config.eval_interval_vseconds = 0.0;
  config.max_epochs = 3;
  config.time_budget_vseconds = 1e9;
  Trainer tf(small_dataset(), config);
  TrainingResult tf_result = tf.run();

  config.algorithm = Algorithm::kMinibatchGpu;
  Trainer gpu(small_dataset(), config);
  TrainingResult gpu_result = gpu.run();

  // Loss after the same number of epochs should be close (the framework
  // shuffles through a different RNG path, so allow statistical slack).
  EXPECT_NEAR(tf_result.final_loss, gpu_result.final_loss,
              0.15 * tf_result.initial_loss);
}

TEST(Trainer, CpuGpuUpdateDistributionSkewsToCpu) {
  // Fig. 8: under CPU+GPU Hogbatch, CPU updates dominate.
  TrainingConfig config = small_config(Algorithm::kCpuGpuHogbatch);
  Trainer trainer(small_dataset(), config);
  TrainingResult r = trainer.run();
  ASSERT_GT(r.gpu_updates, 0u);
  EXPECT_GT(r.cpu_updates, r.gpu_updates);
}

TEST(Trainer, AdaptiveBalancesUpdatesBetterThanStatic) {
  // Fig. 8: Adaptive moves the distribution toward uniformity.
  TrainingConfig config = small_config(Algorithm::kCpuGpuHogbatch);
  Trainer static_trainer(small_dataset(), config);
  TrainingResult static_r = static_trainer.run();

  config.algorithm = Algorithm::kAdaptiveHogbatch;
  Trainer adaptive_trainer(small_dataset(), config);
  TrainingResult adaptive_r = adaptive_trainer.run();

  auto imbalance = [](const TrainingResult& r) {
    const double total = static_cast<double>(r.cpu_updates + r.gpu_updates);
    return std::abs(static_cast<double>(r.cpu_updates) / total - 0.5);
  };
  EXPECT_LE(imbalance(adaptive_r), imbalance(static_r) + 1e-9);
}

TEST(Trainer, AdaptiveKeepsBatchesWithinThresholds) {
  TrainingConfig config = small_config(Algorithm::kAdaptiveHogbatch);
  Trainer trainer(small_dataset(), config);
  TrainingResult r = trainer.run();
  for (const auto& w : r.workers) {
    if (w.kind == gpusim::DeviceKind::kGpu) {
      EXPECT_GE(w.final_batch, config.gpu.min_batch);
      EXPECT_LE(w.final_batch, config.gpu.max_batch);
    } else {
      EXPECT_GE(w.final_batch,
                config.cpu.sim_lanes * config.cpu.min_examples_per_thread);
      EXPECT_LE(w.final_batch,
                config.cpu.sim_lanes * config.cpu.max_examples_per_thread);
    }
  }
}

TEST(Trainer, UtilizationWithinBounds) {
  TrainingConfig config = small_config(Algorithm::kCpuGpuHogbatch);
  Trainer trainer(small_dataset(), config);
  TrainingResult r = trainer.run();
  for (const auto& w : r.workers) {
    EXPECT_GE(w.mean_utilization, 0.0);
    EXPECT_LE(w.mean_utilization, 1.0);
    EXPECT_GT(w.busy_vtime, 0.0);
    EXPECT_FALSE(w.segments.empty());
  }
}

TEST(Trainer, WorkerSummariesConsistentWithTotals) {
  TrainingConfig config = small_config(Algorithm::kAdaptiveHogbatch);
  Trainer trainer(small_dataset(), config);
  TrainingResult r = trainer.run();
  std::uint64_t updates = 0, examples = 0;
  for (const auto& w : r.workers) {
    updates += w.updates;
    examples += w.examples;
  }
  EXPECT_EQ(updates, r.cpu_updates + r.gpu_updates);
  EXPECT_NEAR(r.epochs,
              static_cast<double>(examples) /
                  static_cast<double>(trainer.dataset().example_count()),
              1e-9);
}

TEST(Trainer, StaticAlgorithmConsumesWholeEpochs) {
  // Algorithm 1 hands out partial tails, so every example of every epoch
  // is processed exactly once.
  TrainingConfig config = small_config(Algorithm::kCpuGpuHogbatch);
  config.time_budget_vseconds = 1e9;
  config.max_epochs = 2;
  config.eval_interval_vseconds = 0.0;
  Trainer trainer(small_dataset(), config);
  TrainingResult r = trainer.run();
  std::uint64_t examples = 0;
  for (const auto& w : r.workers) examples += w.examples;
  EXPECT_EQ(examples, 2u * 1024u);
}

TEST(Trainer, AdaptiveMaySkipEpochTails) {
  // Algorithm 2 only serves full batches; leftovers smaller than every
  // worker's batch are skipped until the reshuffle.
  TrainingConfig config = small_config(Algorithm::kAdaptiveHogbatch);
  config.time_budget_vseconds = 1e9;
  config.max_epochs = 3;
  config.eval_interval_vseconds = 0.0;
  Trainer trainer(small_dataset(), config);
  TrainingResult r = trainer.run();
  std::uint64_t examples = 0;
  for (const auto& w : r.workers) examples += w.examples;
  EXPECT_LE(examples, 3u * 1024u);
  EXPECT_GT(examples, 2u * 1024u);  // tails are small relative to epochs
}

TEST(Trainer, GpuWorkerReportsStalenessUnderConcurrency) {
  TrainingConfig config = small_config(Algorithm::kCpuGpuHogbatch);
  Trainer trainer(small_dataset(), config);
  TrainingResult r = trainer.run();
  for (const auto& w : r.workers) {
    if (w.kind == gpusim::DeviceKind::kGpu) {
      // CPU lanes race with the GPU's upload->merge window; some staleness
      // must be observed across the run.
      EXPECT_GE(w.max_staleness, 0.0);
      EXPECT_GE(w.max_staleness, w.mean_staleness);
    } else {
      EXPECT_EQ(w.mean_staleness, 0.0);
    }
  }
}

TEST(Trainer, OptimizerConfigIsHonored) {
  // Momentum with a tiny rate should still reduce loss, exercising the
  // optimizer plumbing through both worker types.
  TrainingConfig config = small_config(Algorithm::kCpuGpuHogbatch);
  config.optimizer.kind = nn::OptimizerKind::kMomentum;
  config.optimizer.momentum = 0.5;
  Trainer trainer(small_dataset(), config);
  TrainingResult r = trainer.run();
  EXPECT_LT(r.final_loss, r.initial_loss);
}

TEST(Trainer, LrScheduleIsHonored) {
  TrainingConfig config = small_config(Algorithm::kMinibatchGpu);
  config.lr_schedule.kind = nn::LrSchedule::kInverseTime;
  config.lr_schedule.decay = 0.5;
  Trainer trainer(small_dataset(), config);
  TrainingResult r = trainer.run();
  EXPECT_LT(r.final_loss, r.initial_loss);
}

TEST(Trainer, MultiGpuWorkersAllContribute) {
  // The paper's future-work extension: multiple GPU workers, one shared
  // model.
  TrainingConfig config = small_config(Algorithm::kMinibatchGpu);
  config.gpu.worker_count = 3;
  Trainer trainer(small_dataset(), config);
  TrainingResult r = trainer.run();
  std::size_t gpu_workers = 0;
  for (const auto& w : r.workers) {
    if (w.kind == gpusim::DeviceKind::kGpu) {
      ++gpu_workers;
      EXPECT_GT(w.updates, 0u) << w.name;
    }
  }
  EXPECT_EQ(gpu_workers, 3u);
  EXPECT_LT(r.final_loss, r.initial_loss);
}

TEST(Trainer, MoreGpusProcessMoreExamplesPerVirtualSecond) {
  TrainingConfig config = small_config(Algorithm::kMinibatchGpu);
  config.eval_interval_vseconds = config.time_budget_vseconds;  // cheap
  Trainer one(small_dataset(), config);
  TrainingResult r1 = one.run();

  config.gpu.worker_count = 2;
  Trainer two(small_dataset(), config);
  TrainingResult r2 = two.run();

  const double rate1 = r1.epochs / r1.total_vtime;
  const double rate2 = r2.epochs / r2.total_vtime;
  EXPECT_GT(rate2, 1.5 * rate1);
}

TEST(Trainer, MultiGpuAdaptiveStaysWithinThresholds) {
  TrainingConfig config = small_config(Algorithm::kAdaptiveHogbatch);
  config.gpu.worker_count = 2;
  Trainer trainer(small_dataset(), config);
  TrainingResult r = trainer.run();
  for (const auto& w : r.workers) {
    if (w.kind == gpusim::DeviceKind::kGpu) {
      EXPECT_GE(w.final_batch, config.gpu.min_batch);
      EXPECT_LE(w.final_batch, config.gpu.max_batch);
    }
  }
  EXPECT_LT(r.final_loss, r.initial_loss);
}

TEST(Trainer, LossAtAndTimeToLossHelpers) {
  TrainingResult r;
  r.loss_curve = {{0.0, 0.0, 1.0}, {1.0, 0.5, 0.6}, {2.0, 1.0, 0.3}};
  EXPECT_DOUBLE_EQ(r.loss_at(0.5), 1.0);
  EXPECT_DOUBLE_EQ(r.loss_at(1.5), 0.6);
  EXPECT_DOUBLE_EQ(r.loss_at(10.0), 0.3);
  EXPECT_DOUBLE_EQ(r.time_to_loss(0.6), 1.0);
  EXPECT_TRUE(std::isinf(r.time_to_loss(0.1)));
}

TEST(Trainer, HeterogeneousBeatsGpuOnlyInTimeToLoss) {
  // The paper's headline: CPU+GPU reaches a given loss faster than
  // GPU-only on the same budget (Fig. 5).
  TrainingConfig config = small_config(Algorithm::kMinibatchGpu);
  config.time_budget_vseconds = 0.02;
  Trainer gpu_trainer(small_dataset(), config);
  TrainingResult gpu_r = gpu_trainer.run();

  config.algorithm = Algorithm::kCpuGpuHogbatch;
  Trainer het_trainer(small_dataset(), config);
  TrainingResult het_r = het_trainer.run();

  // Heterogeneous must end at least as low (small statistical slack: the
  // async interleaving differs between runs).
  EXPECT_LE(het_r.best_loss, gpu_r.best_loss * 1.2);
  // And it performs far more model updates per virtual second — the
  // paper's core premise: the otherwise-idle CPU contributes a stream of
  // small-batch updates on top of the GPU's.
  const double het_rate = static_cast<double>(het_r.cpu_updates +
                                              het_r.gpu_updates) /
                          het_r.total_vtime;
  const double gpu_rate =
      static_cast<double>(gpu_r.gpu_updates) / gpu_r.total_vtime;
  EXPECT_GT(het_rate, 2.0 * gpu_rate);
}

}  // namespace
}  // namespace hetsgd::core
