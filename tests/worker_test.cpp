// Unit tests for the unified Worker message protocol (both execution
// modes) against a stub coordinator.
#include "core/worker.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "nn/mlp.hpp"

namespace hetsgd::core {
namespace {

// Collects ScheduleWork reports; releases waiters as they arrive.
class StubCoordinator final : public msg::Actor {
 public:
  StubCoordinator() : msg::Actor("stub-coordinator") {}

  std::vector<msg::ScheduleWork> reports() {
    std::lock_guard<std::mutex> lock(mutex_);
    return reports_;
  }

  msg::ScheduleWork wait_for_report(std::size_t index) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return reports_.size() > index; });
    return reports_[index];
  }

  bool acked() const { return acked_.load(); }

 protected:
  bool handle(msg::Envelope envelope) override {
    if (std::holds_alternative<msg::ScheduleWork>(envelope.message)) {
      std::lock_guard<std::mutex> lock(mutex_);
      reports_.push_back(std::get<msg::ScheduleWork>(envelope.message));
      cv_.notify_all();
      return true;
    }
    if (std::holds_alternative<msg::ShutdownAck>(envelope.message)) {
      acked_.store(true);
      return false;
    }
    return true;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<msg::ScheduleWork> reports_;
  std::atomic<bool> acked_{false};
};

struct Rig {
  data::Dataset dataset;
  TrainingConfig config;
  nn::Model model;
  StubCoordinator coordinator;

  Rig()
      : dataset(make_data()), config(make_config()),
        model(make_model(config, dataset)) {}

  static data::Dataset make_data() {
    data::SyntheticSpec spec;
    spec.examples = 512;
    spec.dim = 8;
    spec.classes = 2;
    spec.seed = 3;
    return data::make_synthetic(spec);
  }

  static TrainingConfig make_config() {
    TrainingConfig c;
    c.mlp.hidden_layers = 1;
    c.mlp.hidden_units = 8;
    c.cpu.sim_lanes = 4;
    c.gpu.max_batch = 128;
    c.gpu.batch = 128;
    // CI runs this suite once per registered backend: the leg exports
    // HETSGD_BACKEND and every assertion below must hold unchanged, since
    // trajectories (and so virtual time) are backend-independent.
    if (const char* env = std::getenv("HETSGD_BACKEND")) {
      c.backend = env;
    }
    return c;
  }

  static nn::Model make_model(TrainingConfig& c, const data::Dataset& d) {
    c.mlp.input_dim = d.dim();
    c.mlp.num_classes = d.num_classes();
    Rng rng(1);
    return nn::Model(c.mlp, rng);
  }

  msg::ExecuteWork work(std::uint64_t begin, std::uint64_t size) {
    msg::ExecuteWork w;
    w.batch_begin = begin;
    w.batch_size = size;
    return w;
  }
};

TEST(CpuWorkerProtocol, ExecuteProducesReportAndUpdatesModel) {
  Rig rig;
  nn::Model before = rig.model;
  Worker worker(0, rig.config, rig.dataset, rig.model, rig.coordinator,
                ExecMode::kHogwild, 2);
  rig.coordinator.start();
  worker.start();

  worker.send({msg::kCoordinator, rig.work(0, 8)});
  msg::ScheduleWork report = rig.coordinator.wait_for_report(0);
  EXPECT_EQ(report.worker, 0);
  EXPECT_EQ(report.examples, 8u);
  // 8 examples / 4 lanes -> sub-batch 2 -> 4 updates at beta=1.
  EXPECT_EQ(report.updates, 4u);
  EXPECT_GT(report.clock_vtime, 0.0);
  EXPECT_GT(report.busy_vtime, 0.0);
  EXPECT_GT(report.intensity, 0.0);
  EXPECT_GT(rig.model.max_abs_diff(before), 0.0);  // Hogwild wrote the model

  worker.send({msg::kCoordinator, msg::Shutdown{}});
  worker.join();
  // The stub's loop exits when it processes the ShutdownAck; joining it
  // orders the acked() read after that handling.
  rig.coordinator.join();
  EXPECT_TRUE(rig.coordinator.acked());
}

TEST(CpuWorkerProtocol, UpdatesAccumulateAcrossBatches) {
  Rig rig;
  Worker worker(0, rig.config, rig.dataset, rig.model, rig.coordinator,
                ExecMode::kHogwild, 2);
  rig.coordinator.start();
  worker.start();
  worker.send({msg::kCoordinator, rig.work(0, 8)});
  worker.send({msg::kCoordinator, rig.work(8, 8)});
  msg::ScheduleWork second = rig.coordinator.wait_for_report(1);
  EXPECT_EQ(second.updates, 8u);
  EXPECT_GT(second.clock_vtime,
            rig.coordinator.wait_for_report(0).clock_vtime);
  worker.send({msg::kCoordinator, msg::Shutdown{}});
  worker.join();
  rig.coordinator.join();
}

TEST(CpuWorkerProtocol, BetaScalesReportedUpdates) {
  Rig rig;
  rig.config.beta = 0.5;
  Worker worker(0, rig.config, rig.dataset, rig.model, rig.coordinator,
                ExecMode::kHogwild, 2);
  rig.coordinator.start();
  worker.start();
  worker.send({msg::kCoordinator, rig.work(0, 8)});
  msg::ScheduleWork report = rig.coordinator.wait_for_report(0);
  EXPECT_EQ(report.updates, 2u);  // 4 sub-batches * beta 0.5
  worker.send({msg::kCoordinator, msg::Shutdown{}});
  worker.join();
  rig.coordinator.join();
}

TEST(CpuWorkerProtocol, NotBeforeAdvancesClock) {
  Rig rig;
  Worker worker(0, rig.config, rig.dataset, rig.model, rig.coordinator,
                ExecMode::kHogwild, 2);
  rig.coordinator.start();
  worker.start();
  msg::ExecuteWork w = rig.work(0, 8);
  w.not_before = 5.0;  // epoch barrier in the future
  worker.send({msg::kCoordinator, w});
  msg::ScheduleWork report = rig.coordinator.wait_for_report(0);
  EXPECT_GT(report.clock_vtime, 5.0);
  worker.send({msg::kCoordinator, msg::Shutdown{}});
  worker.join();
  rig.coordinator.join();
}

TEST(GpuWorkerProtocol, ExecuteProducesReportAndMergesGradient) {
  Rig rig;
  nn::Model before = rig.model;
  Worker worker(0, rig.config, rig.dataset, rig.model, rig.coordinator,
                ExecMode::kReplica);
  rig.coordinator.start();
  worker.start();

  worker.send({msg::kCoordinator, rig.work(0, 128)});
  msg::ScheduleWork report = rig.coordinator.wait_for_report(0);
  EXPECT_EQ(report.updates, 1u);  // one mini-batch = one update
  EXPECT_EQ(report.examples, 128u);
  EXPECT_GT(report.clock_vtime, 0.0);
  EXPECT_GT(report.intensity, 0.0);
  EXPECT_LE(report.intensity, 1.0);
  EXPECT_GT(rig.model.max_abs_diff(before), 0.0);

  worker.send({msg::kCoordinator, msg::Shutdown{}});
  worker.join();
  // As above: join the stub before reading acked() so the ack has been
  // dequeued, not merely sent.
  rig.coordinator.join();
  EXPECT_TRUE(rig.coordinator.acked());
}

TEST(GpuWorkerProtocol, StalenessZeroWithoutConcurrentWriters) {
  Rig rig;
  Worker worker(0, rig.config, rig.dataset, rig.model, rig.coordinator,
                ExecMode::kReplica);
  rig.coordinator.start();
  worker.start();
  worker.send({msg::kCoordinator, rig.work(0, 64)});
  msg::ScheduleWork report = rig.coordinator.wait_for_report(0);
  // No other worker touched the model between upload and merge.
  EXPECT_EQ(report.staleness, 0.0);
  worker.send({msg::kCoordinator, msg::Shutdown{}});
  worker.join();
  rig.coordinator.join();
}

TEST(GpuWorkerProtocol, GpuClockIncludesTransfersAndKernels) {
  Rig rig;
  Worker worker(0, rig.config, rig.dataset, rig.model, rig.coordinator,
                ExecMode::kReplica);
  rig.coordinator.start();
  worker.start();
  worker.send({msg::kCoordinator, rig.work(0, 128)});
  msg::ScheduleWork report = rig.coordinator.wait_for_report(0);
  // At least the model upload + download at PCIe bandwidth. The charge is
  // backend-independent: every backend models config.gpu.spec.
  backend::PerfModel perf(rig.config.gpu.spec);
  const std::uint64_t model_bytes =
      rig.model.parameter_count() * sizeof(tensor::Scalar);
  EXPECT_GT(report.clock_vtime, 2.0 * perf.transfer_seconds(model_bytes) -
                                    2.0 * perf.spec().link_latency_seconds);
  worker.send({msg::kCoordinator, msg::Shutdown{}});
  worker.join();
  rig.coordinator.join();
}

TEST(GpuWorkerProtocol, ShutdownReleasesDeviceBuffers) {
  Rig rig;
  Worker worker(0, rig.config, rig.dataset, rig.model, rig.coordinator,
                ExecMode::kReplica);
  EXPECT_GT(worker.device_backend().bytes_in_use(), 0u);
  rig.coordinator.start();
  worker.start();
  worker.send({msg::kCoordinator, rig.work(0, 64)});
  rig.coordinator.wait_for_report(0);
  worker.send({msg::kCoordinator, msg::Shutdown{}});
  worker.join();
  rig.coordinator.join();
  // Worker retirement must return the replica to the device allocator: a
  // retired elastic worker cannot pin device memory.
  EXPECT_EQ(worker.device_backend().bytes_in_use(), 0u);
}

TEST(WorkerState, SerializeRestoreRoundTripsBothModes) {
  Rig rig;
  for (ExecMode mode : {ExecMode::kHogwild, ExecMode::kReplica}) {
    Worker worker(0, rig.config, rig.dataset, rig.model, rig.coordinator,
                  mode, 2);
    const std::vector<std::uint8_t> blob = worker.serialize_state();
    ASSERT_FALSE(blob.empty());
    // The pre-seam on-disk tags survive the unification: checkpoints cut
    // by the old CpuWorker/GpuWorker restore into the unified Worker.
    EXPECT_EQ(blob[0], mode == ExecMode::kHogwild ? 'C' : 'G');
    Worker twin(0, rig.config, rig.dataset, rig.model, rig.coordinator,
                mode, 2);
    std::string error;
    EXPECT_TRUE(twin.restore_state(blob, &error)) << error;
    // Cross-mode restore must be refused, not misparsed.
    Worker other(0, rig.config, rig.dataset, rig.model, rig.coordinator,
                 mode == ExecMode::kHogwild ? ExecMode::kReplica
                                            : ExecMode::kHogwild,
                 2);
    EXPECT_FALSE(other.restore_state(blob, &error));
  }
}

}  // namespace
}  // namespace hetsgd::core
