// Unit tests for CpuWorker / GpuWorker message protocol against a stub
// coordinator.
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <vector>

#include <gtest/gtest.h>

#include "core/cpu_worker.hpp"
#include "core/gpu_worker.hpp"
#include "data/synthetic.hpp"
#include "nn/mlp.hpp"

namespace hetsgd::core {
namespace {

// Collects ScheduleWork reports; releases waiters as they arrive.
class StubCoordinator final : public msg::Actor {
 public:
  StubCoordinator() : msg::Actor("stub-coordinator") {}

  std::vector<msg::ScheduleWork> reports() {
    std::lock_guard<std::mutex> lock(mutex_);
    return reports_;
  }

  msg::ScheduleWork wait_for_report(std::size_t index) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return reports_.size() > index; });
    return reports_[index];
  }

  bool acked() const { return acked_.load(); }

 protected:
  bool handle(msg::Envelope envelope) override {
    if (std::holds_alternative<msg::ScheduleWork>(envelope.message)) {
      std::lock_guard<std::mutex> lock(mutex_);
      reports_.push_back(std::get<msg::ScheduleWork>(envelope.message));
      cv_.notify_all();
      return true;
    }
    if (std::holds_alternative<msg::ShutdownAck>(envelope.message)) {
      acked_.store(true);
      return false;
    }
    return true;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<msg::ScheduleWork> reports_;
  std::atomic<bool> acked_{false};
};

struct Rig {
  data::Dataset dataset;
  TrainingConfig config;
  nn::Model model;
  StubCoordinator coordinator;

  Rig()
      : dataset(make_data()), config(make_config()),
        model(make_model(config, dataset)) {}

  static data::Dataset make_data() {
    data::SyntheticSpec spec;
    spec.examples = 512;
    spec.dim = 8;
    spec.classes = 2;
    spec.seed = 3;
    return data::make_synthetic(spec);
  }

  static TrainingConfig make_config() {
    TrainingConfig c;
    c.mlp.hidden_layers = 1;
    c.mlp.hidden_units = 8;
    c.cpu.sim_lanes = 4;
    c.gpu.max_batch = 128;
    c.gpu.batch = 128;
    return c;
  }

  static nn::Model make_model(TrainingConfig& c, const data::Dataset& d) {
    c.mlp.input_dim = d.dim();
    c.mlp.num_classes = d.num_classes();
    Rng rng(1);
    return nn::Model(c.mlp, rng);
  }

  msg::ExecuteWork work(std::uint64_t begin, std::uint64_t size) {
    msg::ExecuteWork w;
    w.batch_begin = begin;
    w.batch_size = size;
    return w;
  }
};

TEST(CpuWorkerProtocol, ExecuteProducesReportAndUpdatesModel) {
  Rig rig;
  nn::Model before = rig.model;
  CpuWorker worker(0, rig.config, rig.dataset, rig.model, rig.coordinator, 2);
  rig.coordinator.start();
  worker.start();

  worker.send({msg::kCoordinator, rig.work(0, 8)});
  msg::ScheduleWork report = rig.coordinator.wait_for_report(0);
  EXPECT_EQ(report.worker, 0);
  EXPECT_EQ(report.examples, 8u);
  // 8 examples / 4 lanes -> sub-batch 2 -> 4 updates at beta=1.
  EXPECT_EQ(report.updates, 4u);
  EXPECT_GT(report.clock_vtime, 0.0);
  EXPECT_GT(report.busy_vtime, 0.0);
  EXPECT_GT(report.intensity, 0.0);
  EXPECT_GT(rig.model.max_abs_diff(before), 0.0);  // Hogwild wrote the model

  worker.send({msg::kCoordinator, msg::Shutdown{}});
  worker.join();
  EXPECT_TRUE(rig.coordinator.acked());
  rig.coordinator.join();
}

TEST(CpuWorkerProtocol, UpdatesAccumulateAcrossBatches) {
  Rig rig;
  CpuWorker worker(0, rig.config, rig.dataset, rig.model, rig.coordinator, 2);
  rig.coordinator.start();
  worker.start();
  worker.send({msg::kCoordinator, rig.work(0, 8)});
  worker.send({msg::kCoordinator, rig.work(8, 8)});
  msg::ScheduleWork second = rig.coordinator.wait_for_report(1);
  EXPECT_EQ(second.updates, 8u);
  EXPECT_GT(second.clock_vtime,
            rig.coordinator.wait_for_report(0).clock_vtime);
  worker.send({msg::kCoordinator, msg::Shutdown{}});
  worker.join();
  rig.coordinator.join();
}

TEST(CpuWorkerProtocol, BetaScalesReportedUpdates) {
  Rig rig;
  rig.config.beta = 0.5;
  CpuWorker worker(0, rig.config, rig.dataset, rig.model, rig.coordinator, 2);
  rig.coordinator.start();
  worker.start();
  worker.send({msg::kCoordinator, rig.work(0, 8)});
  msg::ScheduleWork report = rig.coordinator.wait_for_report(0);
  EXPECT_EQ(report.updates, 2u);  // 4 sub-batches * beta 0.5
  worker.send({msg::kCoordinator, msg::Shutdown{}});
  worker.join();
  rig.coordinator.join();
}

TEST(CpuWorkerProtocol, NotBeforeAdvancesClock) {
  Rig rig;
  CpuWorker worker(0, rig.config, rig.dataset, rig.model, rig.coordinator, 2);
  rig.coordinator.start();
  worker.start();
  msg::ExecuteWork w = rig.work(0, 8);
  w.not_before = 5.0;  // epoch barrier in the future
  worker.send({msg::kCoordinator, w});
  msg::ScheduleWork report = rig.coordinator.wait_for_report(0);
  EXPECT_GT(report.clock_vtime, 5.0);
  worker.send({msg::kCoordinator, msg::Shutdown{}});
  worker.join();
  rig.coordinator.join();
}

TEST(GpuWorkerProtocol, ExecuteProducesReportAndMergesGradient) {
  Rig rig;
  nn::Model before = rig.model;
  GpuWorker worker(0, rig.config, rig.dataset, rig.model, rig.coordinator);
  rig.coordinator.start();
  worker.start();

  worker.send({msg::kCoordinator, rig.work(0, 128)});
  msg::ScheduleWork report = rig.coordinator.wait_for_report(0);
  EXPECT_EQ(report.updates, 1u);  // one mini-batch = one update
  EXPECT_EQ(report.examples, 128u);
  EXPECT_GT(report.clock_vtime, 0.0);
  EXPECT_GT(report.intensity, 0.0);
  EXPECT_LE(report.intensity, 1.0);
  EXPECT_GT(rig.model.max_abs_diff(before), 0.0);

  worker.send({msg::kCoordinator, msg::Shutdown{}});
  worker.join();
  EXPECT_TRUE(rig.coordinator.acked());
  rig.coordinator.join();
}

TEST(GpuWorkerProtocol, StalenessZeroWithoutConcurrentWriters) {
  Rig rig;
  GpuWorker worker(0, rig.config, rig.dataset, rig.model, rig.coordinator);
  rig.coordinator.start();
  worker.start();
  worker.send({msg::kCoordinator, rig.work(0, 64)});
  msg::ScheduleWork report = rig.coordinator.wait_for_report(0);
  // No other worker touched the model between upload and merge.
  EXPECT_EQ(report.staleness, 0.0);
  worker.send({msg::kCoordinator, msg::Shutdown{}});
  worker.join();
  rig.coordinator.join();
}

TEST(GpuWorkerProtocol, GpuClockIncludesTransfersAndKernels) {
  Rig rig;
  GpuWorker worker(0, rig.config, rig.dataset, rig.model, rig.coordinator);
  rig.coordinator.start();
  worker.start();
  worker.send({msg::kCoordinator, rig.work(0, 128)});
  msg::ScheduleWork report = rig.coordinator.wait_for_report(0);
  // At least the model upload + download at PCIe bandwidth.
  gpusim::PerfModel perf(rig.config.gpu.spec);
  const std::uint64_t model_bytes =
      rig.model.parameter_count() * sizeof(tensor::Scalar);
  EXPECT_GT(report.clock_vtime, 2.0 * perf.transfer_seconds(model_bytes) -
                                    2.0 * perf.spec().link_latency_seconds);
  worker.send({msg::kCoordinator, msg::Shutdown{}});
  worker.join();
  rig.coordinator.join();
}

}  // namespace
}  // namespace hetsgd::core
