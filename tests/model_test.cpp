#include "nn/model.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.hpp"

namespace hetsgd::nn {
namespace {

MlpConfig small_config() {
  MlpConfig c;
  c.input_dim = 10;
  c.num_classes = 3;
  c.hidden_layers = 2;
  c.hidden_units = 8;
  return c;
}

TEST(MlpConfig, LayerShapes) {
  MlpConfig c = small_config();
  auto shapes = c.layer_shapes();
  ASSERT_EQ(shapes.size(), 3u);
  EXPECT_EQ(shapes[0].in, 10);
  EXPECT_EQ(shapes[0].out, 8);
  EXPECT_EQ(shapes[1].in, 8);
  EXPECT_EQ(shapes[1].out, 8);
  EXPECT_EQ(shapes[2].in, 8);
  EXPECT_EQ(shapes[2].out, 3);
}

TEST(MlpConfig, NoHiddenLayers) {
  MlpConfig c = small_config();
  c.hidden_layers = 0;
  auto shapes = c.layer_shapes();
  ASSERT_EQ(shapes.size(), 1u);
  EXPECT_EQ(shapes[0].in, 10);
  EXPECT_EQ(shapes[0].out, 3);
}

TEST(MlpConfig, ParameterCount) {
  MlpConfig c = small_config();
  // 10*8+8 + 8*8+8 + 8*3+3 = 88 + 72 + 27 = 187
  EXPECT_EQ(c.parameter_count(), 187u);
}

TEST(MlpConfig, ValidateRejectsBadConfigs) {
  MlpConfig c = small_config();
  c.input_dim = 0;
  EXPECT_DEATH(c.validate(), "input_dim");
  c = small_config();
  c.num_classes = 1;
  EXPECT_DEATH(c.validate(), "two classes");
}

TEST(Model, ConstructionMatchesConfig) {
  MlpConfig c = small_config();
  Rng rng(1);
  Model m(c, rng);
  EXPECT_EQ(m.layer_count(), 3u);
  EXPECT_EQ(m.parameter_count(), 187u);
  EXPECT_EQ(m.layer(0).weights.rows(), 8);
  EXPECT_EQ(m.layer(0).weights.cols(), 10);
  EXPECT_EQ(m.layer(0).bias.cols(), 8);
}

TEST(Model, ScaledNormalInitStatistics) {
  MlpConfig c;
  c.input_dim = 400;
  c.num_classes = 2;
  c.hidden_layers = 1;
  c.hidden_units = 100;
  c.init = InitScheme::kScaledNormal;
  Rng rng(5);
  Model m(c, rng);
  // stddev should be 1/sqrt(400) = 0.05 for the first layer.
  const auto& w = m.layer(0).weights;
  double sq = tensor::frobenius_norm_sq(w.view()) / w.size();
  EXPECT_NEAR(std::sqrt(sq), 0.05, 0.005);
  // Biases start at zero.
  EXPECT_EQ(tensor::frobenius_norm(m.layer(0).bias.view()), 0.0);
}

TEST(Model, GlorotInitWithinLimits) {
  MlpConfig c = small_config();
  c.init = InitScheme::kGlorotUniform;
  Rng rng(7);
  Model m(c, rng);
  const double limit = std::sqrt(6.0 / (10 + 8));
  const auto& w = m.layer(0).weights;
  for (tensor::Index i = 0; i < w.size(); ++i) {
    EXPECT_LE(std::abs(w.data()[i]), limit);
  }
}

TEST(Model, DeterministicInit) {
  MlpConfig c = small_config();
  Rng r1(9), r2(9);
  Model a(c, r1), b(c, r2);
  EXPECT_EQ(a.max_abs_diff(b), 0.0);
}

TEST(Model, CopyIsDeep) {
  MlpConfig c = small_config();
  Rng rng(11);
  Model a(c, rng);
  Model b = a;
  b.layer(0).weights(0, 0) += 1.0;
  EXPECT_GT(a.max_abs_diff(b), 0.5);
}

TEST(Model, AxpyAppliesUpdate) {
  MlpConfig c = small_config();
  Rng rng(13);
  Model m(c, rng);
  Model g = m;  // gradient with m's values
  Model before = m;
  m.axpy(-0.5, g);
  // m = m - 0.5*m = 0.5*before
  EXPECT_NEAR(m.norm(), 0.5 * before.norm(), 1e-9);
}

TEST(Model, SetZeroAndNorm) {
  MlpConfig c = small_config();
  Rng rng(15);
  Model m(c, rng);
  EXPECT_GT(m.norm(), 0.0);
  m.set_zero();
  EXPECT_EQ(m.norm(), 0.0);
}

TEST(Model, MakeZeroGradient) {
  MlpConfig c = small_config();
  Rng rng(17);
  Model m(c, rng);
  Gradient g = make_zero_gradient(m);
  EXPECT_TRUE(g.same_shape(m));
  EXPECT_EQ(g.norm(), 0.0);
}

TEST(Model, AllFinite) {
  MlpConfig c = small_config();
  Rng rng(19);
  Model m(c, rng);
  EXPECT_TRUE(m.all_finite());
  m.layer(1).weights(0, 0) = std::nan("");
  EXPECT_FALSE(m.all_finite());
}

TEST(Model, SameShapeDetectsMismatch) {
  MlpConfig c = small_config();
  Rng rng(21);
  Model a(c, rng);
  c.hidden_units = 9;
  Model b(c, rng);
  EXPECT_FALSE(a.same_shape(b));
}

TEST(Model, ReinitializeChangesWeights) {
  MlpConfig c = small_config();
  Rng rng(23);
  Model m(c, rng);
  Model before = m;
  m.initialize(rng);
  EXPECT_GT(m.max_abs_diff(before), 0.0);
}

}  // namespace
}  // namespace hetsgd::nn
