#include "gpusim/device.hpp"  // hetsgd-lint: allow(gpusim-include) gpusim subsystem unit test

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gpusim/device_memory.hpp"  // hetsgd-lint: allow(gpusim-include) gpusim subsystem unit test
#include "tensor/ops.hpp"

namespace hetsgd::gpusim {
namespace {

DeviceSpec tiny_gpu() {
  DeviceSpec s = v100_spec();
  s.memory_capacity = 1 << 20;  // 1 MiB for OOM tests
  return s;
}

TEST(DeviceAllocator, TracksUsage) {
  DeviceAllocator alloc(1000);
  alloc.reserve(300);
  alloc.reserve(200);
  EXPECT_EQ(alloc.in_use(), 500u);
  EXPECT_EQ(alloc.peak_usage(), 500u);
  EXPECT_EQ(alloc.allocation_count(), 2u);
  alloc.release(300);
  EXPECT_EQ(alloc.in_use(), 200u);
  EXPECT_EQ(alloc.peak_usage(), 500u);  // peak persists
}

TEST(DeviceAllocator, WouldFit) {
  DeviceAllocator alloc(100);
  EXPECT_TRUE(alloc.would_fit(100));
  alloc.reserve(60);
  EXPECT_TRUE(alloc.would_fit(40));
  EXPECT_FALSE(alloc.would_fit(41));
}

TEST(DeviceAllocator, OomDies) {
  DeviceAllocator alloc(100);
  EXPECT_DEATH(alloc.reserve(101), "out of memory");
}

TEST(DeviceAllocator, OverReleaseDies) {
  DeviceAllocator alloc(100);
  alloc.reserve(10);
  EXPECT_DEATH(alloc.release(11), "more device memory than in use");
}

TEST(DeviceMatrix, RaiiReleasesOnDestruction) {
  DeviceAllocator alloc(1 << 20);
  {
    DeviceMatrix m(&alloc, 10, 10);
    EXPECT_EQ(alloc.in_use(), m.bytes());
    EXPECT_TRUE(m.allocated());
  }
  EXPECT_EQ(alloc.in_use(), 0u);
}

TEST(DeviceMatrix, MoveTransfersOwnership) {
  DeviceAllocator alloc(1 << 20);
  DeviceMatrix a(&alloc, 4, 4);
  const std::uint64_t bytes = a.bytes();
  DeviceMatrix b(std::move(a));
  EXPECT_EQ(alloc.in_use(), bytes);
  EXPECT_FALSE(a.allocated());
  EXPECT_TRUE(b.allocated());
  DeviceMatrix c;
  c = std::move(b);
  EXPECT_EQ(alloc.in_use(), bytes);
  EXPECT_EQ(c.rows(), 4);
}

TEST(Device, AllocOnDevice) {
  Device dev(tiny_gpu());
  DeviceMatrix m = dev.alloc(8, 8);
  EXPECT_EQ(dev.allocator().in_use(), m.bytes());
}

TEST(Device, OomOnHugeAlloc) {
  Device dev(tiny_gpu());
  EXPECT_DEATH(dev.alloc(1024, 1024), "out of memory");
}

TEST(Device, H2DandD2HRoundTrip) {
  Device dev(v100_spec());
  Rng rng(3);
  tensor::Matrix host(13, 7);
  tensor::fill_normal(host.view(), rng, 0, 1);
  DeviceMatrix d = dev.alloc(13, 7);
  double t = dev.copy_to_device(host.view(), d, dev.default_stream(), 0.0);
  EXPECT_GT(t, 0.0);  // transfer charged virtual time
  tensor::Matrix back(13, 7);
  dev.copy_to_host(d, back.view(), dev.default_stream(), t);
  EXPECT_EQ(tensor::max_abs_diff(host.view(), back.view()), 0.0);
  EXPECT_EQ(dev.transfer_count(), 2u);
  EXPECT_EQ(dev.bytes_transferred(), 2 * d.bytes());
}

TEST(Device, GemmKernelMatchesHost) {
  Device dev(v100_spec());
  Rng rng(5);
  tensor::Matrix a(9, 6), b(6, 11), c_host(9, 11);
  tensor::fill_normal(a.view(), rng, 0, 1);
  tensor::fill_normal(b.view(), rng, 0, 1);
  tensor::gemm(tensor::Trans::kNo, tensor::Trans::kNo, 1, a.view(), b.view(),
               0, c_host.view());

  DeviceMatrix da = dev.alloc(9, 6), db = dev.alloc(6, 11),
               dc = dev.alloc(9, 11);
  auto& s = dev.default_stream();
  double t = dev.copy_to_device(a.view(), da, s, 0.0);
  t = dev.copy_to_device(b.view(), db, s, t);
  t = dev.gemm(tensor::Trans::kNo, tensor::Trans::kNo, 1, da, db, 0, dc, s, t);
  tensor::Matrix c_back(9, 11);
  dev.copy_to_host(dc, c_back.view(), s, t);
  EXPECT_LT(tensor::max_abs_diff(c_host.view(), c_back.view()), 1e-12);
  EXPECT_EQ(dev.kernel_count(), 1u);
}

TEST(Device, AxpyScaleBiasKernels) {
  Device dev(v100_spec());
  auto& s = dev.default_stream();
  DeviceMatrix x = dev.alloc(2, 3), y = dev.alloc(2, 3);
  tensor::Matrix hx{{1, 2, 3}, {4, 5, 6}};
  tensor::Matrix hy{{10, 10, 10}, {10, 10, 10}};
  dev.copy_to_device(hx.view(), x, s, 0.0);
  dev.copy_to_device(hy.view(), y, s, 0.0);
  dev.axpy(2, x, y, s, 0.0);
  dev.scale(0.5, y, s, 0.0);
  tensor::Matrix out(2, 3);
  dev.copy_to_host(y, out.view(), s, 0.0);
  EXPECT_DOUBLE_EQ(out(0, 0), 6.0);   // (10 + 2*1) / 2
  EXPECT_DOUBLE_EQ(out(1, 2), 11.0);  // (10 + 2*6) / 2

  DeviceMatrix bias = dev.alloc(1, 3);
  tensor::Matrix hb{{1, 2, 3}};
  dev.copy_to_device(hb.view(), bias, s, 0.0);
  dev.add_row_bias(bias, y, s, 0.0);
  dev.copy_to_host(y, out.view(), s, 0.0);
  EXPECT_DOUBLE_EQ(out(0, 0), 7.0);
}

TEST(Device, SoftmaxAndColSumsKernels) {
  Device dev(v100_spec());
  auto& s = dev.default_stream();
  DeviceMatrix m = dev.alloc(2, 2);
  tensor::Matrix h{{0, 0}, {1, 3}};
  dev.copy_to_device(h.view(), m, s, 0.0);
  dev.softmax_rows(m, s, 0.0);
  tensor::Matrix out(2, 2);
  dev.copy_to_host(m, out.view(), s, 0.0);
  EXPECT_NEAR(out(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(out(1, 0) + out(1, 1), 1.0, 1e-12);

  DeviceMatrix sums = dev.alloc(1, 2);
  dev.col_sums(m, sums, s, 0.0);
  tensor::Matrix hs(1, 2);
  dev.copy_to_host(sums, hs.view(), s, 0.0);
  EXPECT_NEAR(hs(0, 0) + hs(0, 1), 2.0, 1e-12);
}

TEST(Device, ElementwiseTemplate) {
  Device dev(v100_spec());
  auto& s = dev.default_stream();
  DeviceMatrix m = dev.alloc(1, 4);
  tensor::Matrix h{{1, 2, 3, 4}};
  dev.copy_to_device(h.view(), m, s, 0.0);
  dev.elementwise(m, [](tensor::Scalar v) { return v * v; }, s, 0.0);
  tensor::Matrix out(1, 4);
  dev.copy_to_host(m, out.view(), s, 0.0);
  EXPECT_DOUBLE_EQ(out(0, 3), 16.0);
}

TEST(Device, StreamsAreIndependent) {
  Device dev(v100_spec());
  Stream& s1 = dev.default_stream();
  Stream& s2 = dev.create_stream();
  DeviceMatrix a = dev.alloc(64, 64), b = dev.alloc(64, 64),
               c = dev.alloc(64, 64);
  dev.gemm(tensor::Trans::kNo, tensor::Trans::kNo, 1, a, b, 0, c, s1, 0.0);
  EXPECT_GT(s1.completion_time(), 0.0);
  EXPECT_EQ(s2.completion_time(), 0.0);
  double t = dev.synchronize_all(0.0);
  EXPECT_DOUBLE_EQ(t, s1.completion_time());
}

TEST(Device, SynchronizeReturnsMaxOfIssueAndStream) {
  Device dev(v100_spec());
  auto& s = dev.default_stream();
  EXPECT_DOUBLE_EQ(dev.synchronize(s, 5.0), 5.0);
  DeviceMatrix a = dev.alloc(4, 4);
  dev.scale(2, a, s, 10.0);
  EXPECT_GT(dev.synchronize(s, 5.0), 10.0);
}

TEST(Device, CopyShapeMismatchDies) {
  Device dev(v100_spec());
  tensor::Matrix host(2, 3);
  DeviceMatrix d = dev.alloc(3, 2);
  EXPECT_DEATH(dev.copy_to_device(host.view(), d, dev.default_stream(), 0.0),
               "shape mismatch");
}

}  // namespace
}  // namespace hetsgd::gpusim
