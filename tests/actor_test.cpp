#include "msg/actor.hpp"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

namespace hetsgd::msg {
namespace {

// Echoes every ScheduleWork back to a partner as ExecuteWork; exits on
// Shutdown.
class EchoActor final : public Actor {
 public:
  explicit EchoActor(std::string name) : Actor(std::move(name)) {}

  void set_partner(Actor* partner) { partner_ = partner; }
  int received() const { return received_.load(); }

 protected:
  bool handle(Envelope envelope) override {
    if (std::holds_alternative<Shutdown>(envelope.message)) {
      return false;
    }
    received_.fetch_add(1);
    if (partner_ != nullptr &&
        std::holds_alternative<ScheduleWork>(envelope.message)) {
      const auto& req = std::get<ScheduleWork>(envelope.message);
      if (req.updates > 0) {
        ScheduleWork next = req;
        --next.updates;
        partner_->send({0, next});
      } else {
        done_.store(true);
      }
    }
    return true;
  }

 public:
  std::atomic<bool> done_{false};

 private:
  Actor* partner_ = nullptr;
  std::atomic<int> received_{0};
};

TEST(Actor, ProcessesMessagesInOrder) {
  class Recorder final : public Actor {
   public:
    Recorder() : Actor("recorder") {}
    std::vector<std::uint64_t> seen;

   protected:
    bool handle(Envelope envelope) override {
      if (std::holds_alternative<Shutdown>(envelope.message)) return false;
      seen.push_back(std::get<ExecuteWork>(envelope.message).batch_begin);
      return true;
    }
  };
  Recorder recorder;
  recorder.start();
  for (std::uint64_t i = 0; i < 100; ++i) {
    ExecuteWork w;
    w.batch_begin = i;
    recorder.send({kCoordinator, w});
  }
  recorder.send({kCoordinator, Shutdown{}});
  recorder.join();
  ASSERT_EQ(recorder.seen.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(recorder.seen[i], i);
  }
}

TEST(Actor, PingPongBetweenActors) {
  EchoActor a("a"), b("b");
  a.set_partner(&b);
  b.set_partner(&a);
  a.start();
  b.start();
  ScheduleWork kick;
  kick.updates = 500;  // 500 hops between the actors
  a.send({kCoordinator, kick});
  while (!a.done_.load() && !b.done_.load()) {
    std::this_thread::yield();
  }
  a.send({kCoordinator, Shutdown{}});
  b.send({kCoordinator, Shutdown{}});
  a.join();
  b.join();
  EXPECT_EQ(a.received() + b.received(), 501);
}

TEST(Actor, SendAfterExitFailsGracefully) {
  EchoActor a("a");
  a.start();
  a.send({kCoordinator, Shutdown{}});
  a.join();
  EXPECT_FALSE(a.send({kCoordinator, ScheduleWork{}}));
}

TEST(Actor, NameAccessor) {
  EchoActor a("my-worker");
  EXPECT_EQ(a.name(), "my-worker");
  a.start();
  a.send({kCoordinator, Shutdown{}});
  a.join();
}

TEST(Actor, StartStopHooksRunOnActorThread) {
  class Hooked final : public Actor {
   public:
    Hooked() : Actor("hooked") {}
    std::atomic<bool> started{false}, stopped{false};

   protected:
    void on_start() override { started = true; }
    void on_stop() override { stopped = true; }
    bool handle(Envelope) override { return false; }
  };
  Hooked h;
  h.start();
  h.send({kCoordinator, Shutdown{}});
  h.join();
  EXPECT_TRUE(h.started.load());
  EXPECT_TRUE(h.stopped.load());
}

}  // namespace
}  // namespace hetsgd::msg
