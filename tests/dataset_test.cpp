#include "data/dataset.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

namespace hetsgd::data {
namespace {

using tensor::Index;
using tensor::Matrix;

Dataset make_tiny() {
  Matrix features{{1, 10}, {2, 20}, {3, 30}, {4, 40}};
  return Dataset("tiny", std::move(features), {0, 1, 0, 1}, 2);
}

TEST(Dataset, BasicAccessors) {
  Dataset d = make_tiny();
  EXPECT_EQ(d.name(), "tiny");
  EXPECT_EQ(d.example_count(), 4);
  EXPECT_EQ(d.dim(), 2);
  EXPECT_EQ(d.num_classes(), 2);
  EXPECT_EQ(d.feature_bytes(), 8u * sizeof(tensor::Scalar));
}

TEST(Dataset, BatchViewsReferenceRows) {
  Dataset d = make_tiny();
  auto batch = d.batch_features(1, 2);
  EXPECT_EQ(batch.rows(), 2);
  EXPECT_EQ(batch(0, 0), 2);
  EXPECT_EQ(batch(1, 1), 30);
  auto labels = d.batch_labels(1, 2);
  EXPECT_EQ(labels[0], 1);
  EXPECT_EQ(labels[1], 0);
  // Views alias the dataset storage (reference semantics of §V-A).
  EXPECT_EQ(batch.data(), d.features().row(1));
}

TEST(Dataset, BatchOutOfRangeDies) {
  Dataset d = make_tiny();
  EXPECT_DEATH(d.batch_labels(3, 2), "out of range");
  EXPECT_DEATH(d.batch_features(3, 2), "out of range");
}

TEST(Dataset, LabelOutOfRangeDies) {
  Matrix f{{1}};
  EXPECT_DEATH(Dataset("bad", std::move(f), {5}, 2), "label out of range");
}

TEST(Dataset, LabelCountMismatchDies) {
  Matrix f{{1}, {2}};
  EXPECT_DEATH(Dataset("bad", std::move(f), {0}, 2), "label count");
}

TEST(Dataset, ShufflePreservesExampleLabelPairs) {
  // Feature value encodes the label (row i has feature 100*label + i), so
  // pairing survives any permutation check.
  const Index n = 200;
  Matrix f(n, 1);
  std::vector<std::int32_t> labels(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    labels[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(i % 3);
    f(i, 0) = static_cast<tensor::Scalar>(1000 * (i % 3) + i);
  }
  Dataset d("pairs", std::move(f), std::move(labels), 3);
  Rng rng(7);
  d.shuffle(rng);
  std::vector<double> seen;
  for (Index i = 0; i < n; ++i) {
    const double v = d.features()(i, 0);
    const auto label = d.labels()[static_cast<std::size_t>(i)];
    EXPECT_EQ(static_cast<int>(v) / 1000, label) << "pairing broken at " << i;
    seen.push_back(v);
  }
  // Multiset of rows unchanged: residues mod 1000 recover the original row
  // indices exactly once each.
  std::vector<int> residues;
  for (double v : seen) residues.push_back(static_cast<int>(v) % 1000);
  std::sort(residues.begin(), residues.end());
  for (Index i = 0; i < n; ++i) {
    EXPECT_EQ(residues[static_cast<std::size_t>(i)], static_cast<int>(i));
  }
}

TEST(Dataset, ShuffleActuallyPermutes) {
  const Index n = 100;
  Matrix f(n, 1);
  for (Index i = 0; i < n; ++i) f(i, 0) = static_cast<tensor::Scalar>(i);
  Dataset d("perm", std::move(f), std::vector<std::int32_t>(n, 0), 2);
  Rng rng(9);
  d.shuffle(rng);
  int moved = 0;
  for (Index i = 0; i < n; ++i) {
    if (d.features()(i, 0) != static_cast<tensor::Scalar>(i)) ++moved;
  }
  EXPECT_GT(moved, 50);
}

TEST(Dataset, MinMaxScaling) {
  Matrix f{{0, 5, 7}, {10, 5, 14}, {5, 5, 0}};
  Dataset d("scale", std::move(f), {0, 1, 0}, 2);
  d.scale_features_minmax();
  EXPECT_DOUBLE_EQ(d.features()(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(d.features()(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(d.features()(2, 0), 0.5);
  // Constant feature maps to 0.
  EXPECT_DOUBLE_EQ(d.features()(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(d.features()(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(d.features()(0, 2), 0.5);
}

TEST(Dataset, ClassHistogram) {
  Dataset d = make_tiny();
  auto hist = d.class_histogram();
  ASSERT_EQ(hist.size(), 2u);
  EXPECT_EQ(hist[0], 2u);
  EXPECT_EQ(hist[1], 2u);
}

}  // namespace
}  // namespace hetsgd::data
