#include "nn/activation.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace hetsgd::nn {
namespace {

using tensor::Matrix;
using tensor::Scalar;

TEST(Activation, SigmoidValues) {
  EXPECT_NEAR(activation_apply(Activation::kSigmoid, 0.0), 0.5, 1e-12);
  EXPECT_GT(activation_apply(Activation::kSigmoid, 10.0), 0.9999);
  EXPECT_LT(activation_apply(Activation::kSigmoid, -10.0), 0.0001);
}

TEST(Activation, TanhValues) {
  EXPECT_NEAR(activation_apply(Activation::kTanh, 0.0), 0.0, 1e-12);
  EXPECT_NEAR(activation_apply(Activation::kTanh, 1.0), std::tanh(1.0), 1e-12);
}

TEST(Activation, ReluValues) {
  EXPECT_EQ(activation_apply(Activation::kRelu, -3.0), 0.0);
  EXPECT_EQ(activation_apply(Activation::kRelu, 3.0), 3.0);
}

TEST(Activation, IdentityPassesThrough) {
  EXPECT_EQ(activation_apply(Activation::kIdentity, -7.5), -7.5);
}

TEST(Activation, Names) {
  EXPECT_STREQ(activation_name(Activation::kSigmoid), "sigmoid");
  Activation a;
  EXPECT_TRUE(parse_activation("relu", a));
  EXPECT_EQ(a, Activation::kRelu);
  EXPECT_TRUE(parse_activation("tanh", a));
  EXPECT_EQ(a, Activation::kTanh);
  EXPECT_FALSE(parse_activation("swish", a));
}

class ActivationDerivative : public ::testing::TestWithParam<Activation> {};

TEST_P(ActivationDerivative, MatchesFiniteDifference) {
  const Activation act = GetParam();
  const double eps = 1e-6;
  for (double x : {-2.0, -0.5, 0.3, 1.7}) {
    if (act == Activation::kRelu && std::abs(x) < eps) continue;
    const double fx = activation_apply(act, x);
    const double numeric = (activation_apply(act, x + eps) -
                            activation_apply(act, x - eps)) /
                           (2 * eps);
    const double analytic =
        activation_derivative_from_output(act, static_cast<Scalar>(fx));
    EXPECT_NEAR(analytic, numeric, 1e-6)
        << activation_name(act) << " at x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(AllActivations, ActivationDerivative,
                         ::testing::Values(Activation::kIdentity,
                                           Activation::kSigmoid,
                                           Activation::kTanh,
                                           Activation::kRelu));

class ActivationForwardBackward
    : public ::testing::TestWithParam<Activation> {};

TEST_P(ActivationForwardBackward, MatrixFormMatchesScalarForm) {
  const Activation act = GetParam();
  Rng rng(11);
  Matrix m(5, 7);
  tensor::fill_normal(m.view(), rng, 0, 2);
  Matrix orig = m;
  activation_forward(act, m.view());
  for (tensor::Index i = 0; i < m.size(); ++i) {
    EXPECT_NEAR(m.data()[i], activation_apply(act, orig.data()[i]), 1e-12);
  }
  Matrix delta(5, 7);
  delta.fill(1.0);
  activation_backward(act, m.view(), delta.view());
  for (tensor::Index i = 0; i < m.size(); ++i) {
    EXPECT_NEAR(delta.data()[i],
                activation_derivative_from_output(act, m.data()[i]), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(AllActivations, ActivationForwardBackward,
                         ::testing::Values(Activation::kIdentity,
                                           Activation::kSigmoid,
                                           Activation::kTanh,
                                           Activation::kRelu));

TEST(Activation, BackwardShapeMismatchDies) {
  Matrix a(2, 2), d(2, 3);
  EXPECT_DEATH(activation_backward(Activation::kSigmoid, a.view(), d.view()),
               "shape mismatch");
}

}  // namespace
}  // namespace hetsgd::nn
