#include <gtest/gtest.h>

#include "core/update_ledger.hpp"
#include "core/utilization.hpp"

namespace hetsgd::core {
namespace {

msg::ScheduleWork report(msg::WorkerId id, std::uint64_t updates,
                         double busy, double clock, double intensity,
                         std::uint64_t examples) {
  msg::ScheduleWork r;
  r.worker = id;
  r.updates = updates;
  r.busy_vtime = busy;
  r.clock_vtime = clock;
  r.intensity = intensity;
  r.examples = examples;
  return r;
}

TEST(UpdateLedger, RegisterAndReport) {
  UpdateLedger ledger;
  ledger.register_worker(0, "cpu", gpusim::DeviceKind::kCpu, 56);
  ledger.register_worker(1, "gpu", gpusim::DeviceKind::kGpu, 8192);
  EXPECT_EQ(ledger.worker_count(), 2u);
  EXPECT_EQ(ledger.stats(0).current_batch, 56);

  ledger.on_report(report(0, 56, 0.1, 0.1, 0.8, 56));
  ledger.on_report(report(1, 1, 0.05, 0.05, 0.9, 8192));
  ledger.on_report(report(0, 112, 0.2, 0.2, 0.8, 56));

  EXPECT_EQ(ledger.stats(0).updates, 112u);
  EXPECT_EQ(ledger.stats(0).batches, 2u);
  EXPECT_EQ(ledger.stats(0).examples, 112u);
  EXPECT_EQ(ledger.total_updates(), 113u);
  EXPECT_EQ(ledger.total_examples(), 112u + 8192u);
  EXPECT_EQ(ledger.updates_by_kind(gpusim::DeviceKind::kCpu), 112u);
  EXPECT_EQ(ledger.updates_by_kind(gpusim::DeviceKind::kGpu), 1u);
}

TEST(UpdateLedger, InitialRequestDoesNotCountBatch) {
  UpdateLedger ledger;
  ledger.register_worker(0, "cpu", gpusim::DeviceKind::kCpu, 56);
  ledger.on_report(report(0, 0, 0.0, 0.0, 0.0, 0));  // examples == 0
  EXPECT_EQ(ledger.stats(0).batches, 0u);
}

TEST(UpdateLedger, OtherUpdateRange) {
  UpdateLedger ledger;
  ledger.register_worker(0, "a", gpusim::DeviceKind::kCpu, 1);
  ledger.register_worker(1, "b", gpusim::DeviceKind::kGpu, 1);
  ledger.register_worker(2, "c", gpusim::DeviceKind::kGpu, 1);
  ledger.on_report(report(0, 10, 0, 0, 0, 1));
  ledger.on_report(report(1, 20, 0, 0, 0, 1));
  ledger.on_report(report(2, 30, 0, 0, 0, 1));
  std::uint64_t lo = 0, hi = 0;
  ASSERT_TRUE(ledger.other_update_range(0, lo, hi));
  EXPECT_EQ(lo, 20u);
  EXPECT_EQ(hi, 30u);
  ASSERT_TRUE(ledger.other_update_range(2, lo, hi));
  EXPECT_EQ(lo, 10u);
  EXPECT_EQ(hi, 20u);
}

TEST(UpdateLedger, OtherUpdateRangeSingleWorker) {
  UpdateLedger ledger;
  ledger.register_worker(0, "solo", gpusim::DeviceKind::kCpu, 1);
  std::uint64_t lo, hi;
  EXPECT_FALSE(ledger.other_update_range(0, lo, hi));
}

TEST(UpdateLedger, ClockRange) {
  UpdateLedger ledger;
  ledger.register_worker(0, "a", gpusim::DeviceKind::kCpu, 1);
  ledger.register_worker(1, "b", gpusim::DeviceKind::kGpu, 1);
  ledger.on_report(report(0, 1, 0.5, 0.5, 0, 1));
  ledger.on_report(report(1, 1, 2.0, 2.0, 0, 1));
  EXPECT_DOUBLE_EQ(ledger.min_clock(), 0.5);
  EXPECT_DOUBLE_EQ(ledger.max_clock(), 2.0);
}

TEST(UpdateLedger, MonotonicityEnforced) {
  UpdateLedger ledger;
  ledger.register_worker(0, "a", gpusim::DeviceKind::kCpu, 1);
  ledger.on_report(report(0, 10, 1.0, 1.0, 0, 1));
  EXPECT_DEATH(ledger.on_report(report(0, 5, 2.0, 2.0, 0, 1)), "monotone");
  EXPECT_DEATH(ledger.on_report(report(0, 20, 2.0, 0.5, 0, 1)), "backwards");
}

TEST(UpdateLedger, DenseRegistrationEnforced) {
  UpdateLedger ledger;
  EXPECT_DEATH(ledger.register_worker(1, "x", gpusim::DeviceKind::kCpu, 1),
               "densely");
}

TEST(UtilizationMonitor, RecordsSegments) {
  UtilizationMonitor monitor(2);
  monitor.record(0, 0.0, 1.0, 0.5);
  monitor.record(0, 2.0, 3.0, 1.0);
  EXPECT_EQ(monitor.segments(0).size(), 2u);
  EXPECT_TRUE(monitor.segments(1).empty());
}

TEST(UtilizationMonitor, BucketSeriesExactApportioning) {
  UtilizationMonitor monitor(1);
  // Busy [0.5, 1.5] at intensity 1.0 across two 1-second buckets.
  monitor.record(0, 0.5, 1.5, 1.0);
  auto series = monitor.bucket_series(0, 1.0, 2.0);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_NEAR(series[0], 0.5, 1e-12);
  EXPECT_NEAR(series[1], 0.5, 1e-12);
}

TEST(UtilizationMonitor, IntensityScalesBuckets) {
  UtilizationMonitor monitor(1);
  monitor.record(0, 0.0, 2.0, 0.25);
  auto series = monitor.bucket_series(0, 1.0, 2.0);
  EXPECT_NEAR(series[0], 0.25, 1e-12);
  EXPECT_NEAR(series[1], 0.25, 1e-12);
}

TEST(UtilizationMonitor, IdleGapsAreZero) {
  UtilizationMonitor monitor(1);
  monitor.record(0, 0.0, 1.0, 1.0);
  monitor.record(0, 3.0, 4.0, 1.0);
  auto series = monitor.bucket_series(0, 1.0, 4.0);
  ASSERT_EQ(series.size(), 4u);
  EXPECT_NEAR(series[1], 0.0, 1e-12);
  EXPECT_NEAR(series[2], 0.0, 1e-12);
}

TEST(UtilizationMonitor, SegmentsBeyondHorizonClipped) {
  UtilizationMonitor monitor(1);
  monitor.record(0, 0.5, 100.0, 1.0);
  auto series = monitor.bucket_series(0, 1.0, 2.0);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_NEAR(series[0], 0.5, 1e-12);
  EXPECT_NEAR(series[1], 1.0, 1e-12);
}

TEST(UtilizationMonitor, MeanUtilization) {
  UtilizationMonitor monitor(1);
  monitor.record(0, 0.0, 5.0, 0.8);  // busy half the 10s horizon at 0.8
  EXPECT_NEAR(monitor.mean_utilization(0, 10.0), 0.4, 1e-12);
}

TEST(UtilizationMonitor, FloatingPointTailTerminates) {
  // Regression: horizon/buckets rounding used to spin forever when a
  // segment reached past buckets*dt (observed hanging fig7 with
  // horizon = total virtual time of a real run).
  UtilizationMonitor monitor(1);
  const double horizon = 0.0488397199193018;  // from the hanging run
  monitor.record(0, 0.0, horizon, 0.8);
  auto series = monitor.bucket_series(0, horizon / 24.0, horizon);
  ASSERT_EQ(series.size(), 24u);
  for (double u : series) {
    EXPECT_NEAR(u, 0.8, 1e-9);
  }
}

TEST(UtilizationMonitor, ManyIrrationalBucketBoundaries) {
  UtilizationMonitor monitor(1);
  for (int i = 0; i < 100; ++i) {
    monitor.record(0, i * 0.137, i * 0.137 + 0.1, 0.5);
  }
  auto series = monitor.bucket_series(0, 0.0137 * 3, 100 * 0.137);
  EXPECT_FALSE(series.empty());  // reaching here means no infinite loop
}

TEST(UtilizationMonitor, InvalidRecordDies) {
  UtilizationMonitor monitor(1);
  EXPECT_DEATH(monitor.record(0, 2.0, 1.0, 0.5), "ends before");
  EXPECT_DEATH(monitor.record(0, 0.0, 1.0, 1.5), "intensity");
  EXPECT_DEATH(monitor.record(5, 0.0, 1.0, 0.5), "unknown worker");
}

}  // namespace
}  // namespace hetsgd::core
