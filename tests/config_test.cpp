#include "core/config.hpp"

#include <gtest/gtest.h>

namespace hetsgd::core {
namespace {

TEST(Algorithm, NamesRoundTrip) {
  for (Algorithm a :
       {Algorithm::kHogwildCpu, Algorithm::kMinibatchGpu,
        Algorithm::kCpuGpuHogbatch, Algorithm::kAdaptiveHogbatch,
        Algorithm::kTensorFlow}) {
    Algorithm parsed;
    ASSERT_TRUE(parse_algorithm(algorithm_name(a), parsed))
        << algorithm_name(a);
    EXPECT_EQ(parsed, a);
  }
}

TEST(Algorithm, ShortAliases) {
  Algorithm a;
  EXPECT_TRUE(parse_algorithm("cpu", a));
  EXPECT_EQ(a, Algorithm::kHogwildCpu);
  EXPECT_TRUE(parse_algorithm("gpu", a));
  EXPECT_EQ(a, Algorithm::kMinibatchGpu);
  EXPECT_TRUE(parse_algorithm("tf", a));
  EXPECT_EQ(a, Algorithm::kTensorFlow);
  EXPECT_TRUE(parse_algorithm("cpugpu", a));
  EXPECT_EQ(a, Algorithm::kCpuGpuHogbatch);
  EXPECT_FALSE(parse_algorithm("sgd", a));
}

TEST(Algorithm, DeviceUsage) {
  EXPECT_TRUE(algorithm_uses_cpu(Algorithm::kHogwildCpu));
  EXPECT_FALSE(algorithm_uses_gpu(Algorithm::kHogwildCpu));
  EXPECT_FALSE(algorithm_uses_cpu(Algorithm::kMinibatchGpu));
  EXPECT_TRUE(algorithm_uses_gpu(Algorithm::kMinibatchGpu));
  EXPECT_TRUE(algorithm_uses_cpu(Algorithm::kCpuGpuHogbatch));
  EXPECT_TRUE(algorithm_uses_gpu(Algorithm::kCpuGpuHogbatch));
  EXPECT_TRUE(algorithm_uses_cpu(Algorithm::kAdaptiveHogbatch));
  EXPECT_TRUE(algorithm_uses_gpu(Algorithm::kAdaptiveHogbatch));
  EXPECT_FALSE(algorithm_uses_cpu(Algorithm::kTensorFlow));
  EXPECT_TRUE(algorithm_uses_gpu(Algorithm::kTensorFlow));
}

TEST(TrainingConfig, EffectiveLrScalesLinearly) {
  TrainingConfig c;
  c.learning_rate = 1e-3;
  c.scale_lr_with_batch = true;
  c.max_effective_lr = 1e9;  // no cap
  EXPECT_DOUBLE_EQ(c.effective_lr(1), 1e-3);
  EXPECT_DOUBLE_EQ(c.effective_lr(100), 0.1);
}

TEST(TrainingConfig, EffectiveLrCap) {
  TrainingConfig c;
  c.learning_rate = 1e-3;
  c.max_effective_lr = 0.5;
  EXPECT_DOUBLE_EQ(c.effective_lr(10000), 0.5);
}

TEST(TrainingConfig, EffectiveLrWithoutScaling) {
  TrainingConfig c;
  c.learning_rate = 1e-3;
  c.scale_lr_with_batch = false;
  EXPECT_DOUBLE_EQ(c.effective_lr(8192), 1e-3);
}

TEST(TrainingConfig, EffectiveLrZeroBatchTreatedAsOne) {
  TrainingConfig c;
  c.learning_rate = 1e-3;
  EXPECT_DOUBLE_EQ(c.effective_lr(0), 1e-3);
}

TEST(TrainingConfig, DefaultsMatchPaper) {
  TrainingConfig c;
  EXPECT_DOUBLE_EQ(c.alpha, 2.0);  // "set by default to 2"
  EXPECT_DOUBLE_EQ(c.beta, 1.0);   // "the default value determined empirically"
  EXPECT_EQ(c.cpu.sim_lanes, 56);  // 56 of 64 threads (§VII-A)
  EXPECT_EQ(c.cpu.host_threads, 64);
  EXPECT_EQ(c.gpu.batch, 8192);    // batch range 64-8192
  EXPECT_EQ(c.gpu.min_batch, 64);
  EXPECT_EQ(c.cpu.examples_per_thread, 1);      // CPU starts at Hogwild
  EXPECT_EQ(c.cpu.max_examples_per_thread, 64); // 1-64 per thread
}

}  // namespace
}  // namespace hetsgd::core
