#include "tensor/gemm.hpp"

#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace hetsgd::tensor {
namespace {

Matrix random_matrix(Index rows, Index cols, Rng& rng) {
  Matrix m(rows, cols);
  fill_normal(m.view(), rng, 0, 1);
  return m;
}

TEST(GemmNaive, TinyKnownProduct) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix c(2, 2);
  gemm_naive(Trans::kNo, Trans::kNo, 1, a.view(), b.view(), 0, c.view());
  EXPECT_EQ(c(0, 0), 19);
  EXPECT_EQ(c(0, 1), 22);
  EXPECT_EQ(c(1, 0), 43);
  EXPECT_EQ(c(1, 1), 50);
}

TEST(GemmNaive, TransposeA) {
  Matrix a{{1, 3}, {2, 4}};  // a^T = [[1,2],[3,4]]
  Matrix b{{5, 6}, {7, 8}};
  Matrix c(2, 2);
  gemm_naive(Trans::kYes, Trans::kNo, 1, a.view(), b.view(), 0, c.view());
  EXPECT_EQ(c(0, 0), 19);
  EXPECT_EQ(c(1, 1), 50);
}

TEST(GemmNaive, AlphaBeta) {
  Matrix a{{1, 0}, {0, 1}};
  Matrix b{{2, 0}, {0, 2}};
  Matrix c{{1, 1}, {1, 1}};
  gemm_naive(Trans::kNo, Trans::kNo, 3, a.view(), b.view(), 10, c.view());
  EXPECT_EQ(c(0, 0), 16);  // 3*2 + 10*1
  EXPECT_EQ(c(0, 1), 10);
}

struct GemmCase {
  Index m, n, k;
  Trans ta, tb;
  Scalar alpha, beta;
};

class GemmMatchesNaive : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmMatchesNaive, AllShapes) {
  const GemmCase& p = GetParam();
  Rng rng(p.m * 1000003 + p.n * 131 + p.k);
  Matrix a = p.ta == Trans::kNo ? random_matrix(p.m, p.k, rng)
                                : random_matrix(p.k, p.m, rng);
  Matrix b = p.tb == Trans::kNo ? random_matrix(p.k, p.n, rng)
                                : random_matrix(p.n, p.k, rng);
  Matrix c_ref = random_matrix(p.m, p.n, rng);
  Matrix c_fast = c_ref;
  gemm_naive(p.ta, p.tb, p.alpha, a.view(), b.view(), p.beta, c_ref.view());
  gemm(p.ta, p.tb, p.alpha, a.view(), b.view(), p.beta, c_fast.view());
  EXPECT_LT(max_abs_diff(c_ref.view(), c_fast.view()),
            1e-10 * static_cast<Scalar>(p.k + 1));
}

std::vector<GemmCase> gemm_cases() {
  std::vector<GemmCase> cases;
  const Trans kT[] = {Trans::kNo, Trans::kYes};
  // Shapes straddling the blocking boundaries (64/128) plus degenerate
  // 1-row/1-col shapes (matrix-vector, the Hogwild fast path).
  const std::tuple<Index, Index, Index> shapes[] = {
      {1, 1, 1},   {1, 7, 5},    {5, 1, 3},    {3, 4, 1},   {17, 19, 23},
      {64, 64, 64}, {65, 63, 130}, {128, 32, 200}, {200, 130, 64},
  };
  for (auto [m, n, k] : shapes) {
    for (Trans ta : kT) {
      for (Trans tb : kT) {
        cases.push_back({m, n, k, ta, tb, Scalar{1}, Scalar{0}});
      }
    }
  }
  // Alpha/beta variants on one mid-size shape.
  cases.push_back({70, 40, 90, Trans::kNo, Trans::kNo, Scalar{2.5},
                   Scalar{-0.5}});
  cases.push_back({70, 40, 90, Trans::kYes, Trans::kYes, Scalar{-1},
                   Scalar{1}});
  cases.push_back({70, 40, 90, Trans::kNo, Trans::kYes, Scalar{0.1},
                   Scalar{3}});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, GemmMatchesNaive,
                         ::testing::ValuesIn(gemm_cases()));

TEST(Gemm, MatmulWrappers) {
  Rng rng(77);
  const Index b = 13, in = 9, out = 11;
  Matrix x = random_matrix(b, in, rng);
  Matrix w = random_matrix(out, in, rng);
  Matrix y(b, out);
  matmul_nt(x.view(), w.view(), y.view());
  Matrix y_ref(b, out);
  gemm_naive(Trans::kNo, Trans::kYes, 1, x.view(), w.view(), 0, y_ref.view());
  EXPECT_LT(max_abs_diff(y.view(), y_ref.view()), 1e-12);

  Matrix d = random_matrix(b, out, rng);
  Matrix gw(out, in);
  matmul_tn(d.view(), x.view(), gw.view());
  Matrix gw_ref(out, in);
  gemm_naive(Trans::kYes, Trans::kNo, 1, d.view(), x.view(), 0, gw_ref.view());
  EXPECT_LT(max_abs_diff(gw.view(), gw_ref.view()), 1e-12);

  Matrix dx(b, in);
  matmul_nn(d.view(), w.view(), dx.view());
  Matrix dx_ref(b, in);
  gemm_naive(Trans::kNo, Trans::kNo, 1, d.view(), w.view(), 0, dx_ref.view());
  EXPECT_LT(max_abs_diff(dx.view(), dx_ref.view()), 1e-12);
}

TEST(Gemm, ShapeMismatchDies) {
  Matrix a(2, 3), b(4, 2), c(2, 2);
  EXPECT_DEATH(gemm(Trans::kNo, Trans::kNo, 1, a.view(), b.view(), 0, c.view()),
               "inner dimensions");
  Matrix b2(3, 5);
  EXPECT_DEATH(gemm(Trans::kNo, Trans::kNo, 1, a.view(), b2.view(), 0,
                    c.view()),
               "output shape");
}

TEST(Gemm, FlopsFormula) {
  EXPECT_DOUBLE_EQ(gemm_flops(2, 3, 4), 48.0);
  EXPECT_DOUBLE_EQ(gemm_flops(1, 1, 1), 2.0);
}

TEST(Gemm, CheckShapesReturnsDims) {
  Matrix a(5, 7), b(9, 7), c(5, 9);
  GemmDims d = check_gemm_shapes(Trans::kNo, Trans::kYes, a.view(), b.view(),
                                 c.view());
  EXPECT_EQ(d.m, 5);
  EXPECT_EQ(d.n, 9);
  EXPECT_EQ(d.k, 7);
}

}  // namespace
}  // namespace hetsgd::tensor
