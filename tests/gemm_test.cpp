#include "tensor/gemm.hpp"

#include <cmath>
#include <cstdint>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace hetsgd::tensor {
namespace {

Matrix random_matrix(Index rows, Index cols, Rng& rng) {
  Matrix m(rows, cols);
  fill_normal(m.view(), rng, 0, 1);
  return m;
}

TEST(GemmNaive, TinyKnownProduct) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix c(2, 2);
  gemm_naive(Trans::kNo, Trans::kNo, 1, a.view(), b.view(), 0, c.view());
  EXPECT_EQ(c(0, 0), 19);
  EXPECT_EQ(c(0, 1), 22);
  EXPECT_EQ(c(1, 0), 43);
  EXPECT_EQ(c(1, 1), 50);
}

TEST(GemmNaive, TransposeA) {
  Matrix a{{1, 3}, {2, 4}};  // a^T = [[1,2],[3,4]]
  Matrix b{{5, 6}, {7, 8}};
  Matrix c(2, 2);
  gemm_naive(Trans::kYes, Trans::kNo, 1, a.view(), b.view(), 0, c.view());
  EXPECT_EQ(c(0, 0), 19);
  EXPECT_EQ(c(1, 1), 50);
}

TEST(GemmNaive, AlphaBeta) {
  Matrix a{{1, 0}, {0, 1}};
  Matrix b{{2, 0}, {0, 2}};
  Matrix c{{1, 1}, {1, 1}};
  gemm_naive(Trans::kNo, Trans::kNo, 3, a.view(), b.view(), 10, c.view());
  EXPECT_EQ(c(0, 0), 16);  // 3*2 + 10*1
  EXPECT_EQ(c(0, 1), 10);
}

struct GemmCase {
  Index m, n, k;
  Trans ta, tb;
  Scalar alpha, beta;
};

class GemmMatchesNaive : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmMatchesNaive, AllShapes) {
  const GemmCase& p = GetParam();
  Rng rng(p.m * 1000003 + p.n * 131 + p.k);
  Matrix a = p.ta == Trans::kNo ? random_matrix(p.m, p.k, rng)
                                : random_matrix(p.k, p.m, rng);
  Matrix b = p.tb == Trans::kNo ? random_matrix(p.k, p.n, rng)
                                : random_matrix(p.n, p.k, rng);
  Matrix c_ref = random_matrix(p.m, p.n, rng);
  Matrix c_fast = c_ref;
  gemm_naive(p.ta, p.tb, p.alpha, a.view(), b.view(), p.beta, c_ref.view());
  gemm(p.ta, p.tb, p.alpha, a.view(), b.view(), p.beta, c_fast.view());
  EXPECT_LT(max_abs_diff(c_ref.view(), c_fast.view()),
            1e-10 * static_cast<Scalar>(p.k + 1));
}

std::vector<GemmCase> gemm_cases() {
  std::vector<GemmCase> cases;
  const Trans kT[] = {Trans::kNo, Trans::kYes};
  // Ragged shapes straddling every boundary of the packed kernel: the
  // 4x16 register tile, the 64/256/256 cache blocks, the skinny-m
  // fast-path threshold (m < 8), and degenerate 1-row/1-col shapes
  // (matrix-vector, the Hogwild hot path).
  const std::tuple<Index, Index, Index> shapes[] = {
      {1, 1, 1},      {1, 7, 5},      {5, 1, 3},      {3, 4, 1},
      {3, 7, 5},      {4, 16, 8},     {7, 33, 12},    {8, 16, 4},
      {17, 19, 23},   {17, 129, 63},  {64, 64, 64},   {65, 63, 130},
      {5, 300, 260},  {63, 257, 300}, {128, 32, 200}, {200, 130, 64},
  };
  for (auto [m, n, k] : shapes) {
    for (Trans ta : kT) {
      for (Trans tb : kT) {
        cases.push_back({m, n, k, ta, tb, Scalar{1}, Scalar{0}});
      }
    }
  }
  // Full alpha/beta grid {0, 1, -0.5}^2 on two ragged shapes (one inside
  // the skinny fast path, one exercising the packed path across blocks),
  // all four Trans combinations.
  const Scalar kAlphaBeta[] = {Scalar{0}, Scalar{1}, Scalar{-0.5}};
  const std::tuple<Index, Index, Index> ab_shapes[] = {{3, 7, 5},
                                                       {17, 129, 63}};
  for (auto [m, n, k] : ab_shapes) {
    for (Trans ta : kT) {
      for (Trans tb : kT) {
        for (Scalar alpha : kAlphaBeta) {
          for (Scalar beta : kAlphaBeta) {
            cases.push_back({m, n, k, ta, tb, alpha, beta});
          }
        }
      }
    }
  }
  // Off-grid alpha/beta variants on one mid-size shape.
  cases.push_back({70, 40, 90, Trans::kNo, Trans::kNo, Scalar{2.5},
                   Scalar{-0.5}});
  cases.push_back({70, 40, 90, Trans::kYes, Trans::kYes, Scalar{-1},
                   Scalar{1}});
  cases.push_back({70, 40, 90, Trans::kNo, Trans::kYes, Scalar{0.1},
                   Scalar{3}});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, GemmMatchesNaive,
                         ::testing::ValuesIn(gemm_cases()));

// Local reference for the fused epilogues, written out independently of
// detail::epilogue_apply (tensor tests cannot use nn::activation).
Scalar ref_act(Epilogue e, Scalar z) {
  switch (e) {
    case Epilogue::kBias:
      return z;
    case Epilogue::kBiasSigmoid:
      return Scalar{1} / (Scalar{1} + std::exp(-z));
    case Epilogue::kBiasTanh:
      return std::tanh(z);
    case Epilogue::kBiasRelu:
      return z > Scalar{0} ? z : Scalar{0};
  }
  return z;
}

const char* epilogue_name(Epilogue e) {
  switch (e) {
    case Epilogue::kBias:        return "bias";
    case Epilogue::kBiasSigmoid: return "sigmoid";
    case Epilogue::kBiasTanh:    return "tanh";
    case Epilogue::kBiasRelu:    return "relu";
  }
  return "?";
}

// gemm_bias_act must equal the unfused gemm -> add_row_bias -> activation
// sequence within 1e-12 (they share the arithmetic; only FP contraction in
// the fused write-back may differ) across epilogues, Trans combinations,
// and shapes hitting the skinny fast path, exact register tiles, and
// ragged multi-block edges.
TEST(GemmBiasAct, MatchesUnfusedSequence) {
  const Trans kT[] = {Trans::kNo, Trans::kYes};
  const Epilogue kEps[] = {Epilogue::kBias, Epilogue::kBiasSigmoid,
                           Epilogue::kBiasTanh, Epilogue::kBiasRelu};
  const std::tuple<Index, Index, Index> shapes[] = {
      {1, 1, 1},   {1, 7, 5},     {3, 7, 5},   {4, 16, 8},
      {7, 33, 12}, {17, 129, 63}, {70, 40, 90},
  };
  std::uint64_t seed = 9000;
  for (auto [m, n, k] : shapes) {
    for (Trans ta : kT) {
      for (Trans tb : kT) {
        Rng rng(++seed);
        Matrix a = ta == Trans::kNo ? random_matrix(m, k, rng)
                                    : random_matrix(k, m, rng);
        Matrix b = tb == Trans::kNo ? random_matrix(k, n, rng)
                                    : random_matrix(n, k, rng);
        Matrix bias = random_matrix(1, n, rng);
        for (Epilogue e : kEps) {
          // Garbage in C: gemm_bias_act must overwrite, not accumulate.
          Matrix fused = random_matrix(m, n, rng);
          gemm_bias_act(ta, tb, Scalar{1}, a.view(), b.view(), fused.view(),
                        bias.view(), e);
          Matrix ref(m, n);
          gemm(ta, tb, Scalar{1}, a.view(), b.view(), Scalar{0}, ref.view());
          add_row_bias(bias.view(), ref.view());
          for (Index i = 0; i < m; ++i) {
            for (Index j = 0; j < n; ++j) ref(i, j) = ref_act(e, ref(i, j));
          }
          EXPECT_LT(max_abs_diff(ref.view(), fused.view()), 1e-12)
              << "m=" << m << " n=" << n << " k=" << k
              << " ta=" << (ta == Trans::kYes) << " tb=" << (tb == Trans::kYes)
              << " epilogue=" << epilogue_name(e);
        }
      }
    }
  }
}

// alpha = 0 must still run the epilogue: C = act(bias) broadcast per row.
TEST(GemmBiasAct, AlphaZeroAppliesEpilogueToBias) {
  const Index m = 3, n = 20, k = 4;
  Rng rng(41);
  Matrix a = random_matrix(m, k, rng);
  Matrix b = random_matrix(k, n, rng);
  Matrix bias = random_matrix(1, n, rng);
  Matrix c = random_matrix(m, n, rng);
  gemm_bias_act(Trans::kNo, Trans::kNo, Scalar{0}, a.view(), b.view(),
                c.view(), bias.view(), Epilogue::kBiasSigmoid);
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < n; ++j) {
      EXPECT_DOUBLE_EQ(c(i, j), ref_act(Epilogue::kBiasSigmoid, bias(0, j)));
    }
  }
}

// The scaled fused product: C = act(alpha * A * B^T + bias).
TEST(GemmBiasAct, RespectsAlpha) {
  const Index m = 9, n = 33, k = 17;
  const Scalar alpha = -0.5;
  Rng rng(42);
  Matrix a = random_matrix(m, k, rng);
  Matrix b = random_matrix(n, k, rng);
  Matrix bias = random_matrix(1, n, rng);
  Matrix fused(m, n);
  gemm_bias_act(Trans::kNo, Trans::kYes, alpha, a.view(), b.view(),
                fused.view(), bias.view(), Epilogue::kBiasTanh);
  Matrix ref(m, n);
  gemm(Trans::kNo, Trans::kYes, alpha, a.view(), b.view(), Scalar{0},
       ref.view());
  add_row_bias(bias.view(), ref.view());
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < n; ++j) {
      ref(i, j) = ref_act(Epilogue::kBiasTanh, ref(i, j));
    }
  }
  EXPECT_LT(max_abs_diff(ref.view(), fused.view()), 1e-12);
}

TEST(Gemm, MatmulWrappers) {
  Rng rng(77);
  const Index b = 13, in = 9, out = 11;
  Matrix x = random_matrix(b, in, rng);
  Matrix w = random_matrix(out, in, rng);
  Matrix y(b, out);
  matmul_nt(x.view(), w.view(), y.view());
  Matrix y_ref(b, out);
  gemm_naive(Trans::kNo, Trans::kYes, 1, x.view(), w.view(), 0, y_ref.view());
  EXPECT_LT(max_abs_diff(y.view(), y_ref.view()), 1e-12);

  Matrix d = random_matrix(b, out, rng);
  Matrix gw(out, in);
  matmul_tn(d.view(), x.view(), gw.view());
  Matrix gw_ref(out, in);
  gemm_naive(Trans::kYes, Trans::kNo, 1, d.view(), x.view(), 0, gw_ref.view());
  EXPECT_LT(max_abs_diff(gw.view(), gw_ref.view()), 1e-12);

  Matrix dx(b, in);
  matmul_nn(d.view(), w.view(), dx.view());
  Matrix dx_ref(b, in);
  gemm_naive(Trans::kNo, Trans::kNo, 1, d.view(), w.view(), 0, dx_ref.view());
  EXPECT_LT(max_abs_diff(dx.view(), dx_ref.view()), 1e-12);
}

TEST(Gemm, ShapeMismatchDies) {
  Matrix a(2, 3), b(4, 2), c(2, 2);
  EXPECT_DEATH(gemm(Trans::kNo, Trans::kNo, 1, a.view(), b.view(), 0, c.view()),
               "inner dimensions");
  Matrix b2(3, 5);
  EXPECT_DEATH(gemm(Trans::kNo, Trans::kNo, 1, a.view(), b2.view(), 0,
                    c.view()),
               "output shape");
}

TEST(Gemm, FlopsFormula) {
  EXPECT_DOUBLE_EQ(gemm_flops(2, 3, 4), 48.0);
  EXPECT_DOUBLE_EQ(gemm_flops(1, 1, 1), 2.0);
}

TEST(Gemm, CheckShapesReturnsDims) {
  Matrix a(5, 7), b(9, 7), c(5, 9);
  GemmDims d = check_gemm_shapes(Trans::kNo, Trans::kYes, a.view(), b.view(),
                                 c.view());
  EXPECT_EQ(d.m, 5);
  EXPECT_EQ(d.n, 9);
  EXPECT_EQ(d.k, 7);
}

}  // namespace
}  // namespace hetsgd::tensor
