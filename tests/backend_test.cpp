// Cross-backend equivalence suite: every registered Backend must run the
// identical forward/backward/update sequence and produce bit-identical
// results (math) and identical virtual completion times (cost model), so a
// training trajectory is independent of which engine executes it.
//
// Replaces the old mlp_test / device_mlp_test duplication: the checks run
// once per backend via gtest value-parameterization over the registry, so
// a newly registered backend is automatically under the full suite.
#include "backend/backend.hpp"

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "backend/mlp_executor.hpp"
#include "common/rng.hpp"
#include "nn/mlp.hpp"
#include "tensor/ops.hpp"

namespace hetsgd::backend {
namespace {

using tensor::Index;
using tensor::Matrix;

nn::MlpConfig test_config() {
  nn::MlpConfig c;
  c.input_dim = 8;
  c.num_classes = 4;
  c.hidden_layers = 2;
  c.hidden_units = 6;
  return c;
}

struct Fixture {
  nn::MlpConfig config = test_config();
  Rng rng{42};
  nn::Model model{config, rng};
  Matrix x;
  std::vector<std::int32_t> y;

  explicit Fixture(Index batch) : x(batch, config.input_dim) {
    tensor::fill_normal(x.view(), rng, 0, 1);
    y.resize(static_cast<std::size_t>(batch));
    for (auto& label : y) {
      label = static_cast<std::int32_t>(rng.next_below(4));
    }
  }
};

class BackendSuite : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<Backend> make(const DeviceSpec& spec = v100_spec()) {
    auto b = make_backend(GetParam(), spec);
    EXPECT_NE(b, nullptr);
    return b;
  }
};

TEST_P(BackendSuite, RegisteredUnderItsName) {
  auto b = make();
  EXPECT_EQ(b->name(), GetParam());
  EXPECT_TRUE(backend_registered(GetParam()));
  // Registry-built backends hold a private replica (the Hogwild zero-copy
  // mode is constructed directly by the CPU worker, not by name).
  EXPECT_FALSE(b->zero_copy());
}

TEST_P(BackendSuite, GradientMatchesHostExactly) {
  Fixture f(16);
  auto b = make();
  MlpExecutor mlp(*b, f.config, 16);
  mlp.upload_model(f.model, 0.0);
  double done = 0.0;
  const double device_loss = mlp.compute_gradient(f.x.view(), f.y, 0.0, &done);
  nn::Gradient device_grad = nn::make_zero_gradient(f.model);
  mlp.download_gradient(device_grad, done);

  nn::Workspace ws;
  nn::Gradient host_grad = nn::make_zero_gradient(f.model);
  const double host_loss =
      nn::compute_gradient(f.model, f.x.view(), f.y, ws, host_grad);

  // Same kernel sequence on every backend: results are bit-identical.
  EXPECT_DOUBLE_EQ(device_loss, host_loss);
  EXPECT_EQ(device_grad.max_abs_diff(host_grad), 0.0);
}

TEST_P(BackendSuite, SmallerBatchThanMaxWorks) {
  Fixture f(5);
  auto b = make();
  MlpExecutor mlp(*b, f.config, 32);
  mlp.upload_model(f.model, 0.0);
  double done = 0.0;
  mlp.compute_gradient(f.x.view(), f.y, 0.0, &done);
  nn::Gradient device_grad = nn::make_zero_gradient(f.model);
  mlp.download_gradient(device_grad, done);

  nn::Workspace ws;
  nn::Gradient host_grad = nn::make_zero_gradient(f.model);
  nn::compute_gradient(f.model, f.x.view(), f.y, ws, host_grad);
  EXPECT_EQ(device_grad.max_abs_diff(host_grad), 0.0);
}

TEST_P(BackendSuite, ApplyGradientMatchesHostSgd) {
  Fixture f(8);
  auto b = make();
  MlpExecutor mlp(*b, f.config, 8);
  mlp.upload_model(f.model, 0.0);
  double done = 0.0;
  mlp.compute_gradient(f.x.view(), f.y, 0.0, &done);
  mlp.apply_gradient(0.1, done);
  nn::Model replica = f.model;
  mlp.download_model(replica, done);

  nn::Workspace ws;
  nn::Gradient host_grad = nn::make_zero_gradient(f.model);
  nn::compute_gradient(f.model, f.x.view(), f.y, ws, host_grad);
  nn::Model expected = f.model;
  nn::sgd_step(expected, host_grad, 0.1);
  EXPECT_LT(replica.max_abs_diff(expected), 1e-15);
}

TEST_P(BackendSuite, UploadDownloadRoundTrip) {
  Fixture f(4);
  auto b = make();
  MlpExecutor mlp(*b, f.config, 4);
  mlp.upload_model(f.model, 0.0);
  nn::Model back(f.config, f.rng);  // different values
  mlp.download_model(back, 0.0);
  EXPECT_EQ(back.max_abs_diff(f.model), 0.0);
}

TEST_P(BackendSuite, VirtualTimeAdvances) {
  Fixture f(8);
  auto b = make();
  MlpExecutor mlp(*b, f.config, 8);
  const double t0 = mlp.upload_model(f.model, 0.0);
  EXPECT_GT(t0, 0.0);
  double done = 0.0;
  mlp.compute_gradient(f.x.view(), f.y, t0, &done);
  EXPECT_GT(done, t0);
  const double t1 = mlp.apply_gradient(0.1, done);
  EXPECT_GT(t1, done);
}

TEST_P(BackendSuite, DeviceBytesAccounted) {
  Fixture f(4);
  auto b = make();
  const std::uint64_t before = b->bytes_in_use();
  auto mlp = std::make_unique<MlpExecutor>(*b, f.config, 64);
  EXPECT_EQ(b->bytes_in_use() - before, mlp->device_bytes());
  mlp.reset();
  EXPECT_EQ(b->bytes_in_use(), before);
}

TEST_P(BackendSuite, OversizedModelTriggersOom) {
  DeviceSpec tiny = v100_spec();
  tiny.memory_capacity = 1 << 16;  // 64 KiB
  nn::MlpConfig big = test_config();
  big.hidden_units = 256;
  EXPECT_DEATH(
      {
        auto b = make(tiny);
        MlpExecutor mlp(*b, big, 1024);
      },
      "out of");
}

TEST_P(BackendSuite, BatchBeyondMaxDies) {
  Fixture f(16);
  auto b = make();
  MlpExecutor mlp(*b, f.config, 8);
  mlp.upload_model(f.model, 0.0);
  double done = 0.0;
  EXPECT_DEATH(mlp.compute_gradient(f.x.view(), f.y, 0.0, &done), "max_batch");
}

TEST_P(BackendSuite, TrainingConvergesLikeHost) {
  Fixture f(32);
  auto b = make();
  MlpExecutor mlp(*b, f.config, 32);
  nn::Model host_model = f.model;
  nn::Workspace ws;
  nn::Gradient host_grad = nn::make_zero_gradient(host_model);

  double clock = mlp.upload_model(f.model, 0.0);
  for (int step = 0; step < 20; ++step) {
    double done = clock;
    mlp.compute_gradient(f.x.view(), f.y, clock, &done);
    clock = mlp.apply_gradient(0.3, done);
    nn::compute_gradient(host_model, f.x.view(), f.y, ws, host_grad);
    nn::sgd_step(host_model, host_grad, 0.3);
  }
  nn::Model final_device = f.model;
  mlp.download_model(final_device, clock);
  EXPECT_LT(final_device.max_abs_diff(host_model), 1e-12);
}

TEST_P(BackendSuite, NanPoisonedInputPropagatesToGradient) {
  Fixture f(8);
  f.x(0, 0) = std::numeric_limits<tensor::Scalar>::quiet_NaN();
  auto b = make();
  MlpExecutor mlp(*b, f.config, 8);
  mlp.upload_model(f.model, 0.0);
  double done = 0.0;
  const double loss = mlp.compute_gradient(f.x.view(), f.y, 0.0, &done);
  nn::Gradient grad = nn::make_zero_gradient(f.model);
  mlp.download_gradient(grad, done);
  // NaN must flow through every backend's kernels, not be masked: the
  // coordinator's divergence rollback depends on seeing it in the merge.
  EXPECT_TRUE(std::isnan(loss));
  EXPECT_FALSE(std::isfinite(
      static_cast<double>(grad.layer(0).weights.data()[0])));
}

TEST_P(BackendSuite, InjectedTransferFaultThrowsOnceAndCounts) {
  Fixture f(4);
  auto b = make();
  MlpExecutor mlp(*b, f.config, 4);
  b->inject_transfer_faults(1);
  EXPECT_THROW(mlp.upload_model(f.model, 0.0), TransferError);
  EXPECT_EQ(b->failed_transfers(), 1u);
  // The injection is consumed: the retry goes through.
  EXPECT_NO_THROW(mlp.upload_model(f.model, 0.0));
}

TEST_P(BackendSuite, BatchStagingIsNotAFaultSurface) {
  Fixture f(4);
  auto b = make();
  MlpExecutor mlp(*b, f.config, 4);
  mlp.upload_model(f.model, 0.0);
  // Input staging is deliberately outside the injection surface (the model
  // upload and gradient download bracket every round trip); a pending
  // fault must survive compute_gradient and fire on the next transfer.
  b->inject_transfer_faults(1);
  double done = 0.0;
  EXPECT_NO_THROW(mlp.compute_gradient(f.x.view(), f.y, 0.0, &done));
  nn::Gradient grad = nn::make_zero_gradient(f.model);
  EXPECT_THROW(mlp.download_gradient(grad, done), TransferError);
  EXPECT_EQ(b->failed_transfers(), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendSuite,
                         ::testing::ValuesIn(registered_backends()),
                         [](const auto& info) { return info.param; });

// The seam's core promise, checked across the whole registry at once:
// identical math AND identical virtual completion times on every backend,
// so --backend never changes a training trajectory.
TEST(BackendEquivalence, AllBackendsAgreeOnMathAndVirtualTime) {
  Fixture f(16);
  struct Run {
    std::string name;
    double t_upload, t_done, t_apply;
    nn::Gradient grad;
    nn::Model model_after;
  };
  std::vector<Run> runs;
  for (const std::string& name : registered_backends()) {
    auto b = make_backend(name, v100_spec());
    ASSERT_NE(b, nullptr);
    MlpExecutor mlp(*b, f.config, 16);
    Run r{name, 0.0, 0.0, 0.0, nn::make_zero_gradient(f.model), f.model};
    r.t_upload = mlp.upload_model(f.model, 0.0);
    mlp.compute_gradient(f.x.view(), f.y, r.t_upload, &r.t_done);
    mlp.download_gradient(r.grad, r.t_done);
    r.t_apply = mlp.apply_gradient(0.2, r.t_done);
    mlp.download_model(r.model_after, r.t_apply);
    runs.push_back(std::move(r));
  }
  ASSERT_GE(runs.size(), 2u);
  for (std::size_t i = 1; i < runs.size(); ++i) {
    SCOPED_TRACE(runs[0].name + " vs " + runs[i].name);
    EXPECT_DOUBLE_EQ(runs[i].t_upload, runs[0].t_upload);
    EXPECT_DOUBLE_EQ(runs[i].t_done, runs[0].t_done);
    EXPECT_DOUBLE_EQ(runs[i].t_apply, runs[0].t_apply);
    EXPECT_EQ(runs[i].grad.max_abs_diff(runs[0].grad), 0.0);
    EXPECT_EQ(runs[i].model_after.max_abs_diff(runs[0].model_after), 0.0);
  }
}

}  // namespace
}  // namespace hetsgd::backend
