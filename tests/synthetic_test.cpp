#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/ops.hpp"

namespace hetsgd::data {
namespace {

using tensor::Index;

TEST(Synthetic, MatchesSpecShape) {
  SyntheticSpec spec;
  spec.examples = 500;
  spec.dim = 20;
  spec.classes = 5;
  Dataset d = make_synthetic(spec);
  EXPECT_EQ(d.example_count(), 500);
  EXPECT_EQ(d.dim(), 20);
  EXPECT_EQ(d.num_classes(), 5);
}

TEST(Synthetic, DeterministicForSeed) {
  SyntheticSpec spec;
  spec.examples = 100;
  spec.dim = 8;
  spec.seed = 77;
  Dataset a = make_synthetic(spec);
  Dataset b = make_synthetic(spec);
  EXPECT_EQ(tensor::max_abs_diff(a.features().view(), b.features().view()),
            0.0);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.labels()[i], b.labels()[i]);
  }
}

TEST(Synthetic, DifferentSeedsDiffer) {
  SyntheticSpec spec;
  spec.examples = 100;
  spec.dim = 8;
  spec.seed = 1;
  Dataset a = make_synthetic(spec);
  spec.seed = 2;
  Dataset b = make_synthetic(spec);
  EXPECT_GT(tensor::max_abs_diff(a.features().view(), b.features().view()),
            0.1);
}

TEST(Synthetic, AllClassesRepresented) {
  SyntheticSpec spec;
  spec.examples = 2000;
  spec.dim = 10;
  spec.classes = 7;
  Dataset d = make_synthetic(spec);
  auto hist = d.class_histogram();
  for (auto count : hist) {
    EXPECT_GT(count, 100u);  // roughly balanced
  }
}

TEST(Synthetic, DensityControlsSparsity) {
  SyntheticSpec spec;
  spec.examples = 300;
  spec.dim = 100;
  spec.density = 0.1;
  spec.seed = 5;
  Dataset d = make_synthetic(spec);
  Index nonzero = 0;
  for (Index r = 0; r < d.example_count(); ++r) {
    for (Index c = 0; c < d.dim(); ++c) {
      if (d.features()(r, c) != 0.0) ++nonzero;
    }
  }
  const double density = static_cast<double>(nonzero) /
                         static_cast<double>(d.example_count() * d.dim());
  EXPECT_NEAR(density, 0.1, 0.02);
}

TEST(Synthetic, SignalIsLearnable) {
  // A linear probe sanity check is overkill; instead verify class
  // centroids separate: examples of the same class are closer to their own
  // centroid mean than to another class's.
  SyntheticSpec spec;
  spec.examples = 1000;
  spec.dim = 16;
  spec.classes = 2;
  spec.feature_noise = 0.3;
  spec.label_noise = 0.0;
  Dataset d = make_synthetic(spec);
  tensor::Matrix means(2, 16);
  std::vector<Index> counts(2, 0);
  for (Index r = 0; r < d.example_count(); ++r) {
    const auto y = d.labels()[static_cast<std::size_t>(r)];
    ++counts[static_cast<std::size_t>(y)];
    for (Index c = 0; c < 16; ++c) {
      means(y, c) += d.features()(r, c);
    }
  }
  for (Index k = 0; k < 2; ++k) {
    for (Index c = 0; c < 16; ++c) {
      means(k, c) /= static_cast<tensor::Scalar>(counts[static_cast<std::size_t>(k)]);
    }
  }
  tensor::Matrix diff(1, 16);
  tensor::sub(means.rows_view(0, 1), means.rows_view(1, 1), diff.view());
  EXPECT_GT(tensor::frobenius_norm(diff.view()), 1.0);
}

TEST(Synthetic, MultiClusterClassesStillBalanced) {
  SyntheticSpec spec;
  spec.examples = 2000;
  spec.dim = 24;
  spec.classes = 2;
  spec.clusters_per_class = 8;
  Dataset d = make_synthetic(spec);
  auto hist = d.class_histogram();
  EXPECT_GT(hist[0], 800u);
  EXPECT_GT(hist[1], 800u);
}

TEST(Synthetic, MultiClusterSpreadsClassExamples) {
  // With many clusters per class, same-class examples are far more spread
  // out than with one cluster: compare mean intra-class distance.
  auto intra_class_spread = [](tensor::Index clusters) {
    SyntheticSpec spec;
    spec.examples = 400;
    spec.dim = 16;
    spec.classes = 2;
    spec.feature_noise = 0.1;
    spec.clusters_per_class = clusters;
    spec.seed = 3;
    Dataset d = make_synthetic(spec);
    double total = 0;
    int pairs = 0;
    for (tensor::Index i = 0; i + 1 < d.example_count(); i += 2) {
      if (d.labels()[static_cast<std::size_t>(i)] !=
          d.labels()[static_cast<std::size_t>(i + 1)]) {
        continue;
      }
      double dist = 0;
      for (tensor::Index c = 0; c < 16; ++c) {
        const double diff = d.features()(i, c) - d.features()(i + 1, c);
        dist += diff * diff;
      }
      total += dist;
      ++pairs;
    }
    return total / pairs;
  };
  EXPECT_GT(intra_class_spread(16), 2.0 * intra_class_spread(1));
}

TEST(Synthetic, DistinctFractionCreatesDuplicateRows) {
  SyntheticSpec spec;
  spec.examples = 1000;
  spec.dim = 6;
  spec.classes = 2;
  spec.distinct_fraction = 0.05;  // ~50 distinct base rows
  spec.seed = 13;
  Dataset d = make_synthetic(spec);
  std::set<std::vector<double>> unique_rows;
  for (tensor::Index r = 0; r < d.example_count(); ++r) {
    std::vector<double> row(d.features().row(r), d.features().row(r) + 6);
    unique_rows.insert(row);
  }
  EXPECT_LE(unique_rows.size(), 50u);
  EXPECT_GE(unique_rows.size(), 20u);  // most of the pool gets sampled
}

TEST(Synthetic, FullDistinctFractionKeepsRowsUnique) {
  SyntheticSpec spec;
  spec.examples = 300;
  spec.dim = 8;
  spec.classes = 2;
  spec.distinct_fraction = 1.0;
  spec.seed = 17;
  Dataset d = make_synthetic(spec);
  std::set<std::vector<double>> unique_rows;
  for (tensor::Index r = 0; r < d.example_count(); ++r) {
    std::vector<double> row(d.features().row(r), d.features().row(r) + 8);
    unique_rows.insert(row);
  }
  EXPECT_EQ(unique_rows.size(), 300u);
}

TEST(Synthetic, FeatureScaleSigmaCreatesHeavyTails) {
  SyntheticSpec spec;
  spec.examples = 500;
  spec.dim = 200;
  spec.classes = 2;
  spec.feature_scale_sigma = 2.0;
  spec.seed = 9;
  Dataset d = make_synthetic(spec);
  // Per-feature RMS should span orders of magnitude.
  double min_rms = 1e300, max_rms = 0;
  for (tensor::Index c = 0; c < d.dim(); ++c) {
    double sq = 0;
    for (tensor::Index r = 0; r < d.example_count(); ++r) {
      sq += d.features()(r, c) * d.features()(r, c);
    }
    const double rms = std::sqrt(sq / d.example_count());
    min_rms = std::min(min_rms, rms);
    max_rms = std::max(max_rms, rms);
  }
  EXPECT_GT(max_rms / min_rms, 100.0);
}

TEST(PaperDatasets, TableTwoMetadata) {
  auto all = all_paper_datasets();
  ASSERT_EQ(all.size(), 4u);
  const auto& covtype = paper_dataset_info(PaperDataset::kCovtype);
  EXPECT_EQ(covtype.examples, 581012);
  EXPECT_EQ(covtype.dim, 54);
  EXPECT_EQ(covtype.hidden_layers, 6);
  const auto& realsim = paper_dataset_info(PaperDataset::kRealSim);
  EXPECT_EQ(realsim.dim, 20958);
  EXPECT_EQ(realsim.hidden_layers, 4);
  const auto& delicious = paper_dataset_info(PaperDataset::kDelicious);
  EXPECT_EQ(delicious.classes, 983);
  EXPECT_EQ(delicious.hidden_layers, 8);
  const auto& w8a = paper_dataset_info(PaperDataset::kW8a);
  EXPECT_EQ(w8a.examples, 49749);
  EXPECT_EQ(w8a.hidden_layers, 8);
}

TEST(PaperDatasets, ParseNames) {
  PaperDataset d;
  EXPECT_TRUE(parse_paper_dataset("covtype", d));
  EXPECT_EQ(d, PaperDataset::kCovtype);
  EXPECT_TRUE(parse_paper_dataset("real-sim", d));
  EXPECT_EQ(d, PaperDataset::kRealSim);
  EXPECT_TRUE(parse_paper_dataset("realsim", d));
  EXPECT_FALSE(parse_paper_dataset("mnist", d));
}

TEST(PaperDatasets, ScaleShrinksExamples) {
  Dataset small = make_paper_dataset(PaperDataset::kCovtype, 0.002, 1);
  EXPECT_NEAR(static_cast<double>(small.example_count()), 581012 * 0.002,
              10.0);
  EXPECT_EQ(small.dim(), 54);  // dense set keeps its dimension
  EXPECT_EQ(small.num_classes(), 2);
}

TEST(PaperDatasets, RealSimKeepsHighDimRatio) {
  Dataset rs = make_paper_dataset(PaperDataset::kRealSim, 0.01, 1);
  Dataset cov = make_paper_dataset(PaperDataset::kCovtype, 0.01, 1);
  // real-sim must stay the (much) highest-dimensional dataset.
  EXPECT_GT(rs.dim(), 20 * cov.dim());
}

TEST(PaperDatasets, DeliciousShrinksClassesAtTinyScale) {
  Dataset tiny = make_paper_dataset(PaperDataset::kDelicious, 0.02, 1);
  EXPECT_GE(tiny.num_classes(), 16);
  EXPECT_LE(tiny.num_classes(), 983);
  // Full scale keeps all 983 tags.
  // (Not generated here — too large for a unit test — verified via info.)
}

TEST(PaperDatasets, MinimumExamplesFloor) {
  Dataset d = make_paper_dataset(PaperDataset::kDelicious, 0.0001, 1);
  EXPECT_GE(d.example_count(), 128);
}

}  // namespace
}  // namespace hetsgd::data
