#include "tensor/ops.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace hetsgd::tensor {
namespace {

TEST(Ops, Axpy) {
  Matrix x{{1, 2}, {3, 4}};
  Matrix y{{10, 20}, {30, 40}};
  axpy(2, x.view(), y.view());
  EXPECT_EQ(y(0, 0), 12);
  EXPECT_EQ(y(1, 1), 48);
}

TEST(Ops, AxpyShapeMismatchDies) {
  Matrix x(2, 2), y(2, 3);
  EXPECT_DEATH(axpy(1, x.view(), y.view()), "shape mismatch");
}

TEST(Ops, Scale) {
  Matrix x{{2, 4}};
  scale(0.5, x.view());
  EXPECT_EQ(x(0, 0), 1);
  EXPECT_EQ(x(0, 1), 2);
}

TEST(Ops, Sub) {
  Matrix a{{5, 7}}, b{{2, 3}};
  Matrix out(1, 2);
  sub(a.view(), b.view(), out.view());
  EXPECT_EQ(out(0, 0), 3);
  EXPECT_EQ(out(0, 1), 4);
}

TEST(Ops, HadamardInplace) {
  Matrix x{{2, 3}};
  Matrix y{{5, 7}};
  hadamard_inplace(x.view(), y.view());
  EXPECT_EQ(y(0, 0), 10);
  EXPECT_EQ(y(0, 1), 21);
}

TEST(Ops, AddRowBias) {
  Matrix bias{{1, 2, 3}};
  Matrix m{{0, 0, 0}, {10, 10, 10}};
  add_row_bias(bias.view(), m.view());
  EXPECT_EQ(m(0, 1), 2);
  EXPECT_EQ(m(1, 2), 13);
}

TEST(Ops, ColSums) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  Matrix out(1, 2);
  col_sums(m.view(), out.view());
  EXPECT_EQ(out(0, 0), 9);
  EXPECT_EQ(out(0, 1), 12);
}

TEST(Ops, FrobeniusNorm) {
  Matrix m{{3, 4}};
  EXPECT_DOUBLE_EQ(frobenius_norm_sq(m.view()), 25.0);
  EXPECT_DOUBLE_EQ(frobenius_norm(m.view()), 5.0);
}

TEST(Ops, MaxAbsDiff) {
  Matrix a{{1, 2}}, b{{1.5, 1}};
  EXPECT_DOUBLE_EQ(max_abs_diff(a.view(), b.view()), 1.0);
}

TEST(Ops, Sum) {
  Matrix m{{1, 2}, {3, 4}};
  EXPECT_DOUBLE_EQ(sum(m.view()), 10.0);
}

TEST(Ops, FillNormalStatistics) {
  Rng rng(3);
  Matrix m(100, 100);
  fill_normal(m.view(), rng, 2.0, 3.0);
  double mean = sum(m.view()) / m.size();
  EXPECT_NEAR(mean, 2.0, 0.1);
  double var = 0;
  for (Index i = 0; i < m.size(); ++i) {
    var += (m.data()[i] - mean) * (m.data()[i] - mean);
  }
  var /= m.size();
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(Ops, FillUniformRange) {
  Rng rng(5);
  Matrix m(50, 50);
  fill_uniform(m.view(), rng, -1.0, 1.0);
  for (Index i = 0; i < m.size(); ++i) {
    EXPECT_GE(m.data()[i], -1.0);
    EXPECT_LT(m.data()[i], 1.0);
  }
}

TEST(Ops, SoftmaxRowsSumToOne) {
  Rng rng(9);
  Matrix m(20, 15);
  fill_normal(m.view(), rng, 0, 5);
  softmax_rows(m.view());
  for (Index r = 0; r < m.rows(); ++r) {
    Scalar total = 0;
    for (Index c = 0; c < m.cols(); ++c) {
      EXPECT_GT(m(r, c), 0);
      total += m(r, c);
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(Ops, SoftmaxStableForLargeLogits) {
  Matrix m{{1000.0, 1001.0}};
  softmax_rows(m.view());
  EXPECT_TRUE(all_finite(m.view()));
  EXPECT_NEAR(m(0, 0) + m(0, 1), 1.0, 1e-12);
  EXPECT_GT(m(0, 1), m(0, 0));
}

TEST(Ops, SoftmaxPreservesOrder) {
  Matrix m{{1.0, 3.0, 2.0}};
  softmax_rows(m.view());
  EXPECT_GT(m(0, 1), m(0, 2));
  EXPECT_GT(m(0, 2), m(0, 0));
}

TEST(Ops, AllFinite) {
  Matrix m{{1, 2}};
  EXPECT_TRUE(all_finite(m.view()));
  m(0, 0) = std::numeric_limits<Scalar>::infinity();
  EXPECT_FALSE(all_finite(m.view()));
  m(0, 0) = std::nan("");
  EXPECT_FALSE(all_finite(m.view()));
}

}  // namespace
}  // namespace hetsgd::tensor
