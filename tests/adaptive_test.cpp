#include "core/adaptive.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace hetsgd::core {
namespace {

using tensor::Index;

AdaptiveController two_workers(double alpha = 2.0) {
  AdaptiveController c(alpha);
  // Worker 0: CPU — quantum 56 (one sub-batch per simulated thread),
  // thresholds 1-64 examples per thread, starts at the lower threshold.
  c.register_worker(0, {56, 56, 56 * 64, 56});
  // Worker 1: GPU — thresholds 64-8192, starts at the upper threshold.
  c.register_worker(1, {8192, 64, 8192, 1});
  return c;
}

TEST(Adaptive, InitialBatches) {
  auto c = two_workers();
  EXPECT_EQ(c.batch(0), 56);
  EXPECT_EQ(c.batch(1), 8192);
}

TEST(Adaptive, SingleWorkerNeverChanges) {
  AdaptiveController c(2.0);
  c.register_worker(0, {128, 64, 256, 1});
  for (std::uint64_t u : {0ULL, 10ULL, 100ULL, 1000ULL}) {
    EXPECT_EQ(c.on_request(0, u), 128);
  }
}

TEST(Adaptive, FastestWorkerSlowsDown) {
  auto c = two_workers();
  c.on_request(0, 0);
  // GPU starts at max already; the *CPU* ahead case grows CPU batch:
  c.on_request(1, 5);            // GPU has 5 updates
  Index b = c.on_request(0, 50); // CPU has 50 > 5: slow it down
  EXPECT_EQ(b, 112);             // 56 * 2
  b = c.on_request(0, 100);
  EXPECT_EQ(b, 224);
}

TEST(Adaptive, SlowestWorkerSpeedsUp) {
  auto c = two_workers();
  c.on_request(0, 100);          // CPU: 100 updates
  Index b = c.on_request(1, 5);  // GPU behind: shrink its batch
  EXPECT_EQ(b, 4096);
  b = c.on_request(1, 6);
  EXPECT_EQ(b, 2048);
}

TEST(Adaptive, ClampsAtThresholds) {
  auto c = two_workers();
  c.on_request(0, 1000000);
  Index b = 8192;
  for (int i = 0; i < 20; ++i) {
    b = c.on_request(1, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(b, 64);  // GPU clamped at min_b

  Index bc = 56;
  for (int i = 0; i < 20; ++i) {
    bc = c.on_request(0, 1000000 + static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(bc, 56 * 64);  // CPU clamped at max_b
}

TEST(Adaptive, EqualUpdatesKeepBatch) {
  auto c = two_workers();
  // Bring the GPU (already at max) to 10 first so the CPU's report sees an
  // equal peer and keeps its batch.
  c.on_request(1, 10);
  EXPECT_EQ(c.on_request(0, 10), 56);
  EXPECT_EQ(c.on_request(0, 10), 56);
  EXPECT_EQ(c.batch(0), 56);
}

TEST(Adaptive, QuantumRounding) {
  AdaptiveController c(2.0);
  c.register_worker(0, {56, 56, 56 * 64, 56});
  c.register_worker(1, {1000, 1, 100000, 1});
  // Make worker 0 the fastest repeatedly; batches must stay multiples of 56.
  std::uint64_t updates = 100;
  for (int i = 0; i < 10; ++i) {
    Index b = c.on_request(0, updates);
    EXPECT_EQ(b % 56, 0) << "batch " << b;
    updates += 100;
  }
}

TEST(Adaptive, CustomAlpha) {
  AdaptiveController c(4.0);
  c.register_worker(0, {64, 16, 1024, 1});
  c.register_worker(1, {64, 16, 1024, 1});
  c.on_request(1, 10);                    // ahead of worker 0: 64*4 = 256
  EXPECT_EQ(c.batch(1), 256);
  EXPECT_EQ(c.on_request(0, 100), 256);   // now worker 0 is ahead: 64*4
  EXPECT_EQ(c.on_request(1, 10), 64);     // behind again: 256/4
  EXPECT_EQ(c.on_request(1, 10), 16);     // still behind: 64/4
}

TEST(Adaptive, AlphaMustExceedOne) {
  EXPECT_DEATH(AdaptiveController(1.0), "alpha");
  EXPECT_DEATH(AdaptiveController(0.5), "alpha");
}

TEST(Adaptive, MonotoneUpdatesEnforced) {
  auto c = two_workers();
  c.on_request(0, 10);
  EXPECT_DEATH(c.on_request(0, 5), "monotone");
}

TEST(Adaptive, InvalidLimitsDie) {
  AdaptiveController c(2.0);
  EXPECT_DEATH(c.register_worker(0, {10, 20, 5, 1}), "min batch exceeds max");
  AdaptiveController c2(2.0);
  EXPECT_DEATH(c2.register_worker(0, {500, 64, 256, 1}),
               "initial batch outside");
}

// Property sweep: under arbitrary update sequences the batch stays inside
// [min, max] and remains a quantum multiple.
struct AdaptiveSweepCase {
  double alpha;
  Index quantum;
  Index min;
  Index max;
  std::uint64_t seed;
};

class AdaptiveProperty : public ::testing::TestWithParam<AdaptiveSweepCase> {};

TEST_P(AdaptiveProperty, BatchAlwaysWithinLimitsAndQuantized) {
  const auto& p = GetParam();
  AdaptiveController c(p.alpha);
  c.register_worker(0, {p.min, p.min, p.max, p.quantum});
  c.register_worker(1, {p.max, p.min, p.max, p.quantum});
  hetsgd::Rng rng(p.seed);
  std::uint64_t u0 = 0, u1 = 0;
  for (int step = 0; step < 500; ++step) {
    if (rng.bernoulli(0.5)) {
      u0 += rng.next_below(20);
      const Index b = c.on_request(0, u0);
      ASSERT_GE(b, p.min);
      ASSERT_LE(b, p.max);
      ASSERT_EQ(b % p.quantum, 0);
    } else {
      u1 += rng.next_below(20);
      const Index b = c.on_request(1, u1);
      ASSERT_GE(b, p.min);
      ASSERT_LE(b, p.max);
      ASSERT_EQ(b % p.quantum, 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AdaptiveProperty,
    ::testing::Values(AdaptiveSweepCase{2.0, 1, 64, 8192, 1},
                      AdaptiveSweepCase{2.0, 56, 56, 3584, 2},
                      AdaptiveSweepCase{1.5, 8, 8, 1024, 3},
                      AdaptiveSweepCase{3.0, 16, 16, 4096, 4},
                      AdaptiveSweepCase{2.0, 7, 7, 7 * 100, 5}));

// The headline property of Algorithm 2: with adversarial speed imbalance,
// the gap in update counts stays bounded once batches saturate, while a
// static assignment's gap would grow without the controller reacting.
TEST(Adaptive, ReactsToPersistentImbalance) {
  auto c = two_workers();
  // GPU produces updates 100x faster.
  std::uint64_t cpu_u = 0, gpu_u = 0;
  Index last_gpu_batch = 8192;
  for (int round = 0; round < 50; ++round) {
    gpu_u += 100;
    last_gpu_batch = c.on_request(1, gpu_u);
    cpu_u += 1;
    c.on_request(0, cpu_u);
  }
  // The controller must have pushed the two workers toward each other:
  // CPU shrinks to (stays at) its minimum, GPU grows to its maximum.
  EXPECT_EQ(c.batch(0), 56);
  EXPECT_EQ(last_gpu_batch, 8192);
}

}  // namespace
}  // namespace hetsgd::core
