#include <gtest/gtest.h>

#include "data/split.hpp"
#include "data/synthetic.hpp"
#include "nn/metrics.hpp"

namespace hetsgd {
namespace {

using data::Dataset;

Dataset small_dataset(std::int32_t classes = 3, tensor::Index n = 600) {
  data::SyntheticSpec spec;
  spec.examples = n;
  spec.dim = 10;
  spec.classes = classes;
  spec.feature_noise = 0.4;
  spec.seed = 11;
  return data::make_synthetic(spec);
}

TEST(TrainTestSplit, PartitionsAllExamples) {
  Dataset d = small_dataset();
  Rng rng(1);
  auto split = data::train_test_split(d, 0.25, rng);
  EXPECT_EQ(split.train.example_count() + split.test.example_count(),
            d.example_count());
  EXPECT_NEAR(static_cast<double>(split.test.example_count()) /
                  static_cast<double>(d.example_count()),
              0.25, 0.03);
  EXPECT_EQ(split.train.dim(), d.dim());
  EXPECT_EQ(split.test.num_classes(), d.num_classes());
}

TEST(TrainTestSplit, StratifiedPreservesClassShares) {
  Dataset d = small_dataset(4, 2000);
  Rng rng(3);
  auto split = data::train_test_split(d, 0.2, rng, /*stratified=*/true);
  auto full = d.class_histogram();
  auto test = split.test.class_histogram();
  for (std::size_t c = 0; c < full.size(); ++c) {
    const double share =
        static_cast<double>(test[c]) / static_cast<double>(full[c]);
    EXPECT_NEAR(share, 0.2, 0.05) << "class " << c;
  }
}

TEST(TrainTestSplit, NamesCarrySuffix) {
  Dataset d = small_dataset();
  Rng rng(5);
  auto split = data::train_test_split(d, 0.5, rng);
  EXPECT_NE(split.train.name().find("-train"), std::string::npos);
  EXPECT_NE(split.test.name().find("-test"), std::string::npos);
}

TEST(TrainTestSplit, InvalidFractionDies) {
  Dataset d = small_dataset();
  Rng rng(7);
  EXPECT_DEATH(data::train_test_split(d, 0.0, rng), "test_fraction");
  EXPECT_DEATH(data::train_test_split(d, 1.0, rng), "test_fraction");
}

TEST(TrainTestSplit, UnstratifiedAlsoPartitions) {
  Dataset d = small_dataset();
  Rng rng(9);
  auto split = data::train_test_split(d, 0.3, rng, /*stratified=*/false);
  EXPECT_EQ(split.train.example_count() + split.test.example_count(),
            d.example_count());
}

TEST(ConfusionMatrix, CountsAndAccuracy) {
  nn::ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(1, 1);
  cm.add(2, 0);
  EXPECT_EQ(cm.total(), 5u);
  EXPECT_EQ(cm.count(0, 0), 2u);
  EXPECT_EQ(cm.count(0, 1), 1u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 3.0 / 5.0);
}

TEST(ConfusionMatrix, PrecisionRecallF1) {
  nn::ConfusionMatrix cm(2);
  // class 1: 3 true positives, 1 false positive, 1 false negative.
  cm.add(1, 1);
  cm.add(1, 1);
  cm.add(1, 1);
  cm.add(0, 1);
  cm.add(1, 0);
  cm.add(0, 0);
  EXPECT_DOUBLE_EQ(cm.precision(1), 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(cm.recall(1), 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(cm.f1(1), 0.75);
  EXPECT_GT(cm.macro_f1(), 0.0);
}

TEST(ConfusionMatrix, EmptyClassYieldsZero) {
  nn::ConfusionMatrix cm(3);
  cm.add(0, 0);
  EXPECT_EQ(cm.precision(2), 0.0);
  EXPECT_EQ(cm.recall(2), 0.0);
  EXPECT_EQ(cm.f1(2), 0.0);
}

TEST(ConfusionMatrix, OutOfRangeDies) {
  nn::ConfusionMatrix cm(2);
  EXPECT_DEATH(cm.add(2, 0), "out of range");
}

TEST(EvaluateClassifier, TrainedModelBeatsChance) {
  Dataset d = small_dataset(3, 900);
  Rng rng(13);
  auto split = data::train_test_split(d, 0.3, rng);

  nn::MlpConfig config;
  config.input_dim = d.dim();
  config.num_classes = d.num_classes();
  config.hidden_layers = 1;
  config.hidden_units = 16;
  config.hidden_activation = nn::Activation::kTanh;
  nn::Model model(config, rng);
  nn::Workspace ws;
  nn::Gradient grad = nn::make_zero_gradient(model);

  for (int step = 0; step < 300; ++step) {
    nn::compute_gradient(model, split.train.batch_features(
                                    0, split.train.example_count()),
                         split.train.labels(), ws, grad);
    nn::sgd_step(model, grad, 0.5);
  }

  nn::ConfusionMatrix cm = nn::evaluate_classifier(
      model, split.test.features().view(), split.test.labels(), ws);
  EXPECT_EQ(cm.total(), static_cast<std::uint64_t>(
                            split.test.example_count()));
  EXPECT_GT(cm.accuracy(), 0.6);  // chance = 0.33
  EXPECT_GT(cm.macro_f1(), 0.5);
}

}  // namespace
}  // namespace hetsgd
