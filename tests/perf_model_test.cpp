#include "gpusim/perf_model.hpp"  // hetsgd-lint: allow(gpusim-include) gpusim subsystem unit test

#include <gtest/gtest.h>

#include "gpusim/virtual_clock.hpp"  // hetsgd-lint: allow(gpusim-include) gpusim subsystem unit test
#include "gpusim/stream.hpp"  // hetsgd-lint: allow(gpusim-include) gpusim subsystem unit test

namespace hetsgd::gpusim {
namespace {

TEST(VirtualClock, AdvanceAccumulates) {
  VirtualClock clock;
  EXPECT_EQ(clock.now(), 0.0);
  clock.advance(1.5);
  clock.advance(0.5);
  EXPECT_DOUBLE_EQ(clock.now(), 2.0);
}

TEST(VirtualClock, AdvanceToNeverGoesBack) {
  VirtualClock clock(5.0);
  clock.advance_to(3.0);
  EXPECT_DOUBLE_EQ(clock.now(), 5.0);
  clock.advance_to(7.0);
  EXPECT_DOUBLE_EQ(clock.now(), 7.0);
}

TEST(VirtualClock, NegativeAdvanceDies) {
  VirtualClock clock;
  EXPECT_DEATH(clock.advance(-1.0), "negative");
}

TEST(Stream, FifoCompletionTimes) {
  Stream s(0);
  double t1 = s.enqueue(1.0, 0.0);
  double t2 = s.enqueue(1.0, 0.0);  // issued at 0 but queued behind op 1
  EXPECT_DOUBLE_EQ(t1, 1.0);
  EXPECT_DOUBLE_EQ(t2, 2.0);
  EXPECT_DOUBLE_EQ(s.completion_time(), 2.0);
}

TEST(Stream, RespectsEarliestStart) {
  Stream s(0);
  double t = s.enqueue(1.0, 10.0);
  EXPECT_DOUBLE_EQ(t, 11.0);
}

TEST(Event, RecordsStreamPosition) {
  Stream s(0);
  Event start, stop;
  start.record(s);
  s.enqueue(2.5, 0.0);
  stop.record(s);
  EXPECT_TRUE(stop.recorded());
  EXPECT_DOUBLE_EQ(Event::elapsed(start, stop), 2.5);
}

TEST(PerfModel, EfficiencyMonotoneInBatch) {
  PerfModel perf(v100_spec());
  double prev = 0.0;
  for (double b : {1.0, 8.0, 64.0, 512.0, 4096.0, 32768.0}) {
    double e = perf.efficiency(b);
    EXPECT_GT(e, prev);
    prev = e;
  }
  EXPECT_LE(prev, perf.spec().max_efficiency);
}

TEST(PerfModel, EfficiencyBounds) {
  PerfModel perf(v100_spec());
  EXPECT_GE(perf.efficiency(1), perf.spec().min_efficiency);
  EXPECT_LE(perf.efficiency(1e12), perf.spec().max_efficiency + 1e-9);
}

TEST(PerfModel, UtilizationAtPaperThresholds) {
  // §VII-A: GPU utilization ~50% at the lower batch threshold and close to
  // 100% at the upper (8192).
  PerfModel perf(v100_spec());
  EXPECT_NEAR(perf.utilization(1024), 0.5, 0.05);
  EXPECT_GT(perf.utilization(8192), 0.85);
}

TEST(PerfModel, GemmSecondsScaleWithWork) {
  PerfModel perf(v100_spec());
  double small = perf.gemm_seconds(128, 512, 512);
  double big = perf.gemm_seconds(8192, 512, 512);
  EXPECT_GT(big, small);
  // 64x more work at higher efficiency: far less than 64x more time, but
  // still several times slower.
  EXPECT_GT(big / small, 5.0);
  EXPECT_LT(big / small, 64.0);
}

TEST(PerfModel, GemmIncludesLaunchLatency) {
  PerfModel perf(v100_spec());
  EXPECT_GE(perf.gemm_seconds(1, 1, 1), perf.spec().kernel_launch_seconds);
}

TEST(PerfModel, TransferLinear) {
  PerfModel perf(v100_spec());
  double t1 = perf.transfer_seconds(1 << 20);
  double t2 = perf.transfer_seconds(2 << 20);
  EXPECT_GT(t2, t1);
  EXPECT_NEAR(t2 - t1, static_cast<double>(1 << 20) / perf.spec().link_bandwidth,
              1e-12);
}

TEST(PerfModel, CpuTransfersAreFree) {
  PerfModel perf(xeon56_spec());
  EXPECT_EQ(perf.transfer_seconds(1 << 30), 0.0);
}

TEST(PerfModel, UpdateOverheadLinear) {
  PerfModel perf(xeon56_spec());
  EXPECT_DOUBLE_EQ(perf.update_overhead_seconds(10),
                   10.0 * perf.spec().update_overhead_seconds);
}

TEST(Specs, TableOneValues) {
  DeviceSpec v100 = v100_spec();
  EXPECT_EQ(v100.kind, DeviceKind::kGpu);
  EXPECT_EQ(v100.memory_capacity, 16ULL << 30);
  EXPECT_EQ(v100.lanes, 80);

  DeviceSpec xeon = xeon56_spec();
  EXPECT_EQ(xeon.kind, DeviceKind::kCpu);
  EXPECT_EQ(xeon.lanes, 56);
  EXPECT_EQ(xeon.memory_capacity, 488ULL << 30);
  EXPECT_GT(v100.peak_flops, xeon.peak_flops);
}

TEST(Specs, XeonScalesWithThreads) {
  DeviceSpec a = xeon_spec(8);
  DeviceSpec b = xeon_spec(16);
  EXPECT_DOUBLE_EQ(b.peak_flops, 2.0 * a.peak_flops);
  EXPECT_EQ(a.lanes, 8);
}

}  // namespace
}  // namespace hetsgd::gpusim
