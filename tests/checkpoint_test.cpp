// Crash-consistent checkpoint/resume and elastic membership.
//
// Three layers under test, bottom up: (1) the byte/envelope machinery —
// bounds-checked readers, CRC rejection, atomic writes; (2) the
// CheckpointManager — sequence numbering, retention, corrupt-newest
// fallback; (3) the end-to-end contract the whole subsystem exists for —
// a resumed run's trajectory is bitwise identical to the uninterrupted
// run, and elastic join/retire preserves the example-accounting
// invariant dispatched == reported + reclaimed.
#include "core/checkpoint.hpp"

#include "core/elastic.hpp"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/atomic_file.hpp"
#include "common/rng.hpp"
#include "core/trainer.hpp"
#include "data/synthetic.hpp"
#include "nn/optimizer.hpp"
#include "nn/serialize.hpp"

namespace hetsgd::core {
namespace {

std::string temp_dir(const char* name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

data::Dataset small_dataset(std::uint64_t seed = 11) {
  data::SyntheticSpec spec;
  spec.name = "ckpt";
  spec.examples = 1024;
  spec.dim = 16;
  spec.classes = 3;
  spec.feature_noise = 0.5;
  spec.seed = seed;
  return data::make_synthetic(spec);
}

TrainingConfig small_config() {
  TrainingConfig config;
  config.algorithm = Algorithm::kAdaptiveHogbatch;
  config.mlp.hidden_layers = 1;
  config.mlp.hidden_units = 16;
  config.learning_rate = 1e-3;
  config.time_budget_vseconds = 0.01;
  config.eval_interval_vseconds = 0.002;
  config.gpu.batch = 256;
  config.gpu.min_batch = 64;
  config.gpu.max_batch = 256;
  config.cpu.sim_lanes = 8;
  config.real_threads = 2;
  return config;
}

// A config whose trajectory is fully deterministic: one GPU worker, no
// Hogwild races, no wall-clock dependence. The vehicle for the
// bitwise-resume tests.
TrainingConfig deterministic_config() {
  TrainingConfig config = small_config();
  config.algorithm = Algorithm::kMinibatchGpu;
  config.time_budget_vseconds = 0.02;
  return config;
}

nn::Model tiny_model(std::uint64_t seed = 3) {
  nn::MlpConfig c;
  c.input_dim = 8;
  c.num_classes = 3;
  c.hidden_layers = 1;
  c.hidden_units = 4;
  Rng rng(seed);
  return nn::Model(c, rng);
}

std::uint64_t reported_examples(const TrainingResult& r) {
  std::uint64_t total = 0;
  for (const auto& w : r.workers) total += w.examples;
  return total;
}

void expect_ledger_invariant(const TrainingResult& r) {
  EXPECT_EQ(r.examples_dispatched, reported_examples(r) + r.examples_reclaimed)
      << "dispatched=" << r.examples_dispatched
      << " reported=" << reported_examples(r)
      << " reclaimed=" << r.examples_reclaimed;
}

void expect_same_trajectory(const TrainingResult& a, const TrainingResult& b) {
  if (a.loss_curve.size() != b.loss_curve.size()) {
    for (const auto& p : a.loss_curve)
      std::printf("A t=%.8f e=%.4f l=%.6f\n", p.vtime, p.epochs, p.loss);
    for (const auto& p : b.loss_curve)
      std::printf("B t=%.8f e=%.4f l=%.6f\n", p.vtime, p.epochs, p.loss);
  }
  ASSERT_EQ(a.loss_curve.size(), b.loss_curve.size());
  for (std::size_t i = 0; i < a.loss_curve.size(); ++i) {
    EXPECT_EQ(a.loss_curve[i].vtime, b.loss_curve[i].vtime) << "point " << i;
    EXPECT_EQ(a.loss_curve[i].epochs, b.loss_curve[i].epochs) << "point " << i;
    EXPECT_EQ(a.loss_curve[i].loss, b.loss_curve[i].loss) << "point " << i;
  }
  EXPECT_EQ(a.final_model_bytes, b.final_model_bytes)
      << "final model parameters differ bitwise";
}

// --- byte I/O -------------------------------------------------------------

TEST(ByteIo, RoundTripAllTypes) {
  ByteWriter w;
  w.write_u8(0xAB);
  w.write_u32(0xDEADBEEF);
  w.write_u64(0x0123456789ABCDEFull);
  w.write_i64(-42);
  w.write_f64(3.14159);
  w.write_string("hello checkpoint");

  ByteReader r(w.data());
  std::uint8_t u8 = 0;
  std::uint32_t u32 = 0;
  std::uint64_t u64 = 0;
  std::int64_t i64 = 0;
  double f64 = 0.0;
  std::string s;
  EXPECT_TRUE(r.read_u8(&u8));
  EXPECT_TRUE(r.read_u32(&u32));
  EXPECT_TRUE(r.read_u64(&u64));
  EXPECT_TRUE(r.read_i64(&i64));
  EXPECT_TRUE(r.read_f64(&f64));
  EXPECT_TRUE(r.read_string(&s));
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i64, -42);
  EXPECT_DOUBLE_EQ(f64, 3.14159);
  EXPECT_EQ(s, "hello checkpoint");
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_TRUE(r.ok());
}

TEST(ByteIo, TruncationFailsSoftAndPoisons) {
  ByteWriter w;
  w.write_u64(7);
  ByteReader r(w.data().data(), w.size() - 1);  // one byte short
  std::uint64_t v = 0;
  EXPECT_FALSE(r.read_u64(&v));
  EXPECT_FALSE(r.ok());
  // Poisoned: even a read that would fit must now fail.
  std::uint8_t b = 0;
  EXPECT_FALSE(r.read_u8(&b));
}

TEST(ByteIo, HostileStringLengthRejected) {
  // A corrupt length field claiming more bytes than the payload holds must
  // fail the read, not attempt a giant allocation.
  ByteWriter w;
  w.write_u64(std::uint64_t{1} << 40);
  ByteReader r(w.data());
  std::string s;
  EXPECT_FALSE(r.read_string(&s));
  EXPECT_FALSE(r.ok());
}

TEST(ByteIo, Crc32MatchesReferenceVector) {
  // The canonical IEEE 802.3 check value for "123456789".
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
}

TEST(Envelope, CorruptPayloadByteIsRejected) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "hetsgd_env_corrupt.bin")
          .string();
  std::vector<std::uint8_t> payload(64, 0x5A);
  std::string error;
  ASSERT_TRUE(nn::write_envelope_file(path, payload, &error)) << error;

  {
    // Flip one payload bit behind the envelope's back.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-1, std::ios::end);
    f.put(static_cast<char>(0xA5));
  }
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(nn::read_envelope_file(path, &out, &error));
  EXPECT_NE(error.find("CRC"), std::string::npos) << error;
  std::remove(path.c_str());
}

// --- optimizer state ------------------------------------------------------

TEST(OptimizerState, SerializeRoundTripIsBitExact) {
  for (const nn::OptimizerKind kind :
       {nn::OptimizerKind::kSgd, nn::OptimizerKind::kMomentum,
        nn::OptimizerKind::kAdam}) {
    nn::Model model = tiny_model();
    nn::OptimizerConfig oc;
    oc.kind = kind;
    nn::Optimizer opt(oc, model);
    // Take a few steps so the slots hold non-trivial state.
    nn::Gradient grad = nn::make_zero_gradient(model);
    for (int i = 0; i < 3; ++i) {
      grad.layer(0).weights.data()[0] = static_cast<tensor::Scalar>(i + 1);
      opt.step(model, grad, static_cast<tensor::Scalar>(1e-3));
    }

    ByteWriter w;
    opt.serialize(w);
    nn::Model shape = tiny_model();  // Optimizer keeps a pointer to it
    nn::Optimizer restored(oc, shape);
    std::string error;
    ByteReader r(w.data());
    ASSERT_TRUE(restored.deserialize(r, &error))
        << nn::optimizer_name(kind) << ": " << error;

    ByteWriter w2;
    restored.serialize(w2);
    EXPECT_EQ(w.data(), w2.data())
        << nn::optimizer_name(kind) << " state not bit-exact";
  }
}

// --- checkpoint payload ---------------------------------------------------

TrainingCheckpoint sample_checkpoint() {
  TrainingCheckpoint ckpt;
  ckpt.fingerprint = 0xFEEDFACE;
  ckpt.seed = 7;
  ckpt.model = tiny_model();
  Rng rng(99);
  rng.next_double();  // advance off the seed state
  ckpt.rng = rng.state();
  ckpt.epoch = 5;
  ckpt.epoch_start_vtime = 1.25;
  ckpt.next_eval_vtime = 1.5;
  ckpt.next_checkpoint_vtime = 2.0;
  ckpt.lr_scale = 0.5;
  ckpt.rollbacks = 1;
  ckpt.examples_dispatched = 4096;
  ckpt.examples_reclaimed = 128;
  ckpt.late_reports = 2;
  ckpt.late_examples = 64;
  ckpt.checkpoints_written = 3;
  ckpt.last_good_loss = 0.87;
  ckpt.curve = {{0.0, 0.0, 1.1}, {0.5, 1.0, 0.9}};
  WorkerCheckpoint wc;
  wc.id = 0;
  wc.kind = 1;
  wc.stats.id = 0;
  wc.stats.updates = 11;
  wc.adaptive_batch = 256;
  wc.adaptive_updates = 11;
  wc.state = {1, 2, 3, 4, 5};
  ckpt.workers.push_back(wc);
  return ckpt;
}

TEST(CheckpointPayload, RoundTripRestoresEveryField) {
  TrainingCheckpoint ckpt = sample_checkpoint();
  ByteWriter w;
  write_training_checkpoint(w, ckpt);

  TrainingCheckpoint out;
  std::string error;
  ByteReader r(w.data());
  ASSERT_TRUE(read_training_checkpoint(r, &out, &error)) << error;

  EXPECT_EQ(out.fingerprint, ckpt.fingerprint);
  EXPECT_EQ(out.seed, ckpt.seed);
  EXPECT_EQ(out.model.max_abs_diff(ckpt.model), 0.0);
  EXPECT_TRUE(out.rng == ckpt.rng);
  EXPECT_EQ(out.epoch, ckpt.epoch);
  EXPECT_EQ(out.epoch_start_vtime, ckpt.epoch_start_vtime);
  EXPECT_EQ(out.next_eval_vtime, ckpt.next_eval_vtime);
  EXPECT_EQ(out.next_checkpoint_vtime, ckpt.next_checkpoint_vtime);
  EXPECT_EQ(out.lr_scale, ckpt.lr_scale);
  EXPECT_EQ(out.rollbacks, ckpt.rollbacks);
  EXPECT_EQ(out.examples_dispatched, ckpt.examples_dispatched);
  EXPECT_EQ(out.examples_reclaimed, ckpt.examples_reclaimed);
  EXPECT_EQ(out.late_reports, ckpt.late_reports);
  EXPECT_EQ(out.late_examples, ckpt.late_examples);
  EXPECT_EQ(out.checkpoints_written, ckpt.checkpoints_written);
  EXPECT_EQ(out.last_good_loss, ckpt.last_good_loss);
  ASSERT_EQ(out.curve.size(), ckpt.curve.size());
  EXPECT_EQ(out.curve[1].loss, ckpt.curve[1].loss);
  ASSERT_EQ(out.workers.size(), 1u);
  EXPECT_EQ(out.workers[0].id, ckpt.workers[0].id);
  EXPECT_EQ(out.workers[0].kind, ckpt.workers[0].kind);
  EXPECT_EQ(out.workers[0].stats.updates, ckpt.workers[0].stats.updates);
  EXPECT_EQ(out.workers[0].adaptive_batch, ckpt.workers[0].adaptive_batch);
  EXPECT_EQ(out.workers[0].state, ckpt.workers[0].state);
}

TEST(CheckpointPayload, TruncatedPayloadFailsSoft) {
  TrainingCheckpoint ckpt = sample_checkpoint();
  ByteWriter w;
  write_training_checkpoint(w, ckpt);
  TrainingCheckpoint out;
  std::string error;
  ByteReader r(w.data().data(), w.size() / 2);
  EXPECT_FALSE(read_training_checkpoint(r, &out, &error));
  EXPECT_FALSE(error.empty());
}

// --- config fingerprint ---------------------------------------------------

TEST(Fingerprint, StableForIdenticalInputs) {
  TrainingConfig config = small_config();
  data::Dataset d = small_dataset();
  EXPECT_EQ(config_fingerprint(config, d), config_fingerprint(config, d));
}

TEST(Fingerprint, SensitiveToTrajectoryShapingKnobs) {
  const TrainingConfig base = small_config();
  const data::Dataset d = small_dataset();
  const std::uint64_t fp = config_fingerprint(base, d);

  TrainingConfig c = base;
  c.seed = base.seed + 1;
  EXPECT_NE(config_fingerprint(c, d), fp);

  c = base;
  c.mlp.hidden_units = 32;
  EXPECT_NE(config_fingerprint(c, d), fp);

  c = base;
  c.algorithm = Algorithm::kMinibatchGpu;
  EXPECT_NE(config_fingerprint(c, d), fp);

  c = base;
  c.learning_rate *= 2.0;
  EXPECT_NE(config_fingerprint(c, d), fp);

  // A different dataset (shape or content seed) must also refuse.
  EXPECT_NE(config_fingerprint(base, small_dataset(12)), fp);
}

TEST(Fingerprint, IgnoresTimeBudget) {
  // Resuming with a longer horizon is the point of resuming.
  TrainingConfig a = small_config();
  TrainingConfig b = a;
  b.time_budget_vseconds *= 10.0;
  const data::Dataset d = small_dataset();
  EXPECT_EQ(config_fingerprint(a, d), config_fingerprint(b, d));
}

// --- checkpoint manager ---------------------------------------------------

TEST(CheckpointManagerTest, SaveAssignsSequenceAndWritesManifest) {
  const std::string dir = temp_dir("hetsgd_mgr_basic");
  CheckpointManager mgr(dir, 3);
  TrainingCheckpoint ckpt = sample_checkpoint();
  std::string error;
  ASSERT_TRUE(mgr.save(ckpt, &error)) << error;
  EXPECT_EQ(ckpt.sequence, 1u);
  ASSERT_TRUE(mgr.save(ckpt, &error)) << error;
  EXPECT_EQ(ckpt.sequence, 2u);
  EXPECT_EQ(mgr.saves(), 2u);
  EXPECT_TRUE(std::filesystem::exists(dir + "/MANIFEST"));

  auto latest = CheckpointManager::load_latest(dir, &error);
  ASSERT_TRUE(latest.has_value()) << error;
  EXPECT_EQ(latest->sequence, 2u);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointManagerTest, RetentionPrunesOldestFiles) {
  const std::string dir = temp_dir("hetsgd_mgr_retain");
  CheckpointManager mgr(dir, 2);
  TrainingCheckpoint ckpt = sample_checkpoint();
  std::string error;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(mgr.save(ckpt, &error)) << error;
  }
  std::size_t files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().extension() == ".hetsgd") ++files;
  }
  EXPECT_EQ(files, 2u);
  auto latest = CheckpointManager::load_latest(dir, &error);
  ASSERT_TRUE(latest.has_value()) << error;
  EXPECT_EQ(latest->sequence, 4u);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointManagerTest, CorruptNewestFallsBackToPrevious) {
  const std::string dir = temp_dir("hetsgd_mgr_fallback");
  CheckpointManager mgr(dir, 3);
  TrainingCheckpoint ckpt = sample_checkpoint();
  ckpt.epoch = 1;
  std::string error;
  ASSERT_TRUE(mgr.save(ckpt, &error)) << error;
  ckpt.epoch = 2;
  ASSERT_TRUE(mgr.save(ckpt, &error)) << error;

  // Garble the newest file: the crash may have corrupted the very write
  // that was in flight. Resume must fall back, not fail.
  {
    std::ofstream out(dir + "/ckpt-2.hetsgd",
                      std::ios::binary | std::ios::trunc);
    out << "torn to shreds";
  }
  auto latest = CheckpointManager::load_latest(dir, &error);
  ASSERT_TRUE(latest.has_value()) << error;
  EXPECT_EQ(latest->sequence, 1u);
  EXPECT_EQ(latest->epoch, 1u);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointManagerTest, EmptyDirectoryReportsNothingUsable) {
  const std::string dir = temp_dir("hetsgd_mgr_empty");
  std::filesystem::create_directories(dir);
  std::string error;
  EXPECT_FALSE(CheckpointManager::load_latest(dir, &error).has_value());
  EXPECT_FALSE(error.empty());
  std::filesystem::remove_all(dir);
}

TEST(CheckpointManagerTest, SequenceNumberingSurvivesRestart) {
  const std::string dir = temp_dir("hetsgd_mgr_restart");
  TrainingCheckpoint ckpt = sample_checkpoint();
  std::string error;
  {
    CheckpointManager mgr(dir, 3);
    ASSERT_TRUE(mgr.save(ckpt, &error)) << error;
    ASSERT_TRUE(mgr.save(ckpt, &error)) << error;
  }
  // A resumed run's manager must append after the survivors, not reuse
  // sequence numbers (reuse would silently overwrite resume targets).
  CheckpointManager mgr(dir, 3);
  ASSERT_TRUE(mgr.save(ckpt, &error)) << error;
  EXPECT_EQ(ckpt.sequence, 3u);
  std::filesystem::remove_all(dir);
}

// --- seed determinism -----------------------------------------------------

TEST(Determinism, SameSeedSameTrajectoryMinibatchGpu) {
  TrainingConfig config = deterministic_config();
  Trainer a(small_dataset(), config);
  Trainer b(small_dataset(), config);
  TrainingResult ra = a.run();
  TrainingResult rb = b.run();
  ASSERT_GT(ra.loss_curve.size(), 1u);
  expect_same_trajectory(ra, rb);
}

TEST(Determinism, SameSeedSameTrajectoryHogwildSingleLane) {
  // Hogwild is deterministic only when there is exactly one lane and one
  // real thread: no racing writes to the shared model.
  TrainingConfig config = small_config();
  config.algorithm = Algorithm::kHogwildCpu;
  config.cpu.sim_lanes = 1;
  config.real_threads = 1;
  Trainer a(small_dataset(), config);
  Trainer b(small_dataset(), config);
  TrainingResult ra = a.run();
  TrainingResult rb = b.run();
  ASSERT_GT(ra.loss_curve.size(), 1u);
  expect_same_trajectory(ra, rb);
}

TEST(Determinism, DifferentSeedDifferentModel) {
  TrainingConfig config = deterministic_config();
  Trainer a(small_dataset(), config);
  config.seed += 1;
  Trainer b(small_dataset(), config);
  EXPECT_NE(a.run().final_model_bytes, b.run().final_model_bytes);
}

// --- resume determinism (the tentpole acceptance test) --------------------

TEST(Resume, ResumedTrajectoryMatchesUninterruptedRun) {
  const std::string dir = temp_dir("hetsgd_resume_det");
  TrainingConfig config = deterministic_config();

  // Uninterrupted reference run over the full budget.
  Trainer reference(small_dataset(), config);
  TrainingResult full = reference.run();
  ASSERT_GT(full.loss_curve.size(), 1u);

  // Interrupted run: half the budget, cutting a checkpoint at every epoch
  // barrier (interval 0), then resume to the full horizon.
  TrainingConfig half = config;
  half.time_budget_vseconds = config.time_budget_vseconds / 2.0;
  half.fault.checkpoint_dir = dir;
  Trainer interrupted(small_dataset(), half);
  TrainingResult first_leg = interrupted.run();
  ASSERT_GE(first_leg.checkpoints_written, 1u)
      << "half-budget run never reached an epoch barrier";

  TrainingConfig resumed_config = config;
  resumed_config.fault.checkpoint_dir = dir;
  resumed_config.fault.resume_dir = dir;
  Trainer resumed(small_dataset(), resumed_config);
  TrainingResult second_leg = resumed.run();
  EXPECT_TRUE(second_leg.resumed);
  EXPECT_GE(second_leg.resume_epoch, 1u);

  // The spliced trajectory — checkpointed prefix plus recomputed suffix —
  // must be bitwise identical to never having stopped.
  expect_same_trajectory(full, second_leg);
  std::filesystem::remove_all(dir);
}

TEST(Resume, EmptyResumeDirStartsFresh) {
  const std::string dir = temp_dir("hetsgd_resume_fresh");
  TrainingConfig config = deterministic_config();
  config.fault.resume_dir = dir;  // nothing there
  Trainer t(small_dataset(), config);
  TrainingResult r = t.run();
  EXPECT_FALSE(r.resumed);
  EXPECT_TRUE(std::isfinite(r.final_loss));
}

TEST(Resume, FingerprintMismatchRefusesToResume) {
  const std::string dir = temp_dir("hetsgd_resume_fpmm");
  TrainingConfig config = deterministic_config();
  config.fault.checkpoint_dir = dir;
  Trainer t(small_dataset(), config);
  TrainingResult r = t.run();
  ASSERT_GE(r.checkpoints_written, 1u);

  // Same directory, different seed: resuming would fork the trajectory.
  TrainingConfig other = config;
  other.seed += 1;
  other.fault.checkpoint_dir.clear();
  other.fault.resume_dir = dir;
  Trainer t2(small_dataset(), other);
  EXPECT_DEATH(t2.run(), "fingerprint mismatch");
  std::filesystem::remove_all(dir);
}

TEST(Resume, CheckpointsAreCutUnderFaultyRunsToo) {
  // The manager keeps cutting through worker deaths: the surviving
  // membership is persisted (the dead worker's blob may be empty).
  const std::string dir = temp_dir("hetsgd_resume_faulty");
  TrainingConfig config = small_config();
  config.fault.checkpoint_dir = dir;
  config.fault.plan = "die:worker=1,atfrac=0.3";
  config.fault.deadline_factor = 2.0;
  config.fault.quarantine_after = 1;
  config.fault.stall_grace_ticks = 3;
  Trainer t(small_dataset(), config);
  TrainingResult r = t.run();
  EXPECT_TRUE(std::isfinite(r.final_loss));
  EXPECT_GE(r.checkpoints_written, 1u);
  std::string error;
  auto latest = CheckpointManager::load_latest(dir, &error);
  ASSERT_TRUE(latest.has_value()) << error;
  EXPECT_TRUE(latest->model.all_finite());
  expect_ledger_invariant(r);
  std::filesystem::remove_all(dir);
}

// --- elastic membership ---------------------------------------------------

TEST(Elastic, PlanParsesAndRejects) {
  ElasticPlan plan;
  std::string error;
  ASSERT_TRUE(ElasticPlan::parse(
      "join:kind=gpu,atfrac=0.3;retire:worker=1,atfrac=0.6;join:kind=cpu,at=1",
      &plan, &error))
      << error;
  EXPECT_EQ(plan.events.size(), 3u);
  EXPECT_FALSE(ElasticPlan::parse("join:kind=tpu,atfrac=0.3", &plan, &error));
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(ElasticPlan::parse("retire:atfrac=0.5", &plan, &error));
  EXPECT_FALSE(error.empty());
}

TEST(Elastic, MidRunJoinContributesUpdates) {
  TrainingConfig config = small_config();
  config.time_budget_vseconds = 0.02;
  config.elastic_plan = "join:kind=gpu,atfrac=0.25";
  Trainer t(small_dataset(), config);
  TrainingResult r = t.run();
  EXPECT_TRUE(std::isfinite(r.final_loss));
  EXPECT_EQ(r.workers_joined, 1u);
  // Original CPU + GPU plus the joiner all appear in the ledger.
  EXPECT_EQ(r.workers.size(), 3u);
  bool joiner_worked = false;
  for (const auto& w : r.workers) {
    if (w.name.find("joined") != std::string::npos ||
        w.updates > 0) {
      joiner_worked = true;
    }
  }
  EXPECT_TRUE(joiner_worked);
  expect_ledger_invariant(r);
}

TEST(Elastic, MidRunRetireReclaimsAndPreservesLedger) {
  TrainingConfig config = small_config();
  config.time_budget_vseconds = 0.02;
  config.elastic_plan = "retire:worker=1,atfrac=0.3";
  Trainer t(small_dataset(), config);
  TrainingResult r = t.run();
  EXPECT_TRUE(std::isfinite(r.final_loss));
  EXPECT_EQ(r.workers_retired, 1u);
  EXPECT_GT(r.cpu_updates, 0u);  // the survivor finishes the run
  expect_ledger_invariant(r);
}

TEST(Elastic, JoinThenRetireKeepsTraining) {
  TrainingConfig config = small_config();
  config.time_budget_vseconds = 0.03;
  config.elastic_plan =
      "join:kind=gpu,atfrac=0.2;retire:worker=1,atfrac=0.5";
  Trainer t(small_dataset(), config);
  TrainingResult r = t.run();
  EXPECT_TRUE(std::isfinite(r.final_loss));
  EXPECT_EQ(r.workers_joined, 1u);
  EXPECT_EQ(r.workers_retired, 1u);
  expect_ledger_invariant(r);
}

}  // namespace
}  // namespace hetsgd::core
