#include "core/svrg.hpp"

#include <gtest/gtest.h>

#include "data/synthetic.hpp"

namespace hetsgd::core {
namespace {

data::Dataset svrg_dataset() {
  data::SyntheticSpec spec;
  spec.name = "svrg";
  spec.examples = 512;
  spec.dim = 12;
  spec.classes = 3;
  spec.feature_noise = 0.5;
  spec.seed = 21;
  return data::make_synthetic(spec);
}

TrainingConfig svrg_config() {
  TrainingConfig c;
  c.mlp.hidden_layers = 1;
  c.mlp.hidden_units = 12;
  c.mlp.hidden_activation = nn::Activation::kTanh;
  c.learning_rate = 1e-3;
  c.time_budget_vseconds = 1e9;
  c.max_epochs = 8;
  return c;
}

TEST(Svrg, LossDecreases) {
  data::Dataset d = svrg_dataset();
  SvrgOptions options;
  options.batch = 32;
  SvrgResult r = run_svrg(d, svrg_config(), options);
  ASSERT_GE(r.curve.size(), 2u);
  EXPECT_LT(r.curve.back().loss, r.curve.front().loss);
  EXPECT_GT(r.snapshots, 0u);
  EXPECT_GT(r.inner_updates, 0u);
}

TEST(Svrg, ChargesVirtualTime) {
  data::Dataset d = svrg_dataset();
  SvrgOptions options;
  options.batch = 32;
  SvrgResult r = run_svrg(d, svrg_config(), options);
  EXPECT_GT(r.final_vtime, 0.0);
  // Each inner step costs two batch gradients; snapshots cost full passes:
  // virtual time must exceed the plain-SGD cost of the same updates.
  EXPECT_GT(r.epochs, 1.0);
}

TEST(Svrg, RespectsTimeBudget) {
  data::Dataset d = svrg_dataset();
  TrainingConfig config = svrg_config();
  config.max_epochs = 0;
  // A tiny budget: enough for the first snapshot + a few steps only.
  SvrgOptions probe_options;
  probe_options.batch = 32;
  TrainingConfig probe = config;
  probe.max_epochs = 1;
  SvrgResult one_round = run_svrg(d, probe, probe_options);
  config.time_budget_vseconds = one_round.final_vtime * 0.5;
  SvrgResult r = run_svrg(d, config, probe_options);
  EXPECT_LE(r.final_vtime, one_round.final_vtime * 1.1);
}

TEST(Svrg, DeterministicForSeed) {
  SvrgOptions options;
  options.batch = 64;
  data::Dataset d1 = svrg_dataset();
  data::Dataset d2 = svrg_dataset();
  SvrgResult a = run_svrg(d1, svrg_config(), options);
  SvrgResult b = run_svrg(d2, svrg_config(), options);
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.curve[i].loss, b.curve[i].loss);
  }
}

TEST(Svrg, InnerStepsOptionControlsRound) {
  data::Dataset d = svrg_dataset();
  TrainingConfig config = svrg_config();
  config.max_epochs = 4;
  SvrgOptions options;
  options.batch = 32;
  options.inner_steps = 4;
  SvrgResult r = run_svrg(d, config, options);
  // With only 4 inner steps per round, snapshots dominate the work.
  EXPECT_GE(r.snapshots, r.inner_updates / 4);
}

}  // namespace
}  // namespace hetsgd::core
