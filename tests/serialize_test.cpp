#include "nn/serialize.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace hetsgd::nn {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

MlpConfig sample_config() {
  MlpConfig c;
  c.input_dim = 12;
  c.num_classes = 4;
  c.hidden_layers = 2;
  c.hidden_units = 7;
  c.hidden_activation = Activation::kTanh;
  c.init = InitScheme::kGlorotUniform;
  return c;
}

TEST(Serialize, RoundTripExact) {
  const std::string path = temp_path("hetsgd_ckpt_rt.bin");
  Rng rng(42);
  Model original(sample_config(), rng);
  save_model(original, path);
  Model loaded = load_model(path);
  EXPECT_EQ(loaded.max_abs_diff(original), 0.0);
  EXPECT_EQ(loaded.config().input_dim, 12);
  EXPECT_EQ(loaded.config().num_classes, 4);
  EXPECT_EQ(loaded.config().hidden_layers, 2);
  EXPECT_EQ(loaded.config().hidden_units, 7);
  EXPECT_EQ(loaded.config().hidden_activation, Activation::kTanh);
  EXPECT_EQ(loaded.config().init, InitScheme::kGlorotUniform);
  std::remove(path.c_str());
}

TEST(Serialize, RoundTripAfterTraining) {
  // Parameters changed from init must survive bit-for-bit.
  const std::string path = temp_path("hetsgd_ckpt_trained.bin");
  Rng rng(7);
  Model m(sample_config(), rng);
  m.layer(0).weights(0, 0) = 3.14159;
  m.layer(2).bias(0, 3) = -2.71828;
  save_model(m, path);
  Model loaded = load_model(path);
  EXPECT_EQ(loaded.layer(0).weights(0, 0), 3.14159);
  EXPECT_EQ(loaded.layer(2).bias(0, 3), -2.71828);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileDies) {
  EXPECT_DEATH(load_model("/nonexistent/ckpt.bin"), "cannot open");
}

TEST(Serialize, BadMagicDies) {
  const std::string path = temp_path("hetsgd_ckpt_bad.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOPE this is not a checkpoint";
  }
  EXPECT_DEATH(load_model(path), "bad magic");
  std::remove(path.c_str());
}

TEST(Serialize, TruncatedFileDies) {
  const std::string path = temp_path("hetsgd_ckpt_trunc.bin");
  Rng rng(1);
  Model m(sample_config(), rng);
  save_model(m, path);
  // Truncate to half size.
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full / 2);
  EXPECT_DEATH(load_model(path), "truncated");
  std::remove(path.c_str());
}

TEST(Serialize, NoHiddenLayers) {
  const std::string path = temp_path("hetsgd_ckpt_shallow.bin");
  MlpConfig c = sample_config();
  c.hidden_layers = 0;
  Rng rng(3);
  Model m(c, rng);
  save_model(m, path);
  Model loaded = load_model(path);
  EXPECT_EQ(loaded.layer_count(), 1u);
  EXPECT_EQ(loaded.max_abs_diff(m), 0.0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hetsgd::nn
