// Tests for the leveled logger (src/common/logging) and edge cases of
// CsvWriter beyond the basics covered in csv_cli_test: the logger is the
// one channel every thread's diagnostics funnel through, so its parsing,
// filtering, and line-atomicity guarantees each get a pin here.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/csv_writer.hpp"
#include "common/logging.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define HETSGD_TEST_HAS_DUP 1
#endif

namespace hetsgd {
namespace {

// Restores the global log level on scope exit so tests cannot leak a
// threshold into each other.
class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(ParseLogLevelTest, AcceptsEveryKnownName) {
  const std::pair<const char*, LogLevel> cases[] = {
      {"trace", LogLevel::kTrace}, {"debug", LogLevel::kDebug},
      {"info", LogLevel::kInfo},   {"warn", LogLevel::kWarn},
      {"error", LogLevel::kError}, {"off", LogLevel::kOff},
  };
  for (const auto& [name, expected] : cases) {
    LogLevel out = LogLevel::kOff;
    EXPECT_TRUE(parse_log_level(name, out)) << name;
    EXPECT_EQ(out, expected) << name;
  }
}

TEST(ParseLogLevelTest, RejectsUnknownNamesAndLeavesOutputUntouched) {
  for (const char* bad : {"", "INFO", "warning", "verbose", "3", "inf",
                          "info ", " info", "débug"}) {
    LogLevel out = LogLevel::kWarn;
    EXPECT_FALSE(parse_log_level(bad, out)) << "'" << bad << "'";
    EXPECT_EQ(out, LogLevel::kWarn) << "'" << bad << "'";
  }
}

TEST(LogLevelTest, SetAndGetRoundTrip) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kTrace);
  EXPECT_EQ(log_level(), LogLevel::kTrace);
}

#if defined(HETSGD_TEST_HAS_DUP)

// Redirects stderr (fd 2) to a file for the duration of the scope; the
// logger writes with fprintf(stderr, ...), so capturing the fd is the only
// faithful way to observe it.
class StderrCapture {
 public:
  explicit StderrCapture(const std::string& path) : path_(path) {
    std::fflush(stderr);
    saved_fd_ = ::dup(2);
    std::FILE* f = std::fopen(path.c_str(), "w");
    ::dup2(fileno(f), 2);
    std::fclose(f);
  }
  ~StderrCapture() { release(); }

  std::string take() {
    release();
    std::ifstream in(path_);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  }

 private:
  void release() {
    if (saved_fd_ < 0) return;
    std::fflush(stderr);
    ::dup2(saved_fd_, 2);
    ::close(saved_fd_);
    saved_fd_ = -1;
  }
  std::string path_;
  int saved_fd_ = -1;
};

TEST(LogMessageTest, ThresholdFiltersLowerLevels) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  StderrCapture capture(testing::TempDir() + "logging_threshold.txt");
  HETSGD_LOG_DEBUG("test", "dropped debug %d", 1);
  HETSGD_LOG_INFO("test", "dropped info %d", 2);
  HETSGD_LOG_WARN("test", "kept warn %d", 3);
  HETSGD_LOG_ERROR("test", "kept error %d", 4);
  const std::string out = capture.take();
  EXPECT_EQ(out.find("dropped"), std::string::npos);
  EXPECT_NE(out.find("kept warn 3"), std::string::npos);
  EXPECT_NE(out.find("kept error 4"), std::string::npos);
  EXPECT_NE(out.find("[WARN ][test]"), std::string::npos);
}

TEST(LogMessageTest, OffSilencesEverything) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  StderrCapture capture(testing::TempDir() + "logging_off.txt");
  HETSGD_LOG_ERROR("test", "should not appear");
  EXPECT_TRUE(capture.take().empty());
}

TEST(LogMessageTest, InterleavedThreadsKeepLinesIntact) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  StderrCapture capture(testing::TempDir() + "logging_interleave.txt");
  constexpr int kThreads = 8;
  constexpr int kLines = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        HETSGD_LOG_INFO("interleave", "thread=%d line=%d padpadpadpadpad", t,
                        i);
      }
    });
  }
  for (auto& t : threads) t.join();
  const std::string out = capture.take();

  std::istringstream lines(out);
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    if (line.find("interleave") == std::string::npos) continue;  // other logs
    ++count;
    // Every line must be exactly one whole message: correct prefix, both
    // fields, and the tail marker — a torn write would break one of these.
    EXPECT_EQ(line.rfind("[INFO ][interleave] thread=", 0), 0u) << line;
    EXPECT_NE(line.find(" line="), std::string::npos) << line;
    EXPECT_NE(line.find("padpadpadpadpad"), std::string::npos) << line;
  }
  EXPECT_EQ(count, kThreads * kLines);
}

#endif  // HETSGD_TEST_HAS_DUP

TEST(CsvWriterEdgeTest, EmptyStringsAndSpecialValuesWrittenVerbatim) {
  const std::string path = testing::TempDir() + "csv_edge.csv";
  {
    CsvWriter csv(path, {"a", "b", "c"});
    csv.row(std::vector<std::string>{"", "with space", "trailing,comma"});
    csv.flush();
  }
  std::ifstream in(path);
  std::string header, data;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, data));
  EXPECT_EQ(header, "a,b,c");
  EXPECT_EQ(data, ",with space,trailing,comma");
}

TEST(CsvWriterEdgeTest, DoubleRowsKeepTenSignificantDigits) {
  const std::string path = testing::TempDir() + "csv_precision.csv";
  const double value = 0.1234567890123456789;
  {
    CsvWriter csv(path, {"x"});
    csv.row(std::vector<double>{value});
    csv.flush();
  }
  std::ifstream in(path);
  std::string header, data;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, data));
  // The writer formats with %.10g: ten significant digits survive.
  EXPECT_NEAR(std::stod(data), value, 1e-10);
}

TEST(CsvWriterEdgeTest, ManyRowsAllLand) {
  const std::string path = testing::TempDir() + "csv_many.csv";
  constexpr int kRows = 1000;
  {
    CsvWriter csv(path, {"i", "sq"});
    for (int i = 0; i < kRows; ++i) {
      csv.row(std::vector<double>{static_cast<double>(i),
                                  static_cast<double>(i) * i});
    }
    csv.flush();
  }
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, kRows + 1);  // header + rows
}

}  // namespace
}  // namespace hetsgd
