#include "common/rng.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace hetsgd {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Rng rng(99);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(5);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextBelowUnbiasedSmallBound) {
  Rng rng(13);
  std::vector<int> counts(5, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.next_below(5)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.01);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0, sum_sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(19);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<std::size_t> v(100);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = i;
  rng.shuffle(v);
  std::vector<std::size_t> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, ShuffleActuallyMoves) {
  Rng rng(31);
  std::vector<std::uint32_t> v(100);
  for (std::uint32_t i = 0; i < 100; ++i) v[i] = i;
  rng.shuffle(v);
  int moved = 0;
  for (std::uint32_t i = 0; i < 100; ++i) {
    if (v[i] != i) ++moved;
  }
  EXPECT_GT(moved, 50);
}

TEST(Rng, ForkIsIndependentOfParentUse) {
  Rng a(41);
  Rng fork1 = a.fork(1);
  // Consuming from the parent must not change what fork(1) produces.
  Rng b(41);
  b.next_u64();
  b.next_u64();
  Rng fork2 = b.fork(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_NE(fork1.next_u64(), 0u);  // stream is live
  }
  Rng c(41);
  Rng fork3 = c.fork(1);
  Rng fork1b = Rng(41).fork(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(fork3.next_u64(), fork1b.next_u64());
  }
  (void)fork2;
}

TEST(Rng, ForkStreamsDiffer) {
  Rng a(43);
  Rng f1 = a.fork(1);
  Rng f2 = a.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (f1.next_u64() == f2.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Splitmix, KnownNonZeroSequence) {
  std::uint64_t s = 0;
  std::uint64_t a = splitmix64(s);
  std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_NE(a, 0u);
}

}  // namespace
}  // namespace hetsgd
