// Fault injection and self-healing: worker death, stalls, transient
// transfer failures, gradient corruption, and recoverable checkpoint
// loading. The central invariant, asserted after every faulty run:
//
//   examples_dispatched == examples_reported + examples_reclaimed
//
// i.e. every dispatched batch is either accounted for by a worker report
// or explicitly reclaimed by the coordinator — nothing is silently lost.
#include "core/fault.hpp"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "core/trainer.hpp"
#include "data/synthetic.hpp"
#include "nn/serialize.hpp"

namespace hetsgd::core {
namespace {

data::Dataset small_dataset(std::uint64_t seed = 11) {
  data::SyntheticSpec spec;
  spec.name = "fault";
  spec.examples = 1024;
  spec.dim = 16;
  spec.classes = 3;
  spec.feature_noise = 0.5;
  spec.seed = seed;
  return data::make_synthetic(spec);
}

TrainingConfig small_config() {
  TrainingConfig config;
  config.algorithm = Algorithm::kAdaptiveHogbatch;
  config.mlp.hidden_layers = 1;
  config.mlp.hidden_units = 16;
  config.learning_rate = 1e-3;
  config.time_budget_vseconds = 0.01;
  config.eval_interval_vseconds = 0.002;
  config.gpu.batch = 256;
  config.gpu.min_batch = 64;
  config.gpu.max_batch = 256;
  config.cpu.sim_lanes = 8;
  config.real_threads = 2;
  return config;
}

std::uint64_t reported_examples(const TrainingResult& r) {
  std::uint64_t total = 0;
  for (const auto& w : r.workers) total += w.examples;
  return total;
}

std::uint64_t count_kind(const TrainingResult& r, FaultKind kind) {
  std::uint64_t n = 0;
  for (const auto& e : r.fault_events) {
    if (e.kind == kind) ++n;
  }
  return n;
}

// Every dispatched example is either reported by a worker or reclaimed.
void expect_ledger_invariant(const TrainingResult& r) {
  EXPECT_EQ(r.examples_dispatched, reported_examples(r) + r.examples_reclaimed)
      << "dispatched=" << r.examples_dispatched
      << " reported=" << reported_examples(r)
      << " reclaimed=" << r.examples_reclaimed;
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// --- FaultPlan parsing ----------------------------------------------------

TEST(FaultPlan, ParsesMultiEventSpec) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::parse(
      "stall:worker=0,atfrac=0.2,factor=8,sleep=50;die:worker=1,at=0.013;"
      "transfer:worker=1,atfrac=0.5,count=2;nan:worker=0,atfrac=0.3",
      7, &plan, &error))
      << error;
  EXPECT_EQ(plan.event_count(), 4u);
  EXPECT_TRUE(plan.contains(FaultKind::kStall));
  EXPECT_TRUE(plan.contains(FaultKind::kDeath));
  EXPECT_TRUE(plan.contains(FaultKind::kTransferFailure));
  EXPECT_TRUE(plan.contains(FaultKind::kGradientCorruption));
  EXPECT_FALSE(plan.contains(FaultKind::kDeadlineMiss));
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  FaultPlan plan;
  std::string error;
  EXPECT_FALSE(FaultPlan::parse("explode:worker=0", 7, &plan, &error));
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(FaultPlan::parse("die:bogus=1", 7, &plan, &error));
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(FaultPlan::parse("die:worker=notanum", 7, &plan, &error));
  EXPECT_FALSE(error.empty());
}

TEST(FaultPlan, StallsArePersistentAndCumulative) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::parse(
      "stall:worker=0,at=1.0,factor=4,sleep=10;stall:worker=0,at=2.0,factor=2",
      7, &plan, &error))
      << error;
  plan.resolve_times(10.0);
  EXPECT_DOUBLE_EQ(plan.stall(0, 0.5).factor, 1.0);
  EXPECT_DOUBLE_EQ(plan.stall(0, 1.5).factor, 4.0);
  EXPECT_EQ(plan.stall(0, 1.5).sleep_ms, 10);
  EXPECT_DOUBLE_EQ(plan.stall(0, 2.5).factor, 8.0);  // 4 * 2, cumulative
  EXPECT_DOUBLE_EQ(plan.stall(1, 2.5).factor, 1.0);  // other worker untouched
}

TEST(FaultPlan, DeathFiresExactlyOnce) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::parse("die:worker=1,at=1.0", 7, &plan, &error));
  plan.resolve_times(10.0);
  EXPECT_FALSE(plan.death_due(1, 0.5));
  EXPECT_FALSE(plan.death_due(0, 1.5));  // other worker unaffected
  EXPECT_TRUE(plan.death_due(1, 1.5));
  EXPECT_FALSE(plan.death_due(1, 2.0));  // consumed
  ASSERT_EQ(plan.fired().size(), 1u);
  EXPECT_EQ(plan.fired()[0].kind, FaultKind::kDeath);
}

// --- end-to-end recovery --------------------------------------------------

TEST(FaultRecovery, NoFaultRunWithLayerEnabledIsClean) {
  // The deadline/reclamation layer must be behavior-neutral when nothing
  // faults: no misses, no reclaims, loss still improves.
  TrainingConfig config = small_config();
  config.fault.deadline_factor = 2.0;
  Trainer trainer(small_dataset(), config);
  TrainingResult r = trainer.run();
  EXPECT_LT(r.final_loss, r.initial_loss);
  EXPECT_EQ(r.examples_reclaimed, 0u);
  EXPECT_EQ(r.quarantined_workers, 0u);
  EXPECT_TRUE(r.fault_events.empty());
  expect_ledger_invariant(r);
}

TEST(FaultRecovery, GpuWorkerDeathMidEpochCompletesOnSurvivor) {
  TrainingConfig config = small_config();
  config.fault.plan = "die:worker=1,atfrac=0.3";
  config.fault.deadline_factor = 2.0;
  config.fault.quarantine_after = 1;
  config.fault.stall_grace_ticks = 3;
  Trainer trainer(small_dataset(), config);
  TrainingResult r = trainer.run();  // must not hang on the dead actor
  EXPECT_TRUE(std::isfinite(r.final_loss));
  EXPECT_FALSE(r.diverged);
  EXPECT_GT(r.cpu_updates, 0u);  // the survivor kept training
  EXPECT_GE(r.quarantined_workers, 1u);
  EXPECT_GT(r.examples_reclaimed, 0u);  // the dead worker's batch came back
  EXPECT_GE(count_kind(r, FaultKind::kDeath), 1u);
  EXPECT_GE(count_kind(r, FaultKind::kReclaim), 1u);
  EXPECT_GE(count_kind(r, FaultKind::kRedispatch), 1u);
  expect_ledger_invariant(r);
}

TEST(FaultRecovery, CpuWorkerDeathMidEpochCompletesOnSurvivor) {
  TrainingConfig config = small_config();
  config.fault.plan = "die:worker=0,atfrac=0.3";
  config.fault.deadline_factor = 2.0;
  config.fault.quarantine_after = 1;
  config.fault.stall_grace_ticks = 3;
  Trainer trainer(small_dataset(), config);
  TrainingResult r = trainer.run();
  EXPECT_TRUE(std::isfinite(r.final_loss));
  EXPECT_GT(r.gpu_updates, 0u);
  EXPECT_GE(r.quarantined_workers, 1u);
  EXPECT_GE(count_kind(r, FaultKind::kDeath), 1u);
  expect_ledger_invariant(r);
}

TEST(FaultRecovery, StalledWorkerMissesDeadlineAndIsQuarantined) {
  TrainingConfig config = small_config();
  // factor inflates the virtual cost past the deadline; sleep makes the
  // real-time grace fallback deterministic as well — whichever detection
  // path fires first, the batch must be reclaimed.
  config.fault.plan = "stall:worker=0,atfrac=0.2,factor=50,sleep=120";
  config.fault.deadline_factor = 1.5;
  config.fault.quarantine_after = 1;
  config.fault.stall_grace_ticks = 2;
  Trainer trainer(small_dataset(), config);
  TrainingResult r = trainer.run();
  EXPECT_TRUE(std::isfinite(r.final_loss));
  EXPECT_GE(count_kind(r, FaultKind::kStall), 1u);
  EXPECT_GE(count_kind(r, FaultKind::kDeadlineMiss), 1u);
  EXPECT_GE(count_kind(r, FaultKind::kReclaim), 1u);
  EXPECT_GE(r.quarantined_workers, 1u);
  // The stalled worker eventually wakes and reports a batch that was
  // already reclaimed; the ledger must book it as late, not double-count.
  EXPECT_GT(r.late_examples, 0u);
  expect_ledger_invariant(r);
}

TEST(FaultRecovery, InjectedNanRollsBackToFiniteLoss) {
  TrainingConfig config = small_config();
  config.fault.plan = "nan:worker=0,atfrac=0.3";
  Trainer trainer(small_dataset(), config);
  TrainingResult r = trainer.run();
  EXPECT_TRUE(std::isfinite(r.final_loss));
  EXPECT_FALSE(r.diverged);
  EXPECT_GE(r.rollbacks, 1u);
  EXPECT_LE(r.final_lr_scale, 0.5);  // at least one halving
  EXPECT_GE(count_kind(r, FaultKind::kGradientCorruption), 1u);
  EXPECT_GE(count_kind(r, FaultKind::kDivergenceRollback), 1u);
  for (const auto& p : r.loss_curve) EXPECT_TRUE(std::isfinite(p.loss));
  expect_ledger_invariant(r);
}

TEST(FaultRecovery, InjectedNanAbortsCleanlyWhenConfigured) {
  TrainingConfig config = small_config();
  config.fault.plan = "nan:worker=0,atfrac=0.3";
  config.fault.abort_on_divergence = true;
  Trainer trainer(small_dataset(), config);
  TrainingResult r = trainer.run();  // must terminate, not hang
  EXPECT_TRUE(r.diverged);
  EXPECT_GE(count_kind(r, FaultKind::kDivergenceAbort), 1u);
  // Shutdown reclaims in-flight batches so the accounting closes even on
  // an aborted run.
  expect_ledger_invariant(r);
}

TEST(FaultRecovery, TransientTransferFailureRetriesWithoutCoordinator) {
  TrainingConfig config = small_config();
  config.fault.plan = "transfer:worker=1,atfrac=0.4,count=2";
  config.fault.deadline_factor = 2.0;
  config.fault.max_transfer_retries = 4;
  Trainer trainer(small_dataset(), config);
  TrainingResult r = trainer.run();
  EXPECT_TRUE(std::isfinite(r.final_loss));
  EXPECT_GT(r.gpu_updates, 0u);
  EXPECT_GE(count_kind(r, FaultKind::kTransferFailure), 1u);
  // Retries succeed locally: the coordinator never hears about it.
  EXPECT_EQ(count_kind(r, FaultKind::kWorkerFault), 0u);
  EXPECT_EQ(count_kind(r, FaultKind::kReclaim), 0u);
  EXPECT_EQ(r.examples_reclaimed, 0u);
  EXPECT_EQ(r.quarantined_workers, 0u);
  expect_ledger_invariant(r);
}

TEST(FaultRecovery, ExhaustedTransferRetriesEscalateToCoordinator) {
  TrainingConfig config = small_config();
  // More consecutive failures than the retry budget: the worker escalates
  // a WorkerFault and the coordinator degrades to the CPU survivor.
  config.fault.plan = "transfer:worker=1,atfrac=0.4,count=20";
  config.fault.deadline_factor = 2.0;
  config.fault.max_transfer_retries = 2;
  config.fault.stall_grace_ticks = 3;
  Trainer trainer(small_dataset(), config);
  TrainingResult r = trainer.run();
  EXPECT_TRUE(std::isfinite(r.final_loss));
  EXPECT_GT(r.cpu_updates, 0u);
  EXPECT_GE(count_kind(r, FaultKind::kWorkerFault), 1u);
  EXPECT_GE(r.quarantined_workers, 1u);
  expect_ledger_invariant(r);
}

TEST(FaultRecovery, AutoCheckpointWritesLoadableSnapshots) {
  const std::string path = temp_path("hetsgd_fault_autockpt.ckpt");
  TrainingConfig config = small_config();
  config.fault.checkpoint_interval_vseconds = 0.002;
  config.fault.checkpoint_path = path;
  Trainer trainer(small_dataset(), config);
  TrainingResult r = trainer.run();
  EXPECT_GE(r.checkpoints_written, 1u);
  std::string error;
  std::optional<nn::Model> restored = nn::try_load_model(path, &error);
  ASSERT_TRUE(restored.has_value()) << error;
  EXPECT_TRUE(restored->all_finite());
  std::remove(path.c_str());
}

TEST(FaultRecovery, FaultEventsCsvIsWritten) {
  const std::string path = temp_path("hetsgd_fault_events.csv");
  TrainingConfig config = small_config();
  config.fault.plan = "nan:worker=0,atfrac=0.3";
  Trainer trainer(small_dataset(), config);
  TrainingResult r = trainer.run();
  ASSERT_FALSE(r.fault_events.empty());
  write_fault_events_csv(r, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("vtime"), std::string::npos);
  EXPECT_NE(header.find("kind"), std::string::npos);
  std::size_t rows = 0;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, r.fault_events.size());
  std::remove(path.c_str());
}

// --- recoverable checkpoint loading ---------------------------------------

nn::Model tiny_model() {
  nn::MlpConfig c;
  c.input_dim = 8;
  c.num_classes = 3;
  c.hidden_layers = 1;
  c.hidden_units = 4;
  Rng rng(3);
  return nn::Model(c, rng);
}

TEST(TryLoadModel, MissingFileReturnsError) {
  std::string error;
  EXPECT_FALSE(
      nn::try_load_model(temp_path("hetsgd_no_such_file.ckpt"), &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

TEST(TryLoadModel, GarbageFileReturnsError) {
  const std::string path = temp_path("hetsgd_garbage.ckpt");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is definitely not a checkpoint, not even close";
  }
  std::string error;
  EXPECT_FALSE(nn::try_load_model(path, &error));
  EXPECT_NE(error.find("bad magic"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(TryLoadModel, ImplausibleHeaderReturnsErrorWithoutAllocating) {
  const std::string path = temp_path("hetsgd_implausible.ckpt");
  {
    // Valid magic and version followed by a hostile header: dimensions
    // that would demand terabytes must be rejected before any allocation.
    std::ofstream out(path, std::ios::binary);
    out.write("HSGD", 4);
    const std::uint32_t version = nn::kCheckpointVersion;
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    const std::int64_t huge = std::int64_t{1} << 60;
    out.write(reinterpret_cast<const char*>(&huge), sizeof(huge));  // input
    out.write(reinterpret_cast<const char*>(&huge), sizeof(huge));  // classes
    const std::uint32_t layers = 9999999;
    out.write(reinterpret_cast<const char*>(&layers), sizeof(layers));
    out.write(reinterpret_cast<const char*>(&huge), sizeof(huge));  // units
    const std::uint32_t junk = 0xdeadbeef;
    out.write(reinterpret_cast<const char*>(&junk), sizeof(junk));
    out.write(reinterpret_cast<const char*>(&junk), sizeof(junk));
  }
  std::string error;
  EXPECT_FALSE(nn::try_load_model(path, &error));
  EXPECT_NE(error.find("implausible"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(TryLoadModel, TruncatedFileReturnsError) {
  const std::string path = temp_path("hetsgd_truncated.ckpt");
  nn::Model model = tiny_model();
  nn::save_model(model, path);
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full / 2);
  std::string error;
  EXPECT_FALSE(nn::try_load_model(path, &error));
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(TryLoadModel, UnsupportedVersionReturnsError) {
  const std::string path = temp_path("hetsgd_badversion.ckpt");
  nn::Model model = tiny_model();
  nn::save_model(model, path);
  {
    // Bump the version field in place.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(4);
    const std::uint32_t bad = nn::kCheckpointVersion + 41;
    f.write(reinterpret_cast<const char*>(&bad), sizeof(bad));
  }
  std::string error;
  EXPECT_FALSE(nn::try_load_model(path, &error));
  EXPECT_NE(error.find("unsupported checkpoint version"), std::string::npos)
      << error;
  std::remove(path.c_str());
}

TEST(TryLoadModel, RoundTripRestoresParameters) {
  const std::string path = temp_path("hetsgd_roundtrip.ckpt");
  nn::Model model = tiny_model();
  nn::save_model(model, path);
  std::string error;
  std::optional<nn::Model> loaded = nn::try_load_model(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->max_abs_diff(model), 0.0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hetsgd::core
