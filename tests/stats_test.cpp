#include "common/stats.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace hetsgd {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStat, MatchesDirectComputation) {
  Rng rng(5);
  std::vector<double> xs;
  RunningStat s;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.normal(3.0, 2.0);
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= xs.size();
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= (xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-9);
  EXPECT_NEAR(s.sum(), mean * 1000, 1e-6);
}

TEST(RunningStat, MergeEqualsSequential) {
  Rng rng(9);
  RunningStat all, a, b;
  for (int i = 0; i < 500; ++i) {
    double x = rng.uniform(-10, 10);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, b;
  a.add(1.0);
  a.add(2.0);
  RunningStat before = a;
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), before.mean());
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_NEAR(b.mean(), 1.5, 1e-12);
}

TEST(RunningStat, Reset) {
  RunningStat s;
  s.add(1);
  s.add(2);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(Percentile, Basics) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_EQ(percentile(v, 0), 1.0);
  EXPECT_EQ(percentile(v, 100), 5.0);
  EXPECT_EQ(percentile(v, 50), 3.0);
  EXPECT_NEAR(percentile(v, 25), 2.0, 1e-12);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v{0, 10};
  EXPECT_NEAR(percentile(v, 50), 5.0, 1e-12);
  EXPECT_NEAR(percentile(v, 10), 1.0, 1e-12);
}

TEST(Percentile, EmptyAndSingle) {
  EXPECT_EQ(percentile({}, 50), 0.0);
  EXPECT_EQ(percentile({7.0}, 99), 7.0);
}

TEST(Percentile, UnsortedInput) {
  std::vector<double> v{5, 1, 4, 2, 3};
  EXPECT_EQ(percentile(v, 50), 3.0);
}

TEST(Ewma, FirstValueInitializes) {
  Ewma e(0.5);
  EXPECT_FALSE(e.initialized());
  e.add(10.0);
  EXPECT_TRUE(e.initialized());
  EXPECT_EQ(e.value(), 10.0);
}

TEST(Ewma, Smooths) {
  Ewma e(0.5);
  e.add(0.0);
  e.add(10.0);
  EXPECT_NEAR(e.value(), 5.0, 1e-12);
  e.add(10.0);
  EXPECT_NEAR(e.value(), 7.5, 1e-12);
}

TEST(Ewma, ConvergesToConstant) {
  Ewma e(0.2);
  for (int i = 0; i < 200; ++i) e.add(3.0);
  EXPECT_NEAR(e.value(), 3.0, 1e-9);
}

}  // namespace
}  // namespace hetsgd
