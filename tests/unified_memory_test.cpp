#include "gpusim/unified_memory.hpp"  // hetsgd-lint: allow(gpusim-include) gpusim subsystem unit test

#include <gtest/gtest.h>

namespace hetsgd::gpusim {
namespace {

using tensor::Index;

struct Fixture {
  DeviceAllocator allocator{1 << 24};  // 16 MiB
  PerfModel perf{v100_spec()};
  Stream stream{0};
};

TEST(UnifiedMemory, StartsHostResident) {
  Fixture f;
  UnifiedMatrix m(&f.allocator, 256, 8, 64);
  EXPECT_EQ(m.page_count(), 4);
  for (Index r = 0; r < 256; r += 64) {
    EXPECT_FALSE(m.row_on_device(r));
  }
  EXPECT_EQ(f.allocator.in_use(), 0u);
}

TEST(UnifiedMemory, DeviceAccessMigratesAndAccounts) {
  Fixture f;
  UnifiedMatrix m(&f.allocator, 256, 8, 64);
  double done = 0.0;
  m.device_access(0, 64, f.perf, f.stream, 0.0, &done);
  EXPECT_TRUE(m.row_on_device(0));
  EXPECT_FALSE(m.row_on_device(64));
  EXPECT_EQ(m.page_faults(), 1u);
  EXPECT_EQ(m.bytes_migrated(), 64u * 8 * sizeof(tensor::Scalar));
  EXPECT_EQ(f.allocator.in_use(), 64u * 8 * sizeof(tensor::Scalar));
  EXPECT_GT(done, kPageFaultLatency);  // fault latency charged
}

TEST(UnifiedMemory, RepeatAccessIsFree) {
  Fixture f;
  UnifiedMatrix m(&f.allocator, 128, 8, 64);
  double d1 = 0, d2 = 0;
  m.device_access(0, 128, f.perf, f.stream, 0.0, &d1);
  m.device_access(0, 128, f.perf, f.stream, d1, &d2);
  EXPECT_EQ(m.page_faults(), 2u);  // two pages on the first access
  EXPECT_DOUBLE_EQ(d2, d1);        // second access: no migration, no cost
}

TEST(UnifiedMemory, PingPongMigratesBackAndForth) {
  Fixture f;
  UnifiedMatrix m(&f.allocator, 64, 8, 64);
  double t = 0.0;
  auto view = m.device_access(0, 64, f.perf, f.stream, t, &t);
  view(0, 0) = 1.0;  // device writes
  auto host = m.host_access(0, 64, f.perf, f.stream, t, &t);
  EXPECT_EQ(host(0, 0), 1.0);  // same backing store, coherent
  EXPECT_FALSE(m.row_on_device(0));
  EXPECT_EQ(f.allocator.in_use(), 0u);  // device share released
  EXPECT_EQ(m.page_faults(), 2u);
  m.device_access(0, 64, f.perf, f.stream, t, &t);
  EXPECT_EQ(m.page_faults(), 3u);
}

TEST(UnifiedMemory, PrefetchAvoidsFaultLatency) {
  Fixture f;
  UnifiedMatrix faulted(&f.allocator, 1024, 64, 64);
  UnifiedMatrix prefetched(&f.allocator, 1024, 64, 64);
  Stream s1(1), s2(2);
  double fault_done = 0.0;
  faulted.device_access(0, 1024, f.perf, s1, 0.0, &fault_done);
  const double prefetch_done =
      prefetched.prefetch_to_device(0, 1024, f.perf, s2, 0.0);
  EXPECT_LT(prefetch_done, fault_done);  // no per-page fault latency
  EXPECT_EQ(prefetched.page_faults(), 0u);
  EXPECT_EQ(prefetched.bytes_migrated(), faulted.bytes_migrated());
}

TEST(UnifiedMemory, PartialPageAtTheEnd) {
  Fixture f;
  UnifiedMatrix m(&f.allocator, 100, 8, 64);  // pages: 64 + 36 rows
  EXPECT_EQ(m.page_count(), 2);
  double done = 0.0;
  m.device_access(64, 36, f.perf, f.stream, 0.0, &done);
  EXPECT_EQ(f.allocator.in_use(), 36u * 8 * sizeof(tensor::Scalar));
}

TEST(UnifiedMemory, OversubscriptionDies) {
  DeviceAllocator tiny(1024);
  PerfModel perf(v100_spec());
  Stream stream(0);
  UnifiedMatrix m(&tiny, 64, 8, 64);  // page = 4 KiB > 1 KiB capacity
  double done = 0.0;
  EXPECT_DEATH(m.device_access(0, 64, perf, stream, 0.0, &done),
               "out of memory");
}

TEST(UnifiedMemory, OutOfRangeAccessDies) {
  Fixture f;
  UnifiedMatrix m(&f.allocator, 64, 8, 64);
  double done = 0.0;
  EXPECT_DEATH(m.device_access(32, 64, f.perf, f.stream, 0.0, &done),
               "out of range");
}

TEST(UnifiedMemory, DestructorReleasesDeviceShare) {
  Fixture f;
  {
    UnifiedMatrix m(&f.allocator, 128, 8, 64);
    double done = 0.0;
    m.device_access(0, 128, f.perf, f.stream, 0.0, &done);
    EXPECT_GT(f.allocator.in_use(), 0u);
  }
  EXPECT_EQ(f.allocator.in_use(), 0u);
}

}  // namespace
}  // namespace hetsgd::gpusim
