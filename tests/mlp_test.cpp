#include "nn/mlp.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

namespace hetsgd::nn {
namespace {

using tensor::Index;
using tensor::Matrix;
using tensor::Scalar;

MlpConfig tiny_config(Activation act = Activation::kSigmoid) {
  MlpConfig c;
  c.input_dim = 6;
  c.num_classes = 3;
  c.hidden_layers = 2;
  c.hidden_units = 5;
  c.hidden_activation = act;
  return c;
}

struct Problem {
  Model model;
  Matrix x;
  std::vector<std::int32_t> y;
};

Problem make_problem(const MlpConfig& c, Index batch, std::uint64_t seed) {
  Rng rng(seed);
  Problem p{Model(c, rng), Matrix(batch, c.input_dim), {}};
  tensor::fill_normal(p.x.view(), rng, 0, 1);
  p.y.resize(static_cast<std::size_t>(batch));
  for (auto& label : p.y) {
    label = static_cast<std::int32_t>(
        rng.next_below(static_cast<std::uint64_t>(c.num_classes)));
  }
  return p;
}

TEST(WorkspaceScratch, GrowsMonotonicallyUntilClampedOrReleased) {
  MlpConfig c = tiny_config();
  Problem big = make_problem(c, 64, 1);
  Problem small = make_problem(c, 8, 2);
  Workspace ws;

  forward(big.model, big.x.view(), ws);
  const std::uint64_t high_water = ws.scratch_bytes();
  EXPECT_EQ(ws.capacity_rows(), 64);
  EXPECT_GT(high_water, 0u);

  // A smaller batch reuses the tall buffers: no shrink on its own.
  forward(small.model, small.x.view(), ws);
  EXPECT_EQ(ws.capacity_rows(), 64);
  EXPECT_EQ(ws.scratch_bytes(), high_water);

  // clamp() cuts the tall buffers down; shorter ones are left alone.
  ws.clamp(16);
  EXPECT_EQ(ws.capacity_rows(), 16);
  EXPECT_LT(ws.scratch_bytes(), high_water);
  ws.clamp(32);  // clamping above the current height is a no-op
  EXPECT_EQ(ws.capacity_rows(), 16);

  // release() frees everything; the workspace stays usable and the math
  // after a regrow matches a fresh workspace exactly.
  ws.release();
  EXPECT_EQ(ws.capacity_rows(), 0);
  EXPECT_EQ(ws.scratch_bytes(), 0u);

  Workspace fresh;
  Gradient grad_reused = make_zero_gradient(big.model);
  Gradient grad_fresh = make_zero_gradient(big.model);
  const Scalar loss_reused = compute_gradient(
      big.model, big.x.view(), big.y, ws, grad_reused);
  const Scalar loss_fresh = compute_gradient(
      big.model, big.x.view(), big.y, fresh, grad_fresh);
  EXPECT_EQ(loss_reused, loss_fresh);
  EXPECT_EQ(grad_reused.max_abs_diff(grad_fresh), 0.0);
}

TEST(Forward, OutputShape) {
  MlpConfig c = tiny_config();
  Problem p = make_problem(c, 7, 1);
  Workspace ws;
  forward(p.model, p.x.view(), ws);
  EXPECT_EQ(ws.logits().rows(), 7);
  EXPECT_EQ(ws.logits().cols(), 3);
}

TEST(Forward, HiddenActivationsInSigmoidRange) {
  MlpConfig c = tiny_config(Activation::kSigmoid);
  Problem p = make_problem(c, 5, 2);
  Workspace ws;
  forward(p.model, p.x.view(), ws);
  const auto& hidden = ws.acts()[0];
  for (Index r = 0; r < 5; ++r) {
    for (Index col = 0; col < c.hidden_units; ++col) {
      EXPECT_GT(hidden(r, col), 0.0);
      EXPECT_LT(hidden(r, col), 1.0);
    }
  }
}

TEST(Forward, MatchesManualSingleLayer) {
  MlpConfig c;
  c.input_dim = 2;
  c.num_classes = 2;
  c.hidden_layers = 0;
  Rng rng(3);
  Model m(c, rng);
  m.layer(0).weights = Matrix{{1, 2}, {3, 4}};
  m.layer(0).bias = Matrix{{0.5, -0.5}};
  Matrix x{{1, 1}};
  Workspace ws;
  forward(m, x.view(), ws);
  EXPECT_DOUBLE_EQ(ws.logits()(0, 0), 3.5);   // 1+2+0.5
  EXPECT_DOUBLE_EQ(ws.logits()(0, 1), 6.5);   // 3+4-0.5
}

class GradientCheck : public ::testing::TestWithParam<Activation> {};

TEST_P(GradientCheck, MatchesFiniteDifferences) {
  MlpConfig c = tiny_config(GetParam());
  Problem p = make_problem(c, 4, 5);
  Workspace ws;
  Gradient grad = make_zero_gradient(p.model);
  compute_gradient(p.model, p.x.view(), p.y, ws, grad);

  const double eps = 1e-6;
  Workspace ws2;
  // Check a spread of parameters in every layer (weights + biases).
  for (std::size_t l = 0; l < p.model.layer_count(); ++l) {
    auto& w = p.model.layer(l).weights;
    for (Index idx = 0; idx < w.size();
         idx += std::max<Index>(1, w.size() / 7)) {
      const Scalar saved = w.data()[idx];
      w.data()[idx] = saved + eps;
      const double up =
          compute_loss(p.model, p.x.view(), p.y, ws2);
      w.data()[idx] = saved - eps;
      const double down =
          compute_loss(p.model, p.x.view(), p.y, ws2);
      w.data()[idx] = saved;
      const double numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(grad.layer(l).weights.data()[idx], numeric, 1e-7)
          << "layer " << l << " weight index " << idx;
    }
    auto& b = p.model.layer(l).bias;
    for (Index idx = 0; idx < b.size(); ++idx) {
      const Scalar saved = b.data()[idx];
      b.data()[idx] = saved + eps;
      const double up = compute_loss(p.model, p.x.view(), p.y, ws2);
      b.data()[idx] = saved - eps;
      const double down = compute_loss(p.model, p.x.view(), p.y, ws2);
      b.data()[idx] = saved;
      EXPECT_NEAR(grad.layer(l).bias.data()[idx], (up - down) / (2 * eps),
                  1e-7)
          << "layer " << l << " bias index " << idx;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Activations, GradientCheck,
                         ::testing::Values(Activation::kSigmoid,
                                           Activation::kTanh,
                                           Activation::kRelu,
                                           Activation::kIdentity));

TEST(GradientBce, MatchesFiniteDifferences) {
  MlpConfig c = tiny_config();
  Rng rng(11);
  Model m(c, rng);
  Matrix x(3, c.input_dim);
  tensor::fill_normal(x.view(), rng, 0, 1);
  Matrix targets(3, c.num_classes);
  for (Index i = 0; i < targets.size(); ++i) {
    targets.data()[i] = rng.bernoulli(0.4) ? 1.0 : 0.0;
  }
  Workspace ws;
  Gradient grad = make_zero_gradient(m);
  compute_gradient_bce(m, x.view(), targets.view(), ws, grad);

  const double eps = 1e-6;
  Workspace ws2;
  auto loss_fn = [&] {
    forward(m, x.view(), ws2);
    auto logits = ws2.logits().rows_view(0, 3);
    return sigmoid_bce(logits, targets.view(), nullptr);
  };
  auto& w = m.layer(1).weights;
  for (Index idx = 0; idx < w.size(); idx += 3) {
    const Scalar saved = w.data()[idx];
    w.data()[idx] = saved + eps;
    const double up = loss_fn();
    w.data()[idx] = saved - eps;
    const double down = loss_fn();
    w.data()[idx] = saved;
    EXPECT_NEAR(grad.layer(1).weights.data()[idx], (up - down) / (2 * eps),
                1e-7);
  }
}

TEST(SgdStep, GradientDescentReducesLoss) {
  MlpConfig c = tiny_config();
  Problem p = make_problem(c, 32, 13);
  Workspace ws;
  Gradient grad = make_zero_gradient(p.model);
  const double initial = compute_gradient(p.model, p.x.view(), p.y, ws, grad);
  double prev = initial;
  for (int step = 0; step < 1500; ++step) {
    sgd_step(p.model, grad, 0.5);
    prev = compute_gradient(p.model, p.x.view(), p.y, ws, grad);
  }
  // Full-batch gradient descent must make substantial progress on a
  // 32-example problem (sigmoid hidden layers learn slowly, hence the
  // generous step budget).
  EXPECT_LT(prev, 0.5 * initial);
}

TEST(Workspace, ReusableAcrossBatchSizes) {
  MlpConfig c = tiny_config();
  Problem big = make_problem(c, 16, 17);
  Problem small = make_problem(c, 4, 17);
  Workspace ws;
  Gradient g1 = make_zero_gradient(big.model);
  Gradient g2 = make_zero_gradient(big.model);

  // Large batch first, then small: buffers must not leak stale rows.
  compute_gradient(big.model, big.x.view(), big.y, ws, g1);
  compute_gradient(big.model, small.x.view(), small.y, ws, g2);

  Workspace fresh;
  Gradient g3 = make_zero_gradient(big.model);
  compute_gradient(big.model, small.x.view(), small.y, fresh, g3);
  EXPECT_EQ(g2.max_abs_diff(g3), 0.0);
}

TEST(Mlp, BatchGradientIsMeanOfExampleGradients) {
  MlpConfig c = tiny_config();
  Problem p = make_problem(c, 8, 19);
  Workspace ws;
  Gradient batch_grad = make_zero_gradient(p.model);
  compute_gradient(p.model, p.x.view(), p.y, ws, batch_grad);

  Gradient sum = make_zero_gradient(p.model);
  Gradient one = make_zero_gradient(p.model);
  for (Index i = 0; i < 8; ++i) {
    std::span<const std::int32_t> yi(p.y.data() + i, 1);
    compute_gradient(p.model, p.x.rows_view(i, 1), yi, ws, one);
    sum.axpy(1.0 / 8.0, one);
  }
  EXPECT_LT(batch_grad.max_abs_diff(sum), 1e-10);
}

TEST(Mlp, TrainingFlopsScalesWithBatchAndDepth) {
  MlpConfig c = tiny_config();
  const double f1 = training_flops(c, 16);
  const double f2 = training_flops(c, 32);
  EXPECT_NEAR(f2 / f1, 2.0, 1e-9);
  MlpConfig deeper = c;
  deeper.hidden_layers = 4;
  EXPECT_GT(training_flops(deeper, 16), f1);
}

TEST(Mlp, InputWidthMismatchDies) {
  MlpConfig c = tiny_config();
  Problem p = make_problem(c, 2, 23);
  Matrix bad(2, c.input_dim + 1);
  Workspace ws;
  EXPECT_DEATH(forward(p.model, bad.view(), ws), "input_dim");
}

// Unfused reference forward: the three-pass gemm -> add_row_bias ->
// activation_forward sequence that forward() replaced with the fused
// gemm_bias_act write-back.
Scalar unfused_forward_loss(const Model& model, tensor::ConstMatrixView x,
                            std::span<const std::int32_t> labels) {
  std::vector<Matrix> acts(model.layer_count());
  tensor::ConstMatrixView input = x;
  for (std::size_t l = 0; l < model.layer_count(); ++l) {
    const Layer& layer = model.layer(l);
    acts[l].resize(x.rows(), layer.weights.rows());
    auto out = acts[l].view();
    tensor::matmul_nt(input, layer.weights.view(), out);
    tensor::add_row_bias(layer.bias.view(), out);
    if (l + 1 < model.layer_count()) {
      activation_forward(model.config().hidden_activation, out);
    }
    input = acts[l].view();
  }
  return softmax_cross_entropy(acts.back().view(), labels, nullptr);
}

// Acceptance check for the fused forward path: across several SGD steps
// (i.e. on evolving trained parameters), the loss computed through the
// fused gemm_bias_act forward matches the unfused three-pass sequence
// within 1e-10 at every step, for every activation.
TEST(Mlp, FusedForwardMatchesUnfusedTrajectory) {
  for (Activation act : {Activation::kSigmoid, Activation::kTanh,
                         Activation::kRelu, Activation::kIdentity}) {
    MlpConfig c = tiny_config(act);
    Problem p = make_problem(c, 16, 99);
    Workspace ws;
    Gradient grad = make_zero_gradient(p.model);
    for (int step = 0; step < 8; ++step) {
      const Scalar fused = compute_gradient(p.model, p.x.view(), p.y, ws, grad);
      const Scalar unfused = unfused_forward_loss(p.model, p.x.view(), p.y);
      EXPECT_NEAR(fused, unfused, 1e-10)
          << "activation=" << activation_name(act) << " step=" << step;
      sgd_step(p.model, grad, 0.1);
    }
  }
}

}  // namespace
}  // namespace hetsgd::nn
