#include "data/libsvm_io.hpp"

#include <cstdio>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

namespace hetsgd::data {
namespace {

TEST(Libsvm, ParsesBasicFile) {
  const std::string content =
      "+1 1:0.5 3:1.5\n"
      "-1 2:2.0\n";
  Dataset d = read_libsvm_string(content, {});
  EXPECT_EQ(d.example_count(), 2);
  EXPECT_EQ(d.dim(), 3);
  EXPECT_EQ(d.num_classes(), 2);
  // Sorted label mapping: -1 -> 0, +1 -> 1.
  EXPECT_EQ(d.labels()[0], 1);
  EXPECT_EQ(d.labels()[1], 0);
  EXPECT_DOUBLE_EQ(d.features()(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(d.features()(0, 1), 0.0);  // densified zero
  EXPECT_DOUBLE_EQ(d.features()(0, 2), 1.5);
  EXPECT_DOUBLE_EQ(d.features()(1, 1), 2.0);
}

TEST(Libsvm, SkipsBlankAndCommentLines) {
  const std::string content =
      "# a comment\n"
      "\n"
      "1 1:1\n"
      "   \n"
      "2 1:2\n";
  Dataset d = read_libsvm_string(content, {});
  EXPECT_EQ(d.example_count(), 2);
}

TEST(Libsvm, MulticlassLabelsRemapInSortedOrder) {
  const std::string content = "3 1:1\n1 1:1\n7 1:1\n1 1:1\n";
  Dataset d = read_libsvm_string(content, {});
  EXPECT_EQ(d.num_classes(), 3);
  EXPECT_EQ(d.labels()[0], 1);  // 3 -> 1
  EXPECT_EQ(d.labels()[1], 0);  // 1 -> 0
  EXPECT_EQ(d.labels()[2], 2);  // 7 -> 2
}

TEST(Libsvm, ZeroBasedLabelsPreserved) {
  const std::string content = "0 1:1\n1 1:1\n2 1:1\n";
  Dataset d = read_libsvm_string(content, {});
  EXPECT_EQ(d.labels()[0], 0);
  EXPECT_EQ(d.labels()[1], 1);
  EXPECT_EQ(d.labels()[2], 2);
}

TEST(Libsvm, DimOverride) {
  LibsvmReadOptions options;
  options.dim = 10;
  Dataset d = read_libsvm_string("1 2:1\n", options);
  EXPECT_EQ(d.dim(), 10);
}

TEST(Libsvm, DimOverrideTooSmallDies) {
  LibsvmReadOptions options;
  options.dim = 1;
  EXPECT_DEATH(read_libsvm_string("1 5:1\n", options), "exceeds");
}

TEST(Libsvm, MaxExamplesCap) {
  LibsvmReadOptions options;
  options.max_examples = 2;
  Dataset d = read_libsvm_string("1 1:1\n1 1:2\n1 1:3\n1 1:4\n", options);
  EXPECT_EQ(d.example_count(), 2);
}

TEST(Libsvm, DatasetNameOption) {
  LibsvmReadOptions options;
  options.dataset_name = "custom";
  Dataset d = read_libsvm_string("1 1:1\n", options);
  EXPECT_EQ(d.name(), "custom");
}

TEST(Libsvm, MalformedPairDies) {
  EXPECT_DEATH(read_libsvm_string("1 abc\n", {}), "malformed pair");
}

TEST(Libsvm, ZeroIndexDies) {
  EXPECT_DEATH(read_libsvm_string("1 0:5\n", {}), "1-based");
}

TEST(Libsvm, EmptyInputDies) {
  EXPECT_DEATH(read_libsvm_string("# nothing\n", {}), "no examples");
}

TEST(Libsvm, FloatLabelsAndValues) {
  Dataset d = read_libsvm_string("2.0 1:1e-3 2:-4.5\n1.0 1:2\n", {});
  EXPECT_EQ(d.num_classes(), 2);
  EXPECT_DOUBLE_EQ(d.features()(0, 0), 1e-3);
  EXPECT_DOUBLE_EQ(d.features()(0, 1), -4.5);
}

TEST(Libsvm, WriteReadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "hetsgd_libsvm_rt.txt")
          .string();
  tensor::Matrix f{{0.5, 0.0, 1.25}, {0.0, 2.0, 0.0}};
  Dataset original("rt", std::move(f), {1, 0}, 2);
  write_libsvm(original, path);

  LibsvmReadOptions options;
  options.dim = 3;
  Dataset loaded = read_libsvm(path, options);
  EXPECT_EQ(loaded.example_count(), 2);
  EXPECT_EQ(loaded.dim(), 3);
  for (tensor::Index r = 0; r < 2; ++r) {
    EXPECT_EQ(loaded.labels()[static_cast<std::size_t>(r)],
              original.labels()[static_cast<std::size_t>(r)]);
    for (tensor::Index c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(loaded.features()(r, c), original.features()(r, c));
    }
  }
  std::remove(path.c_str());
}

TEST(Libsvm, MissingFileDies) {
  EXPECT_DEATH(read_libsvm("/nonexistent/path.libsvm", {}), "cannot open");
}

// --- try_* API: malformed input surfaces line-numbered diagnostics instead
// of aborting, so callers with a recovery path (resume, interactive tools)
// can report and continue.

TEST(Libsvm, TryReportsMalformedPairWithLineNumber) {
  std::string error;
  auto d = try_read_libsvm_string("1 1:1\n2 abc\n", {}, &error);
  EXPECT_FALSE(d.has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("malformed pair"), std::string::npos) << error;
}

TEST(Libsvm, TryReportsMissingLabel) {
  std::string error;
  auto d = try_read_libsvm_string("x 1:1\n", {}, &error);
  EXPECT_FALSE(d.has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  EXPECT_NE(error.find("label"), std::string::npos) << error;
}

TEST(Libsvm, TryReportsZeroIndex) {
  std::string error;
  auto d = try_read_libsvm_string("1 1:1\n1 1:1\n1 0:5\n", {}, &error);
  EXPECT_FALSE(d.has_value());
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
  EXPECT_NE(error.find("1-based"), std::string::npos) << error;
}

TEST(Libsvm, TryReportsMissingValue) {
  std::string error;
  auto d = try_read_libsvm_string("1 2:\n", {}, &error);
  EXPECT_FALSE(d.has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  EXPECT_NE(error.find("missing value"), std::string::npos) << error;
}

TEST(Libsvm, TryReportsNonFiniteValue) {
  std::string error;
  auto d = try_read_libsvm_string("1 1:nan\n", {}, &error);
  EXPECT_FALSE(d.has_value());
  EXPECT_NE(error.find("non-finite"), std::string::npos) << error;
}

TEST(Libsvm, TryReportsDimOverflowWithOffendingLine) {
  LibsvmReadOptions options;
  options.dim = 2;
  std::string error;
  auto d = try_read_libsvm_string("1 1:1\n1 5:1\n1 2:1\n", options, &error);
  EXPECT_FALSE(d.has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("exceeds"), std::string::npos) << error;
}

TEST(Libsvm, TryMissingFileReturnsError) {
  std::string error;
  auto d = try_read_libsvm("/nonexistent/path.libsvm", {}, &error);
  EXPECT_FALSE(d.has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

TEST(Libsvm, TryParsesGoodInput) {
  std::string error;
  auto d = try_read_libsvm_string("+1 1:0.5\n-1 1:1.0\n", {}, &error);
  ASSERT_TRUE(d.has_value()) << error;
  EXPECT_EQ(d->example_count(), 2);
  EXPECT_TRUE(error.empty());
}

}  // namespace
}  // namespace hetsgd::data
