#include "nn/device_mlp.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/mlp.hpp"
#include "tensor/ops.hpp"

namespace hetsgd::nn {
namespace {

using tensor::Index;
using tensor::Matrix;

MlpConfig test_config() {
  MlpConfig c;
  c.input_dim = 8;
  c.num_classes = 4;
  c.hidden_layers = 2;
  c.hidden_units = 6;
  return c;
}

struct Fixture {
  MlpConfig config = test_config();
  gpusim::Device device{gpusim::v100_spec()};
  Rng rng{42};
  Model model{config, rng};
  Matrix x;
  std::vector<std::int32_t> y;

  explicit Fixture(Index batch) : x(batch, config.input_dim) {
    tensor::fill_normal(x.view(), rng, 0, 1);
    y.resize(static_cast<std::size_t>(batch));
    for (auto& label : y) {
      label = static_cast<std::int32_t>(rng.next_below(4));
    }
  }
};

TEST(DeviceMlp, GradientMatchesHostExactly) {
  Fixture f(16);
  DeviceMlp dmlp(f.device, f.config, 16);
  dmlp.upload_model(f.model, 0.0);
  double done = 0.0;
  const double device_loss = dmlp.compute_gradient(f.x.view(), f.y, 0.0, &done);
  Gradient device_grad = make_zero_gradient(f.model);
  dmlp.download_gradient(device_grad, done);

  Workspace ws;
  Gradient host_grad = make_zero_gradient(f.model);
  const double host_loss =
      compute_gradient(f.model, f.x.view(), f.y, ws, host_grad);

  // Same math on both paths: results are bit-identical.
  EXPECT_DOUBLE_EQ(device_loss, host_loss);
  EXPECT_EQ(device_grad.max_abs_diff(host_grad), 0.0);
}

TEST(DeviceMlp, SmallerBatchThanMaxWorks) {
  Fixture f(5);
  DeviceMlp dmlp(f.device, f.config, 32);
  dmlp.upload_model(f.model, 0.0);
  double done = 0.0;
  dmlp.compute_gradient(f.x.view(), f.y, 0.0, &done);
  Gradient device_grad = make_zero_gradient(f.model);
  dmlp.download_gradient(device_grad, done);

  Workspace ws;
  Gradient host_grad = make_zero_gradient(f.model);
  compute_gradient(f.model, f.x.view(), f.y, ws, host_grad);
  EXPECT_EQ(device_grad.max_abs_diff(host_grad), 0.0);
}

TEST(DeviceMlp, ApplyGradientOnDeviceMatchesHostSgd) {
  Fixture f(8);
  DeviceMlp dmlp(f.device, f.config, 8);
  dmlp.upload_model(f.model, 0.0);
  double done = 0.0;
  dmlp.compute_gradient(f.x.view(), f.y, 0.0, &done);
  dmlp.apply_gradient_on_device(0.1, done);
  Model replica = f.model;
  dmlp.download_model(replica, done);

  Workspace ws;
  Gradient host_grad = make_zero_gradient(f.model);
  compute_gradient(f.model, f.x.view(), f.y, ws, host_grad);
  Model expected = f.model;
  sgd_step(expected, host_grad, 0.1);
  EXPECT_LT(replica.max_abs_diff(expected), 1e-15);
}

TEST(DeviceMlp, UploadDownloadRoundTrip) {
  Fixture f(4);
  DeviceMlp dmlp(f.device, f.config, 4);
  dmlp.upload_model(f.model, 0.0);
  Model back(f.config, f.rng);  // different values
  dmlp.download_model(back, 0.0);
  EXPECT_EQ(back.max_abs_diff(f.model), 0.0);
}

TEST(DeviceMlp, VirtualTimeAdvances) {
  Fixture f(8);
  DeviceMlp dmlp(f.device, f.config, 8);
  const double t0 = dmlp.upload_model(f.model, 0.0);
  EXPECT_GT(t0, 0.0);
  double done = 0.0;
  dmlp.compute_gradient(f.x.view(), f.y, t0, &done);
  EXPECT_GT(done, t0);
  const double t1 = dmlp.apply_gradient_on_device(0.1, done);
  EXPECT_GT(t1, done);
}

TEST(DeviceMlp, DeviceBytesAccountedInAllocator) {
  Fixture f(4);
  const std::uint64_t before = f.device.allocator().in_use();
  auto dmlp = std::make_unique<DeviceMlp>(f.device, f.config, 64);
  EXPECT_EQ(f.device.allocator().in_use() - before, dmlp->device_bytes());
  dmlp.reset();
  EXPECT_EQ(f.device.allocator().in_use(), before);
}

TEST(DeviceMlp, OversizedModelTriggersDeviceOom) {
  gpusim::DeviceSpec tiny = gpusim::v100_spec();
  tiny.memory_capacity = 1 << 16;  // 64 KiB
  gpusim::Device device(tiny);
  MlpConfig big = test_config();
  big.hidden_units = 256;
  EXPECT_DEATH(DeviceMlp(device, big, 1024), "out of memory");
}

TEST(DeviceMlp, BatchBeyondMaxDies) {
  Fixture f(16);
  DeviceMlp dmlp(f.device, f.config, 8);
  dmlp.upload_model(f.model, 0.0);
  double done = 0.0;
  EXPECT_DEATH(dmlp.compute_gradient(f.x.view(), f.y, 0.0, &done),
               "max_batch");
}

TEST(DeviceMlp, TrainingOnDeviceConvergesLikeHost) {
  Fixture f(32);
  DeviceMlp dmlp(f.device, f.config, 32);
  Model host_model = f.model;
  Workspace ws;
  Gradient host_grad = make_zero_gradient(host_model);

  double clock = dmlp.upload_model(f.model, 0.0);
  for (int step = 0; step < 20; ++step) {
    double done = clock;
    dmlp.compute_gradient(f.x.view(), f.y, clock, &done);
    clock = dmlp.apply_gradient_on_device(0.3, done);
    compute_gradient(host_model, f.x.view(), f.y, ws, host_grad);
    sgd_step(host_model, host_grad, 0.3);
  }
  Model final_device = f.model;
  dmlp.download_model(final_device, clock);
  EXPECT_LT(final_device.max_abs_diff(host_model), 1e-12);
}

}  // namespace
}  // namespace hetsgd::nn
