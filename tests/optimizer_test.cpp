#include "nn/optimizer.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/mlp.hpp"
#include "tensor/ops.hpp"

namespace hetsgd::nn {
namespace {

using tensor::Scalar;

MlpConfig tiny() {
  MlpConfig c;
  c.input_dim = 4;
  c.num_classes = 2;
  c.hidden_layers = 1;
  c.hidden_units = 3;
  return c;
}

TEST(Optimizer, Names) {
  OptimizerKind k;
  EXPECT_TRUE(parse_optimizer("sgd", k));
  EXPECT_EQ(k, OptimizerKind::kSgd);
  EXPECT_TRUE(parse_optimizer("momentum", k));
  EXPECT_TRUE(parse_optimizer("adam", k));
  EXPECT_FALSE(parse_optimizer("lbfgs", k));
  EXPECT_STREQ(optimizer_name(OptimizerKind::kAdam), "adam");
}

TEST(Optimizer, SgdMatchesSgdStep) {
  Rng rng(1);
  Model m1(tiny(), rng);
  Model m2 = m1;
  Gradient g = m1;  // use weights as a synthetic gradient
  OptimizerConfig cfg;
  Optimizer opt(cfg, m1);
  opt.step(m1, g, 0.1);
  sgd_step(m2, g, 0.1);
  EXPECT_EQ(m1.max_abs_diff(m2), 0.0);
}

TEST(Optimizer, MomentumAcceleratesConstantGradient) {
  Rng rng(2);
  Model m(tiny(), rng);
  Model ref = m;
  Gradient g = make_zero_gradient(m);
  g.layer(0).weights(0, 0) = 1.0;

  OptimizerConfig cfg;
  cfg.kind = OptimizerKind::kMomentum;
  cfg.momentum = 0.9;
  Optimizer opt(cfg, m);
  // After k steps with constant gradient, momentum's displacement exceeds
  // plain SGD's (velocity accumulates toward g / (1 - mu)).
  for (int i = 0; i < 20; ++i) {
    opt.step(m, g, 0.01);
    sgd_step(ref, g, 0.01);
  }
  const Scalar moved_momentum =
      std::abs(m.layer(0).weights(0, 0) - ref.layer(0).weights(0, 0));
  EXPECT_GT(moved_momentum, 0.5 * 20 * 0.01);  // well past SGD
}

TEST(Optimizer, MomentumFirstStepEqualsSgd) {
  Rng rng(3);
  Model m(tiny(), rng);
  Model ref = m;
  Gradient g = m;
  OptimizerConfig cfg;
  cfg.kind = OptimizerKind::kMomentum;
  Optimizer opt(cfg, m);
  opt.step(m, g, 0.05);
  sgd_step(ref, g, 0.05);
  EXPECT_LT(m.max_abs_diff(ref), 1e-15);  // v starts at 0
}

TEST(Optimizer, AdamFirstStepIsSignScaled) {
  Rng rng(4);
  Model m(tiny(), rng);
  Model before = m;
  Gradient g = make_zero_gradient(m);
  g.layer(0).weights(0, 0) = 123.0;   // large gradient
  g.layer(0).weights(0, 1) = -0.001;  // tiny gradient
  OptimizerConfig cfg;
  cfg.kind = OptimizerKind::kAdam;
  Optimizer opt(cfg, m);
  opt.step(m, g, 0.01);
  // Bias-corrected first Adam step is ~eta * sign(g) regardless of scale.
  EXPECT_NEAR(before.layer(0).weights(0, 0) - m.layer(0).weights(0, 0), 0.01,
              1e-4);
  EXPECT_NEAR(before.layer(0).weights(0, 1) - m.layer(0).weights(0, 1), -0.01,
              1e-4);
}

TEST(Optimizer, AdamLeavesZeroGradParamsAlone) {
  Rng rng(5);
  Model m(tiny(), rng);
  Model before = m;
  Gradient g = make_zero_gradient(m);
  OptimizerConfig cfg;
  cfg.kind = OptimizerKind::kAdam;
  Optimizer opt(cfg, m);
  opt.step(m, g, 0.1);
  EXPECT_EQ(m.max_abs_diff(before), 0.0);
}

TEST(Optimizer, WeightDecayShrinksWeightsNotBiases) {
  Rng rng(6);
  Model m(tiny(), rng);
  m.layer(0).bias.fill(1.0);
  Model before = m;
  Gradient g = make_zero_gradient(m);
  OptimizerConfig cfg;
  cfg.weight_decay = 0.5;
  Optimizer opt(cfg, m);
  opt.step(m, g, 0.1);
  // weights scaled by (1 - 0.1*0.5) = 0.95; biases untouched.
  EXPECT_NEAR(m.layer(0).weights(0, 0), 0.95 * before.layer(0).weights(0, 0),
              1e-12);
  EXPECT_EQ(m.layer(0).bias(0, 0), 1.0);
}

TEST(Optimizer, StepCountAndReset) {
  Rng rng(7);
  Model m(tiny(), rng);
  Gradient g = make_zero_gradient(m);
  Optimizer opt(OptimizerConfig{}, m);
  EXPECT_EQ(opt.step_count(), 0u);
  opt.step(m, g, 0.1);
  opt.step(m, g, 0.1);
  EXPECT_EQ(opt.step_count(), 2u);
  opt.reset();
  EXPECT_EQ(opt.step_count(), 0u);
}

TEST(Optimizer, InvalidConfigDies) {
  Rng rng(8);
  Model m(tiny(), rng);
  OptimizerConfig bad;
  bad.momentum = 1.0;
  EXPECT_DEATH(Optimizer(bad, m), "momentum");
  OptimizerConfig bad2;
  bad2.weight_decay = -1.0;
  EXPECT_DEATH(Optimizer(bad2, m), "weight decay");
}

TEST(LrSchedule, Constant) {
  LrScheduleConfig s;
  EXPECT_DOUBLE_EQ(lr_multiplier(s, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(lr_multiplier(s, 100.0), 1.0);
}

TEST(LrSchedule, StepDecay) {
  LrScheduleConfig s;
  s.kind = LrSchedule::kStepDecay;
  s.decay = 0.5;
  s.step_every = 2.0;
  EXPECT_DOUBLE_EQ(lr_multiplier(s, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(lr_multiplier(s, 1.9), 1.0);
  EXPECT_DOUBLE_EQ(lr_multiplier(s, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(lr_multiplier(s, 6.5), 0.125);
}

TEST(LrSchedule, InverseTime) {
  LrScheduleConfig s;
  s.kind = LrSchedule::kInverseTime;
  s.decay = 1.0;
  EXPECT_DOUBLE_EQ(lr_multiplier(s, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(lr_multiplier(s, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(lr_multiplier(s, 9.0), 0.1);
}

TEST(LrSchedule, Names) {
  LrSchedule s;
  EXPECT_TRUE(parse_lr_schedule("constant", s));
  EXPECT_TRUE(parse_lr_schedule("step", s));
  EXPECT_EQ(s, LrSchedule::kStepDecay);
  EXPECT_TRUE(parse_lr_schedule("inverse-time", s));
  EXPECT_FALSE(parse_lr_schedule("cosine", s));
}

TEST(Optimizer, AdamTrainsTinyProblemFasterThanSgdPerStep) {
  // Adam's per-parameter scaling should fit a small problem in fewer steps
  // at the same nominal rate.
  Rng rng(9);
  MlpConfig c = tiny();
  Model sgd_model(c, rng);
  Model adam_model = sgd_model;
  tensor::Matrix x(16, 4);
  tensor::fill_normal(x.view(), rng, 0, 1);
  std::vector<std::int32_t> y(16);
  for (auto& label : y) {
    label = static_cast<std::int32_t>(rng.next_below(2));
  }
  Workspace ws;
  Gradient g = make_zero_gradient(sgd_model);
  Optimizer sgd(OptimizerConfig{}, sgd_model);
  OptimizerConfig acfg;
  acfg.kind = OptimizerKind::kAdam;
  Optimizer adam(acfg, adam_model);
  double sgd_loss = 0, adam_loss = 0;
  for (int i = 0; i < 100; ++i) {
    sgd_loss = compute_gradient(sgd_model, x.view(), y, ws, g);
    sgd.step(sgd_model, g, 0.01);
    adam_loss = compute_gradient(adam_model, x.view(), y, ws, g);
    adam.step(adam_model, g, 0.01);
  }
  EXPECT_LT(adam_loss, sgd_loss);
}

}  // namespace
}  // namespace hetsgd::nn
