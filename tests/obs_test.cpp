// Tests for the observability subsystem (src/obs): the lock-free metrics
// registry, the dual-clock span tracer, the periodic exporter, and the
// concurrent-scrape contract on UpdateLedger (these tests run under the
// sanitizer CI legs; the ledger test is the TSan witness for the "live
// observer thread" promise in core/update_ledger.hpp).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/update_ledger.hpp"
#include "obs/clock.hpp"
#include "obs/exporter.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#define HETSGD_TEST_HAS_SOCKETS 1
#endif

namespace hetsgd {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string temp_path(const char* name) {
  return testing::TempDir() + name;
}

TEST(WallClockTest, Monotone) {
  const std::uint64_t a = obs::wall_now_ns();
  const std::uint64_t b = obs::wall_now_ns();
  EXPECT_GE(b, a);
  obs::WallStopwatch sw;
  EXPECT_GE(sw.elapsed_seconds(), 0.0);
}

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kIters; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kIters);
}

TEST(GaugeTest, SetAndAdd) {
  obs::Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
}

TEST(HistogramTest, BucketsCoverObservations) {
  obs::Histogram h;
  h.observe(0.001);
  h.observe(1.0);
  h.observe(1000.0);
  const obs::Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_NEAR(s.sum, 1001.001, 1e-9);
  std::uint64_t total = 0;
  for (std::uint64_t c : s.counts) total += c;
  EXPECT_EQ(total, 3u);
  // Bucket upper bounds are strictly increasing powers of two.
  for (int i = 1; i < obs::Histogram::kBuckets - 1; ++i) {
    EXPECT_LT(obs::Histogram::bucket_upper(i - 1),
              obs::Histogram::bucket_upper(i));
  }
}

TEST(MetricsRegistryTest, FindOrCreateIsStable) {
  auto& reg = obs::MetricsRegistry::instance();
  obs::Counter& a = reg.counter("obs_test_stable_counter");
  obs::Counter& b = reg.counter("obs_test_stable_counter");
  EXPECT_EQ(&a, &b);
  obs::Gauge& g1 = reg.gauge("obs_test_stable_gauge");
  obs::Gauge& g2 = reg.gauge("obs_test_stable_gauge");
  EXPECT_EQ(&g1, &g2);
}

TEST(MetricsRegistryTest, ConcurrentFindOrCreateAndSnapshot) {
  auto& reg = obs::MetricsRegistry::instance();
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      reg.counter("obs_test_churn_" + std::to_string(i % 8)).inc();
      ++i;
    }
  });
  for (int i = 0; i < 50; ++i) {
    obs::MetricsSnapshot snap = reg.snapshot();
    (void)obs::MetricsRegistry::prometheus_text(snap);
    (void)obs::MetricsRegistry::jsonl_line(snap);
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

TEST(MetricsRegistryTest, PrometheusTextFormat) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.counter("obs_test_prom_counter").inc(7);
  reg.gauge("obs_test_prom_gauge").set(1.25);
  reg.histogram("obs_test_prom_hist").observe(0.5);
  const std::string text =
      obs::MetricsRegistry::prometheus_text(reg.snapshot());
  EXPECT_NE(text.find("# TYPE obs_test_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_gauge 1.25"), std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_hist_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_hist_count 1"), std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusHistogramKeepsLabels) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.histogram("obs_test_prom_lhist{worker=\"3\"}").observe(2.0);
  const std::string text =
      obs::MetricsRegistry::prometheus_text(reg.snapshot());
  // The label block survives on every series, with le merged in on
  // _bucket lines — it must not collapse into an unlabeled series.
  EXPECT_NE(text.find("obs_test_prom_lhist_bucket{worker=\"3\",le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_lhist_sum{worker=\"3\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_lhist_count{worker=\"3\"} 1"),
            std::string::npos);
  EXPECT_EQ(text.find("obs_test_prom_lhist_bucket{le="), std::string::npos);
  EXPECT_EQ(text.find("obs_test_prom_lhist_sum "), std::string::npos);
}

TEST(MetricsRegistryTest, JsonlLineIsOneLine) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.counter("obs_test_jsonl_counter").inc();
  const std::string line = obs::MetricsRegistry::jsonl_line(reg.snapshot());
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(line.find('\n'), line.size() - 1);  // exactly one newline
  EXPECT_NE(line.find("\"ts_ns\""), std::string::npos);
  EXPECT_NE(line.find("obs_test_jsonl_counter"), std::string::npos);
}

#if !defined(HETSGD_TRACE_DISABLED)
TEST(TracerTest, MultiThreadSpansExportValidTrace) {
  auto& tracer = obs::Tracer::instance();
  tracer.start(1 << 12);
  obs::Tracer::set_thread_name("obs-test-main");
  {
    HETSGD_TRACE_SCOPE("test", "outer");
    HETSGD_TRACE_SPAN(span, "test", "inner", 1.0, obs::batch_flow_id(0, 1));
    span.set_end_vt(2.0);
  }
  obs::trace_flow_begin("batch", obs::batch_flow_id(0, 1), 1.0);
  obs::trace_flow_step("batch", obs::batch_flow_id(0, 1), 1.5);
  obs::trace_flow_end("batch", obs::batch_flow_id(0, 1), 2.0);
  HETSGD_TRACE_INSTANT("test", "marker", 1.0);
  HETSGD_TRACE_COUNTER("test_counter", 42.0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      obs::Tracer::set_thread_name("obs-test-" + std::to_string(t));
      for (int i = 0; i < 100; ++i) {
        HETSGD_TRACE_SCOPE("test", "worker_span");
      }
    });
  }
  for (auto& t : threads) t.join();

  const std::string path = temp_path("obs_test_trace.json");
  std::string error;
  ASSERT_TRUE(tracer.stop_and_write(path, &error)) << error;
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_GE(tracer.collected(), 400u);

  const std::string json = read_file(path);
  ASSERT_FALSE(json.empty());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"worker_span\""), std::string::npos);
  EXPECT_NE(json.find("\"obs-test-2\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"vt0\":1"), std::string::npos);
  // Balanced braces/brackets => structurally sound JSON (no parser here).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(TracerTest, ManyThreadsKeepMetadataWellFormed) {
  // Regression: with 10+ registered threads the thread_name metadata
  // line needs more than 64 chars (two tid digits), and truncation used
  // to eat the opening quote of the name value.
  auto& tracer = obs::Tracer::instance();
  tracer.start(1 << 10);
  std::vector<std::thread> threads;
  for (int t = 0; t < 12; ++t) {
    threads.emplace_back([t] {
      obs::Tracer::set_thread_name("obs-many-" + std::to_string(t));
      HETSGD_TRACE_SCOPE("test", "many_span");
    });
  }
  for (auto& t : threads) t.join();
  const std::string path = temp_path("obs_test_trace_many.json");
  std::string error;
  ASSERT_TRUE(tracer.stop_and_write(path, &error)) << error;
  const std::string json = read_file(path);
  // Every metadata record, including two-digit tids, carries a properly
  // quoted name value.
  for (int tid = 1; tid <= 12; ++tid) {
    const std::string meta = "\"tid\":" + std::to_string(tid) +
                             ",\"args\":{\"name\":\"obs-many-";
    EXPECT_NE(json.find(meta), std::string::npos) << "tid " << tid;
  }
  EXPECT_EQ(std::count(json.begin(), json.end(), '"') % 2, 0);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(TracerTest, RestartWhileProducersRecordIsSafe) {
  // Stress witness (ASan/TSan CI legs) for the stop->start contract:
  // producers racing record() against restart cycles must never touch a
  // freed ring — old buffers are retired to a graveyard, not freed.
  auto& tracer = obs::Tracer::instance();
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        HETSGD_TRACE_SCOPE("test", "churn");
      }
    });
  }
  for (int i = 0; i < 20; ++i) {
    tracer.start(1 << 8);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    tracer.stop();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
}

TEST(TracerTest, RestartAfterStopCollectsAgain) {
  auto& tracer = obs::Tracer::instance();
  tracer.start(1 << 10);
  { HETSGD_TRACE_SCOPE("test", "first_run"); }
  tracer.stop();
  tracer.start(1 << 10);
  { HETSGD_TRACE_SCOPE("test", "second_run"); }
  const std::string path = temp_path("obs_test_trace2.json");
  std::string error;
  ASSERT_TRUE(tracer.stop_and_write(path, &error)) << error;
  const std::string json = read_file(path);
  EXPECT_NE(json.find("second_run"), std::string::npos);
  EXPECT_EQ(json.find("first_run"), std::string::npos);
}

TEST(TracerTest, NullNameSpanIsUntraced) {
  auto& tracer = obs::Tracer::instance();
  tracer.start(1 << 10);
  { HETSGD_TRACE_SPAN(span, "test", nullptr); }
  tracer.stop();
  EXPECT_EQ(tracer.collected(), 0u);
}
#endif  // !HETSGD_TRACE_DISABLED

TEST(TracerTest, StopAndWriteWithoutStartWritesEmptyTrace) {
  const std::string path = temp_path("obs_test_empty_trace.json");
  std::string error;
  ASSERT_TRUE(obs::Tracer::instance().stop_and_write(path, &error)) << error;
  const std::string json = read_file(path);
  EXPECT_NE(json.find("traceEvents"), std::string::npos);
}

TEST(MetricsExporterTest, WritesJsonlSnapshots) {
  obs::MetricsRegistry::instance().counter("obs_test_export_counter").inc();
  obs::MetricsExporter::Options options;
  options.jsonl_path = temp_path("obs_test_metrics.jsonl");
  options.interval_ms = 5.0;
  obs::MetricsExporter exporter(options);
  std::atomic<int> hook_calls{0};
  exporter.set_collect_hook([&hook_calls] { hook_calls.fetch_add(1); });
  std::string error;
  ASSERT_TRUE(exporter.start(&error)) << error;
  while (exporter.snapshots_written() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  exporter.stop();
  EXPECT_GE(exporter.snapshots_written(), 3u);
  EXPECT_GE(hook_calls.load(), 3);
  std::ifstream in(options.jsonl_path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("obs_test_export_counter"), std::string::npos);
  }
  EXPECT_GE(lines, 3u);
}

#if defined(HETSGD_TEST_HAS_SOCKETS)
TEST(MetricsExporterTest, ServesPrometheusScrape) {
  obs::MetricsRegistry::instance().counter("obs_test_scrape_counter").inc(3);
  obs::MetricsExporter::Options options;
  options.interval_ms = 50.0;
  options.port = 0;  // ephemeral
  obs::MetricsExporter exporter(options);
  std::string error;
  if (!exporter.start(&error)) {
    GTEST_SKIP() << "cannot bind loopback socket: " << error;
  }
  const int port = exporter.scrape_port();
  ASSERT_GT(port, 0);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char req[] = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_GT(::send(fd, req, sizeof(req) - 1, 0), 0);
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  exporter.stop();
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("obs_test_scrape_counter 3"), std::string::npos);
}
#endif  // HETSGD_TEST_HAS_SOCKETS

// The update_ledger.hpp contract: a scraper thread may call the locked
// snapshot accessors while the coordinator thread mutates. Run a writer at
// full speed against a reader doing exactly what the trainer's metrics
// collect hook does; TSan (the chaos CI leg builds this test with
// -fsanitize=thread) proves the interleaving clean.
TEST(UpdateLedgerScrapeTest, ConcurrentScrapeWhileReporting) {
  core::UpdateLedger ledger;
  ledger.register_worker(0, "cpu", gpusim::DeviceKind::kCpu, 56);
  ledger.register_worker(1, "gpu", gpusim::DeviceKind::kGpu, 1024);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    msg::ScheduleWork report;
    std::uint64_t n = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ++n;
      report.worker = static_cast<msg::WorkerId>(n % 2);
      report.updates = n;
      report.busy_vtime = static_cast<double>(n) * 1e-4;
      report.clock_vtime = static_cast<double>(n) * 1e-3;
      report.examples = 64;
      report.staleness = 0.5;
      ledger.on_report(report);
      ledger.set_current_batch(report.worker, 128);
      if (n % 64 == 0) {
        core::FaultRecord fault;
        fault.worker = report.worker;
        fault.kind = core::FaultKind::kStall;
        fault.vtime = report.clock_vtime;
        ledger.record_fault(fault);
      }
    }
  });

  // Scrape until every accessor has demonstrably observed writer progress
  // (the loop must gate on ALL of them: the writer can burst thousands of
  // iterations inside one reader preemption, so a single observation
  // proves nothing about the others).
  std::uint64_t observed_updates = 0;
  std::size_t observed_faults = 0;
  while (observed_faults < 3 || observed_updates == 0) {
    for (const core::WorkerStats& s : ledger.all()) {
      observed_updates = std::max(observed_updates, s.updates);
    }
    observed_faults =
        std::max(observed_faults, ledger.fault_records().size());
    (void)ledger.stats(0);
    (void)ledger.total_updates();
    (void)ledger.min_clock();
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_GT(observed_updates, 0u);
  EXPECT_GE(ledger.fault_records().size(), observed_faults);
}

}  // namespace
}  // namespace hetsgd
