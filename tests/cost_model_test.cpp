#include "core/cost_model.hpp"

#include <gtest/gtest.h>

#include "nn/mlp.hpp"

namespace hetsgd::core {
namespace {

nn::MlpConfig paper_covtype_mlp() {
  // §VII-A: covtype uses 6 hidden layers of 512 units; binary labels.
  nn::MlpConfig c;
  c.input_dim = 54;
  c.num_classes = 2;
  c.hidden_layers = 6;
  c.hidden_units = 512;
  return c;
}

TEST(CostModel, ModelBytes) {
  nn::MlpConfig c;
  c.input_dim = 10;
  c.num_classes = 2;
  c.hidden_layers = 1;
  c.hidden_units = 4;
  // params: 10*4+4 + 4*2+2 = 54 -> 54*8 bytes
  EXPECT_EQ(model_bytes(c), 54u * sizeof(tensor::Scalar));
}

TEST(CostModel, CpuBatchMonotoneInSubBatch) {
  gpusim::PerfModel perf(gpusim::xeon56_spec());
  nn::MlpConfig mlp = paper_covtype_mlp();
  double prev = 0;
  for (tensor::Index sub : {1, 2, 8, 32, 64}) {
    double t = cpu_batch_seconds(perf, mlp, sub, 56);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(CostModel, CpuWavesBeyondSimulatedLanes) {
  gpusim::PerfModel perf(gpusim::xeon56_spec());
  nn::MlpConfig mlp = paper_covtype_mlp();
  double one_wave = cpu_batch_seconds(perf, mlp, 1, 56);
  double two_waves = cpu_batch_seconds(perf, mlp, 1, 57);
  EXPECT_NEAR(two_waves, 2.0 * one_wave, 1e-12);
}

TEST(CostModel, GpuBatchMonotone) {
  gpusim::PerfModel perf(gpusim::v100_spec());
  nn::MlpConfig mlp = paper_covtype_mlp();
  double prev = 0;
  for (tensor::Index b : {64, 256, 1024, 4096, 8192}) {
    double t = gpu_batch_seconds(perf, mlp, b, 2e10);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(CostModel, GpuLargeBatchAmortizesOverheads) {
  gpusim::PerfModel perf(gpusim::v100_spec());
  nn::MlpConfig mlp = paper_covtype_mlp();
  // Per-example cost must drop sharply with batch size — the reason the
  // paper keeps large batches on the GPU.
  double small = gpu_batch_seconds(perf, mlp, 64, 2e10) / 64.0;
  double large = gpu_batch_seconds(perf, mlp, 8192, 2e10) / 8192.0;
  EXPECT_GT(small / large, 10.0);
}

TEST(CostModel, IntensityBounds) {
  for (tensor::Index sub : {1, 2, 16, 64}) {
    double x = cpu_batch_intensity(56, 64, sub, 64);
    EXPECT_GT(x, 0.5);
    EXPECT_LT(x, 1.0);
  }
  // Larger sub-batches slightly decrease CPU utilization (Fig. 7).
  EXPECT_LT(cpu_batch_intensity(56, 64, 64, 64),
            cpu_batch_intensity(56, 64, 1, 64));
}

TEST(CostModel, EpochSeconds) {
  gpusim::PerfModel cpu(gpusim::xeon56_spec());
  nn::MlpConfig mlp = paper_covtype_mlp();
  double one = cpu_epoch_seconds(cpu, mlp, 56 * 100, 1, 56);
  double batch = cpu_batch_seconds(cpu, mlp, 1, 56);
  EXPECT_NEAR(one, 100.0 * batch, 1e-9);
}

// The calibration test: the modeled epoch-time ratio between CPU Hogwild
// and GPU mini-batch on the paper's covtype configuration must land in the
// measured 236-317x band (§VII-B: "Hogwild CPU takes considerably longer —
// from 236x to 317x — to execute an SGD epoch than GPU").
TEST(CostModel, PaperEpochRatioWithinMeasuredBand) {
  gpusim::PerfModel cpu(gpusim::xeon56_spec());
  gpusim::PerfModel gpu(gpusim::v100_spec());
  nn::MlpConfig mlp = paper_covtype_mlp();
  const tensor::Index n = 581012;
  const double cpu_epoch = cpu_epoch_seconds(cpu, mlp, n, 1, 56);
  const double gpu_epoch = gpu_epoch_seconds(gpu, mlp, n, 8192, 2e10);
  const double ratio = cpu_epoch / gpu_epoch;
  EXPECT_GE(ratio, 236.0) << "cpu=" << cpu_epoch << " gpu=" << gpu_epoch;
  EXPECT_LE(ratio, 317.0) << "cpu=" << cpu_epoch << " gpu=" << gpu_epoch;
}

// CPU Hogwild must nonetheless produce *more updates per second* than the
// GPU — the foundation of the heterogeneous algorithms (§II: "small
// batches generate more model updates, thus faster convergence").
TEST(CostModel, CpuUpdateRateExceedsGpu) {
  gpusim::PerfModel cpu(gpusim::xeon56_spec());
  gpusim::PerfModel gpu(gpusim::v100_spec());
  nn::MlpConfig mlp = paper_covtype_mlp();
  const double cpu_updates_per_sec =
      56.0 / cpu_batch_seconds(cpu, mlp, 1, 56);
  const double gpu_updates_per_sec =
      1.0 / gpu_batch_seconds(gpu, mlp, 8192, 2e10);
  EXPECT_GT(cpu_updates_per_sec, 5.0 * gpu_updates_per_sec);
}

}  // namespace
}  // namespace hetsgd::core
