#include "nn/loss.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace hetsgd::nn {
namespace {

using tensor::Index;
using tensor::Matrix;
using tensor::Scalar;

TEST(SoftmaxXent, UniformLogitsGiveLogC) {
  Matrix logits(4, 5);  // all zeros -> uniform distribution
  std::vector<std::int32_t> labels{0, 1, 2, 3};
  Scalar loss = softmax_cross_entropy(logits.view(), labels, nullptr);
  EXPECT_NEAR(loss, std::log(5.0), 1e-12);
}

TEST(SoftmaxXent, ConfidentCorrectPredictionLowLoss) {
  Matrix logits{{100, 0, 0}};
  std::vector<std::int32_t> labels{0};
  EXPECT_LT(softmax_cross_entropy(logits.view(), labels, nullptr), 1e-6);
}

TEST(SoftmaxXent, ConfidentWrongPredictionHighLoss) {
  Matrix logits{{100, 0}};
  std::vector<std::int32_t> labels{1};
  EXPECT_GT(softmax_cross_entropy(logits.view(), labels, nullptr), 50.0);
}

TEST(SoftmaxXent, StableForHugeLogits) {
  Matrix logits{{1e5, 1e5 - 1}};
  std::vector<std::int32_t> labels{0};
  Scalar loss = softmax_cross_entropy(logits.view(), labels, nullptr);
  EXPECT_TRUE(std::isfinite(loss));
}

TEST(SoftmaxXent, GradientRowsSumToZero) {
  Rng rng(3);
  Matrix logits(6, 4);
  tensor::fill_normal(logits.view(), rng, 0, 2);
  std::vector<std::int32_t> labels{0, 1, 2, 3, 0, 1};
  Matrix grad(6, 4);
  auto gv = grad.view();
  softmax_cross_entropy(logits.view(), labels, &gv);
  for (Index r = 0; r < 6; ++r) {
    Scalar row_sum = 0;
    for (Index c = 0; c < 4; ++c) row_sum += grad(r, c);
    EXPECT_NEAR(row_sum, 0.0, 1e-12);  // softmax - onehot sums to zero
  }
}

TEST(SoftmaxXent, GradientMatchesFiniteDifference) {
  Rng rng(7);
  Matrix logits(3, 4);
  tensor::fill_normal(logits.view(), rng, 0, 1);
  std::vector<std::int32_t> labels{2, 0, 3};
  Matrix grad(3, 4);
  auto gv = grad.view();
  softmax_cross_entropy(logits.view(), labels, &gv);
  const double eps = 1e-6;
  for (Index r = 0; r < 3; ++r) {
    for (Index c = 0; c < 4; ++c) {
      Matrix plus = logits, minus = logits;
      plus(r, c) += eps;
      minus(r, c) -= eps;
      const double numeric =
          (softmax_cross_entropy(plus.view(), labels, nullptr) -
           softmax_cross_entropy(minus.view(), labels, nullptr)) /
          (2 * eps);
      EXPECT_NEAR(grad(r, c), numeric, 1e-8);
    }
  }
}

TEST(SoftmaxXent, LossIsMeanOverBatch) {
  Matrix one{{2, 1}};
  std::vector<std::int32_t> l1{0};
  Scalar single = softmax_cross_entropy(one.view(), l1, nullptr);
  Matrix two{{2, 1}, {2, 1}};
  std::vector<std::int32_t> l2{0, 0};
  EXPECT_NEAR(softmax_cross_entropy(two.view(), l2, nullptr), single, 1e-12);
}

TEST(SoftmaxXent, LabelOutOfRangeDies) {
  Matrix logits(1, 3);
  std::vector<std::int32_t> labels{3};
  EXPECT_DEATH(softmax_cross_entropy(logits.view(), labels, nullptr),
               "label out of range");
}

TEST(SigmoidBce, KnownValues) {
  Matrix logits{{0, 0}};
  Matrix targets{{1, 0}};
  Scalar loss = sigmoid_bce(logits.view(), targets.view(), nullptr);
  EXPECT_NEAR(loss, 2 * std::log(2.0), 1e-12);  // two times -log(0.5), /B=1
}

TEST(SigmoidBce, GradientMatchesFiniteDifference) {
  Rng rng(9);
  Matrix logits(2, 3);
  tensor::fill_normal(logits.view(), rng, 0, 1.5);
  Matrix targets{{1, 0, 1}, {0, 1, 0}};
  Matrix grad(2, 3);
  auto gv = grad.view();
  sigmoid_bce(logits.view(), targets.view(), &gv);
  const double eps = 1e-6;
  for (Index r = 0; r < 2; ++r) {
    for (Index c = 0; c < 3; ++c) {
      Matrix plus = logits, minus = logits;
      plus(r, c) += eps;
      minus(r, c) -= eps;
      const double numeric =
          (sigmoid_bce(plus.view(), targets.view(), nullptr) -
           sigmoid_bce(minus.view(), targets.view(), nullptr)) /
          (2 * eps);
      EXPECT_NEAR(grad(r, c), numeric, 1e-8);
    }
  }
}

TEST(SigmoidBce, StableForLargeLogits) {
  Matrix logits{{1000, -1000}};
  Matrix targets{{1, 0}};
  Scalar loss = sigmoid_bce(logits.view(), targets.view(), nullptr);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NEAR(loss, 0.0, 1e-9);
}

TEST(Accuracy, CountsArgmaxMatches) {
  Matrix logits{{2, 1, 0}, {0, 5, 1}, {1, 0, 3}, {9, 0, 0}};
  std::vector<std::int32_t> labels{0, 1, 0, 1};
  EXPECT_NEAR(accuracy(logits.view(), labels), 0.5, 1e-12);
}

TEST(Accuracy, EmptyBatchIsZero) {
  Matrix logits(0, 3);
  std::vector<std::int32_t> labels;
  EXPECT_EQ(accuracy(logits.view(), labels), 0.0);
}

}  // namespace
}  // namespace hetsgd::nn
