// Quickstart: train a small MLP on a synthetic dataset with every
// algorithm the framework supports, and print a comparison table.
//
//   ./quickstart [--examples N] [--budget SECONDS] [--algorithm NAME]
//
// This is the 60-second tour of the public API: build a Dataset, fill a
// TrainingConfig, run the Trainer, read the TrainingResult.
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "core/trainer.hpp"
#include "data/synthetic.hpp"

using namespace hetsgd;

int main(int argc, char** argv) {
  std::int64_t examples = 4096;
  std::int64_t hidden_units = 32;
  std::int64_t hidden_layers = 2;
  double budget = 0.05;
  std::string algorithm = "all";

  CliParser cli("quickstart", "train a small MLP with each SGD algorithm");
  cli.add_int("examples", &examples, "synthetic dataset size");
  cli.add_int("hidden-units", &hidden_units, "units per hidden layer");
  cli.add_int("hidden-layers", &hidden_layers, "hidden layer count");
  cli.add_double("budget", &budget, "virtual-time budget in seconds");
  cli.add_string("algorithm", &algorithm,
                 "cpu | gpu | cpu+gpu | adaptive | tensorflow | all");
  if (!cli.parse(argc, argv)) return 0;

  // 1. Data: a deterministic synthetic classification problem.
  data::SyntheticSpec spec;
  spec.name = "quickstart";
  spec.examples = examples;
  spec.dim = 32;
  spec.classes = 4;
  spec.feature_noise = 0.6;
  data::Dataset dataset = data::make_synthetic(spec);

  // 2. Configuration: network + algorithm + budget.
  core::TrainingConfig config;
  config.mlp.hidden_layers = static_cast<int>(hidden_layers);
  config.mlp.hidden_units = hidden_units;
  config.learning_rate = 1e-3;
  config.time_budget_vseconds = budget;
  config.eval_interval_vseconds = budget / 20.0;
  config.gpu.batch = 1024;
  config.gpu.min_batch = 64;
  config.gpu.max_batch = 1024;

  std::vector<core::Algorithm> algorithms;
  if (algorithm == "all") {
    algorithms = {core::Algorithm::kHogwildCpu, core::Algorithm::kMinibatchGpu,
                  core::Algorithm::kCpuGpuHogbatch,
                  core::Algorithm::kAdaptiveHogbatch,
                  core::Algorithm::kTensorFlow};
  } else {
    core::Algorithm a;
    if (!core::parse_algorithm(algorithm, a)) {
      std::fprintf(stderr, "unknown algorithm '%s'\n", algorithm.c_str());
      return 2;
    }
    algorithms = {a};
  }

  std::printf("dataset: %s  (%lld examples, %lld features, %d classes)\n\n",
              dataset.name().c_str(),
              static_cast<long long>(dataset.example_count()),
              static_cast<long long>(dataset.dim()), dataset.num_classes());
  std::printf("%-14s %10s %10s %9s %12s %12s %9s\n", "algorithm",
              "init loss", "final", "epochs", "cpu updates", "gpu updates",
              "wall s");

  // 3. Run each algorithm on the same data and seed.
  for (auto a : algorithms) {
    config.algorithm = a;
    core::Trainer trainer(dataset, config);
    core::TrainingResult r = trainer.run();
    std::printf("%-14s %10.4f %10.4f %9.2f %12llu %12llu %9.2f\n",
                core::algorithm_name(a), r.initial_loss, r.final_loss,
                r.epochs, static_cast<unsigned long long>(r.cpu_updates),
                static_cast<unsigned long long>(r.gpu_updates),
                r.wall_seconds);
  }
  return 0;
}
