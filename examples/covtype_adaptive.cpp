// Adaptive Hogbatch on a covtype-like workload — the paper's flagship
// scenario (§VII).
//
// Shows what the adaptive controller actually does at runtime: the CPU
// worker starts at Hogwild (1 example/thread), the GPU at its upper batch
// threshold, and the coordinator rebalances batch sizes as update counts
// diverge. Prints the loss trajectory, final batch sizes, update
// distribution, and utilization.
#include <cmath>
#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "core/cost_model.hpp"
#include "core/elastic.hpp"
#include "core/fault.hpp"
#include "core/trainer.hpp"
#include "data/synthetic.hpp"
#include "obs/exporter.hpp"

using namespace hetsgd;

int main(int argc, char** argv) {
  double scale = 0.01;
  double gpu_epochs_budget = 10.0;
  double alpha = 2.0;
  std::string fault_csv;
  std::string elastic_plan;
  std::string backend = "sim";
  core::FaultToleranceConfig fault;
  obs::ObsOptions obs_options;
  CliParser cli("covtype_adaptive",
                "Adaptive Hogbatch on a covtype-like workload");
  cli.add_double("scale", &scale, "fraction of covtype's 581k examples");
  cli.add_double("budget", &gpu_epochs_budget,
                 "virtual-time budget, in GPU mini-batch epochs");
  cli.add_double("alpha", &alpha, "batch resize factor (Algorithm 2)");
  core::register_backend_flag(cli, &backend);
  core::register_fault_flags(cli, &fault);
  core::register_elastic_flags(cli, &elastic_plan);
  obs::register_obs_flags(cli, &obs_options);
  cli.add_string("fault-csv", &fault_csv,
                 "write the fault/recovery event log to this CSV");
  if (!cli.parse(argc, argv)) return 0;
  if (!core::validate_backend(backend)) {
    std::fprintf(stderr, "unknown backend '%s' (%s)\n", backend.c_str(),
                 core::backend_names_help().c_str());
    return 2;
  }

  data::Dataset dataset =
      data::make_paper_dataset(data::PaperDataset::kCovtype, scale, 7);
  std::printf("dataset: %s-like, %lld examples x %lld features, %d classes\n",
              dataset.name().c_str(),
              static_cast<long long>(dataset.example_count()),
              static_cast<long long>(dataset.dim()), dataset.num_classes());

  core::TrainingConfig config;
  config.algorithm = core::Algorithm::kAdaptiveHogbatch;
  config.mlp.hidden_layers = 6;  // Table II: covtype trains 6 hidden layers
  config.mlp.hidden_units = 48;
  config.mlp.hidden_activation = nn::Activation::kTanh;
  config.learning_rate = 1e-3;
  config.alpha = alpha;
  config.gpu.min_batch = 128;
  config.gpu.max_batch = 1024;
  config.gpu.batch = 1024;
  config.gpu.spec.half_saturation_batch = 128;
  config.backend = backend;
  config.fault = fault;
  config.elastic_plan = elastic_plan;
  config.obs = obs_options;

  // Budget: enough virtual time for the GPU alone to do `budget` epochs.
  core::TrainingConfig probe = config;
  probe.mlp.input_dim = dataset.dim();
  probe.mlp.num_classes = dataset.num_classes();
  gpusim::PerfModel gpu_perf(config.gpu.spec);
  config.time_budget_vseconds =
      gpu_epochs_budget *
      core::gpu_epoch_seconds(gpu_perf, probe.mlp, dataset.example_count(),
                              config.gpu.batch,
                              config.gpu.host_merge_bandwidth);
  config.eval_interval_vseconds = config.time_budget_vseconds / 12.0;

  core::Trainer trainer(std::move(dataset), config);
  core::TrainingResult r = trainer.run();

  if (r.resumed) {
    std::printf("resumed from checkpoint (epoch %llu)\n",
                static_cast<unsigned long long>(r.resume_epoch));
  }
  if (r.workers_joined > 0 || r.workers_retired > 0) {
    std::printf("elastic membership: %llu joined, %llu retired\n",
                static_cast<unsigned long long>(r.workers_joined),
                static_cast<unsigned long long>(r.workers_retired));
  }

  std::printf("\nloss trajectory (virtual seconds -> loss):\n");
  for (const auto& p : r.loss_curve) {
    std::printf("  t=%8.5f  epoch=%6.2f  loss=%.4f\n", p.vtime, p.epochs,
                p.loss);
  }

  std::printf("\nworkers:\n");
  for (const auto& w : r.workers) {
    std::printf("  %-12s updates=%8llu batches=%6llu final_batch=%5lld "
                "utilization=%4.1f%%\n",
                w.name.c_str(), static_cast<unsigned long long>(w.updates),
                static_cast<unsigned long long>(w.batches),
                static_cast<long long>(w.final_batch),
                100.0 * w.mean_utilization);
  }
  const double total =
      static_cast<double>(r.cpu_updates + r.gpu_updates);
  std::printf("\nupdate distribution: CPU %.1f%% / GPU %.1f%% "
              "(adaptive moves this toward 50/50)\n",
              100.0 * static_cast<double>(r.cpu_updates) / total,
              100.0 * static_cast<double>(r.gpu_updates) / total);
  std::printf("final loss %.4f after %.2f epochs in %.4g virtual seconds "
              "(%.1fs wall)\n",
              r.final_loss, r.epochs, r.total_vtime, r.wall_seconds);
  if (!fault.checkpoint_dir.empty()) {
    std::printf("checkpoints written: %llu (dir %s)\n",
                static_cast<unsigned long long>(r.checkpoints_written),
                fault.checkpoint_dir.c_str());
  }

  if (!r.fault_events.empty()) {
    std::printf("\nfault/recovery log (%zu events):\n",
                r.fault_events.size());
    for (const auto& e : r.fault_events) {
      std::printf("  t=%8.5f worker=%2d %-20s reclaimed=%llu %s\n", e.vtime,
                  e.worker, core::fault_kind_name(e.kind),
                  static_cast<unsigned long long>(e.reclaimed_examples),
                  e.detail.c_str());
    }
    std::printf("dispatched %llu = reported %llu + reclaimed %llu "
                "(late %llu) | rollbacks=%llu quarantined=%llu lr_scale=%g\n",
                static_cast<unsigned long long>(r.examples_dispatched),
                static_cast<unsigned long long>(r.examples_dispatched -
                                                r.examples_reclaimed),
                static_cast<unsigned long long>(r.examples_reclaimed),
                static_cast<unsigned long long>(r.late_examples),
                static_cast<unsigned long long>(r.rollbacks),
                static_cast<unsigned long long>(r.quarantined_workers),
                r.final_lr_scale);
  }
  if (!fault_csv.empty()) {
    core::write_fault_events_csv(r, fault_csv);
    std::printf("fault events written to %s\n", fault_csv.c_str());
  }
  if (!std::isfinite(r.final_loss)) {
    std::fprintf(stderr, "FINAL LOSS IS NON-FINITE\n");
    return 1;
  }
  return 0;
}
