// Train from a LIBSVM file on disk — the data-ingestion path a user with
// the real covtype/w8a/delicious/real-sim files would follow.
//
//   ./libsvm_train --file path/to/data.libsvm [--algorithm adaptive]
//
// Without --file, a small sample file is generated first so the example is
// self-contained.
#include <cstdio>
#include <filesystem>
#include <string>

#include "common/cli.hpp"
#include "core/trainer.hpp"
#include "data/libsvm_io.hpp"
#include "data/synthetic.hpp"
#include "obs/exporter.hpp"

using namespace hetsgd;

int main(int argc, char** argv) {
  std::string file;
  std::string algorithm = "adaptive";
  std::string backend = "sim";
  std::int64_t max_examples = 0;
  double budget = 0.02;
  obs::ObsOptions obs_options;
  CliParser cli("libsvm_train", "train on a LIBSVM-format file");
  cli.add_string("file", &file, "LIBSVM input (generated sample if empty)");
  cli.add_string("algorithm", &algorithm,
                 "cpu | gpu | cpu+gpu | adaptive | tensorflow");
  core::register_backend_flag(cli, &backend);
  cli.add_int("max-examples", &max_examples, "cap on examples read (0=all)");
  cli.add_double("budget", &budget, "virtual-time budget in seconds");
  obs::register_obs_flags(cli, &obs_options);
  if (!cli.parse(argc, argv)) return 0;
  if (!core::validate_backend(backend)) {
    std::fprintf(stderr, "unknown backend '%s' (%s)\n", backend.c_str(),
                 core::backend_names_help().c_str());
    return 2;
  }

  if (file.empty()) {
    // Self-contained mode: synthesize a small dataset and round-trip it
    // through the LIBSVM format.
    file = (std::filesystem::temp_directory_path() / "hetsgd_sample.libsvm")
               .string();
    data::SyntheticSpec spec;
    spec.name = "sample";
    spec.examples = 2000;
    spec.dim = 64;
    spec.classes = 3;
    spec.density = 0.3;
    spec.feature_noise = 0.8;
    data::write_libsvm(data::make_synthetic(spec), file);
    std::printf("generated sample LIBSVM file: %s\n", file.c_str());
  }

  data::LibsvmReadOptions options;
  options.max_examples = max_examples;
  data::Dataset dataset = data::read_libsvm(file, options);
  dataset.scale_features_minmax();  // the usual LIBSVM preprocessing
  std::printf("loaded %lld examples, %lld features, %d classes "
              "(%.1f MB dense)\n",
              static_cast<long long>(dataset.example_count()),
              static_cast<long long>(dataset.dim()), dataset.num_classes(),
              static_cast<double>(dataset.feature_bytes()) / (1 << 20));

  core::Algorithm a;
  if (!core::parse_algorithm(algorithm, a)) {
    std::fprintf(stderr, "unknown algorithm '%s'\n", algorithm.c_str());
    return 2;
  }

  core::TrainingConfig config;
  config.algorithm = a;
  config.mlp.hidden_layers = 2;
  config.mlp.hidden_units = 32;
  config.mlp.hidden_activation = nn::Activation::kTanh;
  config.learning_rate = 1e-3;
  config.time_budget_vseconds = budget;
  config.eval_interval_vseconds = budget / 10.0;
  config.gpu.batch = 512;
  config.gpu.min_batch = 64;
  config.gpu.max_batch = 512;
  config.backend = backend;
  config.obs = obs_options;

  core::Trainer trainer(std::move(dataset), config);
  core::TrainingResult r = trainer.run();

  std::printf("\n%s: loss %.4f -> %.4f over %.2f epochs "
              "(cpu updates %llu, gpu updates %llu)\n",
              core::algorithm_name(a), r.initial_loss, r.final_loss, r.epochs,
              static_cast<unsigned long long>(r.cpu_updates),
              static_cast<unsigned long long>(r.gpu_updates));
  return 0;
}
