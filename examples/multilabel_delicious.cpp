// Multi-label training on a delicious-like workload using the nn API
// directly.
//
// delicious is the paper's multi-label dataset (983 tags). This example
// exercises the sigmoid+BCE path of the library — each example can carry
// several tags — and the simulated GPU backend for the softmax
// single-label formulation side by side, reproducing in miniature the
// observation of §VII-B that the many-label output layer is where
// TensorFlow's overhead lives.
#include <cstdio>
#include <memory>
#include <vector>

#include "backend/mlp_executor.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "data/synthetic.hpp"
#include "nn/mlp.hpp"
#include "tensor/ops.hpp"

using namespace hetsgd;
using tensor::Index;

int main(int argc, char** argv) {
  std::int64_t examples = 1600;
  std::int64_t tags = 64;
  std::int64_t steps = 150;
  CliParser cli("multilabel_delicious",
                "sigmoid+BCE multi-label training on delicious-like data");
  cli.add_int("examples", &examples, "number of training examples");
  cli.add_int("tags", &tags, "number of output tags");
  cli.add_int("steps", &steps, "training steps");
  if (!cli.parse(argc, argv)) return 0;

  // Single-label delicious-like base; multi-hot targets derived by turning
  // on the true tag plus a few correlated neighbors.
  data::SyntheticSpec spec;
  spec.name = "delicious-mini";
  spec.examples = examples;
  spec.dim = 500;
  spec.classes = static_cast<std::int32_t>(tags);
  spec.support = 48;
  spec.density = 0.12;
  spec.feature_noise = 0.8;
  data::Dataset dataset = data::make_synthetic(spec);

  Rng rng(99);
  tensor::Matrix targets(dataset.example_count(),
                         static_cast<Index>(tags));
  for (Index i = 0; i < dataset.example_count(); ++i) {
    const std::int32_t y = dataset.labels()[static_cast<std::size_t>(i)];
    targets(i, y) = 1.0;
    // Correlated co-tags: neighbors of the primary tag fire with p=0.3.
    targets(i, (y + 1) % tags) = rng.bernoulli(0.3) ? 1.0 : 0.0;
    targets(i, (y + 2) % tags) = rng.bernoulli(0.15) ? 1.0 : 0.0;
  }

  nn::MlpConfig mlp;
  mlp.input_dim = dataset.dim();
  mlp.num_classes = static_cast<Index>(tags);
  mlp.hidden_layers = 3;
  mlp.hidden_units = 64;
  mlp.hidden_activation = nn::Activation::kTanh;
  nn::Model model(mlp, rng);
  nn::Workspace ws;
  nn::Gradient grad = nn::make_zero_gradient(model);

  std::printf("multi-label training: %lld examples, %lld tags, "
              "%llu parameters\n",
              static_cast<long long>(dataset.example_count()),
              static_cast<long long>(tags),
              static_cast<unsigned long long>(model.parameter_count()));

  const Index batch = 128;
  Index cursor = 0;
  for (std::int64_t step = 0; step < steps; ++step) {
    if (cursor + batch > dataset.example_count()) cursor = 0;
    auto x = dataset.batch_features(cursor, batch);
    auto t = targets.rows_view(cursor, batch);
    const double loss =
        nn::compute_gradient_bce(model, x, t, ws, grad);
    nn::sgd_step(model, grad, 0.5);
    cursor += batch;
    if (step % (steps / 10 > 0 ? steps / 10 : 1) == 0) {
      std::printf("  step %4lld  bce loss %.4f\n",
                  static_cast<long long>(step), loss);
    }
  }

  // Tag-recall check: does the trained model rank the true primary tag
  // highly?
  nn::forward(model, dataset.batch_features(0, 256), ws);
  auto logits = ws.logits().rows_view(0, 256);
  Index hits = 0;
  for (Index i = 0; i < 256; ++i) {
    const tensor::Scalar* row = logits.row(i);
    Index best = 0;
    for (Index c = 1; c < static_cast<Index>(tags); ++c) {
      if (row[c] > row[best]) best = c;
    }
    if (best == dataset.labels()[static_cast<std::size_t>(i)]) ++hits;
  }
  std::printf("primary-tag top-1 recall on 256 examples: %.1f%% "
              "(chance: %.1f%%)\n",
              100.0 * static_cast<double>(hits) / 256.0,
              100.0 / static_cast<double>(tags));

  // The same architecture through the simulated GPU: the 983-wide output
  // layer dominates the per-batch kernel cost — the seed of TensorFlow's
  // delicious slowdown in Fig. 5c.
  auto device = backend::make_backend("sim", backend::v100_spec());
  nn::MlpConfig wide = mlp;
  wide.num_classes = 983;
  backend::MlpExecutor device_mlp(*device, wide, batch);
  nn::Model wide_model(wide, rng);
  std::vector<std::int32_t> wide_labels(static_cast<std::size_t>(batch), 0);
  double t0 = device_mlp.upload_model(wide_model, 0.0);
  double done = t0;
  device_mlp.compute_gradient(dataset.batch_features(0, batch), wide_labels,
                              t0, &done);
  std::printf("simulated V100, one %lld-example batch with 983-way output: "
              "%.3f ms of device time\n",
              static_cast<long long>(batch), (done - t0) * 1e3);
  return 0;
}
