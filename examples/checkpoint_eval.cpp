// Checkpoint / resume / held-out evaluation workflow.
//
// Trains with Adaptive Hogbatch in two halves, checkpointing the model
// between them (save_model / load_model), and evaluates on a stratified
// held-out split with a confusion matrix — the operational loop of a user
// running long heterogeneous jobs.
#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>

#include "common/cli.hpp"
#include "core/trainer.hpp"
#include "data/split.hpp"
#include "data/synthetic.hpp"
#include "nn/metrics.hpp"
#include "nn/serialize.hpp"

using namespace hetsgd;

int main(int argc, char** argv) {
  std::int64_t examples = 4000;
  double budget = 0.02;
  CliParser cli("checkpoint_eval",
                "train, checkpoint, resume, evaluate on held-out data");
  cli.add_int("examples", &examples, "synthetic dataset size");
  cli.add_double("budget", &budget, "virtual seconds per training half");
  if (!cli.parse(argc, argv)) return 0;

  data::SyntheticSpec spec;
  spec.name = "ckpt-demo";
  spec.examples = examples;
  spec.dim = 24;
  spec.classes = 4;
  spec.feature_noise = 0.5;
  data::Dataset full = data::make_synthetic(spec);

  Rng rng(5);
  auto split = data::train_test_split(full, 0.2, rng);
  std::printf("split: %lld train / %lld test examples\n",
              static_cast<long long>(split.train.example_count()),
              static_cast<long long>(split.test.example_count()));

  core::TrainingConfig config;
  config.algorithm = core::Algorithm::kAdaptiveHogbatch;
  config.mlp.hidden_layers = 2;
  config.mlp.hidden_units = 24;
  config.mlp.hidden_activation = nn::Activation::kTanh;
  config.learning_rate = 1e-3;
  config.time_budget_vseconds = budget;
  config.eval_interval_vseconds = budget / 5;
  config.gpu.batch = 512;
  config.gpu.min_batch = 64;
  config.gpu.max_batch = 512;

  const std::string ckpt =
      (std::filesystem::temp_directory_path() / "hetsgd_demo.ckpt").string();

  // First half: train from scratch, checkpoint the result.
  //
  // (The Trainer owns model lifecycle per run; for the resume we evaluate
  // its effect through the checkpoint file, demonstrating the serialize
  // API round-trip under a real trained model.)
  core::Trainer first(split.train, config);
  core::TrainingResult r1 = first.run();
  std::printf("half 1: loss %.4f -> %.4f (%.2f epochs)\n", r1.initial_loss,
              r1.final_loss, r1.epochs);

  // Persist an independently trained model for the evaluation below.
  nn::MlpConfig mlp = config.mlp;
  mlp.input_dim = split.train.dim();
  mlp.num_classes = split.train.num_classes();
  nn::Model model(mlp, rng);
  nn::Workspace ws;
  nn::Gradient grad = nn::make_zero_gradient(model);
  for (int step = 0; step < 400; ++step) {
    const tensor::Index batch = 256;
    const tensor::Index begin =
        (step * batch) % (split.train.example_count() - batch);
    nn::compute_gradient(model, split.train.batch_features(begin, batch),
                         split.train.batch_labels(begin, batch), ws, grad);
    nn::sgd_step(model, grad, 0.3);
  }
  nn::save_model(model, ckpt);
  std::printf("checkpoint written: %s (%llu parameters)\n", ckpt.c_str(),
              static_cast<unsigned long long>(model.parameter_count()));

  // Resume: load and continue training. The recoverable API reports a
  // corrupt/missing checkpoint instead of aborting — a resume workflow
  // should fall back to retraining, not crash.
  std::string load_error;
  std::optional<nn::Model> maybe_resumed = nn::try_load_model(ckpt, &load_error);
  if (!maybe_resumed) {
    std::fprintf(stderr, "checkpoint unusable (%s); aborting resume\n",
                 load_error.c_str());
    return 1;
  }
  nn::Model resumed = std::move(*maybe_resumed);
  std::printf("checkpoint loaded: identical=%s\n",
              resumed.max_abs_diff(model) == 0.0 ? "yes" : "NO");
  for (int step = 0; step < 200; ++step) {
    const tensor::Index batch = 256;
    const tensor::Index begin =
        (step * batch) % (split.train.example_count() - batch);
    nn::compute_gradient(resumed, split.train.batch_features(begin, batch),
                         split.train.batch_labels(begin, batch), ws, grad);
    nn::sgd_step(resumed, grad, 0.3);
  }

  // Held-out evaluation.
  nn::ConfusionMatrix cm = nn::evaluate_classifier(
      resumed, split.test.features().view(), split.test.labels(), ws);
  std::printf("\nheld-out evaluation (%llu examples):\n",
              static_cast<unsigned long long>(cm.total()));
  std::printf("  accuracy: %.1f%%   macro-F1: %.3f\n", 100.0 * cm.accuracy(),
              cm.macro_f1());
  for (std::int32_t c = 0; c < cm.classes(); ++c) {
    std::printf("  class %d: precision %.2f recall %.2f f1 %.2f\n", c,
                cm.precision(c), cm.recall(c), cm.f1(c));
  }
  std::remove(ckpt.c_str());
  return 0;
}
