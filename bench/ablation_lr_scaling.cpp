// Ablation — learning-rate-proportional-to-batch-size coupling.
//
// §VI-B: "we set the learning rate to be proportional with the batch size
// [7] ... this guarantees that the impact of the more accurate gradients
// on convergence is higher." With the coupling off, every update uses the
// same per-example rate regardless of batch, so large accurate GPU batches
// move the model no further than single noisy CPU examples.
#include <cstdio>

#include "common/cli.hpp"
#include "common/csv_writer.hpp"
#include "bench_common.hpp"

using namespace hetsgd;
using core::Algorithm;

int main(int argc, char** argv) {
  double scale = 1.0;
  std::int64_t units = 48;
  double epochs = 12.0;
  CliParser cli("ablation_lr_scaling",
                "learning rate proportional to batch size: on vs off");
  cli.add_double("scale", &scale, "multiplier on bench dataset scales");
  cli.add_int("units", &units, "hidden units per layer");
  cli.add_double("epochs", &epochs, "budget in GPU mini-batch epochs");
  if (!cli.parse(argc, argv)) return 0;

  CsvWriter csv(bench::result_path("ablation_lr_scaling.csv"),
                {"dataset", "algorithm", "lr_scaling", "final_loss"});

  std::printf("Ablation: lr ∝ batch coupling (final loss, lower is better)\n");
  std::printf("%-11s %-14s %14s %14s\n", "dataset", "algorithm",
              "scaling on", "scaling off");
  for (const auto& b : bench::evaluation_suite(scale, units)) {
    data::Dataset probe = bench::build_dataset(b, 1);
    const double budget =
        bench::budget_for_gpu_epochs(b, probe.example_count(), epochs);
    for (auto a : {Algorithm::kMinibatchGpu, Algorithm::kCpuGpuHogbatch,
                   Algorithm::kAdaptiveHogbatch}) {
      double losses[2] = {0, 0};
      for (int onoff = 0; onoff < 2; ++onoff) {
        data::Dataset dataset = bench::build_dataset(b, 1);
        core::TrainingConfig config = bench::build_config(b, a, budget);
        config.scale_lr_with_batch = (onoff == 0);
        core::Trainer trainer(std::move(dataset), config);
        core::TrainingResult r = trainer.run();
        losses[onoff] = r.final_loss;
        csv.row(std::vector<std::string>{b.name, core::algorithm_name(a),
                                         onoff == 0 ? "on" : "off",
                                         std::to_string(r.final_loss)});
      }
      std::printf("%-11s %-14s %14.4f %14.4f\n", b.name.c_str(),
                  core::algorithm_name(a), losses[0], losses[1]);
    }
  }
  std::printf("\nresults: %s\n",
              bench::result_path("ablation_lr_scaling.csv").c_str());
  return 0;
}
