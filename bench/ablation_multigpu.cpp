// Extension — multi-GPU scaling (the paper's stated future work: "we plan
// to scale these algorithms to multi-GPU architectures").
//
// Runs CPU+GPU and Adaptive Hogbatch with 1/2/4 GPU workers against one
// shared model and reports throughput (epochs per virtual second) and
// convergence. The p3.16xlarge the paper rents has 8 V100s, so this is the
// natural next step of its evaluation.
#include <cstdio>

#include "common/cli.hpp"
#include "common/csv_writer.hpp"
#include "bench_common.hpp"

using namespace hetsgd;
using core::Algorithm;

int main(int argc, char** argv) {
  double scale = 1.0;
  std::int64_t units = 48;
  double epochs = 10.0;
  std::string dataset_name = "covtype";
  CliParser cli("ablation_multigpu", "multi-GPU worker scaling");
  cli.add_double("scale", &scale, "multiplier on bench dataset scales");
  cli.add_int("units", &units, "hidden units per layer");
  cli.add_double("epochs", &epochs, "budget in single-GPU mini-batch epochs");
  cli.add_string("dataset", &dataset_name, "dataset to sweep on");
  if (!cli.parse(argc, argv)) return 0;

  CsvWriter csv(bench::result_path("ablation_multigpu.csv"),
                {"algorithm", "gpus", "epochs_per_vsecond", "final_loss",
                 "gpu_updates"});

  for (const auto& b : bench::evaluation_suite(scale, units)) {
    if (b.name != dataset_name) continue;
    data::Dataset probe = bench::build_dataset(b, 1);
    const double budget =
        bench::budget_for_gpu_epochs(b, probe.example_count(), epochs);

    std::printf("Multi-GPU scaling (%s), budget %.3g vs\n", b.name.c_str(),
                budget);
    std::printf("%-14s %6s %18s %12s %12s\n", "algorithm", "gpus",
                "epochs/vsecond", "final loss", "gpu updates");
    for (auto a : {Algorithm::kMinibatchGpu, Algorithm::kCpuGpuHogbatch,
                   Algorithm::kAdaptiveHogbatch}) {
      for (int gpus : {1, 2, 4}) {
        data::Dataset dataset = bench::build_dataset(b, 1);
        core::TrainingConfig config = bench::build_config(b, a, budget);
        config.gpu.worker_count = gpus;
        // Concurrent replica merges multiply the effective step size;
        // rescale the rate with the worker count (standard practice) so
        // the sweep measures throughput, not divergence.
        config.learning_rate /= static_cast<double>(gpus);
        core::Trainer trainer(std::move(dataset), config);
        core::TrainingResult r = trainer.run();
        const double rate = r.epochs / std::max(r.total_vtime, 1e-12);
        std::printf("%-14s %6d %18.2f %12.4f %12llu\n",
                    core::algorithm_name(a), gpus, rate, r.final_loss,
                    static_cast<unsigned long long>(r.gpu_updates));
        csv.row(std::vector<std::string>{
            core::algorithm_name(a), std::to_string(gpus),
            std::to_string(rate), std::to_string(r.final_loss),
            std::to_string(r.gpu_updates)});
      }
    }
  }
  std::printf("\nresults: %s\n",
              bench::result_path("ablation_multigpu.csv").c_str());
  return 0;
}
