// Ablation — SVRG vs plain mini-batch SGD vs the heterogeneous mixture.
//
// §II grounds CPU+GPU Hogbatch in the SVRG family: many noisy steps plus
// rare accurate "compass" jumps. This bench runs the sequential SVRG
// baseline next to the mini-batch reference and Adaptive Hogbatch on the
// same dataset and budget, comparing loss per epoch-equivalent of gradient
// work (SVRG pays 2x per inner step plus full passes) and per virtual
// second.
#include <cstdio>

#include "common/cli.hpp"
#include "common/csv_writer.hpp"
#include "core/svrg.hpp"
#include "bench_common.hpp"

using namespace hetsgd;
using core::Algorithm;

int main(int argc, char** argv) {
  double scale = 1.0;
  std::int64_t units = 48;
  double epochs = 12.0;
  std::string dataset_name = "covtype";
  CliParser cli("ablation_svrg", "SVRG baseline vs SGD vs heterogeneous");
  cli.add_double("scale", &scale, "multiplier on bench dataset scales");
  cli.add_int("units", &units, "hidden units per layer");
  cli.add_double("epochs", &epochs, "budget in GPU mini-batch epochs");
  cli.add_string("dataset", &dataset_name, "dataset to profile");
  if (!cli.parse(argc, argv)) return 0;

  CsvWriter csv(bench::result_path("ablation_svrg.csv"),
                {"method", "vtime", "epochs", "loss"});

  for (const auto& b : bench::evaluation_suite(scale, units)) {
    if (b.name != dataset_name) continue;
    data::Dataset probe = bench::build_dataset(b, 1);
    const double budget =
        bench::budget_for_gpu_epochs(b, probe.example_count(), epochs);

    std::printf("SVRG ablation (%s), budget %.3g vs\n", b.name.c_str(),
                budget);
    std::printf("%-12s %12s %10s %12s %12s\n", "method", "final loss",
                "epochs", "updates", "snapshots");

    // SVRG.
    {
      data::Dataset dataset = bench::build_dataset(b, 1);
      core::TrainingConfig config =
          bench::build_config(b, Algorithm::kTensorFlow, budget);
      core::SvrgOptions options;
      options.batch = b.gpu_min_batch;
      options.eval_interval_vseconds = budget / 30.0;
      core::SvrgResult r = core::run_svrg(dataset, config, options);
      std::printf("%-12s %12.4f %10.2f %12llu %12llu\n", "svrg",
                  r.curve.back().loss, r.epochs,
                  static_cast<unsigned long long>(r.inner_updates),
                  static_cast<unsigned long long>(r.snapshots));
      for (const auto& p : r.curve) {
        csv.row(std::vector<std::string>{"svrg", std::to_string(p.vtime),
                                         std::to_string(p.epochs),
                                         std::to_string(p.loss)});
      }
    }

    // Plain mini-batch SGD and the heterogeneous mixture.
    for (auto a : {Algorithm::kTensorFlow, Algorithm::kAdaptiveHogbatch}) {
      core::TrainingResult r = bench::run_cell(b, a, budget, 1);
      std::printf("%-12s %12.4f %10.2f %12llu %12s\n",
                  core::algorithm_name(a), r.final_loss, r.epochs,
                  static_cast<unsigned long long>(r.cpu_updates +
                                                  r.gpu_updates),
                  "-");
      for (const auto& p : r.loss_curve) {
        csv.row(std::vector<std::string>{core::algorithm_name(a),
                                         std::to_string(p.vtime),
                                         std::to_string(p.epochs),
                                         std::to_string(p.loss)});
      }
    }
  }
  std::printf("\nresults: %s\n",
              bench::result_path("ablation_svrg.csv").c_str());
  return 0;
}
