// Figure 6 — normalized loss for epochs to convergence (statistical
// efficiency).
//
// Same runs as Figure 5 but plotted against epochs-equivalent of processed
// examples. Hogwild CPU is excluded, as in the paper ("the curve
// corresponding to Hogwild CPU is not included because of the extremely
// long time it takes to perform the required number of epochs").
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/csv_writer.hpp"
#include "bench_common.hpp"

using namespace hetsgd;
using core::Algorithm;

namespace {

// Loss after `e` epochs (step interpolation on the curve's epoch axis).
double loss_at_epoch(const core::TrainingResult& r, double e) {
  double loss = r.loss_curve.empty() ? 0.0 : r.loss_curve.front().loss;
  for (const auto& p : r.loss_curve) {
    if (p.epochs > e) break;
    loss = p.loss;
  }
  return loss;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  std::int64_t units = 48;
  double epochs = 20.0;
  CliParser cli("fig6_statistical_efficiency",
                "Figure 6: normalized loss vs epochs");
  cli.add_double("scale", &scale, "multiplier on bench dataset scales");
  cli.add_int("units", &units, "hidden units per layer");
  cli.add_double("epochs", &epochs, "budget in GPU mini-batch epochs");
  if (!cli.parse(argc, argv)) return 0;

  // The four algorithms of Fig. 6 (no Hogwild CPU).
  const std::vector<Algorithm> algorithms = {
      Algorithm::kMinibatchGpu, Algorithm::kCpuGpuHogbatch,
      Algorithm::kAdaptiveHogbatch, Algorithm::kTensorFlow};

  CsvWriter csv(bench::result_path("fig6_statistical_efficiency.csv"),
                {"dataset", "algorithm", "epochs", "normalized_loss"});

  for (const auto& b : bench::evaluation_suite(scale, units)) {
    data::Dataset probe = bench::build_dataset(b, 1);
    const double budget =
        bench::budget_for_gpu_epochs(b, probe.example_count(), epochs);

    std::vector<core::TrainingResult> results;
    for (auto a : algorithms) {
      results.push_back(bench::run_cell(b, a, budget, 1));
    }
    const double basis = bench::min_loss(results);

    // Epoch checkpoints up to the fewest epochs any algorithm completed,
    // so the rows are comparable.
    double max_epochs = 1e300;
    for (const auto& r : results) {
      max_epochs = std::min(max_epochs, r.epochs);
    }

    std::printf("\nFig 6 (%s): normalized loss per epoch "
                "(basis %.4f, comparable to %.1f epochs)\n",
                b.name.c_str(), basis, max_epochs);
    std::printf("%-14s", "epoch:");
    const int kSamples = 8;
    for (int s = 1; s <= kSamples; ++s) {
      std::printf(" %6.2f", max_epochs * s / kSamples);
    }
    std::printf("\n");
    for (std::size_t i = 0; i < algorithms.size(); ++i) {
      std::printf("%-14s", core::algorithm_name(algorithms[i]));
      for (int s = 1; s <= kSamples; ++s) {
        const double e = max_epochs * s / kSamples;
        std::printf(" %6.3f", loss_at_epoch(results[i], e) / basis);
      }
      std::printf("\n");
      for (const auto& p : results[i].loss_curve) {
        csv.row(std::vector<std::string>{
            b.name, core::algorithm_name(algorithms[i]),
            std::to_string(p.epochs), std::to_string(p.loss / basis)});
      }
    }

    // Shape check reported by the paper: mini-batch (GPU) and TensorFlow
    // overlap; the heterogeneous algorithms sit at or below them.
    const double e_half = max_epochs / 2;
    std::printf("at %.1f epochs: gpu=%.3f tf=%.3f (expected to overlap), "
                "cpu+gpu=%.3f adaptive=%.3f\n", e_half,
                loss_at_epoch(results[0], e_half) / basis,
                loss_at_epoch(results[3], e_half) / basis,
                loss_at_epoch(results[1], e_half) / basis,
                loss_at_epoch(results[2], e_half) / basis);
  }
  std::printf("\nresults: %s\n",
              bench::result_path("fig6_statistical_efficiency.csv").c_str());
  return 0;
}
