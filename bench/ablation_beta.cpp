// Ablation — the CPU update-survival fraction beta (Algorithm 2).
//
// Beta discounts how many of the CPU worker's t concurrent Hogwild updates
// the coordinator counts (conflicting lock-free updates may partially
// overwrite each other). The paper determines beta = 1 empirically; this
// sweep shows the effect of discounting on the adaptive balance.
#include <cstdio>

#include "common/cli.hpp"
#include "common/csv_writer.hpp"
#include "bench_common.hpp"

using namespace hetsgd;

int main(int argc, char** argv) {
  double scale = 1.0;
  std::int64_t units = 48;
  double epochs = 12.0;
  std::string dataset_name = "covtype";
  CliParser cli("ablation_beta", "sweep Adaptive Hogbatch's beta");
  cli.add_double("scale", &scale, "multiplier on bench dataset scales");
  cli.add_int("units", &units, "hidden units per layer");
  cli.add_double("epochs", &epochs, "budget in GPU mini-batch epochs");
  cli.add_string("dataset", &dataset_name, "dataset to sweep on");
  if (!cli.parse(argc, argv)) return 0;

  CsvWriter csv(bench::result_path("ablation_beta.csv"),
                {"beta", "final_loss", "cpu_share", "cpu_final_batch"});

  for (const auto& b : bench::evaluation_suite(scale, units)) {
    if (b.name != dataset_name) continue;
    data::Dataset probe = bench::build_dataset(b, 1);
    const double budget =
        bench::budget_for_gpu_epochs(b, probe.example_count(), epochs);

    std::printf("Ablation (%s): beta sweep (paper default: 1)\n",
                b.name.c_str());
    std::printf("%8s %12s %12s %16s\n", "beta", "final loss", "cpu share",
                "cpu final batch");
    for (double beta : {0.1, 0.25, 0.5, 1.0}) {
      data::Dataset dataset = bench::build_dataset(b, 1);
      core::TrainingConfig config =
          bench::build_config(b, core::Algorithm::kAdaptiveHogbatch, budget);
      config.beta = beta;
      core::Trainer trainer(std::move(dataset), config);
      core::TrainingResult r = trainer.run();
      const double total =
          static_cast<double>(r.cpu_updates + r.gpu_updates);
      const double cpu_share =
          total > 0 ? static_cast<double>(r.cpu_updates) / total : 0.0;
      tensor::Index cpu_batch = 0;
      for (const auto& w : r.workers) {
        if (w.kind == gpusim::DeviceKind::kCpu) cpu_batch = w.final_batch;
      }
      std::printf("%8.2f %12.4f %11.1f%% %16lld\n", beta, r.final_loss,
                  100.0 * cpu_share, static_cast<long long>(cpu_batch));
      csv.row(std::vector<double>{beta, r.final_loss, cpu_share,
                                  static_cast<double>(cpu_batch)});
    }
  }
  std::printf("\nresults: %s\n",
              bench::result_path("ablation_beta.csv").c_str());
  return 0;
}
