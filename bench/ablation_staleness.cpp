// Ablation — GPU replica staleness (§VI-B).
//
// The GPU worker computes its gradient on a deep-copied replica while the
// CPU lanes keep mutating the shared model; by merge time the replica is
// stale. This bench measures per-batch staleness (max |w_merge - w_upload|)
// across algorithms and GPU batch sizes: larger batches take longer on the
// device, so more CPU updates land in between — the trade-off the paper
// describes when discussing "merging a local stale replica".
#include <cstdio>

#include "common/cli.hpp"
#include "common/csv_writer.hpp"
#include "bench_common.hpp"

using namespace hetsgd;
using core::Algorithm;

int main(int argc, char** argv) {
  double scale = 1.0;
  std::int64_t units = 48;
  double epochs = 8.0;
  std::string dataset_name = "covtype";
  CliParser cli("ablation_staleness", "GPU replica staleness measurements");
  cli.add_double("scale", &scale, "multiplier on bench dataset scales");
  cli.add_int("units", &units, "hidden units per layer");
  cli.add_double("epochs", &epochs, "budget in GPU mini-batch epochs");
  cli.add_string("dataset", &dataset_name, "dataset to profile");
  if (!cli.parse(argc, argv)) return 0;

  CsvWriter csv(bench::result_path("ablation_staleness.csv"),
                {"algorithm", "gpu_batch", "mean_staleness", "max_staleness",
                 "final_loss"});

  for (const auto& b : bench::evaluation_suite(scale, units)) {
    if (b.name != dataset_name) continue;
    data::Dataset probe = bench::build_dataset(b, 1);
    const double budget =
        bench::budget_for_gpu_epochs(b, probe.example_count(), epochs);

    std::printf("Replica staleness (%s): max |w_merge - w_upload| per batch\n",
                b.name.c_str());
    std::printf("%-14s %10s %16s %16s %12s\n", "algorithm", "gpu batch",
                "mean staleness", "max staleness", "final loss");

    // GPU-only first: no concurrent writers, staleness must be ~0.
    {
      core::TrainingResult r =
          bench::run_cell(b, Algorithm::kMinibatchGpu, budget, 1);
      for (const auto& w : r.workers) {
        if (w.kind != gpusim::DeviceKind::kGpu) continue;
        std::printf("%-14s %10lld %16.3g %16.3g %12.4f\n",
                    core::algorithm_name(Algorithm::kMinibatchGpu),
                    static_cast<long long>(b.gpu_max_batch), w.mean_staleness,
                    w.max_staleness, r.final_loss);
        csv.row(std::vector<std::string>{
            core::algorithm_name(Algorithm::kMinibatchGpu),
            std::to_string(b.gpu_max_batch), std::to_string(w.mean_staleness),
            std::to_string(w.max_staleness), std::to_string(r.final_loss)});
      }
    }

    // CPU+GPU at several static GPU batch sizes: staleness grows with the
    // device-side batch duration.
    for (tensor::Index batch :
         {b.gpu_min_batch, (b.gpu_min_batch + b.gpu_max_batch) / 2,
          b.gpu_max_batch}) {
      data::Dataset dataset = bench::build_dataset(b, 1);
      core::TrainingConfig config =
          bench::build_config(b, Algorithm::kCpuGpuHogbatch, budget);
      config.gpu.batch = batch;
      core::Trainer trainer(std::move(dataset), config);
      core::TrainingResult r = trainer.run();
      for (const auto& w : r.workers) {
        if (w.kind != gpusim::DeviceKind::kGpu) continue;
        std::printf("%-14s %10lld %16.3g %16.3g %12.4f\n",
                    core::algorithm_name(Algorithm::kCpuGpuHogbatch),
                    static_cast<long long>(batch), w.mean_staleness,
                    w.max_staleness, r.final_loss);
        csv.row(std::vector<std::string>{
            core::algorithm_name(Algorithm::kCpuGpuHogbatch),
            std::to_string(batch), std::to_string(w.mean_staleness),
            std::to_string(w.max_staleness), std::to_string(r.final_loss)});
      }
    }

    // Adaptive for comparison.
    {
      core::TrainingResult r =
          bench::run_cell(b, Algorithm::kAdaptiveHogbatch, budget, 1);
      for (const auto& w : r.workers) {
        if (w.kind != gpusim::DeviceKind::kGpu) continue;
        std::printf("%-14s %10s %16.3g %16.3g %12.4f\n",
                    core::algorithm_name(Algorithm::kAdaptiveHogbatch),
                    "adaptive", w.mean_staleness, w.max_staleness,
                    r.final_loss);
        csv.row(std::vector<std::string>{
            core::algorithm_name(Algorithm::kAdaptiveHogbatch), "adaptive",
            std::to_string(w.mean_staleness), std::to_string(w.max_staleness),
            std::to_string(r.final_loss)});
      }
    }
  }
  std::printf("\nresults: %s\n",
              bench::result_path("ablation_staleness.csv").c_str());
  return 0;
}
