// Microbenchmark — the asynchronous message-queue substrate.
#include <benchmark/benchmark.h>

#include <thread>

#include "concurrent/blocking_queue.hpp"
#include "concurrent/mpsc_queue.hpp"
#include "concurrent/spsc_ring.hpp"
#include "msg/message.hpp"

namespace {

using namespace hetsgd;

void BM_MpscPushPop(benchmark::State& state) {
  concurrent::MpscQueue<int> q;
  for (auto _ : state) {
    q.push(1);
    benchmark::DoNotOptimize(q.try_pop());
  }
}
BENCHMARK(BM_MpscPushPop);

void BM_BlockingPushPop(benchmark::State& state) {
  concurrent::BlockingQueue<int> q;
  for (auto _ : state) {
    q.push(1);
    benchmark::DoNotOptimize(q.try_pop());
  }
}
BENCHMARK(BM_BlockingPushPop);

void BM_SpscPushPop(benchmark::State& state) {
  concurrent::SpscRing<int> ring(1024);
  for (auto _ : state) {
    ring.try_push(1);
    benchmark::DoNotOptimize(ring.try_pop());
  }
}
BENCHMARK(BM_SpscPushPop);

void BM_MpscEnvelopeRoundtrip(benchmark::State& state) {
  // The framework's actual message type across a producer thread — the
  // coordinator-mailbox hot path.
  concurrent::MpscQueue<msg::Envelope> q;
  std::atomic<bool> stop{false};
  std::thread producer([&] {
    msg::ScheduleWork w;
    while (!stop.load(std::memory_order_relaxed)) {
      q.push({0, w});
    }
  });
  std::uint64_t received = 0;
  for (auto _ : state) {
    if (q.try_pop()) ++received;
  }
  stop = true;
  while (q.try_pop()) {
  }
  producer.join();
  state.counters["received"] = static_cast<double>(received);
}
BENCHMARK(BM_MpscEnvelopeRoundtrip);

}  // namespace

BENCHMARK_MAIN();
