// Figure 8 — distribution of model updates between CPU and GPU for the two
// heterogeneous algorithms on all four datasets.
//
// Expected shape (§VII-B): under CPU+GPU Hogbatch the CPU performs almost
// all updates (maximum batch-size gap); under Adaptive Hogbatch the
// distribution moves toward uniformity.
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/csv_writer.hpp"
#include "bench_common.hpp"

using namespace hetsgd;
using core::Algorithm;

int main(int argc, char** argv) {
  double scale = 1.0;
  std::int64_t units = 48;
  double epochs = 12.0;
  CliParser cli("fig8_update_distribution",
                "Figure 8: CPU/GPU model-update shares");
  cli.add_double("scale", &scale, "multiplier on bench dataset scales");
  cli.add_int("units", &units, "hidden units per layer");
  cli.add_double("epochs", &epochs, "budget in GPU mini-batch epochs");
  if (!cli.parse(argc, argv)) return 0;

  CsvWriter csv(bench::result_path("fig8_update_distribution.csv"),
                {"dataset", "algorithm", "cpu_updates", "gpu_updates",
                 "cpu_share"});

  std::printf("Fig 8: model-update distribution (CPU%% / GPU%%)\n");
  std::printf("%-11s %22s %22s\n", "dataset", "cpu+gpu hogbatch",
              "adaptive hogbatch");
  for (const auto& b : bench::evaluation_suite(scale, units)) {
    data::Dataset probe = bench::build_dataset(b, 1);
    const double budget =
        bench::budget_for_gpu_epochs(b, probe.example_count(), epochs);
    std::printf("%-11s", b.name.c_str());
    for (auto a :
         {Algorithm::kCpuGpuHogbatch, Algorithm::kAdaptiveHogbatch}) {
      core::TrainingResult r = bench::run_cell(b, a, budget, 1);
      const double total =
          static_cast<double>(r.cpu_updates + r.gpu_updates);
      const double cpu_share =
          total > 0 ? static_cast<double>(r.cpu_updates) / total : 0.0;
      std::printf("        %5.1f%% / %5.1f%%", 100.0 * cpu_share,
                  100.0 * (1.0 - cpu_share));
      csv.row(std::vector<std::string>{
          b.name, core::algorithm_name(a), std::to_string(r.cpu_updates),
          std::to_string(r.gpu_updates), std::to_string(cpu_share)});
    }
    std::printf("\n");
  }
  std::printf("\npaper shape: cpu+gpu skews heavily to CPU; adaptive "
              "approaches ~50/50\n");
  std::printf("results: %s\n",
              bench::result_path("fig8_update_distribution.csv").c_str());
  return 0;
}
