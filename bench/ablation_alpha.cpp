// Ablation — the batch-resize factor alpha of Adaptive Hogbatch
// (Algorithm 2; the paper fixes alpha = 2 "set by default").
//
// Sweeps alpha and reports convergence and update balance; the expected
// picture is robustness around 2 (small alpha adapts too slowly, huge
// alpha overshoots between the thresholds).
#include <cmath>
#include <cstdio>

#include "common/cli.hpp"
#include "common/csv_writer.hpp"
#include "bench_common.hpp"

using namespace hetsgd;

int main(int argc, char** argv) {
  double scale = 1.0;
  std::int64_t units = 48;
  double epochs = 12.0;
  std::string dataset_name = "covtype";
  CliParser cli("ablation_alpha", "sweep Adaptive Hogbatch's alpha");
  cli.add_double("scale", &scale, "multiplier on bench dataset scales");
  cli.add_int("units", &units, "hidden units per layer");
  cli.add_double("epochs", &epochs, "budget in GPU mini-batch epochs");
  cli.add_string("dataset", &dataset_name, "dataset to sweep on");
  if (!cli.parse(argc, argv)) return 0;

  CsvWriter csv(bench::result_path("ablation_alpha.csv"),
                {"alpha", "final_loss", "cpu_share", "epochs"});

  for (const auto& b : bench::evaluation_suite(scale, units)) {
    if (b.name != dataset_name) continue;
    data::Dataset probe = bench::build_dataset(b, 1);
    const double budget =
        bench::budget_for_gpu_epochs(b, probe.example_count(), epochs);

    std::printf("Ablation (%s): Adaptive Hogbatch alpha sweep "
                "(paper default: 2)\n", b.name.c_str());
    std::printf("%8s %12s %12s %10s\n", "alpha", "final loss", "cpu share",
                "epochs");
    for (double alpha : {1.25, 1.5, 2.0, 4.0, 8.0}) {
      data::Dataset dataset = bench::build_dataset(b, 1);
      core::TrainingConfig config =
          bench::build_config(b, core::Algorithm::kAdaptiveHogbatch, budget);
      config.alpha = alpha;
      core::Trainer trainer(std::move(dataset), config);
      core::TrainingResult r = trainer.run();
      const double total =
          static_cast<double>(r.cpu_updates + r.gpu_updates);
      const double cpu_share =
          total > 0 ? static_cast<double>(r.cpu_updates) / total : 0.0;
      std::printf("%8.2f %12.4f %11.1f%% %10.2f\n", alpha, r.final_loss,
                  100.0 * cpu_share, r.epochs);
      csv.row(std::vector<double>{alpha, r.final_loss, cpu_share, r.epochs});
    }
  }
  std::printf("\nresults: %s\n",
              bench::result_path("ablation_alpha.csv").c_str());
  return 0;
}
