// Microbenchmark — Hogwild gradient + racy update throughput on the host,
// and the adaptive controller's per-request overhead ("the computation of
// a new batch size is light and does not incur observable overhead",
// §VI-C).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "concurrent/thread_pool.hpp"
#include "core/adaptive.hpp"
#include "data/synthetic.hpp"
#include "nn/mlp.hpp"

namespace {

using namespace hetsgd;

nn::MlpConfig bench_mlp(tensor::Index dim, std::int32_t classes) {
  nn::MlpConfig c;
  c.input_dim = dim;
  c.num_classes = classes;
  c.hidden_layers = 2;
  c.hidden_units = 32;
  return c;
}

void BM_GradientSingleExample(benchmark::State& state) {
  data::SyntheticSpec spec;
  spec.examples = 256;
  spec.dim = 54;
  spec.classes = 2;
  data::Dataset d = data::make_synthetic(spec);
  nn::MlpConfig c = bench_mlp(d.dim(), d.num_classes());
  Rng rng(1);
  nn::Model model(c, rng);
  nn::Workspace ws;
  nn::Gradient grad = nn::make_zero_gradient(model);
  tensor::Index i = 0;
  for (auto _ : state) {
    auto x = d.batch_features(i % 256, 1);
    auto y = d.batch_labels(i % 256, 1);
    nn::compute_gradient(model, x, y, ws, grad);
    nn::sgd_step(model, grad, 1e-4);
    ++i;
  }
  state.counters["updates/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GradientSingleExample);

void BM_HogwildLanes(benchmark::State& state) {
  // Racy concurrent updates to one shared model from N lanes.
  const std::size_t lanes = static_cast<std::size_t>(state.range(0));
  data::SyntheticSpec spec;
  spec.examples = 1024;
  spec.dim = 54;
  spec.classes = 2;
  data::Dataset d = data::make_synthetic(spec);
  nn::MlpConfig c = bench_mlp(d.dim(), d.num_classes());
  Rng rng(2);
  nn::Model model(c, rng);
  concurrent::ThreadPool pool(lanes);
  std::vector<nn::Workspace> ws(lanes);
  std::vector<nn::Gradient> grads;
  for (std::size_t l = 0; l < lanes; ++l) {
    grads.push_back(nn::make_zero_gradient(model));
  }
  const std::size_t kPerLane = 16;
  for (auto _ : state) {
    pool.run_on_all([&](std::size_t lane) {
      for (std::size_t k = 0; k < kPerLane; ++k) {
        const tensor::Index row =
            static_cast<tensor::Index>((lane * kPerLane + k) % 1024);
        auto x = d.batch_features(row, 1);
        auto y = d.batch_labels(row, 1);
        nn::compute_gradient(model, x, y, ws[lane], grads[lane]);
        nn::sgd_step(model, grads[lane], 1e-4);
      }
    });
  }
  state.counters["updates/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * lanes * kPerLane),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HogwildLanes)->Arg(1)->Arg(2)->Arg(4);

void BM_AdaptiveControllerRequest(benchmark::State& state) {
  core::AdaptiveController controller(2.0);
  controller.register_worker(0, {56, 56, 56 * 64, 56});
  controller.register_worker(1, {8192, 64, 8192, 1});
  std::uint64_t u0 = 0, u1 = 0;
  int flip = 0;
  for (auto _ : state) {
    if ((flip++ & 1) == 0) {
      u0 += 56;
      benchmark::DoNotOptimize(controller.on_request(0, u0));
    } else {
      u1 += 1;
      benchmark::DoNotOptimize(controller.on_request(1, u1));
    }
  }
}
BENCHMARK(BM_AdaptiveControllerRequest);

}  // namespace

BENCHMARK_MAIN();
