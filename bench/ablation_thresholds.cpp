// Ablation — the GPU batch-size thresholds [min_b, max_b] of Adaptive
// Hogbatch.
//
// §VII-B: "the lower threshold parameter controls the tradeoff between GPU
// utilization and convergence." Sweeping the lower threshold shows exactly
// that tradeoff: smaller min_b lets the GPU produce updates faster
// (better balance, better convergence) at lower utilization.
#include <cstdio>

#include "common/cli.hpp"
#include "common/csv_writer.hpp"
#include "bench_common.hpp"

using namespace hetsgd;

int main(int argc, char** argv) {
  double scale = 1.0;
  std::int64_t units = 48;
  double epochs = 12.0;
  std::string dataset_name = "covtype";
  CliParser cli("ablation_thresholds",
                "sweep Adaptive Hogbatch's GPU lower batch threshold");
  cli.add_double("scale", &scale, "multiplier on bench dataset scales");
  cli.add_int("units", &units, "hidden units per layer");
  cli.add_double("epochs", &epochs, "budget in GPU mini-batch epochs");
  cli.add_string("dataset", &dataset_name, "dataset to sweep on");
  if (!cli.parse(argc, argv)) return 0;

  CsvWriter csv(bench::result_path("ablation_thresholds.csv"),
                {"gpu_min_batch", "final_loss", "gpu_utilization",
                 "gpu_updates"});

  for (const auto& b : bench::evaluation_suite(scale, units)) {
    if (b.name != dataset_name) continue;
    data::Dataset probe = bench::build_dataset(b, 1);
    const double budget =
        bench::budget_for_gpu_epochs(b, probe.example_count(), epochs);

    std::printf("Ablation (%s): GPU lower threshold sweep "
                "(upper fixed at %lld)\n", b.name.c_str(),
                static_cast<long long>(b.gpu_max_batch));
    std::printf("%14s %12s %16s %12s\n", "gpu min batch", "final loss",
                "gpu utilization", "gpu updates");
    for (tensor::Index min_b :
         {b.gpu_max_batch / 16, b.gpu_max_batch / 8, b.gpu_max_batch / 4,
          b.gpu_max_batch / 2, b.gpu_max_batch}) {
      data::Dataset dataset = bench::build_dataset(b, 1);
      core::TrainingConfig config =
          bench::build_config(b, core::Algorithm::kAdaptiveHogbatch, budget);
      config.gpu.min_batch = min_b;
      // Keep the utilization calibration anchored to the original lower
      // threshold so the sweep actually changes operating points.
      core::Trainer trainer(std::move(dataset), config);
      core::TrainingResult r = trainer.run();
      double gpu_util = 0.0;
      for (const auto& w : r.workers) {
        if (w.kind == gpusim::DeviceKind::kGpu) {
          gpu_util = w.mean_utilization;
        }
      }
      std::printf("%14lld %12.4f %15.1f%% %12llu\n",
                  static_cast<long long>(min_b), r.final_loss,
                  100.0 * gpu_util,
                  static_cast<unsigned long long>(r.gpu_updates));
      csv.row(std::vector<double>{static_cast<double>(min_b), r.final_loss,
                                  gpu_util,
                                  static_cast<double>(r.gpu_updates)});
    }
  }
  std::printf("\nresults: %s\n",
              bench::result_path("ablation_thresholds.csv").c_str());
  return 0;
}
