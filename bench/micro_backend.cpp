// Microbenchmark + gate — dispatch overhead of the backend seam.
//
// Runs one MLP-layer-shaped kernel sequence (fused forward GEMM, weight
// gradient, bias reduction, delta back-propagation, activation backward,
// SGD axpy — the exact six calls MlpExecutor issues per hidden layer)
// twice over the same 96x96 operands:
//
//   direct   the tensor/nn kernels called straight, as the pre-seam host
//            path (nn::Mlp free functions) did;
//   backend  the same kernels through backend::Backend virtual calls on a
//            zero-copy CpuBackend, i.e. what every Hogwild lane now pays:
//            virtual dispatch + handle->slot lookup + liveness asserts +
//            virtual-time charging.
//
// The ratio of the two is the seam tax. The backend refactor budgets it
// at <2% (DESIGN.md §13) and this binary enforces that budget; the JSON
// it writes (bench_results/BENCH_backend.json via scripts/bench_smoke.sh)
// records the measurement.
//
// Measurement alternates many short chunks of each mode and compares low
// percentiles, exactly like micro_trace: short chunks let enough of them
// complete preemption-free on noisy shared hosts that p10 reflects the
// clean-machine cost.
//
//   ./micro_backend [--iters N] [--reps R] [--max-overhead F] [--out PATH]
//
// Exit status: 0 = within budget, 1 = overhead above --max-overhead.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "backend/cpu_backend.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "nn/activation.hpp"
#include "obs/clock.hpp"
#include "tensor/gemm.hpp"
#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace hetsgd;
using tensor::Index;
using tensor::Matrix;
using tensor::Scalar;
using tensor::Trans;

// Batch = in = out = 96: three 96^3 GEMMs (~5.3M flops) plus elementwise
// work per iteration. Comparable to one Hogwild sub-batch on the small end,
// so the per-call dispatch cost is amortized *less* than in production and
// the measured overhead bounds the real number from above.
constexpr Index kDim = 96;

struct Operands {
  Matrix x{kDim, kDim};          // staged input batch
  Matrix w{kDim, kDim};          // layer weights (out x in)
  Matrix bias{1, kDim};
  Matrix out{kDim, kDim};        // forward activations
  Matrix delta{kDim, kDim};      // back-propagated error
  Matrix prev_delta{kDim, kDim};
  Matrix grad_w{kDim, kDim};
  Matrix grad_b{1, kDim};
};

void fill(Rng& rng, Matrix& m) {
  for (Index i = 0; i < m.rows(); ++i) {
    for (Index j = 0; j < m.cols(); ++j) {
      m.at(i, j) = static_cast<Scalar>(rng.uniform(-0.5, 0.5));
    }
  }
}

// One hidden layer's forward + backward + update through the raw kernels —
// the pre-seam host path.
void run_direct(Operands& o) {
  tensor::gemm_bias_act(Trans::kNo, Trans::kYes, Scalar{1}, o.x.view(),
                        o.w.view(), o.out.view(), o.bias.view(),
                        tensor::Epilogue::kBiasTanh);
  tensor::matmul_tn(o.delta.view(), o.x.view(), o.grad_w.view());
  tensor::col_sums(o.delta.view(), o.grad_b.view());
  tensor::matmul_nn(o.delta.view(), o.w.view(), o.prev_delta.view());
  nn::activation_backward(nn::Activation::kTanh, o.out.view(),
                          o.prev_delta.view());
  tensor::axpy(Scalar{-1e-3}, o.grad_w.view(), o.w.view());
}

// The adopted-buffer handles a zero-copy lane executor holds over the same
// storage.
struct Handles {
  backend::Buffer x, w, bias, out, delta, prev_delta, grad_w, grad_b;

  Handles(backend::Backend& b, Operands& o)
      : x(b.adopt(o.x.view())),
        w(b.adopt(o.w.view())),
        bias(b.adopt(o.bias.view())),
        out(b.adopt(o.out.view())),
        delta(b.adopt(o.delta.view())),
        prev_delta(b.adopt(o.prev_delta.view())),
        grad_w(b.adopt(o.grad_w.view())),
        grad_b(b.adopt(o.grad_b.view())) {}
};

// The identical sequence through the seam. `b` is a Backend& on purpose:
// every call is a real virtual dispatch, as in MlpExecutor.
void run_backend(backend::Backend& b, Handles& h) {
  b.gemm_bias_act(h.x, h.w, h.bias, h.out, kDim, tensor::Epilogue::kBiasTanh,
                  0.0);
  b.matmul_tn(h.delta, h.x, kDim, h.grad_w, 0.0);
  b.col_sums(h.delta, kDim, h.grad_b, 0.0);
  b.matmul_nn(h.delta, h.w, kDim, h.prev_delta, 0.0);
  b.activation_backward(nn::Activation::kTanh, h.out, h.prev_delta, kDim, 0.0);
  b.axpy(Scalar{-1e-3}, h.grad_w, h.w, 0.0);
}

template <typename Fn>
double time_phase(std::int64_t iters, Fn&& fn) {
  obs::WallStopwatch stopwatch;
  for (std::int64_t i = 0; i < iters; ++i) fn();
  return stopwatch.elapsed_seconds() * 1e9 / static_cast<double>(iters);
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t iters = 20;
  std::int64_t reps = 100;
  double max_overhead = 0.02;
  std::string out;
  CliParser cli("micro_backend", "backend dispatch overhead bench + gate");
  cli.add_int("iters", &iters, "workload iterations per chunk");
  cli.add_int("reps", &reps, "direct/backend chunk pairs");
  cli.add_double("max-overhead", &max_overhead,
                 "allowed fractional overhead of backend vs direct kernels");
  cli.add_string("out", &out, "write BENCH_backend.json here (empty = skip)");
  if (!cli.parse(argc, argv)) return 0;

  Rng rng(321);
  Operands o;
  fill(rng, o.x);
  fill(rng, o.w);
  fill(rng, o.bias);
  fill(rng, o.delta);

  backend::CpuBackend cpu(gpusim::xeon56_spec(),
                          backend::CpuBackend::Mode::kZeroCopy);
  backend::Backend& seam = cpu;
  Handles h(seam, o);

  // Warm caches and the OpenMP pool before any timed phase.
  time_phase(std::min<std::int64_t>(iters, 200), [&] { run_direct(o); });
  time_phase(std::min<std::int64_t>(iters, 200), [&] { run_backend(seam, h); });

  std::vector<double> direct_ns, backend_ns;
  for (std::int64_t r = 0; r < reps; ++r) {
    direct_ns.push_back(time_phase(iters, [&] { run_direct(o); }));
    backend_ns.push_back(time_phase(iters, [&] { run_backend(seam, h); }));
  }

  std::sort(direct_ns.begin(), direct_ns.end());
  std::sort(backend_ns.begin(), backend_ns.end());
  const std::size_t p10 = direct_ns.size() / 10;
  const double direct = direct_ns[p10];
  const double through = backend_ns[p10];
  const double overhead = through / direct - 1.0;
  std::printf("micro_backend: direct=%.0f ns/iter backend=%.0f ns/iter "
              "overhead=%.2f%% (budget %.2f%%)\n",
              direct, through, overhead * 100.0, max_overhead * 100.0);

  const bool pass = overhead <= max_overhead;
  if (!out.empty()) {
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "micro_backend: cannot write %s\n", out.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"benchmark\": \"bench/micro_backend\",\n"
                 "  \"backend\": \"cpu\",\n"
                 "  \"iters\": %lld,\n"
                 "  \"reps\": %lld,\n"
                 "  \"calls_per_iter\": 6,\n"
                 "  \"direct_ns_per_iter\": %.1f,\n"
                 "  \"backend_ns_per_iter\": %.1f,\n"
                 "  \"overhead_fraction\": %.5f,\n"
                 "  \"max_overhead\": %.5f,\n"
                 "  \"pass\": %s\n"
                 "}\n",
                 static_cast<long long>(iters), static_cast<long long>(reps),
                 direct, through, overhead, max_overhead,
                 pass ? "true" : "false");
    std::fclose(f);
    std::printf("micro_backend: wrote %s\n", out.c_str());
  }
  if (!pass) {
    std::fprintf(stderr,
                 "micro_backend: FAIL — backend dispatch overhead %.2f%% "
                 "exceeds the %.2f%% budget (DESIGN.md §13)\n",
                 overhead * 100.0, max_overhead * 100.0);
    return 1;
  }
  return 0;
}
