#include "bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <limits>

#include "core/cost_model.hpp"

namespace hetsgd::bench {

using core::Algorithm;
using core::TrainingConfig;
using tensor::Index;

std::vector<DatasetBench> evaluation_suite(double scale, Index units) {
  // Base scales keep each dataset in the 1.5k-9k example range so the full
  // suite runs in minutes; the relative sizes (covtype largest, delicious
  // smallest) and dimensionalities mirror Table II. Learning rates come
  // from the powers-of-10 grid of §VII-A (see bench/fig5 --grid).
  std::vector<DatasetBench> suite = {
      {data::PaperDataset::kCovtype, "covtype", 0.015 * scale, units, 6,
       1e-3, 1.5, 128, 1024},
      {data::PaperDataset::kW8a, "w8a", 0.04 * scale, units, 8, 1e-3, 1.5,
       64, 512},
      {data::PaperDataset::kDelicious, "delicious", 0.10 * scale, units, 8,
       1e-3, 1.5, 64, 512},
      {data::PaperDataset::kRealSim, "real-sim", 0.02 * scale, units, 4,
       3e-3, 0.3, 64, 512},
  };
  return suite;
}

data::Dataset build_dataset(const DatasetBench& b, std::uint64_t seed) {
  return data::make_paper_dataset(b.id, b.scale, seed);
}

TrainingConfig build_config(const DatasetBench& b, Algorithm algorithm,
                            double budget_vseconds) {
  TrainingConfig config;
  config.algorithm = algorithm;
  config.mlp.hidden_layers = b.hidden_layers;
  config.mlp.hidden_units = b.hidden_units;
  // The paper trains sigmoid hidden layers at 512 units; at the reduced
  // bench width, 6-8 layer sigmoid stacks suffer vanishing gradients and
  // never leave the log(K) plateau within any reasonable budget. tanh
  // preserves the paper's depth while keeping convergence observable (the
  // algorithm comparison — the figure's subject — is unaffected).
  config.mlp.hidden_activation = nn::Activation::kTanh;
  config.learning_rate = b.learning_rate;
  config.max_effective_lr = b.max_effective_lr;
  config.time_budget_vseconds = budget_vseconds;
  config.eval_interval_vseconds = budget_vseconds / 60.0;
  config.gpu.min_batch = b.gpu_min_batch;
  config.gpu.max_batch = b.gpu_max_batch;
  config.gpu.batch = b.gpu_max_batch;
  // Calibrate the GPU saturation curve to the thresholds: ~50% utilization
  // at the lower threshold, >85% at the upper (§VII-A methodology).
  config.gpu.spec.half_saturation_batch =
      static_cast<double>(b.gpu_min_batch);
  config.seed = 20210521;  // IPDPS 2021
  return config;
}

double budget_for_gpu_epochs(const DatasetBench& b, Index examples,
                             double epochs) {
  TrainingConfig config = build_config(b, Algorithm::kMinibatchGpu, 1.0);
  // input_dim/classes do not change the dominant terms enough to matter
  // for a budget; use the dataset metadata for the real dims.
  config.mlp.input_dim = 1;  // placeholder, replaced below
  gpusim::PerfModel gpu(config.gpu.spec);
  nn::MlpConfig mlp = config.mlp;
  const auto info = data::paper_dataset_info(b.id);
  mlp.input_dim = info.dim;
  mlp.num_classes = std::max<std::int32_t>(info.classes, 2);
  if (b.id == data::PaperDataset::kRealSim) {
    mlp.input_dim = std::max<Index>(
        512, static_cast<Index>(static_cast<double>(info.dim) *
                                std::sqrt(b.scale)));
  }
  const double epoch = core::gpu_epoch_seconds(
      gpu, mlp, examples, config.gpu.batch, config.gpu.host_merge_bandwidth);
  return epochs * epoch;
}

core::TrainingResult run_cell(const DatasetBench& b, Algorithm algorithm,
                              double budget_vseconds, std::uint64_t seed) {
  data::Dataset dataset = build_dataset(b, seed);
  TrainingConfig config = build_config(b, algorithm, budget_vseconds);
  core::Trainer trainer(std::move(dataset), config);
  return trainer.run();
}

std::string result_path(const std::string& name) {
  std::filesystem::create_directories("bench_results");
  return (std::filesystem::path("bench_results") / name).string();
}

double min_loss(const std::vector<core::TrainingResult>& results) {
  double best = std::numeric_limits<double>::max();
  for (const auto& r : results) {
    best = std::min(best, r.best_loss);
  }
  return best;
}

std::vector<Algorithm> evaluation_algorithms() {
  return {Algorithm::kHogwildCpu, Algorithm::kMinibatchGpu,
          Algorithm::kCpuGpuHogbatch, Algorithm::kAdaptiveHogbatch,
          Algorithm::kTensorFlow};
}

}  // namespace hetsgd::bench
