// Microbenchmark — host GEMM throughput (the MKL-replacement kernel).
//
// Benchmarks the production pack-and-microkernel GEMM against `seed_gemm`,
// a frozen copy of the pre-packing cache-blocked kernel this repo shipped
// with, compiled with identical flags in this binary so the comparison
// isolates kernel structure. Shapes follow the paper's training hot path:
// skinny batches m ∈ {1, 4, 16} are what the CPU Hogbatch workers run,
// wide batches m ∈ {256, 1024} are GPU-style minibatches.
//
// scripts/bench_smoke.sh runs this binary (in a -DHETSGD_NATIVE=ON build)
// and distills the GFLOP/s counters into BENCH_gemm.json;
// scripts/check_bench_regression.py gates changes against the checked-in
// baseline.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "common/rng.hpp"
#include "nn/activation.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace hetsgd;
using tensor::ConstMatrixView;
using tensor::Index;
using tensor::Matrix;
using tensor::MatrixView;
using tensor::Scalar;
using tensor::Trans;

// ---------------------------------------------------------------------------
// Frozen seed kernel (pre-PR `tensor::gemm`): per-element MatrixView block
// kernels, OpenMP gate `m >= 2 * kBlockM` (never parallel for skinny m).
// Kept verbatim as the benchmark baseline; do not optimize.
namespace seed {

constexpr Index kBlockM = 64;
constexpr Index kBlockN = 64;
constexpr Index kBlockK = 128;

void block_nn(Scalar alpha, ConstMatrixView a, ConstMatrixView b, MatrixView c,
              Index i0, Index i1, Index j0, Index j1, Index k0, Index k1) {
  for (Index i = i0; i < i1; ++i) {
    Scalar* crow = c.row(i);
    const Scalar* arow = a.row(i);
    for (Index k = k0; k < k1; ++k) {
      const Scalar aik = alpha * arow[k];
      const Scalar* brow = b.row(k);
      for (Index j = j0; j < j1; ++j) {
        crow[j] += aik * brow[j];
      }
    }
  }
}

void block_nt(Scalar alpha, ConstMatrixView a, ConstMatrixView b, MatrixView c,
              Index i0, Index i1, Index j0, Index j1, Index k0, Index k1) {
  for (Index i = i0; i < i1; ++i) {
    const Scalar* arow = a.row(i);
    Scalar* crow = c.row(i);
    for (Index j = j0; j < j1; ++j) {
      const Scalar* brow = b.row(j);
      Scalar acc = 0;
      for (Index k = k0; k < k1; ++k) {
        acc += arow[k] * brow[k];
      }
      crow[j] += alpha * acc;
    }
  }
}

void seed_gemm(Trans ta, Trans tb, Scalar alpha, ConstMatrixView a,
               ConstMatrixView b, Scalar beta, MatrixView c) {
  tensor::GemmDims d = tensor::check_gemm_shapes(ta, tb, a, b, c);
  if (beta == Scalar{0}) {
    for (Index i = 0; i < d.m; ++i) {
      std::fill(c.row(i), c.row(i) + d.n, Scalar{0});
    }
  } else if (beta != Scalar{1}) {
    for (Index i = 0; i < d.m; ++i) {
      Scalar* crow = c.row(i);
      for (Index j = 0; j < d.n; ++j) crow[j] *= beta;
    }
  }
#pragma omp parallel for schedule(static) if (d.m >= 2 * kBlockM)
  for (Index i0 = 0; i0 < d.m; i0 += kBlockM) {
    const Index i1 = std::min(i0 + kBlockM, d.m);
    for (Index k0 = 0; k0 < d.k; k0 += kBlockK) {
      const Index k1 = std::min(k0 + kBlockK, d.k);
      for (Index j0 = 0; j0 < d.n; j0 += kBlockN) {
        const Index j1 = std::min(j0 + kBlockN, d.n);
        if (ta == Trans::kNo && tb == Trans::kNo) {
          block_nn(alpha, a, b, c, i0, i1, j0, j1, k0, k1);
        } else if (ta == Trans::kNo && tb == Trans::kYes) {
          block_nt(alpha, a, b, c, i0, i1, j0, j1, k0, k1);
        }
        // (TN/TT omitted: the bench shapes below only exercise NN/NT.)
      }
    }
  }
}

}  // namespace seed
// ---------------------------------------------------------------------------

void set_gflops(benchmark::State& state, Index m, Index n, Index k) {
  state.counters["GFLOP/s"] = benchmark::Counter(
      tensor::gemm_flops(m, n, k) * static_cast<double>(state.iterations()) /
          1e9,
      benchmark::Counter::kIsRate);
}

// Square NN product: n x n x n.
void BM_GemmNN(benchmark::State& state) {
  const Index n = state.range(0);
  const bool use_seed = state.range(1) != 0;
  Rng rng(1);
  Matrix a(n, n), b(n, n), c(n, n);
  tensor::fill_normal(a.view(), rng, 0, 1);
  tensor::fill_normal(b.view(), rng, 0, 1);
  for (auto _ : state) {
    if (use_seed) {
      seed::seed_gemm(Trans::kNo, Trans::kNo, 1.0, a.view(), b.view(), 0.0,
                      c.view());
    } else {
      tensor::gemm(Trans::kNo, Trans::kNo, 1.0, a.view(), b.view(), 0.0,
                   c.view());
    }
    benchmark::DoNotOptimize(c.data());
  }
  set_gflops(state, n, n, n);
}
BENCHMARK(BM_GemmNN)
    ->ArgsProduct({{64, 128, 256}, {0, 1}})
    ->ArgNames({"n", "seed"});

// batch x 512 times (512 x 512)^T: the paper's dominant layer shape.
// m ∈ {1, 4, 16} are CPU Hogbatch-worker batches; {256, 1024} GPU batches.
void BM_GemmNT_MlpForwardShape(benchmark::State& state) {
  const Index batch = state.range(0);
  const bool use_seed = state.range(1) != 0;
  Rng rng(2);
  Matrix x(batch, 512), w(512, 512), out(batch, 512);
  tensor::fill_normal(x.view(), rng, 0, 1);
  tensor::fill_normal(w.view(), rng, 0, 1);
  for (auto _ : state) {
    if (use_seed) {
      seed::seed_gemm(Trans::kNo, Trans::kYes, 1.0, x.view(), w.view(), 0.0,
                      out.view());
    } else {
      tensor::matmul_nt(x.view(), w.view(), out.view());
    }
    benchmark::DoNotOptimize(out.data());
  }
  set_gflops(state, batch, 512, 512);
}
BENCHMARK(BM_GemmNT_MlpForwardShape)
    ->ArgsProduct({{1, 4, 16, 64, 256, 1024}, {0, 1}})
    ->ArgNames({"m", "seed"});

// Fused forward layer (gemm_bias_act) vs the unfused three-pass sequence,
// on the tanh hidden-layer shape the figure benches train.
void BM_ForwardLayerFused(benchmark::State& state) {
  const Index batch = state.range(0);
  const bool fused = state.range(1) != 0;
  Rng rng(5);
  Matrix x(batch, 512), w(512, 512), bias(1, 512), out(batch, 512);
  tensor::fill_normal(x.view(), rng, 0, 1);
  tensor::fill_normal(w.view(), rng, 0, 1);
  tensor::fill_normal(bias.view(), rng, 0, 1);
  for (auto _ : state) {
    if (fused) {
      tensor::gemm_bias_act(Trans::kNo, Trans::kYes, 1.0, x.view(), w.view(),
                            out.view(), bias.view(),
                            tensor::Epilogue::kBiasTanh);
    } else {
      tensor::matmul_nt(x.view(), w.view(), out.view());
      tensor::add_row_bias(bias.view(), out.view());
      nn::activation_forward(nn::Activation::kTanh, out.view());
    }
    benchmark::DoNotOptimize(out.data());
  }
  set_gflops(state, batch, 512, 512);
}
BENCHMARK(BM_ForwardLayerFused)
    ->ArgsProduct({{4, 256}, {0, 1}})
    ->ArgNames({"m", "fused"});

void BM_Axpy(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(4);
  Matrix x(1, n), y(1, n);
  tensor::fill_normal(x.view(), rng, 0, 1);
  for (auto _ : state) {
    tensor::axpy(0.001, x.view(), y.view());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          2 * sizeof(tensor::Scalar));
}
BENCHMARK(BM_Axpy)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
