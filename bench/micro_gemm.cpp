// Microbenchmark — host GEMM throughput (the MKL-replacement kernel).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace hetsgd;
using tensor::Index;
using tensor::Matrix;
using tensor::Trans;

void BM_GemmNN(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(1);
  Matrix a(n, n), b(n, n), c(n, n);
  tensor::fill_normal(a.view(), rng, 0, 1);
  tensor::fill_normal(b.view(), rng, 0, 1);
  for (auto _ : state) {
    tensor::gemm(Trans::kNo, Trans::kNo, 1.0, a.view(), b.view(), 0.0,
                 c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      tensor::gemm_flops(n, n, n) * static_cast<double>(state.iterations()) /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmNN)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmNT_MlpForwardShape(benchmark::State& state) {
  // batch x 512 times (512 x 512)^T: the paper's dominant layer shape.
  const Index batch = state.range(0);
  Rng rng(2);
  Matrix x(batch, 512), w(512, 512), out(batch, 512);
  tensor::fill_normal(x.view(), rng, 0, 1);
  tensor::fill_normal(w.view(), rng, 0, 1);
  for (auto _ : state) {
    tensor::matmul_nt(x.view(), w.view(), out.view());
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      tensor::gemm_flops(batch, 512, 512) *
          static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmNT_MlpForwardShape)->Arg(1)->Arg(16)->Arg(64);

void BM_GemmVsNaive(benchmark::State& state) {
  const Index n = 128;
  Rng rng(3);
  Matrix a(n, n), b(n, n), c(n, n);
  tensor::fill_normal(a.view(), rng, 0, 1);
  tensor::fill_normal(b.view(), rng, 0, 1);
  const bool naive = state.range(0) != 0;
  for (auto _ : state) {
    if (naive) {
      tensor::gemm_naive(Trans::kNo, Trans::kNo, 1.0, a.view(), b.view(), 0.0,
                         c.view());
    } else {
      tensor::gemm(Trans::kNo, Trans::kNo, 1.0, a.view(), b.view(), 0.0,
                   c.view());
    }
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmVsNaive)->Arg(0)->Arg(1);

void BM_Axpy(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(4);
  Matrix x(1, n), y(1, n);
  tensor::fill_normal(x.view(), rng, 0, 1);
  for (auto _ : state) {
    tensor::axpy(0.001, x.view(), y.view());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          2 * sizeof(tensor::Scalar));
}
BENCHMARK(BM_Axpy)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
