// Figure 5 — normalized loss for time to convergence, four datasets x five
// algorithms.
//
// Methodology follows §VII-A: every algorithm runs for the same fixed
// virtual-time budget (sized so the loss converges for at least one
// algorithm); the minimum loss across all algorithms is the normalization
// basis; the series report normalized loss against virtual seconds.
//
// With --grid, the learning rate is re-selected per dataset by gridding
// powers of 10 and picking the value with the lowest loss across all
// algorithms (the paper's procedure); the tuned defaults in bench_common
// came from that grid.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/csv_writer.hpp"
#include "bench_common.hpp"

using namespace hetsgd;
using core::Algorithm;

namespace {

// Loss at `t` normalized by the run's basis.
double normalized_loss_at(const core::TrainingResult& r, double t,
                          double basis) {
  return r.loss_at(t) / basis;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  std::int64_t units = 48;
  double epochs = 20.0;
  bool grid = false;
  std::string only;
  CliParser cli("fig5_convergence",
                "Figure 5: normalized loss vs time, 4 datasets x 5 algorithms");
  cli.add_double("scale", &scale, "multiplier on bench dataset scales");
  cli.add_int("units", &units, "hidden units per layer");
  cli.add_double("epochs", &epochs, "budget in GPU mini-batch epochs");
  cli.add_flag("grid", &grid, "re-grid the learning rate in powers of 10");
  cli.add_string("only", &only, "run a single dataset (covtype|w8a|...)");
  if (!cli.parse(argc, argv)) return 0;

  CsvWriter csv(bench::result_path("fig5_convergence.csv"),
                {"dataset", "algorithm", "vtime", "epochs",
                 "normalized_loss"});

  for (auto& b : bench::evaluation_suite(scale, units)) {
    if (!only.empty() && b.name != only) continue;
    data::Dataset probe = bench::build_dataset(b, 1);
    const double budget =
        bench::budget_for_gpu_epochs(b, probe.example_count(), epochs);

    if (grid) {
      // §VII-A: "the SGD learning rate is chosen by griding its range in
      // powers of 10 and selecting the value that achieves the lowest loss
      // across all the algorithms."
      double best_lr = b.learning_rate;
      double best = 1e300;
      for (double lr : {1e-5, 1e-4, 1e-3, 1e-2}) {
        b.learning_rate = lr;
        double worst = 0.0;
        for (auto a : {Algorithm::kMinibatchGpu, Algorithm::kCpuGpuHogbatch}) {
          auto r = bench::run_cell(b, a, budget, 1);
          worst = std::max(worst, r.final_loss);
        }
        if (worst < best) {
          best = worst;
          best_lr = lr;
        }
      }
      b.learning_rate = best_lr;
      std::printf("[%s] grid-selected learning rate: %g\n", b.name.c_str(),
                  best_lr);
    }

    std::vector<core::TrainingResult> results;
    std::vector<Algorithm> algorithms = bench::evaluation_algorithms();
    for (auto a : algorithms) {
      results.push_back(bench::run_cell(b, a, budget, 1));
    }
    const double basis = bench::min_loss(results);

    std::printf("\nFig 5 (%s): normalized loss over time "
                "(budget %.3g vs, basis loss %.4f)\n",
                b.name.c_str(), budget, basis);
    std::printf("%-14s", "t/budget:");
    const int kSamples = 8;
    for (int s = 1; s <= kSamples; ++s) {
      std::printf(" %6.2f", static_cast<double>(s) / kSamples);
    }
    std::printf(" %10s\n", "final");

    for (std::size_t i = 0; i < algorithms.size(); ++i) {
      const auto& r = results[i];
      std::printf("%-14s", core::algorithm_name(algorithms[i]));
      for (int s = 1; s <= kSamples; ++s) {
        const double t = budget * static_cast<double>(s) / kSamples;
        std::printf(" %6.3f", normalized_loss_at(r, t, basis));
      }
      std::printf(" %10.3f\n", r.final_loss / basis);
      for (const auto& p : r.loss_curve) {
        csv.row(std::vector<std::string>{
            b.name, core::algorithm_name(algorithms[i]),
            std::to_string(p.vtime), std::to_string(p.epochs),
            std::to_string(p.loss / basis)});
      }
    }

    // Paper-shape summary: who reaches within 10% of the basis first.
    std::printf("time to 1.10x of minimum loss:");
    for (std::size_t i = 0; i < algorithms.size(); ++i) {
      const double t = results[i].time_to_loss(1.10 * basis);
      if (std::isfinite(t)) {
        std::printf("  %s=%.3gs", core::algorithm_name(algorithms[i]), t);
      } else {
        std::printf("  %s=never", core::algorithm_name(algorithms[i]));
      }
    }
    std::printf("\n");
  }
  std::printf("\nresults: %s\n",
              bench::result_path("fig5_convergence.csv").c_str());
  return 0;
}
