// Microbenchmark + gate — wall-time overhead of the obs tracing layer.
//
// Runs a batch-shaped workload (one 64x64x64 GEMM, roughly the per-batch
// compute a Hogbatch lane does between instrumentation points) through the
// same span/flow/counter density the trainer emits per batch (~8 spans,
// 3 flow events, 2 counters), once with the tracer stopped and once with
// it collecting. The ratio of the two is the tracing tax; DESIGN.md §12
// budgets it at <3% and this binary enforces that budget.
//
// Both modes execute identical code — "traced" vs "untraced" is purely
// Tracer::enabled() — so the measured delta is exactly what a production
// run pays when --trace-out is set. Measurement alternates many short
// chunks of each mode and compares low percentiles (see the comment at
// the measurement loop for why that survives noisy shared hosts).
//
// Under -DHETSGD_TRACE=OFF the macros compile to empty inlines; the
// static_asserts below pin that claim at compile time and the measured
// overhead degenerates to timing noise around zero. The JSON it writes
// (bench_results/BENCH_trace.json via scripts/bench_smoke.sh) records
// which configuration was measured.
//
//   ./micro_trace [--iters N] [--reps R] [--max-overhead F] [--out PATH]
//
// Exit status: 0 = within budget, 1 = overhead above --max-overhead.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/gemm.hpp"
#include "tensor/matrix.hpp"

namespace {

using namespace hetsgd;
using tensor::Index;
using tensor::Matrix;
using tensor::Scalar;
using tensor::Trans;

#if defined(HETSGD_TRACE_DISABLED)
// The compile-out contract: with tracing off, a span carries no state and
// the probe functions are empty inlines the optimizer erases entirely.
static_assert(sizeof(obs::TraceSpan) == 1,
              "disabled TraceSpan must be an empty class");
constexpr bool kTraceCompiled = false;
#else
constexpr bool kTraceCompiled = true;
#endif

// 2*96^3 = 1.77M flops per iteration — still an order of magnitude less
// compute per span than a real Hogbatch/GPU batch, so the measured
// overhead bounds the production number from above.
constexpr Index kDim = 96;

// One iteration of the instrumented workload: the trace-op density copies
// what the core replica worker emits per batch (execute span + three
// transfer/kernel sub-spans + merge, flow begin/step/end, counters).
void run_batch(const Matrix& a, const Matrix& b, Matrix& c,
               obs::Counter& batches, obs::Histogram& latency,
               std::uint64_t sequence) {
  const std::uint64_t flow = obs::batch_flow_id(0, sequence);
  HETSGD_TRACE_SPAN(exec_span, "bench", "execute", 0.0, flow);
  obs::trace_flow_begin("bench-batch", flow, 0.0);
  {
    HETSGD_TRACE_SCOPE("bench", "upload_model");
  }
  const std::uint64_t t0 = obs::wall_now_ns();
  {
    HETSGD_TRACE_SPAN(kernel_span, "bench", "compute_gradient", 0.0, flow);
    tensor::gemm(Trans::kNo, Trans::kNo, Scalar{1}, a.view(), b.view(),
                 Scalar{0}, c.view());
    kernel_span.set_end_vt(0.0);
  }
  {
    HETSGD_TRACE_SCOPE("bench", "download_gradient");
  }
  obs::trace_flow_step("bench-batch", flow, 0.0);
  {
    HETSGD_TRACE_SCOPE("bench", "host_merge");
  }
  obs::trace_flow_end("bench-batch", flow, 0.0);
  batches.inc();
  latency.observe(static_cast<double>(obs::wall_now_ns() - t0));
  HETSGD_TRACE_COUNTER("bench_batches", static_cast<double>(sequence));
  exec_span.set_end_vt(0.0);
}

// Times `iters` iterations and returns ns per iteration.
double time_phase(std::int64_t iters, const Matrix& a, const Matrix& b,
                  Matrix& c, obs::Counter& batches, obs::Histogram& latency) {
  obs::WallStopwatch stopwatch;
  for (std::int64_t i = 0; i < iters; ++i) {
    run_batch(a, b, c, batches, latency,
              static_cast<std::uint64_t>(i));
  }
  return stopwatch.elapsed_seconds() * 1e9 / static_cast<double>(iters);
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t iters = 20;
  std::int64_t reps = 100;
  std::int64_t trace_buffer = std::int64_t{1} << 15;
  double max_overhead = 0.03;
  std::string out;
  CliParser cli("micro_trace", "tracing overhead benchmark + budget gate");
  cli.add_int("iters", &iters, "workload iterations per chunk");
  cli.add_int("reps", &reps, "untraced/traced chunk pairs");
  cli.add_int("trace-buffer", &trace_buffer,
              "per-thread ring capacity (events), as in --trace-buffer");
  cli.add_double("max-overhead", &max_overhead,
                 "allowed fractional overhead of tracing-on vs off");
  cli.add_string("out", &out, "write BENCH_trace.json here (empty = skip)");
  if (!cli.parse(argc, argv)) return 0;

  Rng rng(12345);
  Matrix a(kDim, kDim), b(kDim, kDim), c(kDim, kDim);
  for (Index i = 0; i < kDim; ++i) {
    for (Index j = 0; j < kDim; ++j) {
      a.at(i, j) = static_cast<Scalar>(rng.uniform(-1.0, 1.0));
      b.at(i, j) = static_cast<Scalar>(rng.uniform(-1.0, 1.0));
    }
  }
  obs::Counter& batches =
      obs::MetricsRegistry::instance().counter("bench_trace_batches_total");
  obs::Histogram& latency =
      obs::MetricsRegistry::instance().histogram("bench_trace_batch_ns");

  const std::string discard =
      (std::filesystem::temp_directory_path() / "micro_trace_discard.json")
          .string();

  // Warm caches and the OpenMP pool before any timed phase.
  time_phase(std::min<std::int64_t>(iters, 200), a, b, c, batches, latency);

  // Alternate many short untraced/traced chunks and compare a low
  // percentile of each mode. A chunk is a few milliseconds — short
  // enough that on a noisy shared host plenty of chunks complete without
  // a preemption — so the 10th percentile of each mode reflects the
  // clean-machine cost, and their ratio isolates the tracing tax.
  // (Long paired phases flake here: a 100ms phase almost always eats
  // several preemptions and the noise swamps a ~1% signal.)
  //
  // After each start() the first event re-registers the thread and
  // allocates its ring (~2.6MB at the default capacity); one untimed
  // warmup batch absorbs that so chunks time steady-state recording.
  std::vector<double> off_ns, on_ns;
  for (std::int64_t r = 0; r < reps; ++r) {
    run_batch(a, b, c, batches, latency, 0);
    off_ns.push_back(time_phase(iters, a, b, c, batches, latency));
    obs::Tracer::instance().start(static_cast<std::size_t>(trace_buffer));
    run_batch(a, b, c, batches, latency, 0);
    on_ns.push_back(time_phase(iters, a, b, c, batches, latency));
    std::string error;
    if (!obs::Tracer::instance().stop_and_write(discard, &error)) {
      std::fprintf(stderr, "micro_trace: trace write failed: %s\n",
                   error.c_str());
      return 1;
    }
  }
  std::error_code ec;
  std::filesystem::remove(discard, ec);

  std::sort(off_ns.begin(), off_ns.end());
  std::sort(on_ns.begin(), on_ns.end());
  const std::size_t p10 = off_ns.size() / 10;
  const double untraced_ns = off_ns[p10];
  const double traced_ns = on_ns[p10];
  const double overhead = traced_ns / untraced_ns - 1.0;
  std::printf("micro_trace: trace_compiled=%s untraced=%.0f ns/iter "
              "traced=%.0f ns/iter overhead=%.2f%% (budget %.2f%%)\n",
              kTraceCompiled ? "yes" : "no", untraced_ns, traced_ns,
              overhead * 100.0, max_overhead * 100.0);

  const bool pass = overhead <= max_overhead;
  if (!out.empty()) {
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "micro_trace: cannot write %s\n", out.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"benchmark\": \"bench/micro_trace\",\n"
                 "  \"trace_compiled\": %s,\n"
                 "  \"iters\": %lld,\n"
                 "  \"reps\": %lld,\n"
                 "  \"events_per_iter\": 11,\n"
                 "  \"untraced_ns_per_iter\": %.1f,\n"
                 "  \"traced_ns_per_iter\": %.1f,\n"
                 "  \"overhead_fraction\": %.5f,\n"
                 "  \"max_overhead\": %.5f,\n"
                 "  \"pass\": %s\n"
                 "}\n",
                 kTraceCompiled ? "true" : "false",
                 static_cast<long long>(iters), static_cast<long long>(reps),
                 untraced_ns, traced_ns, overhead, max_overhead,
                 pass ? "true" : "false");
    std::fclose(f);
    std::printf("micro_trace: wrote %s\n", out.c_str());
  }
  if (!pass) {
    std::fprintf(stderr,
                 "micro_trace: FAIL — tracing overhead %.2f%% exceeds the "
                 "%.2f%% budget (DESIGN.md §12)\n",
                 overhead * 100.0, max_overhead * 100.0);
    return 1;
  }
  return 0;
}
