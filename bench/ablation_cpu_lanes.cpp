// Ablation — CPU worker thread scaling.
//
// §I: "CPU-only solutions require thousands of cores to achieve similar
// performance". Sweeps the simulated Hogwild lane count and reports epoch
// throughput and convergence for CPU-only training, plus the heterogeneous
// effect of a weaker/stronger CPU next to the fixed GPU.
#include <cstdio>

#include "common/cli.hpp"
#include "common/csv_writer.hpp"
#include "bench_common.hpp"

using namespace hetsgd;
using core::Algorithm;

int main(int argc, char** argv) {
  double scale = 1.0;
  std::int64_t units = 48;
  double epochs = 10.0;
  std::string dataset_name = "covtype";
  CliParser cli("ablation_cpu_lanes", "Hogwild lane-count scaling");
  cli.add_double("scale", &scale, "multiplier on bench dataset scales");
  cli.add_int("units", &units, "hidden units per layer");
  cli.add_double("epochs", &epochs, "budget in GPU mini-batch epochs");
  cli.add_string("dataset", &dataset_name, "dataset to sweep on");
  if (!cli.parse(argc, argv)) return 0;

  CsvWriter csv(bench::result_path("ablation_cpu_lanes.csv"),
                {"algorithm", "lanes", "cpu_updates", "epochs",
                 "final_loss"});

  for (const auto& b : bench::evaluation_suite(scale, units)) {
    if (b.name != dataset_name) continue;
    data::Dataset probe = bench::build_dataset(b, 1);
    const double budget =
        bench::budget_for_gpu_epochs(b, probe.example_count(), epochs);

    std::printf("CPU lane scaling (%s), budget %.3g vs\n", b.name.c_str(),
                budget);
    std::printf("%-14s %7s %13s %9s %12s\n", "algorithm", "lanes",
                "cpu updates", "epochs", "final loss");
    for (auto a : {Algorithm::kHogwildCpu, Algorithm::kCpuGpuHogbatch}) {
      for (int lanes : {8, 16, 32, 56, 112}) {
        data::Dataset dataset = bench::build_dataset(b, 1);
        core::TrainingConfig config = bench::build_config(b, a, budget);
        config.cpu.sim_lanes = lanes;
        config.cpu.spec = gpusim::xeon_spec(lanes);
        config.cpu.host_threads = std::max(64, lanes + 8);
        core::Trainer trainer(std::move(dataset), config);
        core::TrainingResult r = trainer.run();
        std::printf("%-14s %7d %13llu %9.2f %12.4f\n",
                    core::algorithm_name(a), lanes,
                    static_cast<unsigned long long>(r.cpu_updates), r.epochs,
                    r.final_loss);
        csv.row(std::vector<std::string>{
            core::algorithm_name(a), std::to_string(lanes),
            std::to_string(r.cpu_updates), std::to_string(r.epochs),
            std::to_string(r.final_loss)});
      }
    }
  }
  std::printf("\nresults: %s\n",
              bench::result_path("ablation_cpu_lanes.csv").c_str());
  return 0;
}
