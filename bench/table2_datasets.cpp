// Table II — dataset characteristics: the paper's four evaluation sets
// and the synthetic stand-ins generated at the benchmark scale.
#include <algorithm>
#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "common/csv_writer.hpp"
#include "bench_common.hpp"

using namespace hetsgd;

int main(int argc, char** argv) {
  double scale = 1.0;
  std::int64_t units = 64;
  CliParser cli("table2_datasets", "Table II: dataset summary");
  cli.add_double("scale", &scale, "multiplier on the bench dataset scales");
  cli.add_int("units", &units, "hidden units per layer");
  if (!cli.parse(argc, argv)) return 0;

  std::printf("TABLE II: Datasets (paper metadata vs generated stand-ins)\n");
  std::printf("%-11s | %9s %7s %8s %7s | %9s %7s %8s %9s %8s\n", "dataset",
              "paper N", "dim", "classes", "layers", "gen N", "dim",
              "classes", "density%%", "MB");
  CsvWriter csv(bench::result_path("table2_datasets.csv"),
                {"dataset", "paper_examples", "paper_dim", "paper_classes",
                 "hidden_layers", "gen_examples", "gen_dim", "gen_classes",
                 "gen_density", "gen_mbytes"});

  for (const auto& b : bench::evaluation_suite(scale, units)) {
    const auto info = data::paper_dataset_info(b.id);
    data::Dataset d = bench::build_dataset(b, 1);

    // Measure density of the generated set.
    std::uint64_t nonzero = 0;
    for (tensor::Index r = 0; r < d.example_count(); ++r) {
      const tensor::Scalar* row = d.features().row(r);
      for (tensor::Index c = 0; c < d.dim(); ++c) {
        if (row[c] != 0.0) ++nonzero;
      }
    }
    const double density =
        100.0 * static_cast<double>(nonzero) /
        static_cast<double>(d.example_count() * d.dim());
    const double mbytes =
        static_cast<double>(d.feature_bytes()) / (1 << 20);

    std::printf("%-11s | %9lld %7lld %8d %7d | %9lld %7lld %8d %8.1f%% %8.1f\n",
                info.name, static_cast<long long>(info.examples),
                static_cast<long long>(info.dim), info.classes,
                info.hidden_layers, static_cast<long long>(d.example_count()),
                static_cast<long long>(d.dim()), d.num_classes(), density,
                mbytes);
    csv.row(std::vector<std::string>{
        info.name, std::to_string(info.examples), std::to_string(info.dim),
        std::to_string(info.classes), std::to_string(info.hidden_layers),
        std::to_string(d.example_count()), std::to_string(d.dim()),
        std::to_string(d.num_classes()), std::to_string(density),
        std::to_string(mbytes)});

    // Class balance sanity (min/max class share of the generated set).
    auto hist = d.class_histogram();
    std::uint64_t lo = hist[0], hi = hist[0];
    for (auto c : hist) {
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
    std::printf("%-11s   class balance: min %llu / max %llu examples per "
                "class\n", "",
                static_cast<unsigned long long>(lo),
                static_cast<unsigned long long>(hi));
  }
  std::printf("\nresults: %s\n",
              bench::result_path("table2_datasets.csv").c_str());
  return 0;
}
