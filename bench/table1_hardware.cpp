// Table I — hardware architecture specifications, plus the calibration
// evidence that the simulated devices reproduce the paper's measured
// behaviours:
//   * CPU Hogwild epochs 236-317x slower than GPU mini-batch (§VII-B),
//   * GPU utilization ~50% at the lower batch threshold, ~100% at the
//     upper (§VII-A),
//   * CPU update rate far above the GPU's (the premise of §VI).
#include <cstdio>

#include "common/csv_writer.hpp"
#include "core/cost_model.hpp"
#include "data/synthetic.hpp"
#include "backend/device_model.hpp"
#include "bench_common.hpp"

using namespace hetsgd;

namespace {

nn::MlpConfig paper_mlp(const data::PaperDatasetInfo& info) {
  nn::MlpConfig mlp;
  mlp.input_dim = info.dim;
  mlp.num_classes = info.classes;
  mlp.hidden_layers = info.hidden_layers;
  mlp.hidden_units = 512;
  return mlp;
}

}  // namespace

int main() {
  const gpusim::DeviceSpec cpu = gpusim::xeon56_spec();
  const gpusim::DeviceSpec gpu = gpusim::v100_spec();

  std::printf("TABLE I: Hardware architecture specifications (modeled)\n");
  std::printf("%-28s %18s %18s\n", "", "CPU (2x Xeon)", "GPU (V100)");
  std::printf("%-28s %18d %18d\n", "worker lanes / SMs", cpu.lanes, gpu.lanes);
  std::printf("%-28s %15.1f GB %15.1f GB\n", "memory",
              static_cast<double>(cpu.memory_capacity) / (1 << 30),
              static_cast<double>(gpu.memory_capacity) / (1 << 30));
  std::printf("%-28s %12.1f GF/s %12.1f GF/s\n", "peak dense FLOP/s",
              cpu.peak_flops / 1e9, gpu.peak_flops / 1e9);
  std::printf("%-28s %15.2f us %15.2f us\n", "kernel launch",
              cpu.kernel_launch_seconds * 1e6, gpu.kernel_launch_seconds * 1e6);
  std::printf("%-28s %18s %13.1f GB/s\n", "host link", "shared memory",
              gpu.link_bandwidth / 1e9);

  gpusim::PerfModel cpu_perf(cpu);
  gpusim::PerfModel gpu_perf(gpu);

  std::printf("\nCalibration: modeled epoch times at paper scale "
              "(512-unit hidden layers)\n");
  std::printf("%-11s %9s %7s %8s %14s %14s %9s\n", "dataset", "examples",
              "dim", "classes", "CPU epoch (s)", "GPU epoch (s)", "ratio");
  CsvWriter csv(bench::result_path("table1_calibration.csv"),
                {"dataset", "cpu_epoch_s", "gpu_epoch_s", "ratio"});
  for (const auto& info : data::all_paper_datasets()) {
    const nn::MlpConfig mlp = paper_mlp(info);
    const double cpu_epoch =
        core::cpu_epoch_seconds(cpu_perf, mlp, info.examples, 1, 56);
    const double gpu_epoch = core::gpu_epoch_seconds(gpu_perf, mlp,
                                                     info.examples, 8192,
                                                     2e10);
    std::printf("%-11s %9lld %7lld %8d %14.1f %14.2f %8.0fx\n", info.name,
                static_cast<long long>(info.examples),
                static_cast<long long>(info.dim), info.classes, cpu_epoch,
                gpu_epoch, cpu_epoch / gpu_epoch);
    csv.row(std::vector<std::string>{info.name, std::to_string(cpu_epoch),
                                     std::to_string(gpu_epoch),
                                     std::to_string(cpu_epoch / gpu_epoch)});
  }
  std::printf("paper (measured, covtype-class workloads): 236x - 317x\n");

  std::printf("\nGPU utilization vs batch size (paper: ~50%% at lower "
              "threshold, ~100%% at upper)\n");
  std::printf("%-10s", "batch");
  for (double b : {64.0, 256.0, 1024.0, 4096.0, 8192.0}) {
    std::printf(" %7.0f", b);
  }
  std::printf("\n%-10s", "util %%");
  for (double b : {64.0, 256.0, 1024.0, 4096.0, 8192.0}) {
    std::printf(" %6.1f%%", 100.0 * gpu_perf.utilization(b));
  }
  std::printf("\n");

  const nn::MlpConfig covtype =
      paper_mlp(data::paper_dataset_info(data::PaperDataset::kCovtype));
  const double cpu_rate =
      56.0 / core::cpu_batch_seconds(cpu_perf, covtype, 1, 56);
  const double gpu_rate =
      1.0 / core::gpu_batch_seconds(gpu_perf, covtype, 8192, 2e10);
  std::printf("\nModel-update rates on covtype (updates/s): CPU Hogwild "
              "%.0f, GPU mini-batch %.1f (%.0fx more on CPU)\n",
              cpu_rate, gpu_rate, cpu_rate / gpu_rate);
  std::printf("\nresults: %s\n",
              bench::result_path("table1_calibration.csv").c_str());
  return 0;
}
