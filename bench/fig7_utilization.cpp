// Figure 7 — CPU and GPU utilization during three epochs on covtype.
//
// Reproduces the paper's utilization timelines: the four Hogbatch
// algorithms run for exactly three epochs; per-worker utilization is
// bucketed over virtual time. The end-of-epoch loss computation is charged
// to the GPU (§VII-B: "the loss computation is always performed on the GPU
// at the end of the epoch"), producing the paper's GPU spike / CPU dip at
// epoch boundaries.
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/csv_writer.hpp"
#include "bench_common.hpp"

using namespace hetsgd;
using core::Algorithm;

int main(int argc, char** argv) {
  double scale = 1.0;
  std::int64_t units = 48;
  std::int64_t epochs = 3;
  std::string dataset_name = "covtype";
  CliParser cli("fig7_utilization",
                "Figure 7: CPU/GPU utilization over three epochs (covtype)");
  cli.add_double("scale", &scale, "multiplier on bench dataset scales");
  cli.add_int("units", &units, "hidden units per layer");
  cli.add_int("epochs", &epochs, "epochs to run");
  cli.add_string("dataset", &dataset_name, "dataset to profile");
  if (!cli.parse(argc, argv)) return 0;

  const std::vector<Algorithm> algorithms = {
      Algorithm::kHogwildCpu, Algorithm::kMinibatchGpu,
      Algorithm::kCpuGpuHogbatch, Algorithm::kAdaptiveHogbatch};

  CsvWriter csv(bench::result_path("fig7_utilization.csv"),
                {"algorithm", "worker", "bucket_t", "utilization"});

  for (const auto& b : bench::evaluation_suite(scale, units)) {
    if (b.name != dataset_name) continue;
    std::printf("Fig 7 (%s): utilization during %lld epochs\n",
                b.name.c_str(), static_cast<long long>(epochs));

    for (auto a : algorithms) {
      data::Dataset dataset = bench::build_dataset(b, 1);
      core::TrainingConfig config = bench::build_config(b, a, 1e9);
      config.max_epochs = static_cast<std::uint64_t>(epochs);
      config.eval_interval_vseconds = 0.0;  // epoch-boundary loss eval
      config.charge_loss_eval_to_gpu = true;
      core::Trainer trainer(std::move(dataset), config);
      core::TrainingResult r = trainer.run();

      std::printf("\n  %s (total %.4g vs)\n", core::algorithm_name(a),
                  r.total_vtime);
      const double horizon = r.total_vtime;
      const int kBuckets = 24;
      const double dt = horizon / kBuckets;
      for (const auto& w : r.workers) {
        // Rebuild the bucket series from the recorded segments.
        core::UtilizationMonitor monitor(1);
        for (const auto& seg : w.segments) {
          monitor.record(0, seg.t0, std::min(seg.t1, horizon), seg.intensity);
        }
        auto series = monitor.bucket_series(0, dt, horizon);
        const char* kind =
            w.kind == gpusim::DeviceKind::kCpu ? "CPU" : "GPU";
        std::printf("  %-4s|", kind);
        for (double u : series) {
          // Coarse sparkline: utilization in tenths.
          std::printf("%c", " .:-=+*#%@"[static_cast<int>(u * 9.999)]);
        }
        std::printf("| mean %4.1f%%\n", 100.0 * w.mean_utilization);
        for (std::size_t i = 0; i < series.size(); ++i) {
          csv.row(std::vector<std::string>{
              core::algorithm_name(a), kind,
              std::to_string(dt * static_cast<double>(i)),
              std::to_string(series[i])});
        }
      }
    }
  }
  std::printf("\n(scale: ' '=idle ... '@'=100%%; paper: CPU plateau ~80%%, "
              "GPU >80%% for gpu/cpu+gpu, lower for adaptive)\n");
  std::printf("results: %s\n",
              bench::result_path("fig7_utilization.csv").c_str());
  return 0;
}
