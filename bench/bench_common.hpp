// Shared infrastructure for the experiment benchmarks (Figures 5-8,
// Tables I-II, and the ablations).
//
// Each bench binary reproduces one table/figure of the paper at a reduced
// --scale (the default keeps the full suite under a few minutes on a
// laptop-class host; virtual time makes the *shapes* scale-invariant).
#pragma once

#include <string>
#include <vector>

#include "core/trainer.hpp"
#include "data/synthetic.hpp"

namespace hetsgd::bench {

// Per-dataset benchmark parameters: the paper's configuration (§VII-A)
// mapped onto the reduced scale.
struct DatasetBench {
  data::PaperDataset id;
  std::string name;
  double scale;            // fraction of the paper's N
  tensor::Index hidden_units;
  int hidden_layers;       // Table II depth: 6 / 8 / 8 / 4
  double learning_rate;    // pre-tuned per dataset (powers-of-10 grid)
  // Stability bound on the batch-scaled eta found by the same grid: on the
  // ill-conditioned high-dimensional sets the linear-scaling rule diverges
  // well before eta*batch reaches the low-dimensional datasets' limit.
  double max_effective_lr;
  tensor::Index gpu_min_batch;
  tensor::Index gpu_max_batch;
};

// The four evaluation datasets with tuned bench parameters. `scale`
// multiplies the per-dataset default scale (1.0 = bench default, not
// paper-size; pass --scale to stretch toward the paper's sizes).
std::vector<DatasetBench> evaluation_suite(double scale, tensor::Index units);

// Builds the synthetic dataset for an entry.
data::Dataset build_dataset(const DatasetBench& b, std::uint64_t seed);

// Builds the TrainingConfig the paper's methodology prescribes for this
// dataset: depth/width per Table II, CPU starts at Hogwild (1/thread),
// GPU at the upper threshold, learning rate scaled with batch size, and
// the GPU saturation point set to the lower threshold so utilization is
// ~50% there and ~90%+ at the upper threshold (§VII-A calibration).
core::TrainingConfig build_config(const DatasetBench& b,
                                  core::Algorithm algorithm,
                                  double budget_vseconds);

// Virtual-time budget: enough for `epochs` GPU mini-batch epochs on this
// dataset (computed from the cost model, like the paper's "fixed amount of
// time chosen such that the loss converges for at least one algorithm").
double budget_for_gpu_epochs(const DatasetBench& b, tensor::Index examples,
                             double epochs);

// Runs one (dataset, algorithm) cell and returns the result.
core::TrainingResult run_cell(const DatasetBench& b, core::Algorithm algorithm,
                              double budget_vseconds, std::uint64_t seed);

// Ensures ./bench_results exists and returns "bench_results/<name>".
std::string result_path(const std::string& name);

// Minimum loss across a set of curves — the normalization basis of §VII-A.
double min_loss(const std::vector<core::TrainingResult>& results);

// The five algorithms of the evaluation, in the paper's presentation order.
std::vector<core::Algorithm> evaluation_algorithms();

}  // namespace hetsgd::bench
