#!/usr/bin/env bash
# The zero-warning gate (DESIGN.md §10): every static and dynamic check the
# concurrency contract depends on, in one command. CI runs exactly this;
# run it locally before sending a PR.
#
# Gates, in order (each prints PASS/SKIP and the script fails on the first
# failure):
#   1. gcc/default build, -Werror, full ctest        (tier-1, always)
#   2. clang build with -Wthread-safety -Werror      (skipped if no clang++)
#   3. clang-tidy, repo profile                      (skipped if absent)
#   4. hetsgd-lint over compile_commands.json        (always)
#   4d. hetsgd-analyze semantic invariants           (always; libclang
#       frontend when importable, builtin otherwise)
#   5. TSan: chaos smoke + concurrency suites        (skip with --fast)
#   6. ASan+UBSan ctest                              (skip with --fast)
#
# Usage:
#   scripts/check_all.sh                  # everything
#   scripts/check_all.sh --fast           # static gates only (1-4d)
#   scripts/check_all.sh --require-tools  # SKIPs become failures: gates 2/3
#                                         # need clang/clang-tidy and gate 4d
#                                         # needs libclang (CI uses this)
# Flags combine; order does not matter.
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
REQUIRE_TOOLS=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    --require-tools) REQUIRE_TOOLS=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done
JOBS=${JOBS:-$(nproc)}

note() { printf '\n=== %s ===\n' "$*"; }

# --- 1. default-toolchain build, warnings-as-errors, full test suite -------
note "gate 1: build (-Werror) + ctest"
cmake -B build -S . -DHETSGD_WERROR=ON >/dev/null
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"
echo "gate 1: PASS"

# --- 1b. per-backend execution legs ----------------------------------------
# The suites that exercise device-worker execution (backend equivalence,
# unified worker protocol, full training runs) honor HETSGD_BACKEND and
# re-run once per registered backend, so both engines stay behind the one
# seam contract. "sim" is the default leg gate 1 already ran; it repeats
# here so a changed default can't silently shrink coverage.
note "gate 1b: per-backend ctest (backend/worker/trainer suites)"
BACKEND_SUITES='^(AllBackends/BackendSuite|BackendEquivalence|CpuWorkerProtocol|GpuWorkerProtocol|WorkerState|Trainer\.|AllAlgorithms/AlgorithmRun)'
for backend in cpu sim; do
  echo "--- backend: $backend ---"
  HETSGD_BACKEND=$backend ctest --test-dir build --output-on-failure \
    -j"$JOBS" -R "$BACKEND_SUITES"
done
echo "gate 1b: PASS"

# --- 2. clang thread-safety analysis ---------------------------------------
# This is the leg that *proves* the GUARDED_BY/REQUIRES annotations:
# removing a MutexLock around any guarded field fails this build.
note "gate 2: clang -Wthread-safety -Werror"
if command -v clang++ >/dev/null 2>&1; then
  cmake -B build-clang -S . \
    -DCMAKE_CXX_COMPILER=clang++ -DHETSGD_WERROR=ON >/dev/null
  cmake --build build-clang -j"$JOBS"
  echo "gate 2: PASS"
elif [[ "$REQUIRE_TOOLS" == "1" ]]; then
  echo "gate 2: FAIL (--require-tools set but clang++ not installed)"
  exit 1
else
  echo "gate 2: SKIP (clang++ not installed; thread-safety attributes are"
  echo "         compiled out under gcc — install clang to enforce them)"
fi

# --- 3. clang-tidy ----------------------------------------------------------
note "gate 3: clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
  cmake --build build --target tidy
  echo "gate 3: PASS"
elif [[ "$REQUIRE_TOOLS" == "1" ]]; then
  echo "gate 3: FAIL (--require-tools set but clang-tidy not installed)"
  exit 1
else
  echo "gate 3: SKIP (clang-tidy not installed)"
fi

# --- 4. hetsgd-lint ---------------------------------------------------------
note "gate 4: hetsgd-lint (self-test + tree)"
python3 tools/lint/hetsgd_lint.py --self-test
python3 tools/lint/hetsgd_lint.py \
  --compile-commands build/compile_commands.json
echo "gate 4: PASS"

# --- 4d. hetsgd-analyze ------------------------------------------------------
# Semantic invariants (DESIGN.md §14): lock-acquisition cycles, checkpoint
# field coverage, message-variant exhaustiveness, relaxed-atomic discipline
# and the AST-level core wall-clock ban. Runs everywhere via the builtin
# frontend; under --require-tools the libclang frontend is mandatory so CI
# checks the compiler's view of the record layouts.
note "gate 4d: hetsgd-analyze (self-test + tree)"
ANALYZE_FLAGS=""
if [[ "$REQUIRE_TOOLS" == "1" ]]; then
  ANALYZE_FLAGS="--frontend clang --require-clang"
fi
# shellcheck disable=SC2086  # deliberate word-splitting of the flag list
python3 tools/analyze/hetsgd_analyze.py --self-test $ANALYZE_FLAGS
# shellcheck disable=SC2086
python3 tools/analyze/hetsgd_analyze.py \
  --compile-commands build/compile_commands.json $ANALYZE_FLAGS
echo "gate 4d: PASS"

# --- 4b. tracing overhead ----------------------------------------------------
# micro_trace gates the obs layer's wall-time tax (<3%, DESIGN.md §12)
# using the gate-1 build; bench_smoke.sh re-runs it in the tuned native
# build and records bench_results/BENCH_trace.json.
note "gate 4b: tracing overhead (micro_trace)"
cmake --build build --target micro_trace -j"$JOBS"
build/bench/micro_trace
echo "gate 4b: PASS"

# --- 4c. backend dispatch overhead ------------------------------------------
# micro_backend gates the seam tax of backend::Backend virtual dispatch
# against the direct kernel path (<2%, DESIGN.md §13); bench_smoke.sh
# re-runs it in the native build and records BENCH_backend.json.
note "gate 4c: backend dispatch overhead (micro_backend)"
cmake --build build --target micro_backend -j"$JOBS"
build/bench/micro_backend
echo "gate 4c: PASS"

if [[ "$FAST" == "1" ]]; then
  note "--fast: skipping sanitizer gates (5-6)"
  exit 0
fi

# --- 5. ThreadSanitizer -----------------------------------------------------
# chaos_smoke --tsan builds build-tsan and runs the concurrency, actor and
# fault suites under TSan with scripts/tsan.supp; any unsuppressed report
# fails. The suppression file itself is kept honest by gate 4's
# tsan-supp-stale rule.
note "gate 5: TSan (chaos smoke + concurrency suites)"
scripts/chaos_smoke.sh --tsan
echo "gate 5: PASS"

# --- 6. ASan + UBSan --------------------------------------------------------
note "gate 6: ASan+UBSan ctest"
cmake -B build-asan -S . -DHETSGD_SANITIZE=address,undefined \
  -DHETSGD_BUILD_BENCH=OFF >/dev/null
cmake --build build-asan -j"$JOBS"
ctest --test-dir build-asan --output-on-failure -j"$JOBS"
echo "gate 6: PASS"

note "all gates passed"
