#!/usr/bin/env bash
# Chaos smoke: drive the adaptive example through every fault class and
# fail on crash, hang, or non-finite final loss.
#
# Classes exercised (one run each, plus a combined run):
#   die       permanent worker death mid-epoch -> reclamation + survivors
#   stall     virtual slowdown + real sleep    -> deadline miss + quarantine
#   transfer  transient device-copy failures   -> worker-local retry
#   nan       gradient corruption              -> divergence rollback
#
# covtype_adaptive exits non-zero when the final loss is non-finite, so a
# failed recovery fails the script; `timeout` converts a hung coordinator
# (shutdown waiting on a dead actor) into a failure instead of a wedge.
#
# The stall and combined runs also emit --trace-out / --metrics-out
# artifacts, validated with scripts/validate_trace.py: the trace must show
# the reclaim/redispatch/rollback story and a batch flow crossing threads,
# not merely parse.
#
# With --tsan, additionally builds with -fsanitize=thread and runs the
# concurrency/actor/fault test suites under it (slow; needs libtsan).
#
# Usage:
#   scripts/chaos_smoke.sh            # fault classes against ./build
#   scripts/chaos_smoke.sh --tsan     # + TSan pass over concurrency tests
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
RUN_TIMEOUT=${RUN_TIMEOUT:-120}
WITH_TSAN=0
[[ "${1:-}" == "--tsan" ]] && WITH_TSAN=1

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" --target covtype_adaptive -j"$(nproc)" >/dev/null

ADAPTIVE="$BUILD_DIR/examples/covtype_adaptive"
COMMON_ARGS=(--scale 0.005 --budget 4
             --fault-deadline-factor 2 --fault-grace-ticks 5)

run_class() {
  local name=$1 plan=$2
  shift 2
  echo "=== chaos class: $name ==="
  if ! timeout "$RUN_TIMEOUT" "$ADAPTIVE" "${COMMON_ARGS[@]}" \
      --fault-plan "$plan" "$@" >"$BUILD_DIR/chaos_$name.log" 2>&1; then
    echo "FAIL: $name (crash, hang, or non-finite loss)"
    tail -25 "$BUILD_DIR/chaos_$name.log"
    exit 1
  fi
  grep -E "dispatched .* = reported .* \+ reclaimed|final loss" \
    "$BUILD_DIR/chaos_$name.log" | sed 's/^/  /'
}

run_class die      "die:worker=1,atfrac=0.3" --fault-quarantine-after 1 \
                   --trace-out "$BUILD_DIR/chaos_die_trace.json"
run_class stall    "stall:worker=0,atfrac=0.2,factor=50,sleep=150" \
                   --fault-quarantine-after 1 \
                   --trace-out "$BUILD_DIR/chaos_stall_trace.json"
run_class transfer "transfer:worker=1,atfrac=0.4,count=2"
run_class nan      "nan:worker=0,atfrac=0.3" \
                   --trace-out "$BUILD_DIR/chaos_nan_trace.json" \
                   --metrics-out "$BUILD_DIR/chaos_nan_metrics.jsonl" \
                   --metrics-interval 100
run_class combined "stall:worker=0,atfrac=0.2,factor=20,sleep=100;transfer:worker=1,atfrac=0.3,count=2;nan:worker=1,atfrac=0.5;die:worker=0,atfrac=0.7" \
                   --fault-quarantine-after 2 \
                   --trace-out "$BUILD_DIR/chaos_combined_trace.json"

echo "=== all fault classes recovered ==="

# The traces must tell the recovery story, not merely exist. Each class
# pins the outcome it produces deterministically: a dead worker's batch is
# reclaimed and re-dispatched, a straggler is quarantined after its
# deadline miss, a NaN gradient triggers the divergence rollback. Every
# trace must show at least one batch whose flow events cross threads
# (dispatch on the coordinator, execution on a worker); the combined run's
# fault interleaving is timing-dependent, so only its structure is checked.
echo "=== validating trace/metrics artifacts ==="
python3 scripts/validate_trace.py \
  --trace "$BUILD_DIR/chaos_die_trace.json" \
  --require-instant reclaim --require-instant redispatch \
  --require-span execute --require-span ledger_apply \
  --require-flow
python3 scripts/validate_trace.py \
  --trace "$BUILD_DIR/chaos_stall_trace.json" \
  --require-instant deadline-miss --require-instant quarantine \
  --require-flow
python3 scripts/validate_trace.py \
  --trace "$BUILD_DIR/chaos_nan_trace.json" \
  --require-instant rollback \
  --require-flow \
  --metrics "$BUILD_DIR/chaos_nan_metrics.jsonl" \
  --require-metric hetsgd_rollbacks_total \
  --require-metric hetsgd_reclaims_total \
  --require-metric hetsgd_fault_records
python3 scripts/validate_trace.py \
  --trace "$BUILD_DIR/chaos_combined_trace.json" --require-flow
echo "=== observability artifacts valid ==="

if [[ $WITH_TSAN -eq 1 ]]; then
  TSAN_DIR=${TSAN_DIR:-build-tsan}
  echo "=== TSan pass: concurrency + actor + fault + checkpoint + worker + obs ==="
  cmake -B "$TSAN_DIR" -S . \
    -DHETSGD_SANITIZE=thread \
    -DHETSGD_BUILD_BENCH=OFF \
    -DHETSGD_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build "$TSAN_DIR" \
    --target concurrent_test actor_test fault_test checkpoint_test \
             worker_test \
             obs_test \
    -j"$(nproc)" >/dev/null
  # Hogwild's unsynchronized model writes are by design; tsan.supp masks
  # exactly that path, so any report that survives is a real race and fails.
  export TSAN_OPTIONS="suppressions=$PWD/scripts/tsan.supp exitcode=66"
  for t in concurrent_test actor_test fault_test checkpoint_test worker_test \
           obs_test; do
    echo "--- $t (TSan) ---"
    timeout $((RUN_TIMEOUT * 5)) "$TSAN_DIR/tests/$t" \
      --gtest_brief=1 2>&1 | tee "$TSAN_DIR/$t.log" | tail -3
    if grep -q "WARNING: ThreadSanitizer" "$TSAN_DIR/$t.log"; then
      echo "FAIL: unsuppressed TSan report in $t"
      exit 1
    fi
  done
  echo "=== TSan pass clean ==="
fi
