#!/usr/bin/env bash
# Micro-benchmark smoke run + regression gates: GEMM throughput and
# tracing overhead.
#
# Builds bench/micro_gemm in a HETSGD_NATIVE=ON build (the packed kernel's
# tuned configuration), runs the skinny/dense shape sweep against the frozen
# seed kernel compiled into the same binary, distills the GFLOP/s counters
# into bench_results/BENCH_gemm.json, and fails if any shape regressed more
# than 20% against the checked-in baseline
# (bench_results/BENCH_gemm_baseline.json).
#
# Usage:
#   scripts/bench_smoke.sh                    # run + gate
#   scripts/bench_smoke.sh --update-baseline  # run + rewrite the baseline
#
# Absolute GFLOP/s vary across hosts; the gate compares new/seed *ratios*,
# which are stable for a given ISA. Refresh the baseline with
# --update-baseline when benchmarking on a different machine class.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-native}
RAW_JSON=$BUILD_DIR/micro_gemm_raw.json

cmake -B "$BUILD_DIR" -S . \
  -DHETSGD_NATIVE=ON \
  -DHETSGD_BUILD_TESTS=OFF \
  -DHETSGD_BUILD_EXAMPLES=OFF \
  -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" --target micro_gemm -j"$(nproc)"

"$BUILD_DIR/bench/micro_gemm" \
  --benchmark_min_time=0.3 \
  --benchmark_out="$RAW_JSON" \
  --benchmark_out_format=json

python3 scripts/check_bench_regression.py "$RAW_JSON" \
  --out bench_results/BENCH_gemm.json \
  --baseline bench_results/BENCH_gemm_baseline.json \
  "$@"

# Tracing-overhead gate (DESIGN.md §12): micro_trace times the same
# batch-shaped workload with the tracer off and on, and fails if the
# tracing tax exceeds 3%. The binary gates itself; BENCH_trace.json
# records the measurement alongside BENCH_gemm.json.
cmake --build "$BUILD_DIR" --target micro_trace -j"$(nproc)"
"$BUILD_DIR/bench/micro_trace" --out bench_results/BENCH_trace.json

# Backend-seam dispatch gate (DESIGN.md §13): micro_backend times one
# MLP-layer kernel sequence directly and through backend::Backend virtual
# calls, and fails if the seam tax exceeds 2%. Self-gating like
# micro_trace; BENCH_backend.json records the measurement.
cmake --build "$BUILD_DIR" --target micro_backend -j"$(nproc)"
"$BUILD_DIR/bench/micro_backend" --out bench_results/BENCH_backend.json
