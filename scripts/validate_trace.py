#!/usr/bin/env python3
"""Validate observability artifacts emitted by a training run.

Checks a Chrome trace_event JSON file (--trace-out) and/or a metrics JSONL
file (--metrics-out) for structural validity and, optionally, for specific
events the run was expected to produce — the smoke scripts use this to
assert that a chaos run's trace actually shows the reclaim/redispatch/
rollback story and that a batch's flow crosses threads.

Trace checks (always, when --trace is given):
  * file parses as JSON with a `traceEvents` list
  * every event has a name and a known phase; 'X' events have dur >= 0
  * no events were dropped (otherData.dropped == 0)
  * at least one thread_name metadata record

Optional:
  --require-span NAME      at least one complete ('X') span named NAME
  --require-instant NAME   at least one instant ('i') event named NAME
  --require-flow           at least one flow id whose 's'/'t'/'f' events
                           touch two or more distinct threads
  --min-events N           at least N events total (default 1)

Metrics checks (when --metrics is given): every line parses as a JSON
object with ts_ns and metrics keys; --allow-torn-tail permits the final
line to be truncated (a SIGKILLed run can tear its last snapshot, and the
whole point of JSONL is that every *previous* line stays valid).
  --require-metric NAME    NAME present in the last complete snapshot

Exit status: 0 = all checks pass, 1 = a check failed, 2 = usage error.
"""

import argparse
import json
import sys

KNOWN_PHASES = {"X", "B", "E", "i", "s", "t", "f", "C", "M"}


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    return 1


def check_trace(opts):
    try:
        with open(opts.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        return fail(f"{opts.trace}: not valid JSON: {err}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail(f"{opts.trace}: no traceEvents array")
    if len(events) < opts.min_events:
        return fail(f"{opts.trace}: {len(events)} events < --min-events "
                    f"{opts.min_events}")
    dropped = doc.get("otherData", {}).get("dropped", 0)
    if dropped:
        return fail(f"{opts.trace}: {dropped} events dropped (ring too "
                    f"small for this run — raise --trace-buffer)")

    spans, instants, threads = set(), set(), set()
    flows = {}  # id -> set of tids
    for e in events:
        ph = e.get("ph")
        if ph not in KNOWN_PHASES:
            return fail(f"{opts.trace}: unknown phase {ph!r} in {e}")
        if "name" not in e:
            return fail(f"{opts.trace}: event without name: {e}")
        if ph == "X":
            if e.get("dur", -1) < 0:
                return fail(f"{opts.trace}: 'X' span without dur: {e}")
            spans.add(e["name"])
        elif ph == "i":
            instants.add(e["name"])
        elif ph in ("s", "t", "f"):
            flows.setdefault(e.get("id"), set()).add(e.get("tid"))
        elif ph == "M" and e["name"] == "thread_name":
            threads.add(e.get("args", {}).get("name"))

    if opts.min_events > 0 and not threads:
        return fail(f"{opts.trace}: no thread_name metadata")
    for name in opts.require_span:
        if name not in spans:
            return fail(f"{opts.trace}: required span '{name}' missing "
                        f"(have: {', '.join(sorted(spans)) or 'none'})")
    for name in opts.require_instant:
        if name not in instants:
            return fail(f"{opts.trace}: required instant '{name}' missing "
                        f"(have: {', '.join(sorted(instants)) or 'none'})")
    if opts.require_flow:
        cross = [fid for fid, tids in flows.items() if len(tids) >= 2]
        if not cross:
            return fail(f"{opts.trace}: no flow crosses threads "
                        f"({len(flows)} flow ids, all single-thread)")
    print(f"validate_trace: {opts.trace}: {len(events)} events, "
          f"{len(spans)} span names, {len(flows)} flows, "
          f"threads: {', '.join(sorted(t for t in threads if t))}")
    return 0


def check_metrics(opts):
    try:
        with open(opts.metrics, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as err:
        return fail(f"{opts.metrics}: {err}")
    if not lines:
        return fail(f"{opts.metrics}: empty")
    last_snapshot = None
    for i, line in enumerate(lines):
        try:
            snap = json.loads(line)
        except json.JSONDecodeError:
            if opts.allow_torn_tail and i == len(lines) - 1:
                print(f"validate_trace: {opts.metrics}: torn final line "
                      f"tolerated (--allow-torn-tail)")
                break
            return fail(f"{opts.metrics}:{i + 1}: invalid JSON line")
        if "ts_ns" not in snap or "metrics" not in snap:
            return fail(f"{opts.metrics}:{i + 1}: missing ts_ns/metrics")
        last_snapshot = snap
    if last_snapshot is None:
        return fail(f"{opts.metrics}: no complete snapshot line")
    for name in opts.require_metric:
        if name not in last_snapshot["metrics"]:
            return fail(f"{opts.metrics}: metric '{name}' missing from "
                        f"last snapshot")
    print(f"validate_trace: {opts.metrics}: {len(lines)} snapshots, "
          f"{len(last_snapshot['metrics'])} metrics in last")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--trace", help="Chrome trace_event JSON to validate")
    ap.add_argument("--metrics", help="metrics JSONL to validate")
    ap.add_argument("--require-span", action="append", default=[])
    ap.add_argument("--require-instant", action="append", default=[])
    ap.add_argument("--require-flow", action="store_true",
                    help="require a flow spanning >= 2 threads")
    ap.add_argument("--require-metric", action="append", default=[])
    ap.add_argument("--min-events", type=int, default=1)
    ap.add_argument("--allow-torn-tail", action="store_true",
                    help="tolerate a truncated final metrics line")
    opts = ap.parse_args()
    if not opts.trace and not opts.metrics:
        ap.error("give --trace and/or --metrics")
    status = 0
    if opts.trace:
        status |= check_trace(opts)
    if opts.metrics:
        status |= check_metrics(opts)
    return status


if __name__ == "__main__":
    sys.exit(main())
