#!/usr/bin/env python3
"""Plot the benchmark CSVs under bench_results/ as the paper's figures.

Requires matplotlib. Usage:

    python3 scripts/plot_results.py [--results bench_results] [--out plots]

Produces fig5 (loss vs time, per dataset), fig6 (loss vs epochs), fig7
(utilization timelines), and fig8 (update distribution bars) as PNGs —
the visual counterparts of the tables the bench binaries print.

For a per-batch timeline of a single run (spans, flows, fault events),
use the tracer instead of these aggregate plots: run the trainer with
--trace-out trace.json and open the file in Perfetto (https://ui.perfetto.dev)
or chrome://tracing. See README "Observability".
"""

import argparse
import collections
import csv
import os
import sys


def read_rows(path):
    with open(path, newline="") as fh:
        return list(csv.DictReader(fh))


def series_by(rows, keys, x_field, y_field):
    out = collections.defaultdict(lambda: ([], []))
    for row in rows:
        key = tuple(row[k] for k in keys)
        out[key][0].append(float(row[x_field]))
        out[key][1].append(float(row[y_field]))
    return out


def plot_fig5(results, outdir, plt):
    path = os.path.join(results, "fig5_convergence.csv")
    if not os.path.exists(path):
        return
    rows = read_rows(path)
    datasets = sorted({r["dataset"] for r in rows})
    fig, axes = plt.subplots(1, len(datasets), figsize=(5 * len(datasets), 4))
    if len(datasets) == 1:
        axes = [axes]
    for ax, dataset in zip(axes, datasets):
        sub = [r for r in rows if r["dataset"] == dataset]
        for (alg,), (xs, ys) in sorted(
                series_by(sub, ["algorithm"], "vtime",
                          "normalized_loss").items()):
            ax.plot(xs, ys, label=alg)
        ax.set_title(f"Fig 5: {dataset}")
        ax.set_xlabel("virtual seconds")
        ax.set_ylabel("normalized loss")
        ax.set_yscale("log")
        ax.legend(fontsize=7)
    fig.tight_layout()
    fig.savefig(os.path.join(outdir, "fig5_convergence.png"), dpi=120)
    print("wrote fig5_convergence.png")


def plot_fig6(results, outdir, plt):
    path = os.path.join(results, "fig6_statistical_efficiency.csv")
    if not os.path.exists(path):
        return
    rows = read_rows(path)
    datasets = sorted({r["dataset"] for r in rows})
    fig, axes = plt.subplots(1, len(datasets), figsize=(5 * len(datasets), 4))
    if len(datasets) == 1:
        axes = [axes]
    for ax, dataset in zip(axes, datasets):
        sub = [r for r in rows if r["dataset"] == dataset]
        for (alg,), (xs, ys) in sorted(
                series_by(sub, ["algorithm"], "epochs",
                          "normalized_loss").items()):
            ax.plot(xs, ys, label=alg)
        ax.set_title(f"Fig 6: {dataset}")
        ax.set_xlabel("epochs")
        ax.set_ylabel("normalized loss")
        ax.set_yscale("log")
        ax.legend(fontsize=7)
    fig.tight_layout()
    fig.savefig(os.path.join(outdir, "fig6_statistical_efficiency.png"),
                dpi=120)
    print("wrote fig6_statistical_efficiency.png")


def plot_fig7(results, outdir, plt):
    path = os.path.join(results, "fig7_utilization.csv")
    if not os.path.exists(path):
        return
    rows = read_rows(path)
    algorithms = sorted({r["algorithm"] for r in rows})
    fig, axes = plt.subplots(len(algorithms), 1,
                             figsize=(8, 2.2 * len(algorithms)))
    if len(algorithms) == 1:
        axes = [axes]
    for ax, alg in zip(axes, algorithms):
        sub = [r for r in rows if r["algorithm"] == alg]
        for (worker,), (xs, ys) in sorted(
                series_by(sub, ["worker"], "bucket_t",
                          "utilization").items()):
            ax.step(xs, [100 * y for y in ys], where="post", label=worker)
        ax.set_title(alg, fontsize=9)
        ax.set_ylabel("util %")
        ax.set_ylim(0, 105)
        ax.legend(fontsize=7)
    axes[-1].set_xlabel("virtual seconds")
    fig.tight_layout()
    fig.savefig(os.path.join(outdir, "fig7_utilization.png"), dpi=120)
    print("wrote fig7_utilization.png")


def plot_fig8(results, outdir, plt):
    path = os.path.join(results, "fig8_update_distribution.csv")
    if not os.path.exists(path):
        return
    rows = read_rows(path)
    datasets = sorted({r["dataset"] for r in rows})
    algorithms = sorted({r["algorithm"] for r in rows})
    fig, ax = plt.subplots(figsize=(7, 4))
    width = 0.35
    for i, alg in enumerate(algorithms):
        shares = []
        for d in datasets:
            share = next((float(r["cpu_share"]) for r in rows
                          if r["dataset"] == d and r["algorithm"] == alg),
                         0.0)
            shares.append(100 * share)
        xs = [j + (i - 0.5) * width for j in range(len(datasets))]
        ax.bar(xs, shares, width, label=f"{alg} (CPU share)")
    ax.set_xticks(range(len(datasets)))
    ax.set_xticklabels(datasets)
    ax.set_ylabel("CPU share of model updates (%)")
    ax.set_title("Fig 8: update distribution")
    ax.axhline(50, linestyle="--", linewidth=0.8, color="gray")
    ax.legend(fontsize=8)
    fig.tight_layout()
    fig.savefig(os.path.join(outdir, "fig8_update_distribution.png"), dpi=120)
    print("wrote fig8_update_distribution.png")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--results", default="bench_results")
    parser.add_argument("--out", default="plots")
    args = parser.parse_args()
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")
    os.makedirs(args.out, exist_ok=True)
    plot_fig5(args.results, args.out, plt)
    plot_fig6(args.results, args.out, plt)
    plot_fig7(args.results, args.out, plt)
    plot_fig8(args.results, args.out, plt)


if __name__ == "__main__":
    main()
