#!/usr/bin/env bash
# Build, test, and regenerate every table/figure of the paper.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/*; do
  if [ -x "$b" ] && [ -f "$b" ]; then
    echo "===== $b"
    "$b"
  fi
done

echo "CSV series: bench_results/"
echo "Optional: python3 scripts/plot_results.py  # renders the figures"
