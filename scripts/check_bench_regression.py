#!/usr/bin/env python3
"""Distill bench/micro_gemm output and gate GFLOP/s regressions.

Reads the google-benchmark JSON produced by scripts/bench_smoke.sh, writes
a compact BENCH_gemm.json mapping each shape to its packed-kernel and
frozen-seed-kernel GFLOP/s (and their ratio), then compares against the
checked-in baseline: the run fails if any shape's new/seed speedup dropped
more than the threshold (default 20%) below the baseline's.

Speedup ratios, not absolute GFLOP/s, are gated: absolute throughput varies
across hosts, the ratio of two kernels compiled into the same binary much
less so.
"""

import argparse
import json
import sys
from pathlib import Path

# Benchmarks compare pairs selected by a 0/1 arg: `seed` (production kernel
# vs frozen seed kernel) and `fused` (unfused sequence vs fused epilogue).
# Maps flag name -> (name of the 0-variant, name of the 1-variant, whether
# speedup is variant0/variant1 or variant1/variant0).
PAIR_FLAGS = {
    "seed": ("new", "seed"),    # speedup = new / seed
    "fused": ("unfused", "fused"),  # speedup = fused / unfused
}


def parse_raw(raw):
    """Group benchmark repetitions into per-shape entries."""
    shapes = {}
    for b in raw.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        parts = b["name"].split("/")
        args = {}
        plain = []
        for p in parts[1:]:
            if ":" in p:
                k, v = p.split(":", 1)
                args[k] = v
            else:
                plain.append(p)
        flag = next((f for f in PAIR_FLAGS if f in args), None)
        key_args = [f"{k}:{v}" for k, v in args.items() if k not in PAIR_FLAGS]
        key = "/".join([parts[0]] + key_args + plain)
        entry = shapes.setdefault(key, {})
        gflops = b.get("GFLOP/s")
        if flag is not None and gflops is not None:
            zero_name, one_name = PAIR_FLAGS[flag]
            variant = one_name if args[flag] != "0" else zero_name
            entry[f"{variant}_gflops"] = round(gflops, 3)
            entry["_flag"] = flag
        elif gflops is not None:
            entry["gflops"] = round(gflops, 3)
        elif "bytes_per_second" in b:
            entry["gbytes_per_second"] = round(b["bytes_per_second"] / 1e9, 3)
    for entry in shapes.values():
        flag = entry.pop("_flag", None)
        if flag is None:
            continue
        zero_name, one_name = PAIR_FLAGS[flag]
        num = entry.get(f"{one_name if flag == 'fused' else zero_name}_gflops")
        den = entry.get(f"{zero_name if flag == 'fused' else one_name}_gflops")
        if num is not None and den:
            entry["speedup"] = round(num / den, 3)
    return shapes


def gate(current, baseline, threshold):
    """Return a list of human-readable failures."""
    failures = []
    for key, base in sorted(baseline.get("shapes", {}).items()):
        if "speedup" not in base:
            continue
        cur = current["shapes"].get(key)
        if cur is None or "speedup" not in cur:
            failures.append(f"{key}: present in baseline but missing from run")
            continue
        floor = base["speedup"] * (1.0 - threshold)
        if cur["speedup"] < floor:
            failures.append(
                f"{key}: speedup {cur['speedup']:.3f} < {floor:.3f} "
                f"(baseline {base['speedup']:.3f} - {threshold:.0%})")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("raw", help="google-benchmark JSON from micro_gemm")
    ap.add_argument("--out", default="bench_results/BENCH_gemm.json")
    ap.add_argument("--baseline",
                    default="bench_results/BENCH_gemm_baseline.json")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="allowed fractional speedup regression (default 0.20)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline from this run instead of gating")
    opts = ap.parse_args()

    with open(opts.raw) as f:
        raw = json.load(f)
    current = {
        "benchmark": "bench/micro_gemm",
        "build": "HETSGD_NATIVE=ON",
        "host_cpus": raw.get("context", {}).get("num_cpus"),
        "shapes": parse_raw(raw),
    }
    out_path = Path(opts.out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(current, indent=2) + "\n")
    print(f"wrote {out_path} ({len(current['shapes'])} shapes)")

    base_path = Path(opts.baseline)
    if opts.update_baseline:
        base_path.write_text(json.dumps(current, indent=2) + "\n")
        print(f"baseline updated: {base_path}")
        return 0
    if not base_path.exists():
        print(f"no baseline at {base_path}; run with --update-baseline first",
              file=sys.stderr)
        return 1
    with open(base_path) as f:
        baseline = json.load(f)
    failures = gate(current, baseline, opts.threshold)
    if failures:
        print("GEMM benchmark regression detected:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"regression gate passed ({opts.threshold:.0%} threshold)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
