#!/usr/bin/env bash
# Crash/resume smoke: SIGKILL the trainer at varying points and verify
# every restart resumes from a valid checkpoint.
#
# Each iteration wipes the checkpoint directory, then:
#   1. runs covtype_adaptive with --checkpoint-dir and a `crash` fault
#      injection (std::raise(SIGKILL) inside a worker: no destructors, no
#      flushes — simulated power loss). Expected exit: 137 (killed), or 0
#      when the run finished before the crash point.
#   2. restarts with --resume pointing at the same directory. The restart
#      must exit 0; when the killed run managed to cut at least one
#      checkpoint, the restart must report "resumed from checkpoint" —
#      a torn or corrupt file that load_latest cannot fall back from
#      fails the iteration.
#
# The crash fraction sweeps the whole run and alternates the crashing
# worker, so cuts are interrupted at every phase: before the first epoch
# barrier, mid state-collection, mid rename, after the last cut.
#
# Observability artifacts ride along: the killed run streams metrics
# JSONL (validated torn-tail-tolerant — SIGKILL may clip the final line,
# never an earlier one) and the resume leg writes a trace that must load
# and show work flowing coordinator -> worker.
#
# Usage:
#   scripts/crash_smoke.sh              # 20 kill+resume iterations
#   ITERATIONS=5 scripts/crash_smoke.sh # quicker
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
RUN_TIMEOUT=${RUN_TIMEOUT:-120}
ITERATIONS=${ITERATIONS:-20}

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" --target covtype_adaptive -j"$(nproc)" >/dev/null

ADAPTIVE="$BUILD_DIR/examples/covtype_adaptive"
CKPT_DIR="$BUILD_DIR/crash_smoke_ckpt"
COMMON_ARGS=(--scale 0.005 --budget 4)

for ((i = 0; i < ITERATIONS; ++i)); do
  # Sweep the crash point across the run; alternate the crashing worker.
  frac=$(awk -v i="$i" -v n="$ITERATIONS" \
    'BEGIN { printf "%.3f", 0.10 + 0.80 * i / (n - 1) }')
  worker=$((i % 2))
  rm -rf "$CKPT_DIR"
  echo "=== iteration $i: crash worker=$worker atfrac=$frac ==="

  crash_log="$BUILD_DIR/crash_smoke_$i.log"
  crash_metrics="$BUILD_DIR/crash_smoke_${i}_metrics.jsonl"
  set +e
  timeout "$RUN_TIMEOUT" "$ADAPTIVE" "${COMMON_ARGS[@]}" \
    --checkpoint-dir "$CKPT_DIR" \
    --fault-plan "crash:worker=$worker,atfrac=$frac" \
    --metrics-out "$crash_metrics" --metrics-interval 50 \
    >"$crash_log" 2>&1
  status=$?
  set -e

  # The killed run's metrics stream is the crash-consistency half of the
  # observability contract: every completed JSONL line must still parse;
  # only the final line may be torn by the SIGKILL. (A run killed before
  # its first 50ms snapshot leaves the file empty — nothing to check.)
  if [[ -s "$crash_metrics" ]]; then
    python3 scripts/validate_trace.py \
      --metrics "$crash_metrics" --allow-torn-tail
  fi
  if [[ $status -ne 137 && $status -ne 0 ]]; then
    echo "FAIL: crash leg exited $status (expected 137 SIGKILL or 0)"
    tail -25 "$crash_log"
    exit 1
  fi

  had_checkpoint=0
  compgen -G "$CKPT_DIR/ckpt-*.hetsgd" >/dev/null && had_checkpoint=1

  resume_log="$BUILD_DIR/crash_smoke_${i}_resume.log"
  resume_trace="$BUILD_DIR/crash_smoke_${i}_trace.json"
  if ! timeout "$RUN_TIMEOUT" "$ADAPTIVE" "${COMMON_ARGS[@]}" \
      --checkpoint-dir "$CKPT_DIR" --resume "$CKPT_DIR" \
      --trace-out "$resume_trace" \
      >"$resume_log" 2>&1; then
    echo "FAIL: resume leg crashed, hung, or hit non-finite loss"
    tail -25 "$resume_log"
    exit 1
  fi
  # The resume leg runs to completion, so its trace must be a loadable
  # timeline with work flowing coordinator -> worker.
  python3 scripts/validate_trace.py --trace "$resume_trace" \
    --require-span execute --require-flow
  if [[ $had_checkpoint -eq 1 ]] \
      && ! grep -q "resumed from checkpoint" "$resume_log"; then
    echo "FAIL: checkpoints existed but the restart did not resume"
    tail -25 "$resume_log"
    exit 1
  fi
  if ! grep -q "final loss" "$resume_log"; then
    echo "FAIL: resume leg produced no final loss"
    tail -25 "$resume_log"
    exit 1
  fi
  if [[ $status -eq 137 ]]; then
    killed="killed as planned"
  else
    killed="finished before the crash point"
  fi
  if [[ $had_checkpoint -eq 1 ]]; then
    echo "  crash leg $killed; resumed from checkpoint: OK"
  else
    echo "  crash leg $killed before the first cut; fresh restart: OK"
  fi
done

echo "=== $ITERATIONS kill+resume iterations, all restarts recovered ==="
