# Empty compiler generated dependencies file for hetsgd_msg.
# This may be replaced when dependencies are built.
