
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/msg/actor.cpp" "src/msg/CMakeFiles/hetsgd_msg.dir/actor.cpp.o" "gcc" "src/msg/CMakeFiles/hetsgd_msg.dir/actor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hetsgd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/concurrent/CMakeFiles/hetsgd_concurrent.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
