file(REMOVE_RECURSE
  "CMakeFiles/hetsgd_msg.dir/actor.cpp.o"
  "CMakeFiles/hetsgd_msg.dir/actor.cpp.o.d"
  "libhetsgd_msg.a"
  "libhetsgd_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetsgd_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
