file(REMOVE_RECURSE
  "libhetsgd_msg.a"
)
