file(REMOVE_RECURSE
  "CMakeFiles/hetsgd_common.dir/cli.cpp.o"
  "CMakeFiles/hetsgd_common.dir/cli.cpp.o.d"
  "CMakeFiles/hetsgd_common.dir/csv_writer.cpp.o"
  "CMakeFiles/hetsgd_common.dir/csv_writer.cpp.o.d"
  "CMakeFiles/hetsgd_common.dir/logging.cpp.o"
  "CMakeFiles/hetsgd_common.dir/logging.cpp.o.d"
  "CMakeFiles/hetsgd_common.dir/rng.cpp.o"
  "CMakeFiles/hetsgd_common.dir/rng.cpp.o.d"
  "CMakeFiles/hetsgd_common.dir/stats.cpp.o"
  "CMakeFiles/hetsgd_common.dir/stats.cpp.o.d"
  "libhetsgd_common.a"
  "libhetsgd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetsgd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
