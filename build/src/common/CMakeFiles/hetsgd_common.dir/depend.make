# Empty dependencies file for hetsgd_common.
# This may be replaced when dependencies are built.
