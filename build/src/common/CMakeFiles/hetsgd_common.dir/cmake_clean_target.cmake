file(REMOVE_RECURSE
  "libhetsgd_common.a"
)
