file(REMOVE_RECURSE
  "libhetsgd_nn.a"
)
