file(REMOVE_RECURSE
  "CMakeFiles/hetsgd_nn.dir/activation.cpp.o"
  "CMakeFiles/hetsgd_nn.dir/activation.cpp.o.d"
  "CMakeFiles/hetsgd_nn.dir/device_mlp.cpp.o"
  "CMakeFiles/hetsgd_nn.dir/device_mlp.cpp.o.d"
  "CMakeFiles/hetsgd_nn.dir/loss.cpp.o"
  "CMakeFiles/hetsgd_nn.dir/loss.cpp.o.d"
  "CMakeFiles/hetsgd_nn.dir/metrics.cpp.o"
  "CMakeFiles/hetsgd_nn.dir/metrics.cpp.o.d"
  "CMakeFiles/hetsgd_nn.dir/mlp.cpp.o"
  "CMakeFiles/hetsgd_nn.dir/mlp.cpp.o.d"
  "CMakeFiles/hetsgd_nn.dir/model.cpp.o"
  "CMakeFiles/hetsgd_nn.dir/model.cpp.o.d"
  "CMakeFiles/hetsgd_nn.dir/optimizer.cpp.o"
  "CMakeFiles/hetsgd_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/hetsgd_nn.dir/serialize.cpp.o"
  "CMakeFiles/hetsgd_nn.dir/serialize.cpp.o.d"
  "libhetsgd_nn.a"
  "libhetsgd_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetsgd_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
