# Empty dependencies file for hetsgd_nn.
# This may be replaced when dependencies are built.
