file(REMOVE_RECURSE
  "CMakeFiles/hetsgd_core.dir/adaptive.cpp.o"
  "CMakeFiles/hetsgd_core.dir/adaptive.cpp.o.d"
  "CMakeFiles/hetsgd_core.dir/config.cpp.o"
  "CMakeFiles/hetsgd_core.dir/config.cpp.o.d"
  "CMakeFiles/hetsgd_core.dir/coordinator.cpp.o"
  "CMakeFiles/hetsgd_core.dir/coordinator.cpp.o.d"
  "CMakeFiles/hetsgd_core.dir/cost_model.cpp.o"
  "CMakeFiles/hetsgd_core.dir/cost_model.cpp.o.d"
  "CMakeFiles/hetsgd_core.dir/cpu_worker.cpp.o"
  "CMakeFiles/hetsgd_core.dir/cpu_worker.cpp.o.d"
  "CMakeFiles/hetsgd_core.dir/gpu_worker.cpp.o"
  "CMakeFiles/hetsgd_core.dir/gpu_worker.cpp.o.d"
  "CMakeFiles/hetsgd_core.dir/minibatch_reference.cpp.o"
  "CMakeFiles/hetsgd_core.dir/minibatch_reference.cpp.o.d"
  "CMakeFiles/hetsgd_core.dir/svrg.cpp.o"
  "CMakeFiles/hetsgd_core.dir/svrg.cpp.o.d"
  "CMakeFiles/hetsgd_core.dir/trainer.cpp.o"
  "CMakeFiles/hetsgd_core.dir/trainer.cpp.o.d"
  "CMakeFiles/hetsgd_core.dir/update_ledger.cpp.o"
  "CMakeFiles/hetsgd_core.dir/update_ledger.cpp.o.d"
  "CMakeFiles/hetsgd_core.dir/utilization.cpp.o"
  "CMakeFiles/hetsgd_core.dir/utilization.cpp.o.d"
  "libhetsgd_core.a"
  "libhetsgd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetsgd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
