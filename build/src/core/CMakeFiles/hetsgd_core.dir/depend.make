# Empty dependencies file for hetsgd_core.
# This may be replaced when dependencies are built.
