file(REMOVE_RECURSE
  "libhetsgd_core.a"
)
