
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive.cpp" "src/core/CMakeFiles/hetsgd_core.dir/adaptive.cpp.o" "gcc" "src/core/CMakeFiles/hetsgd_core.dir/adaptive.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/hetsgd_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/hetsgd_core.dir/config.cpp.o.d"
  "/root/repo/src/core/coordinator.cpp" "src/core/CMakeFiles/hetsgd_core.dir/coordinator.cpp.o" "gcc" "src/core/CMakeFiles/hetsgd_core.dir/coordinator.cpp.o.d"
  "/root/repo/src/core/cost_model.cpp" "src/core/CMakeFiles/hetsgd_core.dir/cost_model.cpp.o" "gcc" "src/core/CMakeFiles/hetsgd_core.dir/cost_model.cpp.o.d"
  "/root/repo/src/core/cpu_worker.cpp" "src/core/CMakeFiles/hetsgd_core.dir/cpu_worker.cpp.o" "gcc" "src/core/CMakeFiles/hetsgd_core.dir/cpu_worker.cpp.o.d"
  "/root/repo/src/core/gpu_worker.cpp" "src/core/CMakeFiles/hetsgd_core.dir/gpu_worker.cpp.o" "gcc" "src/core/CMakeFiles/hetsgd_core.dir/gpu_worker.cpp.o.d"
  "/root/repo/src/core/minibatch_reference.cpp" "src/core/CMakeFiles/hetsgd_core.dir/minibatch_reference.cpp.o" "gcc" "src/core/CMakeFiles/hetsgd_core.dir/minibatch_reference.cpp.o.d"
  "/root/repo/src/core/svrg.cpp" "src/core/CMakeFiles/hetsgd_core.dir/svrg.cpp.o" "gcc" "src/core/CMakeFiles/hetsgd_core.dir/svrg.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/core/CMakeFiles/hetsgd_core.dir/trainer.cpp.o" "gcc" "src/core/CMakeFiles/hetsgd_core.dir/trainer.cpp.o.d"
  "/root/repo/src/core/update_ledger.cpp" "src/core/CMakeFiles/hetsgd_core.dir/update_ledger.cpp.o" "gcc" "src/core/CMakeFiles/hetsgd_core.dir/update_ledger.cpp.o.d"
  "/root/repo/src/core/utilization.cpp" "src/core/CMakeFiles/hetsgd_core.dir/utilization.cpp.o" "gcc" "src/core/CMakeFiles/hetsgd_core.dir/utilization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hetsgd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hetsgd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/concurrent/CMakeFiles/hetsgd_concurrent.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/hetsgd_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/hetsgd_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hetsgd_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hetsgd_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
