file(REMOVE_RECURSE
  "libhetsgd_data.a"
)
