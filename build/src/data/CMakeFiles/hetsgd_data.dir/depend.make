# Empty dependencies file for hetsgd_data.
# This may be replaced when dependencies are built.
