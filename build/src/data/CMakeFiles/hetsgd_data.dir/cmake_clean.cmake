file(REMOVE_RECURSE
  "CMakeFiles/hetsgd_data.dir/dataset.cpp.o"
  "CMakeFiles/hetsgd_data.dir/dataset.cpp.o.d"
  "CMakeFiles/hetsgd_data.dir/libsvm_io.cpp.o"
  "CMakeFiles/hetsgd_data.dir/libsvm_io.cpp.o.d"
  "CMakeFiles/hetsgd_data.dir/split.cpp.o"
  "CMakeFiles/hetsgd_data.dir/split.cpp.o.d"
  "CMakeFiles/hetsgd_data.dir/synthetic.cpp.o"
  "CMakeFiles/hetsgd_data.dir/synthetic.cpp.o.d"
  "libhetsgd_data.a"
  "libhetsgd_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetsgd_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
