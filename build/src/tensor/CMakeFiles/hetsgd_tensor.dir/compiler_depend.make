# Empty compiler generated dependencies file for hetsgd_tensor.
# This may be replaced when dependencies are built.
