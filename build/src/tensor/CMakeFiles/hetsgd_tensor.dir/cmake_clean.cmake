file(REMOVE_RECURSE
  "CMakeFiles/hetsgd_tensor.dir/gemm.cpp.o"
  "CMakeFiles/hetsgd_tensor.dir/gemm.cpp.o.d"
  "CMakeFiles/hetsgd_tensor.dir/matrix.cpp.o"
  "CMakeFiles/hetsgd_tensor.dir/matrix.cpp.o.d"
  "CMakeFiles/hetsgd_tensor.dir/ops.cpp.o"
  "CMakeFiles/hetsgd_tensor.dir/ops.cpp.o.d"
  "libhetsgd_tensor.a"
  "libhetsgd_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetsgd_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
