file(REMOVE_RECURSE
  "libhetsgd_tensor.a"
)
