file(REMOVE_RECURSE
  "libhetsgd_concurrent.a"
)
