# Empty compiler generated dependencies file for hetsgd_concurrent.
# This may be replaced when dependencies are built.
