file(REMOVE_RECURSE
  "CMakeFiles/hetsgd_concurrent.dir/thread_pool.cpp.o"
  "CMakeFiles/hetsgd_concurrent.dir/thread_pool.cpp.o.d"
  "libhetsgd_concurrent.a"
  "libhetsgd_concurrent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetsgd_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
