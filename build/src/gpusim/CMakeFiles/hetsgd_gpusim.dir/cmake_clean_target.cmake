file(REMOVE_RECURSE
  "libhetsgd_gpusim.a"
)
