# Empty compiler generated dependencies file for hetsgd_gpusim.
# This may be replaced when dependencies are built.
