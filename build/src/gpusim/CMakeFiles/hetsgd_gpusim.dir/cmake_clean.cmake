file(REMOVE_RECURSE
  "CMakeFiles/hetsgd_gpusim.dir/device.cpp.o"
  "CMakeFiles/hetsgd_gpusim.dir/device.cpp.o.d"
  "CMakeFiles/hetsgd_gpusim.dir/device_memory.cpp.o"
  "CMakeFiles/hetsgd_gpusim.dir/device_memory.cpp.o.d"
  "CMakeFiles/hetsgd_gpusim.dir/perf_model.cpp.o"
  "CMakeFiles/hetsgd_gpusim.dir/perf_model.cpp.o.d"
  "CMakeFiles/hetsgd_gpusim.dir/unified_memory.cpp.o"
  "CMakeFiles/hetsgd_gpusim.dir/unified_memory.cpp.o.d"
  "libhetsgd_gpusim.a"
  "libhetsgd_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetsgd_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
