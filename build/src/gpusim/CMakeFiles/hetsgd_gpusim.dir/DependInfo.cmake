
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/device.cpp" "src/gpusim/CMakeFiles/hetsgd_gpusim.dir/device.cpp.o" "gcc" "src/gpusim/CMakeFiles/hetsgd_gpusim.dir/device.cpp.o.d"
  "/root/repo/src/gpusim/device_memory.cpp" "src/gpusim/CMakeFiles/hetsgd_gpusim.dir/device_memory.cpp.o" "gcc" "src/gpusim/CMakeFiles/hetsgd_gpusim.dir/device_memory.cpp.o.d"
  "/root/repo/src/gpusim/perf_model.cpp" "src/gpusim/CMakeFiles/hetsgd_gpusim.dir/perf_model.cpp.o" "gcc" "src/gpusim/CMakeFiles/hetsgd_gpusim.dir/perf_model.cpp.o.d"
  "/root/repo/src/gpusim/unified_memory.cpp" "src/gpusim/CMakeFiles/hetsgd_gpusim.dir/unified_memory.cpp.o" "gcc" "src/gpusim/CMakeFiles/hetsgd_gpusim.dir/unified_memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hetsgd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hetsgd_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
