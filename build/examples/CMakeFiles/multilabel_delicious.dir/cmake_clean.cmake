file(REMOVE_RECURSE
  "CMakeFiles/multilabel_delicious.dir/multilabel_delicious.cpp.o"
  "CMakeFiles/multilabel_delicious.dir/multilabel_delicious.cpp.o.d"
  "multilabel_delicious"
  "multilabel_delicious.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multilabel_delicious.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
