# Empty dependencies file for multilabel_delicious.
# This may be replaced when dependencies are built.
