file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_eval.dir/checkpoint_eval.cpp.o"
  "CMakeFiles/checkpoint_eval.dir/checkpoint_eval.cpp.o.d"
  "checkpoint_eval"
  "checkpoint_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
