# Empty dependencies file for checkpoint_eval.
# This may be replaced when dependencies are built.
