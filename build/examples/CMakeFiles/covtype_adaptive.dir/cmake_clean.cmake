file(REMOVE_RECURSE
  "CMakeFiles/covtype_adaptive.dir/covtype_adaptive.cpp.o"
  "CMakeFiles/covtype_adaptive.dir/covtype_adaptive.cpp.o.d"
  "covtype_adaptive"
  "covtype_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/covtype_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
