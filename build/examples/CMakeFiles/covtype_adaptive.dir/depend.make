# Empty dependencies file for covtype_adaptive.
# This may be replaced when dependencies are built.
