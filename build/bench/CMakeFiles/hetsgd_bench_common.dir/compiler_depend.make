# Empty compiler generated dependencies file for hetsgd_bench_common.
# This may be replaced when dependencies are built.
