file(REMOVE_RECURSE
  "CMakeFiles/hetsgd_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/hetsgd_bench_common.dir/bench_common.cpp.o.d"
  "libhetsgd_bench_common.a"
  "libhetsgd_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetsgd_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
