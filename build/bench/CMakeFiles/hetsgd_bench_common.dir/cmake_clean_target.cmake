file(REMOVE_RECURSE
  "libhetsgd_bench_common.a"
)
