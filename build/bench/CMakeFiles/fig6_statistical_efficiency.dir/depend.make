# Empty dependencies file for fig6_statistical_efficiency.
# This may be replaced when dependencies are built.
