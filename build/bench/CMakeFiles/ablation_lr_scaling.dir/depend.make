# Empty dependencies file for ablation_lr_scaling.
# This may be replaced when dependencies are built.
