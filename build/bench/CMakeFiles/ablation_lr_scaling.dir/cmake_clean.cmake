file(REMOVE_RECURSE
  "CMakeFiles/ablation_lr_scaling.dir/ablation_lr_scaling.cpp.o"
  "CMakeFiles/ablation_lr_scaling.dir/ablation_lr_scaling.cpp.o.d"
  "ablation_lr_scaling"
  "ablation_lr_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lr_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
