# Empty compiler generated dependencies file for ablation_cpu_lanes.
# This may be replaced when dependencies are built.
