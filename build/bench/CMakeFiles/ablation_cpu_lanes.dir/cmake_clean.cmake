file(REMOVE_RECURSE
  "CMakeFiles/ablation_cpu_lanes.dir/ablation_cpu_lanes.cpp.o"
  "CMakeFiles/ablation_cpu_lanes.dir/ablation_cpu_lanes.cpp.o.d"
  "ablation_cpu_lanes"
  "ablation_cpu_lanes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cpu_lanes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
