file(REMOVE_RECURSE
  "CMakeFiles/ablation_svrg.dir/ablation_svrg.cpp.o"
  "CMakeFiles/ablation_svrg.dir/ablation_svrg.cpp.o.d"
  "ablation_svrg"
  "ablation_svrg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_svrg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
