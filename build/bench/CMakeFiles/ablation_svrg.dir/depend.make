# Empty dependencies file for ablation_svrg.
# This may be replaced when dependencies are built.
