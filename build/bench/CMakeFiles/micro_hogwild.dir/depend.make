# Empty dependencies file for micro_hogwild.
# This may be replaced when dependencies are built.
