file(REMOVE_RECURSE
  "CMakeFiles/micro_hogwild.dir/micro_hogwild.cpp.o"
  "CMakeFiles/micro_hogwild.dir/micro_hogwild.cpp.o.d"
  "micro_hogwild"
  "micro_hogwild.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_hogwild.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
