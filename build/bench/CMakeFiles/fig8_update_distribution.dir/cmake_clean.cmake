file(REMOVE_RECURSE
  "CMakeFiles/fig8_update_distribution.dir/fig8_update_distribution.cpp.o"
  "CMakeFiles/fig8_update_distribution.dir/fig8_update_distribution.cpp.o.d"
  "fig8_update_distribution"
  "fig8_update_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_update_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
