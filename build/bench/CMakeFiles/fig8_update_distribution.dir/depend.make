# Empty dependencies file for fig8_update_distribution.
# This may be replaced when dependencies are built.
