file(REMOVE_RECURSE
  "CMakeFiles/ledger_util_test.dir/ledger_util_test.cpp.o"
  "CMakeFiles/ledger_util_test.dir/ledger_util_test.cpp.o.d"
  "ledger_util_test"
  "ledger_util_test.pdb"
  "ledger_util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ledger_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
