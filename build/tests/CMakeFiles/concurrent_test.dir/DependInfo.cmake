
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/concurrent_test.cpp" "tests/CMakeFiles/concurrent_test.dir/concurrent_test.cpp.o" "gcc" "tests/CMakeFiles/concurrent_test.dir/concurrent_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hetsgd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/hetsgd_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/concurrent/CMakeFiles/hetsgd_concurrent.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hetsgd_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/hetsgd_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hetsgd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hetsgd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hetsgd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
