file(REMOVE_RECURSE
  "CMakeFiles/csv_cli_test.dir/csv_cli_test.cpp.o"
  "CMakeFiles/csv_cli_test.dir/csv_cli_test.cpp.o.d"
  "csv_cli_test"
  "csv_cli_test.pdb"
  "csv_cli_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_cli_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
