# Empty dependencies file for csv_cli_test.
# This may be replaced when dependencies are built.
