# Empty dependencies file for libsvm_test.
# This may be replaced when dependencies are built.
