# Empty compiler generated dependencies file for device_mlp_test.
# This may be replaced when dependencies are built.
