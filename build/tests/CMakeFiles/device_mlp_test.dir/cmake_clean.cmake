file(REMOVE_RECURSE
  "CMakeFiles/device_mlp_test.dir/device_mlp_test.cpp.o"
  "CMakeFiles/device_mlp_test.dir/device_mlp_test.cpp.o.d"
  "device_mlp_test"
  "device_mlp_test.pdb"
  "device_mlp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_mlp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
