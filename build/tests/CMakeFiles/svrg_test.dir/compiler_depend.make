# Empty compiler generated dependencies file for svrg_test.
# This may be replaced when dependencies are built.
