file(REMOVE_RECURSE
  "CMakeFiles/svrg_test.dir/svrg_test.cpp.o"
  "CMakeFiles/svrg_test.dir/svrg_test.cpp.o.d"
  "svrg_test"
  "svrg_test.pdb"
  "svrg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svrg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
