// Tiny command-line flag parser for benches and examples.
//
// Supports --key value and --key=value forms plus boolean switches.
// Unknown flags abort with a usage message listing registered flags — a
// mistyped sweep parameter must not silently run the default experiment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hetsgd {

class CliParser {
 public:
  CliParser(std::string program, std::string description);

  // Registration. The returned pointer stays owned by the parser; read the
  // value after parse(). Defaults are used when the flag is absent.
  void add_flag(const std::string& name, bool* value, const std::string& help);
  void add_int(const std::string& name, std::int64_t* value,
               const std::string& help);
  void add_double(const std::string& name, double* value,
                  const std::string& help);
  void add_string(const std::string& name, std::string* value,
                  const std::string& help);

  // Parses argv. On --help prints usage and returns false (caller exits 0).
  // On error prints usage to stderr and aborts.
  bool parse(int argc, char** argv);

  std::string usage() const;

 private:
  enum class Kind { kBool, kInt, kDouble, kString };
  struct Flag {
    std::string name;
    Kind kind;
    void* target;
    std::string help;
    std::string default_repr;
  };

  const Flag* find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::vector<Flag> flags_;
};

}  // namespace hetsgd
