// Streaming and batch statistics helpers used by metrics and benchmarks.
#pragma once

#include <cstddef>
#include <vector>

namespace hetsgd {

// Welford's online algorithm: numerically stable running mean/variance.
class RunningStat {
 public:
  void add(double x);
  void merge(const RunningStat& other);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return n_ > 0 ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Linear-interpolated percentile of an unsorted sample (copies + sorts).
// p in [0, 100]. Returns 0 for an empty sample.
double percentile(std::vector<double> values, double p);

// Simple exponential moving average for rate smoothing.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void add(double x) {
    if (!initialized_) {
      value_ = x;
      initialized_ = true;
    } else {
      value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
  }

  bool initialized() const { return initialized_; }
  double value() const { return value_; }
  void reset() { initialized_ = false; value_ = 0.0; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace hetsgd
