#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/macros.hpp"

namespace hetsgd {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) {
    s = splitmix64(sm);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  HETSGD_ASSERT(bound > 0, "next_below requires bound > 0");
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t t = -bound % bound;
    while (l < t) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to keep log finite.
  double u1 = 1.0 - next_double();
  double u2 = next_double();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) {
  return next_double() < p;
}

void Rng::shuffle(std::vector<std::uint32_t>& v) {
  for (std::size_t i = v.size(); i > 1; --i) {
    std::size_t j = next_below(i);
    std::swap(v[i - 1], v[j]);
  }
}

void Rng::shuffle(std::vector<std::size_t>& v) {
  for (std::size_t i = v.size(); i > 1; --i) {
    std::size_t j = next_below(i);
    std::swap(v[i - 1], v[j]);
  }
}

Rng Rng::fork(std::uint64_t stream) const {
  std::uint64_t seed = s_[0] ^ rotl(s_[2], 29) ^ (stream * 0xd1342543de82ef95ULL);
  return Rng(seed);
}

RngState Rng::state() const {
  RngState st;
  st.s[0] = s_[0];
  st.s[1] = s_[1];
  st.s[2] = s_[2];
  st.s[3] = s_[3];
  st.cached_normal = cached_normal_;
  st.has_cached_normal = has_cached_normal_;
  return st;
}

void Rng::set_state(const RngState& state) {
  s_[0] = state.s[0];
  s_[1] = state.s[1];
  s_[2] = state.s[2];
  s_[3] = state.s[3];
  cached_normal_ = state.cached_normal;
  has_cached_normal_ = state.has_cached_normal;
}

}  // namespace hetsgd
