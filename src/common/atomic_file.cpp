#include "common/atomic_file.hpp"

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace hetsgd {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void ByteWriter::write_bytes(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), bytes, bytes + size);
}

void ByteWriter::write_u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::write_u32(std::uint32_t v) { write_bytes(&v, sizeof(v)); }

void ByteWriter::write_u64(std::uint64_t v) { write_bytes(&v, sizeof(v)); }

void ByteWriter::write_i64(std::int64_t v) { write_bytes(&v, sizeof(v)); }

void ByteWriter::write_f64(double v) { write_bytes(&v, sizeof(v)); }

void ByteWriter::write_string(const std::string& s) {
  write_u64(static_cast<std::uint64_t>(s.size()));
  write_bytes(s.data(), s.size());
}

bool ByteReader::read_bytes(void* out, std::size_t size) {
  if (failed_ || size > size_ - pos_) {
    failed_ = true;
    return false;
  }
  std::memcpy(out, data_ + pos_, size);
  pos_ += size;
  return true;
}

bool ByteReader::read_u8(std::uint8_t* v) { return read_bytes(v, sizeof(*v)); }

bool ByteReader::read_u32(std::uint32_t* v) {
  return read_bytes(v, sizeof(*v));
}

bool ByteReader::read_u64(std::uint64_t* v) {
  return read_bytes(v, sizeof(*v));
}

bool ByteReader::read_i64(std::int64_t* v) {
  return read_bytes(v, sizeof(*v));
}

bool ByteReader::read_f64(double* v) { return read_bytes(v, sizeof(*v)); }

bool ByteReader::read_string(std::string* s) {
  std::uint64_t len = 0;
  if (!read_u64(&len)) return false;
  if (len > remaining()) {
    failed_ = true;
    return false;
  }
  s->assign(reinterpret_cast<const char*>(data_ + pos_),
            static_cast<std::size_t>(len));
  pos_ += static_cast<std::size_t>(len);
  return true;
}

bool atomic_write_file(const std::string& path, const void* data,
                       std::size_t size, std::string* error) {
  const std::string tmp = path + ".tmp";
  {
    // The one sanctioned raw-ofstream write site for durable state; every
    // other writer must route through this helper (enforced by
    // tools/lint/hetsgd_lint.py ckpt-ofstream).
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      if (error != nullptr) *error = "cannot open " + tmp + " for writing";
      return false;
    }
    out.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(size));
    out.flush();
    if (!out.good()) {
      if (error != nullptr) {
        *error = "write to " + tmp + " failed (disk full or I/O error)";
      }
      out.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) *error = "rename " + tmp + " -> " + path + " failed";
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool read_file(const std::string& path, std::vector<std::uint8_t>* out,
               std::string* error) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.is_open()) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  const std::streamsize size = in.tellg();
  if (size < 0) {
    if (error != nullptr) *error = "cannot stat " + path;
    return false;
  }
  out->resize(static_cast<std::size_t>(size));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(out->data()), size);
  if (!in.good() && size > 0) {
    if (error != nullptr) *error = "short read from " + path;
    return false;
  }
  return true;
}

}  // namespace hetsgd
