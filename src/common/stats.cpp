#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/macros.hpp"

namespace hetsgd {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel merge.
  double delta = other.mean_ - mean_;
  std::size_t total = n_ + other.n_;
  double na = static_cast<double>(n_);
  double nb = static_cast<double>(other.n_);
  mean_ += delta * nb / static_cast<double>(total);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(total);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ = total;
}

void RunningStat::reset() { *this = RunningStat{}; }

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  HETSGD_ASSERT(p >= 0.0 && p <= 100.0, "percentile p out of [0,100]");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace hetsgd
