// Minimal thread-safe leveled logger.
//
// The framework's coordinator and workers run as free-standing threads; all
// diagnostics funnel through here so interleaved lines stay intact.
#pragma once

#include <cstdarg>
#include <string>

namespace hetsgd {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

// Global threshold; messages below it are dropped. Defaults to kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

// Parses "trace"/"debug"/"info"/"warn"/"error"/"off"; returns false on an
// unknown name (level unchanged).
bool parse_log_level(const std::string& name, LogLevel& out);

// printf-style logging. `tag` identifies the subsystem ("coord", "cpu0", ...).
void log_message(LogLevel level, const char* tag, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

#define HETSGD_LOG_TRACE(tag, ...) \
  ::hetsgd::log_message(::hetsgd::LogLevel::kTrace, tag, __VA_ARGS__)
#define HETSGD_LOG_DEBUG(tag, ...) \
  ::hetsgd::log_message(::hetsgd::LogLevel::kDebug, tag, __VA_ARGS__)
#define HETSGD_LOG_INFO(tag, ...) \
  ::hetsgd::log_message(::hetsgd::LogLevel::kInfo, tag, __VA_ARGS__)
#define HETSGD_LOG_WARN(tag, ...) \
  ::hetsgd::log_message(::hetsgd::LogLevel::kWarn, tag, __VA_ARGS__)
#define HETSGD_LOG_ERROR(tag, ...) \
  ::hetsgd::log_message(::hetsgd::LogLevel::kError, tag, __VA_ARGS__)

}  // namespace hetsgd
