#include "common/csv_writer.hpp"

#include <cstdio>

#include "common/macros.hpp"

namespace hetsgd {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& columns)
    : path_(path), out_(path), width_(columns.size()) {
  HETSGD_ASSERT(out_.good(), "failed to open CSV output file");
  HETSGD_ASSERT(!columns.empty(), "CSV requires at least one column");
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << columns[i];
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<double>& values) {
  HETSGD_ASSERT(values.size() == width_, "CSV row width mismatch");
  char buf[32];
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out_ << ',';
    std::snprintf(buf, sizeof(buf), "%.10g", values[i]);
    out_ << buf;
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& values) {
  HETSGD_ASSERT(values.size() == width_, "CSV row width mismatch");
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << values[i];
  }
  out_ << '\n';
}

void CsvWriter::flush() { out_.flush(); }

}  // namespace hetsgd
