#include "common/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace hetsgd {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {
  // --help is implicit.
}

void CliParser::add_flag(const std::string& name, bool* value,
                         const std::string& help) {
  flags_.push_back({name, Kind::kBool, value, help, *value ? "true" : "false"});
}

void CliParser::add_int(const std::string& name, std::int64_t* value,
                        const std::string& help) {
  flags_.push_back({name, Kind::kInt, value, help, std::to_string(*value)});
}

void CliParser::add_double(const std::string& name, double* value,
                           const std::string& help) {
  std::ostringstream os;
  os << *value;
  flags_.push_back({name, Kind::kDouble, value, help, os.str()});
}

void CliParser::add_string(const std::string& name, std::string* value,
                           const std::string& help) {
  flags_.push_back({name, Kind::kString, value, help, *value});
}

const CliParser::Flag* CliParser::find(const std::string& name) const {
  for (const auto& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

std::string CliParser::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nFlags:\n";
  for (const auto& f : flags_) {
    os << "  --" << f.name;
    switch (f.kind) {
      case Kind::kBool:   os << " (bool)"; break;
      case Kind::kInt:    os << " <int>"; break;
      case Kind::kDouble: os << " <float>"; break;
      case Kind::kString: os << " <string>"; break;
    }
    os << "  " << f.help << " [default: " << f.default_repr << "]\n";
  }
  os << "  --help  Show this message\n";
  return os.str();
}

bool CliParser::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      // hetsgd-lint: allow(stdout-logging) --help output is the program's
      // product here, not diagnostics; it belongs on stdout.
      std::printf("%s", usage().c_str());
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n%s", arg.c_str(),
                   usage().c_str());
      std::exit(2);
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    const Flag* flag = find(name);
    if (flag == nullptr) {
      std::fprintf(stderr, "unknown flag: --%s\n%s", name.c_str(),
                   usage().c_str());
      std::exit(2);
    }
    if (flag->kind == Kind::kBool && !has_value) {
      *static_cast<bool*>(flag->target) = true;
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s expects a value\n", name.c_str());
        std::exit(2);
      }
      value = argv[++i];
    }
    char* end = nullptr;
    switch (flag->kind) {
      case Kind::kBool:
        *static_cast<bool*>(flag->target) =
            (value == "true" || value == "1" || value == "yes");
        break;
      case Kind::kInt: {
        long long v = std::strtoll(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0') {
          std::fprintf(stderr, "flag --%s: invalid integer '%s'\n", name.c_str(),
                       value.c_str());
          std::exit(2);
        }
        *static_cast<std::int64_t*>(flag->target) = v;
        break;
      }
      case Kind::kDouble: {
        double v = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0') {
          std::fprintf(stderr, "flag --%s: invalid float '%s'\n", name.c_str(),
                       value.c_str());
          std::exit(2);
        }
        *static_cast<double*>(flag->target) = v;
        break;
      }
      case Kind::kString:
        *static_cast<std::string*>(flag->target) = value;
        break;
    }
  }
  return true;
}

}  // namespace hetsgd
