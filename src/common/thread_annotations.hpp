// Compile-time concurrency contract: Clang thread-safety capability macros
// and an annotated mutex, wired to `-Wthread-safety` (enabled automatically
// for clang builds; `-DHETSGD_WERROR=ON` promotes violations to errors).
//
// The framework's whole point is *deliberately* racy Hogwild updates next
// to carefully locked coordination state, so the line between "algorithm"
// and "bug" must live in the source: every mutex-protected field is
// declared `HETSGD_GUARDED_BY(mu_)`, every helper that assumes the lock is
// `HETSGD_REQUIRES(mu_)`, and the three sanctioned race sites carry a
// `// hetsgd-racy:` waiver (cross-checked against scripts/tsan.supp by
// tools/lint/hetsgd_lint.py). Unannotated sharing is then a compile error
// under clang instead of a reviewer judgment call. See DESIGN.md §10 for
// the capability map.
//
// Under gcc (which has no thread-safety analysis) every macro expands to
// nothing and AnnotatedMutex degrades to a plain std::mutex wrapper.
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#define HETSGD_TS_ATTR(x) __attribute__((x))
#else
#define HETSGD_TS_ATTR(x)  // gcc / MSVC: no thread-safety analysis
#endif

// Declares a class to be a capability (lockable) type.
#define HETSGD_CAPABILITY(x) HETSGD_TS_ATTR(capability(x))

// Declares an RAII type that acquires a capability in its constructor and
// releases it in its destructor.
#define HETSGD_SCOPED_CAPABILITY HETSGD_TS_ATTR(scoped_lockable)

// Data members readable/writable only while the capability is held.
#define HETSGD_GUARDED_BY(x) HETSGD_TS_ATTR(guarded_by(x))

// Pointer members whose *pointee* is protected by the capability (the
// pointer itself may additionally be GUARDED_BY).
#define HETSGD_PT_GUARDED_BY(x) HETSGD_TS_ATTR(pt_guarded_by(x))

// Functions callable only while holding the capability (and that do not
// release it).
#define HETSGD_REQUIRES(...) \
  HETSGD_TS_ATTR(requires_capability(__VA_ARGS__))

// Functions that acquire / release a capability.
#define HETSGD_ACQUIRE(...) \
  HETSGD_TS_ATTR(acquire_capability(__VA_ARGS__))
#define HETSGD_RELEASE(...) \
  HETSGD_TS_ATTR(release_capability(__VA_ARGS__))
#define HETSGD_TRY_ACQUIRE(...) \
  HETSGD_TS_ATTR(try_acquire_capability(__VA_ARGS__))

// Functions that must NOT be called while holding the capability (they
// acquire it themselves; calling with it held would self-deadlock on the
// non-recursive std::mutex underneath).
#define HETSGD_EXCLUDES(...) HETSGD_TS_ATTR(locks_excluded(__VA_ARGS__))

// Escape hatch: disables the analysis for one function. Reserved for the
// documented post-join accessors — results read by the main thread after
// Actor::join(), where the happens-before edge is the thread join itself,
// not a lock. Never use it to silence a warning on a hot path; add the
// lock or restructure instead.
#define HETSGD_NO_THREAD_SAFETY_ANALYSIS \
  HETSGD_TS_ATTR(no_thread_safety_analysis)

// Self-documenting alias for the post-join contract (see above).
#define HETSGD_POST_JOIN_ACCESS HETSGD_NO_THREAD_SAFETY_ANALYSIS

namespace hetsgd {

// std::mutex wearing capability annotations. Always lock through MutexLock
// (or lock()/unlock() in the rare manual case) so the analysis sees every
// acquisition; std::lock_guard<AnnotatedMutex> compiles but is invisible
// to the analysis under libstdc++ and is rejected by hetsgd-lint.
class HETSGD_CAPABILITY("mutex") AnnotatedMutex {
 public:
  AnnotatedMutex() = default;
  AnnotatedMutex(const AnnotatedMutex&) = delete;
  AnnotatedMutex& operator=(const AnnotatedMutex&) = delete;

  void lock() HETSGD_ACQUIRE() { mu_.lock(); }
  void unlock() HETSGD_RELEASE() { mu_.unlock(); }
  bool try_lock() HETSGD_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// RAII acquisition of an AnnotatedMutex, visible to the analysis.
// Condition waits use std::condition_variable_any directly on the
// AnnotatedMutex (it satisfies BasicLockable) inside a MutexLock scope:
//
//   MutexLock lock(mu_);
//   while (!ready_) cv_.wait(mu_);
class HETSGD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(AnnotatedMutex& mu) HETSGD_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~MutexLock() HETSGD_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  AnnotatedMutex& mu_;
};

}  // namespace hetsgd
