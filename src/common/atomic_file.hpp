// Crash-consistent file writing and checkpoint byte (de)serialization.
//
// A checkpoint that can be torn by a crash is worse than no checkpoint: a
// resume that trusts it silently corrupts the run. Every durable artifact
// in the framework therefore goes through atomic_write_file — write to a
// sibling temp file, flush, verify the stream, rename over the target — so
// a reader only ever observes the old complete file or the new complete
// file, never a prefix. CRC32 (computed over the serialized payload by the
// format layers in nn/serialize) catches the remaining corruption modes:
// bit rot, partial sector writes under power loss, hand-edited files.
//
// ByteWriter/ByteReader serialize checkpoint payloads in memory first:
// checkpoints are small (model + counters), a contiguous buffer makes the
// CRC trivial, and the atomic writer receives the payload as one blob.
// Endianness follows the host (checkpoints are not a wire format).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hetsgd {

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `size` bytes.
// `seed` chains incremental computations; pass the previous result.
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

// Accumulates a serialized payload in memory. Fixed-width little-struct
// encoding: integers and doubles are memcpy'd in host order.
class ByteWriter {
 public:
  void write_bytes(const void* data, std::size_t size);
  void write_u8(std::uint8_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v);
  void write_f64(double v);
  // u64 length prefix + raw bytes.
  void write_string(const std::string& s);

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

// Bounds-checked reader over a serialized payload. Every read returns
// false (and poisons the reader) on overrun instead of reading garbage —
// a truncated or corrupt checkpoint must fail soft, never abort.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  bool read_bytes(void* out, std::size_t size);
  bool read_u8(std::uint8_t* v);
  bool read_u32(std::uint32_t* v);
  bool read_u64(std::uint64_t* v);
  bool read_i64(std::int64_t* v);
  bool read_f64(double* v);
  // Rejects lengths beyond the remaining payload (corrupt length fields
  // must not turn into gigabyte allocations).
  bool read_string(std::string* s);

  std::size_t remaining() const { return size_ - pos_; }
  bool ok() const { return !failed_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

// Atomically replaces `path` with `size` bytes of `data`: writes
// `path`.tmp, flushes, verifies the stream after write+flush (a full disk
// or EIO must surface here, not as a silently truncated file), then
// renames over `path`. On any failure the temp file is removed, any
// previous file at `path` is left intact, *error receives the reason, and
// false is returned.
bool atomic_write_file(const std::string& path, const void* data,
                       std::size_t size, std::string* error);

// Reads the whole file into *out. Returns false with *error on a missing
// or unreadable file.
bool read_file(const std::string& path, std::vector<std::uint8_t>* out,
               std::string* error);

}  // namespace hetsgd
