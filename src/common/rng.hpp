// Deterministic random number generation.
//
// Every stochastic component of the framework (weight init, batch shuffling,
// synthetic data, perf-model jitter) draws from an explicitly-seeded Rng so
// experiments are reproducible bit-for-bit across runs. The generator is
// xoshiro256++, seeded through splitmix64 — fast, high quality, and trivially
// forkable into independent per-worker streams.
#pragma once

#include <cstdint>
#include <vector>

namespace hetsgd {

// splitmix64 step; used for seeding and as a cheap standalone mixer.
std::uint64_t splitmix64(std::uint64_t& state);

// Complete serializable generator state. Checkpoint/resume restores a
// stream mid-sequence, so the Box-Muller cache must travel with the
// xoshiro words — dropping it would shift every subsequent normal() draw.
struct RngState {
  std::uint64_t s[4] = {0, 0, 0, 0};
  double cached_normal = 0.0;
  bool has_cached_normal = false;

  friend bool operator==(const RngState& a, const RngState& b) {
    return a.s[0] == b.s[0] && a.s[1] == b.s[1] && a.s[2] == b.s[2] &&
           a.s[3] == b.s[3] && a.has_cached_normal == b.has_cached_normal &&
           (!a.has_cached_normal || a.cached_normal == b.cached_normal);
  }
  friend bool operator!=(const RngState& a, const RngState& b) {
    return !(a == b);
  }
};

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Returns the next 64 random bits.
  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double next_double();

  // Uniform integer in [0, bound) without modulo bias (Lemire reduction).
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform in [lo, hi).
  double uniform(double lo, double hi);

  // Standard normal via Box-Muller (cached second value).
  double normal();

  // Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  // Bernoulli trial with probability p of true.
  bool bernoulli(double p);

  // Fisher-Yates shuffle of indices [0, n).
  void shuffle(std::vector<std::uint32_t>& v);
  void shuffle(std::vector<std::size_t>& v);

  // Forks an independent generator: deterministic function of this
  // generator's state and `stream`, without perturbing this generator.
  Rng fork(std::uint64_t stream) const;

  // Snapshot / restore for checkpointing. A generator with a restored
  // state replays exactly the sequence the original would have produced.
  RngState state() const;
  void set_state(const RngState& state);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace hetsgd
