// Wall-clock timing utilities.
#pragma once

#include <chrono>
#include <cstdint>

namespace hetsgd {

// Monotonic stopwatch. Wall time is only used for utilization sampling and
// progress reporting; experiment time axes run on gpusim::VirtualClock.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  std::uint64_t elapsed_micros() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hetsgd
