// Core assertion and utility macros shared across the library.
#pragma once

#include <cstdio>
#include <cstdlib>

// HETSGD_ASSERT is active in all build types: the framework is a research
// testbed and silent corruption (e.g. a batch range past the dataset end)
// is far more expensive than the branch.
#define HETSGD_ASSERT(cond, msg)                                             \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "[hetsgd] assertion failed: %s\n  at %s:%d\n  %s\n", \
                   #cond, __FILE__, __LINE__, msg);                          \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define HETSGD_UNREACHABLE(msg)                                              \
  do {                                                                       \
    std::fprintf(stderr, "[hetsgd] unreachable: %s\n  at %s:%d\n", msg,      \
                 __FILE__, __LINE__);                                        \
    std::abort();                                                            \
  } while (0)

// Forces a function to stay a distinct frame. Used for the sanctioned
// Hogwild race helpers so ThreadSanitizer suppressions can match them by
// symbol name — inlining would fold them into the caller and widen (or
// silently disable) the suppression.
#if defined(_MSC_VER)
#define HETSGD_NOINLINE __declspec(noinline)
#elif defined(__GNUC__) || defined(__clang__)
#define HETSGD_NOINLINE __attribute__((noinline))
#else
#define HETSGD_NOINLINE
#endif

// Non-aliasing pointer qualifier for the vectorized kernels. Callers of
// functions whose parameters carry this qualifier must pass non-overlapping
// ranges (enforced by API contract, not at runtime).
#if defined(_MSC_VER)
#define HETSGD_RESTRICT __restrict
#elif defined(__GNUC__) || defined(__clang__)
#define HETSGD_RESTRICT __restrict__
#else
#define HETSGD_RESTRICT
#endif

namespace hetsgd {

// Cache line size used for alignment of concurrently-written data.
inline constexpr std::size_t kCacheLineSize = 64;

}  // namespace hetsgd
