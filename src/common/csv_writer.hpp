// CSV emission for benchmark series (one file per figure/table).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace hetsgd {

// Writes a header row once, then data rows. Values are formatted with
// enough precision to round-trip doubles. Not thread-safe; benchmarks emit
// from the harness thread only.
class CsvWriter {
 public:
  // Opens `path` for writing and emits the header. Aborts on I/O failure —
  // a benchmark that silently loses its output is worse than a crash.
  CsvWriter(const std::string& path, const std::vector<std::string>& columns);

  // Appends one row; the count must match the header width.
  void row(const std::vector<double>& values);

  // Mixed-type row: strings written verbatim.
  void row(const std::vector<std::string>& values);

  void flush();

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t width_;
};

}  // namespace hetsgd
