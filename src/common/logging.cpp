#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace hetsgd {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_io_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) {
  // Release/acquire so a thread that observes the new level also observes
  // everything the configuring thread did before raising it (free on
  // x86-64; a relaxed level read is not worth an unordered visibility
  // surprise on weaker machines).
  g_level.store(static_cast<int>(level), std::memory_order_release);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_acquire));
}

bool parse_log_level(const std::string& name, LogLevel& out) {
  if (name == "trace") { out = LogLevel::kTrace; return true; }
  if (name == "debug") { out = LogLevel::kDebug; return true; }
  if (name == "info")  { out = LogLevel::kInfo;  return true; }
  if (name == "warn")  { out = LogLevel::kWarn;  return true; }
  if (name == "error") { out = LogLevel::kError; return true; }
  if (name == "off")   { out = LogLevel::kOff;   return true; }
  return false;
}

void log_message(LogLevel level, const char* tag, const char* fmt, ...) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_acquire)) {
    return;
  }
  char body[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(body, sizeof(body), fmt, args);
  va_end(args);

  std::lock_guard<std::mutex> lock(g_io_mutex);
  std::fprintf(stderr, "[%s][%s] %s\n", level_name(level), tag, body);
}

}  // namespace hetsgd
