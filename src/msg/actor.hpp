// Actor: a long-lived thread with an MPSC mailbox.
//
// The coordinator and every worker in the framework is an Actor (§V-A:
// "the coordinator and workers are implemented as stand-alone system
// threads that exist over the entire duration of the program"). Messages
// are processed strictly in arrival order by the owning thread; all
// cross-thread communication goes through mailboxes, all bulk data through
// shared memory references.
//
// Concurrency contract:
//   - send() is the ONLY member safe to call from any thread; it delegates
//     to the internally-synchronized MpscQueue mailbox.
//   - start()/join() and the fields started_, thread_, idle_interval_ are
//     OWNER-THREAD-CONFINED: touched by the thread that constructed the
//     actor, before start() or after join().
//   - handle()/on_start()/on_stop()/on_idle()/on_handle_exception() run on
//     the actor thread only; subclass state they touch is actor-thread-
//     confined unless the subclass locks it (see core::Coordinator).
#pragma once

#include <chrono>
#include <string>
#include <thread>

#include "concurrent/mpsc_queue.hpp"
#include "msg/message.hpp"

namespace hetsgd::msg {

class Actor {
 public:
  explicit Actor(std::string name);
  virtual ~Actor();

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  // Spawns the message loop thread. Must be called exactly once.
  void start();

  // Blocks until the message loop exits (after a Shutdown was handled).
  void join();

  // Enqueues a message; thread-safe. Returns false if the mailbox closed.
  bool send(Envelope envelope);

  const std::string& name() const { return name_; }

 protected:
  // Handles one message on the actor thread. Return false to exit the loop.
  virtual bool handle(Envelope envelope) = 0;

  // Hooks around the loop, run on the actor thread.
  virtual void on_start() {}
  virtual void on_stop() {}

  // Called on the actor thread when a handle() call throws instead of
  // returning — the loop catches the exception rather than letting it
  // reach std::terminate. Return true to keep processing messages, false
  // to exit the loop (the default: log and stop). Workers override this to
  // convert the exception into a WorkerFault report for the coordinator.
  virtual bool on_handle_exception(const std::string& what);

  // Periodic callback when the mailbox has been idle for one tick of
  // set_idle_interval(). Return false to exit the loop. Lets the
  // coordinator run real-time deadline checks even when every worker has
  // gone silent. Never called unless an interval was set.
  virtual bool on_idle() { return true; }

  // Enables on_idle() ticks. Call before start().
  void set_idle_interval(std::chrono::milliseconds interval) {
    idle_interval_ = interval;
  }

 private:
  void run();

  std::string name_;
  concurrent::MpscQueue<Envelope> mailbox_;
  std::thread thread_;
  bool started_ = false;
  std::chrono::milliseconds idle_interval_{0};
};

}  // namespace hetsgd::msg
