#include "msg/actor.hpp"

#include <exception>
#include <utility>

#include "common/logging.hpp"
#include "common/macros.hpp"
#include "obs/trace.hpp"

namespace hetsgd::msg {

Actor::Actor(std::string name) : name_(std::move(name)) {}

Actor::~Actor() {
  // Subclasses must join before destruction; enforce rather than hang.
  HETSGD_ASSERT(!thread_.joinable(), "Actor destroyed while thread running");
}

void Actor::start() {
  HETSGD_ASSERT(!started_, "Actor::start called twice");
  started_ = true;
  thread_ = std::thread([this] { run(); });
}

void Actor::join() {
  if (thread_.joinable()) {
    thread_.join();
  }
}

bool Actor::send(Envelope envelope) {
  return mailbox_.push(std::move(envelope));
}

bool Actor::on_handle_exception(const std::string& what) {
  HETSGD_LOG_WARN(name_.c_str(), "message handler threw: %s", what.c_str());
  return false;
}

void Actor::run() {
  // Name this actor's track in any exported span trace.
  obs::Tracer::set_thread_name(name_);
  on_start();
  for (;;) {
    std::optional<Envelope> envelope;
    if (idle_interval_.count() > 0) {
      envelope = mailbox_.pop_for(idle_interval_);
      if (!envelope) {
        if (mailbox_.closed()) break;
        if (!on_idle()) break;  // idle tick asked to stop
        continue;
      }
    } else {
      envelope = mailbox_.pop();
      if (!envelope) break;
    }
    // A throwing handler must not std::terminate the process: faults are
    // data, not death. The hook decides whether the loop survives.
    bool keep_running = true;
    try {
      keep_running = handle(std::move(*envelope));
    } catch (const std::exception& e) {
      keep_running = on_handle_exception(e.what());
    } catch (...) {
      keep_running = on_handle_exception("non-std exception");
    }
    if (!keep_running) break;
  }
  mailbox_.close();
  on_stop();
  HETSGD_LOG_DEBUG(name_.c_str(), "actor loop exited");
}

}  // namespace hetsgd::msg
