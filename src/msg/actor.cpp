#include "msg/actor.hpp"

#include <utility>

#include "common/logging.hpp"
#include "common/macros.hpp"

namespace hetsgd::msg {

Actor::Actor(std::string name) : name_(std::move(name)) {}

Actor::~Actor() {
  // Subclasses must join before destruction; enforce rather than hang.
  HETSGD_ASSERT(!thread_.joinable(), "Actor destroyed while thread running");
}

void Actor::start() {
  HETSGD_ASSERT(!started_, "Actor::start called twice");
  started_ = true;
  thread_ = std::thread([this] { run(); });
}

void Actor::join() {
  if (thread_.joinable()) {
    thread_.join();
  }
}

bool Actor::send(Envelope envelope) {
  return mailbox_.push(std::move(envelope));
}

void Actor::run() {
  on_start();
  while (auto envelope = mailbox_.pop()) {
    if (!handle(std::move(*envelope))) {
      break;
    }
  }
  mailbox_.close();
  on_stop();
  HETSGD_LOG_DEBUG(name_.c_str(), "actor loop exited");
}

}  // namespace hetsgd::msg
