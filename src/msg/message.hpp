// Control messages exchanged between the coordinator and workers.
//
// This is the vocabulary of the paper's Figure 4: workers request work with
// ScheduleWork (carrying their update count, which Adaptive Hogbatch uses),
// the coordinator answers with ExecuteWork (carrying a batch reference —
// an index range into the shared training data, never a copy), and
// Shutdown tears the loop down. Data always travels by reference through
// shared memory; only these small structs flow through the queues.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace hetsgd::msg {

// Worker identifiers. The coordinator is not a worker; kCoordinator is used
// as the `from` field of coordinator-originated envelopes.
using WorkerId = std::int32_t;
inline constexpr WorkerId kCoordinator = -1;

// Worker -> coordinator: "I applied my update(s); give me the next batch."
// `updates` is the worker's cumulative number of model updates u^E —
// the adaptive controller's only input. `busy_vtime` is the virtual time
// the worker has spent computing, used by the utilization monitor.
struct ScheduleWork {
  WorkerId worker = 0;
  std::uint64_t updates = 0;
  double busy_vtime = 0.0;
  double clock_vtime = 0.0;  // worker's logical clock after the last batch
  // Average device utilization during the last batch (0 = initial request),
  // recorded by the utilization monitor for Fig. 7.
  double intensity = 0.0;
  // Examples processed in the last batch (0 = initial request).
  std::uint64_t examples = 0;
  // Replica staleness observed for the last batch: max |w_merge - w_upload|
  // over all parameters of the shared model (GPU workers only; §VI-B
  // "merging a local stale replica requires careful consideration").
  double staleness = 0.0;
  // Dispatch sequence number echoed from the completed ExecuteWork
  // (0 = no completed work). Lets the coordinator recognize late reports
  // for batches it already reclaimed after a deadline miss.
  std::uint64_t sequence = 0;
};

// Coordinator -> worker: "process examples [batch_begin, batch_begin+batch_size)
// of the current epoch's permutation with learning rate lr."
struct ExecuteWork {
  std::uint64_t batch_begin = 0;
  std::uint64_t batch_size = 0;
  double learning_rate = 0.0;
  std::uint64_t epoch = 0;
  // Earliest virtual time the batch may start (epoch flips introduce real
  // idle time: a worker that waited for the epoch barrier resumes at the
  // barrier's virtual time, not at its own stale clock).
  double not_before = 0.0;
  // Per-worker dispatch sequence number (1-based), echoed back in the
  // completion report for deadline/reclamation bookkeeping.
  std::uint64_t sequence = 0;
};

// Worker -> coordinator: "I hit a fault I cannot recover from locally"
// (e.g. device transfers still failing after capped-backoff retries, or an
// exception escaping the message handler). The coordinator reclaims the
// worker's in-flight batch and quarantines it.
struct WorkerFault {
  WorkerId worker = 0;
  // Worker's logical clock when the fault surfaced.
  double vtime = 0.0;
  std::string detail;
};

// Coordinator -> worker: drain and exit the message loop.
struct Shutdown {};

// Worker -> coordinator: acknowledges Shutdown (lets the coordinator join
// cleanly while workers own resources like device memory).
struct ShutdownAck {
  WorkerId worker = 0;
};

// Elastic membership (coordinator self-notifications). join_worker /
// retire_worker register the change under the coordinator's lock from the
// calling thread, then post these so the follow-up scheduling work
// (dispatching to the newcomer, reclaiming the retiree's in-flight batch)
// runs on the coordinator's own message loop like every other transition.
struct WorkerJoin {
  WorkerId worker = 0;
};

struct WorkerRetire {
  WorkerId worker = 0;
};

// Coordinator -> worker: "serialize your private training state." Sent at
// a checkpoint cut, when every worker is idle at the epoch barrier, so the
// reply captures a quiescent snapshot without perturbing the trajectory.
struct StateRequest {};

// Worker -> coordinator: the serialized private state (virtual clock,
// update counters, per-lane optimizer state). Opaque bytes: only the
// worker type that produced a blob can restore it.
struct StateReport {
  WorkerId worker = 0;
  std::vector<std::uint8_t> state;
};

using Message =
    std::variant<ScheduleWork, ExecuteWork, Shutdown, ShutdownAck, WorkerFault,
                 WorkerJoin, WorkerRetire, StateRequest, StateReport>;

// A message plus its sender.
struct Envelope {
  WorkerId from = kCoordinator;
  Message message;
};

}  // namespace hetsgd::msg
