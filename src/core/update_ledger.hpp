// Per-worker bookkeeping of model updates, batches, and virtual time.
//
// The coordinator maintains this from ScheduleWork messages; it is the
// data behind Fig. 8 (update distribution) and the adaptive controller's
// inputs.
//
// Concurrency contract: internally synchronized. Every field is guarded by
// `mu_` and annotated (-Wthread-safety rejects unlocked access); accessors
// return snapshots by value, never references into guarded state. During
// training only the coordinator thread calls in, so the uncontended lock
// costs ~20 ns per call; the locking exists so live-monitoring threads
// (metrics endpoints, the planned serving layer) can read a consistent
// ledger mid-run without a contract change.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "core/fault.hpp"
#include "backend/device_model.hpp"
#include "msg/message.hpp"
#include "tensor/types.hpp"

namespace hetsgd::core {

// One sample of the loss trajectory: virtual seconds, epochs-equivalent
// of processed examples, and the (sampled) training loss. Lives here —
// with the rest of the run bookkeeping — so the checkpoint layer can
// persist loss curves without pulling in the coordinator.
struct LossPoint {
  double vtime = 0.0;
  double epochs = 0.0;
  double loss = 0.0;
};

struct WorkerStats {
  msg::WorkerId id = 0;
  std::string name;
  gpusim::DeviceKind kind = gpusim::DeviceKind::kCpu;

  std::uint64_t updates = 0;   // cumulative model updates (u^E)
  std::uint64_t batches = 0;   // ExecuteWork messages completed
  std::uint64_t examples = 0;  // training examples processed
  double busy_vtime = 0.0;     // virtual seconds spent computing
  double clock = 0.0;          // worker's logical clock
  tensor::Index current_batch = 0;  // last assigned batch size

  // Replica staleness (GPU workers): accumulated and maximum per-batch
  // max |w_merge - w_upload| of the shared model.
  double staleness_sum = 0.0;
  double max_staleness = 0.0;

  // Mean per-batch staleness over completed batches.
  double mean_staleness() const {
    return batches > 0 ? staleness_sum / static_cast<double>(batches) : 0.0;
  }
};

class UpdateLedger {
 public:
  // Registers a worker; ids must be dense [0, n).
  void register_worker(msg::WorkerId id, std::string name,
                       gpusim::DeviceKind kind, tensor::Index initial_batch)
      HETSGD_EXCLUDES(mu_);

  // Snapshot of one worker's stats (copy, safe to hold across updates).
  WorkerStats stats(msg::WorkerId id) const HETSGD_EXCLUDES(mu_);
  // Snapshot of all workers' stats.
  std::vector<WorkerStats> all() const HETSGD_EXCLUDES(mu_);

  std::size_t worker_count() const HETSGD_EXCLUDES(mu_);

  // Hot-path scalar reads (coordinator scheduling loop).
  double clock(msg::WorkerId id) const HETSGD_EXCLUDES(mu_);
  double busy_vtime(msg::WorkerId id) const HETSGD_EXCLUDES(mu_);
  tensor::Index current_batch(msg::WorkerId id) const HETSGD_EXCLUDES(mu_);
  // Records the batch size the adaptive controller just assigned.
  void set_current_batch(msg::WorkerId id, tensor::Index batch)
      HETSGD_EXCLUDES(mu_);

  // Folds a completed-batch report into the ledger.
  void on_report(const msg::ScheduleWork& report) HETSGD_EXCLUDES(mu_);

  // Folds a *late* report — one whose batch was already reclaimed after a
  // deadline miss. Clocks, update counts, and utilization advance (the
  // Hogwild updates really happened), but examples/batches do NOT: the
  // reclaimed range was re-dispatched elsewhere and counting it twice
  // would break `dispatched == reported + reclaimed`.
  void on_late_report(const msg::ScheduleWork& report) HETSGD_EXCLUDES(mu_);

  // Checkpoint restore: overwrites the counters of an already-registered
  // worker (matched by stats.id) with the persisted values. Name and kind
  // keep the freshly-registered values — they describe this process's
  // workers, not the dead one's.
  void restore_stats(const WorkerStats& stats) HETSGD_EXCLUDES(mu_);

  // --- fault / recovery event log ---------------------------------------
  // Coordinator-side detections and recovery actions, in detection order;
  // injections recorded by the FaultPlan are merged in by the Trainer.
  void record_fault(FaultRecord record) HETSGD_EXCLUDES(mu_);
  std::vector<FaultRecord> fault_records() const HETSGD_EXCLUDES(mu_);

  std::uint64_t total_updates() const HETSGD_EXCLUDES(mu_);
  std::uint64_t total_examples() const HETSGD_EXCLUDES(mu_);
  std::uint64_t updates_by_kind(gpusim::DeviceKind kind) const
      HETSGD_EXCLUDES(mu_);

  // Smallest/largest update count among workers *other than* `id` —
  // Algorithm 2's min_u / max_u inputs. Returns false if there are no
  // other workers.
  bool other_update_range(msg::WorkerId id, std::uint64_t& min_u,
                          std::uint64_t& max_u) const HETSGD_EXCLUDES(mu_);

  // Smallest clock among all workers (progress of the virtual frontier).
  double min_clock() const HETSGD_EXCLUDES(mu_);
  double max_clock() const HETSGD_EXCLUDES(mu_);

 private:
  WorkerStats& stats_locked(msg::WorkerId id) HETSGD_REQUIRES(mu_);
  const WorkerStats& stats_locked(msg::WorkerId id) const HETSGD_REQUIRES(mu_);

  mutable AnnotatedMutex mu_;
  std::vector<WorkerStats> workers_ HETSGD_GUARDED_BY(mu_);
  std::vector<FaultRecord> faults_ HETSGD_GUARDED_BY(mu_);
};

}  // namespace hetsgd::core
