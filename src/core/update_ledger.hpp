// Per-worker bookkeeping of model updates, batches, and virtual time.
//
// The coordinator maintains this from ScheduleWork messages; it is the
// data behind Fig. 8 (update distribution) and the adaptive controller's
// inputs. Written only on the coordinator thread; snapshots are taken
// after training for reporting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/fault.hpp"
#include "gpusim/perf_model.hpp"
#include "msg/message.hpp"
#include "tensor/types.hpp"

namespace hetsgd::core {

struct WorkerStats {
  msg::WorkerId id = 0;
  std::string name;
  gpusim::DeviceKind kind = gpusim::DeviceKind::kCpu;

  std::uint64_t updates = 0;   // cumulative model updates (u^E)
  std::uint64_t batches = 0;   // ExecuteWork messages completed
  std::uint64_t examples = 0;  // training examples processed
  double busy_vtime = 0.0;     // virtual seconds spent computing
  double clock = 0.0;          // worker's logical clock
  tensor::Index current_batch = 0;  // last assigned batch size

  // Replica staleness (GPU workers): accumulated and maximum per-batch
  // max |w_merge - w_upload| of the shared model.
  double staleness_sum = 0.0;
  double max_staleness = 0.0;

  // Mean per-batch staleness over completed batches.
  double mean_staleness() const {
    return batches > 0 ? staleness_sum / static_cast<double>(batches) : 0.0;
  }
};

class UpdateLedger {
 public:
  // Registers a worker; ids must be dense [0, n).
  void register_worker(msg::WorkerId id, std::string name,
                       gpusim::DeviceKind kind, tensor::Index initial_batch);

  WorkerStats& stats(msg::WorkerId id);
  const WorkerStats& stats(msg::WorkerId id) const;

  std::size_t worker_count() const { return workers_.size(); }
  const std::vector<WorkerStats>& all() const { return workers_; }

  // Folds a completed-batch report into the ledger.
  void on_report(const msg::ScheduleWork& report);

  // Folds a *late* report — one whose batch was already reclaimed after a
  // deadline miss. Clocks, update counts, and utilization advance (the
  // Hogwild updates really happened), but examples/batches do NOT: the
  // reclaimed range was re-dispatched elsewhere and counting it twice
  // would break `dispatched == reported + reclaimed`.
  void on_late_report(const msg::ScheduleWork& report);

  // --- fault / recovery event log ---------------------------------------
  // Coordinator-side detections and recovery actions, in detection order;
  // injections recorded by the FaultPlan are merged in by the Trainer.
  void record_fault(FaultRecord record);
  const std::vector<FaultRecord>& fault_records() const { return faults_; }

  std::uint64_t total_updates() const;
  std::uint64_t total_examples() const;
  std::uint64_t updates_by_kind(gpusim::DeviceKind kind) const;

  // Smallest/largest update count among workers *other than* `id` —
  // Algorithm 2's min_u / max_u inputs. Returns false if there are no
  // other workers.
  bool other_update_range(msg::WorkerId id, std::uint64_t& min_u,
                          std::uint64_t& max_u) const;

  // Smallest clock among all workers (progress of the virtual frontier).
  double min_clock() const;
  double max_clock() const;

 private:
  std::vector<WorkerStats> workers_;
  std::vector<FaultRecord> faults_;
};

}  // namespace hetsgd::core
