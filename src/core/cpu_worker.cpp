#include "core/cpu_worker.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "common/macros.hpp"
#include "core/cost_model.hpp"

namespace hetsgd::core {

using tensor::Index;

CpuWorker::CpuWorker(msg::WorkerId id, const TrainingConfig& config,
                     const data::Dataset& dataset, nn::Model& global_model,
                     msg::Actor& coordinator, int real_threads)
    : msg::Actor("cpu-worker"), id_(id), config_(config), dataset_(dataset),
      model_(global_model), coordinator_(coordinator),
      perf_(config.cpu.spec),
      pool_(static_cast<std::size_t>(std::max(real_threads, 1))) {
  const std::size_t lanes = pool_.thread_count() + 1;
  workspaces_.resize(lanes);
  gradients_.reserve(lanes);
  optimizers_.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    gradients_.push_back(nn::make_zero_gradient(model_));
    optimizers_.emplace_back(config.optimizer, model_);
  }
}

bool CpuWorker::handle(msg::Envelope envelope) {
  if (std::holds_alternative<msg::ExecuteWork>(envelope.message)) {
    execute(std::get<msg::ExecuteWork>(envelope.message));
    return true;
  }
  if (std::holds_alternative<msg::Shutdown>(envelope.message)) {
    coordinator_.send({id_, msg::ShutdownAck{id_}});
    return false;
  }
  HETSGD_LOG_WARN("cpu-worker", "unexpected message variant %zu",
                  envelope.message.index());
  return true;
}

void CpuWorker::execute(const msg::ExecuteWork& work) {
  const Index begin = static_cast<Index>(work.batch_begin);
  const Index size = static_cast<Index>(work.batch_size);
  HETSGD_ASSERT(size > 0, "empty batch assigned");
  HETSGD_ASSERT(begin + size <= dataset_.example_count(),
                "batch out of dataset range");

  const int t = config_.cpu.sim_lanes;
  // Split B into t sub-batches of size B/t (Algorithm 2, CPU worker
  // handler). Tail batches (epoch remainders) may produce fewer sub-batches.
  const Index sub_batch = std::max<Index>(1, size / t);
  const Index num_sub = (size + sub_batch - 1) / sub_batch;
  const double lr =
      config_.effective_lr(sub_batch) *
      nn::lr_multiplier(config_.lr_schedule,
                        static_cast<double>(work.epoch));

  // Hogwild: every lane reads the shared model, computes its sub-batch
  // gradient, and writes the update back with no synchronization.
  pool_.parallel_for(
      static_cast<std::size_t>(num_sub),
      [&](std::size_t first, std::size_t last, std::size_t lane) {
        nn::Workspace& ws = workspaces_[lane];
        nn::Gradient& grad = gradients_[lane];
        for (std::size_t i = first; i < last; ++i) {
          const Index sb_begin = begin + static_cast<Index>(i) * sub_batch;
          const Index sb_size =
              std::min(sub_batch, begin + size - sb_begin);
          auto x = dataset_.batch_features(sb_begin, sb_size);
          auto y = dataset_.batch_labels(sb_begin, sb_size);
          nn::compute_gradient(model_, x, y, ws, grad);
          optimizers_[lane].step(model_, grad,
                                 static_cast<tensor::Scalar>(lr));
        }
      });

  // Virtual time: num_sub logical lanes at sub_batch each (waves beyond
  // the simulated 56 threads are handled inside the cost model).
  const double cost = cpu_batch_seconds(perf_, config_.mlp, sub_batch,
                                        static_cast<int>(num_sub));
  // Epoch-boundary waits (not_before) appear as idle virtual time.
  clock_.advance_to(work.not_before);
  clock_.advance(cost);
  busy_vtime_ += cost;
  updates_scaled_ += static_cast<double>(num_sub) * config_.beta;

  const double intensity = cpu_batch_intensity(
      std::min<int>(static_cast<int>(num_sub), perf_.spec().lanes),
      config_.cpu.host_threads, sub_batch,
      config_.cpu.max_examples_per_thread);
  request_work(static_cast<std::uint64_t>(size), intensity);
}

void CpuWorker::request_work(std::uint64_t examples, double intensity) {
  msg::ScheduleWork req;
  req.worker = id_;
  req.updates = static_cast<std::uint64_t>(updates_scaled_);
  req.busy_vtime = busy_vtime_;
  req.clock_vtime = clock_.now();
  req.intensity = intensity;
  req.examples = examples;
  coordinator_.send({id_, req});
}

}  // namespace hetsgd::core
