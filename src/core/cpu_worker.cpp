#include "core/cpu_worker.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <limits>
#include <thread>

#include "common/atomic_file.hpp"
#include "common/logging.hpp"
#include "common/macros.hpp"
#include "core/cost_model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hetsgd::core {

using tensor::Index;

CpuWorker::CpuWorker(msg::WorkerId id, const TrainingConfig& config,
                     const data::Dataset& dataset, nn::Model& global_model,
                     msg::Actor& coordinator, int real_threads)
    : msg::Actor("cpu-worker"), id_(id), config_(config), dataset_(dataset),
      model_(global_model), coordinator_(coordinator),
      perf_(config.cpu.spec),
      pool_(static_cast<std::size_t>(std::max(real_threads, 1))) {
  const std::size_t lanes = pool_.thread_count() + 1;
  workspaces_.resize(lanes);
  gradients_.reserve(lanes);
  optimizers_.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    gradients_.push_back(nn::make_zero_gradient(model_));
    optimizers_.emplace_back(config.optimizer, model_);
  }
}

bool CpuWorker::handle(msg::Envelope envelope) {
  if (std::holds_alternative<msg::ExecuteWork>(envelope.message)) {
    return execute(std::get<msg::ExecuteWork>(envelope.message));
  }
  if (std::holds_alternative<msg::StateRequest>(envelope.message)) {
    msg::StateReport report;
    report.worker = id_;
    report.state = serialize_state();
    if (!coordinator_.send({id_, std::move(report)})) {
      HETSGD_LOG_WARN("cpu-worker", "state report dropped: mailbox closed");
    }
    return true;
  }
  if (std::holds_alternative<msg::Shutdown>(envelope.message)) {
    if (!coordinator_.send({id_, msg::ShutdownAck{id_}})) {
      HETSGD_LOG_WARN("cpu-worker", "shutdown ack dropped: mailbox closed");
    }
    return false;
  }
  HETSGD_LOG_WARN("cpu-worker", "unexpected message variant %zu",
                  envelope.message.index());
  return true;
}

bool CpuWorker::on_handle_exception(const std::string& what) {
  // Convert the escaped exception into a fault report; the coordinator
  // reclaims our in-flight batch and quarantines this worker.
  HETSGD_LOG_WARN("cpu-worker", "fault escalated: %s", what.c_str());
  msg::WorkerFault fault;
  fault.worker = id_;
  fault.vtime = clock_.now();
  fault.detail = what;
  if (!coordinator_.send({id_, std::move(fault)})) {
    HETSGD_LOG_WARN("cpu-worker", "fault report dropped: mailbox closed");
  }
  return false;
}

bool CpuWorker::execute(const msg::ExecuteWork& work) {
  const Index begin = static_cast<Index>(work.batch_begin);
  const Index size = static_cast<Index>(work.batch_size);
  HETSGD_ASSERT(size > 0, "empty batch assigned");
  HETSGD_ASSERT(begin + size <= dataset_.example_count(),
                "batch out of dataset range");

  const std::uint64_t flow = obs::batch_flow_id(id_, work.sequence);
  HETSGD_TRACE_SPAN(exec_span, "cpu-worker", "execute", clock_.now(), flow);
  obs::trace_flow_step("batch", flow, clock_.now());

  // Epoch-boundary waits (not_before) appear as idle virtual time; faults
  // trigger on the clock the batch actually starts at.
  clock_.advance_to(work.not_before);
  FaultPlan::StallState stall;
  if (fault_plan_ != nullptr) {
    if (fault_plan_->crash_due(id_, clock_.now())) {
      // Simulated power loss: take the whole process down with no
      // destructors, no flushes, no goodbye — the crash-consistency of the
      // checkpoint files is exactly what this exercises.
      HETSGD_LOG_WARN("cpu-worker", "injected crash (SIGKILL) at vtime %.6f",
                      clock_.now());
      std::raise(SIGKILL);
    }
    if (fault_plan_->death_due(id_, clock_.now())) {
      HETSGD_LOG_WARN("cpu-worker", "injected death at vtime %.6f",
                      clock_.now());
      return false;  // stop reporting — the actor is dead
    }
    stall = fault_plan_->stall(id_, clock_.now());
    if (stall.sleep_ms > 0) {
      // Real stall: visible to the coordinator's real-time grace fallback.
      // hetsgd-lint: allow(wall-clock) injected stalls must consume real
      // time, not virtual time, to exercise real-time silence detection.
      std::this_thread::sleep_for(std::chrono::milliseconds(stall.sleep_ms));
    }
  }

  const int t = config_.cpu.sim_lanes;
  // Split B into t sub-batches of size B/t (Algorithm 2, CPU worker
  // handler). Tail batches (epoch remainders) may produce fewer sub-batches.
  const Index sub_batch = std::max<Index>(1, size / t);
  const Index num_sub = (size + sub_batch - 1) / sub_batch;
  // The dispatched rate tracks config_.learning_rate except after a
  // divergence rollback, when the coordinator backs it off; honor the
  // ratio so the backoff reaches the capped effective rate too.
  const double lr_scale =
      (config_.learning_rate > 0.0 && work.learning_rate > 0.0)
          ? work.learning_rate / config_.learning_rate
          : 1.0;
  const double lr =
      config_.effective_lr(sub_batch) *
      nn::lr_multiplier(config_.lr_schedule,
                        static_cast<double>(work.epoch)) *
      lr_scale;

  // Hogwild: every lane reads the shared model, computes its sub-batch
  // gradient, and writes the update back with no synchronization.
  {
    HETSGD_TRACE_SCOPE("cpu-worker", "hogwild_parallel_for");
    pool_.parallel_for(
      static_cast<std::size_t>(num_sub),
      [&](std::size_t first, std::size_t last, std::size_t lane) {
        nn::Workspace& ws = workspaces_[lane];
        nn::Gradient& grad = gradients_[lane];
        for (std::size_t i = first; i < last; ++i) {
          const Index sb_begin = begin + static_cast<Index>(i) * sub_batch;
          const Index sb_size =
              std::min(sub_batch, begin + size - sb_begin);
          auto x = dataset_.batch_features(sb_begin, sb_size);
          auto y = dataset_.batch_labels(sb_begin, sb_size);
          nn::compute_gradient(model_, x, y, ws, grad);
          optimizers_[lane].step(model_, grad,
                                 static_cast<tensor::Scalar>(lr));
        }
      });
  }

  if (fault_plan_ != nullptr &&
      fault_plan_->corruption_due(id_, clock_.now())) {
    // Poison one lane's gradient with a NaN and apply it: the shared model
    // goes non-finite exactly as a real numerically-diverged update would,
    // exercising the coordinator's divergence rollback.
    HETSGD_LOG_WARN("cpu-worker", "injected gradient corruption at vtime %.6f",
                    clock_.now());
    nn::Gradient& grad = gradients_[0];
    if (grad.layer_count() > 0 && grad.layer(0).weights.size() > 0) {
      grad.layer(0).weights.data()[0] =
          std::numeric_limits<tensor::Scalar>::quiet_NaN();
      optimizers_[0].step(model_, grad, static_cast<tensor::Scalar>(lr));
    }
  }

  // Virtual time: num_sub logical lanes at sub_batch each (waves beyond
  // the simulated 56 threads are handled inside the cost model). Stalls
  // inflate the charged cost by the configured factor.
  const double cost = cpu_batch_seconds(perf_, config_.mlp, sub_batch,
                                        static_cast<int>(num_sub)) *
                      stall.factor;
  clock_.advance(cost);
  busy_vtime_ += cost;
  updates_scaled_ += static_cast<double>(num_sub) * config_.beta;
  exec_span.set_end_vt(clock_.now());

  const double intensity = cpu_batch_intensity(
      std::min<int>(static_cast<int>(num_sub), perf_.spec().lanes),
      config_.cpu.host_threads, sub_batch,
      config_.cpu.max_examples_per_thread);
  request_work(static_cast<std::uint64_t>(size), intensity, work.sequence);
  return true;
}

namespace {
constexpr std::uint8_t kCpuStateTag = 'C';
constexpr std::uint32_t kCpuStateVersion = 1;
}  // namespace

std::vector<std::uint8_t> CpuWorker::serialize_state() const {
  ByteWriter w;
  w.write_u8(kCpuStateTag);
  w.write_u32(kCpuStateVersion);
  w.write_f64(clock_.now());
  w.write_f64(busy_vtime_);
  // The raw beta-weighted accumulator, bit-exact: floor() loses the
  // fractional part that decides when the next report's count ticks over.
  w.write_f64(updates_scaled_);
  w.write_u32(static_cast<std::uint32_t>(optimizers_.size()));
  for (const nn::Optimizer& opt : optimizers_) {
    opt.serialize(w);
  }
  return w.data();
}

bool CpuWorker::restore_state(const std::vector<std::uint8_t>& bytes,
                              std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  ByteReader r(bytes);
  std::uint8_t tag = 0;
  std::uint32_t version = 0;
  double clock = 0.0;
  std::uint32_t lanes = 0;
  if (!r.read_u8(&tag) || tag != kCpuStateTag) {
    return fail("not a CPU worker state blob");
  }
  if (!r.read_u32(&version) || version != kCpuStateVersion) {
    return fail("unsupported CPU worker state version");
  }
  if (!r.read_f64(&clock) || !r.read_f64(&busy_vtime_) ||
      !r.read_f64(&updates_scaled_) || !r.read_u32(&lanes)) {
    return fail("truncated CPU worker state");
  }
  clock_.reset(clock);
  if (static_cast<std::size_t>(lanes) != optimizers_.size()) {
    // A different --threads count changes the lane set; optimizer slots
    // cannot be mapped across it. Plain-SGD runs carry no slots, so this
    // still restores exactly; momentum/Adam lanes restart cold.
    HETSGD_LOG_WARN("cpu-worker",
                    "checkpoint has %u optimizer lanes, this run has %zu; "
                    "restoring common prefix",
                    lanes, optimizers_.size());
  }
  for (std::uint32_t i = 0; i < lanes; ++i) {
    if (static_cast<std::size_t>(i) < optimizers_.size()) {
      if (!optimizers_[i].deserialize(r, error)) return false;
    } else {
      // Consume the extra lane's bytes to keep the stream aligned.
      nn::Optimizer discard(config_.optimizer, model_);
      if (!discard.deserialize(r, error)) return false;
    }
  }
  return true;
}

void CpuWorker::request_work(std::uint64_t examples, double intensity,
                             std::uint64_t sequence) {
  msg::ScheduleWork req;
  req.worker = id_;
  req.updates = static_cast<std::uint64_t>(updates_scaled_);
  req.busy_vtime = busy_vtime_;
  req.clock_vtime = clock_.now();
  req.intensity = intensity;
  req.examples = examples;
  req.sequence = sequence;
  if (!coordinator_.send({id_, req})) {
    HETSGD_LOG_WARN("cpu-worker", "work report dropped: mailbox closed");
  }
}

}  // namespace hetsgd::core
