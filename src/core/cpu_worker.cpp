#include "core/cpu_worker.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>

#include "common/logging.hpp"
#include "common/macros.hpp"
#include "core/cost_model.hpp"

namespace hetsgd::core {

using tensor::Index;

CpuWorker::CpuWorker(msg::WorkerId id, const TrainingConfig& config,
                     const data::Dataset& dataset, nn::Model& global_model,
                     msg::Actor& coordinator, int real_threads)
    : msg::Actor("cpu-worker"), id_(id), config_(config), dataset_(dataset),
      model_(global_model), coordinator_(coordinator),
      perf_(config.cpu.spec),
      pool_(static_cast<std::size_t>(std::max(real_threads, 1))) {
  const std::size_t lanes = pool_.thread_count() + 1;
  workspaces_.resize(lanes);
  gradients_.reserve(lanes);
  optimizers_.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    gradients_.push_back(nn::make_zero_gradient(model_));
    optimizers_.emplace_back(config.optimizer, model_);
  }
}

bool CpuWorker::handle(msg::Envelope envelope) {
  if (std::holds_alternative<msg::ExecuteWork>(envelope.message)) {
    return execute(std::get<msg::ExecuteWork>(envelope.message));
  }
  if (std::holds_alternative<msg::Shutdown>(envelope.message)) {
    if (!coordinator_.send({id_, msg::ShutdownAck{id_}})) {
      HETSGD_LOG_WARN("cpu-worker", "shutdown ack dropped: mailbox closed");
    }
    return false;
  }
  HETSGD_LOG_WARN("cpu-worker", "unexpected message variant %zu",
                  envelope.message.index());
  return true;
}

bool CpuWorker::on_handle_exception(const std::string& what) {
  // Convert the escaped exception into a fault report; the coordinator
  // reclaims our in-flight batch and quarantines this worker.
  HETSGD_LOG_WARN("cpu-worker", "fault escalated: %s", what.c_str());
  msg::WorkerFault fault;
  fault.worker = id_;
  fault.vtime = clock_.now();
  fault.detail = what;
  if (!coordinator_.send({id_, std::move(fault)})) {
    HETSGD_LOG_WARN("cpu-worker", "fault report dropped: mailbox closed");
  }
  return false;
}

bool CpuWorker::execute(const msg::ExecuteWork& work) {
  const Index begin = static_cast<Index>(work.batch_begin);
  const Index size = static_cast<Index>(work.batch_size);
  HETSGD_ASSERT(size > 0, "empty batch assigned");
  HETSGD_ASSERT(begin + size <= dataset_.example_count(),
                "batch out of dataset range");

  // Epoch-boundary waits (not_before) appear as idle virtual time; faults
  // trigger on the clock the batch actually starts at.
  clock_.advance_to(work.not_before);
  FaultPlan::StallState stall;
  if (fault_plan_ != nullptr) {
    if (fault_plan_->death_due(id_, clock_.now())) {
      HETSGD_LOG_WARN("cpu-worker", "injected death at vtime %.6f",
                      clock_.now());
      return false;  // stop reporting — the actor is dead
    }
    stall = fault_plan_->stall(id_, clock_.now());
    if (stall.sleep_ms > 0) {
      // Real stall: visible to the coordinator's real-time grace fallback.
      // hetsgd-lint: allow(wall-clock) injected stalls must consume real
      // time, not virtual time, to exercise real-time silence detection.
      std::this_thread::sleep_for(std::chrono::milliseconds(stall.sleep_ms));
    }
  }

  const int t = config_.cpu.sim_lanes;
  // Split B into t sub-batches of size B/t (Algorithm 2, CPU worker
  // handler). Tail batches (epoch remainders) may produce fewer sub-batches.
  const Index sub_batch = std::max<Index>(1, size / t);
  const Index num_sub = (size + sub_batch - 1) / sub_batch;
  // The dispatched rate tracks config_.learning_rate except after a
  // divergence rollback, when the coordinator backs it off; honor the
  // ratio so the backoff reaches the capped effective rate too.
  const double lr_scale =
      (config_.learning_rate > 0.0 && work.learning_rate > 0.0)
          ? work.learning_rate / config_.learning_rate
          : 1.0;
  const double lr =
      config_.effective_lr(sub_batch) *
      nn::lr_multiplier(config_.lr_schedule,
                        static_cast<double>(work.epoch)) *
      lr_scale;

  // Hogwild: every lane reads the shared model, computes its sub-batch
  // gradient, and writes the update back with no synchronization.
  pool_.parallel_for(
      static_cast<std::size_t>(num_sub),
      [&](std::size_t first, std::size_t last, std::size_t lane) {
        nn::Workspace& ws = workspaces_[lane];
        nn::Gradient& grad = gradients_[lane];
        for (std::size_t i = first; i < last; ++i) {
          const Index sb_begin = begin + static_cast<Index>(i) * sub_batch;
          const Index sb_size =
              std::min(sub_batch, begin + size - sb_begin);
          auto x = dataset_.batch_features(sb_begin, sb_size);
          auto y = dataset_.batch_labels(sb_begin, sb_size);
          nn::compute_gradient(model_, x, y, ws, grad);
          optimizers_[lane].step(model_, grad,
                                 static_cast<tensor::Scalar>(lr));
        }
      });

  if (fault_plan_ != nullptr &&
      fault_plan_->corruption_due(id_, clock_.now())) {
    // Poison one lane's gradient with a NaN and apply it: the shared model
    // goes non-finite exactly as a real numerically-diverged update would,
    // exercising the coordinator's divergence rollback.
    HETSGD_LOG_WARN("cpu-worker", "injected gradient corruption at vtime %.6f",
                    clock_.now());
    nn::Gradient& grad = gradients_[0];
    if (grad.layer_count() > 0 && grad.layer(0).weights.size() > 0) {
      grad.layer(0).weights.data()[0] =
          std::numeric_limits<tensor::Scalar>::quiet_NaN();
      optimizers_[0].step(model_, grad, static_cast<tensor::Scalar>(lr));
    }
  }

  // Virtual time: num_sub logical lanes at sub_batch each (waves beyond
  // the simulated 56 threads are handled inside the cost model). Stalls
  // inflate the charged cost by the configured factor.
  const double cost = cpu_batch_seconds(perf_, config_.mlp, sub_batch,
                                        static_cast<int>(num_sub)) *
                      stall.factor;
  clock_.advance(cost);
  busy_vtime_ += cost;
  updates_scaled_ += static_cast<double>(num_sub) * config_.beta;

  const double intensity = cpu_batch_intensity(
      std::min<int>(static_cast<int>(num_sub), perf_.spec().lanes),
      config_.cpu.host_threads, sub_batch,
      config_.cpu.max_examples_per_thread);
  request_work(static_cast<std::uint64_t>(size), intensity, work.sequence);
  return true;
}

void CpuWorker::request_work(std::uint64_t examples, double intensity,
                             std::uint64_t sequence) {
  msg::ScheduleWork req;
  req.worker = id_;
  req.updates = static_cast<std::uint64_t>(updates_scaled_);
  req.busy_vtime = busy_vtime_;
  req.clock_vtime = clock_.now();
  req.intensity = intensity;
  req.examples = examples;
  req.sequence = sequence;
  if (!coordinator_.send({id_, req})) {
    HETSGD_LOG_WARN("cpu-worker", "work report dropped: mailbox closed");
  }
}

}  // namespace hetsgd::core
