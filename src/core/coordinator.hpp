// The coordinator (§V-A): assigns batches to workers, owns the adaptive
// batch-size policy, tracks updates/utilization, and manages epochs.
//
// One Actor thread processing ScheduleWork requests strictly in arrival
// order (the paper's serialized message handling). Bulk data never moves:
// an ExecuteWork carries only an index range into the shared dataset.
//
// Virtual-time gating. Workers charge modeled costs to their logical
// clocks. To keep the *assignment* schedule faithful to the modeled
// hardware rather than to this host's real speed, the coordinator releases
// a new batch to an idle worker only while that worker's clock does not
// run ahead of the earliest estimated completion among busy workers (plus
// a configurable window). Both workers stay busy in real time — the fast
// device simply executes its many virtual batches while the slow one
// executes its single one.
//
// Self-healing layer (DESIGN.md §9, enabled by fault.deadline_factor > 0).
// Every dispatch carries a sequence number and a virtual-time deadline of
// k x the estimated batch cost. When the virtual frontier passes a busy
// worker's deadline — or, as a real-time fallback, when all workers go
// silent for stall_grace_ticks idle ticks — the batch range is reclaimed
// into a pool and re-dispatched to healthy workers; repeated faults
// quarantine the worker. Late reports for reclaimed batches are folded in
// without double-counting examples, preserving the ledger invariant
//   examples_dispatched == ledger.total_examples + examples_reclaimed.
// Independently of the deadline layer, a non-finite evaluated loss rolls
// the shared model back to the last finite-loss snapshot and backs the
// learning rate off (or aborts the run, per config).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/adaptive.hpp"
#include "core/config.hpp"
#include "core/fault.hpp"
#include "core/update_ledger.hpp"
#include "core/utilization.hpp"
#include "data/dataset.hpp"
#include "msg/actor.hpp"
#include "nn/mlp.hpp"

namespace hetsgd::core {

// One sample of the loss trajectory: virtual seconds, epochs-equivalent
// of processed examples, and the (sampled) training loss.
struct LossPoint {
  double vtime = 0.0;
  double epochs = 0.0;
  double loss = 0.0;
};

class Coordinator final : public msg::Actor {
 public:
  // `dataset` is shuffled in place at epoch boundaries; `model` is the
  // global model shared with the workers. `eval_sample` examples are
  // copied out for loss tracking (0 = evaluate on the full dataset).
  Coordinator(data::Dataset& dataset, nn::Model& model,
              const TrainingConfig& config, tensor::Index eval_sample);

  // Registers a worker before start(). Ids are assigned densely in call
  // order and must match the worker's own id.
  void add_worker(msg::Actor& actor, gpusim::DeviceKind kind,
                  const AdaptiveController::WorkerLimits& limits);

  // --- results (valid after join()) -------------------------------------
  const UpdateLedger& ledger() const { return ledger_; }
  const UtilizationMonitor& monitor() const { return *monitor_; }
  const std::vector<LossPoint>& loss_curve() const { return curve_; }
  std::uint64_t epoch_flips() const { return epoch_; }
  double epochs_completed() const;
  double final_vtime() const { return ledger_.max_clock(); }

  // Fault-tolerance accounting. The invariant
  //   examples_dispatched() == ledger().total_examples() +
  //   examples_reclaimed()
  // holds at all times the coordinator thread is quiescent.
  std::uint64_t examples_dispatched() const { return examples_dispatched_; }
  std::uint64_t examples_reclaimed() const { return examples_reclaimed_; }
  std::uint64_t late_reports() const { return late_reports_; }
  std::uint64_t late_examples() const { return late_examples_; }
  std::uint64_t rollbacks() const { return rollbacks_; }
  std::uint64_t checkpoints_written() const { return checkpoints_written_; }
  std::uint64_t quarantined_workers() const;
  double lr_scale() const { return lr_scale_; }
  bool diverged() const { return diverged_; }

 protected:
  bool handle(msg::Envelope envelope) override;
  void on_start() override;
  bool on_idle() override;

 private:
  struct WorkerRuntime {
    msg::Actor* actor = nullptr;
    gpusim::DeviceKind kind = gpusim::DeviceKind::kCpu;
    AdaptiveController::WorkerLimits limits;
    bool busy = false;
    bool waiting = false;   // has an unserved work request
    bool finished = false;  // reached the time budget
    double est_completion = 0.0;

    // --- fault-tolerance state ------------------------------------------
    bool failed = false;       // actor reported a fatal fault / dead mailbox
    bool quarantined = false;  // excluded from scheduling after repeats
    std::int64_t fault_count = 0;  // consecutive faults (reset on report)
    std::uint64_t dispatch_seq = 0;      // last issued sequence number
    std::uint64_t reclaimed_through = 0; // sequences <= this were reclaimed
    tensor::Index inflight_begin = 0;
    tensor::Index inflight_size = 0;  // 0 = nothing in flight
    double deadline_vtime = 0.0;      // virtual deadline of the dispatch
  };

  void on_schedule(const msg::ScheduleWork& report);
  void on_worker_fault(const msg::WorkerFault& fault);
  void try_dispatch_all();
  // Dispatches [begin, begin+size) to `id` (fresh range or reclaimed).
  void dispatch_range(msg::WorkerId id, tensor::Index begin,
                      tensor::Index size, bool reclaimed);
  // Worker E's full batch size, clamped to one dataset pass.
  tensor::Index batch_for(msg::WorkerId id) const;
  double estimate_cost(const WorkerRuntime& w, tensor::Index batch) const;
  // Flips the epoch if the dataset is exhausted and every worker is idle.
  void maybe_flip_epoch();
  void evaluate_loss(double vtime);
  void maybe_eval_checkpoints();
  void maybe_auto_checkpoint();
  void begin_shutdown();
  bool any_busy() const;
  bool all_finished() const;
  double effective_window() const;

  // --- self-healing helpers ---------------------------------------------
  bool fault_layer_enabled() const { return config_.fault.deadline_factor > 0.0; }
  bool schedulable(const WorkerRuntime& w) const {
    return !w.failed && !w.quarantined && !w.finished;
  }
  // Returns the worker's in-flight range to the reclaim pool and advances
  // reclaimed_through so its eventual report is treated as late.
  void reclaim_inflight(msg::WorkerId id, double vtime,
                        const std::string& why);
  // Counts one coordinator-visible fault against the worker; quarantines
  // past the configured threshold.
  void note_fault(msg::WorkerId id, double vtime);
  void handle_divergence(double vtime, double loss);

  data::Dataset& dataset_;
  nn::Model& model_;
  const TrainingConfig& config_;
  const bool adaptive_enabled_;

  UpdateLedger ledger_;
  std::unique_ptr<UtilizationMonitor> monitor_;
  AdaptiveController adaptive_;
  gpusim::PerfModel cpu_perf_;
  gpusim::PerfModel gpu_perf_;
  std::vector<WorkerRuntime> workers_;

  tensor::Index cursor_ = 0;  // next unassigned example of this epoch
  std::uint64_t epoch_ = 0;
  double epoch_start_vtime_ = 0.0;
  double next_eval_vtime_ = 0.0;

  // Loss evaluation sample (copied rows, immune to dataset shuffles).
  tensor::Matrix eval_x_;
  std::vector<std::int32_t> eval_y_;
  nn::Workspace eval_ws_;
  nn::Model eval_snapshot_;

  std::vector<LossPoint> curve_;
  Rng rng_;
  bool shutting_down_ = false;
  std::size_t shutdown_acks_ = 0;
  std::size_t expected_acks_ = 0;
  bool loop_done_ = false;

  // --- self-healing state ------------------------------------------------
  // Batch ranges lost to deadline misses / faults, awaiting re-dispatch.
  // Invalidated (dropped) at epoch flips: they index the old permutation.
  std::vector<std::pair<tensor::Index, tensor::Index>> reclaim_pool_;
  std::uint64_t examples_dispatched_ = 0;
  std::uint64_t examples_reclaimed_ = 0;
  std::uint64_t late_reports_ = 0;
  std::uint64_t late_examples_ = 0;
  std::uint64_t rollbacks_ = 0;
  std::uint64_t checkpoints_written_ = 0;
  std::int64_t idle_ticks_ = 0;
  double lr_scale_ = 1.0;  // halved by each divergence rollback
  bool diverged_ = false;  // aborted on non-finite loss per config
  nn::Model last_good_model_;
  double last_good_loss_ = 0.0;
  bool has_last_good_ = false;
  double next_checkpoint_vtime_ = 0.0;
};

}  // namespace hetsgd::core
