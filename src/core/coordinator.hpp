// The coordinator (§V-A): assigns batches to workers, owns the adaptive
// batch-size policy, tracks updates/utilization, and manages epochs.
//
// One Actor thread processing ScheduleWork requests strictly in arrival
// order (the paper's serialized message handling). Bulk data never moves:
// an ExecuteWork carries only an index range into the shared dataset.
//
// Virtual-time gating. Workers charge modeled costs to their logical
// clocks. To keep the *assignment* schedule faithful to the modeled
// hardware rather than to this host's real speed, the coordinator releases
// a new batch to an idle worker only while that worker's clock does not
// run ahead of the earliest estimated completion among busy workers (plus
// a configurable window). Both workers stay busy in real time — the fast
// device simply executes its many virtual batches while the slow one
// executes its single one.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/adaptive.hpp"
#include "core/config.hpp"
#include "core/update_ledger.hpp"
#include "core/utilization.hpp"
#include "data/dataset.hpp"
#include "msg/actor.hpp"
#include "nn/mlp.hpp"

namespace hetsgd::core {

// One sample of the loss trajectory: virtual seconds, epochs-equivalent
// of processed examples, and the (sampled) training loss.
struct LossPoint {
  double vtime = 0.0;
  double epochs = 0.0;
  double loss = 0.0;
};

class Coordinator final : public msg::Actor {
 public:
  // `dataset` is shuffled in place at epoch boundaries; `model` is the
  // global model shared with the workers. `eval_sample` examples are
  // copied out for loss tracking (0 = evaluate on the full dataset).
  Coordinator(data::Dataset& dataset, nn::Model& model,
              const TrainingConfig& config, tensor::Index eval_sample);

  // Registers a worker before start(). Ids are assigned densely in call
  // order and must match the worker's own id.
  void add_worker(msg::Actor& actor, gpusim::DeviceKind kind,
                  const AdaptiveController::WorkerLimits& limits);

  // --- results (valid after join()) -------------------------------------
  const UpdateLedger& ledger() const { return ledger_; }
  const UtilizationMonitor& monitor() const { return *monitor_; }
  const std::vector<LossPoint>& loss_curve() const { return curve_; }
  std::uint64_t epoch_flips() const { return epoch_; }
  double epochs_completed() const;
  double final_vtime() const { return ledger_.max_clock(); }

 protected:
  bool handle(msg::Envelope envelope) override;
  void on_start() override;

 private:
  struct WorkerRuntime {
    msg::Actor* actor = nullptr;
    gpusim::DeviceKind kind = gpusim::DeviceKind::kCpu;
    AdaptiveController::WorkerLimits limits;
    bool busy = false;
    bool waiting = false;   // has an unserved work request
    bool finished = false;  // reached the time budget
    double est_completion = 0.0;
  };

  void on_schedule(const msg::ScheduleWork& report);
  void try_dispatch_all();
  void dispatch(msg::WorkerId id);
  // Worker E's full batch size, clamped to one dataset pass.
  tensor::Index batch_for(msg::WorkerId id) const;
  double estimate_cost(const WorkerRuntime& w, tensor::Index batch) const;
  // Flips the epoch if the dataset is exhausted and every worker is idle.
  void maybe_flip_epoch();
  void evaluate_loss(double vtime);
  void maybe_eval_checkpoints();
  void begin_shutdown();
  bool any_busy() const;
  bool all_finished() const;
  double effective_window() const;

  data::Dataset& dataset_;
  nn::Model& model_;
  const TrainingConfig& config_;
  const bool adaptive_enabled_;

  UpdateLedger ledger_;
  std::unique_ptr<UtilizationMonitor> monitor_;
  AdaptiveController adaptive_;
  gpusim::PerfModel cpu_perf_;
  gpusim::PerfModel gpu_perf_;
  std::vector<WorkerRuntime> workers_;

  tensor::Index cursor_ = 0;  // next unassigned example of this epoch
  std::uint64_t epoch_ = 0;
  double epoch_start_vtime_ = 0.0;
  double next_eval_vtime_ = 0.0;

  // Loss evaluation sample (copied rows, immune to dataset shuffles).
  tensor::Matrix eval_x_;
  std::vector<std::int32_t> eval_y_;
  nn::Workspace eval_ws_;
  nn::Model eval_snapshot_;

  std::vector<LossPoint> curve_;
  Rng rng_;
  bool shutting_down_ = false;
  std::size_t shutdown_acks_ = 0;
};

}  // namespace hetsgd::core
