// The coordinator (§V-A): assigns batches to workers, owns the adaptive
// batch-size policy, tracks updates/utilization, and manages epochs.
//
// One Actor thread processing ScheduleWork requests strictly in arrival
// order (the paper's serialized message handling). Bulk data never moves:
// an ExecuteWork carries only an index range into the shared dataset.
//
// Virtual-time gating. Workers charge modeled costs to their logical
// clocks. To keep the *assignment* schedule faithful to the modeled
// hardware rather than to this host's real speed, the coordinator releases
// a new batch to an idle worker only while that worker's clock does not
// run ahead of the earliest estimated completion among busy workers (plus
// a configurable window). Both workers stay busy in real time — the fast
// device simply executes its many virtual batches while the slow one
// executes its single one.
//
// Self-healing layer (DESIGN.md §9, enabled by fault.deadline_factor > 0).
// Every dispatch carries a sequence number and a virtual-time deadline of
// k x the estimated batch cost. When the virtual frontier passes a busy
// worker's deadline — or, as a real-time fallback, when all workers go
// silent for stall_grace_ticks idle ticks — the batch range is reclaimed
// into a pool and re-dispatched to healthy workers; repeated faults
// quarantine the worker. Late reports for reclaimed batches are folded in
// without double-counting examples, preserving the ledger invariant
//   examples_dispatched == ledger.total_examples + examples_reclaimed.
// Independently of the deadline layer, a non-finite evaluated loss rolls
// the shared model back to the last finite-loss snapshot and backs the
// learning rate off (or aborts the run, per config).
//
// Concurrency contract (DESIGN.md §10). All mutable coordinator state is
// guarded by `mu_` and annotated; the three Actor entry points
// (on_start/handle/on_idle) acquire it once per message and every private
// helper is HETSGD_REQUIRES(mu_), so -Wthread-safety proves no state is
// touched outside the lock. During training the lock is effectively
// uncontended (one acquisition per mailbox message on the actor thread);
// it exists so result accessors are safe from any thread. The shared
// `model_` and `dataset_` references are deliberately UNGUARDED — they are
// the paper's sanctioned Hogwild race sites (see scripts/tsan.supp and the
// `hetsgd-racy` waivers at the access sites).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/thread_annotations.hpp"
#include "core/adaptive.hpp"
#include "core/checkpoint.hpp"
#include "core/config.hpp"
#include "core/fault.hpp"
#include "core/update_ledger.hpp"
#include "core/utilization.hpp"
#include "data/dataset.hpp"
#include "msg/actor.hpp"
#include "nn/mlp.hpp"

namespace hetsgd::core {

class Coordinator final : public msg::Actor {
 public:
  // `dataset` is shuffled in place at epoch boundaries; `model` is the
  // global model shared with the workers. `eval_sample` examples are
  // copied out for loss tracking (0 = evaluate on the full dataset).
  Coordinator(data::Dataset& dataset, nn::Model& model,
              const TrainingConfig& config, tensor::Index eval_sample);

  // Registers a worker before start(). Ids are assigned densely in call
  // order and must match the worker's own id.
  void add_worker(msg::Actor& actor, gpusim::DeviceKind kind,
                  const AdaptiveController::WorkerLimits& limits)
      HETSGD_EXCLUDES(mu_);

  // --- crash-consistent checkpointing ------------------------------------
  // Attaches the checkpoint sink. Call before start(); the manager must
  // outlive the coordinator. With a manager attached, a full training
  // checkpoint (model + optimizer state + RNG + clocks + ledger) is cut at
  // the quiescent epoch barrier whenever fault.checkpoint_interval_vseconds
  // of virtual time have elapsed (0 = every epoch flip).
  void set_checkpoint_manager(CheckpointManager* manager) HETSGD_EXCLUDES(mu_);

  // Restores coordinator state from a loaded checkpoint. Call after all
  // workers are registered and before start(). Verifies that the RNG
  // stream replayed over `ckpt.epoch - 1` dataset shuffles lands exactly
  // on the checkpointed state — a mismatch means the config/dataset differ
  // from the checkpointing run, and the restore is refused. Worker-local
  // state (clocks, optimizer slots) is restored separately by the Trainer
  // via each worker's restore_state().
  bool restore(const TrainingCheckpoint& ckpt, std::string* error)
      HETSGD_EXCLUDES(mu_);

  // --- elastic membership -------------------------------------------------
  // Registers a worker mid-run (thread-safe, callable while the run is in
  // flight). Returns the assigned dense id, or -1 if the run is already
  // shutting down. The caller starts the worker actor after this returns.
  // The newcomer's first batch is seeded from the cost model to match the
  // mean estimated batch cost of the active workers, and its Algorithm-2
  // update baseline is set to the minimum peer count so the adaptive
  // policy treats it as a peer rather than a straggler.
  msg::WorkerId join_worker(msg::Actor& actor, gpusim::DeviceKind kind,
                            const AdaptiveController::WorkerLimits& limits)
      HETSGD_EXCLUDES(mu_);

  // Retires a worker mid-run: its in-flight batch is reclaimed (preserving
  // dispatched == reported + reclaimed), it stops receiving work, and it
  // is sent Shutdown. Returns false if the id is unknown, already retired,
  // or the run is shutting down.
  bool retire_worker(msg::WorkerId id) HETSGD_EXCLUDES(mu_);

  // --- results -----------------------------------------------------------
  // Scalar accessors lock and are safe from any thread at any time. The
  // reference-returning accessors (ledger/monitor/loss_curve) are POST-JOIN
  // ONLY: the happens-before edge is Actor::join() itself, which is why
  // they carry HETSGD_POST_JOIN_ACCESS instead of taking the lock.
  const UpdateLedger& ledger() const { return ledger_; }
  const UtilizationMonitor& monitor() const HETSGD_POST_JOIN_ACCESS {
    return *monitor_;
  }
  const std::vector<LossPoint>& loss_curve() const HETSGD_POST_JOIN_ACCESS {
    return curve_;
  }
  // Mid-run-safe copy of the loss curve for live scrapers (metrics
  // exporter); locks, unlike the post-join reference accessor above.
  std::vector<LossPoint> loss_curve_snapshot() const HETSGD_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return curve_;
  }
  std::uint64_t epoch_flips() const HETSGD_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return epoch_;
  }
  double epochs_completed() const;
  double final_vtime() const { return ledger_.max_clock(); }

  // Fault-tolerance accounting. The invariant
  //   examples_dispatched() == ledger().total_examples() +
  //   examples_reclaimed()
  // holds at all times the coordinator thread is quiescent.
  std::uint64_t examples_dispatched() const HETSGD_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return examples_dispatched_;
  }
  std::uint64_t examples_reclaimed() const HETSGD_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return examples_reclaimed_;
  }
  std::uint64_t late_reports() const HETSGD_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return late_reports_;
  }
  std::uint64_t late_examples() const HETSGD_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return late_examples_;
  }
  std::uint64_t rollbacks() const HETSGD_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return rollbacks_;
  }
  std::uint64_t checkpoints_written() const HETSGD_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return checkpoints_written_;
  }
  std::uint64_t workers_joined() const HETSGD_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return joins_;
  }
  std::uint64_t workers_retired() const HETSGD_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return retires_;
  }
  std::size_t worker_count() const HETSGD_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return workers_.size();
  }
  std::uint64_t quarantined_workers() const HETSGD_EXCLUDES(mu_);
  double lr_scale() const HETSGD_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return lr_scale_;
  }
  bool diverged() const HETSGD_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return diverged_;
  }

 protected:
  // Actor entry points: each acquires mu_ exactly once, then runs the
  // REQUIRES-annotated helpers below.
  bool handle(msg::Envelope envelope) override HETSGD_EXCLUDES(mu_);
  void on_start() override HETSGD_EXCLUDES(mu_);
  bool on_idle() override HETSGD_EXCLUDES(mu_);

 private:
  struct WorkerRuntime {
    msg::Actor* actor = nullptr;
    gpusim::DeviceKind kind = gpusim::DeviceKind::kCpu;
    AdaptiveController::WorkerLimits limits;
    bool busy = false;
    bool waiting = false;   // has an unserved work request
    bool finished = false;  // reached the time budget
    bool retired = false;   // removed from membership mid-run
    double est_completion = 0.0;

    // --- fault-tolerance state ------------------------------------------
    bool failed = false;       // actor reported a fatal fault / dead mailbox
    bool quarantined = false;  // excluded from scheduling after repeats
    std::int64_t fault_count = 0;  // consecutive faults (reset on report)
    std::uint64_t dispatch_seq = 0;      // last issued sequence number
    std::uint64_t reclaimed_through = 0; // sequences <= this were reclaimed
    tensor::Index inflight_begin = 0;
    tensor::Index inflight_size = 0;  // 0 = nothing in flight
    double deadline_vtime = 0.0;      // virtual deadline of the dispatch
  };

  void on_schedule(const msg::ScheduleWork& report) HETSGD_REQUIRES(mu_);
  void on_worker_fault(const msg::WorkerFault& fault) HETSGD_REQUIRES(mu_);
  void try_dispatch_all() HETSGD_REQUIRES(mu_);
  // Dispatches [begin, begin+size) to `id` (fresh range or reclaimed).
  void dispatch_range(msg::WorkerId id, tensor::Index begin,
                      tensor::Index size, bool reclaimed) HETSGD_REQUIRES(mu_);
  // Worker E's full batch size, clamped to one dataset pass.
  tensor::Index batch_for(msg::WorkerId id) const;
  double estimate_cost(const WorkerRuntime& w, tensor::Index batch) const;
  // Flips the epoch if the dataset is exhausted and every worker is idle.
  void maybe_flip_epoch() HETSGD_REQUIRES(mu_);
  void evaluate_loss(double vtime) HETSGD_REQUIRES(mu_);
  void maybe_eval_checkpoints() HETSGD_REQUIRES(mu_);
  void maybe_auto_checkpoint() HETSGD_REQUIRES(mu_);
  void begin_shutdown() HETSGD_REQUIRES(mu_);
  bool any_busy() const HETSGD_REQUIRES(mu_);
  bool all_finished() const HETSGD_REQUIRES(mu_);
  double effective_window() const;

  // --- checkpoint + elastic helpers ---------------------------------------
  // True when a full checkpoint should be cut at the next epoch barrier.
  bool full_checkpoint_due() const HETSGD_REQUIRES(mu_);
  // Sends StateRequest to every live worker and suppresses dispatch until
  // all replies (or peer losses) arrive. Completes synchronously when
  // there is no one to ask.
  void begin_full_checkpoint() HETSGD_REQUIRES(mu_);
  void on_state_report(const msg::StateReport& report) HETSGD_REQUIRES(mu_);
  // Removes `id` from the outstanding StateRequest set (worker faulted or
  // retired mid-collection) so the checkpoint cut cannot wedge on it.
  void drop_ckpt_peer(msg::WorkerId id) HETSGD_REQUIRES(mu_);
  // If a cut is pending and every reply is in, assembles + persists the
  // checkpoint and performs the deferred epoch restart (shuffle + cursor).
  void maybe_complete_checkpoint() HETSGD_REQUIRES(mu_);
  void write_full_checkpoint() HETSGD_REQUIRES(mu_);
  void on_worker_join(msg::WorkerId id) HETSGD_REQUIRES(mu_);
  void on_worker_retire(msg::WorkerId id) HETSGD_REQUIRES(mu_);
  // Batch whose estimated cost best matches the mean estimated cost of the
  // active workers' current batches (quantum-aligned, limit-clamped).
  tensor::Index seed_batch_from_cost_model(
      const WorkerRuntime& w, const AdaptiveController::WorkerLimits& limits)
      const HETSGD_REQUIRES(mu_);

  // --- self-healing helpers ---------------------------------------------
  bool fault_layer_enabled() const { return config_.fault.deadline_factor > 0.0; }
  bool schedulable(const WorkerRuntime& w) const {
    return !w.failed && !w.quarantined && !w.finished && !w.retired;
  }
  // Returns the worker's in-flight range to the reclaim pool and advances
  // reclaimed_through so its eventual report is treated as late.
  void reclaim_inflight(msg::WorkerId id, double vtime,
                        const std::string& why) HETSGD_REQUIRES(mu_);
  // Counts one coordinator-visible fault against the worker; quarantines
  // past the configured threshold.
  void note_fault(msg::WorkerId id, double vtime) HETSGD_REQUIRES(mu_);
  void handle_divergence(double vtime, double loss) HETSGD_REQUIRES(mu_);

  // Shared Hogwild state — deliberately unguarded (see header comment).
  data::Dataset& dataset_;
  nn::Model& model_;
  const TrainingConfig& config_;  // immutable for the run
  const bool adaptive_enabled_;
  // Captured at construction, before any epoch shuffle permutes the
  // dataset: the fingerprint must hash the same (original) example order
  // the resume path sees when it recomputes it on a fresh copy.
  const std::uint64_t fingerprint_;

  // One lock per mailbox message; guards everything below that is mutable
  // after start(). ledger_ is internally synchronized; the perf models and
  // the eval sample (eval_x_/eval_y_) are immutable after construction;
  // rng_ is coordinator-thread-confined (seeded in the constructor).
  mutable AnnotatedMutex mu_;

  UpdateLedger ledger_;
  std::unique_ptr<UtilizationMonitor> monitor_ HETSGD_GUARDED_BY(mu_)
      HETSGD_PT_GUARDED_BY(mu_);
  AdaptiveController adaptive_ HETSGD_GUARDED_BY(mu_);
  gpusim::PerfModel cpu_perf_;
  gpusim::PerfModel gpu_perf_;
  std::vector<WorkerRuntime> workers_ HETSGD_GUARDED_BY(mu_);

  tensor::Index cursor_ HETSGD_GUARDED_BY(mu_) = 0;  // next unassigned example
  std::uint64_t epoch_ HETSGD_GUARDED_BY(mu_) = 0;
  double epoch_start_vtime_ HETSGD_GUARDED_BY(mu_) = 0.0;
  double next_eval_vtime_ HETSGD_GUARDED_BY(mu_) = 0.0;

  // Loss evaluation sample (copied rows, immune to dataset shuffles).
  tensor::Matrix eval_x_;             // immutable after construction
  std::vector<std::int32_t> eval_y_;  // immutable after construction
  nn::Workspace eval_ws_ HETSGD_GUARDED_BY(mu_);
  nn::Model eval_snapshot_ HETSGD_GUARDED_BY(mu_);

  std::vector<LossPoint> curve_ HETSGD_GUARDED_BY(mu_);
  Rng rng_;  // coordinator-thread-confined
  bool shutting_down_ HETSGD_GUARDED_BY(mu_) = false;
  std::size_t shutdown_acks_ HETSGD_GUARDED_BY(mu_) = 0;
  std::size_t expected_acks_ HETSGD_GUARDED_BY(mu_) = 0;
  bool loop_done_ HETSGD_GUARDED_BY(mu_) = false;

  // --- self-healing state ------------------------------------------------
  // Batch ranges lost to deadline misses / faults, awaiting re-dispatch.
  // Invalidated (dropped) at epoch flips: they index the old permutation.
  std::vector<std::pair<tensor::Index, tensor::Index>> reclaim_pool_
      HETSGD_GUARDED_BY(mu_);
  std::uint64_t examples_dispatched_ HETSGD_GUARDED_BY(mu_) = 0;
  std::uint64_t examples_reclaimed_ HETSGD_GUARDED_BY(mu_) = 0;
  std::uint64_t late_reports_ HETSGD_GUARDED_BY(mu_) = 0;
  std::uint64_t late_examples_ HETSGD_GUARDED_BY(mu_) = 0;
  std::uint64_t rollbacks_ HETSGD_GUARDED_BY(mu_) = 0;
  std::uint64_t checkpoints_written_ HETSGD_GUARDED_BY(mu_) = 0;
  std::int64_t idle_ticks_ HETSGD_GUARDED_BY(mu_) = 0;
  double lr_scale_ HETSGD_GUARDED_BY(mu_) = 1.0;  // halved per rollback
  bool diverged_ HETSGD_GUARDED_BY(mu_) = false;  // aborted on non-finite loss
  nn::Model last_good_model_ HETSGD_GUARDED_BY(mu_);
  double last_good_loss_ HETSGD_GUARDED_BY(mu_) = 0.0;
  bool has_last_good_ HETSGD_GUARDED_BY(mu_) = false;
  double next_checkpoint_vtime_ HETSGD_GUARDED_BY(mu_) = 0.0;

  // --- full-checkpoint state ----------------------------------------------
  CheckpointManager* ckpt_mgr_ HETSGD_GUARDED_BY(mu_) = nullptr;
  // A cut is in flight: StateRequests are out, dispatch is suppressed, and
  // the epoch restart (shuffle + cursor reset) is deferred until every
  // worker in ckpt_waiting_ replies or is dropped.
  bool ckpt_pending_ HETSGD_GUARDED_BY(mu_) = false;
  std::vector<msg::WorkerId> ckpt_waiting_ HETSGD_GUARDED_BY(mu_);
  std::vector<std::pair<msg::WorkerId, std::vector<std::uint8_t>>> ckpt_blobs_
      HETSGD_GUARDED_BY(mu_);
  std::int64_t ckpt_ticks_ HETSGD_GUARDED_BY(mu_) = 0;
  double next_full_ckpt_vtime_ HETSGD_GUARDED_BY(mu_) = 0.0;
  bool resumed_ HETSGD_GUARDED_BY(mu_) = false;

  // --- elastic-membership state -------------------------------------------
  std::uint64_t joins_ HETSGD_GUARDED_BY(mu_) = 0;
  std::uint64_t retires_ HETSGD_GUARDED_BY(mu_) = 0;
};

}  // namespace hetsgd::core
