#include "core/config.hpp"

#include <algorithm>

#include "backend/backend.hpp"
#include "common/cli.hpp"

namespace hetsgd::core {

const char* algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kHogwildCpu:       return "hogbatch-cpu";
    case Algorithm::kMinibatchGpu:     return "hogbatch-gpu";
    case Algorithm::kCpuGpuHogbatch:   return "cpu+gpu";
    case Algorithm::kAdaptiveHogbatch: return "adaptive";
    case Algorithm::kTensorFlow:       return "tensorflow";
  }
  return "?";
}

bool parse_algorithm(const std::string& name, Algorithm& out) {
  if (name == "hogbatch-cpu" || name == "cpu") {
    out = Algorithm::kHogwildCpu;
    return true;
  }
  if (name == "hogbatch-gpu" || name == "gpu") {
    out = Algorithm::kMinibatchGpu;
    return true;
  }
  if (name == "cpu+gpu" || name == "cpugpu") {
    out = Algorithm::kCpuGpuHogbatch;
    return true;
  }
  if (name == "adaptive") {
    out = Algorithm::kAdaptiveHogbatch;
    return true;
  }
  if (name == "tensorflow" || name == "tf") {
    out = Algorithm::kTensorFlow;
    return true;
  }
  return false;
}

bool algorithm_uses_cpu(Algorithm a) {
  return a == Algorithm::kHogwildCpu || a == Algorithm::kCpuGpuHogbatch ||
         a == Algorithm::kAdaptiveHogbatch;
}

bool algorithm_uses_gpu(Algorithm a) {
  return a == Algorithm::kMinibatchGpu || a == Algorithm::kCpuGpuHogbatch ||
         a == Algorithm::kAdaptiveHogbatch || a == Algorithm::kTensorFlow;
}

std::string backend_names_help() {
  std::string help = "execution backend for device workers (";
  const auto& names = backend::registered_backends();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) help += " | ";
    help += names[i];
  }
  help += ")";
  return help;
}

void register_backend_flag(CliParser& cli, std::string* backend) {
  cli.add_string("backend", backend, backend_names_help());
}

bool validate_backend(const std::string& name) {
  return backend::backend_registered(name);
}

double TrainingConfig::effective_lr(tensor::Index update_batch) const {
  if (!scale_lr_with_batch) return learning_rate;
  const double eta =
      learning_rate * static_cast<double>(std::max<tensor::Index>(
                          update_batch, 1));
  return std::min(eta, max_effective_lr);
}

}  // namespace hetsgd::core
