// Trainer: the public facade of the framework.
//
// Builds the model, coordinator, and workers for the selected algorithm,
// runs training to the configured budget, and returns the collected
// metrics. This is the entry point the examples and benchmarks use.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/coordinator.hpp"
#include "core/fault.hpp"
#include "core/update_ledger.hpp"
#include "core/utilization.hpp"
#include "data/dataset.hpp"

namespace hetsgd::core {

struct WorkerSummary {
  std::string name;
  gpusim::DeviceKind kind = gpusim::DeviceKind::kCpu;
  std::uint64_t updates = 0;
  std::uint64_t batches = 0;
  std::uint64_t examples = 0;
  double busy_vtime = 0.0;
  double final_clock = 0.0;
  tensor::Index final_batch = 0;
  double mean_utilization = 0.0;
  // Mean/max per-batch replica staleness (GPU workers; 0 on CPU).
  double mean_staleness = 0.0;
  double max_staleness = 0.0;
  std::vector<BusySegment> segments;
};

struct TrainingResult {
  Algorithm algorithm = Algorithm::kAdaptiveHogbatch;
  std::vector<LossPoint> loss_curve;
  double initial_loss = 0.0;
  double final_loss = 0.0;
  double best_loss = 0.0;
  double total_vtime = 0.0;   // virtual seconds consumed
  double epochs = 0.0;        // epochs-equivalent of processed examples
  std::uint64_t cpu_updates = 0;
  std::uint64_t gpu_updates = 0;
  std::vector<WorkerSummary> workers;
  double wall_seconds = 0.0;  // real time the run took on this host

  // --- fault / recovery outcome (framework algorithms only) --------------
  // Every injected and detected fault of the run, merged from the
  // FaultPlan (injections) and the coordinator (detections/recoveries),
  // sorted by virtual time.
  std::vector<FaultRecord> fault_events;
  std::uint64_t examples_dispatched = 0;
  std::uint64_t examples_reclaimed = 0;  // lost to deadline misses/faults
  std::uint64_t late_examples = 0;       // reported after reclamation
  std::uint64_t rollbacks = 0;           // divergence rollbacks performed
  std::uint64_t quarantined_workers = 0;
  std::uint64_t checkpoints_written = 0;
  double final_lr_scale = 1.0;  // product of divergence lr backoffs
  bool diverged = false;        // run aborted on non-finite loss

  // --- checkpoint/resume + elastic membership ----------------------------
  bool resumed = false;            // run continued from a checkpoint
  std::uint64_t resume_epoch = 0;  // epoch the checkpoint was cut at
  std::uint64_t workers_joined = 0;
  std::uint64_t workers_retired = 0;
  // Serialized final model (nn::write_model payload) for bitwise
  // trajectory comparisons in determinism tests.
  std::vector<std::uint8_t> final_model_bytes;

  // Loss at the given virtual time (step-wise interpolation of the curve).
  double loss_at(double vtime) const;
  // First virtual time at which the loss reached `target` (inf if never).
  double time_to_loss(double target) const;
};

// Writes the run's fault/recovery event log as CSV
// (vtime,worker,kind,reclaimed_examples,detail). Aborts on I/O failure.
void write_fault_events_csv(const TrainingResult& result,
                            const std::string& path);

struct TrainerOptions {
  // Examples sampled for loss tracking (0 = full dataset).
  tensor::Index eval_sample = 2048;
};

class Trainer {
 public:
  // Copies the dataset (epoch shuffles mutate it).
  Trainer(data::Dataset dataset, TrainingConfig config,
          TrainerOptions options = {});

  const TrainingConfig& config() const { return config_; }
  const data::Dataset& dataset() const { return dataset_; }

  // Runs one full training session and returns the metrics. Can be called
  // repeatedly; each run re-initializes the model from config().seed.
  TrainingResult run();

 private:
  TrainingResult run_framework();
  TrainingResult run_reference();

  data::Dataset dataset_;
  TrainingConfig config_;
  TrainerOptions options_;
};

}  // namespace hetsgd::core
