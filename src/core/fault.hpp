// Deterministic fault injection and the vocabulary of the self-healing
// scheduling layer.
//
// Algorithm 2 adapts batch sizes to *speed* heterogeneity but assumes every
// worker is immortal. This module supplies the other axis — availability:
// a seeded FaultPlan injects, at chosen virtual times, worker stalls
// (virtual-cost inflation, optionally a real sleep so real-time detection
// is deterministic), permanent worker death (the actor stops reporting),
// transient device-transfer failures, and gradient corruption (non-finite
// values poisoning the shared model). The coordinator's recovery machinery
// (dispatch deadlines, batch reclamation, quarantine, divergence rollback)
// is exercised against these injections; every injected and detected fault
// is recorded as a FaultRecord for the ledger / CSV output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "msg/message.hpp"

namespace hetsgd {
class CliParser;
}

namespace hetsgd::core {

// Fault taxonomy. The first four are *injected* by a FaultPlan; the rest
// are *detected/handled* by the coordinator and recorded in the ledger.
enum class FaultKind {
  kStall,               // injected: batch virtual cost multiplied
  kDeath,               // injected: worker actor stops reporting
  kTransferFailure,     // injected: device transfer throws
  kGradientCorruption,  // injected: non-finite gradient values
  kCrash,               // injected: SIGKILL of the whole process (power loss)
  kDeadlineMiss,        // detected: dispatch exceeded its deadline
  kSendFailure,         // detected: Actor::send returned false (closed box)
  kWorkerFault,         // detected: worker escalated a fault report
  kQuarantine,          // handled: worker removed from the healthy set
  kReclaim,             // handled: in-flight batch returned to the pool
  kRedispatch,          // handled: reclaimed range assigned to a survivor
  kDivergenceRollback,  // handled: non-finite loss, model restored
  kDivergenceAbort,     // handled: non-finite loss, run aborted per config
  kWorkerJoin,          // handled: worker joined the run (elastic membership)
  kWorkerRetire,        // handled: worker retired from the run
};

const char* fault_kind_name(FaultKind k);

// One planned injection, parsed from the --fault-plan spec.
struct FaultEvent {
  FaultKind kind = FaultKind::kStall;
  msg::WorkerId worker = 0;
  // Trigger: fires on the first batch whose start clock is >= at_vtime.
  // Negative = unresolved; either at_fraction (of the time budget) or a
  // seeded random fraction is substituted by resolve_times().
  double at_vtime = -1.0;
  double at_fraction = -1.0;
  double factor = 1.0;        // kStall: virtual-cost multiplier (persistent)
  std::int64_t sleep_ms = 0;  // kStall: real per-batch sleep (deterministic
                              // real-time stall for the grace-period path)
  std::int64_t count = 1;     // kTransferFailure: consecutive failing copies
  bool fired = false;
};

// A fault that actually happened — injected or detected. Collected by the
// FaultPlan (injections) and the UpdateLedger (coordinator-side events);
// surfaced in TrainingResult::fault_events for experiment CSVs.
struct FaultRecord {
  double vtime = 0.0;
  msg::WorkerId worker = msg::kCoordinator;
  FaultKind kind = FaultKind::kStall;
  std::uint64_t reclaimed_examples = 0;
  std::string detail;
};

// A seeded, deterministic schedule of fault injections. Query methods are
// thread-safe (workers call from their actor threads) and consume events
// exactly once, so a plan replayed with the same seed and schedule yields
// the same run.
//
// Concurrency contract: every field is guarded by `mutex_` and annotated;
// all public methods are self-locking (-Wthread-safety proves no access
// escapes the lock).
class FaultPlan {
 public:
  FaultPlan() = default;

  // Parses a ';'-separated event list:
  //   stall:worker=0,atfrac=0.2,factor=8[,sleep=300]
  //   die:worker=1,at=0.013
  //   transfer:worker=1,atfrac=0.5,count=2
  //   nan:worker=0,atfrac=0.3
  // `at` is a virtual time in seconds, `atfrac` a fraction of the time
  // budget (resolved by resolve_times); with neither, a seeded random
  // fraction is drawn. Returns false and sets *error on a malformed spec.
  static bool parse(const std::string& spec, std::uint64_t seed,
                    FaultPlan* out, std::string* error);

  // Resolves fraction/unspecified triggers against the run's virtual-time
  // budget. Must be called once before the run starts.
  void resolve_times(double budget_vseconds) HETSGD_EXCLUDES(mutex_);

  bool empty() const HETSGD_EXCLUDES(mutex_);
  std::size_t event_count() const HETSGD_EXCLUDES(mutex_);
  // True if the plan schedules at least one injection of `kind`.
  bool contains(FaultKind kind) const HETSGD_EXCLUDES(mutex_);

  // --- worker-side queries (thread-safe) --------------------------------
  // Cumulative stall state for `w` at virtual time `vtime`: the product of
  // all matured stall factors and the sum of their real sleeps. Stalls are
  // persistent — once matured they degrade every subsequent batch.
  struct StallState {
    double factor = 1.0;
    std::int64_t sleep_ms = 0;
  };
  StallState stall(msg::WorkerId w, double vtime) HETSGD_EXCLUDES(mutex_);

  // True exactly once, on the first query at/after the event's trigger.
  bool death_due(msg::WorkerId w, double vtime) HETSGD_EXCLUDES(mutex_);
  bool corruption_due(msg::WorkerId w, double vtime) HETSGD_EXCLUDES(mutex_);
  // True when a whole-process crash (SIGKILL, simulating power loss) is
  // scheduled at/after `vtime` for worker `w`'s execute path. The caller
  // raises the signal; by nature the "fired" record never survives.
  bool crash_due(msg::WorkerId w, double vtime) HETSGD_EXCLUDES(mutex_);

  // Number of consecutive transfer failures to inject (0 = none); the
  // matching event is consumed.
  std::int64_t transfer_failures_due(msg::WorkerId w, double vtime)
      HETSGD_EXCLUDES(mutex_);

  // Injections that actually fired, in firing order.
  std::vector<FaultRecord> fired() const HETSGD_EXCLUDES(mutex_);

 private:
  bool consume(FaultKind kind, msg::WorkerId w, double vtime,
               FaultEvent* out) HETSGD_EXCLUDES(mutex_);

  mutable AnnotatedMutex mutex_;
  std::vector<FaultEvent> events_ HETSGD_GUARDED_BY(mutex_);
  std::vector<FaultRecord> fired_ HETSGD_GUARDED_BY(mutex_);
  std::uint64_t seed_ HETSGD_GUARDED_BY(mutex_) = 0;
};

// Fault-tolerance knobs (TrainingConfig::fault). Everything defaults off /
// conservative so runs without a plan behave exactly as before.
struct FaultToleranceConfig {
  // Injection schedule; empty = no injections.
  std::string plan;

  // Dispatch deadline factor k: a batch estimated to cost c virtual
  // seconds is overdue past dispatch_clock + k*c. A worker whose own
  // report lands past its deadline collects a straggler strike (toward
  // quarantine); a worker that is overdue AND real-time silent for the
  // grace window has its batch reclaimed and re-dispatched. 0 disables
  // the deadline / reclamation / quarantine layer entirely (seed
  // behavior).
  double deadline_factor = 0.0;

  // Consecutive coordinator-visible faults (deadline misses, escalations)
  // before a worker is quarantined for the rest of the run.
  std::int64_t quarantine_after = 3;

  // Worker-local retries for transient device-transfer failures before the
  // fault escalates to the coordinator; backoff doubles per attempt.
  std::int64_t max_transfer_retries = 4;
  double transfer_backoff_vseconds = 1e-4;

  // Real-time grace for reclamation: when every busy worker has been
  // silent for this many coordinator idle ticks (~20 ms each), the most
  // overdue dispatch is declared lost and its range reclaimed. Virtual
  // lateness alone never reclaims — a slow-but-alive worker's report may
  // simply not have arrived yet. Only active when deadline_factor > 0.
  std::int64_t stall_grace_ticks = 25;

  // Non-finite loss handling: roll back to the last finite-loss snapshot
  // and multiply the learning rate by lr_backoff (default), or abort the
  // run cleanly when abort_on_divergence is set.
  bool abort_on_divergence = false;
  double lr_backoff = 0.5;

  // Periodic on-disk auto-checkpoints (nn::save_model of the last-good
  // snapshot) every interval virtual seconds; 0 or empty path = off.
  double checkpoint_interval_vseconds = 0.0;
  std::string checkpoint_path;

  // Full crash-consistent checkpoints (model + optimizer + RNG + ledger +
  // adaptive controller) managed by core::CheckpointManager. Empty dir =
  // off. Cadence reuses checkpoint_interval_vseconds; when the interval is
  // 0 a full checkpoint is cut at every epoch flip. `checkpoint_retain`
  // bounds how many checkpoint files are kept (oldest pruned first).
  std::string checkpoint_dir;
  std::int64_t checkpoint_retain = 3;

  // Resume the run from the newest valid checkpoint in this directory
  // (typically the same as checkpoint_dir). Empty = start fresh; a
  // directory with no usable checkpoint also starts fresh, so a crash
  // before the first cut still restarts cleanly.
  std::string resume_dir;
};

// Registers the --fault-* / --checkpoint-* flags onto a CLI parser,
// writing straight into `fault`'s fields.
void register_fault_flags(CliParser& cli, FaultToleranceConfig* fault);

}  // namespace hetsgd::core
