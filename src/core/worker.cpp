#include "core/worker.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <limits>
#include <thread>

#include "common/atomic_file.hpp"
#include "common/logging.hpp"
#include "common/macros.hpp"
#include "backend/cpu_backend.hpp"
#include "core/cost_model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hetsgd::core {

using tensor::Index;

std::unique_ptr<backend::Backend> make_device_backend(
    const TrainingConfig& config) {
  auto b = backend::make_backend(config.backend, config.gpu.spec);
  HETSGD_ASSERT(b != nullptr, "unknown --backend name");
  return b;
}

namespace {

std::string worker_name(ExecMode mode, int ordinal) {
  return mode == ExecMode::kHogwild
             ? std::string("cpu-worker")
             : "gpu-worker-" + std::to_string(ordinal);
}

}  // namespace

Worker::Worker(msg::WorkerId id, const TrainingConfig& config,
               const data::Dataset& dataset, nn::Model& global_model,
               msg::Actor& coordinator, ExecMode mode, int real_threads,
               int ordinal)
    : msg::Actor(worker_name(mode, ordinal)), id_(id), config_(config),
      dataset_(dataset), model_(global_model), coordinator_(coordinator),
      mode_(mode), hogwild_perf_(config.cpu.spec),
      optimizer_(config.optimizer, global_model) {
  if (mode_ == ExecMode::kHogwild) {
    pool_ = std::make_unique<concurrent::ThreadPool>(
        static_cast<std::size_t>(std::max(real_threads, 1)));
    const std::size_t lanes = pool_->thread_count() + 1;
    gradients_.reserve(lanes);
    optimizers_.reserve(lanes);
    for (std::size_t i = 0; i < lanes; ++i) {
      gradients_.push_back(nn::make_zero_gradient(model_));
      optimizers_.emplace_back(config.optimizer, model_);
    }
    // Lanes start sized for the configured per-thread examples and grow on
    // demand (ensure_lane_capacity), like the old Workspace did.
    ensure_lane_capacity(std::max<Index>(1, config_.cpu.examples_per_thread));
    return;
  }
  backend_ = make_device_backend(config);
  executor_ = std::make_unique<backend::MlpExecutor>(*backend_, config.mlp,
                                                     config.gpu.max_batch);
  host_gradient_ = nn::make_zero_gradient(global_model);
  upload_snapshot_ = global_model;
}

const backend::PerfModel& Worker::perf() const {
  return mode_ == ExecMode::kHogwild ? hogwild_perf_ : backend_->perf();
}

void Worker::ensure_lane_capacity(Index sub_batch) {
  if (sub_batch <= lane_capacity_ && !lane_executors_.empty()) return;
  const std::size_t lanes = gradients_.size();
  // Executors free their buffers through their Backend on destruction, so
  // they must go before the backends they reference.
  lane_executors_.clear();
  lane_backends_.clear();
  lane_backends_.reserve(lanes);
  lane_executors_.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    auto b = std::make_unique<backend::CpuBackend>(
        config_.cpu.spec, backend::CpuBackend::Mode::kZeroCopy);
    auto e = std::make_unique<backend::MlpExecutor>(*b, config_.mlp,
                                                    sub_batch);
    // The executor's "replica" is the live shared model: Hogwild's
    // reference replica, raced against every other lane by design.
    e->bind_shared_model(model_);
    e->bind_host_gradient(gradients_[i]);
    lane_backends_.push_back(std::move(b));
    lane_executors_.push_back(std::move(e));
  }
  lane_capacity_ = sub_batch;
}

void Worker::release_scratch() {
  lane_executors_.clear();
  lane_backends_.clear();
  lane_capacity_ = 0;
  if (executor_) executor_->release_buffers();
}

bool Worker::handle(msg::Envelope envelope) {
  // hetsgd-analyze: dispatch ignores(ScheduleWork, WorkerFault, ShutdownAck,
  // WorkerJoin, WorkerRetire, StateReport) — coordinator-bound messages; a
  // worker mailbox only ever receives work, state probes, and shutdown.
  if (std::holds_alternative<msg::ExecuteWork>(envelope.message)) {
    return execute(std::get<msg::ExecuteWork>(envelope.message));
  }
  if (std::holds_alternative<msg::StateRequest>(envelope.message)) {
    msg::StateReport report;
    report.worker = id_;
    report.state = serialize_state();
    if (!coordinator_.send({id_, std::move(report)})) {
      HETSGD_LOG_WARN(log_tag(), "state report dropped: mailbox closed");
    }
    return true;
  }
  if (std::holds_alternative<msg::Shutdown>(envelope.message)) {
    // Worker retirement: return the scratch and replica buffers before the
    // ack — a retired elastic worker must not pin device memory.
    release_scratch();
    if (!coordinator_.send({id_, msg::ShutdownAck{id_}})) {
      HETSGD_LOG_WARN(log_tag(), "shutdown ack dropped: mailbox closed");
    }
    return false;
  }
  HETSGD_LOG_WARN(log_tag(), "unexpected message variant %zu",
                  envelope.message.index());
  return true;
}

bool Worker::on_handle_exception(const std::string& what) {
  // Convert the escaped exception (e.g. exhausted transfer retries) into a
  // fault report; the coordinator reclaims our in-flight batch and
  // quarantines this worker.
  HETSGD_LOG_WARN(log_tag(), "fault escalated: %s", what.c_str());
  msg::WorkerFault fault;
  fault.worker = id_;
  fault.vtime = clock_.now();
  fault.detail = what;
  if (!coordinator_.send({id_, std::move(fault)})) {
    HETSGD_LOG_WARN(log_tag(), "fault report dropped: mailbox closed");
  }
  return false;
}

bool Worker::execute(const msg::ExecuteWork& work) {
  return mode_ == ExecMode::kHogwild ? execute_hogwild(work)
                                     : execute_replica(work);
}

bool Worker::execute_hogwild(const msg::ExecuteWork& work) {
  const Index begin = static_cast<Index>(work.batch_begin);
  const Index size = static_cast<Index>(work.batch_size);
  HETSGD_ASSERT(size > 0, "empty batch assigned");
  HETSGD_ASSERT(begin + size <= dataset_.example_count(),
                "batch out of dataset range");

  const std::uint64_t flow = obs::batch_flow_id(id_, work.sequence);
  HETSGD_TRACE_SPAN(exec_span, "cpu-worker", "execute", clock_.now(), flow);
  obs::trace_flow_step("batch", flow, clock_.now());

  // Epoch-boundary waits (not_before) appear as idle virtual time; faults
  // trigger on the clock the batch actually starts at.
  clock_.advance_to(work.not_before);
  FaultPlan::StallState stall;
  if (fault_plan_ != nullptr) {
    if (fault_plan_->crash_due(id_, clock_.now())) {
      // Simulated power loss: take the whole process down with no
      // destructors, no flushes, no goodbye — the crash-consistency of the
      // checkpoint files is exactly what this exercises.
      HETSGD_LOG_WARN("cpu-worker", "injected crash (SIGKILL) at vtime %.6f",
                      clock_.now());
      std::raise(SIGKILL);
    }
    if (fault_plan_->death_due(id_, clock_.now())) {
      HETSGD_LOG_WARN("cpu-worker", "injected death at vtime %.6f",
                      clock_.now());
      return false;  // stop reporting — the actor is dead
    }
    stall = fault_plan_->stall(id_, clock_.now());
    if (stall.sleep_ms > 0) {
      // Real stall: visible to the coordinator's real-time grace fallback.
      // hetsgd-analyze: allow(wall-clock-core) same sanction as below.
      // hetsgd-lint: allow(wall-clock) injected stalls must consume real
      // time, not virtual time, to exercise real-time silence detection.
      std::this_thread::sleep_for(std::chrono::milliseconds(stall.sleep_ms));
    }
  }

  const int t = config_.cpu.sim_lanes;
  // Split B into t sub-batches of size B/t (Algorithm 2, CPU worker
  // handler). Tail batches (epoch remainders) may produce fewer sub-batches.
  const Index sub_batch = std::max<Index>(1, size / t);
  const Index num_sub = (size + sub_batch - 1) / sub_batch;
  ensure_lane_capacity(sub_batch);
  // The dispatched rate tracks config_.learning_rate except after a
  // divergence rollback, when the coordinator backs it off; honor the
  // ratio so the backoff reaches the capped effective rate too.
  const double lr_scale =
      (config_.learning_rate > 0.0 && work.learning_rate > 0.0)
          ? work.learning_rate / config_.learning_rate
          : 1.0;
  const double lr =
      config_.effective_lr(sub_batch) *
      nn::lr_multiplier(config_.lr_schedule,
                        static_cast<double>(work.epoch)) *
      lr_scale;

  // Hogwild: every lane reads the shared model (through its zero-copy
  // executor), computes its sub-batch gradient, and writes the update back
  // with no synchronization.
  {
    HETSGD_TRACE_SCOPE("cpu-worker", "hogwild_parallel_for");
    pool_->parallel_for(
      static_cast<std::size_t>(num_sub),
      [&](std::size_t first, std::size_t last, std::size_t lane) {
        backend::MlpExecutor& exec = *lane_executors_[lane];
        nn::Gradient& grad = gradients_[lane];
        for (std::size_t i = first; i < last; ++i) {
          const Index sb_begin = begin + static_cast<Index>(i) * sub_batch;
          const Index sb_size =
              std::min(sub_batch, begin + size - sb_begin);
          auto x = dataset_.batch_features(sb_begin, sb_size);
          auto y = dataset_.batch_labels(sb_begin, sb_size);
          exec.compute_gradient(x, y, clock_.now(), nullptr);
          optimizers_[lane].step(model_, grad,
                                 static_cast<tensor::Scalar>(lr));
        }
      });
  }

  if (fault_plan_ != nullptr &&
      fault_plan_->corruption_due(id_, clock_.now())) {
    // Poison one lane's gradient with a NaN and apply it: the shared model
    // goes non-finite exactly as a real numerically-diverged update would,
    // exercising the coordinator's divergence rollback.
    HETSGD_LOG_WARN("cpu-worker", "injected gradient corruption at vtime %.6f",
                    clock_.now());
    nn::Gradient& grad = gradients_[0];
    if (grad.layer_count() > 0 && grad.layer(0).weights.size() > 0) {
      grad.layer(0).weights.data()[0] =
          std::numeric_limits<tensor::Scalar>::quiet_NaN();
      optimizers_[0].step(model_, grad, static_cast<tensor::Scalar>(lr));
    }
  }

  // Virtual time: num_sub logical lanes at sub_batch each (waves beyond
  // the simulated 56 threads are handled inside the cost model). Stalls
  // inflate the charged cost by the configured factor.
  const double cost = cpu_batch_seconds(hogwild_perf_, config_.mlp, sub_batch,
                                        static_cast<int>(num_sub)) *
                      stall.factor;
  clock_.advance(cost);
  busy_vtime_ += cost;
  updates_scaled_ += static_cast<double>(num_sub) * config_.beta;
  exec_span.set_end_vt(clock_.now());

  const double intensity = cpu_batch_intensity(
      std::min<int>(static_cast<int>(num_sub), hogwild_perf_.spec().lanes),
      config_.cpu.host_threads, sub_batch,
      config_.cpu.max_examples_per_thread);
  request_work(static_cast<std::uint64_t>(size), intensity, work.sequence);
  return true;
}

bool Worker::execute_replica(const msg::ExecuteWork& work) {
  const Index begin = static_cast<Index>(work.batch_begin);
  const Index size = static_cast<Index>(work.batch_size);
  HETSGD_ASSERT(size > 0, "empty batch assigned");
  HETSGD_ASSERT(begin + size <= dataset_.example_count(),
                "batch out of dataset range");
  HETSGD_ASSERT(size <= config_.gpu.max_batch, "batch exceeds device buffers");

  const std::uint64_t flow = obs::batch_flow_id(id_, work.sequence);
  HETSGD_TRACE_SPAN(exec_span, "gpu-worker", "execute", clock_.now(), flow);
  obs::trace_flow_step("batch", flow, clock_.now());

  clock_.advance_to(work.not_before);
  FaultPlan::StallState stall;
  if (fault_plan_ != nullptr) {
    if (fault_plan_->crash_due(id_, clock_.now())) {
      // Simulated power loss: take the whole process down with no
      // destructors, no flushes, no goodbye — the crash-consistency of the
      // checkpoint files is exactly what this exercises.
      HETSGD_LOG_WARN("gpu-worker", "injected crash (SIGKILL) at vtime %.6f",
                      clock_.now());
      std::raise(SIGKILL);
    }
    if (fault_plan_->death_due(id_, clock_.now())) {
      HETSGD_LOG_WARN("gpu-worker", "injected death at vtime %.6f",
                      clock_.now());
      return false;  // stop reporting — the actor is dead
    }
    stall = fault_plan_->stall(id_, clock_.now());
    if (stall.sleep_ms > 0) {
      // hetsgd-analyze: allow(wall-clock-core) same sanction as below.
      // hetsgd-lint: allow(wall-clock) injected stalls must consume real
      // time, not virtual time, to exercise real-time silence detection.
      std::this_thread::sleep_for(std::chrono::milliseconds(stall.sleep_ms));
    }
    const std::int64_t transfer_faults =
        fault_plan_->transfer_failures_due(id_, clock_.now());
    if (transfer_faults > 0) {
      HETSGD_LOG_WARN("gpu-worker", "injecting %lld transfer fault(s)",
                      static_cast<long long>(transfer_faults));
      backend_->inject_transfer_faults(transfer_faults);
    }
  }

  const double issue = clock_.now();
  auto x = dataset_.batch_features(begin, size);
  auto y = dataset_.batch_labels(begin, size);
  double done = issue;

  // The upload/compute/download round trip is retried as a unit on
  // transient transfer failures, with capped exponential backoff charged to
  // virtual time (the modeled driver re-issuing the copy). Past
  // max_transfer_retries the error escapes handle(): the actor framework
  // turns it into a WorkerFault report via on_handle_exception.
  const std::int64_t max_retries =
      std::max<std::int64_t>(0, config_.fault.max_transfer_retries);
  for (std::int64_t attempt = 0;; ++attempt) {
    try {
      // Deep-copy the current global model into the device replica. The
      // reads race with concurrent Hogwild-lane updates — Hogwild
      // semantics extend across the PCIe boundary. The host-side snapshot
      // is kept to measure how stale the replica became by merge time.
      {
        HETSGD_TRACE_SPAN(h2d_span, "gpu-worker", "upload_model",
                          clock_.now(), flow);
        upload_snapshot_ = model_;
        executor_->upload_model(upload_snapshot_, clock_.now());
        done = clock_.now();
        h2d_span.set_end_vt(done);
      }
      {
        HETSGD_TRACE_SPAN(kernel_span, "gpu-worker", "compute_gradient",
                          clock_.now(), flow);
        executor_->compute_gradient(x, y, clock_.now(), &done);
        kernel_span.set_end_vt(done);
      }
      {
        HETSGD_TRACE_SPAN(d2h_span, "gpu-worker", "download_gradient",
                          clock_.now(), flow);
        done = executor_->download_gradient(host_gradient_, clock_.now());
        d2h_span.set_end_vt(done);
      }
      break;
    } catch (const backend::TransferError& e) {
      if (attempt >= max_retries) throw;  // escalate to the coordinator
      ++transfer_retries_;
      static obs::Counter& retry_counter = obs::MetricsRegistry::instance()
          .counter("hetsgd_transfer_retries_total");
      retry_counter.inc();
      HETSGD_TRACE_INSTANT("fault", "transfer_retry", clock_.now(), flow);
      const int shift = static_cast<int>(std::min<std::int64_t>(attempt, 10));
      const double backoff = config_.fault.transfer_backoff_vseconds *
                             static_cast<double>(std::int64_t{1} << shift);
      HETSGD_LOG_WARN("gpu-worker",
                      "transfer failed (%s); retry %lld/%lld after %.2e vs",
                      e.what(), static_cast<long long>(attempt + 1),
                      static_cast<long long>(max_retries), backoff);
      clock_.advance(backoff);
    }
  }

  if (fault_plan_ != nullptr &&
      fault_plan_->corruption_due(id_, clock_.now())) {
    // Poison the downloaded gradient: the merge below drives the shared
    // model non-finite, exercising the coordinator's divergence rollback.
    HETSGD_LOG_WARN("gpu-worker", "injected gradient corruption at vtime %.6f",
                    clock_.now());
    if (host_gradient_.layer_count() > 0 &&
        host_gradient_.layer(0).weights.size() > 0) {
      host_gradient_.layer(0).weights.data()[0] =
          std::numeric_limits<tensor::Scalar>::quiet_NaN();
    }
  }

  // Merge into the shared global model on the host (gradient-push
  // integration, applied asynchronously at the worker).
  const double staleness =
      static_cast<double>(model_.max_abs_diff(upload_snapshot_));
  const double lr_scale =
      (config_.learning_rate > 0.0 && work.learning_rate > 0.0)
          ? work.learning_rate / config_.learning_rate
          : 1.0;
  const double lr =
      config_.effective_lr(size) *
      nn::lr_multiplier(config_.lr_schedule,
                        static_cast<double>(work.epoch)) *
      lr_scale;
  {
    HETSGD_TRACE_SPAN(merge_span, "gpu-worker", "host_merge",
                      clock_.now(), flow);
    optimizer_.step(model_, host_gradient_, static_cast<tensor::Scalar>(lr));
    if (config_.gpu.host_merge_bandwidth > 0.0) {
      done += 2.0 * static_cast<double>(model_bytes(config_.mlp)) /
              config_.gpu.host_merge_bandwidth;
    }
  }

  // Stalls inflate the compute span (issue -> done) by the configured
  // factor; backoff time already advanced the clock directly.
  done = issue + (done - issue) * stall.factor;

  clock_.advance_to(done);
  busy_vtime_ += clock_.now() - issue;
  ++updates_;
  exec_span.set_end_vt(clock_.now());

  request_work(static_cast<std::uint64_t>(size),
               backend_->perf().utilization(static_cast<double>(size)),
               work.sequence, staleness);
  return true;
}

namespace {
constexpr std::uint8_t kHogwildStateTag = 'C';
constexpr std::uint32_t kHogwildStateVersion = 1;
constexpr std::uint8_t kReplicaStateTag = 'G';
constexpr std::uint32_t kReplicaStateVersion = 1;
}  // namespace

std::vector<std::uint8_t> Worker::serialize_state() const {
  ByteWriter w;
  if (mode_ == ExecMode::kHogwild) {
    w.write_u8(kHogwildStateTag);
    w.write_u32(kHogwildStateVersion);
    w.write_f64(clock_.now());
    w.write_f64(busy_vtime_);
    // The raw beta-weighted accumulator, bit-exact: floor() loses the
    // fractional part that decides when the next report's count ticks over.
    w.write_f64(updates_scaled_);
    w.write_u32(static_cast<std::uint32_t>(optimizers_.size()));
    for (const nn::Optimizer& opt : optimizers_) {
      opt.serialize(w);
    }
    return w.data();
  }
  w.write_u8(kReplicaStateTag);
  w.write_u32(kReplicaStateVersion);
  w.write_f64(clock_.now());
  w.write_f64(busy_vtime_);
  w.write_u64(updates_);
  optimizer_.serialize(w);
  return w.data();
}

bool Worker::restore_state(const std::vector<std::uint8_t>& bytes,
                           std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  ByteReader r(bytes);
  std::uint8_t tag = 0;
  std::uint32_t version = 0;
  double clock = 0.0;
  if (mode_ == ExecMode::kHogwild) {
    std::uint32_t lanes = 0;
    if (!r.read_u8(&tag) || tag != kHogwildStateTag) {
      return fail("not a CPU worker state blob");
    }
    if (!r.read_u32(&version) || version != kHogwildStateVersion) {
      return fail("unsupported CPU worker state version");
    }
    if (!r.read_f64(&clock) || !r.read_f64(&busy_vtime_) ||
        !r.read_f64(&updates_scaled_) || !r.read_u32(&lanes)) {
      return fail("truncated CPU worker state");
    }
    clock_.reset(clock);
    if (static_cast<std::size_t>(lanes) != optimizers_.size()) {
      // A different --threads count changes the lane set; optimizer slots
      // cannot be mapped across it. Plain-SGD runs carry no slots, so this
      // still restores exactly; momentum/Adam lanes restart cold.
      HETSGD_LOG_WARN("cpu-worker",
                      "checkpoint has %u optimizer lanes, this run has %zu; "
                      "restoring common prefix",
                      lanes, optimizers_.size());
    }
    for (std::uint32_t i = 0; i < lanes; ++i) {
      if (static_cast<std::size_t>(i) < optimizers_.size()) {
        if (!optimizers_[i].deserialize(r, error)) return false;
      } else {
        // Consume the extra lane's bytes to keep the stream aligned.
        nn::Optimizer discard(config_.optimizer, model_);
        if (!discard.deserialize(r, error)) return false;
      }
    }
    return true;
  }
  if (!r.read_u8(&tag) || tag != kReplicaStateTag) {
    return fail("not a GPU worker state blob");
  }
  if (!r.read_u32(&version) || version != kReplicaStateVersion) {
    return fail("unsupported GPU worker state version");
  }
  if (!r.read_f64(&clock) || !r.read_f64(&busy_vtime_) ||
      !r.read_u64(&updates_)) {
    return fail("truncated GPU worker state");
  }
  clock_.reset(clock);
  return optimizer_.deserialize(r, error);
}

void Worker::request_work(std::uint64_t examples, double intensity,
                          std::uint64_t sequence, double staleness) {
  msg::ScheduleWork req;
  req.worker = id_;
  req.updates = mode_ == ExecMode::kHogwild
                    ? static_cast<std::uint64_t>(updates_scaled_)
                    : updates_;
  req.busy_vtime = busy_vtime_;
  req.clock_vtime = clock_.now();
  req.intensity = intensity;
  req.examples = examples;
  req.staleness = staleness;
  req.sequence = sequence;
  if (!coordinator_.send({id_, req})) {
    HETSGD_LOG_WARN(log_tag(), "work report dropped: mailbox closed");
  }
}

}  // namespace hetsgd::core
