// Utilization monitor: per-worker busy segments in virtual time (Fig. 7).
//
// Each completed batch contributes one segment [t0, t1] with an intensity
// (the device utilization during that batch: GEMM efficiency relative to
// its asymptote on GPU, occupied-thread fraction on CPU). Gaps between
// segments are idle time. The bucketed series reproduces the paper's
// utilization-over-time plots.
#pragma once

#include <cstdint>
#include <vector>

#include "backend/device_model.hpp"
#include "msg/message.hpp"

namespace hetsgd::core {

struct BusySegment {
  double t0 = 0.0;
  double t1 = 0.0;
  double intensity = 0.0;  // [0, 1]
};

class UtilizationMonitor {
 public:
  explicit UtilizationMonitor(std::size_t workers);

  // Grows the monitor by one worker (elastic join). New workers get the
  // next dense id; their pre-join history is empty idle time.
  void add_worker();

  void record(msg::WorkerId worker, double t0, double t1, double intensity);

  const std::vector<BusySegment>& segments(msg::WorkerId worker) const;

  // Average utilization of `worker` over [0, horizon] sampled into buckets
  // of `dt` virtual seconds. Overlapping fractions of segments are
  // apportioned to buckets exactly.
  std::vector<double> bucket_series(msg::WorkerId worker, double dt,
                                    double horizon) const;

  // Mean utilization of a worker over [0, horizon] (idle counted as 0).
  double mean_utilization(msg::WorkerId worker, double horizon) const;

 private:
  std::vector<std::vector<BusySegment>> per_worker_;
};

}  // namespace hetsgd::core
