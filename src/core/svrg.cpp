#include "core/svrg.hpp"

#include <algorithm>
#include <cmath>

#include "common/macros.hpp"
#include "core/cost_model.hpp"
#include "nn/mlp.hpp"

namespace hetsgd::core {

using tensor::Index;
using tensor::Scalar;

SvrgResult run_svrg(data::Dataset& dataset, const TrainingConfig& config,
                    const SvrgOptions& options) {
  TrainingConfig cfg = config;
  cfg.mlp.input_dim = dataset.dim();
  cfg.mlp.num_classes = dataset.num_classes();
  cfg.mlp.validate();
  HETSGD_ASSERT(options.batch > 0, "svrg batch must be positive");

  Rng rng(cfg.seed);
  nn::Model w(cfg.mlp, rng);          // current iterate
  nn::Model snapshot = w;             // w~
  nn::Gradient mu = nn::make_zero_gradient(w);      // full gradient at w~
  nn::Gradient g_cur = nn::make_zero_gradient(w);   // batch grad at w
  nn::Gradient g_snap = nn::make_zero_gradient(w);  // batch grad at w~
  nn::Workspace ws;

  const Index n = dataset.example_count();
  const Index batch = std::min(options.batch, n);
  const std::uint64_t inner_per_round =
      options.inner_steps > 0
          ? options.inner_steps
          : static_cast<std::uint64_t>((n + batch - 1) / batch);

  gpusim::PerfModel perf(cfg.gpu.spec);
  // Virtual cost of one batch gradient and one full pass on the device.
  const double batch_cost =
      gpu_batch_seconds(perf, cfg.mlp, batch, 0.0);
  const double full_pass_cost =
      gpu_epoch_seconds(perf, cfg.mlp, n, std::min<Index>(n, 8192), 0.0);

  // Loss evaluation sample.
  const Index sample =
      options.eval_sample > 0 ? std::min(options.eval_sample, n) : n;
  tensor::Matrix eval_x(sample, dataset.dim());
  std::vector<std::int32_t> eval_y(static_cast<std::size_t>(sample));
  for (Index i = 0; i < sample; ++i) {
    const Scalar* from = dataset.features().row(i);
    std::copy(from, from + dataset.dim(), eval_x.row(i));
    eval_y[static_cast<std::size_t>(i)] =
        dataset.labels()[static_cast<std::size_t>(i)];
  }
  auto eval_loss = [&](const nn::Model& m) {
    double total = 0.0;
    const Index chunk = 512;
    for (Index begin = 0; begin < sample; begin += chunk) {
      const Index count = std::min(chunk, sample - begin);
      std::span<const std::int32_t> y(eval_y.data() + begin,
                                      static_cast<std::size_t>(count));
      total += static_cast<double>(nn::compute_loss(
                   m, eval_x.rows_view(begin, count), y, ws)) *
               static_cast<double>(count);
    }
    return total / static_cast<double>(sample);
  };

  SvrgResult result;
  double clock = 0.0;
  double examples_done = 0.0;
  auto record = [&] {
    result.curve.push_back(
        {clock, examples_done / static_cast<double>(n), eval_loss(w)});
  };
  record();
  double next_eval = options.eval_interval_vseconds;

  const double eta = cfg.effective_lr(batch);
  std::uint64_t rounds = 0;
  while (clock < cfg.time_budget_vseconds &&
         (cfg.max_epochs == 0 || result.epochs < static_cast<double>(
                                                     cfg.max_epochs))) {
    // Snapshot: w~ <- w, mu <- full gradient at w~.
    snapshot = w;
    mu.set_zero();
    for (Index begin = 0; begin < n; begin += 8192) {
      const Index count = std::min<Index>(8192, n - begin);
      auto x = dataset.batch_features(begin, count);
      auto y = dataset.batch_labels(begin, count);
      nn::compute_gradient(snapshot, x, y, ws, g_snap);
      mu.axpy(static_cast<Scalar>(count) / static_cast<Scalar>(n), g_snap);
    }
    clock += full_pass_cost;
    ++result.snapshots;
    examples_done += static_cast<double>(n);

    // Inner loop: variance-corrected stochastic steps.
    Index cursor = 0;
    for (std::uint64_t s = 0; s < inner_per_round; ++s) {
      if (cursor + batch > n) {
        dataset.shuffle(rng);
        cursor = 0;
      }
      auto x = dataset.batch_features(cursor, batch);
      auto y = dataset.batch_labels(cursor, batch);
      nn::compute_gradient(w, x, y, ws, g_cur);
      nn::compute_gradient(snapshot, x, y, ws, g_snap);
      // w -= eta * (g_cur - g_snap + mu)
      w.axpy(static_cast<Scalar>(-eta), g_cur);
      w.axpy(static_cast<Scalar>(eta), g_snap);
      w.axpy(static_cast<Scalar>(-eta), mu);
      cursor += batch;
      clock += 2.0 * batch_cost;  // two batch gradients per inner step
      ++result.inner_updates;
      examples_done += 2.0 * static_cast<double>(batch);
      if (options.eval_interval_vseconds > 0.0) {
        while (next_eval <= clock) {
          record();
          next_eval += options.eval_interval_vseconds;
        }
      }
      if (clock >= cfg.time_budget_vseconds) break;
    }
    if (options.eval_interval_vseconds <= 0.0) {
      record();
    }
    ++rounds;
    result.epochs = examples_done / static_cast<double>(n);
  }

  result.final_vtime = clock;
  result.epochs = examples_done / static_cast<double>(n);
  return result;
}

}  // namespace hetsgd::core
