#include "core/elastic.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/cli.hpp"

namespace hetsgd::core {

namespace {

bool parse_double(const std::string& s, double& out) {
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0' && end != s.c_str();
}

bool parse_int(const std::string& s, std::int64_t& out) {
  char* end = nullptr;
  out = std::strtoll(s.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && end != s.c_str();
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= s.size()) {
    const std::size_t end = s.find(sep, begin);
    if (end == std::string::npos) {
      parts.push_back(s.substr(begin));
      break;
    }
    parts.push_back(s.substr(begin, end - begin));
    begin = end + 1;
  }
  return parts;
}

}  // namespace

bool ElasticPlan::parse(const std::string& spec, ElasticPlan* out,
                        std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  out->events.clear();
  for (const std::string& item : split(spec, ';')) {
    if (item.empty()) continue;
    const std::size_t colon = item.find(':');
    if (colon == std::string::npos) {
      return fail("elastic event missing ':' — " + item);
    }
    ElasticEvent ev;
    const std::string kind = item.substr(0, colon);
    if (kind == "join") {
      ev.kind = ElasticEvent::Kind::kJoin;
    } else if (kind == "retire") {
      ev.kind = ElasticEvent::Kind::kRetire;
    } else {
      return fail("unknown elastic event '" + kind + "' (join|retire)");
    }
    for (const std::string& kv : split(item.substr(colon + 1), ',')) {
      if (kv.empty()) continue;
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        return fail("elastic parameter missing '=' — " + kv);
      }
      const std::string key = kv.substr(0, eq);
      const std::string value = kv.substr(eq + 1);
      std::int64_t iv = 0;
      double dv = 0.0;
      if (key == "kind") {
        if (value == "cpu") {
          ev.device = gpusim::DeviceKind::kCpu;
        } else if (value == "gpu") {
          ev.device = gpusim::DeviceKind::kGpu;
        } else {
          return fail("bad worker kind — " + kv + " (cpu|gpu)");
        }
      } else if (key == "worker") {
        if (!parse_int(value, iv) || iv < 0) {
          return fail("bad worker id — " + kv);
        }
        ev.worker = static_cast<msg::WorkerId>(iv);
      } else if (key == "at") {
        if (!parse_double(value, dv) || dv < 0.0) {
          return fail("bad trigger time — " + kv);
        }
        ev.at_vtime = dv;
      } else if (key == "atfrac") {
        if (!parse_double(value, dv) || dv < 0.0) {
          return fail("bad trigger fraction — " + kv);
        }
        ev.at_fraction = dv;
      } else {
        return fail("unknown elastic parameter '" + key + "'");
      }
    }
    if (ev.kind == ElasticEvent::Kind::kRetire && ev.worker < 0) {
      return fail("retire event missing worker= — " + item);
    }
    if (ev.at_vtime < 0.0 && ev.at_fraction < 0.0) {
      return fail("elastic event needs at= or atfrac= — " + item);
    }
    out->events.push_back(ev);
  }
  return true;
}

void ElasticPlan::resolve_times(double budget_vseconds) {
  for (ElasticEvent& ev : events) {
    if (ev.at_vtime >= 0.0) continue;
    ev.at_vtime = ev.at_fraction * budget_vseconds;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const ElasticEvent& a, const ElasticEvent& b) {
                     return a.at_vtime < b.at_vtime;
                   });
}

void register_elastic_flags(CliParser& cli, std::string* plan) {
  cli.add_string("elastic-plan", plan,
                 "membership changes, e.g. "
                 "'join:kind=gpu,atfrac=0.3;retire:worker=1,atfrac=0.6'");
}

}  // namespace hetsgd::core
