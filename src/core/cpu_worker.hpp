// CPU worker: nested Hogbatch over the shared model (§V-A, Algorithm 2's
// CPU worker handler).
//
// On each ExecuteWork the assigned batch is split into t = sim_lanes
// sub-batches; each lane computes a gradient against the *shared* global
// model (a reference replica — no copy) and applies it immediately with no
// synchronization. The races between lanes — and against the GPU worker's
// concurrent merges — are real: lanes run on actual threads. Virtual time
// is charged by the cost model as if all sim_lanes ran concurrently on the
// paper's 56-thread Xeon, regardless of how many physical cores execute
// the lanes here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "concurrent/thread_pool.hpp"
#include "core/config.hpp"
#include "core/fault.hpp"
#include "data/dataset.hpp"
#include "gpusim/perf_model.hpp"
#include "gpusim/virtual_clock.hpp"
#include "msg/actor.hpp"
#include "nn/mlp.hpp"

namespace hetsgd::core {

class CpuWorker final : public msg::Actor {
 public:
  CpuWorker(msg::WorkerId id, const TrainingConfig& config,
            const data::Dataset& dataset, nn::Model& global_model,
            msg::Actor& coordinator, int real_threads);

  msg::WorkerId id() const { return id_; }
  const gpusim::PerfModel& perf() const { return perf_; }

  // Attaches a fault-injection plan (shared, thread-safe). Call before
  // start(); nullptr = no injections.
  void set_fault_plan(FaultPlan* plan) { fault_plan_ = plan; }

  // Checkpointing: the worker's private state (virtual clock, update
  // counter, per-lane optimizer slots) as an opaque blob, produced on the
  // actor thread in response to StateRequest. restore_state() is the
  // inverse; call it before start() only.
  std::vector<std::uint8_t> serialize_state() const;
  bool restore_state(const std::vector<std::uint8_t>& bytes,
                     std::string* error);

 protected:
  bool handle(msg::Envelope envelope) override;
  bool on_handle_exception(const std::string& what) override;

 private:
  // Returns false when an injected death fires: the actor exits its loop
  // without reporting, exactly like a crashed worker.
  bool execute(const msg::ExecuteWork& work);
  void request_work(std::uint64_t examples, double intensity,
                    std::uint64_t sequence);

  msg::WorkerId id_;
  const TrainingConfig& config_;
  const data::Dataset& dataset_;
  nn::Model& model_;  // the shared global model (reference replica)
  msg::Actor& coordinator_;
  gpusim::PerfModel perf_;
  FaultPlan* fault_plan_ = nullptr;
  gpusim::VirtualClock clock_;
  double busy_vtime_ = 0.0;
  // beta-weighted update count; reported to the coordinator as floor().
  double updates_scaled_ = 0.0;

  concurrent::ThreadPool pool_;
  // Per physical lane scratch (lanes process multiple logical sub-batches).
  std::vector<nn::Workspace> workspaces_;
  std::vector<nn::Gradient> gradients_;
  std::vector<nn::Optimizer> optimizers_;
};

}  // namespace hetsgd::core
