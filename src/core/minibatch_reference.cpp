#include "core/minibatch_reference.hpp"

#include <algorithm>
#include <memory>

#include "backend/mlp_executor.hpp"
#include "common/macros.hpp"
#include "core/worker.hpp"
#include "nn/mlp.hpp"

namespace hetsgd::core {

using tensor::Index;

ReferenceResult run_minibatch_reference(data::Dataset& dataset,
                                        const TrainingConfig& config,
                                        const ReferenceOptions& options) {
  TrainingConfig cfg = config;
  cfg.mlp.input_dim = dataset.dim();
  cfg.mlp.num_classes = dataset.num_classes();
  cfg.mlp.validate();

  Rng rng(cfg.seed);
  nn::Model model(cfg.mlp, rng);
  std::unique_ptr<backend::Backend> dev = make_device_backend(cfg);
  backend::MlpExecutor mlp(*dev, cfg.mlp, cfg.gpu.batch);

  // Loss-evaluation sample (fixed rows copied out before shuffling).
  const Index n = dataset.example_count();
  const Index sample = options.eval_sample > 0
                           ? std::min(options.eval_sample, n)
                           : n;
  tensor::Matrix eval_x(sample, dataset.dim());
  std::vector<std::int32_t> eval_y(static_cast<std::size_t>(sample));
  {
    std::vector<std::size_t> idx(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    Rng srng = rng.fork(7);
    srng.shuffle(idx);
    for (Index i = 0; i < sample; ++i) {
      const Index src = static_cast<Index>(idx[static_cast<std::size_t>(i)]);
      const tensor::Scalar* from = dataset.features().row(src);
      std::copy(from, from + dataset.dim(), eval_x.row(i));
      eval_y[static_cast<std::size_t>(i)] =
          dataset.labels()[static_cast<std::size_t>(src)];
    }
  }
  nn::Workspace eval_ws;
  auto eval_loss = [&](nn::Model& m) {
    double total = 0.0;
    const Index chunk = 512;
    for (Index begin = 0; begin < sample; begin += chunk) {
      const Index count = std::min(chunk, sample - begin);
      std::span<const std::int32_t> y(eval_y.data() + begin,
                                      static_cast<std::size_t>(count));
      total += static_cast<double>(nn::compute_loss(
                   m, eval_x.rows_view(begin, count), y, eval_ws)) *
               static_cast<double>(count);
    }
    return total / static_cast<double>(sample);
  };

  // TF-style: model uploaded once and kept resident across steps.
  double clock = mlp.upload_model(model, 0.0);

  // Multi-label pipeline overhead per step (delicious's 983 classes).
  double step_overhead = 0.0;
  if (cfg.mlp.num_classes > options.tf_overhead_class_threshold) {
    step_overhead = options.tf_class_overhead_seconds *
                    static_cast<double>(cfg.mlp.num_classes);
  }

  ReferenceResult result;
  std::uint64_t examples_total = 0;
  nn::Model snapshot = model;
  auto record = [&](double vtime) {
    mlp.download_model(snapshot, clock);  // D2H copy, cost excluded (§VII-A)
    result.curve.push_back(
        {vtime, static_cast<double>(examples_total) / static_cast<double>(n),
         eval_loss(snapshot)});
  };
  record(0.0);
  double next_eval = options.eval_interval_vseconds;

  const double lr = cfg.effective_lr(cfg.gpu.batch);
  std::uint64_t epoch = 0;
  bool out_of_budget = false;
  while (!out_of_budget) {
    Index cursor = 0;
    while (cursor < n) {
      const Index batch = std::min<Index>(cfg.gpu.batch, n - cursor);
      auto x = dataset.batch_features(cursor, batch);
      auto y = dataset.batch_labels(cursor, batch);
      double done = clock;
      mlp.compute_gradient(x, y, clock, &done);
      done = mlp.apply_gradient(static_cast<tensor::Scalar>(lr), clock);
      done += step_overhead;
      clock = done;
      cursor += batch;
      examples_total += static_cast<std::uint64_t>(batch);
      ++result.updates;
      if (options.eval_interval_vseconds > 0.0) {
        while (next_eval <= clock) {
          record(next_eval);
          next_eval += options.eval_interval_vseconds;
        }
      }
      if (clock >= cfg.time_budget_vseconds) {
        out_of_budget = true;
        break;
      }
    }
    ++epoch;
    if (options.eval_interval_vseconds <= 0.0) {
      record(clock);
    }
    if (cfg.max_epochs > 0 && epoch >= cfg.max_epochs) break;
    dataset.shuffle(rng);
  }

  result.final_vtime = clock;
  result.epochs =
      static_cast<double>(examples_total) / static_cast<double>(n);
  // The device crunches back-to-back batches; utilization is the GEMM
  // efficiency at the configured batch size.
  result.mean_utilization =
      dev->perf().utilization(static_cast<double>(cfg.gpu.batch));
  return result;
}

}  // namespace hetsgd::core
