// SVRG (stochastic variance-reduced gradient) on the simulated GPU.
//
// §II of the paper grounds the CPU+GPU mixture in theory: "we can think of
// the CPU updates as many small steps in a guessed direction, while the
// GPU updates are rare jumps using a compass. This combination of updates
// — albeit sequential — is theoretically proven to enhance SGD convergence
// and is at the origin of the SVRG family of algorithms." This module
// implements that sequential baseline (Johnson & Zhang 2013): periodic
// full-gradient "compass" snapshots plus variance-corrected stochastic
// steps, so the heterogeneous algorithms can be compared against the
// theory they generalize (bench/ablation_svrg).
#pragma once

#include <cstdint>

#include "core/config.hpp"
#include "core/coordinator.hpp"  // LossPoint
#include "data/dataset.hpp"

namespace hetsgd::core {

struct SvrgOptions {
  // Mini-batch size of the inner stochastic steps.
  tensor::Index batch = 64;
  // Inner steps between full-gradient snapshots; 0 = one dataset pass.
  std::uint64_t inner_steps = 0;
  // Loss evaluation cadence in virtual seconds (0 = per snapshot).
  double eval_interval_vseconds = 0.0;
  tensor::Index eval_sample = 2048;
};

struct SvrgResult {
  std::vector<LossPoint> curve;
  double final_vtime = 0.0;
  double epochs = 0.0;           // epochs-equivalent of gradient work
  std::uint64_t snapshots = 0;   // full-gradient computations
  std::uint64_t inner_updates = 0;
};

// Runs SVRG until config.time_budget_vseconds / config.max_epochs. Uses
// config.mlp / learning_rate / gpu.spec; `dataset` is shuffled between
// passes. Virtual time is charged through the GPU cost model: each inner
// step costs two batch gradients (current iterate + snapshot), and each
// snapshot a full pass.
SvrgResult run_svrg(data::Dataset& dataset, const TrainingConfig& config,
                    const SvrgOptions& options);

}  // namespace hetsgd::core
