#include "core/fault.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/cli.hpp"
#include "common/rng.hpp"

namespace hetsgd::core {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kStall:              return "stall";
    case FaultKind::kDeath:              return "death";
    case FaultKind::kTransferFailure:    return "transfer-failure";
    case FaultKind::kGradientCorruption: return "gradient-corruption";
    case FaultKind::kCrash:              return "crash";
    case FaultKind::kDeadlineMiss:       return "deadline-miss";
    case FaultKind::kSendFailure:        return "send-failure";
    case FaultKind::kWorkerFault:        return "worker-fault";
    case FaultKind::kQuarantine:         return "quarantine";
    case FaultKind::kReclaim:            return "reclaim";
    case FaultKind::kRedispatch:         return "redispatch";
    case FaultKind::kDivergenceRollback: return "divergence-rollback";
    case FaultKind::kDivergenceAbort:    return "divergence-abort";
    case FaultKind::kWorkerJoin:         return "worker-join";
    case FaultKind::kWorkerRetire:       return "worker-retire";
  }
  return "?";
}

namespace {

bool parse_kind(const std::string& name, FaultKind& out) {
  if (name == "stall")    { out = FaultKind::kStall; return true; }
  if (name == "die")      { out = FaultKind::kDeath; return true; }
  if (name == "transfer") { out = FaultKind::kTransferFailure; return true; }
  if (name == "nan")      { out = FaultKind::kGradientCorruption; return true; }
  if (name == "crash")    { out = FaultKind::kCrash; return true; }
  return false;
}

bool parse_double(const std::string& s, double& out) {
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0' && end != s.c_str();
}

bool parse_int(const std::string& s, std::int64_t& out) {
  char* end = nullptr;
  out = std::strtoll(s.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && end != s.c_str();
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= s.size()) {
    const std::size_t end = s.find(sep, begin);
    if (end == std::string::npos) {
      parts.push_back(s.substr(begin));
      break;
    }
    parts.push_back(s.substr(begin, end - begin));
    begin = end + 1;
  }
  return parts;
}

}  // namespace

bool FaultPlan::parse(const std::string& spec, std::uint64_t seed,
                      FaultPlan* out, std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  MutexLock lock(out->mutex_);
  out->events_.clear();
  out->fired_.clear();
  out->seed_ = seed;
  for (const std::string& item : split(spec, ';')) {
    if (item.empty()) continue;
    const std::size_t colon = item.find(':');
    if (colon == std::string::npos) {
      return fail("fault event missing ':' — " + item);
    }
    FaultEvent ev;
    if (!parse_kind(item.substr(0, colon), ev.kind)) {
      return fail("unknown fault kind '" + item.substr(0, colon) +
                  "' (stall|die|transfer|nan|crash)");
    }
    bool have_worker = false;
    for (const std::string& kv : split(item.substr(colon + 1), ',')) {
      if (kv.empty()) continue;
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        return fail("fault parameter missing '=' — " + kv);
      }
      const std::string key = kv.substr(0, eq);
      const std::string value = kv.substr(eq + 1);
      std::int64_t iv = 0;
      double dv = 0.0;
      if (key == "worker") {
        if (!parse_int(value, iv) || iv < 0) {
          return fail("bad worker id — " + kv);
        }
        ev.worker = static_cast<msg::WorkerId>(iv);
        have_worker = true;
      } else if (key == "at") {
        if (!parse_double(value, dv) || dv < 0.0) {
          return fail("bad trigger time — " + kv);
        }
        ev.at_vtime = dv;
      } else if (key == "atfrac") {
        if (!parse_double(value, dv) || dv < 0.0) {
          return fail("bad trigger fraction — " + kv);
        }
        ev.at_fraction = dv;
      } else if (key == "factor") {
        if (!parse_double(value, dv) || dv <= 0.0) {
          return fail("bad stall factor — " + kv);
        }
        ev.factor = dv;
      } else if (key == "sleep") {
        if (!parse_int(value, iv) || iv < 0) {
          return fail("bad sleep ms — " + kv);
        }
        ev.sleep_ms = iv;
      } else if (key == "count") {
        if (!parse_int(value, iv) || iv <= 0) {
          return fail("bad failure count — " + kv);
        }
        ev.count = iv;
      } else {
        return fail("unknown fault parameter '" + key + "'");
      }
    }
    if (!have_worker) {
      return fail("fault event missing worker= — " + item);
    }
    out->events_.push_back(ev);
  }
  return true;
}

void FaultPlan::resolve_times(double budget_vseconds) {
  MutexLock lock(mutex_);
  Rng rng(seed_ ^ 0xfa5717);
  for (FaultEvent& ev : events_) {
    if (ev.at_vtime >= 0.0) continue;
    const double frac =
        ev.at_fraction >= 0.0 ? ev.at_fraction : rng.uniform(0.0, 1.0);
    ev.at_vtime = frac * budget_vseconds;
  }
}

bool FaultPlan::empty() const {
  MutexLock lock(mutex_);
  return events_.empty();
}

std::size_t FaultPlan::event_count() const {
  MutexLock lock(mutex_);
  return events_.size();
}

bool FaultPlan::contains(FaultKind kind) const {
  MutexLock lock(mutex_);
  for (const FaultEvent& e : events_) {
    if (e.kind == kind) return true;
  }
  return false;
}

FaultPlan::StallState FaultPlan::stall(msg::WorkerId w, double vtime) {
  MutexLock lock(mutex_);
  StallState state;
  for (FaultEvent& ev : events_) {
    if (ev.kind != FaultKind::kStall || ev.worker != w) continue;
    if (ev.at_vtime < 0.0 || vtime < ev.at_vtime) continue;
    if (!ev.fired) {
      ev.fired = true;
      fired_.push_back({vtime, w, ev.kind, 0,
                        "factor=" + std::to_string(ev.factor)});
    }
    state.factor *= ev.factor;
    state.sleep_ms += ev.sleep_ms;
  }
  return state;
}

bool FaultPlan::consume(FaultKind kind, msg::WorkerId w, double vtime,
                        FaultEvent* out) {
  MutexLock lock(mutex_);
  for (FaultEvent& ev : events_) {
    if (ev.kind != kind || ev.worker != w || ev.fired) continue;
    if (ev.at_vtime < 0.0 || vtime < ev.at_vtime) continue;
    ev.fired = true;
    fired_.push_back({vtime, w, kind, 0, ""});
    if (out != nullptr) *out = ev;
    return true;
  }
  return false;
}

bool FaultPlan::death_due(msg::WorkerId w, double vtime) {
  return consume(FaultKind::kDeath, w, vtime, nullptr);
}

bool FaultPlan::corruption_due(msg::WorkerId w, double vtime) {
  return consume(FaultKind::kGradientCorruption, w, vtime, nullptr);
}

bool FaultPlan::crash_due(msg::WorkerId w, double vtime) {
  return consume(FaultKind::kCrash, w, vtime, nullptr);
}

std::int64_t FaultPlan::transfer_failures_due(msg::WorkerId w, double vtime) {
  FaultEvent ev;
  if (!consume(FaultKind::kTransferFailure, w, vtime, &ev)) return 0;
  return ev.count;
}

std::vector<FaultRecord> FaultPlan::fired() const {
  MutexLock lock(mutex_);
  return fired_;
}

void register_fault_flags(CliParser& cli, FaultToleranceConfig* fault) {
  cli.add_string("fault-plan", &fault->plan,
                 "fault injections, e.g. 'die:worker=1,atfrac=0.3;"
                 "stall:worker=0,atfrac=0.2,factor=8'");
  cli.add_double("fault-deadline-factor", &fault->deadline_factor,
                 "dispatch deadline = k * estimated cost (0 = off)");
  cli.add_int("fault-quarantine-after", &fault->quarantine_after,
              "faults before a worker is quarantined");
  cli.add_int("fault-max-retries", &fault->max_transfer_retries,
              "transfer retries before a worker escalates");
  cli.add_int("fault-grace-ticks", &fault->stall_grace_ticks,
              "idle ticks (~20ms) before real-time stall fallback");
  cli.add_flag("fault-abort", &fault->abort_on_divergence,
               "abort instead of rolling back on non-finite loss");
  cli.add_double("fault-lr-backoff", &fault->lr_backoff,
                 "learning-rate multiplier applied on each rollback");
  cli.add_double("checkpoint-interval", &fault->checkpoint_interval_vseconds,
                 "auto-checkpoint cadence in virtual seconds (0 = off)");
  cli.add_string("checkpoint-path", &fault->checkpoint_path,
                 "auto-checkpoint file (requires --checkpoint-interval)");
  cli.add_string("checkpoint-dir", &fault->checkpoint_dir,
                 "directory for full crash-consistent checkpoints "
                 "(model+optimizer+RNG+ledger; empty = off)");
  cli.add_int("checkpoint-retain", &fault->checkpoint_retain,
              "checkpoint files kept in --checkpoint-dir (oldest pruned)");
  cli.add_string("resume", &fault->resume_dir,
                 "resume from the newest valid checkpoint in this directory");
}

}  // namespace hetsgd::core
