#include "core/update_ledger.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/macros.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hetsgd::core {

void UpdateLedger::register_worker(msg::WorkerId id, std::string name,
                                   gpusim::DeviceKind kind,
                                   tensor::Index initial_batch) {
  MutexLock lock(mu_);
  HETSGD_ASSERT(id == static_cast<msg::WorkerId>(workers_.size()),
                "worker ids must be registered densely from 0");
  WorkerStats s;
  s.id = id;
  s.name = std::move(name);
  s.kind = kind;
  s.current_batch = initial_batch;
  workers_.push_back(std::move(s));
}

WorkerStats& UpdateLedger::stats_locked(msg::WorkerId id) {
  HETSGD_ASSERT(id >= 0 && static_cast<std::size_t>(id) < workers_.size(),
                "unknown worker id");
  return workers_[static_cast<std::size_t>(id)];
}

const WorkerStats& UpdateLedger::stats_locked(msg::WorkerId id) const {
  HETSGD_ASSERT(id >= 0 && static_cast<std::size_t>(id) < workers_.size(),
                "unknown worker id");
  return workers_[static_cast<std::size_t>(id)];
}

WorkerStats UpdateLedger::stats(msg::WorkerId id) const {
  MutexLock lock(mu_);
  return stats_locked(id);
}

std::vector<WorkerStats> UpdateLedger::all() const {
  MutexLock lock(mu_);
  return workers_;
}

std::size_t UpdateLedger::worker_count() const {
  MutexLock lock(mu_);
  return workers_.size();
}

double UpdateLedger::clock(msg::WorkerId id) const {
  MutexLock lock(mu_);
  return stats_locked(id).clock;
}

double UpdateLedger::busy_vtime(msg::WorkerId id) const {
  MutexLock lock(mu_);
  return stats_locked(id).busy_vtime;
}

tensor::Index UpdateLedger::current_batch(msg::WorkerId id) const {
  MutexLock lock(mu_);
  return stats_locked(id).current_batch;
}

void UpdateLedger::set_current_batch(msg::WorkerId id, tensor::Index batch) {
  MutexLock lock(mu_);
  stats_locked(id).current_batch = batch;
}

void UpdateLedger::on_report(const msg::ScheduleWork& report) {
  MutexLock lock(mu_);
  WorkerStats& s = stats_locked(report.worker);
  HETSGD_ASSERT(report.updates >= s.updates,
                "update counts must be monotone");
  HETSGD_ASSERT(report.clock_vtime >= s.clock, "worker clock went backwards");
  s.updates = report.updates;
  s.busy_vtime = report.busy_vtime;
  s.clock = report.clock_vtime;
  s.examples += report.examples;
  if (report.examples > 0) {
    ++s.batches;
    s.staleness_sum += report.staleness;
    s.max_staleness = std::max(s.max_staleness, report.staleness);
  }
}

void UpdateLedger::on_late_report(const msg::ScheduleWork& report) {
  MutexLock lock(mu_);
  WorkerStats& s = stats_locked(report.worker);
  HETSGD_ASSERT(report.updates >= s.updates,
                "update counts must be monotone");
  HETSGD_ASSERT(report.clock_vtime >= s.clock, "worker clock went backwards");
  s.updates = report.updates;
  s.busy_vtime = report.busy_vtime;
  s.clock = report.clock_vtime;
  // examples/batches deliberately untouched: the range was reclaimed.
}

void UpdateLedger::restore_stats(const WorkerStats& stats) {
  MutexLock lock(mu_);
  WorkerStats& s = stats_locked(stats.id);
  s.updates = stats.updates;
  s.batches = stats.batches;
  s.examples = stats.examples;
  s.busy_vtime = stats.busy_vtime;
  s.clock = stats.clock;
  s.current_batch = stats.current_batch;
  s.staleness_sum = stats.staleness_sum;
  s.max_staleness = stats.max_staleness;
}

void UpdateLedger::record_fault(FaultRecord record) {
  // Every fault/recovery event is observable: one trace instant (named
  // after the FaultKind — fault_kind_name returns static strings) and a
  // process-global counter. Emitted outside the ledger lock.
  static obs::Counter& fault_counter =
      obs::MetricsRegistry::instance().counter("hetsgd_fault_records_total");
  fault_counter.inc();
  HETSGD_TRACE_INSTANT("fault", fault_kind_name(record.kind), record.vtime);
  MutexLock lock(mu_);
  faults_.push_back(std::move(record));
}

std::vector<FaultRecord> UpdateLedger::fault_records() const {
  MutexLock lock(mu_);
  return faults_;
}

std::uint64_t UpdateLedger::total_updates() const {
  MutexLock lock(mu_);
  std::uint64_t total = 0;
  for (const auto& w : workers_) total += w.updates;
  return total;
}

std::uint64_t UpdateLedger::total_examples() const {
  MutexLock lock(mu_);
  std::uint64_t total = 0;
  for (const auto& w : workers_) total += w.examples;
  return total;
}

std::uint64_t UpdateLedger::updates_by_kind(gpusim::DeviceKind kind) const {
  MutexLock lock(mu_);
  std::uint64_t total = 0;
  for (const auto& w : workers_) {
    if (w.kind == kind) total += w.updates;
  }
  return total;
}

bool UpdateLedger::other_update_range(msg::WorkerId id, std::uint64_t& min_u,
                                      std::uint64_t& max_u) const {
  MutexLock lock(mu_);
  bool any = false;
  min_u = std::numeric_limits<std::uint64_t>::max();
  max_u = 0;
  for (const auto& w : workers_) {
    if (w.id == id) continue;
    min_u = std::min(min_u, w.updates);
    max_u = std::max(max_u, w.updates);
    any = true;
  }
  return any;
}

double UpdateLedger::min_clock() const {
  MutexLock lock(mu_);
  double t = std::numeric_limits<double>::max();
  for (const auto& w : workers_) t = std::min(t, w.clock);
  return workers_.empty() ? 0.0 : t;
}

double UpdateLedger::max_clock() const {
  MutexLock lock(mu_);
  double t = 0.0;
  for (const auto& w : workers_) t = std::max(t, w.clock);
  return t;
}

}  // namespace hetsgd::core
