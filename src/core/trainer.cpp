#include "core/trainer.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <optional>
#include <string>
#include <thread>

#include "common/csv_writer.hpp"
#include "common/logging.hpp"
#include "common/macros.hpp"
#include "core/elastic.hpp"
#include "core/worker.hpp"
#include "core/minibatch_reference.hpp"
#include "nn/serialize.hpp"
#include "obs/clock.hpp"
#include "obs/exporter.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hetsgd::core {

using tensor::Index;

double TrainingResult::loss_at(double vtime) const {
  if (loss_curve.empty()) return 0.0;
  double loss = loss_curve.front().loss;
  for (const auto& p : loss_curve) {
    if (p.vtime > vtime) break;
    loss = p.loss;
  }
  return loss;
}

double TrainingResult::time_to_loss(double target) const {
  for (const auto& p : loss_curve) {
    if (p.loss <= target) return p.vtime;
  }
  return std::numeric_limits<double>::infinity();
}

void write_fault_events_csv(const TrainingResult& result,
                            const std::string& path) {
  CsvWriter csv(path, {"vtime", "worker", "kind", "reclaimed_examples",
                       "detail"});
  for (const auto& e : result.fault_events) {
    csv.row(std::vector<std::string>{
        std::to_string(e.vtime), std::to_string(e.worker),
        fault_kind_name(e.kind), std::to_string(e.reclaimed_examples),
        e.detail});
  }
  csv.flush();
}

Trainer::Trainer(data::Dataset dataset, TrainingConfig config,
                 TrainerOptions options)
    : dataset_(std::move(dataset)), config_(std::move(config)),
      options_(options) {
  config_.mlp.input_dim = dataset_.dim();
  config_.mlp.num_classes = dataset_.num_classes();
  config_.mlp.validate();
  if (config_.real_threads <= 0) {
    config_.real_threads =
        std::max(1u, std::thread::hardware_concurrency());
  }
}

TrainingResult Trainer::run() {
  // Tracing brackets the whole run so actor startup/shutdown is visible.
  // stop_and_write is safe (and writes a valid empty trace) when tracing
  // was compiled out with HETSGD_TRACE=OFF.
  const bool tracing = !config_.obs.trace_out.empty();
  if (tracing) {
    obs::Tracer::instance().start(static_cast<std::size_t>(
        std::max<std::int64_t>(config_.obs.trace_buffer, 1024)));
  }
  TrainingResult result = config_.algorithm == Algorithm::kTensorFlow
                              ? run_reference()
                              : run_framework();
  if (tracing) {
    std::string error;
    if (!obs::Tracer::instance().stop_and_write(config_.obs.trace_out,
                                                &error)) {
      HETSGD_LOG_WARN("trainer", "trace export failed: %s", error.c_str());
    } else {
      HETSGD_LOG_INFO("trainer", "trace written to %s",
                      config_.obs.trace_out.c_str());
    }
  }
  return result;
}

namespace {

void fill_curve_stats(TrainingResult& r) {
  if (r.loss_curve.empty()) return;
  r.initial_loss = r.loss_curve.front().loss;
  r.final_loss = r.loss_curve.back().loss;
  r.best_loss = r.initial_loss;
  for (const auto& p : r.loss_curve) {
    r.best_loss = std::min(r.best_loss, p.loss);
  }
}

}  // namespace

TrainingResult Trainer::run_framework() {
  obs::WallStopwatch timer;
  // Fresh working copy per run: shuffles must not accumulate across runs.
  data::Dataset working = dataset_;

  Rng rng(config_.seed);
  nn::Model model(config_.mlp, rng);

  // Fault-injection plan: parsed from the config spec, shared (thread-safe)
  // with every worker. Must outlive the workers below.
  FaultPlan fault_plan;
  if (!config_.fault.plan.empty()) {
    std::string error;
    const bool ok =
        FaultPlan::parse(config_.fault.plan, config_.seed, &fault_plan, &error);
    HETSGD_ASSERT(ok, "invalid --fault-plan spec");
    fault_plan.resolve_times(config_.time_budget_vseconds);
    // A death or stall injection without the detection layer would hang the
    // run: the coordinator would wait forever on a worker that never
    // reports. Force a sane deadline factor rather than deadlock.
    if (config_.fault.deadline_factor <= 0.0 &&
        (fault_plan.contains(FaultKind::kDeath) ||
         fault_plan.contains(FaultKind::kStall))) {
      HETSGD_LOG_WARN("trainer",
                      "fault plan injects stalls/deaths but the deadline "
                      "layer is off; enabling --fault-deadline-factor 3");
      config_.fault.deadline_factor = 3.0;
    }
  }

  // Resume: load the newest valid checkpoint before any actor starts. A
  // missing/unusable directory degrades to a fresh start (the crash may
  // have hit before the first cut); a fingerprint mismatch is refused —
  // continuing a *different* run's checkpoint would silently fork the
  // trajectory.
  std::optional<TrainingCheckpoint> resume_ckpt;
  if (!config_.fault.resume_dir.empty()) {
    std::string error;
    resume_ckpt =
        CheckpointManager::load_latest(config_.fault.resume_dir, &error);
    if (!resume_ckpt) {
      HETSGD_LOG_WARN("trainer",
                      "no usable checkpoint in %s (%s); starting fresh",
                      config_.fault.resume_dir.c_str(), error.c_str());
    } else {
      const std::uint64_t fp = config_fingerprint(config_, working);
      if (resume_ckpt->fingerprint != fp) {
        HETSGD_LOG_ERROR("trainer",
                         "checkpoint in %s was cut under a different "
                         "config/seed/dataset; refusing to resume",
                         config_.fault.resume_dir.c_str());
        HETSGD_ASSERT(false, "checkpoint/config fingerprint mismatch");
      }
      model = resume_ckpt->model;
      HETSGD_LOG_INFO(
          "trainer", "resuming from checkpoint seq %llu (epoch %llu)",
          static_cast<unsigned long long>(resume_ckpt->sequence),
          static_cast<unsigned long long>(resume_ckpt->epoch));
    }
  }

  Coordinator coordinator(working, model, config_, options_.eval_sample);

  std::unique_ptr<Worker> cpu_worker;
  std::vector<std::unique_ptr<Worker>> gpu_workers;
  msg::WorkerId next_id = 0;

  const auto cpu_limits = [this] {
    const Index lanes = config_.cpu.sim_lanes;
    AdaptiveController::WorkerLimits limits;
    limits.quantum = lanes;
    limits.min = lanes * config_.cpu.min_examples_per_thread;
    limits.max = lanes * config_.cpu.max_examples_per_thread;
    // "The CPU worker starts with a batch size of 1 example per thread —
    // it performs Hogwild" (§VII-A).
    limits.initial = lanes * config_.cpu.examples_per_thread;
    return limits;
  };
  const auto gpu_limits = [this] {
    AdaptiveController::WorkerLimits limits;
    limits.quantum = 1;
    limits.min = config_.gpu.min_batch;
    limits.max = config_.gpu.max_batch;
    // "The initial batch size is set to the upper threshold on the GPU
    // workers" (§VII-A) — for the static algorithms, gpu.batch applies.
    limits.initial = config_.algorithm == Algorithm::kAdaptiveHogbatch
                         ? config_.gpu.max_batch
                         : std::clamp(config_.gpu.batch, config_.gpu.min_batch,
                                      config_.gpu.max_batch);
    return limits;
  };

  if (algorithm_uses_cpu(config_.algorithm)) {
    cpu_worker = std::make_unique<Worker>(next_id, config_, working, model,
                                          coordinator, ExecMode::kHogwild,
                                          config_.real_threads);
    if (!fault_plan.empty()) cpu_worker->set_fault_plan(&fault_plan);
    coordinator.add_worker(*cpu_worker, gpusim::DeviceKind::kCpu,
                           cpu_limits());
    ++next_id;
  }
  if (algorithm_uses_gpu(config_.algorithm)) {
    const int gpus = std::max(config_.gpu.worker_count, 1);
    for (int g = 0; g < gpus; ++g) {
      gpu_workers.push_back(std::make_unique<Worker>(
          next_id, config_, working, model, coordinator, ExecMode::kReplica,
          /*real_threads=*/1, g));
      if (!fault_plan.empty()) {
        gpu_workers.back()->set_fault_plan(&fault_plan);
      }
      coordinator.add_worker(*gpu_workers.back(), gpusim::DeviceKind::kGpu,
                             gpu_limits());
      ++next_id;
    }
  }
  HETSGD_ASSERT(next_id > 0, "algorithm selected no workers");

  // Checkpoint sink + restore, after every worker is registered and before
  // any actor starts.
  std::unique_ptr<CheckpointManager> ckpt_mgr;
  if (!config_.fault.checkpoint_dir.empty()) {
    ckpt_mgr = std::make_unique<CheckpointManager>(
        config_.fault.checkpoint_dir, config_.fault.checkpoint_retain);
    coordinator.set_checkpoint_manager(ckpt_mgr.get());
  }
  if (resume_ckpt) {
    std::string error;
    if (!coordinator.restore(*resume_ckpt, &error)) {
      HETSGD_LOG_ERROR("trainer", "checkpoint restore refused: %s",
                       error.c_str());
      HETSGD_ASSERT(false, "checkpoint restore refused");
    }
    for (const WorkerCheckpoint& wc : resume_ckpt->workers) {
      // An empty blob means the worker died before the cut collected its
      // state; its optimizer slots restart cold (ledger counters were
      // still restored above).
      if (wc.state.empty()) continue;
      bool ok = false;
      if (cpu_worker && wc.id == cpu_worker->id()) {
        ok = cpu_worker->restore_state(wc.state, &error);
      } else {
        for (auto& g : gpu_workers) {
          if (g->id() == wc.id) {
            ok = g->restore_state(wc.state, &error);
            break;
          }
        }
      }
      if (!ok) {
        HETSGD_LOG_ERROR("trainer", "worker %d state restore failed: %s",
                         wc.id, error.c_str());
        HETSGD_ASSERT(false, "worker checkpoint state restore failed");
      }
    }
  }

  // Elastic membership plan, driven by a controller thread below.
  ElasticPlan elastic;
  if (!config_.elastic_plan.empty()) {
    std::string error;
    const bool ok = ElasticPlan::parse(config_.elastic_plan, &elastic, &error);
    HETSGD_ASSERT(ok, "invalid --elastic-plan spec");
    elastic.resolve_times(config_.time_budget_vseconds);
  }

  // Live metrics export (src/obs). The collect hook runs on the exporter
  // thread mid-run and scrapes the UpdateLedger / loss curve through
  // their locked snapshot accessors — this is the concurrent observer the
  // ledger's thread-safety contract promises to support.
  obs::MetricsExporter::Options obs_opts;
  obs_opts.jsonl_path = config_.obs.metrics_out;
  obs_opts.interval_ms = config_.obs.metrics_interval_ms;
  obs_opts.port = static_cast<int>(config_.obs.metrics_port);
  obs::MetricsExporter exporter(obs_opts);
  const bool export_metrics =
      !config_.obs.metrics_out.empty() || config_.obs.metrics_port >= 0;
  if (export_metrics) {
    exporter.set_collect_hook([&coordinator] {
      auto& reg = obs::MetricsRegistry::instance();
      for (const WorkerStats& s : coordinator.ledger().all()) {
        const std::string p = "hetsgd_worker" + std::to_string(s.id) + "_";
        reg.gauge(p + "updates").set(static_cast<double>(s.updates));
        reg.gauge(p + "examples").set(static_cast<double>(s.examples));
        reg.gauge(p + "busy_vseconds").set(s.busy_vtime);
        reg.gauge(p + "clock_vseconds").set(s.clock);
        reg.gauge(p + "batch").set(static_cast<double>(s.current_batch));
        reg.gauge(p + "max_staleness").set(s.max_staleness);
      }
      reg.gauge("hetsgd_fault_records").set(static_cast<double>(
          coordinator.ledger().fault_records().size()));
      const auto curve = coordinator.loss_curve_snapshot();
      reg.gauge("hetsgd_loss_points").set(static_cast<double>(curve.size()));
      if (!curve.empty()) {
        reg.gauge("hetsgd_loss_latest").set(curve.back().loss);
      }
    });
    std::string error;
    if (!exporter.start(&error)) {
      HETSGD_LOG_WARN("trainer", "metrics exporter disabled: %s",
                      error.c_str());
    } else if (exporter.scrape_port() >= 0) {
      HETSGD_LOG_INFO("trainer", "metrics scrape endpoint on 127.0.0.1:%d",
                      exporter.scrape_port());
    }
  }

  if (cpu_worker) cpu_worker->start();
  for (auto& g : gpu_workers) g->start();
  coordinator.start();

  // Elastic controller: watches the virtual frontier and fires the planned
  // join/retire events. Joined workers are owned here; the coordinator
  // winds them down (retire or final shutdown) and we join their threads
  // after the run.
  std::vector<std::unique_ptr<Worker>> joined_cpu;
  std::vector<std::unique_ptr<Worker>> joined_gpu;
  std::atomic<bool> elastic_stop{false};
  std::thread elastic_thread;
  if (!elastic.empty()) {
    elastic_thread = std::thread([&] {
      std::size_t next = 0;
      // Acquire pairs with the release store below: when the controller
      // thread sees the stop flag it also sees the coordinator's final
      // state, not a stale view from before join() returned.
      while (next < elastic.events.size() &&
             !elastic_stop.load(std::memory_order_acquire)) {
        const ElasticEvent& ev = elastic.events[next];
        if (coordinator.final_vtime() < ev.at_vtime) {
          // hetsgd-analyze: allow(wall-clock-core) same sanction as below.
          // hetsgd-lint: allow(wall-clock) the controller models an
          // operator outside the virtual-time system; it polls in real time.
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          continue;
        }
        if (ev.kind == ElasticEvent::Kind::kRetire) {
          if (!coordinator.retire_worker(ev.worker)) {
            HETSGD_LOG_WARN("trainer", "elastic retire of worker %d refused",
                            ev.worker);
          }
        } else if (ev.device == gpusim::DeviceKind::kCpu) {
          const auto id =
              static_cast<msg::WorkerId>(coordinator.worker_count());
          auto w = std::make_unique<Worker>(id, config_, working, model,
                                            coordinator, ExecMode::kHogwild,
                                            config_.real_threads);
          if (!fault_plan.empty()) w->set_fault_plan(&fault_plan);
          if (coordinator.join_worker(*w, gpusim::DeviceKind::kCpu,
                                      cpu_limits()) >= 0) {
            w->start();
            joined_cpu.push_back(std::move(w));
          }
        } else {
          const auto id =
              static_cast<msg::WorkerId>(coordinator.worker_count());
          auto w = std::make_unique<Worker>(id, config_, working, model,
                                            coordinator, ExecMode::kReplica,
                                            /*real_threads=*/1,
                                            static_cast<int>(id));
          if (!fault_plan.empty()) w->set_fault_plan(&fault_plan);
          if (coordinator.join_worker(*w, gpusim::DeviceKind::kGpu,
                                      gpu_limits()) >= 0) {
            w->start();
            joined_gpu.push_back(std::move(w));
          }
        }
        ++next;
      }
    });
  }

  coordinator.join();
  elastic_stop.store(true, std::memory_order_release);
  if (elastic_thread.joinable()) elastic_thread.join();
  if (cpu_worker) cpu_worker->join();
  for (auto& g : gpu_workers) g->join();
  for (auto& w : joined_cpu) w->join();
  for (auto& g : joined_gpu) g->join();
  // Final snapshot at the quiescent point; must precede the coordinator
  // leaving scope since the collect hook reads through it.
  exporter.stop();

  TrainingResult result;
  result.algorithm = config_.algorithm;
  result.loss_curve = coordinator.loss_curve();
  result.total_vtime = coordinator.final_vtime();
  result.epochs = coordinator.epochs_completed();
  result.cpu_updates =
      coordinator.ledger().updates_by_kind(gpusim::DeviceKind::kCpu);
  result.gpu_updates =
      coordinator.ledger().updates_by_kind(gpusim::DeviceKind::kGpu);
  const double horizon = std::max(result.total_vtime, 1e-12);
  for (const auto& stats : coordinator.ledger().all()) {
    WorkerSummary w;
    w.name = stats.name;
    w.kind = stats.kind;
    w.updates = stats.updates;
    w.batches = stats.batches;
    w.examples = stats.examples;
    w.busy_vtime = stats.busy_vtime;
    w.final_clock = stats.clock;
    w.final_batch = stats.current_batch;
    w.mean_utilization =
        coordinator.monitor().mean_utilization(stats.id, horizon);
    w.mean_staleness = stats.mean_staleness();
    w.max_staleness = stats.max_staleness;
    w.segments = coordinator.monitor().segments(stats.id);
    result.workers.push_back(std::move(w));
  }
  // Merge the fault log: worker-side injections (from the plan) plus
  // coordinator-side detections/recoveries (from the ledger), time-sorted.
  result.fault_events = fault_plan.fired();
  const auto& detected = coordinator.ledger().fault_records();
  result.fault_events.insert(result.fault_events.end(), detected.begin(),
                             detected.end());
  std::stable_sort(result.fault_events.begin(), result.fault_events.end(),
                   [](const FaultRecord& a, const FaultRecord& b) {
                     return a.vtime < b.vtime;
                   });
  result.examples_dispatched = coordinator.examples_dispatched();
  result.examples_reclaimed = coordinator.examples_reclaimed();
  result.late_examples = coordinator.late_examples();
  result.rollbacks = coordinator.rollbacks();
  result.quarantined_workers = coordinator.quarantined_workers();
  result.checkpoints_written = coordinator.checkpoints_written();
  result.final_lr_scale = coordinator.lr_scale();
  result.diverged = coordinator.diverged();
  result.resumed = resume_ckpt.has_value();
  result.resume_epoch = resume_ckpt ? resume_ckpt->epoch : 0;
  result.workers_joined = coordinator.workers_joined();
  result.workers_retired = coordinator.workers_retired();
  {
    // All actors are joined: the model is quiescent and safe to serialize.
    ByteWriter w;
    nn::write_model(w, model);
    result.final_model_bytes = w.data();
  }

  fill_curve_stats(result);
  result.wall_seconds = timer.elapsed_seconds();
  return result;
}

TrainingResult Trainer::run_reference() {
  obs::WallStopwatch timer;
  data::Dataset working = dataset_;
  ReferenceOptions options;
  options.eval_interval_vseconds = config_.eval_interval_vseconds;
  options.eval_sample = options_.eval_sample;
  ReferenceResult ref = run_minibatch_reference(working, config_, options);

  TrainingResult result;
  result.algorithm = config_.algorithm;
  result.loss_curve = std::move(ref.curve);
  result.total_vtime = ref.final_vtime;
  result.epochs = ref.epochs;
  result.gpu_updates = ref.updates;

  WorkerSummary w;
  w.name = "tensorflow-gpu";
  w.kind = gpusim::DeviceKind::kGpu;
  w.updates = ref.updates;
  w.mean_utilization = ref.mean_utilization;
  result.workers.push_back(std::move(w));

  fill_curve_stats(result);
  result.wall_seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace hetsgd::core
