// Elastic worker membership plan: a schedule of join/retire events in
// virtual time, parsed from the --elastic-plan flag.
//
// "Adaptive Elastic Training for Sparse Deep Learning" (arXiv:2110.07029)
// makes mid-run membership change the core mechanism; here it stresses
// the coordinator's recovery machinery: a retiring worker's in-flight
// batch must be reclaimed (preserving dispatched == reported + reclaimed)
// and a joining worker must be seeded with a cost-model-matched batch and
// an update-count baseline so Algorithm 2 treats it as a peer, not a
// straggler. The Trainer drives the plan from a small controller thread
// that watches the virtual frontier and calls Coordinator::join_worker /
// retire_worker at the scheduled times.
#pragma once

#include <string>
#include <vector>

#include "backend/device_model.hpp"
#include "msg/message.hpp"

namespace hetsgd {
class CliParser;
}

namespace hetsgd::core {

struct ElasticEvent {
  enum class Kind { kJoin, kRetire };
  Kind kind = Kind::kJoin;
  // kJoin: device kind of the new worker.
  gpusim::DeviceKind device = gpusim::DeviceKind::kGpu;
  // kRetire: the worker to retire.
  msg::WorkerId worker = -1;
  // Trigger: fires when the virtual frontier reaches at_vtime. Negative =
  // unresolved; at_fraction (of the time budget) is substituted by
  // resolve_times().
  double at_vtime = -1.0;
  double at_fraction = -1.0;
};

// A parsed --elastic-plan. Plain data, owned and driven by the Trainer;
// not internally synchronized (read-only after resolve_times).
struct ElasticPlan {
  // Parses a ';'-separated event list:
  //   join:kind=gpu,atfrac=0.3
  //   join:kind=cpu,at=0.8
  //   retire:worker=1,atfrac=0.6
  // Returns false and sets *error on a malformed spec.
  static bool parse(const std::string& spec, ElasticPlan* out,
                    std::string* error);

  // Resolves fraction triggers against the run's virtual-time budget and
  // sorts events by trigger time. Call once before the run starts.
  void resolve_times(double budget_vseconds);

  bool empty() const { return events.empty(); }

  std::vector<ElasticEvent> events;
};

// Registers --elastic-plan onto a CLI parser, writing into *plan.
void register_elastic_flags(CliParser& cli, std::string* plan);

}  // namespace hetsgd::core
