// Training configuration: algorithm selection and hyperparameters (§VI).
#pragma once

#include <cstdint>
#include <string>

#include "core/fault.hpp"
#include "backend/device_model.hpp"
#include "nn/model.hpp"
#include "nn/optimizer.hpp"
#include "obs/exporter.hpp"
#include "tensor/types.hpp"

namespace hetsgd {
class CliParser;
}

namespace hetsgd::core {

// The five training algorithms of the evaluation (§VII-B): four Hogbatch
// variants implemented in the framework plus the synchronous mini-batch
// reference standing in for TensorFlow.
enum class Algorithm {
  kHogwildCpu,        // "Hogbatch CPU": Hogwild on the CPU worker only
  kMinibatchGpu,      // "Hogbatch GPU": mini-batch SGD on the GPU worker only
  kCpuGpuHogbatch,    // §VI-B: static small CPU + large GPU batches
  kAdaptiveHogbatch,  // §VI-C / Algorithm 2: dynamic batch sizes
  kTensorFlow,        // synchronous mini-batch reference (TF behaves
                      // identically to kMinibatchGpu per the paper)
};

const char* algorithm_name(Algorithm a);
bool parse_algorithm(const std::string& name, Algorithm& out);
bool algorithm_uses_cpu(Algorithm a);
bool algorithm_uses_gpu(Algorithm a);

// --backend flag support: registers the flag (help text enumerates the
// backend registry) and validates a parsed value against it.
void register_backend_flag(CliParser& cli, std::string* backend);
bool validate_backend(const std::string& name);
std::string backend_names_help();

// CPU worker parameters. The worker simulates `sim_lanes` Hogwild threads
// (the paper's t = 56); its batch is sim_lanes * examples_per_thread, split
// into sim_lanes sub-batches each producing one model update.
struct CpuWorkerConfig {
  gpusim::DeviceSpec spec = gpusim::xeon56_spec();
  int sim_lanes = 56;
  // Hardware threads on the host (the paper's machine exposes 64; using 56
  // of them yields the ~80-87% CPU utilization plateau of Fig. 7).
  int host_threads = 64;
  // Initial/minimum/maximum examples per thread — the paper's CPU batch
  // range of 1-64 examples per thread (§VII-A).
  tensor::Index examples_per_thread = 1;
  tensor::Index min_examples_per_thread = 1;
  tensor::Index max_examples_per_thread = 64;
};

// GPU worker parameters. Batch range 64-8192 (§VII-A); the initial batch is
// the upper threshold ("the initial batch size is set to the upper
// threshold on the GPU workers").
struct GpuWorkerConfig {
  gpusim::DeviceSpec spec = gpusim::v100_spec();
  tensor::Index batch = 8192;
  tensor::Index min_batch = 64;
  tensor::Index max_batch = 8192;
  // Host-side bytes/second for merging the downloaded gradient into the
  // global model (single uncontended writer: near full memory bandwidth).
  double host_merge_bandwidth = 2e10;

  // Number of GPU workers to run (the paper's stated future work: "we plan
  // to scale these algorithms to multi-GPU architectures"). Each worker
  // owns an independent simulated device; all update the one shared model.
  int worker_count = 1;
};

struct TrainingConfig {
  Algorithm algorithm = Algorithm::kAdaptiveHogbatch;

  // Network architecture. input_dim / num_classes are overwritten from the
  // dataset by the Trainer.
  nn::MlpConfig mlp;

  // Per-example learning rate. When scale_lr_with_batch is set (the
  // paper's default, after Goyal et al. [7]), an update computed on a
  // b-example (sub-)batch uses eta = learning_rate * b, so accurate
  // large-batch gradients move the model proportionally further.
  double learning_rate = 1e-3;
  bool scale_lr_with_batch = true;
  // Upper bound on the effective eta to keep scaled rates stable — the
  // linear-scaling rule breaks down when eta*batch exceeds the curvature
  // scale (Goyal et al. cap their scaling too). This cap is what makes
  // large batches *count-limited* on hard high-dimensional problems: a
  // few hundred capped GPU steps cannot fit what tens of thousands of
  // small CPU steps can (the real-sim crossover of Fig. 5d).
  double max_effective_lr = 1.5;

  // Optimizer applied by the framework workers (each Hogwild lane and each
  // GPU worker keeps private state shaped like the model). The TensorFlow
  // reference always runs plain mini-batch SGD, as in the paper.
  nn::OptimizerConfig optimizer;

  // Learning-rate schedule: multiplies the effective rate by
  // lr_multiplier(schedule, epochs_completed).
  nn::LrScheduleConfig lr_schedule;

  // Stopping: virtual-time budget and/or epoch cap (0 = unlimited).
  double time_budget_vseconds = 5.0;
  std::uint64_t max_epochs = 0;

  // Loss evaluation cadence in virtual seconds; 0 = epoch boundaries only.
  // Loss evaluation time is excluded from the time axis (§VII-A) unless
  // charge_loss_eval_to_gpu is set (used to reproduce Fig. 7's end-of-epoch
  // GPU utilization spike).
  double eval_interval_vseconds = 0.0;
  bool charge_loss_eval_to_gpu = false;

  // Adaptive Hogbatch parameters (Algorithm 2): batch-resize factor alpha
  // (default 2: double/halve) and CPU update-survival fraction beta.
  double alpha = 2.0;
  double beta = 1.0;

  // Virtual-time run-ahead window (seconds): a worker may be assigned new
  // work while its clock is at most this far ahead of the earliest
  // estimated completion among busy workers. 0 = choose automatically.
  double clock_window = 0.0;

  // Real threads backing the CPU worker's Hogwild lanes (defaults to
  // hardware concurrency; the *simulated* lane count is cpu.sim_lanes).
  int real_threads = 0;

  std::uint64_t seed = 1234;

  // Execution backend for replica (device) workers, by registry name
  // (backend::registered_backends(): "sim" = the gpusim device, "cpu" =
  // host execution). The modeled hardware stays gpu.spec either way, so
  // training trajectories are backend-independent; the flag chooses which
  // engine runs the kernels. Hogwild lanes always run zero-copy on host.
  std::string backend = "sim";

  CpuWorkerConfig cpu;
  GpuWorkerConfig gpu;

  // Fault injection + self-healing knobs (deadlines, reclamation,
  // quarantine, divergence rollback, auto-checkpoints). Defaults leave
  // every recovery layer off, matching pre-fault-tolerant behavior.
  FaultToleranceConfig fault;

  // Elastic membership plan (core/elastic.hpp spec syntax): workers to
  // join or retire mid-run at chosen virtual times. Empty = fixed
  // membership for the whole run.
  std::string elastic_plan;

  // Observability (src/obs): span-trace output, metrics exporter and
  // scrape endpoint. Deliberately excluded from config_fingerprint —
  // turning tracing on must not invalidate checkpoints.
  obs::ObsOptions obs;

  // Effective learning rate for an update computed over `update_batch`
  // examples.
  double effective_lr(tensor::Index update_batch) const;
};

}  // namespace hetsgd::core
