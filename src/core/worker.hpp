// The backend-generic training worker (Algorithm 2's worker handlers).
//
// One actor class replaces the former CpuWorker/GpuWorker pair; what used
// to be two code paths is now one message protocol over two execution
// modes of the Backend seam:
//
//  * kHogwild — nested Hogbatch over the *shared* global model (§V-A, the
//    CPU worker handler). The batch splits into sim_lanes sub-batches;
//    each real lane owns a zero-copy CpuBackend whose executor aliases the
//    shared model, so gradients are computed against live (racing) weights
//    and applied immediately with no synchronization. Virtual time is
//    charged analytically per batch through the cost model.
//
//  * kReplica — mini-batch SGD against a private device replica (§V-A,
//    the GPU worker handler). One Backend instance (--backend: the gpusim
//    device by default, or the host CpuBackend in device mode) holds the
//    replica; every batch uploads the model, runs the kernel sequence,
//    downloads the gradient, and merges on the host. Transfer faults are
//    retried with capped exponential virtual-time backoff before
//    escalating to the coordinator.
//
// Wire behavior (message protocol, trace spans, checkpoint state tags
// 'C'/'G', fault semantics) is bit-compatible with the pre-seam workers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "backend/backend.hpp"
#include "backend/mlp_executor.hpp"
#include "concurrent/thread_pool.hpp"
#include "core/config.hpp"
#include "core/fault.hpp"
#include "data/dataset.hpp"
#include "msg/actor.hpp"
#include "nn/mlp.hpp"

namespace hetsgd::core {

// How a worker executes its batches; maps 1:1 onto the coordinator's
// DeviceKind (kHogwild <-> kCpu, kReplica <-> kGpu).
enum class ExecMode { kHogwild, kReplica };

// Builds the replica-mode device backend selected by `config.backend`
// ("sim" by default; see backend::registered_backends()). The modeled
// hardware is always config.gpu.spec — the flag chooses the execution
// engine behind it, so virtual-time trajectories are backend-independent.
std::unique_ptr<backend::Backend> make_device_backend(
    const TrainingConfig& config);

class Worker final : public msg::Actor {
 public:
  // `ordinal` distinguishes multiple replica workers (device index);
  // `real_threads` sizes the Hogwild lane pool (ignored by kReplica).
  Worker(msg::WorkerId id, const TrainingConfig& config,
         const data::Dataset& dataset, nn::Model& global_model,
         msg::Actor& coordinator, ExecMode mode, int real_threads = 1,
         int ordinal = 0);

  msg::WorkerId id() const { return id_; }
  ExecMode mode() const { return mode_; }
  // The perf model this worker charges virtual time with.
  const backend::PerfModel& perf() const;
  // Replica mode only: the backend holding the device replica.
  const backend::Backend& device_backend() const { return *backend_; }

  // Attaches a fault-injection plan (shared, thread-safe). Call before
  // start(); nullptr = no injections.
  void set_fault_plan(FaultPlan* plan) { fault_plan_ = plan; }

  // Transfer retries performed so far (diagnostics / tests).
  std::uint64_t transfer_retries() const { return transfer_retries_; }

  // Checkpointing: the worker's private state (virtual clock, update
  // counters, optimizer slots) as an opaque blob, produced on the actor
  // thread in response to StateRequest. restore_state() is the inverse;
  // call it before start() only. Blobs keep the pre-seam 'C'/'G' tags.
  std::vector<std::uint8_t> serialize_state() const;
  bool restore_state(const std::vector<std::uint8_t>& bytes,
                     std::string* error);

 protected:
  bool handle(msg::Envelope envelope) override;
  bool on_handle_exception(const std::string& what) override;

 private:
  // Returns false when an injected death fires: the actor exits its loop
  // without reporting, exactly like a crashed worker.
  bool execute(const msg::ExecuteWork& work);
  bool execute_hogwild(const msg::ExecuteWork& work);
  bool execute_replica(const msg::ExecuteWork& work);
  // Grows the per-lane executors to hold `sub_batch` rows (the Workspace
  // growth of the pre-seam path, now explicit and releasable).
  void ensure_lane_capacity(tensor::Index sub_batch);
  void release_scratch();
  void request_work(std::uint64_t examples, double intensity,
                    std::uint64_t sequence, double staleness = 0.0);
  const char* log_tag() const {
    return mode_ == ExecMode::kHogwild ? "cpu-worker" : "gpu-worker";
  }

  msg::WorkerId id_;
  const TrainingConfig& config_;
  const data::Dataset& dataset_;
  nn::Model& model_;  // the shared global model (reference replica)
  msg::Actor& coordinator_;
  ExecMode mode_;
  backend::PerfModel hogwild_perf_;
  FaultPlan* fault_plan_ = nullptr;
  backend::VirtualClock clock_;
  double busy_vtime_ = 0.0;

  // --- kHogwild state ----------------------------------------------------
  // beta-weighted update count; reported to the coordinator as floor().
  double updates_scaled_ = 0.0;
  std::unique_ptr<concurrent::ThreadPool> pool_;
  // Per physical lane (lanes process multiple logical sub-batches): a
  // zero-copy backend + executor bound to the shared model and the lane's
  // gradient slab.
  std::vector<std::unique_ptr<backend::Backend>> lane_backends_;
  std::vector<std::unique_ptr<backend::MlpExecutor>> lane_executors_;
  tensor::Index lane_capacity_ = 0;
  std::vector<nn::Gradient> gradients_;
  std::vector<nn::Optimizer> optimizers_;

  // --- kReplica state ----------------------------------------------------
  std::uint64_t updates_ = 0;
  std::uint64_t transfer_retries_ = 0;
  std::unique_ptr<backend::Backend> backend_;
  std::unique_ptr<backend::MlpExecutor> executor_;
  nn::Gradient host_gradient_;
  nn::Optimizer optimizer_;
  // Host-side snapshot of the model at upload time; compared against the
  // live model at merge time to measure replica staleness (§VI-B).
  nn::Model upload_snapshot_;
};

}  // namespace hetsgd::core
