// Adaptive Hogbatch batch-size controller — Algorithm 2's ScheduleWork
// logic (§VI-C).
//
// On every work request from worker E, the coordinator compares E's
// cumulative update count u^E against the minimum and maximum counts of
// the *other* workers:
//   - u^E < min_u : E is the slowest worker -> speed it up by shrinking
//     its batch (b^E <- max(b^E / alpha, min_b^E));
//   - u^E > max_u : E is the fastest worker -> slow it down by growing its
//     batch (b^E <- min(b^E * alpha, max_b^E)).
// The thresholds [min_b, max_b] encode the minimum-utilization guarantee
// (the paper calibrates GPU utilization to ~50% at the lower threshold and
// ~100% at the upper); alpha defaults to 2 (double/halve). Batch sizes are
// kept multiples of each worker's quantum (the CPU worker's lane count, so
// sub-batches stay whole).
#pragma once

#include <cstdint>
#include <vector>

#include "msg/message.hpp"
#include "tensor/types.hpp"

namespace hetsgd::core {

class AdaptiveController {
 public:
  explicit AdaptiveController(double alpha);

  struct WorkerLimits {
    tensor::Index initial = 0;
    tensor::Index min = 0;
    tensor::Index max = 0;
    tensor::Index quantum = 1;
  };

  // Registers worker `id` (dense from 0) with its batch thresholds.
  void register_worker(msg::WorkerId id, const WorkerLimits& limits);

  std::size_t worker_count() const { return workers_.size(); }
  tensor::Index batch(msg::WorkerId id) const;
  std::uint64_t updates(msg::WorkerId id) const;

  // Algorithm 2 lines 1-5: records u^E and returns the (possibly resized)
  // batch for worker E's next ExecuteWork.
  tensor::Index on_request(msg::WorkerId id, std::uint64_t updates);

  double alpha() const { return alpha_; }

 private:
  struct State {
    WorkerLimits limits;
    tensor::Index batch = 0;
    std::uint64_t updates = 0;
  };

  tensor::Index clamp_to_quantum(tensor::Index b,
                                 const WorkerLimits& limits) const;

  double alpha_;
  std::vector<State> workers_;
};

}  // namespace hetsgd::core
