// Adaptive Hogbatch batch-size controller — Algorithm 2's ScheduleWork
// logic (§VI-C).
//
// On every work request from worker E, the coordinator compares E's
// cumulative update count u^E against the minimum and maximum counts of
// the *other* workers:
//   - u^E < min_u : E is the slowest worker -> speed it up by shrinking
//     its batch (b^E <- max(b^E / alpha, min_b^E));
//   - u^E > max_u : E is the fastest worker -> slow it down by growing its
//     batch (b^E <- min(b^E * alpha, max_b^E)).
// The thresholds [min_b, max_b] encode the minimum-utilization guarantee
// (the paper calibrates GPU utilization to ~50% at the lower threshold and
// ~100% at the upper); alpha defaults to 2 (double/halve). Batch sizes are
// kept multiples of each worker's quantum (the CPU worker's lane count, so
// sub-batches stay whole).
#pragma once

#include <cstdint>
#include <vector>

#include "msg/message.hpp"
#include "tensor/types.hpp"

namespace hetsgd::core {

class AdaptiveController {
 public:
  explicit AdaptiveController(double alpha);

  struct WorkerLimits {
    tensor::Index initial = 0;
    tensor::Index min = 0;
    tensor::Index max = 0;
    tensor::Index quantum = 1;
  };

  // Registers worker `id` (dense from 0) with its batch thresholds.
  // `baseline_updates` credits a worker that joins an in-progress run
  // (elastic membership): the newcomer's raw counter starts at zero, so
  // without the credit Algorithm 2 would see it as "slowest" and shrink
  // its batch to the minimum until it caught up on absolute count. The
  // offset is applied in comparisons only — reported counters stay raw.
  void register_worker(msg::WorkerId id, const WorkerLimits& limits,
                       std::uint64_t baseline_updates = 0);

  // Marks a worker as retired: it no longer participates in the min/max
  // comparison and its own requests return the batch unchanged.
  void retire_worker(msg::WorkerId id);

  // Checkpoint restore: overwrite a worker's batch (clamped to its
  // thresholds) and cumulative update count.
  void restore_worker(msg::WorkerId id, tensor::Index batch,
                      std::uint64_t updates);

  std::size_t worker_count() const { return workers_.size(); }
  tensor::Index batch(msg::WorkerId id) const;
  // Cumulative updates credited to `id`: raw reported count plus any
  // join-time baseline offset.
  std::uint64_t updates(msg::WorkerId id) const;

  // Algorithm 2 lines 1-5: records u^E and returns the (possibly resized)
  // batch for worker E's next ExecuteWork.
  tensor::Index on_request(msg::WorkerId id, std::uint64_t updates);

  double alpha() const { return alpha_; }

 private:
  struct State {
    WorkerLimits limits;
    tensor::Index batch = 0;
    std::uint64_t updates = 0;
    std::uint64_t offset = 0;  // join-time baseline credit
    bool retired = false;
  };

  tensor::Index clamp_to_quantum(tensor::Index b,
                                 const WorkerLimits& limits) const;

  double alpha_;
  std::vector<State> workers_;
};

}  // namespace hetsgd::core
