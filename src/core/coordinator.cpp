#include "core/coordinator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "common/logging.hpp"
#include "common/macros.hpp"
#include "core/cost_model.hpp"
#include "nn/mlp.hpp"
#include "nn/serialize.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hetsgd::core {

using tensor::Index;

namespace {

// Hot-path metric handles, resolved once (registration takes the
// registry mutex; the handles themselves are lock-free).
struct CoordMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
  obs::Counter& dispatches = reg.counter("hetsgd_dispatches_total");
  obs::Counter& examples = reg.counter("hetsgd_examples_dispatched_total");
  obs::Counter& reclaims = reg.counter("hetsgd_reclaims_total");
  obs::Counter& redispatches = reg.counter("hetsgd_redispatches_total");
  obs::Counter& quarantines = reg.counter("hetsgd_quarantines_total");
  obs::Counter& rollbacks = reg.counter("hetsgd_rollbacks_total");
  obs::Counter& checkpoints = reg.counter("hetsgd_checkpoints_total");
  obs::Counter& late_reports = reg.counter("hetsgd_late_reports_total");
  obs::Counter& epoch_flips = reg.counter("hetsgd_epoch_flips_total");
  obs::Gauge& loss = reg.gauge("hetsgd_loss");
  obs::Gauge& lr_scale = reg.gauge("hetsgd_lr_scale");
  obs::Gauge& vtime = reg.gauge("hetsgd_vtime_frontier_vseconds");
  obs::Histogram& batch_cost = reg.histogram("hetsgd_batch_cost_vseconds");

  CoordMetrics() { lr_scale.set(1.0); }  // no rollback yet = full rate
};

CoordMetrics& metrics() {
  // hetsgd-lint: allow(naked-new) leaked singleton: metric refs must
  // outlive static destruction of every instrumented thread
  static CoordMetrics* m = new CoordMetrics();
  return *m;
}

}  // namespace

Coordinator::Coordinator(data::Dataset& dataset, nn::Model& model,
                         const TrainingConfig& config,
                         tensor::Index eval_sample)
    : msg::Actor("coordinator"), dataset_(dataset), model_(model),
      config_(config),
      adaptive_enabled_(config.algorithm == Algorithm::kAdaptiveHogbatch),
      fingerprint_(config_fingerprint(config, dataset)),
      adaptive_(config.alpha), cpu_perf_(config.cpu.spec),
      gpu_perf_(config.gpu.spec), eval_snapshot_(model),
      rng_(config.seed ^ 0xc0ffee), last_good_model_(model) {
  // Copy out the loss-evaluation sample before any shuffling.
  const Index n = dataset_.example_count();
  Index sample = eval_sample > 0 ? std::min(eval_sample, n) : n;
  std::vector<std::size_t> idx(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  rng_.shuffle(idx);
  eval_x_.resize(sample, dataset_.dim());
  eval_y_.resize(static_cast<std::size_t>(sample));
  for (Index i = 0; i < sample; ++i) {
    const Index src = static_cast<Index>(idx[static_cast<std::size_t>(i)]);
    const tensor::Scalar* from = dataset_.features().row(src);
    std::copy(from, from + dataset_.dim(), eval_x_.row(i));
    eval_y_[static_cast<std::size_t>(i)] =
        dataset_.labels()[static_cast<std::size_t>(src)];
  }
}

void Coordinator::add_worker(msg::Actor& actor, gpusim::DeviceKind kind,
                             const AdaptiveController::WorkerLimits& limits) {
  MutexLock lock(mu_);
  const auto id = static_cast<msg::WorkerId>(workers_.size());
  WorkerRuntime w;
  w.actor = &actor;
  w.kind = kind;
  w.limits = limits;
  w.waiting = true;  // every worker starts idle and ready for work
  workers_.push_back(w);
  ledger_.register_worker(id, actor.name(), kind, limits.initial);
  adaptive_.register_worker(id, limits);
}

double Coordinator::epochs_completed() const {
  return static_cast<double>(ledger_.total_examples()) /
         static_cast<double>(dataset_.example_count());
}

std::uint64_t Coordinator::quarantined_workers() const {
  MutexLock lock(mu_);
  std::uint64_t n = 0;
  for (const auto& w : workers_) {
    if (w.quarantined || w.failed) ++n;
  }
  return n;
}

void Coordinator::on_start() {
  MutexLock lock(mu_);
  HETSGD_ASSERT(!workers_.empty(), "coordinator needs at least one worker");
  monitor_ = std::make_unique<UtilizationMonitor>(workers_.size());
  // A resumed run already restored its eval/checkpoint cadence cursors;
  // re-seeding them at the first grid point would replay every eval the
  // original run performed before the cut.
  if (!resumed_ && config_.eval_interval_vseconds > 0.0) {
    next_eval_vtime_ = config_.eval_interval_vseconds;
  }
  if (!resumed_ && config_.fault.checkpoint_interval_vseconds > 0.0 &&
      !config_.fault.checkpoint_path.empty()) {
    next_checkpoint_vtime_ = config_.fault.checkpoint_interval_vseconds;
  }
  if (ckpt_mgr_ != nullptr && !resumed_ &&
      config_.fault.checkpoint_interval_vseconds > 0.0) {
    next_full_ckpt_vtime_ = config_.fault.checkpoint_interval_vseconds;
  }
  if (fault_layer_enabled() || ckpt_mgr_ != nullptr) {
    // Real-time fallback heartbeat: all-workers-silent detection, and the
    // state-collection timeout of a pending checkpoint cut.
    set_idle_interval(std::chrono::milliseconds(20));
  }
  // A resumed run restored its loss curve (including the point the
  // original run evaluated at vtime 0); re-evaluating here would insert a
  // duplicate and desync the curve from the uninterrupted trajectory.
  if (!resumed_) evaluate_loss(0.0);
  try_dispatch_all();
}

bool Coordinator::handle(msg::Envelope envelope) {
  MutexLock lock(mu_);
  idle_ticks_ = 0;  // any message is a sign of life; restart the silence window
  // hetsgd-analyze: dispatch ignores(ExecuteWork, Shutdown, StateRequest) —
  // worker-bound messages the coordinator only ever sends, never receives.
  if (std::holds_alternative<msg::ScheduleWork>(envelope.message)) {
    on_schedule(std::get<msg::ScheduleWork>(envelope.message));
  } else if (std::holds_alternative<msg::WorkerFault>(envelope.message)) {
    on_worker_fault(std::get<msg::WorkerFault>(envelope.message));
  } else if (std::holds_alternative<msg::ShutdownAck>(envelope.message)) {
    // Only final-shutdown acks count toward loop exit; a mid-run
    // retirement also Shutdowns its worker, and that ack must not
    // terminate the coordinator.
    if (shutting_down_) {
      ++shutdown_acks_;
      if (shutdown_acks_ >= expected_acks_) loop_done_ = true;
    }
  } else if (std::holds_alternative<msg::StateReport>(envelope.message)) {
    on_state_report(std::get<msg::StateReport>(envelope.message));
  } else if (std::holds_alternative<msg::WorkerJoin>(envelope.message)) {
    on_worker_join(std::get<msg::WorkerJoin>(envelope.message).worker);
  } else if (std::holds_alternative<msg::WorkerRetire>(envelope.message)) {
    on_worker_retire(std::get<msg::WorkerRetire>(envelope.message).worker);
  } else {
    HETSGD_LOG_WARN("coordinator", "unexpected message variant %zu",
                    envelope.message.index());
  }
  return !loop_done_;
}

bool Coordinator::on_idle() {
  MutexLock lock(mu_);
  if (shutting_down_) return !loop_done_;
  if (ckpt_pending_) {
    // A checkpoint cut is collecting worker state. A live worker answers a
    // StateRequest promptly (it is idle at the epoch barrier), so extended
    // silence means the laggards are dead: stop waiting, cut with what
    // arrived, and let the run proceed.
    const std::int64_t grace =
        std::max<std::int64_t>(1, config_.fault.stall_grace_ticks);
    if (++ckpt_ticks_ >= 4 * grace) {
      HETSGD_LOG_WARN("coordinator",
                      "checkpoint cut timed out waiting on %zu worker(s); "
                      "writing partial worker state",
                      ckpt_waiting_.size());
      ckpt_waiting_.clear();
      maybe_complete_checkpoint();
      try_dispatch_all();
    }
    return !loop_done_;
  }
  if (!fault_layer_enabled()) return !loop_done_;
  if (!any_busy()) {
    idle_ticks_ = 0;
    return true;
  }
  const std::int64_t grace =
      std::max<std::int64_t>(1, config_.fault.stall_grace_ticks);
  if (++idle_ticks_ < grace) return true;

  // The mailbox has been silent for the whole grace window while work is
  // outstanding. Silence alone doesn't condemn anyone — a healthy worker
  // may simply be grinding through a big batch — so a worker loses its
  // dispatch only when it is ALSO virtually overdue: the frontier passed
  // its deadline and it still hasn't reported.
  const double frontier = ledger_.max_clock();
  bool reclaimed = false;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const WorkerRuntime& w = workers_[i];
    if (!w.busy || frontier <= w.deadline_vtime) continue;
    const auto id = static_cast<msg::WorkerId>(i);
    HETSGD_LOG_WARN("coordinator",
                    "worker %d silent past grace window and overdue; "
                    "reclaiming dispatch",
                    id);
    ledger_.record_fault({frontier, id, FaultKind::kDeadlineMiss, 0,
                          "silent past grace window, virtually overdue"});
    reclaim_inflight(id, frontier, "grace window expired");
    note_fault(id, frontier);
    reclaimed = true;
  }

  // Frozen frontier: nobody reads as overdue because every busy worker is
  // lost and the clocks cannot advance (the gater is itself dead). After
  // an extended window, force the oldest outstanding deadline lost.
  if (!reclaimed && idle_ticks_ >= 4 * grace) {
    msg::WorkerId victim = -1;
    double earliest = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      const WorkerRuntime& w = workers_[i];
      if (w.busy && w.deadline_vtime < earliest) {
        earliest = w.deadline_vtime;
        victim = static_cast<msg::WorkerId>(i);
      }
    }
    if (victim >= 0) {
      HETSGD_LOG_WARN(
          "coordinator",
          "worker %d silent past extended grace window; reclaiming dispatch",
          victim);
      ledger_.record_fault({frontier, victim, FaultKind::kDeadlineMiss, 0,
                            "extended real-time grace window expired"});
      reclaim_inflight(victim, frontier, "extended grace window expired");
      note_fault(victim, frontier);
      reclaimed = true;
    }
  }
  if (reclaimed) {
    idle_ticks_ = 0;
    try_dispatch_all();
  }
  return !loop_done_;
}

void Coordinator::on_schedule(const msg::ScheduleWork& report) {
  const msg::WorkerId id = report.worker;
  HETSGD_ASSERT(id >= 0 && static_cast<std::size_t>(id) < workers_.size(),
                "report from unknown worker");
  WorkerRuntime& w = workers_[static_cast<std::size_t>(id)];

  // Ledger apply closes the batch's cross-thread flow (dispatch -> worker
  // execute -> report -> here).
  HETSGD_TRACE_SPAN(apply_span, "coordinator", "ledger_apply",
                    report.clock_vtime,
                    report.examples > 0
                        ? obs::batch_flow_id(id, report.sequence)
                        : 0);
  if (report.examples > 0) {
    obs::trace_flow_end("batch", obs::batch_flow_id(id, report.sequence),
                        report.clock_vtime);
  }
  metrics().vtime.set(ledger_.max_clock());

  const bool late =
      report.examples > 0 && report.sequence <= w.reclaimed_through;

  if (report.examples > 0) {
    // Busy segment: [clock_after - batch_busy, clock_after].
    const double prev_busy = ledger_.busy_vtime(id);
    const double seg_len = report.busy_vtime - prev_busy;
    HETSGD_ASSERT(seg_len >= 0.0, "busy time went backwards");
    monitor_->record(id, report.clock_vtime - seg_len, report.clock_vtime,
                     std::clamp(report.intensity, 0.0, 1.0));
  }
  if (late) {
    // The batch was reclaimed after a deadline miss and its range
    // re-dispatched; the Hogwild updates really happened (clocks and update
    // counts advance) but the examples must not be counted twice.
    ledger_.on_late_report(report);
    ++late_reports_;
    late_examples_ += report.examples;
    metrics().late_reports.inc();
    HETSGD_LOG_WARN("coordinator",
                    "late report from worker %d (seq %llu <= reclaimed %llu)",
                    id, static_cast<unsigned long long>(report.sequence),
                    static_cast<unsigned long long>(w.reclaimed_through));
  } else {
    // Straggler detection: the worker's own completion clock is the only
    // sound virtual-time signal. Judging a dispatch by how far *other*
    // workers' clocks ran past its deadline misfires under heterogeneous
    // batch costs (a GPU report can legally leapfrog a tiny Hogwild
    // batch's deadline by a whole clock window), so lateness is only ever
    // charged against the straggler's own report.
    const bool straggler = fault_layer_enabled() && report.examples > 0 &&
                           w.inflight_size > 0 &&
                           report.clock_vtime > w.deadline_vtime;
    ledger_.on_report(report);
    if (report.examples > 0) {
      w.inflight_size = 0;  // the in-flight dispatch completed
      if (straggler) {
        ledger_.record_fault({report.clock_vtime, id, FaultKind::kDeadlineMiss,
                              0, "straggler: batch finished past deadline"});
        HETSGD_LOG_WARN(
            "coordinator",
            "worker %d finished past its deadline (%.6f > %.6f)", id,
            report.clock_vtime, w.deadline_vtime);
        note_fault(id, report.clock_vtime);
      } else {
        w.fault_count = 0;  // an on-time report proves health
      }
    }
  }
  w.busy = false;
  w.waiting = !w.failed && !w.retired;  // a live worker is asking for more

  if (adaptive_enabled_) {
    const Index next = adaptive_.on_request(id, report.updates);
    ledger_.set_current_batch(id, next);
  }

  maybe_eval_checkpoints();
  try_dispatch_all();
}

void Coordinator::on_worker_fault(const msg::WorkerFault& fault) {
  const msg::WorkerId id = fault.worker;
  HETSGD_ASSERT(id >= 0 && static_cast<std::size_t>(id) < workers_.size(),
                "fault from unknown worker");
  WorkerRuntime& w = workers_[static_cast<std::size_t>(id)];
  HETSGD_LOG_WARN("coordinator", "worker %d reported fault: %s", id,
                  fault.detail.c_str());
  ledger_.record_fault(
      {fault.vtime, id, FaultKind::kWorkerFault, 0, fault.detail});

  // The worker's actor loop exits after escalating: treat it as dead.
  reclaim_inflight(id, fault.vtime, fault.detail);
  w.failed = true;
  w.busy = false;
  w.waiting = false;
  if (!w.quarantined) {
    w.quarantined = true;
    ledger_.record_fault(
        {fault.vtime, id, FaultKind::kQuarantine, 0, "fatal worker fault"});
  }
  // A dead worker will never answer a pending StateRequest.
  drop_ckpt_peer(id);
  maybe_complete_checkpoint();
  try_dispatch_all();
}

double Coordinator::effective_window() const {
  return config_.clock_window;  // 0 = strict virtual-time ordering
}

double Coordinator::estimate_cost(const WorkerRuntime& w,
                                  Index batch) const {
  if (w.kind == gpusim::DeviceKind::kCpu) {
    const int lanes = config_.cpu.sim_lanes;
    const Index sub = std::max<Index>(1, batch / lanes);
    const int num_sub = static_cast<int>((batch + sub - 1) / sub);
    return cpu_batch_seconds(cpu_perf_, config_.mlp, sub, num_sub);
  }
  return gpu_batch_seconds(gpu_perf_, config_.mlp, batch,
                           config_.gpu.host_merge_bandwidth);
}

void Coordinator::reclaim_inflight(msg::WorkerId id, double vtime,
                                   const std::string& why) {
  WorkerRuntime& w = workers_[static_cast<std::size_t>(id)];
  if (w.inflight_size <= 0) return;
  const Index begin = w.inflight_begin;
  const Index size = w.inflight_size;
  reclaim_pool_.push_back({begin, size});
  examples_reclaimed_ += static_cast<std::uint64_t>(size);
  metrics().reclaims.inc();
  HETSGD_TRACE_INSTANT("coordinator", "reclaim", vtime,
                       obs::batch_flow_id(id, w.dispatch_seq));
  w.reclaimed_through = w.dispatch_seq;
  w.inflight_size = 0;
  w.busy = false;
  ledger_.record_fault({vtime, id, FaultKind::kReclaim,
                        static_cast<std::uint64_t>(size), why});
  HETSGD_LOG_WARN("coordinator",
                  "reclaimed [%lld, +%lld) from worker %d (%s)",
                  static_cast<long long>(begin), static_cast<long long>(size),
                  id, why.c_str());
}

void Coordinator::note_fault(msg::WorkerId id, double vtime) {
  WorkerRuntime& w = workers_[static_cast<std::size_t>(id)];
  ++w.fault_count;
  if (!w.quarantined && !w.failed &&
      w.fault_count >= std::max<std::int64_t>(1, config_.fault.quarantine_after)) {
    w.quarantined = true;
    w.waiting = false;
    metrics().quarantines.inc();
    HETSGD_TRACE_INSTANT("coordinator", "quarantine", vtime);
    ledger_.record_fault({vtime, id, FaultKind::kQuarantine, 0,
                          "repeated deadline misses"});
    HETSGD_LOG_WARN("coordinator", "worker %d quarantined after %lld faults",
                    id, static_cast<long long>(w.fault_count));
  }
}

void Coordinator::try_dispatch_all() {
  // No dispatch while a checkpoint cut is collecting worker state: the cut
  // must capture a quiescent barrier, and the deferred epoch restart has
  // not happened yet (cursor_ still points past the old permutation).
  if (shutting_down_ || ckpt_pending_) return;

  // Retire workers that reached the time budget first: a stale
  // not-yet-finished flag would otherwise hold the epoch barrier open for
  // a worker that will never take another batch.
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    WorkerRuntime& w = workers_[i];
    if (w.failed || w.quarantined) continue;
    if (!w.finished && !w.busy &&
        ledger_.clock(static_cast<msg::WorkerId>(i)) >=
            config_.time_budget_vseconds) {
      w.finished = true;
      w.waiting = false;
    }
  }

  bool progressed = true;
  while (progressed) {
    progressed = false;
    maybe_flip_epoch();
    if (shutting_down_) return;

    // Earliest estimated completion among busy workers: the virtual
    // frontier idle workers may not overtake (plus the window).
    double frontier = std::numeric_limits<double>::max();
    for (const auto& w : workers_) {
      if (w.busy) frontier = std::min(frontier, w.est_completion);
    }
    frontier += effective_window();

    // Candidates: idle, unserved, unfinished, healthy — in clock order.
    std::vector<msg::WorkerId> idle;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      const auto id = static_cast<msg::WorkerId>(i);
      const WorkerRuntime& w = workers_[i];
      if (!w.waiting || w.busy || !schedulable(w)) continue;
      idle.push_back(id);
    }
    std::sort(idle.begin(), idle.end(), [&](msg::WorkerId a, msg::WorkerId b) {
      return ledger_.clock(a) < ledger_.clock(b);
    });

    for (msg::WorkerId id : idle) {
      WorkerRuntime& w = workers_[static_cast<std::size_t>(id)];
      const double clock = ledger_.clock(id);
      if (clock > frontier) continue;  // would run ahead of the frontier

      // Reclaimed ranges first: they are this epoch's lost work and must
      // finish before the barrier can flip. Partial pieces are fine — this
      // is tail recovery, not steady-state batching.
      if (!reclaim_pool_.empty()) {
        auto [r_begin, r_size] = reclaim_pool_.back();
        reclaim_pool_.pop_back();
        const Index piece = std::min<Index>(r_size, batch_for(id));
        if (piece < r_size) {
          reclaim_pool_.push_back({r_begin + piece, r_size - piece});
        }
        dispatch_range(id, r_begin, piece, /*reclaimed=*/true);
        if (w.busy) {  // dispatch succeeded (send may fail on a dead box)
          frontier = std::min(frontier, w.est_completion + effective_window());
        }
        progressed = true;
        continue;
      }

      // Dispatch rule. Algorithm 2 (Adaptive) serves a worker only if a
      // *full* batch remains ("if b^E <= |B| then extract batch"), so
      // small-batch workers sweep the epoch tail — the mechanism that
      // balances the update distribution (Fig. 8). Algorithm 1 (the static
      // variants) hands out whatever remains ("if B != 0 extract next
      // batch"), so the tail goes to the next requester as one partial
      // batch instead of stalling the epoch behind a slow 56-example
      // sweep.
      const Index remaining = dataset_.example_count() - cursor_;
      if (adaptive_enabled_ ? batch_for(id) > remaining : remaining <= 0) {
        continue;
      }
      const Index batch = std::min<Index>(batch_for(id), remaining);
      dispatch_range(id, cursor_, batch, /*reclaimed=*/false);
      cursor_ += batch;
      // The newly-busy worker tightens the frontier for later candidates.
      if (w.busy) {
        frontier = std::min(frontier, w.est_completion + effective_window());
      }
      progressed = true;
    }
  }

  if (!any_busy() && all_finished()) {
    begin_shutdown();
  }
}

tensor::Index Coordinator::batch_for(msg::WorkerId id) const {
  // A configured batch larger than the dataset degrades to one full pass.
  return std::min<Index>(ledger_.current_batch(id),
                         dataset_.example_count());
}

void Coordinator::dispatch_range(msg::WorkerId id, Index begin, Index size,
                                 bool reclaimed) {
  WorkerRuntime& w = workers_[static_cast<std::size_t>(id)];
  HETSGD_ASSERT(size > 0, "dispatch with empty range");

  msg::ExecuteWork work;
  work.batch_begin = static_cast<std::uint64_t>(begin);
  work.batch_size = static_cast<std::uint64_t>(size);
  work.learning_rate = config_.learning_rate * lr_scale_;
  work.epoch = epoch_;
  work.not_before = epoch_start_vtime_;
  work.sequence = ++w.dispatch_seq;

  const double start =
      std::max(ledger_.clock(id), epoch_start_vtime_);
  const double cost = estimate_cost(w, size);
  w.est_completion = start + cost;
  w.deadline_vtime = fault_layer_enabled()
                         ? start + config_.fault.deadline_factor * cost
                         : std::numeric_limits<double>::max();
  w.inflight_begin = begin;
  w.inflight_size = size;
  w.busy = true;
  w.waiting = false;
  examples_dispatched_ += static_cast<std::uint64_t>(size);
  metrics().dispatches.inc();
  metrics().examples.inc(static_cast<std::uint64_t>(size));
  metrics().batch_cost.observe(cost);
  // Flow start: the batch's journey across threads begins here; workers
  // derive the same id from (worker, sequence) to continue it.
  obs::trace_flow_begin("batch", obs::batch_flow_id(id, work.sequence),
                        start);
  HETSGD_TRACE_INSTANT("coordinator",
                       reclaimed ? "redispatch" : "dispatch", start,
                       obs::batch_flow_id(id, work.sequence));
  if (reclaimed) {
    metrics().redispatches.inc();
    ledger_.record_fault({start, id, FaultKind::kRedispatch,
                          static_cast<std::uint64_t>(size),
                          "reclaimed range re-dispatched"});
  }

  if (!w.actor->send({msg::kCoordinator, work})) {
    // Dead mailbox: the worker exited without telling us. Take the batch
    // straight back and drop the worker from the healthy set.
    ledger_.record_fault({start, id, FaultKind::kSendFailure, 0,
                          "dispatch send failed: mailbox closed"});
    HETSGD_LOG_WARN("coordinator", "dispatch to worker %d failed; dropping it",
                    id);
    reclaim_inflight(id, start, "dispatch send failed");
    w.failed = true;
    w.busy = false;
    w.waiting = false;
    if (!w.quarantined) {
      w.quarantined = true;
      ledger_.record_fault(
          {start, id, FaultKind::kQuarantine, 0, "mailbox closed"});
    }
  }
}

void Coordinator::maybe_flip_epoch() {
  // The epoch ends when no unfinished worker's full batch fits into the
  // remainder (Algorithm 1: "when there are no more batches and all the
  // workers are done") and every in-flight batch has completed. Any
  // leftover examples smaller than the smallest batch rejoin the pool at
  // the reshuffle. Reclaimed ranges hold the barrier open while a healthy
  // worker remains to re-run them.
  const Index remaining = dataset_.example_count() - cursor_;
  bool anyone_active = false;
  bool anyone_schedulable = false;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const WorkerRuntime& w = workers_[i];
    if (!schedulable(w)) continue;
    // Suspended: its dispatch was reclaimed and it has not reported since
    // (possibly dead). It will not come asking, so it must not hold the
    // barrier; a late report re-activates it.
    if (w.fault_count > 0 && !w.busy && !w.waiting) continue;
    anyone_schedulable = true;
    if (w.waiting || w.busy) anyone_active = true;
    // Algorithm 2: the epoch lasts while anyone's full batch fits;
    // Algorithm 1: while any example remains.
    const Index needed =
        adaptive_enabled_ ? batch_for(static_cast<msg::WorkerId>(i))
                          : Index{1};
    if (needed <= remaining) {
      return;  // someone can still take a batch this epoch
    }
  }
  if (!reclaim_pool_.empty() && anyone_schedulable) {
    return;  // lost ranges must be re-dispatched before the barrier flips
  }
  if (any_busy()) return;  // epoch barrier: wait for in-flight batches

  if (!reclaim_pool_.empty()) {
    // No healthy worker is left to re-run the lost ranges; they stay
    // accounted as reclaimed and are dropped with the old permutation.
    HETSGD_LOG_WARN("coordinator",
                    "dropping %zu unreclaimable range(s) at epoch flip",
                    reclaim_pool_.size());
    reclaim_pool_.clear();
  }

  // Epoch boundary. Evaluate the loss (the paper always computes it on the
  // GPU at epoch end — skipped when interval checkpoints are active, since
  // fast workers can flip thousands of tiny epochs), then reshuffle and
  // restart.
  ++epoch_;
  metrics().epoch_flips.inc();
  HETSGD_TRACE_INSTANT("coordinator", "epoch_flip", ledger_.max_clock());
  double boundary = ledger_.max_clock();
  if (config_.eval_interval_vseconds <= 0.0) {
    evaluate_loss(boundary);
    if (shutting_down_) return;  // divergence abort
  }
  // Epoch barrier: drop the evaluation scratch back to zero so its
  // high-water batch (the eval chunk) is not pinned across epochs; the
  // next evaluate_loss() regrows it on demand.
  eval_ws_.release();
  if (config_.charge_loss_eval_to_gpu) {
    // Forward pass over the dataset on the GPU: utilization spike of Fig 7.
    const double eval_cost =
        nn::training_flops(config_.mlp, dataset_.example_count()) / 3.0 /
        (gpu_perf_.spec().peak_flops * gpu_perf_.spec().max_efficiency);
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      if (workers_[i].kind == gpusim::DeviceKind::kGpu) {
        monitor_->record(static_cast<msg::WorkerId>(i), boundary,
                         boundary + eval_cost, 1.0);
      }
    }
    boundary += eval_cost;
  }
  epoch_start_vtime_ = boundary;

  if (config_.max_epochs > 0 && epoch_ >= config_.max_epochs) {
    begin_shutdown();
    return;
  }
  if (!anyone_active) {
    // All workers hit the budget (or failed); nothing left to schedule.
    begin_shutdown();
    return;
  }

  // Full-checkpoint cut point. This exact spot — after the epoch counter,
  // loss evaluation, and boundary bookkeeping, but BEFORE the reshuffle —
  // is what makes resume deterministic: at a cut with epoch_ == k exactly
  // k-1 dataset shuffles have consumed the coordinator RNG, so restore()
  // can replay them, verify the stream, and perform shuffle #k itself.
  if (full_checkpoint_due()) {
    begin_full_checkpoint();
    if (ckpt_pending_) {
      // Epoch restart (shuffle + cursor) deferred until every StateReport
      // arrives; maybe_complete_checkpoint() finishes the flip.
      return;
    }
    write_full_checkpoint();  // nobody to ask: cut synchronously
  }
  dataset_.shuffle(rng_);
  cursor_ = 0;
}

void Coordinator::evaluate_loss(double vtime) {
  HETSGD_TRACE_SPAN(eval_span, "coordinator", "evaluate_loss", vtime);
  // hetsgd-racy: snapshot of the shared model races with the Hogwild
  // lanes' unsynchronized writes (nn::Model::operator= in tsan.supp);
  // evaluating the snapshot keeps the measurement internally consistent.
  eval_snapshot_ = model_;
  const Index n = eval_x_.rows();
  const Index chunk = 512;
  double total = 0.0;
  for (Index begin = 0; begin < n; begin += chunk) {
    const Index count = std::min(chunk, n - begin);
    auto x = eval_x_.rows_view(begin, count);
    std::span<const std::int32_t> y(eval_y_.data() + begin,
                                    static_cast<std::size_t>(count));
    total += static_cast<double>(
                 nn::compute_loss(eval_snapshot_, x, y, eval_ws_)) *
             static_cast<double>(count);
  }
  const double loss = total / static_cast<double>(n);
  if (!std::isfinite(loss)) {
    handle_divergence(vtime, loss);
    return;
  }
  // Divergence insurance: remember the last model snapshot that evaluated
  // to a finite loss, and persist it on the auto-checkpoint cadence.
  last_good_model_ = eval_snapshot_;
  last_good_loss_ = loss;
  has_last_good_ = true;
  metrics().loss.set(loss);
  HETSGD_TRACE_COUNTER("loss", loss);
  maybe_auto_checkpoint();
  curve_.push_back({vtime, epochs_completed(), loss});
}

void Coordinator::handle_divergence(double vtime, double loss) {
  if (config_.fault.abort_on_divergence || !has_last_good_) {
    HETSGD_LOG_WARN("coordinator",
                    "non-finite loss at vtime %.6f; aborting run", vtime);
    ledger_.record_fault({vtime, msg::kCoordinator,
                          FaultKind::kDivergenceAbort, 0,
                          "non-finite evaluated loss"});
    HETSGD_TRACE_INSTANT("coordinator", "divergence_abort", vtime);
    diverged_ = true;
    curve_.push_back({vtime, epochs_completed(), loss});
    begin_shutdown();
    return;
  }
  // hetsgd-racy: the rollback writes the shared model while in-flight
  // Hogwild lanes may race the restore (nn::Model::operator= in
  // tsan.supp); a re-poisoned model simply triggers another (cheaper)
  // rollback at the next evaluation. At epoch boundaries the barrier
  // guarantees no racers.
  model_ = last_good_model_;
  lr_scale_ *= config_.fault.lr_backoff;
  ++rollbacks_;
  metrics().rollbacks.inc();
  metrics().lr_scale.set(lr_scale_);
  HETSGD_TRACE_INSTANT("coordinator", "rollback", vtime);
  HETSGD_LOG_WARN("coordinator",
                  "non-finite loss at vtime %.6f; rolled back (lr x%.3g)",
                  vtime, lr_scale_);
  ledger_.record_fault({vtime, msg::kCoordinator,
                        FaultKind::kDivergenceRollback, 0,
                        "restored last-good model, lr backed off"});
  curve_.push_back({vtime, epochs_completed(), last_good_loss_});
}

void Coordinator::maybe_auto_checkpoint() {
  if (next_checkpoint_vtime_ <= 0.0) return;
  const double progress = ledger_.max_clock();
  if (progress < next_checkpoint_vtime_) return;
  nn::save_model(last_good_model_, config_.fault.checkpoint_path);
  ++checkpoints_written_;
  while (next_checkpoint_vtime_ <= progress) {
    next_checkpoint_vtime_ += config_.fault.checkpoint_interval_vseconds;
  }
}

void Coordinator::maybe_eval_checkpoints() {
  if (config_.eval_interval_vseconds <= 0.0) return;
  const double progress = ledger_.max_clock();
  while (next_eval_vtime_ <= progress) {
    evaluate_loss(next_eval_vtime_);
    if (shutting_down_) return;  // divergence abort
    next_eval_vtime_ += config_.eval_interval_vseconds;
  }
}

void Coordinator::begin_shutdown() {
  if (shutting_down_) return;
  shutting_down_ = true;
  // Abandon any in-flight checkpoint cut: a divergence abort can land
  // between StateRequest and the replies, and a half-collected cut must
  // not be written.
  ckpt_pending_ = false;
  ckpt_waiting_.clear();
  // Account for any still-in-flight dispatches (divergence aborts can stop
  // the run mid-batch): their ranges are reclaimed-but-never-re-dispatched
  // so the ledger invariant holds at exit, and eventual reports fold in as
  // late.
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (workers_[i].busy) {
      reclaim_inflight(static_cast<msg::WorkerId>(i), ledger_.max_clock(),
                       "run shutting down");
    }
  }
  // Count only sends that actually landed: a dead worker's mailbox is
  // closed and will never ack, and waiting on it would hang the join. A
  // retired worker already got its Shutdown at retirement — sending again
  // (and expecting a second ack) would hang the loop.
  expected_acks_ = 0;
  for (auto& w : workers_) {
    if (w.retired) continue;
    if (w.actor->send({msg::kCoordinator, msg::Shutdown{}})) {
      ++expected_acks_;
    }
  }
  if (shutdown_acks_ >= expected_acks_) loop_done_ = true;
}

void Coordinator::set_checkpoint_manager(CheckpointManager* manager) {
  MutexLock lock(mu_);
  ckpt_mgr_ = manager;
}

bool Coordinator::restore(const TrainingCheckpoint& ckpt, std::string* error) {
  MutexLock lock(mu_);
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (ckpt.workers.size() != workers_.size()) {
    return fail("checkpoint has " + std::to_string(ckpt.workers.size()) +
                " workers, this run has " + std::to_string(workers_.size()));
  }
  if (ckpt.epoch == 0) {
    return fail("checkpoint has no completed epoch");
  }

  // Replay the permutation history. The constructor already consumed the
  // eval-sample shuffle; each of the original run's epoch flips before the
  // cut consumed one dataset shuffle. The cut sits before shuffle #epoch,
  // so epoch-1 replays must land the generator exactly on the persisted
  // state — anything else means the seed, dataset, or eval sample differ
  // from the checkpointing run, and continuing would silently fork the
  // trajectory.
  for (std::uint64_t e = 1; e < ckpt.epoch; ++e) {
    dataset_.shuffle(rng_);
  }
  if (rng_.state() != ckpt.rng) {
    return fail("RNG replay mismatch: this process's shuffle stream differs "
                "from the checkpointing run (config or dataset changed?)");
  }
  // Enter the post-cut state: perform the shuffle the cut deferred.
  dataset_.shuffle(rng_);
  cursor_ = 0;

  model_ = ckpt.model;
  last_good_model_ = ckpt.model;
  last_good_loss_ = ckpt.last_good_loss;
  has_last_good_ = true;

  epoch_ = ckpt.epoch;
  epoch_start_vtime_ = ckpt.epoch_start_vtime;
  next_eval_vtime_ = ckpt.next_eval_vtime;
  next_full_ckpt_vtime_ = ckpt.next_checkpoint_vtime;
  lr_scale_ = ckpt.lr_scale;
  rollbacks_ = ckpt.rollbacks;
  examples_dispatched_ = ckpt.examples_dispatched;
  examples_reclaimed_ = ckpt.examples_reclaimed;
  late_reports_ = ckpt.late_reports;
  late_examples_ = ckpt.late_examples;
  checkpoints_written_ = ckpt.checkpoints_written;
  curve_ = ckpt.curve;

  for (const WorkerCheckpoint& wc : ckpt.workers) {
    if (wc.id < 0 || static_cast<std::size_t>(wc.id) >= workers_.size()) {
      return fail("checkpoint names unknown worker " + std::to_string(wc.id));
    }
    const WorkerRuntime& w = workers_[static_cast<std::size_t>(wc.id)];
    if (static_cast<std::uint8_t>(w.kind) != wc.kind) {
      return fail("worker " + std::to_string(wc.id) +
                  " device kind differs from the checkpointing run");
    }
    ledger_.restore_stats(wc.stats);
    adaptive_.restore_worker(wc.id, wc.adaptive_batch, wc.adaptive_updates);
  }
  // The legacy model-only auto-checkpoint cadence is not persisted (its
  // output is a single overwritten file); re-seed it past the restored
  // frontier so it keeps firing on the same grid.
  if (config_.fault.checkpoint_interval_vseconds > 0.0 &&
      !config_.fault.checkpoint_path.empty()) {
    next_checkpoint_vtime_ = config_.fault.checkpoint_interval_vseconds;
    while (next_checkpoint_vtime_ <= ledger_.max_clock()) {
      next_checkpoint_vtime_ += config_.fault.checkpoint_interval_vseconds;
    }
  }
  resumed_ = true;
  return true;
}

bool Coordinator::full_checkpoint_due() const {
  if (ckpt_mgr_ == nullptr) return false;
  // interval == 0 with a manager attached means "every epoch flip".
  if (config_.fault.checkpoint_interval_vseconds <= 0.0) return true;
  return ledger_.max_clock() >= next_full_ckpt_vtime_;
}

void Coordinator::begin_full_checkpoint() {
  ckpt_waiting_.clear();
  ckpt_blobs_.clear();
  ckpt_ticks_ = 0;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    WorkerRuntime& w = workers_[i];
    if (w.failed || w.quarantined || w.retired) continue;
    const auto id = static_cast<msg::WorkerId>(i);
    if (w.actor->send({msg::kCoordinator, msg::StateRequest{}})) {
      ckpt_waiting_.push_back(id);
    }
  }
  ckpt_pending_ = !ckpt_waiting_.empty();
}

void Coordinator::on_state_report(const msg::StateReport& report) {
  if (!ckpt_pending_) {
    // A reply that arrived after the cut timed out (or was abandoned at
    // shutdown); the checkpoint already went out without it.
    return;
  }
  ckpt_blobs_.push_back({report.worker, report.state});
  drop_ckpt_peer(report.worker);
  maybe_complete_checkpoint();
  try_dispatch_all();
}

void Coordinator::drop_ckpt_peer(msg::WorkerId id) {
  ckpt_waiting_.erase(
      std::remove(ckpt_waiting_.begin(), ckpt_waiting_.end(), id),
      ckpt_waiting_.end());
}

void Coordinator::maybe_complete_checkpoint() {
  if (!ckpt_pending_ || !ckpt_waiting_.empty()) return;
  ckpt_pending_ = false;
  write_full_checkpoint();
  // Perform the epoch restart the cut deferred (see maybe_flip_epoch).
  dataset_.shuffle(rng_);
  cursor_ = 0;
}

void Coordinator::write_full_checkpoint() {
  HETSGD_ASSERT(ckpt_mgr_ != nullptr, "checkpoint write without a manager");
  HETSGD_TRACE_SCOPE("coordinator", "checkpoint_write");
  TrainingCheckpoint ckpt;
  ckpt.fingerprint = fingerprint_;
  ckpt.seed = config_.seed;
  // hetsgd-racy: quiescent at the epoch barrier — every worker is idle, so
  // this read of the shared model does not race (nn::Model copy is also in
  // tsan.supp for the mid-run divergence path).
  ckpt.model = model_;
  // Captured BEFORE the deferred shuffle: restore() replays epoch-1
  // shuffles, checks this state, then shuffles once itself.
  ckpt.rng = rng_.state();
  ckpt.epoch = epoch_;
  ckpt.epoch_start_vtime = epoch_start_vtime_;
  ckpt.next_eval_vtime = next_eval_vtime_;
  ckpt.lr_scale = lr_scale_;
  ckpt.rollbacks = rollbacks_;
  ckpt.examples_dispatched = examples_dispatched_;
  ckpt.examples_reclaimed = examples_reclaimed_;
  ckpt.late_reports = late_reports_;
  ckpt.late_examples = late_examples_;
  ckpt.last_good_loss = last_good_loss_;
  ckpt.curve = curve_;

  // Advance the cadence before persisting so the resumed run continues it
  // rather than immediately cutting again.
  if (config_.fault.checkpoint_interval_vseconds > 0.0) {
    const double progress = ledger_.max_clock();
    while (next_full_ckpt_vtime_ <= progress) {
      next_full_ckpt_vtime_ += config_.fault.checkpoint_interval_vseconds;
    }
  }
  ckpt.next_checkpoint_vtime = next_full_ckpt_vtime_;
  ckpt.checkpoints_written = checkpoints_written_ + 1;

  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const auto id = static_cast<msg::WorkerId>(i);
    WorkerCheckpoint wc;
    wc.id = id;
    wc.kind = static_cast<std::uint8_t>(workers_[i].kind);
    wc.stats = ledger_.stats(id);
    wc.adaptive_batch = adaptive_.batch(id);
    wc.adaptive_updates = adaptive_.updates(id);
    for (const auto& [bid, blob] : ckpt_blobs_) {
      if (bid == id) {
        wc.state = blob;
        break;
      }
    }
    ckpt.workers.push_back(std::move(wc));
  }
  ckpt_blobs_.clear();

  std::string error;
  if (ckpt_mgr_->save(ckpt, &error)) {
    ++checkpoints_written_;
    metrics().checkpoints.inc();
  } else {
    // Durability degrades, correctness does not: the run continues and the
    // next barrier tries again.
    HETSGD_LOG_WARN("coordinator", "checkpoint save failed: %s",
                    error.c_str());
  }
}

msg::WorkerId Coordinator::join_worker(
    msg::Actor& actor, gpusim::DeviceKind kind,
    const AdaptiveController::WorkerLimits& limits) {
  msg::WorkerId id = -1;
  {
    MutexLock lock(mu_);
    if (shutting_down_) return -1;
    id = static_cast<msg::WorkerId>(workers_.size());
    WorkerRuntime w;
    w.actor = &actor;
    w.kind = kind;
    w.limits = limits;
    w.waiting = true;
    workers_.push_back(w);

    // Seed the newcomer's batch from the cost model so its first dispatch
    // is cost-matched to its peers, and credit it with the minimum peer
    // update count so Algorithm 2 treats it as a peer rather than an
    // all-time straggler.
    const Index seeded = seed_batch_from_cost_model(workers_.back(), limits);
    std::uint64_t baseline = 0;
    bool have_baseline = false;
    for (std::size_t i = 0; i + 1 < workers_.size(); ++i) {
      const WorkerRuntime& peer = workers_[i];
      if (peer.failed || peer.quarantined || peer.retired) continue;
      const auto pid = static_cast<msg::WorkerId>(i);
      const std::uint64_t u = adaptive_.updates(pid);
      if (!have_baseline || u < baseline) {
        baseline = u;
        have_baseline = true;
      }
    }
    AdaptiveController::WorkerLimits seeded_limits = limits;
    seeded_limits.initial = seeded;
    ledger_.register_worker(id, actor.name(), kind, seeded);
    adaptive_.register_worker(id, seeded_limits, baseline);
    if (monitor_ != nullptr) monitor_->add_worker();
    ++joins_;
    ledger_.record_fault({ledger_.max_clock(), id, FaultKind::kWorkerJoin,
                          0, "worker joined (batch seeded from cost model)"});
  }
  // Nudge the scheduling loop on its own thread; if the loop already
  // exited the newcomer simply never receives work.
  send({msg::kCoordinator, msg::WorkerJoin{id}});
  return id;
}

bool Coordinator::retire_worker(msg::WorkerId id) {
  {
    MutexLock lock(mu_);
    if (shutting_down_) return false;
    if (id < 0 || static_cast<std::size_t>(id) >= workers_.size()) {
      return false;
    }
    if (workers_[static_cast<std::size_t>(id)].retired) return false;
  }
  // The actual retirement runs on the coordinator loop, serialized with
  // scheduling decisions.
  return send({msg::kCoordinator, msg::WorkerRetire{id}});
}

void Coordinator::on_worker_join(msg::WorkerId id) {
  HETSGD_LOG_INFO("coordinator", "worker %d joined the run", id);
  try_dispatch_all();
}

void Coordinator::on_worker_retire(msg::WorkerId id) {
  if (id < 0 || static_cast<std::size_t>(id) >= workers_.size()) return;
  WorkerRuntime& w = workers_[static_cast<std::size_t>(id)];
  if (w.retired || shutting_down_) return;
  const double vtime = ledger_.max_clock();
  w.retired = true;
  ++retires_;
  // Its in-flight batch (if any) goes back to the pool for the survivors;
  // the ledger invariant dispatched == reported + reclaimed is preserved,
  // and a report it sends for the reclaimed range folds in as late.
  reclaim_inflight(id, vtime, "worker retired");
  w.busy = false;
  w.waiting = false;
  adaptive_.retire_worker(id);
  ledger_.record_fault({vtime, id, FaultKind::kWorkerRetire, 0,
                        "worker retired from membership"});
  HETSGD_LOG_INFO("coordinator", "worker %d retired from the run", id);
  if (!w.failed && !w.actor->send({msg::kCoordinator, msg::Shutdown{}})) {
    w.failed = true;  // mailbox already closed; nothing to wind down
  }
  // It will not answer a pending StateRequest anymore.
  drop_ckpt_peer(id);
  maybe_complete_checkpoint();
  try_dispatch_all();
}

tensor::Index Coordinator::seed_batch_from_cost_model(
    const WorkerRuntime& w,
    const AdaptiveController::WorkerLimits& limits) const {
  // Mean estimated batch cost over the active peers.
  double total_cost = 0.0;
  int peers = 0;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const WorkerRuntime& peer = workers_[i];
    if (&peer == &w) continue;
    if (peer.failed || peer.quarantined || peer.retired || peer.finished) {
      continue;
    }
    const auto pid = static_cast<msg::WorkerId>(i);
    total_cost += estimate_cost(peer, ledger_.current_batch(pid));
    ++peers;
  }
  const Index quantum = std::max<Index>(1, limits.quantum);
  if (peers == 0) return limits.initial;
  const double target = total_cost / peers;

  // estimate_cost is monotone in the batch size: binary-search the
  // smallest quantum multiple whose cost reaches the target, then take the
  // nearer of it and its predecessor.
  Index klo = std::max<Index>(1, (limits.min + quantum - 1) / quantum);
  Index khi = std::max<Index>(klo, limits.max / quantum);
  while (klo < khi) {
    const Index kmid = klo + (khi - klo) / 2;
    if (estimate_cost(w, kmid * quantum) < target) {
      klo = kmid + 1;
    } else {
      khi = kmid;
    }
  }
  Index best = klo * quantum;
  if (klo > 1) {
    const Index below = (klo - 1) * quantum;
    if (std::abs(estimate_cost(w, below) - target) <
        std::abs(estimate_cost(w, best) - target)) {
      best = below;
    }
  }
  return std::clamp(best, limits.min, limits.max);
}

bool Coordinator::any_busy() const {
  for (const auto& w : workers_) {
    if (w.busy) return true;
  }
  return false;
}

bool Coordinator::all_finished() const {
  for (const auto& w : workers_) {
    if (w.failed || w.quarantined || w.finished || w.retired) continue;
    // A worker whose dispatch was reclaimed and has not reported since is
    // suspended: it holds no work and must not block shutdown (it may be
    // dead). If it does report later, the report folds in as late.
    if (w.fault_count > 0 && !w.busy && !w.waiting) continue;
    return false;
  }
  return true;
}

}  // namespace hetsgd::core
