#include "core/coordinator.hpp"

#include <algorithm>
#include <limits>

#include "common/logging.hpp"
#include "common/macros.hpp"
#include "core/cost_model.hpp"
#include "nn/mlp.hpp"

namespace hetsgd::core {

using tensor::Index;

Coordinator::Coordinator(data::Dataset& dataset, nn::Model& model,
                         const TrainingConfig& config,
                         tensor::Index eval_sample)
    : msg::Actor("coordinator"), dataset_(dataset), model_(model),
      config_(config),
      adaptive_enabled_(config.algorithm == Algorithm::kAdaptiveHogbatch),
      adaptive_(config.alpha), cpu_perf_(config.cpu.spec),
      gpu_perf_(config.gpu.spec), eval_snapshot_(model),
      rng_(config.seed ^ 0xc0ffee) {
  // Copy out the loss-evaluation sample before any shuffling.
  const Index n = dataset_.example_count();
  Index sample = eval_sample > 0 ? std::min(eval_sample, n) : n;
  std::vector<std::size_t> idx(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  rng_.shuffle(idx);
  eval_x_.resize(sample, dataset_.dim());
  eval_y_.resize(static_cast<std::size_t>(sample));
  for (Index i = 0; i < sample; ++i) {
    const Index src = static_cast<Index>(idx[static_cast<std::size_t>(i)]);
    const tensor::Scalar* from = dataset_.features().row(src);
    std::copy(from, from + dataset_.dim(), eval_x_.row(i));
    eval_y_[static_cast<std::size_t>(i)] =
        dataset_.labels()[static_cast<std::size_t>(src)];
  }
}

void Coordinator::add_worker(msg::Actor& actor, gpusim::DeviceKind kind,
                             const AdaptiveController::WorkerLimits& limits) {
  const auto id = static_cast<msg::WorkerId>(workers_.size());
  WorkerRuntime w;
  w.actor = &actor;
  w.kind = kind;
  w.limits = limits;
  w.waiting = true;  // every worker starts idle and ready for work
  workers_.push_back(w);
  ledger_.register_worker(id, actor.name(), kind, limits.initial);
  adaptive_.register_worker(id, limits);
}

double Coordinator::epochs_completed() const {
  return static_cast<double>(ledger_.total_examples()) /
         static_cast<double>(dataset_.example_count());
}

void Coordinator::on_start() {
  HETSGD_ASSERT(!workers_.empty(), "coordinator needs at least one worker");
  monitor_ = std::make_unique<UtilizationMonitor>(workers_.size());
  if (config_.eval_interval_vseconds > 0.0) {
    next_eval_vtime_ = config_.eval_interval_vseconds;
  }
  evaluate_loss(0.0);
  try_dispatch_all();
}

bool Coordinator::handle(msg::Envelope envelope) {
  if (std::holds_alternative<msg::ScheduleWork>(envelope.message)) {
    on_schedule(std::get<msg::ScheduleWork>(envelope.message));
    return true;
  }
  if (std::holds_alternative<msg::ShutdownAck>(envelope.message)) {
    ++shutdown_acks_;
    return shutdown_acks_ < workers_.size();
  }
  HETSGD_LOG_WARN("coordinator", "unexpected message variant %zu",
                  envelope.message.index());
  return true;
}

void Coordinator::on_schedule(const msg::ScheduleWork& report) {
  const msg::WorkerId id = report.worker;
  HETSGD_ASSERT(id >= 0 && static_cast<std::size_t>(id) < workers_.size(),
                "report from unknown worker");
  WorkerRuntime& w = workers_[static_cast<std::size_t>(id)];

  if (report.examples > 0) {
    // Busy segment: [clock_after - batch_busy, clock_after].
    const double prev_busy = ledger_.stats(id).busy_vtime;
    const double seg_len = report.busy_vtime - prev_busy;
    HETSGD_ASSERT(seg_len >= 0.0, "busy time went backwards");
    monitor_->record(id, report.clock_vtime - seg_len, report.clock_vtime,
                     std::clamp(report.intensity, 0.0, 1.0));
  }
  ledger_.on_report(report);
  w.busy = false;
  w.waiting = true;

  if (adaptive_enabled_) {
    const Index next = adaptive_.on_request(id, report.updates);
    ledger_.stats(id).current_batch = next;
  }

  maybe_eval_checkpoints();
  try_dispatch_all();
}

double Coordinator::effective_window() const {
  return config_.clock_window;  // 0 = strict virtual-time ordering
}

double Coordinator::estimate_cost(const WorkerRuntime& w,
                                  Index batch) const {
  if (w.kind == gpusim::DeviceKind::kCpu) {
    const int lanes = config_.cpu.sim_lanes;
    const Index sub = std::max<Index>(1, batch / lanes);
    const int num_sub = static_cast<int>((batch + sub - 1) / sub);
    return cpu_batch_seconds(cpu_perf_, config_.mlp, sub, num_sub);
  }
  return gpu_batch_seconds(gpu_perf_, config_.mlp, batch,
                           config_.gpu.host_merge_bandwidth);
}

void Coordinator::try_dispatch_all() {
  if (shutting_down_) return;

  // Retire workers that reached the time budget first: a stale
  // not-yet-finished flag would otherwise hold the epoch barrier open for
  // a worker that will never take another batch.
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    WorkerRuntime& w = workers_[i];
    if (!w.finished && !w.busy &&
        ledger_.stats(static_cast<msg::WorkerId>(i)).clock >=
            config_.time_budget_vseconds) {
      w.finished = true;
      w.waiting = false;
    }
  }

  bool progressed = true;
  while (progressed) {
    progressed = false;
    maybe_flip_epoch();
    if (shutting_down_) return;

    // Earliest estimated completion among busy workers: the virtual
    // frontier idle workers may not overtake (plus the window).
    double frontier = std::numeric_limits<double>::max();
    for (const auto& w : workers_) {
      if (w.busy) frontier = std::min(frontier, w.est_completion);
    }
    frontier += effective_window();

    // Candidates: idle, unserved, unfinished — dispatched in clock order.
    std::vector<msg::WorkerId> idle;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      const auto id = static_cast<msg::WorkerId>(i);
      const WorkerRuntime& w = workers_[i];
      if (!w.waiting || w.busy || w.finished) continue;
      idle.push_back(id);
    }
    std::sort(idle.begin(), idle.end(), [&](msg::WorkerId a, msg::WorkerId b) {
      return ledger_.stats(a).clock < ledger_.stats(b).clock;
    });

    for (msg::WorkerId id : idle) {
      WorkerRuntime& w = workers_[static_cast<std::size_t>(id)];
      // Dispatch rule. Algorithm 2 (Adaptive) serves a worker only if a
      // *full* batch remains ("if b^E <= |B| then extract batch"), so
      // small-batch workers sweep the epoch tail — the mechanism that
      // balances the update distribution (Fig. 8). Algorithm 1 (the static
      // variants) hands out whatever remains ("if B != 0 extract next
      // batch"), so the tail goes to the next requester as one partial
      // batch instead of stalling the epoch behind a slow 56-example
      // sweep.
      const Index remaining = dataset_.example_count() - cursor_;
      if (adaptive_enabled_ ? batch_for(id) > remaining : remaining <= 0) {
        continue;
      }
      const double clock = ledger_.stats(id).clock;
      if (clock > frontier) continue;  // would run ahead of the frontier
      dispatch(id);
      // The newly-busy worker tightens the frontier for later candidates.
      frontier = std::min(frontier, w.est_completion + effective_window());
      progressed = true;
    }
  }

  if (!any_busy() && all_finished()) {
    begin_shutdown();
  }
}

tensor::Index Coordinator::batch_for(msg::WorkerId id) const {
  // A configured batch larger than the dataset degrades to one full pass.
  return std::min<Index>(ledger_.stats(id).current_batch,
                         dataset_.example_count());
}

void Coordinator::dispatch(msg::WorkerId id) {
  WorkerRuntime& w = workers_[static_cast<std::size_t>(id)];
  // Partial tails only under Algorithm 1 (see try_dispatch_all).
  const Index batch =
      std::min<Index>(batch_for(id), dataset_.example_count() - cursor_);
  HETSGD_ASSERT(batch > 0, "dispatch with exhausted epoch");

  msg::ExecuteWork work;
  work.batch_begin = static_cast<std::uint64_t>(cursor_);
  work.batch_size = static_cast<std::uint64_t>(batch);
  work.learning_rate = config_.learning_rate;
  work.epoch = epoch_;
  work.not_before = epoch_start_vtime_;
  cursor_ += batch;

  const double start =
      std::max(ledger_.stats(id).clock, epoch_start_vtime_);
  w.est_completion = start + estimate_cost(w, batch);
  w.busy = true;
  w.waiting = false;
  w.actor->send({msg::kCoordinator, work});
}

void Coordinator::maybe_flip_epoch() {
  // The epoch ends when no unfinished worker's full batch fits into the
  // remainder (Algorithm 1: "when there are no more batches and all the
  // workers are done") and every in-flight batch has completed. Any
  // leftover examples smaller than the smallest batch rejoin the pool at
  // the reshuffle.
  const Index remaining = dataset_.example_count() - cursor_;
  bool anyone_active = false;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (workers_[i].finished) continue;
    if (workers_[i].waiting || workers_[i].busy) anyone_active = true;
    // Algorithm 2: the epoch lasts while anyone's full batch fits;
    // Algorithm 1: while any example remains.
    const Index needed =
        adaptive_enabled_ ? batch_for(static_cast<msg::WorkerId>(i))
                          : Index{1};
    if (needed <= remaining) {
      return;  // someone can still take a batch this epoch
    }
  }
  if (any_busy()) return;  // epoch barrier: wait for in-flight batches

  // Epoch boundary. Evaluate the loss (the paper always computes it on the
  // GPU at epoch end — skipped when interval checkpoints are active, since
  // fast workers can flip thousands of tiny epochs), then reshuffle and
  // restart.
  ++epoch_;
  double boundary = ledger_.max_clock();
  if (config_.eval_interval_vseconds <= 0.0) {
    evaluate_loss(boundary);
  }
  if (config_.charge_loss_eval_to_gpu) {
    // Forward pass over the dataset on the GPU: utilization spike of Fig 7.
    const double eval_cost =
        nn::training_flops(config_.mlp, dataset_.example_count()) / 3.0 /
        (gpu_perf_.spec().peak_flops * gpu_perf_.spec().max_efficiency);
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      if (workers_[i].kind == gpusim::DeviceKind::kGpu) {
        monitor_->record(static_cast<msg::WorkerId>(i), boundary,
                         boundary + eval_cost, 1.0);
      }
    }
    boundary += eval_cost;
  }
  epoch_start_vtime_ = boundary;

  if (config_.max_epochs > 0 && epoch_ >= config_.max_epochs) {
    begin_shutdown();
    return;
  }
  if (!anyone_active) {
    // All workers hit the budget; nothing left to schedule.
    begin_shutdown();
    return;
  }
  dataset_.shuffle(rng_);
  cursor_ = 0;
}

void Coordinator::evaluate_loss(double vtime) {
  // Racy snapshot of the shared model (Hogwild semantics); evaluating the
  // snapshot keeps the measurement internally consistent.
  eval_snapshot_ = model_;
  const Index n = eval_x_.rows();
  const Index chunk = 512;
  double total = 0.0;
  for (Index begin = 0; begin < n; begin += chunk) {
    const Index count = std::min(chunk, n - begin);
    auto x = eval_x_.rows_view(begin, count);
    std::span<const std::int32_t> y(eval_y_.data() + begin,
                                    static_cast<std::size_t>(count));
    total += static_cast<double>(
                 nn::compute_loss(eval_snapshot_, x, y, eval_ws_)) *
             static_cast<double>(count);
  }
  const double loss = total / static_cast<double>(n);
  curve_.push_back({vtime, epochs_completed(), loss});
}

void Coordinator::maybe_eval_checkpoints() {
  if (config_.eval_interval_vseconds <= 0.0) return;
  const double progress = ledger_.max_clock();
  while (next_eval_vtime_ <= progress) {
    evaluate_loss(next_eval_vtime_);
    next_eval_vtime_ += config_.eval_interval_vseconds;
  }
}

void Coordinator::begin_shutdown() {
  if (shutting_down_) return;
  shutting_down_ = true;
  for (auto& w : workers_) {
    w.actor->send({msg::kCoordinator, msg::Shutdown{}});
  }
}

bool Coordinator::any_busy() const {
  for (const auto& w : workers_) {
    if (w.busy) return true;
  }
  return false;
}

bool Coordinator::all_finished() const {
  for (const auto& w : workers_) {
    if (!w.finished) return false;
  }
  return true;
}

}  // namespace hetsgd::core
