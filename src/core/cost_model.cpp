#include "core/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/macros.hpp"
#include "nn/mlp.hpp"
#include "tensor/gemm.hpp"

namespace hetsgd::core {

using tensor::Index;

std::uint64_t model_bytes(const nn::MlpConfig& mlp) {
  return mlp.parameter_count() * sizeof(tensor::Scalar);
}

double cpu_batch_seconds(const gpusim::PerfModel& perf,
                         const nn::MlpConfig& mlp, tensor::Index sub_batch,
                         int lanes) {
  HETSGD_ASSERT(sub_batch >= 1 && lanes >= 1, "bad cpu batch parameters");
  const auto& spec = perf.spec();
  const double per_thread_peak =
      spec.peak_flops / static_cast<double>(spec.lanes);
  const double flops = nn::training_flops(mlp, sub_batch);
  const double compute =
      flops / (per_thread_peak * perf.efficiency(static_cast<double>(sub_batch)));
  double update = spec.update_overhead_seconds;
  if (spec.update_bandwidth > 0.0) {
    // Read-modify-write of every parameter.
    update += 2.0 * static_cast<double>(model_bytes(mlp)) /
              spec.update_bandwidth;
  }
  // Lanes beyond the simulated hardware run in additional waves.
  const int waves = (lanes + spec.lanes - 1) / spec.lanes;
  return (compute + update) * static_cast<double>(waves);
}

double cpu_batch_intensity(int lanes, int host_threads,
                           tensor::Index sub_batch,
                           tensor::Index max_sub_batch) {
  HETSGD_ASSERT(host_threads >= lanes, "lanes exceed host threads");
  const double occupancy =
      static_cast<double>(lanes) / static_cast<double>(host_threads);
  // Empirical mild decrease with sub-batch size (Fig. 7: Adaptive's CPU
  // curve sits slightly below the others).
  double penalty = 0.0;
  if (max_sub_batch > 1 && sub_batch > 1) {
    penalty = 0.08 * std::log2(static_cast<double>(sub_batch)) /
              std::log2(static_cast<double>(max_sub_batch));
  }
  return occupancy * (0.93 - penalty);
}

double gpu_batch_seconds(const gpusim::PerfModel& perf,
                         const nn::MlpConfig& mlp, tensor::Index batch,
                         double host_merge_bandwidth) {
  HETSGD_ASSERT(batch >= 1, "bad gpu batch size");
  const auto shapes = mlp.layer_shapes();
  const std::uint64_t mbytes = model_bytes(mlp);
  double t = 0.0;
  // Model upload and gradient download happen as per-layer weight + bias
  // copies, so each pays the link latency separately — on small models the
  // latencies dominate the parameter bytes. (This must track DeviceMlp's
  // actual charging: the coordinator's dispatch deadlines are multiples of
  // this estimate, and a systematic under-estimate reads healthy workers
  // as stragglers.)
  for (const auto& s : shapes) {
    const auto wbytes =
        static_cast<std::uint64_t>(s.out) * s.in * sizeof(tensor::Scalar);
    const auto bbytes = static_cast<std::uint64_t>(s.out) *
                        sizeof(tensor::Scalar);
    t += 2.0 * (perf.transfer_seconds(wbytes) + perf.transfer_seconds(bbytes));
  }
  // Batch (+labels) upload.
  t += perf.transfer_seconds(static_cast<std::uint64_t>(batch) *
                                 mlp.input_dim * sizeof(tensor::Scalar) +
                             static_cast<std::uint64_t>(batch) * 4);
  // Forward + backward GEMMs and element-wise kernels per layer.
  for (const auto& s : shapes) {
    t += perf.gemm_seconds(batch, s.out, s.in);      // forward
    t += perf.gemm_seconds(s.out, s.in, batch);      // dW
    t += perf.gemm_seconds(batch, s.in, s.out);      // delta propagation
    t += 3.0 * perf.elementwise_seconds(
                   static_cast<std::uint64_t>(batch) * s.out);
  }
  // Loss kernel + the loss scalar returning to the host + host-side merge
  // into the global model. (The gradient download is charged per layer
  // above, together with the model upload.)
  t += perf.elementwise_seconds(static_cast<std::uint64_t>(batch) *
                                mlp.num_classes * 6);
  t += perf.transfer_seconds(sizeof(tensor::Scalar));
  if (host_merge_bandwidth > 0.0) {
    t += 2.0 * static_cast<double>(mbytes) / host_merge_bandwidth;
  }
  return t;
}

double cpu_epoch_seconds(const gpusim::PerfModel& perf,
                         const nn::MlpConfig& mlp, tensor::Index examples,
                         tensor::Index sub_batch, int lanes) {
  const double batch_cost = cpu_batch_seconds(perf, mlp, sub_batch, lanes);
  const Index per_batch = sub_batch * lanes;
  const double batches = std::ceil(static_cast<double>(examples) /
                                   static_cast<double>(per_batch));
  return batches * batch_cost;
}

double gpu_epoch_seconds(const gpusim::PerfModel& perf,
                         const nn::MlpConfig& mlp, tensor::Index examples,
                         tensor::Index batch, double host_merge_bandwidth) {
  const double batch_cost =
      gpu_batch_seconds(perf, mlp, batch, host_merge_bandwidth);
  const double batches = std::ceil(static_cast<double>(examples) /
                                   static_cast<double>(batch));
  return batches * batch_cost;
}

}  // namespace hetsgd::core
