#include "core/checkpoint.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "common/logging.hpp"
#include "common/macros.hpp"
#include "nn/serialize.hpp"

namespace hetsgd::core {

namespace {

namespace fs = std::filesystem;

constexpr const char* kFilePrefix = "ckpt-";
constexpr const char* kFileSuffix = ".hetsgd";

// Mixes one 64-bit value into a running hash (splitmix64 finalizer).
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  std::uint64_t z = h;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix_double(std::uint64_t h, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return mix(h, bits);
}

// Parses the sequence number out of a "ckpt-<seq>.hetsgd" filename;
// false for anything else in the directory (MANIFEST, temp files, ...).
bool parse_checkpoint_name(const std::string& name, std::uint64_t* seq) {
  const std::string prefix = kFilePrefix;
  const std::string suffix = kFileSuffix;
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  char* end = nullptr;
  const unsigned long long v = std::strtoull(digits.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || end == digits.c_str()) return false;
  *seq = static_cast<std::uint64_t>(v);
  return true;
}

std::string checkpoint_path(const std::string& dir, std::uint64_t seq) {
  return dir + "/" + kFilePrefix + std::to_string(seq) + kFileSuffix;
}

// Sequence numbers of the checkpoint files in `dir`, newest first.
std::vector<std::uint64_t> list_checkpoints(const std::string& dir) {
  std::vector<std::uint64_t> seqs;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    std::uint64_t seq = 0;
    if (parse_checkpoint_name(entry.path().filename().string(), &seq)) {
      seqs.push_back(seq);
    }
  }
  std::sort(seqs.rbegin(), seqs.rend());
  return seqs;
}

void write_rng_state(ByteWriter& w, const RngState& st) {
  for (std::uint64_t s : st.s) w.write_u64(s);
  w.write_f64(st.cached_normal);
  w.write_u8(st.has_cached_normal ? 1 : 0);
}

bool read_rng_state(ByteReader& r, RngState* st) {
  for (std::uint64_t& s : st->s) {
    if (!r.read_u64(&s)) return false;
  }
  std::uint8_t cached = 0;
  if (!r.read_f64(&st->cached_normal) || !r.read_u8(&cached)) return false;
  st->has_cached_normal = cached != 0;
  return true;
}

}  // namespace

std::uint64_t config_fingerprint(const TrainingConfig& config,
                                 const data::Dataset& dataset) {
  std::uint64_t h = 0x48455453ULL;  // "HETS"
  h = mix(h, static_cast<std::uint64_t>(config.algorithm));
  h = mix(h, config.seed);
  h = mix(h, static_cast<std::uint64_t>(config.mlp.input_dim));
  h = mix(h, static_cast<std::uint64_t>(config.mlp.num_classes));
  h = mix(h, static_cast<std::uint64_t>(config.mlp.hidden_layers));
  h = mix(h, static_cast<std::uint64_t>(config.mlp.hidden_units));
  h = mix(h, static_cast<std::uint64_t>(config.mlp.hidden_activation));
  h = mix(h, static_cast<std::uint64_t>(config.mlp.init));
  h = mix_double(h, config.learning_rate);
  h = mix(h, config.scale_lr_with_batch ? 1 : 0);
  h = mix_double(h, config.max_effective_lr);
  h = mix(h, static_cast<std::uint64_t>(config.optimizer.kind));
  h = mix_double(h, config.optimizer.momentum);
  h = mix_double(h, config.optimizer.beta1);
  h = mix_double(h, config.optimizer.beta2);
  h = mix_double(h, config.optimizer.epsilon);
  h = mix_double(h, config.optimizer.weight_decay);
  h = mix(h, static_cast<std::uint64_t>(config.lr_schedule.kind));
  h = mix_double(h, config.lr_schedule.decay);
  h = mix_double(h, config.lr_schedule.step_every);
  h = mix_double(h, config.eval_interval_vseconds);
  h = mix(h, config.charge_loss_eval_to_gpu ? 1 : 0);
  h = mix_double(h, config.alpha);
  h = mix_double(h, config.beta);
  h = mix_double(h, config.clock_window);
  h = mix(h, static_cast<std::uint64_t>(config.cpu.sim_lanes));
  h = mix(h, static_cast<std::uint64_t>(config.cpu.examples_per_thread));
  h = mix(h, static_cast<std::uint64_t>(config.cpu.min_examples_per_thread));
  h = mix(h, static_cast<std::uint64_t>(config.cpu.max_examples_per_thread));
  h = mix(h, static_cast<std::uint64_t>(config.gpu.batch));
  h = mix(h, static_cast<std::uint64_t>(config.gpu.min_batch));
  h = mix(h, static_cast<std::uint64_t>(config.gpu.max_batch));
  h = mix_double(h, config.gpu.host_merge_bandwidth);
  h = mix(h, static_cast<std::uint64_t>(config.gpu.worker_count));
  // Execution backend: trajectories are backend-independent by design, but
  // resuming under a different engine than the one that cut the checkpoint
  // should be an explicit choice, not a silent one.
  for (const char c : config.backend) {
    h = mix(h, static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
  h = mix(h, static_cast<std::uint64_t>(dataset.example_count()));
  h = mix(h, static_cast<std::uint64_t>(dataset.dim()));
  h = mix(h, static_cast<std::uint64_t>(dataset.num_classes()));
  // Dataset content, not just shape: a same-shaped but different dataset
  // (another synthetic seed, a re-downloaded file) must refuse to resume.
  // A strided sample of feature values + labels keeps this O(1)-ish while
  // still catching any global regeneration of the data.
  const tensor::Index n = dataset.example_count();
  const tensor::Index d = dataset.dim();
  const tensor::Index stride = std::max<tensor::Index>(1, n / 257);
  for (tensor::Index r = 0; r < n; r += stride) {
    const tensor::Scalar* row = dataset.features().row(r);
    h = mix_double(h, static_cast<double>(row[0]));
    h = mix_double(h, static_cast<double>(row[d - 1]));
    h = mix(h, static_cast<std::uint64_t>(
                   dataset.labels()[static_cast<std::size_t>(r)]));
  }
  return h;
}

void write_training_checkpoint(ByteWriter& w, const TrainingCheckpoint& c) {
  w.write_u64(c.fingerprint);
  w.write_u64(c.seed);
  w.write_u64(c.sequence);
  write_rng_state(w, c.rng);
  w.write_u64(c.epoch);
  w.write_f64(c.epoch_start_vtime);
  w.write_f64(c.next_eval_vtime);
  w.write_f64(c.next_checkpoint_vtime);
  w.write_f64(c.lr_scale);
  w.write_u64(c.rollbacks);
  w.write_u64(c.examples_dispatched);
  w.write_u64(c.examples_reclaimed);
  w.write_u64(c.late_reports);
  w.write_u64(c.late_examples);
  w.write_u64(c.checkpoints_written);
  w.write_f64(c.last_good_loss);
  nn::write_model(w, c.model);

  w.write_u64(static_cast<std::uint64_t>(c.curve.size()));
  for (const LossPoint& p : c.curve) {
    w.write_f64(p.vtime);
    w.write_f64(p.epochs);
    w.write_f64(p.loss);
  }

  w.write_u32(static_cast<std::uint32_t>(c.workers.size()));
  for (const WorkerCheckpoint& wc : c.workers) {
    w.write_u32(static_cast<std::uint32_t>(wc.id));
    w.write_u8(wc.kind);
    w.write_string(wc.stats.name);
    w.write_u64(wc.stats.updates);
    w.write_u64(wc.stats.batches);
    w.write_u64(wc.stats.examples);
    w.write_f64(wc.stats.busy_vtime);
    w.write_f64(wc.stats.clock);
    w.write_i64(wc.stats.current_batch);
    w.write_f64(wc.stats.staleness_sum);
    w.write_f64(wc.stats.max_staleness);
    w.write_i64(wc.adaptive_batch);
    w.write_u64(wc.adaptive_updates);
    w.write_u64(static_cast<std::uint64_t>(wc.state.size()));
    w.write_bytes(wc.state.data(), wc.state.size());
  }
}

bool read_training_checkpoint(ByteReader& r, TrainingCheckpoint* c,
                              std::string* error) {
  auto fail = [&](const char* what) {
    if (error != nullptr) *error = what;
    return false;
  };
  if (!r.read_u64(&c->fingerprint) || !r.read_u64(&c->seed) ||
      !r.read_u64(&c->sequence) || !read_rng_state(r, &c->rng) ||
      !r.read_u64(&c->epoch) || !r.read_f64(&c->epoch_start_vtime) ||
      !r.read_f64(&c->next_eval_vtime) ||
      !r.read_f64(&c->next_checkpoint_vtime) || !r.read_f64(&c->lr_scale) ||
      !r.read_u64(&c->rollbacks) || !r.read_u64(&c->examples_dispatched) ||
      !r.read_u64(&c->examples_reclaimed) || !r.read_u64(&c->late_reports) ||
      !r.read_u64(&c->late_examples) ||
      !r.read_u64(&c->checkpoints_written) ||
      !r.read_f64(&c->last_good_loss)) {
    return fail("checkpoint truncated (run header)");
  }
  std::optional<nn::Model> model = nn::read_model(r, error);
  if (!model.has_value()) return false;
  c->model = std::move(*model);

  std::uint64_t curve_size = 0;
  if (!r.read_u64(&curve_size)) return fail("checkpoint truncated (curve)");
  // 24 bytes per point: a corrupt count cannot exceed the payload.
  if (curve_size > r.remaining() / 24) {
    return fail("checkpoint curve count is implausible");
  }
  c->curve.resize(static_cast<std::size_t>(curve_size));
  for (LossPoint& p : c->curve) {
    if (!r.read_f64(&p.vtime) || !r.read_f64(&p.epochs) ||
        !r.read_f64(&p.loss)) {
      return fail("checkpoint truncated (curve)");
    }
  }

  std::uint32_t worker_count = 0;
  if (!r.read_u32(&worker_count) || worker_count > 4096) {
    return fail("checkpoint worker count is implausible");
  }
  c->workers.resize(worker_count);
  for (WorkerCheckpoint& wc : c->workers) {
    std::uint32_t id = 0;
    if (!r.read_u32(&id) || !r.read_u8(&wc.kind) ||
        !r.read_string(&wc.stats.name) || !r.read_u64(&wc.stats.updates) ||
        !r.read_u64(&wc.stats.batches) || !r.read_u64(&wc.stats.examples) ||
        !r.read_f64(&wc.stats.busy_vtime) || !r.read_f64(&wc.stats.clock) ||
        !r.read_i64(&wc.stats.current_batch) ||
        !r.read_f64(&wc.stats.staleness_sum) ||
        !r.read_f64(&wc.stats.max_staleness) ||
        !r.read_i64(&wc.adaptive_batch) || !r.read_u64(&wc.adaptive_updates)) {
      return fail("checkpoint truncated (worker)");
    }
    wc.id = static_cast<msg::WorkerId>(id);
    wc.stats.id = wc.id;
    std::uint64_t blob = 0;
    if (!r.read_u64(&blob) || blob > r.remaining()) {
      return fail("checkpoint truncated (worker state)");
    }
    wc.state.resize(static_cast<std::size_t>(blob));
    if (blob > 0 && !r.read_bytes(wc.state.data(), wc.state.size())) {
      return fail("checkpoint truncated (worker state)");
    }
  }
  return true;
}

CheckpointManager::CheckpointManager(std::string dir, std::int64_t retain)
    : dir_(std::move(dir)), retain_(std::max<std::int64_t>(retain, 1)) {
  HETSGD_ASSERT(!dir_.empty(), "checkpoint directory must be non-empty");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  const std::vector<std::uint64_t> seqs = list_checkpoints(dir_);
  if (!seqs.empty()) next_seq_ = seqs.front() + 1;
}

bool CheckpointManager::save(TrainingCheckpoint& ckpt, std::string* error) {
  ckpt.sequence = next_seq_;
  ByteWriter w;
  write_training_checkpoint(w, ckpt);
  const std::string path = checkpoint_path(dir_, next_seq_);
  if (!nn::write_envelope_file(path, w.data(), error)) return false;
  retained_.emplace_back(
      next_seq_, "epoch " + std::to_string(ckpt.epoch) + " vtime " +
                     std::to_string(ckpt.epoch_start_vtime));
  ++next_seq_;
  ++saves_;

  // Retention: prune oldest files beyond the limit. Pruning failures are
  // ignored (stale files only cost disk; the manifest stays accurate).
  const std::vector<std::uint64_t> seqs = list_checkpoints(dir_);
  for (std::size_t i = static_cast<std::size_t>(retain_); i < seqs.size();
       ++i) {
    std::error_code ec;
    fs::remove(checkpoint_path(dir_, seqs[i]), ec);
  }
  while (retained_.size() > static_cast<std::size_t>(retain_)) {
    retained_.erase(retained_.begin());
  }
  write_manifest();
  return true;
}

void CheckpointManager::write_manifest() {
  // Metadata only: resume scans the directory and validates CRCs rather
  // than trusting this file, so a stale manifest can never corrupt a run.
  std::string text = "# hetsgd checkpoint manifest\n";
  text += "# columns: seq file summary\n";
  for (const auto& [seq, summary] : retained_) {
    text += std::to_string(seq) + " " + kFilePrefix + std::to_string(seq) +
            kFileSuffix + " " + summary + "\n";
  }
  std::string error;
  if (!atomic_write_file(dir_ + "/MANIFEST", text.data(), text.size(),
                         &error)) {
    HETSGD_LOG_WARN("checkpoint", "manifest write failed: %s", error.c_str());
  }
}

std::optional<TrainingCheckpoint> CheckpointManager::load_latest(
    const std::string& dir, std::string* error) {
  const std::vector<std::uint64_t> seqs = list_checkpoints(dir);
  if (seqs.empty()) {
    if (error != nullptr) *error = "no checkpoints in " + dir;
    return std::nullopt;
  }
  std::string reasons;
  for (std::uint64_t seq : seqs) {
    const std::string path = checkpoint_path(dir, seq);
    std::string why;
    std::vector<std::uint8_t> payload;
    if (nn::read_envelope_file(path, &payload, &why)) {
      ByteReader r(payload);
      TrainingCheckpoint ckpt;
      if (read_training_checkpoint(r, &ckpt, &why)) {
        return ckpt;
      }
    }
    // Fall back to the previous checkpoint: the newest file may be the
    // one the crash tore.
    HETSGD_LOG_WARN("checkpoint", "rejecting %s: %s", path.c_str(),
                    why.c_str());
    if (!reasons.empty()) reasons += "; ";
    reasons += path + ": " + why;
  }
  if (error != nullptr) *error = "no usable checkpoint (" + reasons + ")";
  return std::nullopt;
}

}  // namespace hetsgd::core
