// Synchronous mini-batch SGD reference — the TensorFlow stand-in.
//
// The paper shows TensorFlow's convergence "mirrors almost identically"
// its GPU-only Hogbatch (Fig. 5/6); this driver reproduces that role: a
// single synchronous optimizer loop on the simulated GPU, with the model
// resident in device memory across steps (TF's execution model), so only
// batches cross the PCIe link. The one divergence the paper reports —
// TensorFlow being much slower on delicious's 983-way multi-label output —
// is modeled as a per-step input-pipeline overhead that grows with the
// class count (enabled above `tf_overhead_class_threshold`).
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "core/coordinator.hpp"  // LossPoint
#include "data/dataset.hpp"

namespace hetsgd::core {

struct ReferenceResult {
  std::vector<LossPoint> curve;
  double final_vtime = 0.0;
  double epochs = 0.0;
  std::uint64_t updates = 0;
  double mean_utilization = 0.0;
};

struct ReferenceOptions {
  // Per-step overhead in seconds per output class, charged when the class
  // count exceeds the threshold (models TF 1.13's multi-label pipeline).
  double tf_class_overhead_seconds = 12e-6;
  std::int32_t tf_overhead_class_threshold = 100;
  // Loss-evaluation cadence in virtual seconds (0 = every epoch).
  double eval_interval_vseconds = 0.0;
  tensor::Index eval_sample = 2048;
};

// Runs until config.time_budget_vseconds (and/or config.max_epochs).
// `dataset` is shuffled in place between epochs.
ReferenceResult run_minibatch_reference(data::Dataset& dataset,
                                        const TrainingConfig& config,
                                        const ReferenceOptions& options);

}  // namespace hetsgd::core
