// Analytic virtual-time costs of one training batch on each worker type.
//
// Shared between the workers (which charge these costs to their clocks)
// and the calibration benchmark (bench/table1_hardware), which uses the
// same formulas to print modeled epoch times and verify the CPU:GPU speed
// ratio lands in the paper's measured 236-317x band.
#pragma once

#include <cstdint>

#include "backend/device_model.hpp"
#include "nn/model.hpp"

namespace hetsgd::core {

// Bytes of one full model copy (all weights + biases).
std::uint64_t model_bytes(const nn::MlpConfig& mlp);

// Virtual seconds for one CPU-worker batch: `lanes` Hogwild threads each
// process a `sub_batch`-example sub-batch (forward+backward at per-thread
// throughput) and apply one full-model update at the contended
// update_bandwidth. All lanes run concurrently, so the batch cost is one
// lane's cost.
double cpu_batch_seconds(const gpusim::PerfModel& perf,
                         const nn::MlpConfig& mlp, tensor::Index sub_batch,
                         int lanes);

// CPU utilization proxy during a batch: fraction of the host's hardware
// threads kept busy. `host_threads` is the machine total (the paper uses
// 56 of 64, giving the ~80-87% plateau of Fig. 7); larger sub-batches show
// a mild decrease, matching the Adaptive curve.
double cpu_batch_intensity(int lanes, int host_threads,
                           tensor::Index sub_batch,
                           tensor::Index max_sub_batch);

// Virtual seconds for one GPU-worker batch processed through the simulated
// device: model upload (deep copy), batch upload, forward/backward kernel
// sequence, gradient download, and the host-side merge into the global
// model at `host_merge_bandwidth`. This mirrors DeviceMlp's per-kernel
// charges analytically (used for calibration printouts; the worker itself
// charges the exact per-kernel costs).
double gpu_batch_seconds(const gpusim::PerfModel& perf,
                         const nn::MlpConfig& mlp, tensor::Index batch,
                         double host_merge_bandwidth);

// Modeled seconds for one full epoch of `examples` examples.
double cpu_epoch_seconds(const gpusim::PerfModel& perf,
                         const nn::MlpConfig& mlp, tensor::Index examples,
                         tensor::Index sub_batch, int lanes);
double gpu_epoch_seconds(const gpusim::PerfModel& perf,
                         const nn::MlpConfig& mlp, tensor::Index examples,
                         tensor::Index batch, double host_merge_bandwidth);

}  // namespace hetsgd::core
