#include "core/utilization.hpp"

#include <algorithm>
#include <cmath>

#include "common/macros.hpp"

namespace hetsgd::core {

UtilizationMonitor::UtilizationMonitor(std::size_t workers)
    : per_worker_(workers) {}

void UtilizationMonitor::add_worker() { per_worker_.emplace_back(); }

void UtilizationMonitor::record(msg::WorkerId worker, double t0, double t1,
                                double intensity) {
  HETSGD_ASSERT(worker >= 0 &&
                    static_cast<std::size_t>(worker) < per_worker_.size(),
                "unknown worker id");
  HETSGD_ASSERT(t1 >= t0, "segment ends before it starts");
  HETSGD_ASSERT(intensity >= 0.0 && intensity <= 1.0,
                "intensity out of [0,1]");
  per_worker_[static_cast<std::size_t>(worker)].push_back({t0, t1, intensity});
}

const std::vector<BusySegment>& UtilizationMonitor::segments(
    msg::WorkerId worker) const {
  HETSGD_ASSERT(worker >= 0 &&
                    static_cast<std::size_t>(worker) < per_worker_.size(),
                "unknown worker id");
  return per_worker_[static_cast<std::size_t>(worker)];
}

std::vector<double> UtilizationMonitor::bucket_series(msg::WorkerId worker,
                                                      double dt,
                                                      double horizon) const {
  HETSGD_ASSERT(dt > 0.0 && horizon > 0.0, "bad bucket parameters");
  const std::size_t buckets =
      static_cast<std::size_t>(std::ceil(horizon / dt));
  std::vector<double> busy(buckets, 0.0);
  for (const auto& seg : segments(worker)) {
    double a = std::max(seg.t0, 0.0);
    const double b = std::min(seg.t1, horizon);
    while (a < b) {
      const std::size_t bucket = std::min(
          static_cast<std::size_t>(a / dt), buckets - 1);
      const double bucket_end = static_cast<double>(bucket + 1) * dt;
      const double slice = std::min(b, bucket_end) - a;
      if (slice <= 0.0) {
        // Floating-point tail: `a` reached the clamped last bucket's end
        // (buckets*dt can round below horizon). Attribute the remainder to
        // the final bucket and stop.
        busy[buckets - 1] += (b - a) * seg.intensity;
        break;
      }
      busy[bucket] += slice * seg.intensity;
      a += slice;
    }
  }
  for (auto& v : busy) {
    v = std::min(v / dt, 1.0);
  }
  return busy;
}

double UtilizationMonitor::mean_utilization(msg::WorkerId worker,
                                            double horizon) const {
  HETSGD_ASSERT(horizon > 0.0, "bad horizon");
  double area = 0.0;
  for (const auto& seg : segments(worker)) {
    const double a = std::max(seg.t0, 0.0);
    const double b = std::min(seg.t1, horizon);
    if (b > a) area += (b - a) * seg.intensity;
  }
  return std::min(area / horizon, 1.0);
}

}  // namespace hetsgd::core
