#include "core/gpu_worker.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/macros.hpp"
#include "core/cost_model.hpp"

namespace hetsgd::core {

using tensor::Index;

GpuWorker::GpuWorker(msg::WorkerId id, const TrainingConfig& config,
                     const data::Dataset& dataset, nn::Model& global_model,
                     msg::Actor& coordinator, int ordinal)
    : msg::Actor("gpu-worker-" + std::to_string(ordinal)), id_(id),
      config_(config), dataset_(dataset),
      model_(global_model), coordinator_(coordinator),
      device_(config.gpu.spec),
      host_gradient_(nn::make_zero_gradient(global_model)),
      optimizer_(config.optimizer, global_model),
      upload_snapshot_(global_model) {
  device_mlp_ = std::make_unique<nn::DeviceMlp>(device_, config.mlp,
                                                config.gpu.max_batch);
}

bool GpuWorker::handle(msg::Envelope envelope) {
  if (std::holds_alternative<msg::ExecuteWork>(envelope.message)) {
    execute(std::get<msg::ExecuteWork>(envelope.message));
    return true;
  }
  if (std::holds_alternative<msg::Shutdown>(envelope.message)) {
    coordinator_.send({id_, msg::ShutdownAck{id_}});
    return false;
  }
  HETSGD_LOG_WARN("gpu-worker", "unexpected message variant %zu",
                  envelope.message.index());
  return true;
}

void GpuWorker::execute(const msg::ExecuteWork& work) {
  const Index begin = static_cast<Index>(work.batch_begin);
  const Index size = static_cast<Index>(work.batch_size);
  HETSGD_ASSERT(size > 0, "empty batch assigned");
  HETSGD_ASSERT(begin + size <= dataset_.example_count(),
                "batch out of dataset range");
  HETSGD_ASSERT(size <= config_.gpu.max_batch, "batch exceeds device buffers");

  clock_.advance_to(work.not_before);
  const double issue = clock_.now();

  // Deep-copy the current global model into the device replica. The reads
  // race with concurrent CPU-lane updates — Hogwild semantics extend
  // across the PCIe boundary. The host-side snapshot is kept to measure
  // how stale the replica became by merge time.
  upload_snapshot_ = model_;
  device_mlp_->upload_model(upload_snapshot_, issue);

  auto x = dataset_.batch_features(begin, size);
  auto y = dataset_.batch_labels(begin, size);
  double done = issue;
  device_mlp_->compute_gradient(x, y, issue, &done);
  done = device_mlp_->download_gradient(host_gradient_, issue);

  // Merge into the shared global model on the host (gradient-push
  // integration, applied asynchronously at the worker).
  const double staleness =
      static_cast<double>(model_.max_abs_diff(upload_snapshot_));
  const double lr =
      config_.effective_lr(size) *
      nn::lr_multiplier(config_.lr_schedule,
                        static_cast<double>(work.epoch));
  optimizer_.step(model_, host_gradient_, static_cast<tensor::Scalar>(lr));
  if (config_.gpu.host_merge_bandwidth > 0.0) {
    done += 2.0 * static_cast<double>(model_bytes(config_.mlp)) /
            config_.gpu.host_merge_bandwidth;
  }

  clock_.advance_to(done);
  busy_vtime_ += clock_.now() - issue;
  ++updates_;

  msg::ScheduleWork req;
  req.worker = id_;
  req.updates = updates_;
  req.busy_vtime = busy_vtime_;
  req.clock_vtime = clock_.now();
  req.intensity = device_.perf().utilization(static_cast<double>(size));
  req.examples = static_cast<std::uint64_t>(size);
  req.staleness = staleness;
  coordinator_.send({id_, req});
}

}  // namespace hetsgd::core
