#include "core/gpu_worker.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <limits>
#include <thread>

#include "common/atomic_file.hpp"
#include "common/logging.hpp"
#include "common/macros.hpp"
#include "core/cost_model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hetsgd::core {

using tensor::Index;

GpuWorker::GpuWorker(msg::WorkerId id, const TrainingConfig& config,
                     const data::Dataset& dataset, nn::Model& global_model,
                     msg::Actor& coordinator, int ordinal)
    : msg::Actor("gpu-worker-" + std::to_string(ordinal)), id_(id),
      config_(config), dataset_(dataset),
      model_(global_model), coordinator_(coordinator),
      device_(config.gpu.spec),
      host_gradient_(nn::make_zero_gradient(global_model)),
      optimizer_(config.optimizer, global_model),
      upload_snapshot_(global_model) {
  device_mlp_ = std::make_unique<nn::DeviceMlp>(device_, config.mlp,
                                                config.gpu.max_batch);
}

bool GpuWorker::handle(msg::Envelope envelope) {
  if (std::holds_alternative<msg::ExecuteWork>(envelope.message)) {
    return execute(std::get<msg::ExecuteWork>(envelope.message));
  }
  if (std::holds_alternative<msg::StateRequest>(envelope.message)) {
    msg::StateReport report;
    report.worker = id_;
    report.state = serialize_state();
    if (!coordinator_.send({id_, std::move(report)})) {
      HETSGD_LOG_WARN("gpu-worker", "state report dropped: mailbox closed");
    }
    return true;
  }
  if (std::holds_alternative<msg::Shutdown>(envelope.message)) {
    if (!coordinator_.send({id_, msg::ShutdownAck{id_}})) {
      HETSGD_LOG_WARN("gpu-worker", "shutdown ack dropped: mailbox closed");
    }
    return false;
  }
  HETSGD_LOG_WARN("gpu-worker", "unexpected message variant %zu",
                  envelope.message.index());
  return true;
}

bool GpuWorker::on_handle_exception(const std::string& what) {
  // Retries are exhausted (or an unexpected exception escaped): report the
  // fault so the coordinator reclaims our in-flight batch.
  HETSGD_LOG_WARN("gpu-worker", "fault escalated: %s", what.c_str());
  msg::WorkerFault fault;
  fault.worker = id_;
  fault.vtime = clock_.now();
  fault.detail = what;
  if (!coordinator_.send({id_, std::move(fault)})) {
    HETSGD_LOG_WARN("gpu-worker", "fault report dropped: mailbox closed");
  }
  return false;
}

bool GpuWorker::execute(const msg::ExecuteWork& work) {
  const Index begin = static_cast<Index>(work.batch_begin);
  const Index size = static_cast<Index>(work.batch_size);
  HETSGD_ASSERT(size > 0, "empty batch assigned");
  HETSGD_ASSERT(begin + size <= dataset_.example_count(),
                "batch out of dataset range");
  HETSGD_ASSERT(size <= config_.gpu.max_batch, "batch exceeds device buffers");

  const std::uint64_t flow = obs::batch_flow_id(id_, work.sequence);
  HETSGD_TRACE_SPAN(exec_span, "gpu-worker", "execute", clock_.now(), flow);
  obs::trace_flow_step("batch", flow, clock_.now());

  clock_.advance_to(work.not_before);
  FaultPlan::StallState stall;
  if (fault_plan_ != nullptr) {
    if (fault_plan_->crash_due(id_, clock_.now())) {
      // Simulated power loss: take the whole process down with no
      // destructors, no flushes, no goodbye — the crash-consistency of the
      // checkpoint files is exactly what this exercises.
      HETSGD_LOG_WARN("gpu-worker", "injected crash (SIGKILL) at vtime %.6f",
                      clock_.now());
      std::raise(SIGKILL);
    }
    if (fault_plan_->death_due(id_, clock_.now())) {
      HETSGD_LOG_WARN("gpu-worker", "injected death at vtime %.6f",
                      clock_.now());
      return false;  // stop reporting — the actor is dead
    }
    stall = fault_plan_->stall(id_, clock_.now());
    if (stall.sleep_ms > 0) {
      // hetsgd-lint: allow(wall-clock) injected stalls must consume real
      // time, not virtual time, to exercise real-time silence detection.
      std::this_thread::sleep_for(std::chrono::milliseconds(stall.sleep_ms));
    }
    const std::int64_t transfer_faults =
        fault_plan_->transfer_failures_due(id_, clock_.now());
    if (transfer_faults > 0) {
      HETSGD_LOG_WARN("gpu-worker", "injecting %lld transfer fault(s)",
                      static_cast<long long>(transfer_faults));
      device_.inject_transfer_faults(transfer_faults);
    }
  }

  const double issue = clock_.now();
  auto x = dataset_.batch_features(begin, size);
  auto y = dataset_.batch_labels(begin, size);
  double done = issue;

  // The upload/compute/download round trip is retried as a unit on
  // transient transfer failures, with capped exponential backoff charged to
  // virtual time (the modeled driver re-issuing the copy). Past
  // max_transfer_retries the error escapes handle(): the actor framework
  // turns it into a WorkerFault report via on_handle_exception.
  const std::int64_t max_retries =
      std::max<std::int64_t>(0, config_.fault.max_transfer_retries);
  for (std::int64_t attempt = 0;; ++attempt) {
    try {
      // Deep-copy the current global model into the device replica. The
      // reads race with concurrent CPU-lane updates — Hogwild semantics
      // extend across the PCIe boundary. The host-side snapshot is kept to
      // measure how stale the replica became by merge time.
      {
        HETSGD_TRACE_SPAN(h2d_span, "gpu-worker", "upload_model",
                          clock_.now(), flow);
        upload_snapshot_ = model_;
        device_mlp_->upload_model(upload_snapshot_, clock_.now());
        done = clock_.now();
        h2d_span.set_end_vt(done);
      }
      {
        HETSGD_TRACE_SPAN(kernel_span, "gpu-worker", "compute_gradient",
                          clock_.now(), flow);
        device_mlp_->compute_gradient(x, y, clock_.now(), &done);
        kernel_span.set_end_vt(done);
      }
      {
        HETSGD_TRACE_SPAN(d2h_span, "gpu-worker", "download_gradient",
                          clock_.now(), flow);
        done = device_mlp_->download_gradient(host_gradient_, clock_.now());
        d2h_span.set_end_vt(done);
      }
      break;
    } catch (const gpusim::TransferError& e) {
      if (attempt >= max_retries) throw;  // escalate to the coordinator
      ++transfer_retries_;
      static obs::Counter& retry_counter = obs::MetricsRegistry::instance()
          .counter("hetsgd_transfer_retries_total");
      retry_counter.inc();
      HETSGD_TRACE_INSTANT("fault", "transfer_retry", clock_.now(), flow);
      const int shift = static_cast<int>(std::min<std::int64_t>(attempt, 10));
      const double backoff = config_.fault.transfer_backoff_vseconds *
                             static_cast<double>(std::int64_t{1} << shift);
      HETSGD_LOG_WARN("gpu-worker",
                      "transfer failed (%s); retry %lld/%lld after %.2e vs",
                      e.what(), static_cast<long long>(attempt + 1),
                      static_cast<long long>(max_retries), backoff);
      clock_.advance(backoff);
    }
  }

  if (fault_plan_ != nullptr &&
      fault_plan_->corruption_due(id_, clock_.now())) {
    // Poison the downloaded gradient: the merge below drives the shared
    // model non-finite, exercising the coordinator's divergence rollback.
    HETSGD_LOG_WARN("gpu-worker", "injected gradient corruption at vtime %.6f",
                    clock_.now());
    if (host_gradient_.layer_count() > 0 &&
        host_gradient_.layer(0).weights.size() > 0) {
      host_gradient_.layer(0).weights.data()[0] =
          std::numeric_limits<tensor::Scalar>::quiet_NaN();
    }
  }

  // Merge into the shared global model on the host (gradient-push
  // integration, applied asynchronously at the worker).
  const double staleness =
      static_cast<double>(model_.max_abs_diff(upload_snapshot_));
  const double lr_scale =
      (config_.learning_rate > 0.0 && work.learning_rate > 0.0)
          ? work.learning_rate / config_.learning_rate
          : 1.0;
  const double lr =
      config_.effective_lr(size) *
      nn::lr_multiplier(config_.lr_schedule,
                        static_cast<double>(work.epoch)) *
      lr_scale;
  {
    HETSGD_TRACE_SPAN(merge_span, "gpu-worker", "host_merge",
                      clock_.now(), flow);
    optimizer_.step(model_, host_gradient_, static_cast<tensor::Scalar>(lr));
    if (config_.gpu.host_merge_bandwidth > 0.0) {
      done += 2.0 * static_cast<double>(model_bytes(config_.mlp)) /
              config_.gpu.host_merge_bandwidth;
    }
  }

  // Stalls inflate the compute span (issue -> done) by the configured
  // factor; backoff time already advanced the clock directly.
  done = issue + (done - issue) * stall.factor;

  clock_.advance_to(done);
  busy_vtime_ += clock_.now() - issue;
  ++updates_;
  exec_span.set_end_vt(clock_.now());

  msg::ScheduleWork req;
  req.worker = id_;
  req.updates = updates_;
  req.busy_vtime = busy_vtime_;
  req.clock_vtime = clock_.now();
  req.intensity = device_.perf().utilization(static_cast<double>(size));
  req.examples = static_cast<std::uint64_t>(size);
  req.staleness = staleness;
  req.sequence = work.sequence;
  if (!coordinator_.send({id_, req})) {
    HETSGD_LOG_WARN("gpu-worker", "work report dropped: mailbox closed");
  }
  return true;
}

namespace {
constexpr std::uint8_t kGpuStateTag = 'G';
constexpr std::uint32_t kGpuStateVersion = 1;
}  // namespace

std::vector<std::uint8_t> GpuWorker::serialize_state() const {
  ByteWriter w;
  w.write_u8(kGpuStateTag);
  w.write_u32(kGpuStateVersion);
  w.write_f64(clock_.now());
  w.write_f64(busy_vtime_);
  w.write_u64(updates_);
  optimizer_.serialize(w);
  return w.data();
}

bool GpuWorker::restore_state(const std::vector<std::uint8_t>& bytes,
                              std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  ByteReader r(bytes);
  std::uint8_t tag = 0;
  std::uint32_t version = 0;
  double clock = 0.0;
  if (!r.read_u8(&tag) || tag != kGpuStateTag) {
    return fail("not a GPU worker state blob");
  }
  if (!r.read_u32(&version) || version != kGpuStateVersion) {
    return fail("unsupported GPU worker state version");
  }
  if (!r.read_f64(&clock) || !r.read_f64(&busy_vtime_) ||
      !r.read_u64(&updates_)) {
    return fail("truncated GPU worker state");
  }
  clock_.reset(clock);
  return optimizer_.deserialize(r, error);
}

}  // namespace hetsgd::core
