// GPU worker: mini-batch SGD on the simulated device (§V-A).
//
// Serves as the exclusive interface to its Device. Every ExecuteWork
// deep-copies the current global model to device memory (the replica is
// "a transition buffer between CPU and GPU"), uploads the batch, runs the
// forward/backward kernel sequence on a stream, downloads the gradient,
// and merges it into the shared global model on the host — asynchronously
// with respect to the CPU worker's concurrent Hogwild updates.
//
// Transient device-transfer failures (injected through the FaultPlan, or
// any gpusim::TransferError) are retried locally with capped exponential
// virtual-time backoff; only when retries are exhausted does the worker
// escalate to the coordinator with a WorkerFault.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/fault.hpp"
#include "data/dataset.hpp"
#include "gpusim/device.hpp"
#include "gpusim/virtual_clock.hpp"
#include "msg/actor.hpp"
#include "nn/device_mlp.hpp"

namespace hetsgd::core {

class GpuWorker final : public msg::Actor {
 public:
  // `ordinal` distinguishes multiple GPU workers (device index).
  GpuWorker(msg::WorkerId id, const TrainingConfig& config,
            const data::Dataset& dataset, nn::Model& global_model,
            msg::Actor& coordinator, int ordinal = 0);

  msg::WorkerId id() const { return id_; }
  const gpusim::Device& device() const { return device_; }
  const gpusim::PerfModel& perf() const { return device_.perf(); }

  // Attaches a fault-injection plan (shared, thread-safe). Call before
  // start(); nullptr = no injections.
  void set_fault_plan(FaultPlan* plan) { fault_plan_ = plan; }

  // Transfer retries performed so far (diagnostics / tests).
  std::uint64_t transfer_retries() const { return transfer_retries_; }

  // Checkpointing: the worker's private state (virtual clock, update
  // counter, optimizer slots) as an opaque blob, produced on the actor
  // thread in response to StateRequest. restore_state() is the inverse;
  // call it before start() only.
  std::vector<std::uint8_t> serialize_state() const;
  bool restore_state(const std::vector<std::uint8_t>& bytes,
                     std::string* error);

 protected:
  bool handle(msg::Envelope envelope) override;
  bool on_handle_exception(const std::string& what) override;

 private:
  // Returns false when an injected death fires: the actor exits its loop
  // without reporting, exactly like a crashed worker.
  bool execute(const msg::ExecuteWork& work);

  msg::WorkerId id_;
  const TrainingConfig& config_;
  const data::Dataset& dataset_;
  nn::Model& model_;  // shared global model (host)
  msg::Actor& coordinator_;
  gpusim::Device device_;
  std::unique_ptr<nn::DeviceMlp> device_mlp_;
  nn::Gradient host_gradient_;
  nn::Optimizer optimizer_;
  // Host-side snapshot of the model at upload time; compared against the
  // live model at merge time to measure replica staleness (§VI-B).
  nn::Model upload_snapshot_;
  FaultPlan* fault_plan_ = nullptr;
  gpusim::VirtualClock clock_;
  double busy_vtime_ = 0.0;
  std::uint64_t updates_ = 0;
  std::uint64_t transfer_retries_ = 0;
};

}  // namespace hetsgd::core
