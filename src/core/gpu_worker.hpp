// GPU worker: mini-batch SGD on the simulated device (§V-A).
//
// Serves as the exclusive interface to its Device. Every ExecuteWork
// deep-copies the current global model to device memory (the replica is
// "a transition buffer between CPU and GPU"), uploads the batch, runs the
// forward/backward kernel sequence on a stream, downloads the gradient,
// and merges it into the shared global model on the host — asynchronously
// with respect to the CPU worker's concurrent Hogwild updates.
#pragma once

#include <cstdint>
#include <memory>

#include "core/config.hpp"
#include "data/dataset.hpp"
#include "gpusim/device.hpp"
#include "gpusim/virtual_clock.hpp"
#include "msg/actor.hpp"
#include "nn/device_mlp.hpp"

namespace hetsgd::core {

class GpuWorker final : public msg::Actor {
 public:
  // `ordinal` distinguishes multiple GPU workers (device index).
  GpuWorker(msg::WorkerId id, const TrainingConfig& config,
            const data::Dataset& dataset, nn::Model& global_model,
            msg::Actor& coordinator, int ordinal = 0);

  msg::WorkerId id() const { return id_; }
  const gpusim::Device& device() const { return device_; }
  const gpusim::PerfModel& perf() const { return device_.perf(); }

 protected:
  bool handle(msg::Envelope envelope) override;

 private:
  void execute(const msg::ExecuteWork& work);

  msg::WorkerId id_;
  const TrainingConfig& config_;
  const data::Dataset& dataset_;
  nn::Model& model_;  // shared global model (host)
  msg::Actor& coordinator_;
  gpusim::Device device_;
  std::unique_ptr<nn::DeviceMlp> device_mlp_;
  nn::Gradient host_gradient_;
  nn::Optimizer optimizer_;
  // Host-side snapshot of the model at upload time; compared against the
  // live model at merge time to measure replica staleness (§VI-B).
  nn::Model upload_snapshot_;
  gpusim::VirtualClock clock_;
  double busy_vtime_ = 0.0;
  std::uint64_t updates_ = 0;
};

}  // namespace hetsgd::core
