// Full-run checkpointing: everything needed to resume a training run
// after the process dies mid-flight.
//
// A model-only checkpoint (nn::save_model) restarts *a* run; resuming
// *the same* run additionally needs the coordinator's RNG stream (dataset
// permutation), the virtual clocks, the update ledger, the adaptive
// batch-size controller, and each worker's private optimizer state —
// ABS-SGD (arXiv:2308.15164) shows adaptive batch state must travel with
// the model for recovery to preserve convergence behaviour. The
// TrainingCheckpoint struct is that closure of state; CheckpointManager
// owns a directory of CRC-checked, atomically-written checkpoint files
// plus a human-readable MANIFEST, prunes old files per the retention
// policy, and on resume loads the newest file that validates — a torn or
// corrupt newest file (the crash may have hit mid-rename) falls back to
// the previous one instead of failing the restart.
//
// Checkpoints are cut at epoch barriers, where every worker is idle: the
// model is quiescent, no batch is in flight, and the whole run state is a
// small closed set of scalars. Cutting mid-epoch would require persisting
// in-flight dispatches and the reclaim pool; the barrier makes the format
// simple and the resumed trajectory bit-identical.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/atomic_file.hpp"
#include "common/rng.hpp"
#include "core/config.hpp"
#include "core/update_ledger.hpp"
#include "data/dataset.hpp"
#include "msg/message.hpp"
#include "nn/model.hpp"

namespace hetsgd::core {

// Per-worker persisted state: ledger counters, adaptive controller entry,
// and the worker's opaque private blob (virtual clock, update counter,
// per-lane optimizer state) as produced by its StateReport.
struct WorkerCheckpoint {
  msg::WorkerId id = 0;
  std::uint8_t kind = 0;  // gpusim::DeviceKind
  WorkerStats stats;
  tensor::Index adaptive_batch = 0;
  std::uint64_t adaptive_updates = 0;
  std::vector<std::uint8_t> state;
};

// The complete resumable state of a run, cut at an epoch barrier.
struct TrainingCheckpoint {
  // Guards against resuming under a different config/seed/dataset: the
  // trajectory would silently diverge instead of continuing.
  std::uint64_t fingerprint = 0;
  std::uint64_t seed = 0;
  std::uint64_t sequence = 0;  // manager-assigned, monotone per directory

  nn::Model model;
  // Coordinator RNG at the cut — after epoch_ - 1 dataset shuffles. The
  // resume path replays those shuffles on a fresh generator and verifies
  // it lands on exactly this state (integrity check doubling as a
  // config-mismatch detector).
  RngState rng;

  std::uint64_t epoch = 0;
  double epoch_start_vtime = 0.0;
  double next_eval_vtime = 0.0;
  double next_checkpoint_vtime = 0.0;
  double lr_scale = 1.0;
  std::uint64_t rollbacks = 0;
  std::uint64_t examples_dispatched = 0;
  std::uint64_t examples_reclaimed = 0;
  std::uint64_t late_reports = 0;
  std::uint64_t late_examples = 0;
  std::uint64_t checkpoints_written = 0;
  double last_good_loss = 0.0;

  std::vector<LossPoint> curve;
  std::vector<WorkerCheckpoint> workers;
};

// Hash of everything that shapes the training trajectory: algorithm,
// seed, architecture, optimizer, batch thresholds, worker set, dataset
// shape. Deliberately EXCLUDES the time budget and max_epochs (resuming
// with a longer horizon is the point of resuming) and the fault plan
// (the injections already fired died with the old process).
std::uint64_t config_fingerprint(const TrainingConfig& config,
                                 const data::Dataset& dataset);

// Payload (de)serialization, exposed for tests. The envelope (magic,
// version, CRC) is added by nn::write_envelope_file.
void write_training_checkpoint(ByteWriter& w, const TrainingCheckpoint& ckpt);
bool read_training_checkpoint(ByteReader& r, TrainingCheckpoint* ckpt,
                              std::string* error);

// Owns a checkpoint directory: numbered `ckpt-<seq>.hetsgd` files, a
// MANIFEST, and a retention policy. Not internally synchronized — the
// coordinator thread is the only writer after start() (the same
// confinement as the coordinator's own state, which holds `mu_` across
// save()); load_latest is static and runs before any actor starts.
class CheckpointManager {
 public:
  // Creates `dir` if needed and continues sequence numbering after any
  // checkpoints already present (a resumed run keeps appending).
  CheckpointManager(std::string dir, std::int64_t retain);

  const std::string& dir() const { return dir_; }

  // Assigns the next sequence number to `ckpt`, atomically writes the
  // file, rewrites the MANIFEST, and prunes files beyond the retention
  // limit. False + *error on I/O failure (the run continues; checkpoint
  // durability degrades, correctness does not).
  bool save(TrainingCheckpoint& ckpt, std::string* error);

  std::uint64_t saves() const { return saves_; }

  // Loads the newest checkpoint in `dir` that passes envelope + payload
  // validation, falling back to older files when the newest is torn or
  // corrupt. nullopt + *error when nothing usable exists.
  static std::optional<TrainingCheckpoint> load_latest(
      const std::string& dir, std::string* error);

 private:
  void write_manifest();

  std::string dir_;
  std::int64_t retain_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t saves_ = 0;
  // seq -> "epoch E vtime T" summaries of retained checkpoints.
  std::vector<std::pair<std::uint64_t, std::string>> retained_;
};

}  // namespace hetsgd::core
