#include "core/adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.hpp"

namespace hetsgd::core {

using tensor::Index;

AdaptiveController::AdaptiveController(double alpha) : alpha_(alpha) {
  HETSGD_ASSERT(alpha > 1.0, "alpha must exceed 1 (default 2)");
}

void AdaptiveController::register_worker(msg::WorkerId id,
                                         const WorkerLimits& limits,
                                         std::uint64_t baseline_updates) {
  HETSGD_ASSERT(id == static_cast<msg::WorkerId>(workers_.size()),
                "worker ids must be registered densely from 0");
  HETSGD_ASSERT(limits.quantum >= 1, "quantum must be positive");
  HETSGD_ASSERT(limits.min >= limits.quantum, "min batch below quantum");
  HETSGD_ASSERT(limits.min <= limits.max, "min batch exceeds max");
  HETSGD_ASSERT(limits.initial >= limits.min && limits.initial <= limits.max,
                "initial batch outside thresholds");
  State s;
  s.limits = limits;
  s.batch = clamp_to_quantum(limits.initial, limits);
  s.offset = baseline_updates;
  workers_.push_back(s);
}

void AdaptiveController::retire_worker(msg::WorkerId id) {
  HETSGD_ASSERT(id >= 0 && static_cast<std::size_t>(id) < workers_.size(),
                "unknown worker");
  workers_[static_cast<std::size_t>(id)].retired = true;
}

void AdaptiveController::restore_worker(msg::WorkerId id, Index batch,
                                        std::uint64_t updates) {
  HETSGD_ASSERT(id >= 0 && static_cast<std::size_t>(id) < workers_.size(),
                "unknown worker");
  State& s = workers_[static_cast<std::size_t>(id)];
  s.batch = clamp_to_quantum(batch, s.limits);
  s.updates = updates;
  s.offset = 0;
}

Index AdaptiveController::batch(msg::WorkerId id) const {
  HETSGD_ASSERT(id >= 0 && static_cast<std::size_t>(id) < workers_.size(),
                "unknown worker");
  return workers_[static_cast<std::size_t>(id)].batch;
}

std::uint64_t AdaptiveController::updates(msg::WorkerId id) const {
  HETSGD_ASSERT(id >= 0 && static_cast<std::size_t>(id) < workers_.size(),
                "unknown worker");
  const State& s = workers_[static_cast<std::size_t>(id)];
  return s.offset + s.updates;
}

Index AdaptiveController::clamp_to_quantum(Index b,
                                           const WorkerLimits& limits) const {
  // Round to the nearest quantum multiple, then clamp into [min, max].
  const Index q = limits.quantum;
  Index rounded = (b + q / 2) / q * q;
  if (rounded < q) rounded = q;
  return std::clamp(rounded, limits.min, limits.max);
}

Index AdaptiveController::on_request(msg::WorkerId id, std::uint64_t updates) {
  HETSGD_ASSERT(id >= 0 && static_cast<std::size_t>(id) < workers_.size(),
                "unknown worker");
  State& e = workers_[static_cast<std::size_t>(id)];
  HETSGD_ASSERT(updates >= e.updates, "update counts must be monotone");
  e.updates = updates;
  if (e.retired) return e.batch;

  // min_u / max_u over the other (non-retired) workers, offset-credited.
  std::uint64_t min_u = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_u = 0;
  bool any_other = false;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (static_cast<msg::WorkerId>(i) == id || workers_[i].retired) continue;
    const std::uint64_t u = workers_[i].offset + workers_[i].updates;
    min_u = std::min(min_u, u);
    max_u = std::max(max_u, u);
    any_other = true;
  }
  if (!any_other) {
    return e.batch;  // single worker: nothing to balance against
  }

  if (e.offset + e.updates < min_u) {
    // Slowest worker: shrink the batch to produce updates faster.
    const Index shrunk = static_cast<Index>(
        std::floor(static_cast<double>(e.batch) / alpha_));
    e.batch = clamp_to_quantum(std::max(shrunk, e.limits.min), e.limits);
  } else if (e.offset + e.updates > max_u) {
    // Fastest worker: grow the batch to slow its update rate.
    const Index grown = static_cast<Index>(
        std::ceil(static_cast<double>(e.batch) * alpha_));
    e.batch = clamp_to_quantum(std::min(grown, e.limits.max), e.limits);
  }
  return e.batch;
}

}  // namespace hetsgd::core
