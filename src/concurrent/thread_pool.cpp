#include "concurrent/thread_pool.hpp"

#include <algorithm>

#include "common/macros.hpp"

namespace hetsgd::concurrent {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t helpers = threads < 1 ? 0 : threads - 1;
  threads_.reserve(helpers);
  for (std::size_t i = 0; i < helpers; ++i) {
    // Lane 0 is the calling thread in run_on_all; helpers are 1..threads-1.
    threads_.emplace_back([this, lane = i + 1] { worker_loop(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : threads_) {
    t.join();
  }
}

void ThreadPool::worker_loop(std::size_t lane) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      MutexLock lock(mutex_);
      while (!stop_ && (job_ == nullptr || generation_ == seen_generation)) {
        start_cv_.wait(mutex_);
      }
      if (stop_) return;
      seen_generation = generation_;
      job = job_;
    }
    (*job)(lane);
    {
      MutexLock lock(mutex_);
      if (--remaining_ == 0) {
        done_cv_.notify_one();
      }
    }
  }
}

void ThreadPool::run_on_all(const std::function<void(std::size_t)>& fn) {
  const std::size_t helpers = threads_.size();
  if (helpers > 0) {
    {
      MutexLock lock(mutex_);
      HETSGD_ASSERT(job_ == nullptr, "ThreadPool::run_on_all is not reentrant");
      job_ = &fn;
      remaining_ = helpers;
      ++generation_;
    }
    start_cv_.notify_all();
  }
  fn(0);
  if (helpers > 0) {
    MutexLock lock(mutex_);
    while (remaining_ != 0) {
      done_cv_.wait(mutex_);
    }
    job_ = nullptr;
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t,
                                            std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t lanes = threads_.size() + 1;
  const std::size_t chunk = (n + lanes - 1) / lanes;
  std::function<void(std::size_t)> job = [&](std::size_t lane) {
    const std::size_t begin = lane * chunk;
    if (begin >= n) return;
    const std::size_t end = std::min(begin + chunk, n);
    fn(begin, end, lane);
  };
  run_on_all(job);
}

}  // namespace hetsgd::concurrent
