// Cache-line-padded per-shard counters.
//
// The update ledger counts model updates from many Hogwild lanes at high
// rate; a single atomic would serialize them on one cache line. Each lane
// bumps its own shard, and readers sum.
//
// Concurrency contract: lock-free by design — per-shard relaxed atomics.
// total() is an eventually-consistent sum (it may miss in-flight bumps);
// callers needing an exact total must quiesce the writers first.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/macros.hpp"

namespace hetsgd::concurrent {

class ShardedCounter {
 public:
  explicit ShardedCounter(std::size_t shards) : shards_(shards) {
    HETSGD_ASSERT(shards > 0, "need at least one shard");
  }

  void add(std::size_t shard, std::uint64_t delta = 1) {
    shards_[shard % shards_.size()].value.fetch_add(delta,
                                                    std::memory_order_relaxed);
  }

  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const auto& s : shards_) {
      sum += s.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

  void reset() {
    for (auto& s : shards_) {
      s.value.store(0, std::memory_order_relaxed);
    }
  }

  std::size_t shard_count() const { return shards_.size(); }

 private:
  struct alignas(hetsgd::kCacheLineSize) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::vector<Shard> shards_;
};

}  // namespace hetsgd::concurrent
