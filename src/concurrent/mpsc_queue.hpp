// Lock-free multi-producer single-consumer queue (Vyukov's algorithm)
// with blocking consumer support.
//
// This is the hot-path channel of the framework: every worker produces
// ScheduleWork messages into the coordinator's mailbox, and the coordinator
// is the single consumer — exactly the MPSC shape. Producers are wait-free
// except for one exchange; the consumer never takes a lock unless it has to
// sleep.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "common/macros.hpp"

namespace hetsgd::concurrent {

template <typename T>
class MpscQueue {
 public:
  MpscQueue() {
    Node* stub = new Node();
    head_.store(stub, std::memory_order_relaxed);
    tail_ = stub;
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  ~MpscQueue() {
    Node* node = tail_;
    while (node != nullptr) {
      Node* next = node->next.load(std::memory_order_relaxed);
      delete node;
      node = next;
    }
  }

  // Multi-producer push. Returns false if the queue has been closed.
  bool push(T value) {
    if (closed_.load(std::memory_order_acquire)) return false;
    Node* node = new Node(std::move(value));
    Node* prev = head_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);
    // Wake the consumer if it is sleeping. The flag avoids taking the mutex
    // on every push.
    if (sleeping_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(wake_mutex_);
      wake_cv_.notify_one();
    }
    return true;
  }

  // Single-consumer non-blocking pop.
  std::optional<T> try_pop() {
    Node* tail = tail_;
    Node* next = tail->next.load(std::memory_order_acquire);
    if (next == nullptr) return std::nullopt;
    std::optional<T> value(std::move(next->value));
    tail_ = next;
    delete tail;
    return value;
  }

  // Single-consumer blocking pop; returns nullopt once the queue is closed
  // and fully drained.
  std::optional<T> pop() {
    for (;;) {
      if (auto v = try_pop()) return v;
      if (closed_.load(std::memory_order_acquire)) {
        // Final drain: a producer may have completed a push between our
        // try_pop and the closed check.
        if (auto v = try_pop()) return v;
        return std::nullopt;
      }
      // Sleep until a producer signals. Double-check after setting the
      // sleeping flag to close the missed-wakeup window.
      sleeping_.store(true, std::memory_order_release);
      std::unique_lock<std::mutex> lock(wake_mutex_);
      if (empty_unsynchronized() && !closed_.load(std::memory_order_acquire)) {
        wake_cv_.wait_for(lock, std::chrono::milliseconds(1));
      }
      sleeping_.store(false, std::memory_order_release);
    }
  }

  // Single-consumer pop with a timeout: returns nullopt either when the
  // timeout expires with the queue still open (caller distinguishes via
  // closed()) or when the queue is closed and fully drained. Lets an idle
  // consumer run periodic work (deadline checks) without busy-waiting.
  std::optional<T> pop_for(std::chrono::milliseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    for (;;) {
      if (auto v = try_pop()) return v;
      if (closed_.load(std::memory_order_acquire)) {
        if (auto v = try_pop()) return v;
        return std::nullopt;
      }
      if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
      sleeping_.store(true, std::memory_order_release);
      std::unique_lock<std::mutex> lock(wake_mutex_);
      if (empty_unsynchronized() && !closed_.load(std::memory_order_acquire)) {
        wake_cv_.wait_for(lock, std::chrono::milliseconds(1));
      }
      sleeping_.store(false, std::memory_order_release);
    }
  }

  void close() {
    closed_.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> lock(wake_mutex_);
    wake_cv_.notify_all();
  }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

 private:
  struct Node {
    Node() : next(nullptr) {}
    explicit Node(T v) : next(nullptr), value(std::move(v)) {}
    std::atomic<Node*> next;
    T value{};
  };

  bool empty_unsynchronized() const {
    return tail_->next.load(std::memory_order_acquire) == nullptr;
  }

  alignas(hetsgd::kCacheLineSize) std::atomic<Node*> head_;  // producers
  alignas(hetsgd::kCacheLineSize) Node* tail_;               // consumer only
  std::atomic<bool> closed_{false};
  std::atomic<bool> sleeping_{false};
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
};

}  // namespace hetsgd::concurrent
