// Lock-free multi-producer single-consumer queue (Vyukov's algorithm)
// with blocking consumer support.
//
// This is the hot-path channel of the framework: every worker produces
// ScheduleWork messages into the coordinator's mailbox, and the coordinator
// is the single consumer — exactly the MPSC shape. Producers are wait-free
// except for one exchange; the consumer never takes a lock unless it has to
// sleep.
//
// Concurrency contract (enforced where a mutex exists, documented where the
// structure is lock-free by design):
//   - head_   : atomic, producers exchange / consumer loads.
//   - tail_   : plain pointer, CONSUMER-THREAD-CONFINED. The single
//               consumer is the only reader and writer; the hand-off from
//               producers happens through Node::next (release/acquire).
//   - closed_, sleeping_ : atomics with acquire/release pairing.
//   - wake_mutex_ + wake_cv_ : guard ONLY the sleep/wake protocol. No data
//     field is guarded by wake_mutex_; the lock closes the classic
//     missed-wakeup window between the consumer's empty-check and its wait.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <optional>
#include <utility>

#include "common/macros.hpp"
#include "common/thread_annotations.hpp"

namespace hetsgd::concurrent {

template <typename T>
class MpscQueue {
 public:
  MpscQueue() {
    // Intrusive queue nodes are the one sanctioned manual-allocation site
    // (hetsgd-lint exempts this file from naked-new); ownership transfers
    // through the lock-free list, which unique_ptr cannot express.
    Node* stub = new Node();
    head_.store(stub, std::memory_order_relaxed);
    tail_ = stub;
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  ~MpscQueue() {
    Node* node = tail_;
    while (node != nullptr) {
      Node* next = node->next.load(std::memory_order_relaxed);
      delete node;
      node = next;
    }
  }

  // Multi-producer push. Returns false if the queue has been closed.
  bool push(T value) HETSGD_EXCLUDES(wake_mutex_) {
    if (closed_.load(std::memory_order_acquire)) return false;
    Node* node = new Node(std::move(value));
    Node* prev = head_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);
    // Wake the consumer if it is sleeping. The flag avoids taking the mutex
    // on every push.
    if (sleeping_.load(std::memory_order_acquire)) {
      MutexLock lock(wake_mutex_);
      wake_cv_.notify_one();
    }
    return true;
  }

  // Single-consumer non-blocking pop.
  std::optional<T> try_pop() {
    Node* tail = tail_;
    Node* next = tail->next.load(std::memory_order_acquire);
    if (next == nullptr) return std::nullopt;
    std::optional<T> value(std::move(next->value));
    tail_ = next;
    // Consumed node is retired here; see the constructor comment.
    delete tail;
    return value;
  }

  // Single-consumer blocking pop; returns nullopt once the queue is closed
  // and fully drained.
  std::optional<T> pop() HETSGD_EXCLUDES(wake_mutex_) {
    for (;;) {
      if (auto v = try_pop()) return v;
      if (closed_.load(std::memory_order_acquire)) {
        // Final drain: a producer may have completed a push between our
        // try_pop and the closed check.
        if (auto v = try_pop()) return v;
        return std::nullopt;
      }
      sleep_briefly();
    }
  }

  // Single-consumer pop with a timeout: returns nullopt either when the
  // timeout expires with the queue still open (caller distinguishes via
  // closed()) or when the queue is closed and fully drained. Lets an idle
  // consumer run periodic work (deadline checks) without busy-waiting.
  std::optional<T> pop_for(std::chrono::milliseconds timeout)
      HETSGD_EXCLUDES(wake_mutex_) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    for (;;) {
      if (auto v = try_pop()) return v;
      if (closed_.load(std::memory_order_acquire)) {
        if (auto v = try_pop()) return v;
        return std::nullopt;
      }
      if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
      sleep_briefly();
    }
  }

  void close() HETSGD_EXCLUDES(wake_mutex_) {
    closed_.store(true, std::memory_order_release);
    MutexLock lock(wake_mutex_);
    wake_cv_.notify_all();
  }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

 private:
  struct Node {
    Node() : next(nullptr) {}
    explicit Node(T v) : next(nullptr), value(std::move(v)) {}
    std::atomic<Node*> next;
    T value{};
  };

  bool empty_unsynchronized() const {
    return tail_->next.load(std::memory_order_acquire) == nullptr;
  }

  // Sleep until a producer signals (bounded nap: the 1 ms cap keeps a lost
  // wakeup from wedging the consumer). Double-checks the empty/closed
  // predicate after setting the sleeping flag to close the missed-wakeup
  // window.
  void sleep_briefly() HETSGD_EXCLUDES(wake_mutex_) {
    sleeping_.store(true, std::memory_order_release);
    {
      MutexLock lock(wake_mutex_);
      if (empty_unsynchronized() && !closed_.load(std::memory_order_acquire)) {
        wake_cv_.wait_for(wake_mutex_, std::chrono::milliseconds(1));
      }
    }
    sleeping_.store(false, std::memory_order_release);
  }

  alignas(hetsgd::kCacheLineSize) std::atomic<Node*> head_;  // producers
  alignas(hetsgd::kCacheLineSize) Node* tail_;               // consumer only
  std::atomic<bool> closed_{false};
  std::atomic<bool> sleeping_{false};
  AnnotatedMutex wake_mutex_;
  std::condition_variable_any wake_cv_;  // waits directly on wake_mutex_
};

}  // namespace hetsgd::concurrent
