// Sense-reversing spin barrier for tightly-coupled Hogwild lanes.
//
// Concurrency contract: lock-free by design — `arrived_` and `sense_`
// carry the release/acquire pairing; there is no mutex for the analysis to
// check. Safe for any `parties` threads calling arrive_and_wait.
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>

#include "common/macros.hpp"

namespace hetsgd::concurrent {

// All `parties` threads must call arrive_and_wait; the last arrival flips
// the sense and releases the rest. Spins with yield, so it is only suitable
// for short rendezvous (sub-batch boundaries), not long waits.
class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties) : parties_(parties) {
    HETSGD_ASSERT(parties > 0, "barrier requires at least one party");
  }

  void arrive_and_wait() {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      while (sense_.load(std::memory_order_acquire) != my_sense) {
        std::this_thread::yield();
      }
    }
  }

 private:
  const std::size_t parties_;
  std::atomic<std::size_t> arrived_{0};
  std::atomic<bool> sense_{false};
};

}  // namespace hetsgd::concurrent
