// Fixed-size thread pool with a parallel_for used by the CPU worker.
//
// The paper's CPU worker runs t OpenMP threads, each computing a gradient
// on its own sub-batch and applying it Hogwild-style. This pool is the
// explicit-thread equivalent: the lanes are long-lived (created once per
// worker), so per-batch dispatch is two atomics per lane rather than a
// thread spawn.
//
// Concurrency contract: all dispatch state (job_, generation_, remaining_,
// stop_) is guarded by `mutex_` and annotated so -Wthread-safety rejects
// any unlocked access. The condition variables are notified outside the
// critical section where profitable; waiters always re-check the guarded
// predicate under the lock.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace hetsgd::concurrent {

class ThreadPool {
 public:
  // Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  std::size_t thread_count() const { return threads_.size(); }

  // Runs fn(lane) on every lane concurrently (the calling thread executes
  // lane 0) and blocks until all lanes finish. Not reentrant.
  void run_on_all(const std::function<void(std::size_t lane)>& fn)
      HETSGD_EXCLUDES(mutex_);

  // Splits [0, n) into contiguous chunks, one per lane, and runs
  // fn(begin, end, lane) concurrently. Lanes whose chunk is empty are
  // skipped. Blocks until done.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t begin, std::size_t end,
                                             std::size_t lane)>& fn)
      HETSGD_EXCLUDES(mutex_);

 private:
  void worker_loop(std::size_t lane) HETSGD_EXCLUDES(mutex_);

  std::vector<std::thread> threads_;  // immutable after construction
  AnnotatedMutex mutex_;
  std::condition_variable_any start_cv_;  // waits directly on mutex_
  std::condition_variable_any done_cv_;
  const std::function<void(std::size_t)>* job_ HETSGD_GUARDED_BY(mutex_) =
      nullptr;
  std::uint64_t generation_ HETSGD_GUARDED_BY(mutex_) = 0;
  std::size_t remaining_ HETSGD_GUARDED_BY(mutex_) = 0;
  bool stop_ HETSGD_GUARDED_BY(mutex_) = false;
};

}  // namespace hetsgd::concurrent
