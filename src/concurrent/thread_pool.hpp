// Fixed-size thread pool with a parallel_for used by the CPU worker.
//
// The paper's CPU worker runs t OpenMP threads, each computing a gradient
// on its own sub-batch and applying it Hogwild-style. This pool is the
// explicit-thread equivalent: the lanes are long-lived (created once per
// worker), so per-batch dispatch is two atomics per lane rather than a
// thread spawn.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hetsgd::concurrent {

class ThreadPool {
 public:
  // Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  std::size_t thread_count() const { return threads_.size(); }

  // Runs fn(lane) on every lane concurrently (the calling thread executes
  // lane 0) and blocks until all lanes finish. Not reentrant.
  void run_on_all(const std::function<void(std::size_t lane)>& fn);

  // Splits [0, n) into contiguous chunks, one per lane, and runs
  // fn(begin, end, lane) concurrently. Lanes whose chunk is empty are
  // skipped. Blocks until done.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t begin, std::size_t end,
                                             std::size_t lane)>& fn);

 private:
  void worker_loop(std::size_t lane);

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t remaining_ = 0;
  bool stop_ = false;
};

}  // namespace hetsgd::concurrent
