// Unbounded blocking MPMC queue with close semantics.
//
// The simplest correct channel; used where throughput is not critical
// (shutdown paths, test harnesses). Hot paths use MpscQueue.
//
// Concurrency contract: every field is guarded by `mutex_`; the analysis
// (-Wthread-safety) enforces that no access escapes the lock. The
// condition variable is notified outside the critical section on the push
// path (cheaper wakeup), which is race-free because waiters re-check the
// guarded predicate under the lock.
#pragma once

#include <condition_variable>
#include <deque>
#include <optional>
#include <utility>

#include "common/thread_annotations.hpp"

namespace hetsgd::concurrent {

template <typename T>
class BlockingQueue {
 public:
  // Pushes unless the queue is closed; returns false if closed.
  bool push(T value) HETSGD_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(value));
    }
    cv_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() HETSGD_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (items_.empty() && !closed_) {
      cv_.wait(mutex_);
    }
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  // Non-blocking pop.
  std::optional<T> try_pop() HETSGD_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  // After close, pushes fail and pops drain the remaining items then return
  // nullopt.
  void close() HETSGD_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const HETSGD_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return closed_;
  }

  std::size_t size() const HETSGD_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return items_.size();
  }

 private:
  mutable AnnotatedMutex mutex_;
  std::condition_variable_any cv_;  // waits directly on mutex_
  std::deque<T> items_ HETSGD_GUARDED_BY(mutex_);
  bool closed_ HETSGD_GUARDED_BY(mutex_) = false;
};

}  // namespace hetsgd::concurrent
