// Unbounded blocking MPMC queue with close semantics.
//
// The simplest correct channel; used where throughput is not critical
// (shutdown paths, test harnesses). Hot paths use MpscQueue.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace hetsgd::concurrent {

template <typename T>
class BlockingQueue {
 public:
  // Pushes unless the queue is closed; returns false if closed.
  bool push(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(value));
    }
    cv_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  // Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  // After close, pushes fail and pops drain the remaining items then return
  // nullopt.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace hetsgd::concurrent
