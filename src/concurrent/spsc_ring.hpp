// Bounded single-producer single-consumer ring buffer.
//
// Used for per-worker result streams (metrics samples) where the producer
// must never block on the consumer. Capacity is rounded up to a power of
// two so index wrapping is a mask.
//
// Concurrency contract: lock-free by design for EXACTLY ONE producer and
// ONE consumer thread. `slots_` is unsynchronized storage handed off
// through the head_/tail_ release/acquire protocol: the producer only
// writes slots in [tail, head+capacity), the consumer only reads slots in
// [tail, head) — never the same slot concurrently. Adding a second
// producer or consumer is a data race; use MpscQueue or BlockingQueue.
#pragma once

#include <atomic>
#include <bit>
#include <optional>
#include <utility>
#include <vector>

#include "common/macros.hpp"

namespace hetsgd::concurrent {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity)
      : mask_(std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity) - 1),
        slots_(mask_ + 1) {}

  // Producer side. Returns false when full (caller decides to drop or spin).
  bool try_push(T value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail > mask_) return false;
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Consumer side.
  std::optional<T> try_pop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return std::nullopt;
    std::optional<T> value(std::move(slots_[tail & mask_]));
    tail_.store(tail + 1, std::memory_order_release);
    return value;
  }

  std::size_t capacity() const { return mask_ + 1; }

  // Approximate size; exact only from the consumer thread.
  std::size_t size_approx() const {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }

 private:
  const std::size_t mask_;
  std::vector<T> slots_;
  alignas(hetsgd::kCacheLineSize) std::atomic<std::size_t> head_{0};
  alignas(hetsgd::kCacheLineSize) std::atomic<std::size_t> tail_{0};
};

}  // namespace hetsgd::concurrent
