#include "backend/mlp_executor.hpp"

#include "common/macros.hpp"
#include "nn/activation.hpp"

namespace hetsgd::backend {

using tensor::Index;
using tensor::Scalar;

MlpExecutor::MlpExecutor(Backend& backend, const nn::MlpConfig& config,
                         Index max_batch)
    : backend_(backend), config_(config), max_batch_(max_batch) {
  config_.validate();
  HETSGD_ASSERT(max_batch > 0, "max_batch must be positive");
  const auto shapes = config_.layer_shapes();
  acts_.reserve(shapes.size());
  deltas_.reserve(shapes.size());
  if (backend_.zero_copy()) {
    // The replica and gradient alias live host storage once bound; only
    // scratch (activations/deltas) is allocated. The input handle starts
    // unbound and is re-aliased onto each batch by stage_batch().
    for (const auto& s : shapes) {
      acts_.push_back(backend_.alloc(max_batch, s.out));
      deltas_.push_back(backend_.alloc(max_batch, s.out));
    }
    input_ = backend_.adopt(
        tensor::MatrixView(nullptr, 0, config_.input_dim));
    return;
  }
  // Private replica: allocate in the order the DeviceMlp always has, so a
  // capacity-exceeded abort fires on the same allocation.
  replica_.reserve(shapes.size());
  gradient_.reserve(shapes.size());
  for (const auto& s : shapes) {
    replica_.push_back(
        {backend_.alloc(s.out, s.in), backend_.alloc(1, s.out)});
    gradient_.push_back(
        {backend_.alloc(s.out, s.in), backend_.alloc(1, s.out)});
    acts_.push_back(backend_.alloc(max_batch, s.out));
    deltas_.push_back(backend_.alloc(max_batch, s.out));
  }
  input_ = backend_.alloc(max_batch, config_.input_dim);
}

MlpExecutor::~MlpExecutor() {
  if (!released_) release_buffers();
}

void MlpExecutor::bind_shared_model(nn::Model& model) {
  HETSGD_ASSERT(backend_.zero_copy(),
                "bind_shared_model requires a zero-copy backend");
  HETSGD_ASSERT(model.layer_count() == config_.layer_shapes().size(),
                "model/config layer count mismatch");
  replica_.clear();
  for (std::size_t l = 0; l < model.layer_count(); ++l) {
    replica_.push_back({backend_.adopt(model.layer(l).weights.view()),
                        backend_.adopt(model.layer(l).bias.view())});
  }
  model_bound_ = true;
}

void MlpExecutor::bind_host_gradient(nn::Gradient& grad) {
  HETSGD_ASSERT(backend_.zero_copy(),
                "bind_host_gradient requires a zero-copy backend");
  HETSGD_ASSERT(grad.layer_count() == config_.layer_shapes().size(),
                "gradient/config layer count mismatch");
  gradient_.clear();
  for (std::size_t l = 0; l < grad.layer_count(); ++l) {
    gradient_.push_back({backend_.adopt(grad.layer(l).weights.view()),
                         backend_.adopt(grad.layer(l).bias.view())});
  }
  gradient_bound_ = true;
}

std::uint64_t MlpExecutor::device_bytes() const {
  std::uint64_t total = backend_.zero_copy() ? 0 : input_.bytes();
  for (std::size_t l = 0; l < acts_.size(); ++l) {
    if (!model_bound_ && l < replica_.size()) {
      total += replica_[l].weights.bytes() + replica_[l].bias.bytes();
    }
    if (!gradient_bound_ && l < gradient_.size()) {
      total += gradient_[l].weights.bytes() + gradient_[l].bias.bytes();
    }
    total += acts_[l].bytes() + deltas_[l].bytes();
  }
  return total;
}

double MlpExecutor::upload_model(const nn::Model& model, double issue_time) {
  if (model_bound_) return issue_time;  // the replica IS the model
  HETSGD_ASSERT(model.layer_count() == replica_.size(),
                "model/replica layer count mismatch");
  double t = issue_time;
  for (std::size_t l = 0; l < replica_.size(); ++l) {
    t = backend_.upload(model.layer(l).weights.view(), replica_[l].weights,
                        issue_time);
    t = backend_.upload(model.layer(l).bias.view(), replica_[l].bias,
                        issue_time);
  }
  return t;
}

Scalar MlpExecutor::compute_gradient(tensor::ConstMatrixView x,
                                     std::span<const std::int32_t> labels,
                                     double issue_time,
                                     double* completion_time) {
  const Index batch = x.rows();
  HETSGD_ASSERT(batch > 0 && batch <= max_batch_, "batch exceeds max_batch");
  HETSGD_ASSERT(x.cols() == config_.input_dim, "batch width mismatch");
  HETSGD_ASSERT(static_cast<Index>(labels.size()) == batch,
                "label count mismatch");
  HETSGD_ASSERT(!replica_.empty() && !gradient_.empty(),
                "executor not bound (zero-copy backends need bind_* first)");

  const std::size_t layers = replica_.size();

  // H2D: the batch itself, labels riding along (4 bytes each, charged
  // without a dedicated buffer — the loss kernel is the only consumer).
  backend_.stage_batch(
      x, input_, static_cast<std::uint64_t>(batch) * sizeof(std::int32_t),
      issue_time);

  // Forward: per layer one fused kernel out = act(A_prev * W^T + b); the
  // output layer keeps raw logits (bias only).
  Buffer prev = input_;
  for (std::size_t l = 0; l < layers; ++l) {
    const tensor::Epilogue ep =
        l + 1 < layers ? nn::bias_act_epilogue(config_.hidden_activation)
                       : tensor::Epilogue::kBias;
    backend_.gemm_bias_act(prev, replica_[l].weights, replica_[l].bias,
                           acts_[l], batch, ep, issue_time);
    prev = acts_[l];
  }

  // Loss + dLoss/dlogits (fused softmax-xent kernel).
  Scalar loss = 0;
  backend_.softmax_xent(acts_.back(), labels, deltas_.back(), batch, &loss,
                        issue_time);

  // Backward.
  for (std::size_t l = layers; l-- > 0;) {
    const Buffer& prev_act = l == 0 ? input_ : acts_[l - 1];
    // dW = delta^T * prev_act; db = column sums of delta.
    backend_.matmul_tn(deltas_[l], prev_act, batch, gradient_[l].weights,
                       issue_time);
    backend_.col_sums(deltas_[l], batch, gradient_[l].bias, issue_time);
    if (l > 0) {
      // delta_{l-1} = (delta_l * W^l) ⊙ act'(a_{l-1})
      backend_.matmul_nn(deltas_[l], replica_[l].weights, batch,
                         deltas_[l - 1], issue_time);
      backend_.activation_backward(config_.hidden_activation, acts_[l - 1],
                                   deltas_[l - 1], batch, issue_time);
    }
  }

  if (completion_time != nullptr) {
    *completion_time = backend_.synchronize(issue_time);
  }
  return loss;
}

double MlpExecutor::apply_gradient(Scalar eta, double issue_time) {
  double t = issue_time;
  for (std::size_t l = 0; l < replica_.size(); ++l) {
    t = backend_.axpy(-eta, gradient_[l].weights, replica_[l].weights,
                      issue_time);
    t = backend_.axpy(-eta, gradient_[l].bias, replica_[l].bias, issue_time);
  }
  return t;
}

double MlpExecutor::download_gradient(nn::Gradient& grad, double issue_time) {
  if (gradient_bound_) return issue_time;  // already in host storage
  HETSGD_ASSERT(grad.layer_count() == gradient_.size(),
                "gradient layer count mismatch");
  double t = issue_time;
  for (std::size_t l = 0; l < gradient_.size(); ++l) {
    t = backend_.download(gradient_[l].weights, grad.layer(l).weights.view(),
                          issue_time);
    t = backend_.download(gradient_[l].bias, grad.layer(l).bias.view(),
                          issue_time);
  }
  return t;
}

double MlpExecutor::download_model(nn::Model& model, double issue_time) {
  if (model_bound_) return issue_time;
  HETSGD_ASSERT(model.layer_count() == replica_.size(),
                "model layer count mismatch");
  double t = issue_time;
  for (std::size_t l = 0; l < replica_.size(); ++l) {
    t = backend_.download(replica_[l].weights, model.layer(l).weights.view(),
                          issue_time);
    t = backend_.download(replica_[l].bias, model.layer(l).bias.view(),
                          issue_time);
  }
  return t;
}

void MlpExecutor::release_buffers() {
  for (auto& l : replica_) {
    backend_.free(l.weights);
    backend_.free(l.bias);
  }
  for (auto& l : gradient_) {
    backend_.free(l.weights);
    backend_.free(l.bias);
  }
  for (auto& b : acts_) backend_.free(b);
  for (auto& b : deltas_) backend_.free(b);
  backend_.free(input_);
  replica_.clear();
  gradient_.clear();
  acts_.clear();
  deltas_.clear();
  released_ = true;
}

}  // namespace hetsgd::backend
