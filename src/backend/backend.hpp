// The backend seam: one abstract device interface behind which host-CPU
// and simulated-GPU execution are interchangeable.
//
// A Backend owns device-resident buffers (opaque handles), moves data
// across the host<->device boundary, and executes the MLP kernel set —
// GEMM with fused bias/activation epilogue, the fused softmax-xent loss
// kernel, element-wise ops, and column-sum reductions. Every operation
// takes the caller's virtual issue time and returns the operation's
// virtual completion time, mirroring the CUDA stream model the paper's
// GPU worker uses: kernels execute eagerly on the calling thread (the
// math is real), while their *costs* are sequenced on a FIFO queue in
// virtual time.
//
// Concurrency contract (DESIGN.md §13): a Backend instance and all of its
// buffers are single-owner, confined to the thread that created it —
// exactly the contract gpusim::Device has always had. Nothing here is
// synchronized; the worker actor's mailbox is the only way in. Workers
// that run parallel Hogwild lanes own one Backend instance per lane.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "backend/device_model.hpp"
#include "gpusim/device.hpp"
#include "nn/activation.hpp"
#include "tensor/gemm.hpp"
#include "tensor/matrix.hpp"

namespace hetsgd::backend {

// Transfer failures keep the simulator's exception type (the analog of a
// failed cudaMemcpy); re-exported so callers outside the seam catch
// backend::TransferError without naming gpusim.
using TransferError = gpusim::TransferError;

// Opaque handle to a device-resident rows x cols buffer. Plain value type:
// copying the handle does not copy (or share ownership of) the storage —
// the owning Backend tracks the allocation by id until free() is called.
struct Buffer {
  std::uint64_t id = 0;  // 0 = null handle
  tensor::Index rows = 0;
  tensor::Index cols = 0;

  bool valid() const { return id != 0; }
  tensor::Index size() const { return rows * cols; }
  std::uint64_t bytes() const {
    return static_cast<std::uint64_t>(size()) * sizeof(tensor::Scalar);
  }
};

class Backend {
 public:
  virtual ~Backend() = default;

  // Registry name ("cpu", "sim").
  virtual const std::string& name() const = 0;
  virtual const PerfModel& perf() const = 0;
  DeviceKind kind() const { return perf().spec().kind; }

  // True when buffers live in host memory and adopt() is available: model
  // and gradient buffers can alias live host storage, making uploads and
  // downloads free no-ops (the Hogwild zero-copy path).
  virtual bool zero_copy() const = 0;

  // --- buffers -----------------------------------------------------------
  // Allocates a zero-initialized rows x cols buffer (cudaMalloc analog).
  // Aborts on device OOM, mirroring a failed cudaMalloc.
  virtual Buffer alloc(tensor::Index rows, tensor::Index cols) = 0;
  // Zero-copy backends only: wraps existing host storage as a buffer
  // without allocating or copying. Aborts on backends with private memory.
  virtual Buffer adopt(tensor::MatrixView host) = 0;
  // Releases the allocation (no-op for adopted storage) and nulls `b`.
  virtual void free(Buffer& b) = 0;
  // Host-visible view of the buffer's storage. The simulated device's
  // "device memory" is host RAM, so this is always available; kernels and
  // tests read through it.
  virtual tensor::MatrixView view(const Buffer& b) = 0;
  // Bytes currently allocated (excluding adopted host storage).
  virtual std::uint64_t bytes_in_use() const = 0;

  // --- transfers ---------------------------------------------------------
  // Copy host -> buffer / buffer -> host, charging modeled link time.
  // These are the fault-injection surfaces: a pending injected fault makes
  // the call throw TransferError (consuming one injection).
  virtual double upload(tensor::ConstMatrixView host, const Buffer& dst,
                        double issue) = 0;
  virtual double download(const Buffer& src, tensor::MatrixView host,
                          double issue) = 0;
  // Stages the first x.rows() rows of a training batch into `dst`, with
  // `extra_bytes` (labels) riding along in the charged transfer. This is
  // the input staging path, deliberately NOT fault-checked: the model
  // upload and gradient download bracket every round trip and are the
  // injection points, matching the original DeviceMlp semantics. Zero-copy
  // backends rebind `dst` to alias `x` directly (no copy, no charge).
  virtual double stage_batch(tensor::ConstMatrixView x, Buffer& dst,
                             std::uint64_t extra_bytes, double issue) = 0;

  // --- kernels -----------------------------------------------------------
  // Each kernel operates on the first `batch` rows of its batch-shaped
  // operands (buffers may be sized for a larger max batch), performs the
  // real math immediately, and enqueues one modeled cost on the backend's
  // queue. Shapes follow the MLP layer convention: w is out x in, x/out
  // activations are batch x width, bias is 1 x out.

  // out = epilogue(x * w^T + bias): the fused forward layer.
  virtual double gemm_bias_act(const Buffer& x, const Buffer& w,
                               const Buffer& bias, const Buffer& out,
                               tensor::Index batch, tensor::Epilogue epilogue,
                               double issue) = 0;
  // Fused softmax + cross-entropy: writes dLoss/dlogits into `dlogits`,
  // stores the mean loss into *loss, and charges the kernel plus the
  // one-scalar D2H return of the loss value.
  virtual double softmax_xent(const Buffer& logits,
                              std::span<const std::int32_t> labels,
                              const Buffer& dlogits, tensor::Index batch,
                              tensor::Scalar* loss, double issue) = 0;
  // grad_w = delta^T * prev (full out x in result).
  virtual double matmul_tn(const Buffer& delta, const Buffer& prev,
                           tensor::Index batch, const Buffer& grad_w,
                           double issue) = 0;
  // out(1 x cols) = column sums over the first `batch` rows of m.
  virtual double col_sums(const Buffer& m, tensor::Index batch,
                          const Buffer& out, double issue) = 0;
  // out = delta * w (batch x in), the delta back-propagation product.
  virtual double matmul_nn(const Buffer& delta, const Buffer& w,
                           tensor::Index batch, const Buffer& out,
                           double issue) = 0;
  // delta ⊙= act'(activated), element-wise over the first `batch` rows.
  virtual double activation_backward(nn::Activation act,
                                     const Buffer& activated,
                                     const Buffer& delta, tensor::Index batch,
                                     double issue) = 0;
  // y += alpha * x over whole buffers (the device-side SGD update).
  virtual double axpy(tensor::Scalar alpha, const Buffer& x, const Buffer& y,
                      double issue) = 0;

  // Host blocks until the queue drains; returns max(issue, queue front).
  virtual double synchronize(double issue) = 0;

  // --- fault injection ---------------------------------------------------
  // Makes the next `count` upload/download calls throw TransferError.
  virtual void inject_transfer_faults(std::int64_t count) = 0;
  virtual std::uint64_t failed_transfers() const = 0;

  // --- diagnostics -------------------------------------------------------
  virtual std::uint64_t transfer_count() const = 0;
  virtual std::uint64_t bytes_transferred() const = 0;
};

// --- registry ------------------------------------------------------------
// Names of all linked-in backends, in registration order ("cpu", "sim").
const std::vector<std::string>& registered_backends();
bool backend_registered(const std::string& name);
// Constructs a backend by registry name over the given device spec.
// Returns nullptr for unknown names (callers validate CLI input through
// backend_registered()).
std::unique_ptr<Backend> make_backend(const std::string& name,
                                      const DeviceSpec& spec);

}  // namespace hetsgd::backend
