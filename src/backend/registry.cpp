// Backend registry: name -> constructor, consulted by the --backend flag.
//
// Deliberately a static table, not a plug-in mechanism: backends are
// compiled in, and the cross-backend equivalence suite iterates
// registered_backends() so a new entry is automatically under test.

#include <algorithm>

#include "backend/backend.hpp"
#include "backend/cpu_backend.hpp"
#include "backend/sim_backend.hpp"

namespace hetsgd::backend {

const std::vector<std::string>& registered_backends() {
  static const std::vector<std::string> kNames = {"cpu", "sim"};
  return kNames;
}

bool backend_registered(const std::string& name) {
  const auto& names = registered_backends();
  return std::find(names.begin(), names.end(), name) != names.end();
}

std::unique_ptr<Backend> make_backend(const std::string& name,
                                      const DeviceSpec& spec) {
  if (name == "cpu") {
    // Registry-built CPU backends act as a discrete (replica) device: the
    // zero-copy Hogwild mode is constructed directly by the CPU worker.
    return std::make_unique<CpuBackend>(spec, CpuBackend::Mode::kDevice);
  }
  if (name == "sim") {
    return std::make_unique<SimBackend>(spec);
  }
  return nullptr;
}

}  // namespace hetsgd::backend
