#include "backend/cpu_backend.hpp"

#include <algorithm>
#include <cstring>

#include "common/macros.hpp"
#include "nn/loss.hpp"
#include "tensor/ops.hpp"

namespace hetsgd::backend {

using tensor::Index;
using tensor::Scalar;

CpuBackend::CpuBackend(const DeviceSpec& spec, Mode mode)
    : perf_(spec), mode_(mode) {}

CpuBackend::Slot& CpuBackend::slot(const Buffer& b) {
  HETSGD_ASSERT(b.valid() && b.id <= slots_.size(), "invalid buffer handle");
  Slot& s = slots_[b.id - 1];
  HETSGD_ASSERT(s.live, "buffer used after free");
  return s;
}

tensor::MatrixView CpuBackend::rows(const Buffer& b, Index batch) {
  Slot& s = slot(b);
  Scalar* data = s.adopted ? s.alias : s.owned.view().data();
  return tensor::MatrixView(data, batch, b.cols);
}

double CpuBackend::charge(double cost, double issue) {
  if (mode_ == Mode::kZeroCopy) return issue;
  // gpusim::Stream::enqueue: advance_to(issue) then advance(cost).
  queue_time_ = std::max(queue_time_, issue) + cost;
  return queue_time_;
}

void CpuBackend::check_transfer_fault(const char* direction) {
  if (pending_faults_ <= 0) return;
  --pending_faults_;
  ++failed_;
  throw TransferError(std::string("injected transfer fault (") + direction +
                      ")");
}

Buffer CpuBackend::alloc(Index rows_, Index cols_) {
  HETSGD_ASSERT(rows_ >= 0 && cols_ >= 0, "negative buffer shape");
  const std::uint64_t bytes = static_cast<std::uint64_t>(rows_) * cols_ *
                              sizeof(Scalar);
  // Mirror the simulated device's cudaMalloc-fails-hard behavior against
  // this backend's modeled memory capacity.
  HETSGD_ASSERT(bytes_in_use_ + bytes <= perf_.spec().memory_capacity,
                "cpu backend out of modeled memory");
  Slot s;
  s.owned = tensor::Matrix(rows_, cols_);
  s.owned.set_zero();
  s.live = true;
  slots_.push_back(std::move(s));
  bytes_in_use_ += bytes;
  return Buffer{slots_.size(), rows_, cols_};
}

Buffer CpuBackend::adopt(tensor::MatrixView host) {
  HETSGD_ASSERT(mode_ == Mode::kZeroCopy,
                "adopt() requires a zero-copy backend");
  Slot s;
  s.alias = host.data();
  s.adopted = true;
  s.live = true;
  slots_.push_back(std::move(s));
  return Buffer{slots_.size(), host.rows(), host.cols()};
}

void CpuBackend::free(Buffer& b) {
  if (!b.valid()) return;
  Slot& s = slot(b);
  if (!s.adopted) {
    bytes_in_use_ -= b.bytes();
    s.owned = tensor::Matrix();
  }
  s.alias = nullptr;
  s.live = false;
  b = Buffer{};
}

tensor::MatrixView CpuBackend::view(const Buffer& b) {
  return rows(b, b.rows);
}

double CpuBackend::upload(tensor::ConstMatrixView host, const Buffer& dst,
                          double issue) {
  HETSGD_ASSERT(host.rows() == dst.rows && host.cols() == dst.cols,
                "H2D copy shape mismatch");
  check_transfer_fault("H2D");
  auto dv = view(dst);
  if (dv.data() != host.data()) {
    std::memcpy(dv.data(), host.data(),
                static_cast<std::size_t>(host.size()) * sizeof(Scalar));
  }
  ++transfers_;
  bytes_moved_ += dst.bytes();
  return charge(perf_.transfer_seconds(dst.bytes()), issue);
}

double CpuBackend::download(const Buffer& src, tensor::MatrixView host,
                            double issue) {
  HETSGD_ASSERT(host.rows() == src.rows && host.cols() == src.cols,
                "D2H copy shape mismatch");
  check_transfer_fault("D2H");
  auto sv = view(src);
  if (sv.data() != host.data()) {
    std::memcpy(host.data(), sv.data(),
                static_cast<std::size_t>(host.size()) * sizeof(Scalar));
  }
  ++transfers_;
  bytes_moved_ += src.bytes();
  return charge(perf_.transfer_seconds(src.bytes()), issue);
}

double CpuBackend::stage_batch(tensor::ConstMatrixView x, Buffer& dst,
                               std::uint64_t extra_bytes, double issue) {
  if (mode_ == Mode::kZeroCopy) {
    // Rebind the handle to alias the batch rows in place: the forward pass
    // reads the dataset storage directly, like the host path always has.
    // The alias is read-only by convention (no kernel writes its x input).
    Slot& s = slot(dst);
    HETSGD_ASSERT(s.adopted, "zero-copy staging needs an adopted buffer");
    s.alias = const_cast<Scalar*>(x.data());
    dst.rows = x.rows();
    dst.cols = x.cols();
    return issue;
  }
  HETSGD_ASSERT(x.rows() <= dst.rows && x.cols() == dst.cols,
                "staged batch exceeds input buffer");
  auto dv = rows(dst, x.rows());
  std::memcpy(dv.data(), x.data(),
              static_cast<std::size_t>(x.size()) * sizeof(Scalar));
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(x.size()) * sizeof(Scalar) + extra_bytes;
  return charge(perf_.transfer_seconds(bytes), issue);
}

double CpuBackend::gemm_bias_act(const Buffer& x, const Buffer& w,
                                 const Buffer& bias, const Buffer& out,
                                 Index batch, tensor::Epilogue epilogue,
                                 double issue) {
  auto xv = rows(x, batch);
  auto wv = view(w);
  auto ov = rows(out, batch);
  tensor::gemm_bias_act(tensor::Trans::kNo, tensor::Trans::kYes, Scalar{1},
                        xv, wv, ov, view(bias), epilogue);
  return charge(perf_.gemm_seconds(batch, w.rows, w.cols), issue);
}

double CpuBackend::softmax_xent(const Buffer& logits,
                                std::span<const std::int32_t> labels,
                                const Buffer& dlogits, Index batch,
                                Scalar* loss, double issue) {
  auto lv = rows(logits, batch);
  auto dv = rows(dlogits, batch);
  const Scalar l = nn::softmax_cross_entropy(lv, labels, &dv);
  if (loss != nullptr) *loss = l;
  double t = charge(perf_.elementwise_seconds(
                        static_cast<std::uint64_t>(lv.size()) * 6),
                    issue);
  // One scalar (the loss) returns to the host.
  t = charge(perf_.transfer_seconds(sizeof(Scalar)), issue);
  return t;
}

double CpuBackend::matmul_tn(const Buffer& delta, const Buffer& prev,
                             Index batch, const Buffer& grad_w, double issue) {
  tensor::matmul_tn(rows(delta, batch), rows(prev, batch), view(grad_w));
  return charge(perf_.gemm_seconds(grad_w.rows, grad_w.cols, batch), issue);
}

double CpuBackend::col_sums(const Buffer& m, Index batch, const Buffer& out,
                            double issue) {
  auto mv = rows(m, batch);
  tensor::col_sums(mv, view(out));
  return charge(perf_.elementwise_seconds(
                    static_cast<std::uint64_t>(mv.size())),
                issue);
}

double CpuBackend::matmul_nn(const Buffer& delta, const Buffer& w, Index batch,
                             const Buffer& out, double issue) {
  tensor::matmul_nn(rows(delta, batch), view(w), rows(out, batch));
  return charge(perf_.gemm_seconds(batch, w.cols, w.rows), issue);
}

double CpuBackend::activation_backward(nn::Activation act,
                                       const Buffer& activated,
                                       const Buffer& delta, Index batch,
                                       double issue) {
  auto dv = rows(delta, batch);
  nn::activation_backward(act, rows(activated, batch), dv);
  return charge(perf_.elementwise_seconds(
                    static_cast<std::uint64_t>(dv.size())),
                issue);
}

double CpuBackend::axpy(Scalar alpha, const Buffer& x, const Buffer& y,
                        double issue) {
  auto xv = view(x);
  tensor::axpy(alpha, xv, view(y));
  return charge(perf_.elementwise_seconds(
                    static_cast<std::uint64_t>(xv.size())),
                issue);
}

double CpuBackend::synchronize(double issue) {
  if (mode_ == Mode::kZeroCopy) return issue;
  return std::max(issue, queue_time_);
}

}  // namespace hetsgd::backend
