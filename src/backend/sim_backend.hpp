// Simulated-GPU backend: gpusim::Device/Stream/DeviceMemory behind the seam.
//
// Owns a Device built from the given spec and a dedicated stream (the same
// create_stream() the DeviceMlp path used), and exposes the Backend
// vocabulary over them. Transfers route through Device::copy_to_device /
// copy_to_host, so fault injection, transfer counters, global metrics and
// the "gpusim" trace spans are exactly the pre-seam semantics. Kernels run
// the tensor math on the device-resident storage and enqueue the DeviceMlp
// cost formulas on the stream — charge-for-charge identical to the old
// nn::DeviceMlp sequence, which keeps SimBackend training trajectories
// (loss *and* virtual time) bit-compatible with the pre-refactor GPU path.
//
// Thread confinement per Backend's contract: single-owner, unsynchronized —
// the same contract gpusim::Device has always had.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "backend/backend.hpp"
#include "gpusim/device.hpp"

namespace hetsgd::backend {

class SimBackend final : public Backend {
 public:
  explicit SimBackend(const DeviceSpec& spec);

  const std::string& name() const override { return name_; }
  const PerfModel& perf() const override { return device_.perf(); }
  bool zero_copy() const override { return false; }

  // The wrapped simulator, for diagnostics (kernel counts, allocator
  // peaks) that only the simulated device tracks.
  const gpusim::Device& device() const { return device_; }

  Buffer alloc(tensor::Index rows, tensor::Index cols) override;
  Buffer adopt(tensor::MatrixView host) override;
  void free(Buffer& b) override;
  tensor::MatrixView view(const Buffer& b) override;
  std::uint64_t bytes_in_use() const override {
    return device_.allocator().in_use();
  }

  double upload(tensor::ConstMatrixView host, const Buffer& dst,
                double issue) override;
  double download(const Buffer& src, tensor::MatrixView host,
                  double issue) override;
  double stage_batch(tensor::ConstMatrixView x, Buffer& dst,
                     std::uint64_t extra_bytes, double issue) override;

  double gemm_bias_act(const Buffer& x, const Buffer& w, const Buffer& bias,
                       const Buffer& out, tensor::Index batch,
                       tensor::Epilogue epilogue, double issue) override;
  double softmax_xent(const Buffer& logits,
                      std::span<const std::int32_t> labels,
                      const Buffer& dlogits, tensor::Index batch,
                      tensor::Scalar* loss, double issue) override;
  double matmul_tn(const Buffer& delta, const Buffer& prev,
                   tensor::Index batch, const Buffer& grad_w,
                   double issue) override;
  double col_sums(const Buffer& m, tensor::Index batch, const Buffer& out,
                  double issue) override;
  double matmul_nn(const Buffer& delta, const Buffer& w, tensor::Index batch,
                   const Buffer& out, double issue) override;
  double activation_backward(nn::Activation act, const Buffer& activated,
                             const Buffer& delta, tensor::Index batch,
                             double issue) override;
  double axpy(tensor::Scalar alpha, const Buffer& x, const Buffer& y,
              double issue) override;

  double synchronize(double issue) override;

  void inject_transfer_faults(std::int64_t count) override {
    device_.inject_transfer_faults(count);
  }
  std::uint64_t failed_transfers() const override {
    return device_.failed_transfer_count();
  }
  std::uint64_t transfer_count() const override {
    return device_.transfer_count();
  }
  std::uint64_t bytes_transferred() const override {
    return device_.bytes_transferred();
  }

 private:
  struct Slot {
    gpusim::DeviceMatrix mat;
    bool live = false;
  };

  Slot& slot(const Buffer& b);
  tensor::MatrixView rows(const Buffer& b, tensor::Index batch);

  std::string name_ = "sim";
  gpusim::Device device_;
  gpusim::Stream& stream_;
  std::vector<Slot> slots_;
};

}  // namespace hetsgd::backend
