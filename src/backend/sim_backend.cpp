#include "backend/sim_backend.hpp"

#include "common/macros.hpp"
#include "nn/loss.hpp"

namespace hetsgd::backend {

using tensor::Index;
using tensor::Scalar;

SimBackend::SimBackend(const DeviceSpec& spec)
    : device_(spec), stream_(device_.create_stream()) {}

SimBackend::Slot& SimBackend::slot(const Buffer& b) {
  HETSGD_ASSERT(b.valid() && b.id <= slots_.size(), "invalid buffer handle");
  Slot& s = slots_[b.id - 1];
  HETSGD_ASSERT(s.live, "buffer used after free");
  return s;
}

tensor::MatrixView SimBackend::rows(const Buffer& b, Index batch) {
  return tensor::MatrixView(slot(b).mat.device_view().data(), batch, b.cols);
}

Buffer SimBackend::alloc(Index rows_, Index cols_) {
  Slot s;
  s.mat = device_.alloc(rows_, cols_);  // aborts on device OOM (cudaMalloc)
  s.live = true;
  slots_.push_back(std::move(s));
  return Buffer{slots_.size(), rows_, cols_};
}

Buffer SimBackend::adopt(tensor::MatrixView host) {
  (void)host;
  HETSGD_ASSERT(false, "sim backend has private device memory; adopt() is "
                       "zero-copy-only");
  return Buffer{};
}

void SimBackend::free(Buffer& b) {
  if (!b.valid()) return;
  Slot& s = slot(b);
  s.mat = gpusim::DeviceMatrix();  // releases the capacity reservation
  s.live = false;
  b = Buffer{};
}

tensor::MatrixView SimBackend::view(const Buffer& b) {
  return slot(b).mat.device_view();
}

double SimBackend::upload(tensor::ConstMatrixView host, const Buffer& dst,
                          double issue) {
  return device_.copy_to_device(host, slot(dst).mat, stream_, issue);
}

double SimBackend::download(const Buffer& src, tensor::MatrixView host,
                            double issue) {
  return device_.copy_to_host(slot(src).mat, host, stream_, issue);
}

double SimBackend::stage_batch(tensor::ConstMatrixView x, Buffer& dst,
                               std::uint64_t extra_bytes, double issue) {
  HETSGD_ASSERT(x.rows() <= dst.rows && x.cols() == dst.cols,
                "staged batch exceeds input buffer");
  // Real copy + modeled PCIe time for exactly the batch rows (+ the labels
  // riding along). Deliberately not routed through copy_to_device: input
  // staging is not a fault-injection point — the model upload and gradient
  // download bracketing each round trip are.
  auto dv = rows(dst, x.rows());
  Scalar* out = dv.data();
  const Scalar* in = x.data();
  for (Index r = 0; r < x.rows(); ++r) {
    for (Index c = 0; c < x.cols(); ++c) {
      out[r * x.cols() + c] = in[r * x.cols() + c];
    }
  }
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(x.size()) * sizeof(Scalar) + extra_bytes;
  return stream_.enqueue(device_.perf().transfer_seconds(bytes), issue);
}

double SimBackend::gemm_bias_act(const Buffer& x, const Buffer& w,
                                 const Buffer& bias, const Buffer& out,
                                 Index batch, tensor::Epilogue epilogue,
                                 double issue) {
  auto xv = rows(x, batch);
  auto wv = view(w);
  auto ov = rows(out, batch);
  tensor::gemm_bias_act(tensor::Trans::kNo, tensor::Trans::kYes, Scalar{1},
                        xv, wv, ov, view(bias), epilogue);
  return stream_.enqueue(
      device_.perf().gemm_seconds(batch, w.rows, w.cols), issue);
}

double SimBackend::softmax_xent(const Buffer& logits,
                                std::span<const std::int32_t> labels,
                                const Buffer& dlogits, Index batch,
                                Scalar* loss, double issue) {
  auto lv = rows(logits, batch);
  auto dv = rows(dlogits, batch);
  const Scalar l = nn::softmax_cross_entropy(lv, labels, &dv);
  if (loss != nullptr) *loss = l;
  stream_.enqueue(device_.perf().elementwise_seconds(
                      static_cast<std::uint64_t>(lv.size()) * 6),
                  issue);
  // One scalar (the loss) returns to the host.
  return stream_.enqueue(device_.perf().transfer_seconds(sizeof(Scalar)),
                         issue);
}

double SimBackend::matmul_tn(const Buffer& delta, const Buffer& prev,
                             Index batch, const Buffer& grad_w, double issue) {
  tensor::matmul_tn(rows(delta, batch), rows(prev, batch), view(grad_w));
  return stream_.enqueue(
      device_.perf().gemm_seconds(grad_w.rows, grad_w.cols, batch), issue);
}

double SimBackend::col_sums(const Buffer& m, Index batch, const Buffer& out,
                            double issue) {
  auto mv = rows(m, batch);
  tensor::col_sums(mv, view(out));
  return stream_.enqueue(device_.perf().elementwise_seconds(
                             static_cast<std::uint64_t>(mv.size())),
                         issue);
}

double SimBackend::matmul_nn(const Buffer& delta, const Buffer& w, Index batch,
                             const Buffer& out, double issue) {
  tensor::matmul_nn(rows(delta, batch), view(w), rows(out, batch));
  return stream_.enqueue(
      device_.perf().gemm_seconds(batch, w.cols, w.rows), issue);
}

double SimBackend::activation_backward(nn::Activation act,
                                       const Buffer& activated,
                                       const Buffer& delta, Index batch,
                                       double issue) {
  auto dv = rows(delta, batch);
  nn::activation_backward(act, rows(activated, batch), dv);
  return stream_.enqueue(device_.perf().elementwise_seconds(
                             static_cast<std::uint64_t>(dv.size())),
                         issue);
}

double SimBackend::axpy(Scalar alpha, const Buffer& x, const Buffer& y,
                        double issue) {
  // Routed through the Device so the kernel counter and metrics tick,
  // matching the old apply_gradient_on_device path.
  return device_.axpy(alpha, slot(x).mat, slot(y).mat, stream_, issue);
}

double SimBackend::synchronize(double issue) {
  return device_.synchronize(stream_, issue);
}

}  // namespace hetsgd::backend
