// Backend-parameterized MLP training executor: the one forward / backward /
// update sequence both worker kinds run.
//
// Replaces the host nn::Mlp free-function path and nn::DeviceMlp with a
// single kernel sequence issued through a Backend. The sequence (and so
// the arithmetic, bit for bit) is the one the two paths always shared:
//
//   stage batch -> per-layer fused gemm+bias+act -> fused softmax-xent ->
//   per-layer dW = delta^T*prev, db = colsum(delta),
//             delta' = (delta*W) ⊙ act'  -> (optional) on-device axpy
//
// Two buffer regimes, chosen by the backend's zero_copy() capability:
//
//  * Private replica (SimBackend, CpuBackend::kDevice): the constructor
//    allocates replica, gradient, activation and staging buffers in device
//    memory — in the same order the DeviceMlp did, so capacity-exceeded
//    aborts fire identically — and upload_model / download_gradient /
//    download_model really move bytes (and really hit fault injection).
//
//  * Zero-copy (CpuBackend::kZeroCopy): bind_shared_model() /
//    bind_host_gradient() adopt live host storage, so the "replica" IS the
//    shared global model (Hogwild's reference replica — no copy), uploads
//    and downloads are free no-ops, and stage_batch aliases the dataset
//    rows in place.
//
// Confinement follows the owning backend: one executor, one thread.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "backend/backend.hpp"
#include "nn/model.hpp"

namespace hetsgd::backend {

class MlpExecutor {
 public:
  // Sizes buffers for batches up to `max_batch`; allocates the private
  // replica unless the backend is zero-copy.
  MlpExecutor(Backend& backend, const nn::MlpConfig& config,
              tensor::Index max_batch);
  ~MlpExecutor();

  MlpExecutor(const MlpExecutor&) = delete;
  MlpExecutor& operator=(const MlpExecutor&) = delete;

  Backend& backend() { return backend_; }
  const nn::MlpConfig& config() const { return config_; }
  tensor::Index max_batch() const { return max_batch_; }

  // Zero-copy backends only: alias the replica onto the live shared model
  // (reads during compute_gradient race with concurrent lanes — Hogwild by
  // design) and the gradient onto the caller's host gradient slab.
  void bind_shared_model(nn::Model& model);
  void bind_host_gradient(nn::Gradient& grad);

  // Device-resident bytes held by this executor's buffers.
  std::uint64_t device_bytes() const;

  // Deep-copies the host model into the replica (no-op when the replica is
  // bound to it). Returns the virtual completion time.
  double upload_model(const nn::Model& model, double issue_time);

  // Forward + backward over `x` (batch x input_dim). Returns the batch
  // loss; sets `*completion_time` (if non-null) to the synchronized queue
  // time. The gradient lands in the gradient buffers (== the bound host
  // gradient under zero-copy).
  tensor::Scalar compute_gradient(tensor::ConstMatrixView x,
                                  std::span<const std::int32_t> labels,
                                  double issue_time, double* completion_time);

  // replica <- replica - eta * gradient, entirely backend-side.
  double apply_gradient(tensor::Scalar eta, double issue_time);

  // Moves the gradient / replica to host storage (no-op when bound).
  double download_gradient(nn::Gradient& grad, double issue_time);
  double download_model(nn::Model& model, double issue_time);

  // Frees every buffer (worker retirement / epoch trim); the executor is
  // unusable afterwards until rebuilt.
  void release_buffers();

 private:
  struct LayerBuffers {
    Buffer weights;
    Buffer bias;
  };

  Backend& backend_;
  nn::MlpConfig config_;
  tensor::Index max_batch_;
  std::vector<LayerBuffers> replica_;
  std::vector<LayerBuffers> gradient_;
  std::vector<Buffer> acts_;
  std::vector<Buffer> deltas_;
  Buffer input_;
  bool model_bound_ = false;
  bool gradient_bound_ = false;
  bool released_ = false;
};

}  // namespace hetsgd::backend
