// Device-model vocabulary re-exported through the backend seam.
//
// Code outside src/backend/ and src/gpusim/ that needs the modeled-hardware
// vocabulary — device kinds, specs, analytic perf models, virtual clocks —
// includes this header instead of gpusim directly. The gpusim-include lint
// rule (tools/lint/hetsgd_lint.py) keeps the simulator's execution
// machinery (Device / Stream / DeviceMemory) private to the backend layer;
// the *modeling* types below stay shared vocabulary for cost estimation
// and scheduling, which is exactly the split a real multi-device port
// needs: schedulers reason about specs, only backends touch devices.
#pragma once

#include "gpusim/perf_model.hpp"
#include "gpusim/virtual_clock.hpp"

namespace hetsgd::backend {

using gpusim::DeviceKind;
using gpusim::DeviceSpec;
using gpusim::PerfModel;
using gpusim::VirtualClock;
using gpusim::v100_spec;
using gpusim::xeon56_spec;
using gpusim::xeon_spec;

}  // namespace hetsgd::backend
