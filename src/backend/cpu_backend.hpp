// Host-CPU backend: the packed-SIMD tensor kernels behind the Backend seam.
//
// Two modes, selected at construction:
//
//  * kZeroCopy — the Hogwild configuration. Buffers may adopt() live host
//    storage (the shared model, a lane's gradient slab), stage_batch()
//    rebinds the input buffer to alias the dataset rows in place, and no
//    virtual time is charged per kernel: the owning worker charges whole
//    batches analytically through the cost model, exactly as the CPU
//    worker always has. Kernels reduce to direct tensor:: calls, so this
//    mode's arithmetic — and its data races on shared storage — are
//    bit-for-bit the pre-seam host path.
//
//  * kDevice — the replica configuration (registry name "cpu"): behaves
//    like a discrete device that happens to be the host. Buffers are
//    private capacity-accounted allocations, transfers really copy (and
//    honor fault injection, giving every backend the same fault surface),
//    and each kernel charges its modeled cost on a FIFO queue cursor with
//    the same formulas gpusim's Stream uses — so a worker driving this
//    backend advances virtual time just like one driving the simulator.
//
// Thread confinement per Backend's contract: single-owner, unsynchronized.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "backend/backend.hpp"

namespace hetsgd::backend {

class CpuBackend final : public Backend {
 public:
  enum class Mode { kZeroCopy, kDevice };

  CpuBackend(const DeviceSpec& spec, Mode mode);

  const std::string& name() const override { return name_; }
  const PerfModel& perf() const override { return perf_; }
  bool zero_copy() const override { return mode_ == Mode::kZeroCopy; }

  Buffer alloc(tensor::Index rows, tensor::Index cols) override;
  Buffer adopt(tensor::MatrixView host) override;
  void free(Buffer& b) override;
  tensor::MatrixView view(const Buffer& b) override;
  std::uint64_t bytes_in_use() const override { return bytes_in_use_; }

  double upload(tensor::ConstMatrixView host, const Buffer& dst,
                double issue) override;
  double download(const Buffer& src, tensor::MatrixView host,
                  double issue) override;
  double stage_batch(tensor::ConstMatrixView x, Buffer& dst,
                     std::uint64_t extra_bytes, double issue) override;

  double gemm_bias_act(const Buffer& x, const Buffer& w, const Buffer& bias,
                       const Buffer& out, tensor::Index batch,
                       tensor::Epilogue epilogue, double issue) override;
  double softmax_xent(const Buffer& logits,
                      std::span<const std::int32_t> labels,
                      const Buffer& dlogits, tensor::Index batch,
                      tensor::Scalar* loss, double issue) override;
  double matmul_tn(const Buffer& delta, const Buffer& prev,
                   tensor::Index batch, const Buffer& grad_w,
                   double issue) override;
  double col_sums(const Buffer& m, tensor::Index batch, const Buffer& out,
                  double issue) override;
  double matmul_nn(const Buffer& delta, const Buffer& w, tensor::Index batch,
                   const Buffer& out, double issue) override;
  double activation_backward(nn::Activation act, const Buffer& activated,
                             const Buffer& delta, tensor::Index batch,
                             double issue) override;
  double axpy(tensor::Scalar alpha, const Buffer& x, const Buffer& y,
              double issue) override;

  double synchronize(double issue) override;

  void inject_transfer_faults(std::int64_t count) override {
    pending_faults_ += count;
  }
  std::uint64_t failed_transfers() const override { return failed_; }
  std::uint64_t transfer_count() const override { return transfers_; }
  std::uint64_t bytes_transferred() const override { return bytes_moved_; }

 private:
  // A buffer is either an owned allocation or an adopted host alias.
  struct Slot {
    tensor::Matrix owned;
    tensor::Scalar* alias = nullptr;
    bool adopted = false;
    bool live = false;
  };

  Slot& slot(const Buffer& b);
  tensor::MatrixView rows(const Buffer& b, tensor::Index batch);
  // Charges `cost` on the FIFO queue cursor (kDevice) or returns `issue`
  // unchanged (kZeroCopy, where the worker charges analytically).
  double charge(double cost, double issue);
  void check_transfer_fault(const char* direction);

  std::string name_ = "cpu";
  PerfModel perf_;
  Mode mode_;
  std::vector<Slot> slots_;
  // FIFO queue cursor: the same advance_to/advance math as gpusim::Stream.
  double queue_time_ = 0.0;
  std::uint64_t bytes_in_use_ = 0;
  std::int64_t pending_faults_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t transfers_ = 0;
  std::uint64_t bytes_moved_ = 0;
};

}  // namespace hetsgd::backend
