// General matrix-matrix multiply — the host-side replacement for the MKL
// GEMM the paper calls from its CPU worker.
//
// C = alpha * op(A) * op(B) + beta * C, row-major, with op ∈ {identity,
// transpose}. The blocked kernel tiles for L1/L2 and parallelizes over row
// panels with OpenMP when enabled; `naive` is the O(n^3) reference oracle
// used by the test suite.
#pragma once

#include "tensor/matrix.hpp"

namespace hetsgd::tensor {

enum class Trans { kNo, kYes };

struct GemmDims {
  Index m;  // rows of op(A) and C
  Index n;  // cols of op(B) and C
  Index k;  // cols of op(A) == rows of op(B)
};

// Validates shapes and returns the (m, n, k) of the product. Aborts on
// mismatch — shape errors are programming bugs, not runtime conditions.
GemmDims check_gemm_shapes(Trans ta, Trans tb, ConstMatrixView a,
                           ConstMatrixView b, ConstMatrixView c);

// Reference implementation (single-threaded, no blocking).
void gemm_naive(Trans ta, Trans tb, Scalar alpha, ConstMatrixView a,
                ConstMatrixView b, Scalar beta, MatrixView c);

// Production implementation: cache-blocked, OpenMP-parallel over row panels.
void gemm(Trans ta, Trans tb, Scalar alpha, ConstMatrixView a,
          ConstMatrixView b, Scalar beta, MatrixView c);

// Convenience wrappers matching the three products in MLP training.
// out(BxN) = x(BxK) * w(NxK)^T
void matmul_nt(ConstMatrixView x, ConstMatrixView w, MatrixView out);
// out(MxN) = a(KxM)^T * b(KxN)
void matmul_tn(ConstMatrixView a, ConstMatrixView b, MatrixView out);
// out(MxN) = a(MxK) * b(KxN)
void matmul_nn(ConstMatrixView a, ConstMatrixView b, MatrixView out);

// Number of floating point operations a GEMM of these dimensions performs
// (2*m*n*k); used by the gpusim perf model to charge virtual time.
double gemm_flops(Index m, Index n, Index k);

}  // namespace hetsgd::tensor
