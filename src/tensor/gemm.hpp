// General matrix-matrix multiply — the host-side replacement for the MKL
// GEMM the paper calls from its CPU worker.
//
// C = alpha * op(A) * op(B) + beta * C, row-major, with op ∈ {identity,
// transpose}. The production path is a pack-and-microkernel GEMM
// (pack.hpp / microkernel.hpp): operands are packed per cache block into
// contiguous zero-padded panels (all four Trans combinations resolved at
// pack time), multiplied by a register-blocked vectorized micro-kernel,
// and scheduled shape-aware — the parallel partition runs over rows when
// the batch dimension m is large (GPU-style batches) and over columns
// (layer width n) when m is small, the CPU Hogbatch-worker case that the
// seed kernel left serial. `gemm_naive` is the O(n^3) reference oracle
// used by the test suite.
#pragma once

#include "tensor/matrix.hpp"
#include "tensor/microkernel.hpp"  // Epilogue

namespace hetsgd::tensor {

enum class Trans { kNo, kYes };

struct GemmDims {
  Index m;  // rows of op(A) and C
  Index n;  // cols of op(B) and C
  Index k;  // cols of op(A) == rows of op(B)
};

// Validates shapes and returns the (m, n, k) of the product. Aborts on
// mismatch — shape errors are programming bugs, not runtime conditions.
GemmDims check_gemm_shapes(Trans ta, Trans tb, ConstMatrixView a,
                           ConstMatrixView b, ConstMatrixView c);

// Reference implementation (single-threaded, no blocking).
void gemm_naive(Trans ta, Trans tb, Scalar alpha, ConstMatrixView a,
                ConstMatrixView b, Scalar beta, MatrixView c);

// Production implementation: packed panels + register-blocked micro-kernel,
// OpenMP-parallel with a shape-aware partition (rows when m is large,
// columns when m is small). Deterministic: the result is bit-identical for
// any thread count, including serial.
void gemm(Trans ta, Trans tb, Scalar alpha, ConstMatrixView a,
          ConstMatrixView b, Scalar beta, MatrixView c);

// Fused forward-layer kernel: C = epilogue(alpha * op(A) * op(B) + bias),
// with `bias` a 1 x n row vector broadcast over rows and the epilogue
// (bias add + optional activation, see microkernel.hpp) applied during the
// final C write-back while the tile is still in registers — replacing the
// gemm -> add_row_bias -> activation_forward sequence and its two extra
// full passes over C. Matches the unfused sequence to rounding (within
// 1e-12 in the equivalence suite; FP contraction may differ by ulps).
void gemm_bias_act(Trans ta, Trans tb, Scalar alpha, ConstMatrixView a,
                   ConstMatrixView b, MatrixView c, ConstMatrixView bias,
                   Epilogue epilogue);

// Convenience wrappers matching the three products in MLP training.
// out(BxN) = x(BxK) * w(NxK)^T
void matmul_nt(ConstMatrixView x, ConstMatrixView w, MatrixView out);
// out(MxN) = a(KxM)^T * b(KxN)
void matmul_tn(ConstMatrixView a, ConstMatrixView b, MatrixView out);
// out(MxN) = a(MxK) * b(KxN)
void matmul_nn(ConstMatrixView a, ConstMatrixView b, MatrixView out);

// Number of floating point operations a GEMM of these dimensions performs
// (2*m*n*k); used by the gpusim perf model to charge virtual time.
double gemm_flops(Index m, Index n, Index k);

}  // namespace hetsgd::tensor
