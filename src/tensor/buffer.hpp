// Cache-line-aligned heap buffer, the storage backing Matrix.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/macros.hpp"

namespace hetsgd::tensor {

// Owning aligned buffer with value semantics. Alignment keeps GEMM panels
// on cache-line boundaries and lets concurrently-updated model shards avoid
// straddling lines.
template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count) { allocate(count); }

  AlignedBuffer(const AlignedBuffer& other) {
    allocate(other.count_);
    if (count_ > 0) std::memcpy(data_, other.data_, count_ * sizeof(T));
  }

  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this == &other) return *this;
    if (count_ != other.count_) {
      release();
      allocate(other.count_);
    }
    if (count_ > 0) std::memcpy(data_, other.data_, count_ * sizeof(T));
    return *this;
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        count_(std::exchange(other.count_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this == &other) return *this;
    release();
    data_ = std::exchange(other.data_, nullptr);
    count_ = std::exchange(other.count_, 0);
    return *this;
  }

  ~AlignedBuffer() { release(); }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  void fill_zero() {
    if (count_ > 0) std::memset(data_, 0, count_ * sizeof(T));
  }

 private:
  void allocate(std::size_t count) {
    count_ = count;
    if (count == 0) {
      data_ = nullptr;
      return;
    }
    std::size_t bytes = count * sizeof(T);
    // aligned_alloc requires size to be a multiple of alignment.
    bytes = (bytes + hetsgd::kCacheLineSize - 1) / hetsgd::kCacheLineSize *
            hetsgd::kCacheLineSize;
    data_ = static_cast<T*>(std::aligned_alloc(hetsgd::kCacheLineSize, bytes));
    HETSGD_ASSERT(data_ != nullptr, "aligned allocation failed");
  }

  void release() {
    std::free(data_);
    data_ = nullptr;
    count_ = 0;
  }

  T* data_ = nullptr;
  std::size_t count_ = 0;
};

}  // namespace hetsgd::tensor
