// Scalar type used across the library.
//
// The paper trains in float32; we use float64 because the experiments here
// run under virtual time (absolute FLOP speed is charged by the perf model,
// not measured), and double precision makes the finite-difference gradient
// checks in the test suite exact enough to be trustworthy.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hetsgd::tensor {

using Scalar = double;

// Index type for matrix dimensions. Signed arithmetic keeps blocked-loop
// bounds simple; dimensions are validated non-negative at construction.
using Index = std::int64_t;

}  // namespace hetsgd::tensor
