// Element-wise and reduction primitives over matrices/vectors.
//
// Together with GEMM these cover every linear-algebra operation the MLP
// layers and SGD updates need — the full set the paper obtains from
// MKL/cuBLAS.
//
// The hot loops are vectorized with `#pragma omp simd` over
// restrict-qualified pointers: operands of any one call must not overlap
// in memory (distinct matrices, or the documented in-place destination
// only). All existing call sites satisfy this.
#pragma once

#include "common/rng.hpp"
#include "tensor/matrix.hpp"

namespace hetsgd::tensor {

// y += alpha * x (same shape).
void axpy(Scalar alpha, ConstMatrixView x, MatrixView y);

// x *= alpha.
void scale(Scalar alpha, MatrixView x);

// out = a - b (same shape).
void sub(ConstMatrixView a, ConstMatrixView b, MatrixView out);

// y ⊙= x (element-wise multiply in place).
void hadamard_inplace(ConstMatrixView x, MatrixView y);

// Adds row-vector `bias` (1 x cols) to every row of m.
void add_row_bias(ConstMatrixView bias, MatrixView m);

// out(1 x cols) = column sums of m. Used for bias gradients.
void col_sums(ConstMatrixView m, MatrixView out);

// Frobenius norm and squared norm.
Scalar frobenius_norm_sq(ConstMatrixView m);
Scalar frobenius_norm(ConstMatrixView m);

// Max |a - b| over all elements; shapes must match.
Scalar max_abs_diff(ConstMatrixView a, ConstMatrixView b);

// Sum of all elements.
Scalar sum(ConstMatrixView m);

// Fills with draws from N(mean, stddev).
void fill_normal(MatrixView m, Rng& rng, Scalar mean, Scalar stddev);

// Fills with draws from U[lo, hi).
void fill_uniform(MatrixView m, Rng& rng, Scalar lo, Scalar hi);

// In-place row-wise softmax with max-subtraction for stability.
void softmax_rows(MatrixView m);

// True if every element is finite.
bool all_finite(ConstMatrixView m);

}  // namespace hetsgd::tensor
