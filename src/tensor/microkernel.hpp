// Register-blocked GEMM micro-kernel and its C write-back epilogues.
//
// The micro-kernel multiplies one packed A row-panel (kMR rows, k-major)
// by one packed B column-panel (kNR cols, k-major) into a kMR x kNR
// accumulator tile that lives entirely in vector registers. Packing (see
// pack.hpp) guarantees both operands are contiguous and zero-padded to the
// full tile, so the kernel has no edge branches; ragged C edges are handled
// only at write-back. `#pragma omp simd` over the kNR accumulator columns
// keeps the kernel portable (any OpenMP-SIMD compiler) while vectorizing
// the fused multiply-adds.
#pragma once

#include <cmath>

#include "common/macros.hpp"
#include "tensor/types.hpp"

namespace hetsgd::tensor {

// Fused epilogue applied during the final-k-block write-back of
// gemm_bias_act: C = act(Z + bias) with Z the GEMM result. Mirrors
// nn::Activation; defined here because tensor cannot depend on nn.
enum class Epilogue {
  kBias,         // C = Z + bias (output/logit layers)
  kBiasSigmoid,  // C = 1 / (1 + exp(-(Z + bias)))
  kBiasTanh,     // C = tanh(Z + bias)
  kBiasRelu,     // C = max(Z + bias, 0)
};

namespace detail {

// Register tile. 4x16 doubles = 64 accumulators: 8 AVX-512 registers (16
// AVX2), leaving room for the B row and the A broadcasts; two vectors per
// accumulator row halves the broadcast pressure per FMA. (On baseline
// SSE2 the accumulators spill to L1, but the packed layout keeps even that
// case ahead of the seed kernel — measured in bench/micro_gemm.)
inline constexpr Index kMR = 4;
inline constexpr Index kNR = 16;

// Cache blocking (double precision, 32KB L1 / 256KB-1MB L2 class cores):
// one packed B block (kKC x kNC) streams by column panels of kKC*kNR*8 =
// 16KB (L1-resident), one packed A block (kMC x kKC) is 128KB
// (L2-resident). Correctness does not depend on these values; kMC and kNC
// are multiples of kMR/kNR so packed panels are never split.
inline constexpr Index kMC = 64;
inline constexpr Index kKC = 256;
inline constexpr Index kNC = 256;

// acc[kMR*kNR] = apanel * bpanel over the shared dimension kc.
// apanel: k-major, kMR contiguous rows per k. bpanel: k-major, kNR
// contiguous cols per k. Both zero-padded to the full tile by packing.
inline void micro_kernel(Index kc, const Scalar* HETSGD_RESTRICT apanel,
                         const Scalar* HETSGD_RESTRICT bpanel,
                         Scalar* HETSGD_RESTRICT acc) {
  for (Index i = 0; i < kMR * kNR; ++i) acc[i] = 0;
  for (Index k = 0; k < kc; ++k) {
    const Scalar* HETSGD_RESTRICT a = apanel + k * kMR;
    const Scalar* HETSGD_RESTRICT b = bpanel + k * kNR;
    for (Index r = 0; r < kMR; ++r) {
      const Scalar ar = a[r];
#pragma omp simd
      for (Index j = 0; j < kNR; ++j) {
        acc[r * kNR + j] += ar * b[j];
      }
    }
  }
}

// C[0:mrem, 0:nrem] += alpha * acc. mrem/nrem < full tile only on the
// ragged bottom/right edges of the matrix.
inline void store_tile(const Scalar* HETSGD_RESTRICT acc, Scalar alpha,
                       Scalar* HETSGD_RESTRICT c, Index ldc, Index mrem,
                       Index nrem) {
  for (Index r = 0; r < mrem; ++r) {
    Scalar* HETSGD_RESTRICT crow = c + r * ldc;
    const Scalar* HETSGD_RESTRICT arow = acc + r * kNR;
#pragma omp simd
    for (Index j = 0; j < nrem; ++j) {
      crow[j] += alpha * arow[j];
    }
  }
}

inline Scalar epilogue_apply(Epilogue e, Scalar z) {
  switch (e) {
    case Epilogue::kBias:        return z;
    case Epilogue::kBiasSigmoid: return Scalar{1} / (Scalar{1} + std::exp(-z));
    case Epilogue::kBiasTanh:    return std::tanh(z);
    case Epilogue::kBiasRelu:    return z > 0 ? z : Scalar{0};
  }
  HETSGD_UNREACHABLE("unknown epilogue");
}

// c[0:n] = act(c[0:n] + bias[0:n]). The epilogue is a compile-time
// template parameter so the activation dispatch happens once per row, not
// once per element. The polynomial branches (bias, relu) vectorize; the
// transcendental branches stay plain scalar loops on purpose — scalar
// libm's range-reduction fast paths (e.g. saturated tanh) beat the
// fixed-cost simd variants on the wide pre-activation values GEMM
// produces.
template <Epilogue E>
inline void epilogue_row_impl(Scalar* HETSGD_RESTRICT c,
                              const Scalar* HETSGD_RESTRICT bias, Index n) {
  if constexpr (E == Epilogue::kBias || E == Epilogue::kBiasRelu) {
#pragma omp simd
    for (Index j = 0; j < n; ++j) {
      const Scalar z = c[j] + bias[j];
      if constexpr (E == Epilogue::kBias) {
        c[j] = z;
      } else {
        c[j] = z > 0 ? z : Scalar{0};
      }
    }
  } else {
    for (Index j = 0; j < n; ++j) {
      const Scalar z = c[j] + bias[j];
      if constexpr (E == Epilogue::kBiasSigmoid) {
        c[j] = Scalar{1} / (Scalar{1} + std::exp(-z));
      } else {
        c[j] = std::tanh(z);
      }
    }
  }
}

inline void epilogue_row(Epilogue e, Scalar* HETSGD_RESTRICT c,
                         const Scalar* HETSGD_RESTRICT bias, Index n) {
  switch (e) {
    case Epilogue::kBias:
      return epilogue_row_impl<Epilogue::kBias>(c, bias, n);
    case Epilogue::kBiasSigmoid:
      return epilogue_row_impl<Epilogue::kBiasSigmoid>(c, bias, n);
    case Epilogue::kBiasTanh:
      return epilogue_row_impl<Epilogue::kBiasTanh>(c, bias, n);
    case Epilogue::kBiasRelu:
      return epilogue_row_impl<Epilogue::kBiasRelu>(c, bias, n);
  }
  HETSGD_UNREACHABLE("unknown epilogue");
}

}  // namespace detail
}  // namespace hetsgd::tensor
