// Row-major dense matrix and non-owning views.
#pragma once

#include <initializer_list>
#include <string>

#include "tensor/buffer.hpp"
#include "tensor/types.hpp"

namespace hetsgd::tensor {

class MatrixView;
class ConstMatrixView;

// Owning row-major matrix of Scalar. Vectors are represented as 1×n or n×1
// matrices; the NN layers always batch, so 2-D is the only shape needed.
class Matrix {
 public:
  Matrix() = default;
  Matrix(Index rows, Index cols);

  // Rows-of-rows initializer for tests: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<Scalar>> rows);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  Scalar* data() { return buf_.data(); }
  const Scalar* data() const { return buf_.data(); }

  Scalar& at(Index r, Index c);
  Scalar at(Index r, Index c) const;

  Scalar& operator()(Index r, Index c) { return buf_[r * cols_ + c]; }
  Scalar operator()(Index r, Index c) const { return buf_[r * cols_ + c]; }

  Scalar* row(Index r) { return buf_.data() + r * cols_; }
  const Scalar* row(Index r) const { return buf_.data() + r * cols_; }

  void set_zero() { buf_.fill_zero(); }
  void fill(Scalar v);

  // Reshape without reallocation; total size must match.
  void reshape(Index rows, Index cols);

  // Resize discarding contents (no-op if the shape already matches).
  void resize(Index rows, Index cols);

  MatrixView view();
  ConstMatrixView view() const;
  MatrixView rows_view(Index first, Index count);
  ConstMatrixView rows_view(Index first, Index count) const;

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  std::string shape_str() const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  AlignedBuffer<Scalar> buf_;
};

// Non-owning mutable view over contiguous rows of a Matrix (or any
// row-major storage). Used for batch slices of the training data and for
// model shards updated in place by Hogwild threads.
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(Scalar* data, Index rows, Index cols)
      : data_(data), rows_(rows), cols_(cols) {}

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index size() const { return rows_ * cols_; }
  Scalar* data() const { return data_; }

  Scalar& operator()(Index r, Index c) const { return data_[r * cols_ + c]; }
  Scalar* row(Index r) const { return data_ + r * cols_; }

  MatrixView rows_view(Index first, Index count) const;

 private:
  Scalar* data_ = nullptr;
  Index rows_ = 0;
  Index cols_ = 0;
};

class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  ConstMatrixView(const Scalar* data, Index rows, Index cols)
      : data_(data), rows_(rows), cols_(cols) {}
  // Implicit from a mutable view.
  ConstMatrixView(MatrixView v) : data_(v.data()), rows_(v.rows()), cols_(v.cols()) {}

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index size() const { return rows_ * cols_; }
  const Scalar* data() const { return data_; }

  Scalar operator()(Index r, Index c) const { return data_[r * cols_ + c]; }
  const Scalar* row(Index r) const { return data_ + r * cols_; }

  ConstMatrixView rows_view(Index first, Index count) const;

 private:
  const Scalar* data_ = nullptr;
  Index rows_ = 0;
  Index cols_ = 0;
};

}  // namespace hetsgd::tensor
