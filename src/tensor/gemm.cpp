#include "tensor/gemm.hpp"

#include <algorithm>

#include "common/macros.hpp"

namespace hetsgd::tensor {

namespace {

// Block sizes tuned for double on a 32KB L1 / 256KB L2 core — the same
// hierarchy as the paper's Xeon (Table I). Correctness does not depend on
// these values.
constexpr Index kBlockM = 64;
constexpr Index kBlockN = 64;
constexpr Index kBlockK = 128;

inline Scalar get(ConstMatrixView m, Trans t, Index r, Index c) {
  return t == Trans::kNo ? m(r, c) : m(c, r);
}

}  // namespace

GemmDims check_gemm_shapes(Trans ta, Trans tb, ConstMatrixView a,
                           ConstMatrixView b, ConstMatrixView c) {
  Index m = ta == Trans::kNo ? a.rows() : a.cols();
  Index ka = ta == Trans::kNo ? a.cols() : a.rows();
  Index kb = tb == Trans::kNo ? b.rows() : b.cols();
  Index n = tb == Trans::kNo ? b.cols() : b.rows();
  HETSGD_ASSERT(ka == kb, "gemm inner dimensions mismatch");
  HETSGD_ASSERT(c.rows() == m && c.cols() == n, "gemm output shape mismatch");
  return GemmDims{m, n, ka};
}

void gemm_naive(Trans ta, Trans tb, Scalar alpha, ConstMatrixView a,
                ConstMatrixView b, Scalar beta, MatrixView c) {
  GemmDims d = check_gemm_shapes(ta, tb, a, b, c);
  for (Index i = 0; i < d.m; ++i) {
    for (Index j = 0; j < d.n; ++j) {
      Scalar acc = 0;
      for (Index k = 0; k < d.k; ++k) {
        acc += get(a, ta, i, k) * get(b, tb, k, j);
      }
      c(i, j) = alpha * acc + beta * c(i, j);
    }
  }
}

namespace {

// Inner kernel over one (mb x nb x kb) block, accumulating into C.
// The nn case uses i-k-j ordering so the innermost loop streams both B and C
// rows; the transposed variants are laid out for the same property.
void block_nn(Scalar alpha, ConstMatrixView a, ConstMatrixView b, MatrixView c,
              Index i0, Index i1, Index j0, Index j1, Index k0, Index k1) {
  for (Index i = i0; i < i1; ++i) {
    Scalar* crow = c.row(i);
    const Scalar* arow = a.row(i);
    for (Index k = k0; k < k1; ++k) {
      const Scalar aik = alpha * arow[k];
      const Scalar* brow = b.row(k);
      for (Index j = j0; j < j1; ++j) {
        crow[j] += aik * brow[j];
      }
    }
  }
}

void block_nt(Scalar alpha, ConstMatrixView a, ConstMatrixView b, MatrixView c,
              Index i0, Index i1, Index j0, Index j1, Index k0, Index k1) {
  // C(i,j) += sum_k A(i,k) * B(j,k): dot product of two contiguous rows.
  for (Index i = i0; i < i1; ++i) {
    const Scalar* arow = a.row(i);
    Scalar* crow = c.row(i);
    for (Index j = j0; j < j1; ++j) {
      const Scalar* brow = b.row(j);
      Scalar acc = 0;
      for (Index k = k0; k < k1; ++k) {
        acc += arow[k] * brow[k];
      }
      crow[j] += alpha * acc;
    }
  }
}

void block_tn(Scalar alpha, ConstMatrixView a, ConstMatrixView b, MatrixView c,
              Index i0, Index i1, Index j0, Index j1, Index k0, Index k1) {
  // C(i,j) += sum_k A(k,i) * B(k,j): stream rows of A and B together.
  for (Index k = k0; k < k1; ++k) {
    const Scalar* arow = a.row(k);
    const Scalar* brow = b.row(k);
    for (Index i = i0; i < i1; ++i) {
      const Scalar aki = alpha * arow[i];
      Scalar* crow = c.row(i);
      for (Index j = j0; j < j1; ++j) {
        crow[j] += aki * brow[j];
      }
    }
  }
}

void block_tt(Scalar alpha, ConstMatrixView a, ConstMatrixView b, MatrixView c,
              Index i0, Index i1, Index j0, Index j1, Index k0, Index k1) {
  for (Index i = i0; i < i1; ++i) {
    Scalar* crow = c.row(i);
    for (Index j = j0; j < j1; ++j) {
      Scalar acc = 0;
      for (Index k = k0; k < k1; ++k) {
        acc += a(k, i) * b(j, k);
      }
      crow[j] += alpha * acc;
    }
  }
}

}  // namespace

void gemm(Trans ta, Trans tb, Scalar alpha, ConstMatrixView a,
          ConstMatrixView b, Scalar beta, MatrixView c) {
  GemmDims d = check_gemm_shapes(ta, tb, a, b, c);

  // Apply beta once up front so the k-blocked accumulation below can always
  // use +=.
  if (beta == Scalar{0}) {
    for (Index i = 0; i < d.m; ++i) {
      std::fill(c.row(i), c.row(i) + d.n, Scalar{0});
    }
  } else if (beta != Scalar{1}) {
    for (Index i = 0; i < d.m; ++i) {
      Scalar* crow = c.row(i);
      for (Index j = 0; j < d.n; ++j) crow[j] *= beta;
    }
  }

#pragma omp parallel for schedule(static) if (d.m >= 2 * kBlockM)
  for (Index i0 = 0; i0 < d.m; i0 += kBlockM) {
    const Index i1 = std::min(i0 + kBlockM, d.m);
    for (Index k0 = 0; k0 < d.k; k0 += kBlockK) {
      const Index k1 = std::min(k0 + kBlockK, d.k);
      for (Index j0 = 0; j0 < d.n; j0 += kBlockN) {
        const Index j1 = std::min(j0 + kBlockN, d.n);
        if (ta == Trans::kNo && tb == Trans::kNo) {
          block_nn(alpha, a, b, c, i0, i1, j0, j1, k0, k1);
        } else if (ta == Trans::kNo && tb == Trans::kYes) {
          block_nt(alpha, a, b, c, i0, i1, j0, j1, k0, k1);
        } else if (ta == Trans::kYes && tb == Trans::kNo) {
          block_tn(alpha, a, b, c, i0, i1, j0, j1, k0, k1);
        } else {
          block_tt(alpha, a, b, c, i0, i1, j0, j1, k0, k1);
        }
      }
    }
  }
}

void matmul_nt(ConstMatrixView x, ConstMatrixView w, MatrixView out) {
  gemm(Trans::kNo, Trans::kYes, Scalar{1}, x, w, Scalar{0}, out);
}

void matmul_tn(ConstMatrixView a, ConstMatrixView b, MatrixView out) {
  gemm(Trans::kYes, Trans::kNo, Scalar{1}, a, b, Scalar{0}, out);
}

void matmul_nn(ConstMatrixView a, ConstMatrixView b, MatrixView out) {
  gemm(Trans::kNo, Trans::kNo, Scalar{1}, a, b, Scalar{0}, out);
}

double gemm_flops(Index m, Index n, Index k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}

}  // namespace hetsgd::tensor
