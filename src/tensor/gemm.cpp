#include "tensor/gemm.hpp"

#include <algorithm>
#include <cmath>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "common/macros.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/microkernel.hpp"
#include "tensor/pack.hpp"

namespace hetsgd::tensor {

namespace {

// GEMM is the hottest function in the process: the tiny Hogwild products
// (m=1) run millions of times, so they must never touch the tracer. Only
// products at least this many flops emit a span; the counter below is a
// sharded atomic and is always cheap enough to keep.
constexpr double kTraceFlopThreshold = 1e7;

obs::Counter& gemm_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("hetsgd_host_gemms_total");
  return c;
}

using detail::kKC;
using detail::kMC;
using detail::kMR;
using detail::kNC;
using detail::kNR;

inline Scalar get(ConstMatrixView m, Trans t, Index r, Index c) {
  return t == Trans::kNo ? m(r, c) : m(c, r);
}

}  // namespace

GemmDims check_gemm_shapes(Trans ta, Trans tb, ConstMatrixView a,
                           ConstMatrixView b, ConstMatrixView c) {
  Index m = ta == Trans::kNo ? a.rows() : a.cols();
  Index ka = ta == Trans::kNo ? a.cols() : a.rows();
  Index kb = tb == Trans::kNo ? b.rows() : b.cols();
  Index n = tb == Trans::kNo ? b.cols() : b.rows();
  HETSGD_ASSERT(ka == kb, "gemm inner dimensions mismatch");
  HETSGD_ASSERT(c.rows() == m && c.cols() == n, "gemm output shape mismatch");
  return GemmDims{m, n, ka};
}

void gemm_naive(Trans ta, Trans tb, Scalar alpha, ConstMatrixView a,
                ConstMatrixView b, Scalar beta, MatrixView c) {
  GemmDims d = check_gemm_shapes(ta, tb, a, b, c);
  for (Index i = 0; i < d.m; ++i) {
    for (Index j = 0; j < d.n; ++j) {
      Scalar acc = 0;
      for (Index k = 0; k < d.k; ++k) {
        acc += get(a, ta, i, k) * get(b, tb, k, j);
      }
      c(i, j) = alpha * acc + beta * c(i, j);
    }
  }
}

namespace {

// One fully-described packed-GEMM problem. Raw pointers + leading
// dimensions rather than views so parallel workers can address disjoint
// row/column ranges of C directly.
struct PackedGemm {
  const Scalar* a;
  Index lda;
  bool ta;
  const Scalar* b;
  Index ldb;
  bool tb;
  Scalar* c;
  Index ldc;
  Index k;
  Scalar alpha;
  // Fused epilogue (gemm_bias_act): applied during the final k-block
  // write-back. bias == nullptr means plain accumulate.
  const Scalar* bias;
  Epilogue epilogue;
};

// Per-thread packing scratch: reused across calls (no steady-state
// allocation) and never shared between parallel workers.
thread_local detail::PackBuffer tl_pack_a;
thread_local detail::PackBuffer tl_pack_b;

// Serial pack-and-microkernel GEMM over C[m0:m1, n0:n1]. C must already
// hold beta * C_in (or zeros); every k block accumulates with +=, and the
// final k block applies the fused epilogue if one is set. The loop nest is
// jc -> pc -> ic (BLIS-style): the packed B block is reused across all row
// blocks, and for a fixed jc the last pc iteration finalizes every C tile
// in the column block, which is what makes epilogue fusion a pure
// write-back property.
void gemm_packed_range(const PackedGemm& g, Index m0, Index m1, Index n0,
                       Index n1) {
  Scalar* pa = tl_pack_a.ensure(static_cast<std::size_t>(kMC * kKC));
  Scalar* pb = tl_pack_b.ensure(static_cast<std::size_t>(kNC * kKC));
  for (Index jc = n0; jc < n1; jc += kNC) {
    const Index nc = std::min(kNC, n1 - jc);
    for (Index pc = 0; pc < g.k; pc += kKC) {
      const Index kc = std::min(kKC, g.k - pc);
      const bool last_k = pc + kc == g.k;
      detail::pack_b(g.b, g.ldb, g.tb, pc, kc, jc, nc, pb);
      for (Index ic = m0; ic < m1; ic += kMC) {
        const Index mc = std::min(kMC, m1 - ic);
        detail::pack_a(g.a, g.lda, g.ta, ic, mc, pc, kc, pa);
        for (Index jr = 0; jr < nc; jr += kNR) {
          const Index nrem = std::min(kNR, nc - jr);
          const Scalar* bpanel = pb + (jr / kNR) * (kNR * kc);
          for (Index ir = 0; ir < mc; ir += kMR) {
            const Index mrem = std::min(kMR, mc - ir);
            const Scalar* apanel = pa + (ir / kMR) * (kMR * kc);
            Scalar acc[kMR * kNR];
            detail::micro_kernel(kc, apanel, bpanel, acc);
            Scalar* ctile = g.c + (ic + ir) * g.ldc + (jc + jr);
            detail::store_tile(acc, g.alpha, ctile, g.ldc, mrem, nrem);
          }
        }
        if (g.bias != nullptr && last_k) {
          // All C rows of this (ic, jc) block are final: apply the fused
          // epilogue while they are still cache-hot, in nc-wide row passes
          // (amortizes the activation dispatch far better than per-tile).
          for (Index r = 0; r < mc; ++r) {
            detail::epilogue_row(g.epilogue, g.c + (ic + r) * g.ldc + jc,
                                 g.bias + jc, nc);
          }
        }
      }
    }
  }
}

// Skinny-m fast path. For m below the register-tile scale, packing B
// costs O(n*k) — the same order as the whole product — so the packed
// engine loses to direct streaming kernels (the m=1 Hogwild case pays ~3x
// for packing). Both skinny kernels stream contiguous rows, vectorize via
// omp simd, and support the fused epilogue. Only ta == kNo shapes take
// this path: the skinny-m products in training (forward x*W^T, delta
// propagation delta*W) are untransposed in A, while op(A)-transposed
// products (dW = delta^T*prev) have m = layer width, never skinny.
constexpr Index kSkinnyM = 8;

// NT: C(i,j) += alpha * dot(A row i, B row j) — both rows contiguous.
// The fused epilogue runs as a separate row pass so the dot loop nest
// stays free of libm calls and activation dispatch.
void skinny_nt_range(const PackedGemm& g, Index m, Index j0, Index j1) {
  for (Index i = 0; i < m; ++i) {
    const Scalar* HETSGD_RESTRICT arow = g.a + i * g.lda;
    Scalar* HETSGD_RESTRICT crow = g.c + i * g.ldc;
    for (Index j = j0; j < j1; ++j) {
      const Scalar* HETSGD_RESTRICT brow = g.b + j * g.ldb;
      Scalar acc = 0;
#pragma omp simd reduction(+ : acc)
      for (Index k = 0; k < g.k; ++k) acc += arow[k] * brow[k];
      crow[j] += g.alpha * acc;
    }
    if (g.bias != nullptr) {
      detail::epilogue_row(g.epilogue, crow + j0, g.bias + j0, j1 - j0);
    }
  }
}

// NN: stream B rows, C row stays L1-resident across k. The fused epilogue
// needs the completed sum, so it runs as a final pass over the (cached)
// C row rather than inside the k loop.
void skinny_nn_range(const PackedGemm& g, Index m, Index j0, Index j1) {
  for (Index i = 0; i < m; ++i) {
    const Scalar* HETSGD_RESTRICT arow = g.a + i * g.lda;
    Scalar* HETSGD_RESTRICT crow = g.c + i * g.ldc;
    for (Index k = 0; k < g.k; ++k) {
      const Scalar aik = g.alpha * arow[k];
      const Scalar* HETSGD_RESTRICT brow = g.b + k * g.ldb;
#pragma omp simd
      for (Index j = j0; j < j1; ++j) crow[j] += aik * brow[j];
    }
    if (g.bias != nullptr) {
      detail::epilogue_row(g.epilogue, crow + j0, g.bias + j0, j1 - j0);
    }
  }
}

// Shape-aware schedule: which C dimension to partition across threads, and
// how many threads are worth waking.
struct Schedule {
  bool split_n;
  int threads;
};

Schedule plan_schedule(Index m, Index n, Index k) {
  int max_threads = 1;
#ifdef _OPENMP
  max_threads = omp_get_max_threads();
#endif
  const Index m_tiles = (m + kMR - 1) / kMR;
  const Index n_tiles = (n + kNR - 1) / kNR;
  // Partition the dimension with more register tiles: rows for tall
  // GPU-style batches, columns (the layer width) for the skinny-m shapes
  // the CPU Hogbatch workers run — which the seed kernel's
  // `if (m >= 2 * blockM)` gate left permanently serial.
  const bool split_n = n_tiles > m_tiles;
  const Index tiles = split_n ? n_tiles : m_tiles;
  // Each thread must be worth its fork/join + redundant packing of the
  // unsplit operand: require ~256 kflop per thread.
  const double flops = gemm_flops(m, n, k);
  const double by_work = std::max(1.0, flops / 262144.0);
  int threads = static_cast<int>(std::min<double>(max_threads, by_work));
  threads = std::max(1, std::min(threads, static_cast<int>(
                                              std::min<Index>(tiles, 1024))));
  return Schedule{split_n, threads};
}

// Runs the skinny engine, partitioning columns across threads (the only
// dimension with parallelism when m is tiny — the seed kernel ran these
// shapes serial). Elements are computed independently, so the result is
// bit-identical for any thread count.
void run_skinny(const PackedGemm& g, bool nt, Index m, Index n) {
  const Schedule s = plan_schedule(m, n, g.k);
  auto range = [&](Index j0, Index j1) {
    if (nt) {
      skinny_nt_range(g, m, j0, j1);
    } else {
      skinny_nn_range(g, m, j0, j1);
    }
  };
#ifdef _OPENMP
  if (s.threads > 1) {
#pragma omp parallel num_threads(s.threads)
    {
      const Index nth = omp_get_num_threads();
      const Index tid = omp_get_thread_num();
      const Index tiles = (n + kNR - 1) / kNR;
      const Index lo = tiles * tid / nth * kNR;
      const Index hi = std::min(n, tiles * (tid + 1) / nth * kNR);
      if (lo < hi) range(lo, hi);
    }
    return;
  }
#endif
  range(0, n);
}

// Runs the packed engine over the whole of C with the planned partition.
// Every C tile is owned by exactly one thread and k-blocks are reduced in
// a fixed order, so the result is bit-identical for any thread count.
void run_packed(const PackedGemm& g, Index m, Index n) {
  const Schedule s = plan_schedule(m, n, g.k);
#ifdef _OPENMP
  if (s.threads > 1) {
#pragma omp parallel num_threads(s.threads)
    {
      const Index nth = omp_get_num_threads();
      const Index tid = omp_get_thread_num();
      if (s.split_n) {
        const Index tiles = (n + kNR - 1) / kNR;
        const Index lo = tiles * tid / nth * kNR;
        const Index hi = std::min(n, tiles * (tid + 1) / nth * kNR);
        if (lo < hi) gemm_packed_range(g, 0, m, lo, hi);
      } else {
        const Index tiles = (m + kMR - 1) / kMR;
        const Index lo = tiles * tid / nth * kMR;
        const Index hi = std::min(m, tiles * (tid + 1) / nth * kMR);
        if (lo < hi) gemm_packed_range(g, lo, hi, 0, n);
      }
    }
    return;
  }
#endif
  gemm_packed_range(g, 0, m, 0, n);
}

// Applies beta to C so the k-blocked accumulation can always use +=.
void scale_c(MatrixView c, Index m, Index n, Scalar beta) {
  if (beta == Scalar{0}) {
    for (Index i = 0; i < m; ++i) {
      std::fill(c.row(i), c.row(i) + n, Scalar{0});
    }
  } else if (beta != Scalar{1}) {
    for (Index i = 0; i < m; ++i) {
      Scalar* HETSGD_RESTRICT crow = c.row(i);
#pragma omp simd
      for (Index j = 0; j < n; ++j) crow[j] *= beta;
    }
  }
}

}  // namespace

void gemm(Trans ta, Trans tb, Scalar alpha, ConstMatrixView a,
          ConstMatrixView b, Scalar beta, MatrixView c) {
  GemmDims d = check_gemm_shapes(ta, tb, a, b, c);
  scale_c(c, d.m, d.n, beta);
  if (d.k == 0 || d.m == 0 || d.n == 0 || alpha == Scalar{0}) return;
  PackedGemm g{a.data(), a.cols(), ta == Trans::kYes,
               b.data(), b.cols(), tb == Trans::kYes,
               c.data(), c.cols(), d.k,    alpha,
               nullptr,  Epilogue::kBias};
  gemm_counter().inc();
  HETSGD_TRACE_SPAN(span, "tensor",
                    gemm_flops(d.m, d.n, d.k) >= kTraceFlopThreshold
                        ? "packed_gemm"
                        : nullptr);
  if (ta == Trans::kNo && d.m < kSkinnyM) {
    run_skinny(g, tb == Trans::kYes, d.m, d.n);
  } else {
    run_packed(g, d.m, d.n);
  }
}

void gemm_bias_act(Trans ta, Trans tb, Scalar alpha, ConstMatrixView a,
                   ConstMatrixView b, MatrixView c, ConstMatrixView bias,
                   Epilogue epilogue) {
  GemmDims d = check_gemm_shapes(ta, tb, a, b, c);
  HETSGD_ASSERT(bias.rows() == 1 && bias.cols() == d.n,
                "gemm_bias_act bias shape mismatch");
  scale_c(c, d.m, d.n, Scalar{0});
  if (d.m == 0 || d.n == 0) return;
  if (d.k == 0 || alpha == Scalar{0}) {
    // Degenerate product: Z = 0, epilogue still applies.
    const Scalar* bv = bias.data();
    for (Index i = 0; i < d.m; ++i) {
      Scalar* crow = c.row(i);
      for (Index j = 0; j < d.n; ++j) {
        crow[j] = detail::epilogue_apply(epilogue, bv[j]);
      }
    }
    return;
  }
  PackedGemm g{a.data(), a.cols(), ta == Trans::kYes,
               b.data(), b.cols(), tb == Trans::kYes,
               c.data(), c.cols(), d.k,    alpha,
               bias.data(), epilogue};
  if (ta == Trans::kNo && d.m < kSkinnyM) {
    run_skinny(g, tb == Trans::kYes, d.m, d.n);
  } else {
    run_packed(g, d.m, d.n);
  }
}

void matmul_nt(ConstMatrixView x, ConstMatrixView w, MatrixView out) {
  gemm(Trans::kNo, Trans::kYes, Scalar{1}, x, w, Scalar{0}, out);
}

void matmul_tn(ConstMatrixView a, ConstMatrixView b, MatrixView out) {
  gemm(Trans::kYes, Trans::kNo, Scalar{1}, a, b, Scalar{0}, out);
}

void matmul_nn(ConstMatrixView a, ConstMatrixView b, MatrixView out) {
  gemm(Trans::kNo, Trans::kNo, Scalar{1}, a, b, Scalar{0}, out);
}

double gemm_flops(Index m, Index n, Index k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}

}  // namespace hetsgd::tensor
