#include "tensor/matrix.hpp"

#include <algorithm>
#include <sstream>

namespace hetsgd::tensor {

Matrix::Matrix(Index rows, Index cols)
    : rows_(rows), cols_(cols),
      buf_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols)) {
  HETSGD_ASSERT(rows >= 0 && cols >= 0, "negative matrix dimension");
  buf_.fill_zero();
}

Matrix::Matrix(std::initializer_list<std::initializer_list<Scalar>> rows) {
  rows_ = static_cast<Index>(rows.size());
  cols_ = rows_ > 0 ? static_cast<Index>(rows.begin()->size()) : 0;
  buf_ = AlignedBuffer<Scalar>(static_cast<std::size_t>(rows_ * cols_));
  Index r = 0;
  for (const auto& row : rows) {
    HETSGD_ASSERT(static_cast<Index>(row.size()) == cols_,
                  "ragged initializer list");
    std::copy(row.begin(), row.end(), buf_.data() + r * cols_);
    ++r;
  }
}

Scalar& Matrix::at(Index r, Index c) {
  HETSGD_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                "matrix index out of range");
  return buf_[r * cols_ + c];
}

Scalar Matrix::at(Index r, Index c) const {
  HETSGD_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                "matrix index out of range");
  return buf_[r * cols_ + c];
}

void Matrix::fill(Scalar v) {
  std::fill(buf_.data(), buf_.data() + size(), v);
}

void Matrix::reshape(Index rows, Index cols) {
  HETSGD_ASSERT(rows * cols == rows_ * cols_, "reshape changes element count");
  rows_ = rows;
  cols_ = cols;
}

void Matrix::resize(Index rows, Index cols) {
  HETSGD_ASSERT(rows >= 0 && cols >= 0, "negative matrix dimension");
  if (rows == rows_ && cols == cols_) return;
  rows_ = rows;
  cols_ = cols;
  buf_ = AlignedBuffer<Scalar>(static_cast<std::size_t>(rows) *
                               static_cast<std::size_t>(cols));
  buf_.fill_zero();
}

MatrixView Matrix::view() { return MatrixView(data(), rows_, cols_); }

ConstMatrixView Matrix::view() const {
  return ConstMatrixView(data(), rows_, cols_);
}

MatrixView Matrix::rows_view(Index first, Index count) {
  HETSGD_ASSERT(first >= 0 && count >= 0 && first + count <= rows_,
                "rows_view out of range");
  return MatrixView(data() + first * cols_, count, cols_);
}

ConstMatrixView Matrix::rows_view(Index first, Index count) const {
  HETSGD_ASSERT(first >= 0 && count >= 0 && first + count <= rows_,
                "rows_view out of range");
  return ConstMatrixView(data() + first * cols_, count, cols_);
}

MatrixView MatrixView::rows_view(Index first, Index count) const {
  HETSGD_ASSERT(first >= 0 && count >= 0 && first + count <= rows_,
                "rows_view out of range");
  return MatrixView(data_ + first * cols_, count, cols_);
}

ConstMatrixView ConstMatrixView::rows_view(Index first, Index count) const {
  HETSGD_ASSERT(first >= 0 && count >= 0 && first + count <= rows_,
                "rows_view out of range");
  return ConstMatrixView(data_ + first * cols_, count, cols_);
}

std::string Matrix::shape_str() const {
  std::ostringstream os;
  os << rows_ << "x" << cols_;
  return os.str();
}

}  // namespace hetsgd::tensor
