// Panel packing for the blocked GEMM (see microkernel.hpp for the layout
// the kernel consumes).
//
// Packing copies one cache block of op(A) / op(B) into a contiguous,
// aligned, zero-padded buffer:
//   A block (mc x kc) -> ceil(mc/kMR) row panels, each k-major with kMR
//     consecutive rows interleaved: panel[k*kMR + r] = op(A)(i0+r, p0+k).
//   B block (kc x nc) -> ceil(nc/kNR) column panels, each k-major with kNR
//     consecutive cols interleaved: panel[k*kNR + j] = op(B)(p0+k, j0+j).
// All four Trans combinations are resolved here, at pack time, by choosing
// the source walk order — the micro-kernel always sees the same contiguous
// unit-stride layout, which is what lets it stay branch-free and
// vectorized. Ragged panel edges are zero-padded so the kernel always runs
// a full kMR x kNR tile.
#pragma once

#include <algorithm>

#include "common/macros.hpp"
#include "tensor/buffer.hpp"
#include "tensor/microkernel.hpp"
#include "tensor/types.hpp"

namespace hetsgd::tensor::detail {

// Growable aligned scratch for packed panels. gemm.cpp keeps one per
// thread (thread_local), so packing never allocates in steady state and
// parallel workers never share write destinations.
class PackBuffer {
 public:
  Scalar* ensure(std::size_t count) {
    if (buf_.size() < count) buf_ = AlignedBuffer<Scalar>(count);
    return buf_.data();
  }

 private:
  AlignedBuffer<Scalar> buf_;
};

// Packs op(A)[i0 : i0+mc, p0 : p0+kc] from row-major storage `a` with
// leading dimension `lda`. `trans` selects op: op(A)(i,k) is a[i*lda+k]
// untransposed, a[k*lda+i] transposed.
inline void pack_a(const Scalar* a, Index lda, bool trans, Index i0, Index mc,
                   Index p0, Index kc, Scalar* HETSGD_RESTRICT dst) {
  for (Index ir = 0; ir < mc; ir += kMR) {
    const Index mr = std::min(kMR, mc - ir);
    if (!trans) {
      // Rows of `a` are contiguous in k: stream each row into the panel's
      // stride-kMR slots (the panel is L1-resident while being written).
      for (Index r = 0; r < mr; ++r) {
        const Scalar* HETSGD_RESTRICT src = a + (i0 + ir + r) * lda + p0;
        for (Index k = 0; k < kc; ++k) dst[k * kMR + r] = src[k];
      }
    } else {
      // op(A) row i is column i of `a`: row k of `a` is contiguous in i,
      // so walk k-major and copy kMR-wide slices.
      for (Index k = 0; k < kc; ++k) {
        const Scalar* HETSGD_RESTRICT src = a + (p0 + k) * lda + (i0 + ir);
        for (Index r = 0; r < mr; ++r) dst[k * kMR + r] = src[r];
      }
    }
    for (Index r = mr; r < kMR; ++r) {
      for (Index k = 0; k < kc; ++k) dst[k * kMR + r] = 0;
    }
    dst += kMR * kc;
  }
}

// Packs op(B)[p0 : p0+kc, j0 : j0+nc] from row-major storage `b` with
// leading dimension `ldb`. op(B)(k,j) is b[k*ldb+j] untransposed,
// b[j*ldb+k] transposed.
inline void pack_b(const Scalar* b, Index ldb, bool trans, Index p0, Index kc,
                   Index j0, Index nc, Scalar* HETSGD_RESTRICT dst) {
  for (Index jr = 0; jr < nc; jr += kNR) {
    const Index nr = std::min(kNR, nc - jr);
    if (!trans) {
      // Row k of `b` is contiguous in j: copy kNR-wide slices k-major.
      for (Index k = 0; k < kc; ++k) {
        const Scalar* HETSGD_RESTRICT src = b + (p0 + k) * ldb + (j0 + jr);
        for (Index j = 0; j < nr; ++j) dst[k * kNR + j] = src[j];
      }
    } else {
      // op(B) column j is row j of `b`, contiguous in k: stream each row
      // into the panel's stride-kNR slots. This is the TT/NT fix — the
      // seed kernel read b(j,k) with an lda-strided gather in its
      // innermost loop; here the strided walk happens once per block into
      // an L1-resident panel.
      for (Index j = 0; j < nr; ++j) {
        const Scalar* HETSGD_RESTRICT src = b + (j0 + jr + j) * ldb + p0;
        for (Index k = 0; k < kc; ++k) dst[k * kNR + j] = src[k];
      }
    }
    for (Index j = nr; j < kNR; ++j) {
      for (Index k = 0; k < kc; ++k) dst[k * kNR + j] = 0;
    }
    dst += kNR * kc;
  }
}

}  // namespace hetsgd::tensor::detail
