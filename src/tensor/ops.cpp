#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "common/macros.hpp"

namespace hetsgd::tensor {

namespace {

void check_same_shape(ConstMatrixView a, ConstMatrixView b, const char* what) {
  HETSGD_ASSERT(a.rows() == b.rows() && a.cols() == b.cols(), what);
}

}  // namespace

void axpy(Scalar alpha, ConstMatrixView x, MatrixView y) {
  check_same_shape(x, y, "axpy shape mismatch");
  const Scalar* HETSGD_RESTRICT xs = x.data();
  Scalar* HETSGD_RESTRICT ys = y.data();
  const Index n = x.size();
#pragma omp simd
  for (Index i = 0; i < n; ++i) {
    ys[i] += alpha * xs[i];
  }
}

void scale(Scalar alpha, MatrixView x) {
  Scalar* HETSGD_RESTRICT xs = x.data();
  const Index n = x.size();
#pragma omp simd
  for (Index i = 0; i < n; ++i) {
    xs[i] *= alpha;
  }
}

void sub(ConstMatrixView a, ConstMatrixView b, MatrixView out) {
  check_same_shape(a, b, "sub shape mismatch");
  check_same_shape(a, out, "sub output shape mismatch");
  const Scalar* HETSGD_RESTRICT as = a.data();
  const Scalar* HETSGD_RESTRICT bs = b.data();
  Scalar* HETSGD_RESTRICT os = out.data();
  const Index n = a.size();
#pragma omp simd
  for (Index i = 0; i < n; ++i) {
    os[i] = as[i] - bs[i];
  }
}

void hadamard_inplace(ConstMatrixView x, MatrixView y) {
  check_same_shape(x, y, "hadamard shape mismatch");
  const Scalar* HETSGD_RESTRICT xs = x.data();
  Scalar* HETSGD_RESTRICT ys = y.data();
  const Index n = x.size();
#pragma omp simd
  for (Index i = 0; i < n; ++i) {
    ys[i] *= xs[i];
  }
}

void add_row_bias(ConstMatrixView bias, MatrixView m) {
  HETSGD_ASSERT(bias.rows() == 1 && bias.cols() == m.cols(),
                "bias shape mismatch");
  const Scalar* HETSGD_RESTRICT b = bias.data();
  const Index cols = m.cols();
  for (Index r = 0; r < m.rows(); ++r) {
    Scalar* HETSGD_RESTRICT row = m.row(r);
#pragma omp simd
    for (Index c = 0; c < cols; ++c) {
      row[c] += b[c];
    }
  }
}

void col_sums(ConstMatrixView m, MatrixView out) {
  HETSGD_ASSERT(out.rows() == 1 && out.cols() == m.cols(),
                "col_sums output shape mismatch");
  Scalar* HETSGD_RESTRICT o = out.data();
  const Index cols = m.cols();
  std::fill(o, o + cols, Scalar{0});
  for (Index r = 0; r < m.rows(); ++r) {
    const Scalar* HETSGD_RESTRICT row = m.row(r);
    // Independent per-column accumulators: vectorizes without a reduction.
#pragma omp simd
    for (Index c = 0; c < cols; ++c) {
      o[c] += row[c];
    }
  }
}

Scalar frobenius_norm_sq(ConstMatrixView m) {
  const Scalar* d = m.data();
  Scalar acc = 0;
  const Index n = m.size();
  for (Index i = 0; i < n; ++i) {
    acc += d[i] * d[i];
  }
  return acc;
}

Scalar frobenius_norm(ConstMatrixView m) {
  return std::sqrt(frobenius_norm_sq(m));
}

Scalar max_abs_diff(ConstMatrixView a, ConstMatrixView b) {
  check_same_shape(a, b, "max_abs_diff shape mismatch");
  const Scalar* as = a.data();
  const Scalar* bs = b.data();
  Scalar best = 0;
  const Index n = a.size();
  for (Index i = 0; i < n; ++i) {
    best = std::max(best, std::abs(as[i] - bs[i]));
  }
  return best;
}

Scalar sum(ConstMatrixView m) {
  const Scalar* d = m.data();
  Scalar acc = 0;
  const Index n = m.size();
  for (Index i = 0; i < n; ++i) {
    acc += d[i];
  }
  return acc;
}

void fill_normal(MatrixView m, Rng& rng, Scalar mean, Scalar stddev) {
  Scalar* d = m.data();
  const Index n = m.size();
  for (Index i = 0; i < n; ++i) {
    d[i] = rng.normal(mean, stddev);
  }
}

void fill_uniform(MatrixView m, Rng& rng, Scalar lo, Scalar hi) {
  Scalar* d = m.data();
  const Index n = m.size();
  for (Index i = 0; i < n; ++i) {
    d[i] = rng.uniform(lo, hi);
  }
}

void softmax_rows(MatrixView m) {
  for (Index r = 0; r < m.rows(); ++r) {
    Scalar* row = m.row(r);
    Scalar mx = row[0];
    for (Index c = 1; c < m.cols(); ++c) mx = std::max(mx, row[c]);
    Scalar total = 0;
    for (Index c = 0; c < m.cols(); ++c) {
      row[c] = std::exp(row[c] - mx);
      total += row[c];
    }
    const Scalar inv = Scalar{1} / total;
    for (Index c = 0; c < m.cols(); ++c) row[c] *= inv;
  }
}

bool all_finite(ConstMatrixView m) {
  const Scalar* d = m.data();
  const Index n = m.size();
  for (Index i = 0; i < n; ++i) {
    if (!std::isfinite(d[i])) return false;
  }
  return true;
}

}  // namespace hetsgd::tensor
