#include "gpusim/perf_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/macros.hpp"
#include "tensor/gemm.hpp"

namespace hetsgd::gpusim {

DeviceSpec v100_spec() {
  DeviceSpec s;
  s.name = "V100";
  s.kind = DeviceKind::kGpu;
  // 80 SMs; ~14 TFLOP/s fp32 peak, ~75% achievable on large dense GEMM.
  s.peak_flops = 14e12;
  s.half_saturation_batch = 1024.0;  // utilization ~50% near batch 1k
  s.min_efficiency = 0.002;
  s.max_efficiency = 0.75;
  s.kernel_launch_seconds = 5e-6;
  s.link_bandwidth = 12e9;  // PCIe gen3 x16 effective
  s.link_latency_seconds = 10e-6;
  s.update_overhead_seconds = 0.0;
  s.memory_capacity = 16ULL << 30;  // Table I: 16 GB global memory
  s.lanes = 80;
  return s;
}

DeviceSpec xeon_spec(int threads) {
  HETSGD_ASSERT(threads > 0, "xeon_spec requires at least one thread");
  DeviceSpec s;
  s.name = "Xeon-" + std::to_string(threads) + "t";
  s.kind = DeviceKind::kCpu;
  // ~2.3 GHz, AVX-512 FMA: ~35 GFLOP/s/thread peak on dense GEMM. Hogwild's
  // per-example matrix-vector work is memory-bound, captured by the low
  // efficiency floor below rather than a lower peak.
  s.peak_flops = 35e9 * threads;
  s.half_saturation_batch = 8.0;  // CPUs saturate at tiny batch sizes
  // Efficiency bounds calibrated against the measured throughput of this
  // repo's packed micro-kernel GEMM on an AVX-512 host (HETSGD_NATIVE
  // build, scripts/bench_smoke.sh -> BENCH_gemm.json): ~75% of single-core
  // peak on dense 256^3/512-wide shapes, ~15% on the m=1 matrix-vector
  // Hogwild shape. The model's efficiency(1) = min + span/9 lands at 0.149
  // with these values, matching the measured skinny-shape fraction.
  s.min_efficiency = 0.08;        // matrix-vector: memory-bound
  s.max_efficiency = 0.70;
  s.kernel_launch_seconds = 2e-7;  // function call + OMP dispatch
  s.link_bandwidth = 0.0;          // shared memory: reference passing
  s.link_latency_seconds = 0.0;
  // Cache-coherency traffic of concurrent lock-free updates to the shared
  // model (the paper's NUMA "unexpected cache coherency effects", §V-A).
  s.update_overhead_seconds = 18e-6;
  // Read-modify-write of the full shared model per update: the two-socket
  // ~100 GB/s of raw bandwidth degrades to roughly half under the
  // cache-coherency (RFO + cross-socket invalidation) traffic of 56 lanes
  // hammering the same parameters, i.e. ~0.85 GB/s per lane. This constant
  // is calibrated so a CPU Hogwild epoch on the paper's covtype
  // configuration lands inside the measured 236-317x slowdown band
  // (verified by CostModel.PaperEpochRatioWithinMeasuredBand and printed
  // by bench/table1_hardware).
  s.update_bandwidth = 0.85e9;
  s.memory_capacity = 488ULL << 30;  // Table I: 488 GB
  s.lanes = threads;
  return s;
}

DeviceSpec xeon56_spec() { return xeon_spec(56); }

PerfModel::PerfModel(DeviceSpec spec) : spec_(std::move(spec)) {
  HETSGD_ASSERT(spec_.peak_flops > 0, "peak_flops must be positive");
  HETSGD_ASSERT(spec_.max_efficiency > 0 &&
                    spec_.max_efficiency >= spec_.min_efficiency,
                "efficiency bounds invalid");
}

double PerfModel::efficiency(double batch) const {
  if (batch < 1.0) batch = 1.0;
  // Michaelis-Menten saturation from min_efficiency up to max_efficiency.
  const double span = spec_.max_efficiency - spec_.min_efficiency;
  return spec_.min_efficiency +
         span * batch / (batch + spec_.half_saturation_batch);
}

double PerfModel::gemm_seconds(tensor::Index m, tensor::Index n,
                               tensor::Index k) const {
  const double flops = tensor::gemm_flops(m, n, k);
  const double eff = efficiency(static_cast<double>(m));
  return spec_.kernel_launch_seconds + flops / (spec_.peak_flops * eff);
}

double PerfModel::elementwise_seconds(std::uint64_t elements) const {
  // Element-wise kernels are bandwidth-bound: assume ~8 bytes in + 8 out per
  // element at 1/4 of peak-flops-equivalent bandwidth (a coarse but
  // monotone model; element-wise work is a small fraction of DNN cost).
  const double effective_rate = spec_.peak_flops * 0.02;
  return spec_.kernel_launch_seconds +
         static_cast<double>(elements) / effective_rate;
}

double PerfModel::transfer_seconds(std::uint64_t bytes) const {
  if (spec_.link_bandwidth <= 0.0) return 0.0;  // shared memory device
  return spec_.link_latency_seconds +
         static_cast<double>(bytes) / spec_.link_bandwidth;
}

double PerfModel::update_overhead_seconds(std::uint64_t updates) const {
  return spec_.update_overhead_seconds * static_cast<double>(updates);
}

double PerfModel::utilization(double batch) const {
  return std::clamp(efficiency(batch) / spec_.max_efficiency, 0.0, 1.0);
}

}  // namespace hetsgd::gpusim
