// Analytic device performance model.
//
// Charges virtual time for GEMMs, element-wise kernels, launches, and
// host<->device transfers. Calibrated against the paper's testbed (Table I:
// 2x18-core Xeon with 56 worker threads, NVIDIA Volta V100) so the
// *relative* behaviours its experiments rely on hold:
//   - an SGD epoch of CPU Hogwild is ~236-317x slower than GPU mini-batch
//     (paper §VII-B "Time to convergence");
//   - GPU utilization is ~50% at the lower batch-size threshold and close
//     to 100% at the upper one (§VII-A "Methodology");
//   - transfer cost makes tiny GPU batches unprofitable (launch latency +
//     PCIe dominate), which is why the paper keeps large batches on GPU.
#pragma once

#include <cstdint>
#include <string>

#include "tensor/types.hpp"

namespace hetsgd::gpusim {

enum class DeviceKind { kCpu, kGpu };

// Static description of a modeled device.
struct DeviceSpec {
  std::string name;
  DeviceKind kind = DeviceKind::kGpu;

  // Peak dense FLOP/s the device can sustain on large GEMMs.
  double peak_flops = 10e12;

  // Batch size at which GEMM efficiency reaches 50% of its asymptote.
  // Models the throughput-vs-batch saturation curve: small batches cannot
  // fill the device (GPU: thousands of idle CUDA cores; CPU: loop and
  // memory-latency overheads).
  double half_saturation_batch = 256.0;

  // Efficiency floor (fraction of peak) even for batch size 1: memory-bound
  // matrix-vector work still makes progress.
  double min_efficiency = 0.02;

  // Asymptotic efficiency at huge batches (fraction of peak).
  double max_efficiency = 0.75;

  // Fixed cost per kernel launch (GPU: driver + scheduling; CPU: loop/OMP
  // fork overhead, much smaller).
  double kernel_launch_seconds = 4e-6;

  // Host<->device link bandwidth in bytes/second and fixed per-transfer
  // latency. Zero-cost for CPU devices (shared memory, reference passing).
  double link_bandwidth = 12e9;
  double link_latency_seconds = 10e-6;

  // Per model update bookkeeping cost (lock-free CAS traffic, cache
  // coherency on the shared model). Dominates for Hogwild's batch-1 updates.
  double update_overhead_seconds = 0.0;

  // Per-lane bytes/second for applying an update to the shared model
  // (read-modify-write of every parameter under multi-socket cache-
  // coherency contention — the paper's §V-A NUMA effects). 0 = not modeled
  // (device-local updates run at full memory bandwidth instead).
  double update_bandwidth = 0.0;

  // Device memory capacity in bytes (enforced by DeviceAllocator).
  std::uint64_t memory_capacity = 16ULL << 30;

  // Number of concurrent hardware lanes (worker threads on CPU; informative
  // for GPU).
  int lanes = 1;
};

// Presets matching Table I of the paper.
DeviceSpec v100_spec();
// 56 OpenMP worker threads on the 2x18-core (72 hyperthread) Xeon host.
DeviceSpec xeon56_spec();
// A single-socket spec scaled to `threads` workers (for ablations).
DeviceSpec xeon_spec(int threads);

class PerfModel {
 public:
  explicit PerfModel(DeviceSpec spec);

  const DeviceSpec& spec() const { return spec_; }

  // GEMM efficiency (fraction of peak) for an effective batch size. The
  // batch is the parallel-work dimension m of a (m x k) * (k x n) product.
  double efficiency(double batch) const;

  // Virtual seconds for C = A(m x k) * B(k x n) including launch overhead.
  double gemm_seconds(tensor::Index m, tensor::Index n, tensor::Index k) const;

  // Virtual seconds for an element-wise kernel over `elements` values.
  double elementwise_seconds(std::uint64_t elements) const;

  // Virtual seconds to move `bytes` across the host-device link.
  double transfer_seconds(std::uint64_t bytes) const;

  // Virtual seconds of per-update bookkeeping for `updates` model updates.
  double update_overhead_seconds(std::uint64_t updates) const;

  // Utilization proxy for a workload that processes `batch`-sized chunks:
  // fraction of the device kept busy, i.e. efficiency relative to the
  // asymptote. Matches the paper's ~50%/~100% threshold calibration.
  double utilization(double batch) const;

 private:
  DeviceSpec spec_;
};

}  // namespace hetsgd::gpusim
