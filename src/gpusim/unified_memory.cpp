#include "gpusim/unified_memory.hpp"

#include <algorithm>

#include "common/macros.hpp"

namespace hetsgd::gpusim {

using tensor::Index;

UnifiedMatrix::UnifiedMatrix(DeviceAllocator* allocator, tensor::Index rows,
                             tensor::Index cols, tensor::Index rows_per_page)
    : allocator_(allocator), rows_(rows), cols_(cols),
      rows_per_page_(rows_per_page), storage_(rows, cols) {
  HETSGD_ASSERT(allocator_ != nullptr, "UnifiedMatrix needs an allocator");
  HETSGD_ASSERT(rows > 0 && cols > 0, "empty unified matrix");
  HETSGD_ASSERT(rows_per_page > 0, "rows_per_page must be positive");
  const Index pages = (rows + rows_per_page - 1) / rows_per_page;
  device_resident_.assign(static_cast<std::size_t>(pages), false);
}

UnifiedMatrix::~UnifiedMatrix() {
  // Release the device share of any resident pages.
  for (Index p = 0; p < page_count(); ++p) {
    if (device_resident_[static_cast<std::size_t>(p)]) {
      allocator_->release(page_bytes(p));
    }
  }
}

std::uint64_t UnifiedMatrix::page_bytes(tensor::Index page) const {
  const Index first = page * rows_per_page_;
  const Index rows_in_page = std::min(rows_per_page_, rows_ - first);
  return static_cast<std::uint64_t>(rows_in_page) * cols_ *
         sizeof(tensor::Scalar);
}

bool UnifiedMatrix::row_on_device(tensor::Index row) const {
  HETSGD_ASSERT(row >= 0 && row < rows_, "row out of range");
  return device_resident_[static_cast<std::size_t>(row / rows_per_page_)];
}

std::uint64_t UnifiedMatrix::migrate(tensor::Index begin, tensor::Index count,
                                     bool to_device, const PerfModel& perf,
                                     Stream& stream, double issue_time,
                                     bool bulk, double* completion) {
  HETSGD_ASSERT(begin >= 0 && count > 0 && begin + count <= rows_,
                "unified access out of range");
  const Index first_page = begin / rows_per_page_;
  const Index last_page = (begin + count - 1) / rows_per_page_;
  std::uint64_t moved_pages = 0;
  std::uint64_t moved_bytes = 0;
  for (Index p = first_page; p <= last_page; ++p) {
    const bool resident = device_resident_[static_cast<std::size_t>(p)];
    if (resident == to_device) continue;
    if (to_device) {
      allocator_->reserve(page_bytes(p));
    } else {
      allocator_->release(page_bytes(p));
    }
    device_resident_[static_cast<std::size_t>(p)] = to_device;
    moved_bytes += page_bytes(p);
    ++moved_pages;
  }
  double t = issue_time;
  if (moved_pages > 0) {
    page_faults_ += bulk ? 0 : moved_pages;
    bytes_migrated_ += moved_bytes;
    const double fault_cost =
        bulk ? 0.0 : kPageFaultLatency * static_cast<double>(moved_pages);
    t = stream.enqueue(perf.transfer_seconds(moved_bytes) + fault_cost,
                       issue_time);
  }
  if (completion != nullptr) *completion = std::max(t, issue_time);
  return moved_pages;
}

tensor::MatrixView UnifiedMatrix::host_access(tensor::Index begin,
                                              tensor::Index count,
                                              const PerfModel& perf,
                                              Stream& stream,
                                              double issue_time,
                                              double* completion) {
  migrate(begin, count, /*to_device=*/false, perf, stream, issue_time,
          /*bulk=*/false, completion);
  return storage_.rows_view(begin, count);
}

tensor::MatrixView UnifiedMatrix::device_access(tensor::Index begin,
                                                tensor::Index count,
                                                const PerfModel& perf,
                                                Stream& stream,
                                                double issue_time,
                                                double* completion) {
  migrate(begin, count, /*to_device=*/true, perf, stream, issue_time,
          /*bulk=*/false, completion);
  return storage_.rows_view(begin, count);
}

double UnifiedMatrix::prefetch_to_device(tensor::Index begin,
                                         tensor::Index count,
                                         const PerfModel& perf, Stream& stream,
                                         double issue_time) {
  double completion = issue_time;
  migrate(begin, count, /*to_device=*/true, perf, stream, issue_time,
          /*bulk=*/true, &completion);
  return completion;
}

}  // namespace hetsgd::gpusim
