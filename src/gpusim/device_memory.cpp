#include "gpusim/device_memory.hpp"

#include <algorithm>
#include <utility>

#include "common/macros.hpp"

namespace hetsgd::gpusim {

DeviceMatrix::DeviceMatrix(DeviceAllocator* allocator, tensor::Index rows,
                           tensor::Index cols)
    : allocator_(allocator), rows_(rows), cols_(cols),
      data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols)) {
  HETSGD_ASSERT(allocator_ != nullptr, "DeviceMatrix requires an allocator");
  HETSGD_ASSERT(rows >= 0 && cols >= 0, "negative device matrix dimension");
  allocator_->reserve(bytes());
  data_.fill_zero();
}

DeviceMatrix::~DeviceMatrix() { release(); }

DeviceMatrix::DeviceMatrix(DeviceMatrix&& other) noexcept
    : allocator_(std::exchange(other.allocator_, nullptr)),
      rows_(std::exchange(other.rows_, 0)),
      cols_(std::exchange(other.cols_, 0)),
      data_(std::move(other.data_)) {}

DeviceMatrix& DeviceMatrix::operator=(DeviceMatrix&& other) noexcept {
  if (this == &other) return *this;
  release();
  allocator_ = std::exchange(other.allocator_, nullptr);
  rows_ = std::exchange(other.rows_, 0);
  cols_ = std::exchange(other.cols_, 0);
  data_ = std::move(other.data_);
  return *this;
}

void DeviceMatrix::release() {
  if (allocator_ != nullptr && allocated()) {
    allocator_->release(bytes());
  }
  allocator_ = nullptr;
  rows_ = cols_ = 0;
  data_ = tensor::AlignedBuffer<tensor::Scalar>();
}

DeviceAllocator::DeviceAllocator(std::uint64_t capacity_bytes)
    : capacity_(capacity_bytes) {}

void DeviceAllocator::reserve(std::uint64_t bytes) {
  HETSGD_ASSERT(in_use_ + bytes <= capacity_,
                "device out of memory (cudaMalloc failure)");
  in_use_ += bytes;
  peak_ = std::max(peak_, in_use_);
  ++allocations_;
}

void DeviceAllocator::release(std::uint64_t bytes) {
  HETSGD_ASSERT(bytes <= in_use_, "releasing more device memory than in use");
  in_use_ -= bytes;
}

bool DeviceAllocator::would_fit(std::uint64_t bytes) const {
  return in_use_ + bytes <= capacity_;
}

}  // namespace hetsgd::gpusim
