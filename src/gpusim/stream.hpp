// Streams and events on the simulated device.
//
// Mirrors the CUDA execution model the paper's GPU worker uses (§V-A:
// "kernel execution through asynchronous streams"): work enqueued on a
// stream completes in FIFO order; events mark points in a stream; the host
// can synchronize on a stream or an event. Kernels here execute eagerly on
// the worker thread — only their *completion times* are sequenced in
// virtual time.
//
// Concurrency contract: streams and events are owned by their Device and
// share its thread confinement (the owning worker's actor thread);
// deliberately unsynchronized.
#pragma once

#include <cstdint>
#include <string>

#include "gpusim/virtual_clock.hpp"

namespace hetsgd::gpusim {

class Stream {
 public:
  explicit Stream(std::uint32_t id) : id_(id) {}

  std::uint32_t id() const { return id_; }

  // Enqueues an operation of `cost` virtual seconds that may not start
  // before `earliest_start` (e.g. the host issued it at that time, or it
  // waits on an event). Returns the operation's completion time.
  double enqueue(double cost, double earliest_start) {
    clock_.advance_to(earliest_start);
    return clock_.advance(cost);
  }

  // Completion time of the last enqueued operation.
  double completion_time() const { return clock_.now(); }

  void reset() { clock_.reset(); }

 private:
  std::uint32_t id_;
  VirtualClock clock_;
};

// An event records a stream position (a virtual timestamp once recorded).
class Event {
 public:
  Event() = default;

  void record(const Stream& stream) {
    time_ = stream.completion_time();
    recorded_ = true;
  }

  bool recorded() const { return recorded_; }
  double time() const { return recorded_ ? time_ : 0.0; }

  // Virtual seconds between two recorded events (CUDA elapsedTime analog).
  static double elapsed(const Event& start, const Event& stop) {
    return stop.time() - start.time();
  }

 private:
  double time_ = 0.0;
  bool recorded_ = false;
};

}  // namespace hetsgd::gpusim
