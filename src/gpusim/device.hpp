// The simulated GPU device: allocator + streams + kernels + perf model.
//
// Substitutes for the V100 + CUDA + cuBLAS stack of the paper. Kernels
// perform the *real* math (through the tensor library) on device-resident
// buffers, so training through this device is numerically genuine; the
// PerfModel charges each kernel's virtual-time cost onto the issuing
// stream, so the *speed* is the modeled card's, not this host's.
//
// Usage mirrors a CUDA program: allocate DeviceMatrix, copy_to_device,
// enqueue kernels on a Stream, synchronize, copy_to_host. All operations
// take the host's issue time (the worker's virtual clock) and return the
// operation's completion time on the stream.
//
// Concurrency contract: a Device (and everything it owns — allocator,
// streams, perf model) is single-owner, confined to the GPU worker's actor
// thread. Nothing here is synchronized, no method is cross-thread-safe,
// and -Wthread-safety has nothing to prove: the Actor mailbox is the only
// way in. Sharing one Device between threads is a contract violation, not
// a supported mode.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "gpusim/device_memory.hpp"
#include "gpusim/perf_model.hpp"
#include "gpusim/stream.hpp"
#include "tensor/gemm.hpp"
#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"

namespace hetsgd::gpusim {

// A failed host<->device transfer (the simulated analog of a CUDA
// cudaErrorUnknown / bus error on cudaMemcpy). Thrown by the copy_* entry
// points when a fault has been injected; workers retry with backoff and
// escalate to the coordinator when retries are exhausted.
class TransferError : public std::runtime_error {
 public:
  explicit TransferError(const std::string& what)
      : std::runtime_error(what) {}
};

class Device {
 public:
  explicit Device(DeviceSpec spec);

  const DeviceSpec& spec() const { return perf_.spec(); }
  const PerfModel& perf() const { return perf_; }
  DeviceAllocator& allocator() { return allocator_; }
  const DeviceAllocator& allocator() const { return allocator_; }

  Stream& default_stream() { return *streams_.front(); }
  // Creates an additional stream (CUDA stream analog); owned by the device.
  Stream& create_stream();

  // Allocates a zero-initialized rows x cols device matrix (cudaMalloc).
  DeviceMatrix alloc(tensor::Index rows, tensor::Index cols);

  // --- Transfers (cudaMemcpyAsync analogs) ------------------------------
  // Each does the real copy immediately and charges modeled PCIe time.
  double copy_to_device(tensor::ConstMatrixView host, DeviceMatrix& dst,
                        Stream& stream, double issue_time);
  double copy_to_host(const DeviceMatrix& src, tensor::MatrixView host,
                      Stream& stream, double issue_time);
  double copy_on_device(const DeviceMatrix& src, DeviceMatrix& dst,
                        Stream& stream, double issue_time);

  // --- Kernels (cuBLAS / custom-kernel analogs) -------------------------
  // C = alpha * op(A) * op(B) + beta * C.
  double gemm(tensor::Trans ta, tensor::Trans tb, tensor::Scalar alpha,
              const DeviceMatrix& a, const DeviceMatrix& b,
              tensor::Scalar beta, DeviceMatrix& c, Stream& stream,
              double issue_time);

  // m += broadcast rows of bias (1 x cols).
  double add_row_bias(const DeviceMatrix& bias, DeviceMatrix& m,
                      Stream& stream, double issue_time);

  // out(1 x cols) = column sums of m.
  double col_sums(const DeviceMatrix& m, DeviceMatrix& out, Stream& stream,
                  double issue_time);

  // y += alpha * x.
  double axpy(tensor::Scalar alpha, const DeviceMatrix& x, DeviceMatrix& y,
              Stream& stream, double issue_time);

  // x *= alpha.
  double scale(tensor::Scalar alpha, DeviceMatrix& x, Stream& stream,
               double issue_time);

  // Row-wise softmax in place.
  double softmax_rows(DeviceMatrix& m, Stream& stream, double issue_time);

  // Generic element-wise kernel: fn applied to every element in place.
  template <typename F>
  double elementwise(DeviceMatrix& m, F&& fn, Stream& stream,
                     double issue_time) {
    auto v = m.device_view();
    tensor::Scalar* d = v.data();
    const tensor::Index n = v.size();
    for (tensor::Index i = 0; i < n; ++i) d[i] = fn(d[i]);
    return stream.enqueue(
        perf_.elementwise_seconds(static_cast<std::uint64_t>(n)), issue_time);
  }

  // Generic binary element-wise kernel: out[i] = fn(a[i], out[i]).
  template <typename F>
  double elementwise_binary(const DeviceMatrix& a, DeviceMatrix& out, F&& fn,
                            Stream& stream, double issue_time) {
    auto av = a.device_view();
    auto ov = out.device_view();
    const tensor::Scalar* as = av.data();
    tensor::Scalar* os = ov.data();
    const tensor::Index n = av.size();
    for (tensor::Index i = 0; i < n; ++i) os[i] = fn(as[i], os[i]);
    return stream.enqueue(
        perf_.elementwise_seconds(static_cast<std::uint64_t>(n)), issue_time);
  }

  // --- Synchronization ---------------------------------------------------
  // Host blocks until the stream drains; returns the host's new clock value
  // (max of issue_time and the stream's completion time).
  double synchronize(Stream& stream, double issue_time) const;
  // cudaDeviceSynchronize analog: waits for all streams.
  double synchronize_all(double issue_time) const;

  // Kernel launches issued so far (diagnostics / tests).
  std::uint64_t kernel_count() const { return kernel_count_; }
  std::uint64_t transfer_count() const { return transfer_count_; }
  std::uint64_t bytes_transferred() const { return bytes_transferred_; }

  // --- fault injection ---------------------------------------------------
  // Makes the next `count` copy_to_device/copy_to_host calls throw
  // TransferError (transient link failure). Called from the owning worker
  // thread only — the device is single-owner by design.
  void inject_transfer_faults(std::int64_t count) {
    pending_transfer_faults_ += count;
  }
  std::int64_t pending_transfer_faults() const {
    return pending_transfer_faults_;
  }
  std::uint64_t failed_transfer_count() const {
    return failed_transfer_count_;
  }

 private:
  // Throws if a transfer fault is pending; consumes one injection.
  void check_transfer_fault(const char* direction);

  PerfModel perf_;
  DeviceAllocator allocator_;
  std::vector<std::unique_ptr<Stream>> streams_;
  std::uint64_t kernel_count_ = 0;
  std::uint64_t transfer_count_ = 0;
  std::uint64_t bytes_transferred_ = 0;
  std::int64_t pending_transfer_faults_ = 0;
  std::uint64_t failed_transfer_count_ = 0;
};

}  // namespace hetsgd::gpusim
