// Virtual (logical) time.
//
// Experiments in the paper plot loss against wall-clock seconds on a
// 56-thread Xeon + V100 testbed. Neither exists here, so every worker owns
// a VirtualClock advanced by the perf model's cost estimates; the
// coordinator schedules work in clock order and the benchmark time axis is
// virtual seconds. This makes runs deterministic and hardware-independent
// while leaving the actual SGD math (and its real thread-level races on the
// CPU path) untouched.
//
// Concurrency contract: a VirtualClock is confined to the thread of the
// worker (or stream) that owns it — unsynchronized by design. Clock values
// cross threads only as plain doubles inside messages, never as shared
// state.
#pragma once

#include "common/macros.hpp"

namespace hetsgd::gpusim {

class VirtualClock {
 public:
  VirtualClock() = default;
  explicit VirtualClock(double start) : now_(start) {}

  double now() const { return now_; }

  // Advances by a non-negative duration and returns the new time.
  double advance(double seconds) {
    HETSGD_ASSERT(seconds >= 0.0, "clock cannot advance by negative time");
    now_ += seconds;
    return now_;
  }

  // Moves the clock forward to `t` if `t` is later (used when an operation
  // waits on another stream's completion). Never moves backwards.
  double advance_to(double t) {
    if (t > now_) now_ = t;
    return now_;
  }

  void reset(double t = 0.0) { now_ = t; }

 private:
  double now_ = 0.0;
};

}  // namespace hetsgd::gpusim
