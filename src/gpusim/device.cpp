#include "gpusim/device.hpp"

#include <algorithm>
#include <cstring>
#include <string>

#include "common/macros.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hetsgd::gpusim {

namespace {

// Process-global transfer metrics, cached once: Device methods are on the
// GPU workers' hot path, so the registry map lookup must not recur.
struct DeviceMetrics {
  obs::Counter& transfers =
      obs::MetricsRegistry::instance().counter("hetsgd_gpu_transfers_total");
  obs::Counter& transfer_bytes = obs::MetricsRegistry::instance().counter(
      "hetsgd_gpu_transfer_bytes_total");
  obs::Counter& kernels =
      obs::MetricsRegistry::instance().counter("hetsgd_gpu_kernels_total");
};

DeviceMetrics& device_metrics() {
  // hetsgd-lint: allow(naked-new) leaked singleton: outlives statics
  static DeviceMetrics* m = new DeviceMetrics();
  return *m;
}

}  // namespace

Device::Device(DeviceSpec spec)
    : perf_(std::move(spec)), allocator_(perf_.spec().memory_capacity) {
  streams_.push_back(std::make_unique<Stream>(0));
}

Stream& Device::create_stream() {
  streams_.push_back(
      std::make_unique<Stream>(static_cast<std::uint32_t>(streams_.size())));
  return *streams_.back();
}

DeviceMatrix Device::alloc(tensor::Index rows, tensor::Index cols) {
  return DeviceMatrix(&allocator_, rows, cols);
}

void Device::check_transfer_fault(const char* direction) {
  if (pending_transfer_faults_ <= 0) return;
  --pending_transfer_faults_;
  ++failed_transfer_count_;
  throw TransferError(std::string("injected transfer fault (") + direction +
                      ")");
}

double Device::copy_to_device(tensor::ConstMatrixView host, DeviceMatrix& dst,
                              Stream& stream, double issue_time) {
  HETSGD_ASSERT(host.rows() == dst.rows() && host.cols() == dst.cols(),
                "H2D copy shape mismatch");
  HETSGD_TRACE_SPAN(span, "gpusim", "h2d_copy", issue_time);
  check_transfer_fault("H2D");
  auto dv = dst.device_view();
  std::memcpy(dv.data(), host.data(),
              static_cast<std::size_t>(host.size()) * sizeof(tensor::Scalar));
  ++transfer_count_;
  bytes_transferred_ += dst.bytes();
  device_metrics().transfers.inc();
  device_metrics().transfer_bytes.inc(dst.bytes());
  const double done = stream.enqueue(perf_.transfer_seconds(dst.bytes()),
                                     issue_time);
  span.set_end_vt(done);
  return done;
}

double Device::copy_to_host(const DeviceMatrix& src, tensor::MatrixView host,
                            Stream& stream, double issue_time) {
  HETSGD_ASSERT(host.rows() == src.rows() && host.cols() == src.cols(),
                "D2H copy shape mismatch");
  HETSGD_TRACE_SPAN(span, "gpusim", "d2h_copy", issue_time);
  check_transfer_fault("D2H");
  auto sv = src.device_view();
  std::memcpy(host.data(), sv.data(),
              static_cast<std::size_t>(host.size()) * sizeof(tensor::Scalar));
  ++transfer_count_;
  bytes_transferred_ += src.bytes();
  device_metrics().transfers.inc();
  device_metrics().transfer_bytes.inc(src.bytes());
  const double done = stream.enqueue(perf_.transfer_seconds(src.bytes()),
                                     issue_time);
  span.set_end_vt(done);
  return done;
}

double Device::copy_on_device(const DeviceMatrix& src, DeviceMatrix& dst,
                              Stream& stream, double issue_time) {
  HETSGD_ASSERT(src.rows() == dst.rows() && src.cols() == dst.cols(),
                "D2D copy shape mismatch");
  auto sv = src.device_view();
  auto dv = dst.device_view();
  std::memcpy(dv.data(), sv.data(),
              static_cast<std::size_t>(src.size()) * sizeof(tensor::Scalar));
  // On-device copies run at global-memory bandwidth, modeled as an
  // element-wise pass.
  return stream.enqueue(
      perf_.elementwise_seconds(static_cast<std::uint64_t>(src.size())),
      issue_time);
}

double Device::gemm(tensor::Trans ta, tensor::Trans tb, tensor::Scalar alpha,
                    const DeviceMatrix& a, const DeviceMatrix& b,
                    tensor::Scalar beta, DeviceMatrix& c, Stream& stream,
                    double issue_time) {
  ++kernel_count_;
  device_metrics().kernels.inc();
  HETSGD_TRACE_SPAN(span, "gpusim", "gemm_kernel", issue_time);
  tensor::gemm(ta, tb, alpha, a.device_view(), b.device_view(), beta,
               c.device_view());
  const auto dims = tensor::check_gemm_shapes(ta, tb, a.device_view(),
                                              b.device_view(), c.device_view());
  const double done =
      stream.enqueue(perf_.gemm_seconds(dims.m, dims.n, dims.k), issue_time);
  span.set_end_vt(done);
  return done;
}

double Device::add_row_bias(const DeviceMatrix& bias, DeviceMatrix& m,
                            Stream& stream, double issue_time) {
  ++kernel_count_;
  device_metrics().kernels.inc();
  tensor::add_row_bias(bias.device_view(), m.device_view());
  return stream.enqueue(
      perf_.elementwise_seconds(static_cast<std::uint64_t>(m.size())),
      issue_time);
}

double Device::col_sums(const DeviceMatrix& m, DeviceMatrix& out,
                        Stream& stream, double issue_time) {
  ++kernel_count_;
  device_metrics().kernels.inc();
  tensor::col_sums(m.device_view(), out.device_view());
  return stream.enqueue(
      perf_.elementwise_seconds(static_cast<std::uint64_t>(m.size())),
      issue_time);
}

double Device::axpy(tensor::Scalar alpha, const DeviceMatrix& x,
                    DeviceMatrix& y, Stream& stream, double issue_time) {
  ++kernel_count_;
  device_metrics().kernels.inc();
  tensor::axpy(alpha, x.device_view(), y.device_view());
  return stream.enqueue(
      perf_.elementwise_seconds(static_cast<std::uint64_t>(x.size())),
      issue_time);
}

double Device::scale(tensor::Scalar alpha, DeviceMatrix& x, Stream& stream,
                     double issue_time) {
  ++kernel_count_;
  device_metrics().kernels.inc();
  tensor::scale(alpha, x.device_view());
  return stream.enqueue(
      perf_.elementwise_seconds(static_cast<std::uint64_t>(x.size())),
      issue_time);
}

double Device::softmax_rows(DeviceMatrix& m, Stream& stream,
                            double issue_time) {
  ++kernel_count_;
  device_metrics().kernels.inc();
  tensor::softmax_rows(m.device_view());
  // Softmax reads/writes each element a handful of times; charge 4 passes.
  return stream.enqueue(
      perf_.elementwise_seconds(static_cast<std::uint64_t>(m.size()) * 4),
      issue_time);
}

double Device::synchronize(Stream& stream, double issue_time) const {
  return std::max(issue_time, stream.completion_time());
}

double Device::synchronize_all(double issue_time) const {
  double t = issue_time;
  for (const auto& s : streams_) {
    t = std::max(t, s->completion_time());
  }
  return t;
}

}  // namespace hetsgd::gpusim
