// Device memory: capacity-accounted allocations backing the simulated GPU.
//
// The paper's GPU batch size is upper-bounded by the V100's 16 GB (§VI-B);
// the allocator enforces that bound so experiments that would not fit on
// the real card fail here too, instead of silently succeeding.
//
// Concurrency contract: DeviceAllocator and DeviceMatrix are confined to
// the owning GPU worker's actor thread (single-owner, like the Device that
// holds them). The capacity counters are plain integers on purpose — no
// cross-thread access exists to synchronize.
#pragma once

#include <cstdint>
#include <memory>

#include "tensor/buffer.hpp"
#include "tensor/matrix.hpp"
#include "tensor/types.hpp"

namespace hetsgd::gpusim {

class DeviceAllocator;

// RAII device allocation holding a rows x cols Scalar matrix in "device"
// memory (host RAM tagged as device-resident). Host code must go through
// Device::copy_* to move data in and out; direct access is reserved for the
// device kernels.
class DeviceMatrix {
 public:
  DeviceMatrix() = default;
  DeviceMatrix(DeviceAllocator* allocator, tensor::Index rows,
               tensor::Index cols);
  ~DeviceMatrix();

  DeviceMatrix(const DeviceMatrix&) = delete;
  DeviceMatrix& operator=(const DeviceMatrix&) = delete;
  DeviceMatrix(DeviceMatrix&& other) noexcept;
  DeviceMatrix& operator=(DeviceMatrix&& other) noexcept;

  tensor::Index rows() const { return rows_; }
  tensor::Index cols() const { return cols_; }
  tensor::Index size() const { return rows_ * cols_; }
  std::uint64_t bytes() const {
    return static_cast<std::uint64_t>(size()) * sizeof(tensor::Scalar);
  }
  bool allocated() const { return data_.data() != nullptr; }

  // Device-side views: used only by gpusim kernels and the Device copy
  // routines.
  tensor::MatrixView device_view() {
    return tensor::MatrixView(data_.data(), rows_, cols_);
  }
  tensor::ConstMatrixView device_view() const {
    return tensor::ConstMatrixView(data_.data(), rows_, cols_);
  }

 private:
  void release();

  DeviceAllocator* allocator_ = nullptr;
  tensor::Index rows_ = 0;
  tensor::Index cols_ = 0;
  tensor::AlignedBuffer<tensor::Scalar> data_;
};

// Tracks allocated bytes against the device capacity. Single-threaded by
// design: all allocations for a device happen on its worker thread.
class DeviceAllocator {
 public:
  explicit DeviceAllocator(std::uint64_t capacity_bytes);

  // Reserves `bytes`; aborts (device OOM) if the capacity would be exceeded,
  // mirroring a failed cudaMalloc that the framework treats as fatal.
  void reserve(std::uint64_t bytes);
  void release(std::uint64_t bytes);

  // True if `bytes` more would fit.
  bool would_fit(std::uint64_t bytes) const;

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t in_use() const { return in_use_; }
  std::uint64_t peak_usage() const { return peak_; }
  std::uint64_t allocation_count() const { return allocations_; }

 private:
  std::uint64_t capacity_;
  std::uint64_t in_use_ = 0;
  std::uint64_t peak_ = 0;
  std::uint64_t allocations_ = 0;
};

}  // namespace hetsgd::gpusim
