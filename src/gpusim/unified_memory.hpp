// Unified (managed) memory simulation.
//
// §V-A: the GPU worker isolates "advanced GPU features, such as data
// transfer through the unified memory address space". This models CUDA
// managed memory: one logical matrix whose pages migrate on demand between
// host and device. Accesses from the non-resident side trigger page faults
// charged at the link bandwidth plus a per-fault latency; device-resident
// pages are accounted against device memory.
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/device_memory.hpp"
#include "gpusim/perf_model.hpp"
#include "gpusim/stream.hpp"
#include "tensor/matrix.hpp"

namespace hetsgd::gpusim {

class UnifiedMatrix {
 public:
  // Pages span whole rows; `rows_per_page` controls granularity (CUDA
  // migrates 64 KiB-2 MiB chunks; row granularity keeps the model simple
  // and matches batched access patterns). Pages start host-resident.
  UnifiedMatrix(DeviceAllocator* allocator, tensor::Index rows,
                tensor::Index cols, tensor::Index rows_per_page = 64);

  ~UnifiedMatrix();
  UnifiedMatrix(const UnifiedMatrix&) = delete;
  UnifiedMatrix& operator=(const UnifiedMatrix&) = delete;

  tensor::Index rows() const { return rows_; }
  tensor::Index cols() const { return cols_; }
  tensor::Index page_count() const {
    return static_cast<tensor::Index>(device_resident_.size());
  }

  // Declares a host-side access to rows [begin, begin+count): migrates any
  // device-resident pages back, charging the stream. Returns completion
  // time and a mutable view valid until the next device access.
  tensor::MatrixView host_access(tensor::Index begin, tensor::Index count,
                                 const PerfModel& perf, Stream& stream,
                                 double issue_time, double* completion);

  // Device-side access: migrates host-resident pages in.
  tensor::MatrixView device_access(tensor::Index begin, tensor::Index count,
                                   const PerfModel& perf, Stream& stream,
                                   double issue_time, double* completion);

  // Prefetch analog (cudaMemPrefetchAsync): migrates without the per-fault
  // latency penalty (one bulk transfer).
  double prefetch_to_device(tensor::Index begin, tensor::Index count,
                            const PerfModel& perf, Stream& stream,
                            double issue_time);

  // True if the page containing `row` currently lives on the device.
  bool row_on_device(tensor::Index row) const;

  std::uint64_t page_faults() const { return page_faults_; }
  std::uint64_t bytes_migrated() const { return bytes_migrated_; }

 private:
  std::uint64_t page_bytes(tensor::Index page) const;
  // Migrates pages covering [begin, begin+count) to `to_device`; returns
  // the number of pages moved. `bulk` suppresses per-fault latency.
  std::uint64_t migrate(tensor::Index begin, tensor::Index count,
                        bool to_device, const PerfModel& perf, Stream& stream,
                        double issue_time, bool bulk, double* completion);

  DeviceAllocator* allocator_;
  tensor::Index rows_;
  tensor::Index cols_;
  tensor::Index rows_per_page_;
  tensor::Matrix storage_;  // single backing store; residency is logical
  std::vector<bool> device_resident_;
  std::uint64_t page_faults_ = 0;
  std::uint64_t bytes_migrated_ = 0;
};

// Cost of a unified-memory page fault beyond the bytes themselves
// (fault handling + TLB shootdown), in seconds.
inline constexpr double kPageFaultLatency = 20e-6;

}  // namespace hetsgd::gpusim
