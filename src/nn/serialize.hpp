// Model checkpointing: binary save/load of an MLP and its configuration.
//
// Long heterogeneous training runs need restartable state; the format is a
// small versioned header (architecture) followed by raw row-major layer
// data. Endianness follows the host (checkpoints are not a wire format).
#pragma once

#include <optional>
#include <string>

#include "nn/model.hpp"

namespace hetsgd::nn {

// Writes the model (architecture + parameters) to `path`. Aborts on I/O
// failure.
void save_model(const Model& model, const std::string& path);

// Reads a checkpoint written by save_model. Returns std::nullopt — never
// aborts — on a missing file, bad magic, unsupported version, implausible
// header fields, or truncated data; when `error` is non-null it receives a
// human-readable reason. Recovery paths (auto-checkpoint restore after a
// crash) must be able to survive a corrupt file.
std::optional<Model> try_load_model(const std::string& path,
                                    std::string* error = nullptr);

// Reads a checkpoint written by save_model. Aborts on any load failure —
// the convenience wrapper for tools where a bad checkpoint is fatal.
Model load_model(const std::string& path);

// Current checkpoint format version.
inline constexpr std::uint32_t kCheckpointVersion = 1;

}  // namespace hetsgd::nn
