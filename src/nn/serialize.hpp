// Model checkpointing: binary save/load of an MLP and its configuration.
//
// Long heterogeneous training runs need restartable state. The v2 format
// wraps every checkpoint in a crash-consistent envelope:
//
//   [4]  magic "HSGD"
//   [u32] format version
//   [u64] payload size in bytes
//   [u32] CRC32 of the payload
//   [..] payload
//
// and every file is written through atomic_write_file (tmp + flush +
// rename), so a reader only ever sees a complete old file or a complete
// new file, and a torn/corrupt one is rejected by size or CRC instead of
// being half-trusted. The model payload is the versioned architecture
// header followed by raw row-major layer data. Endianness follows the
// host (checkpoints are not a wire format).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/atomic_file.hpp"
#include "nn/model.hpp"

namespace hetsgd::nn {

// Current checkpoint format version (v2 = CRC envelope + atomic writes).
inline constexpr std::uint32_t kCheckpointVersion = 2;

// ---- Envelope ------------------------------------------------------------

// Wraps `payload` in the magic/version/size/CRC envelope and atomically
// writes it to `path`. False + *error on I/O failure; never aborts.
bool write_envelope_file(const std::string& path,
                         const std::vector<std::uint8_t>& payload,
                         std::string* error);

// Reads `path`, validates magic, version, size, and CRC, and returns the
// payload. False + *error on any mismatch — a torn or bit-rotted file
// must fail soft so recovery can fall back to an older checkpoint.
bool read_envelope_file(const std::string& path,
                        std::vector<std::uint8_t>* payload,
                        std::string* error);

// ---- Model payload helpers (composable into larger checkpoints) ----------

// Appends architecture header + parameters to `w`.
void write_model(ByteWriter& w, const Model& model);

// Reads a model written by write_model. nullopt + *error on truncation,
// implausible header, or shape mismatch.
std::optional<Model> read_model(ByteReader& r, std::string* error);

// Appends just the raw parameters of `model` (no header). Used for
// optimizer state buffers whose shape is already known.
void write_params(ByteWriter& w, const Model& model);

// Reads raw parameters into `model` (shape must already match what was
// written). False + *error on truncation.
bool read_params(ByteReader& r, Model& model, std::string* error);

// ---- Whole-file model checkpoints ----------------------------------------

// Atomically writes the model (architecture + parameters) to `path`.
// False + *error on I/O failure (disk full, EIO, unwritable directory);
// the previous file at `path`, if any, is left intact.
bool try_save_model(const Model& model, const std::string& path,
                    std::string* error = nullptr);

// Writes the model to `path`. Aborts on I/O failure — the convenience
// wrapper for tools where a failed save is fatal.
void save_model(const Model& model, const std::string& path);

// Reads a checkpoint written by save_model. Returns std::nullopt — never
// aborts — on a missing file, bad magic, unsupported version, CRC
// mismatch, implausible header fields, or truncated data; when `error` is
// non-null it receives a human-readable reason. Recovery paths must be
// able to survive a corrupt file.
std::optional<Model> try_load_model(const std::string& path,
                                    std::string* error = nullptr);

// Reads a checkpoint written by save_model. Aborts on any load failure —
// the convenience wrapper for tools where a bad checkpoint is fatal.
Model load_model(const std::string& path);

}  // namespace hetsgd::nn
