#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "common/macros.hpp"

namespace hetsgd::nn {

using tensor::Index;
using tensor::Scalar;

tensor::Scalar softmax_cross_entropy(tensor::ConstMatrixView logits,
                                     std::span<const std::int32_t> labels,
                                     tensor::MatrixView* dlogits) {
  const Index b = logits.rows();
  const Index c = logits.cols();
  HETSGD_ASSERT(static_cast<Index>(labels.size()) == b,
                "label count != batch size");
  if (dlogits != nullptr) {
    HETSGD_ASSERT(dlogits->rows() == b && dlogits->cols() == c,
                  "dlogits shape mismatch");
  }
  const Scalar inv_b = Scalar{1} / static_cast<Scalar>(b);
  Scalar total_loss = 0;
  for (Index r = 0; r < b; ++r) {
    const Scalar* row = logits.row(r);
    const std::int32_t y = labels[static_cast<std::size_t>(r)];
    HETSGD_ASSERT(y >= 0 && y < c, "label out of range");
    // log-sum-exp with max subtraction.
    Scalar mx = row[0];
    for (Index j = 1; j < c; ++j) mx = std::max(mx, row[j]);
    Scalar sum_exp = 0;
    for (Index j = 0; j < c; ++j) sum_exp += std::exp(row[j] - mx);
    const Scalar log_z = mx + std::log(sum_exp);
    total_loss += log_z - row[y];
    if (dlogits != nullptr) {
      Scalar* g = dlogits->row(r);
      const Scalar inv_z = Scalar{1} / sum_exp;
      for (Index j = 0; j < c; ++j) {
        g[j] = std::exp(row[j] - mx) * inv_z * inv_b;
      }
      g[y] -= inv_b;
    }
  }
  return total_loss * inv_b;
}

tensor::Scalar sigmoid_bce(tensor::ConstMatrixView logits,
                           tensor::ConstMatrixView targets,
                           tensor::MatrixView* dlogits) {
  const Index b = logits.rows();
  const Index c = logits.cols();
  HETSGD_ASSERT(targets.rows() == b && targets.cols() == c,
                "targets shape mismatch");
  if (dlogits != nullptr) {
    HETSGD_ASSERT(dlogits->rows() == b && dlogits->cols() == c,
                  "dlogits shape mismatch");
  }
  const Scalar inv_b = Scalar{1} / static_cast<Scalar>(b);
  Scalar total = 0;
  for (Index r = 0; r < b; ++r) {
    const Scalar* z = logits.row(r);
    const Scalar* t = targets.row(r);
    Scalar* g = dlogits != nullptr ? dlogits->row(r) : nullptr;
    for (Index j = 0; j < c; ++j) {
      // Numerically stable: log(1+exp(-|z|)) + max(z,0) - z*t.
      const Scalar zj = z[j];
      const Scalar softplus = std::log1p(std::exp(-std::abs(zj))) +
                              std::max(zj, Scalar{0});
      total += softplus - zj * t[j];
      if (g != nullptr) {
        const Scalar sig = Scalar{1} / (Scalar{1} + std::exp(-zj));
        g[j] = (sig - t[j]) * inv_b;
      }
    }
  }
  return total * inv_b;
}

double accuracy(tensor::ConstMatrixView logits,
                std::span<const std::int32_t> labels) {
  const Index b = logits.rows();
  const Index c = logits.cols();
  HETSGD_ASSERT(static_cast<Index>(labels.size()) == b,
                "label count != batch size");
  if (b == 0) return 0.0;
  Index correct = 0;
  for (Index r = 0; r < b; ++r) {
    const Scalar* row = logits.row(r);
    Index best = 0;
    for (Index j = 1; j < c; ++j) {
      if (row[j] > row[best]) best = j;
    }
    if (best == labels[static_cast<std::size_t>(r)]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(b);
}

}  // namespace hetsgd::nn
