#include "nn/activation.hpp"

#include <cmath>

#include "common/macros.hpp"

namespace hetsgd::nn {

const char* activation_name(Activation a) {
  switch (a) {
    case Activation::kIdentity: return "identity";
    case Activation::kSigmoid:  return "sigmoid";
    case Activation::kTanh:     return "tanh";
    case Activation::kRelu:     return "relu";
  }
  return "?";
}

bool parse_activation(const std::string& name, Activation& out) {
  if (name == "identity") { out = Activation::kIdentity; return true; }
  if (name == "sigmoid")  { out = Activation::kSigmoid;  return true; }
  if (name == "tanh")     { out = Activation::kTanh;     return true; }
  if (name == "relu")     { out = Activation::kRelu;     return true; }
  return false;
}

tensor::Epilogue bias_act_epilogue(Activation a) {
  switch (a) {
    case Activation::kIdentity: return tensor::Epilogue::kBias;
    case Activation::kSigmoid:  return tensor::Epilogue::kBiasSigmoid;
    case Activation::kTanh:     return tensor::Epilogue::kBiasTanh;
    case Activation::kRelu:     return tensor::Epilogue::kBiasRelu;
  }
  HETSGD_UNREACHABLE("unknown activation");
}

tensor::Scalar activation_apply(Activation a, tensor::Scalar x) {
  switch (a) {
    case Activation::kIdentity: return x;
    case Activation::kSigmoid:  return tensor::Scalar{1} / (tensor::Scalar{1} + std::exp(-x));
    case Activation::kTanh:     return std::tanh(x);
    case Activation::kRelu:     return x > 0 ? x : tensor::Scalar{0};
  }
  HETSGD_UNREACHABLE("unknown activation");
}

tensor::Scalar activation_derivative_from_output(Activation a,
                                                 tensor::Scalar v) {
  switch (a) {
    case Activation::kIdentity: return tensor::Scalar{1};
    case Activation::kSigmoid:  return v * (tensor::Scalar{1} - v);
    case Activation::kTanh:     return tensor::Scalar{1} - v * v;
    case Activation::kRelu:     return v > 0 ? tensor::Scalar{1} : tensor::Scalar{0};
  }
  HETSGD_UNREACHABLE("unknown activation");
}

void activation_forward(Activation a, tensor::MatrixView m) {
  if (a == Activation::kIdentity) return;
  tensor::Scalar* d = m.data();
  const tensor::Index n = m.size();
  switch (a) {
    case Activation::kSigmoid:
      for (tensor::Index i = 0; i < n; ++i) {
        d[i] = tensor::Scalar{1} / (tensor::Scalar{1} + std::exp(-d[i]));
      }
      break;
    case Activation::kTanh:
      for (tensor::Index i = 0; i < n; ++i) d[i] = std::tanh(d[i]);
      break;
    case Activation::kRelu:
      for (tensor::Index i = 0; i < n; ++i) {
        if (d[i] < 0) d[i] = 0;
      }
      break;
    case Activation::kIdentity:
      break;
  }
}

void activation_backward(Activation a, tensor::ConstMatrixView activated,
                         tensor::MatrixView delta) {
  HETSGD_ASSERT(activated.rows() == delta.rows() &&
                    activated.cols() == delta.cols(),
                "activation_backward shape mismatch");
  if (a == Activation::kIdentity) return;
  const tensor::Scalar* av = activated.data();
  tensor::Scalar* dv = delta.data();
  const tensor::Index n = delta.size();
  for (tensor::Index i = 0; i < n; ++i) {
    dv[i] *= activation_derivative_from_output(a, av[i]);
  }
}

}  // namespace hetsgd::nn
