// Optimizers over Model parameters.
//
// The framework is "a generic testbed to evaluate existing SGD algorithms
// and develop new ones" (§V); plain SGD is what the paper evaluates, and
// momentum/Adam are the most common drop-in alternatives a user of the
// testbed will want. The optimizer owns its state (velocity / moment
// estimates) shaped like the model, so each Hogwild lane or worker keeps
// an independent instance.
#pragma once

#include <string>

#include "common/atomic_file.hpp"
#include "nn/model.hpp"

namespace hetsgd::nn {

enum class OptimizerKind {
  kSgd,       // W -= eta * g                      (Eq. (3) of the paper)
  kMomentum,  // v = mu*v + g;  W -= eta * v       (Polyak heavy ball)
  kAdam,      // adaptive moments (Kingma & Ba)
};

const char* optimizer_name(OptimizerKind k);
bool parse_optimizer(const std::string& name, OptimizerKind& out);

struct OptimizerConfig {
  OptimizerKind kind = OptimizerKind::kSgd;
  double momentum = 0.9;    // kMomentum
  double beta1 = 0.9;       // kAdam
  double beta2 = 0.999;     // kAdam
  double epsilon = 1e-8;    // kAdam
  // Decoupled L2 penalty applied as W -= eta * weight_decay * W before the
  // gradient step (0 = off).
  double weight_decay = 0.0;
};

class Optimizer {
 public:
  // `shape` fixes the parameter layout; state buffers are allocated lazily
  // on the first step (SGD allocates none).
  Optimizer(const OptimizerConfig& config, const Model& shape);

  const OptimizerConfig& config() const { return config_; }

  // Applies one update with step size eta. For kSgd this is exactly
  // sgd_step; stateful optimizers also advance their internal state.
  // Hogwild-safe in the same sense as sgd_step: racy on a shared model by
  // design, while the optimizer state itself is lane-private.
  void step(Model& model, const Gradient& grad, tensor::Scalar eta);

  // Steps taken so far (drives Adam's bias correction).
  std::uint64_t step_count() const { return steps_; }

  void reset();

  // Checkpointing: appends step count + state buffers to `w`, or restores
  // them. deserialize expects the same optimizer kind and model shape the
  // state was saved under (enforced upstream by the config fingerprint);
  // false + *error on truncation or shape mismatch.
  void serialize(ByteWriter& w) const;
  bool deserialize(ByteReader& r, std::string* error);

 private:
  void ensure_state(const Model& shape);

  OptimizerConfig config_;
  const Model* shape_;
  std::uint64_t steps_ = 0;
  // kMomentum: velocity_; kAdam: velocity_ = first moment, second_ = second.
  Model velocity_;
  Model second_;
  bool state_ready_ = false;
};

// Learning-rate schedules: a multiplier on the configured rate as a
// function of training progress (epochs-equivalent).
enum class LrSchedule {
  kConstant,
  kStepDecay,     // factor^(floor(progress / step_every))
  kInverseTime,   // 1 / (1 + decay * progress)
};

const char* lr_schedule_name(LrSchedule s);
bool parse_lr_schedule(const std::string& name, LrSchedule& out);

struct LrScheduleConfig {
  LrSchedule kind = LrSchedule::kConstant;
  double decay = 0.1;       // kInverseTime rate / kStepDecay factor
  double step_every = 1.0;  // kStepDecay: epochs per step
};

// Multiplier at the given progress (>= 0, in epochs-equivalent).
double lr_multiplier(const LrScheduleConfig& schedule, double progress);

}  // namespace hetsgd::nn
