#include "nn/device_mlp.hpp"

#include "common/macros.hpp"
#include "nn/loss.hpp"

namespace hetsgd::nn {

using tensor::Index;
using tensor::Scalar;

DeviceMlp::DeviceMlp(gpusim::Device& device, const MlpConfig& config,
                     tensor::Index max_batch)
    : device_(device), stream_(device.create_stream()), config_(config),
      max_batch_(max_batch) {
  config_.validate();
  HETSGD_ASSERT(max_batch > 0, "max_batch must be positive");
  const auto shapes = config_.layer_shapes();
  replica_.reserve(shapes.size());
  gradient_.reserve(shapes.size());
  acts_.reserve(shapes.size());
  deltas_.reserve(shapes.size());
  for (const auto& s : shapes) {
    replica_.push_back({device_.alloc(s.out, s.in), device_.alloc(1, s.out)});
    gradient_.push_back({device_.alloc(s.out, s.in), device_.alloc(1, s.out)});
    acts_.push_back(device_.alloc(max_batch, s.out));
    deltas_.push_back(device_.alloc(max_batch, s.out));
  }
  input_ = device_.alloc(max_batch, config_.input_dim);
}

std::uint64_t DeviceMlp::device_bytes() const {
  std::uint64_t total = input_.bytes();
  for (std::size_t l = 0; l < replica_.size(); ++l) {
    total += replica_[l].weights.bytes() + replica_[l].bias.bytes();
    total += gradient_[l].weights.bytes() + gradient_[l].bias.bytes();
    total += acts_[l].bytes() + deltas_[l].bytes();
  }
  return total;
}

double DeviceMlp::upload_model(const Model& model, double issue_time) {
  HETSGD_ASSERT(model.layer_count() == replica_.size(),
                "model/replica layer count mismatch");
  double t = issue_time;
  for (std::size_t l = 0; l < replica_.size(); ++l) {
    t = device_.copy_to_device(model.layer(l).weights.view(),
                               replica_[l].weights, stream_, issue_time);
    t = device_.copy_to_device(model.layer(l).bias.view(), replica_[l].bias,
                               stream_, issue_time);
  }
  return t;
}

tensor::Scalar DeviceMlp::compute_gradient(tensor::ConstMatrixView x,
                                           std::span<const std::int32_t> labels,
                                           double issue_time,
                                           double* completion_time) {
  const Index batch = x.rows();
  HETSGD_ASSERT(batch > 0 && batch <= max_batch_, "batch exceeds max_batch");
  HETSGD_ASSERT(x.cols() == config_.input_dim, "batch width mismatch");
  HETSGD_ASSERT(static_cast<Index>(labels.size()) == batch,
                "label count mismatch");

  const std::size_t layers = replica_.size();

  // H2D: the batch itself. (The labels ride along: 4 bytes each, charged
  // below without a dedicated device buffer — the loss kernel is the only
  // consumer.)
  auto input_rows = tensor::MatrixView(input_.device_view().data(), batch,
                                       config_.input_dim);
  // Real copy + modeled PCIe time for exactly the batch rows.
  {
    tensor::Scalar* dst = input_rows.data();
    const tensor::Scalar* src = x.data();
    for (Index r = 0; r < batch; ++r) {
      for (Index c = 0; c < x.cols(); ++c) {
        dst[r * x.cols() + c] = src[r * x.cols() + c];
      }
    }
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(batch) * x.cols() * sizeof(Scalar) +
        static_cast<std::uint64_t>(batch) * sizeof(std::int32_t);
    stream_.enqueue(device_.perf().transfer_seconds(bytes), issue_time);
  }

  // Forward: per layer, one fused kernel out = act(A_prev * W^T + b) —
  // bias and activation ride the GEMM epilogue, so a single kernel launch
  // is charged instead of GEMM + element-wise passes.
  tensor::ConstMatrixView prev(input_rows);
  for (std::size_t l = 0; l < layers; ++l) {
    const auto wv = replica_[l].weights.device_view();
    auto out = tensor::MatrixView(acts_[l].device_view().data(), batch,
                                  wv.rows());
    const tensor::Epilogue ep =
        l + 1 < layers ? bias_act_epilogue(config_.hidden_activation)
                       : tensor::Epilogue::kBias;
    tensor::gemm_bias_act(tensor::Trans::kNo, tensor::Trans::kYes,
                          tensor::Scalar{1}, prev, wv, out,
                          replica_[l].bias.device_view(), ep);
    stream_.enqueue(
        device_.perf().gemm_seconds(batch, wv.rows(), wv.cols()), issue_time);
    prev = out;
  }

  // Loss + dLoss/dlogits (fused softmax-xent kernel).
  const Index classes = config_.num_classes;
  auto logits = tensor::ConstMatrixView(acts_.back().device_view().data(),
                                        batch, classes);
  auto dlogits = tensor::MatrixView(deltas_.back().device_view().data(), batch,
                                    classes);
  const Scalar loss = softmax_cross_entropy(logits, labels, &dlogits);
  stream_.enqueue(device_.perf().elementwise_seconds(
                      static_cast<std::uint64_t>(logits.size()) * 6),
                  issue_time);
  // One scalar (the loss) returns to the host.
  stream_.enqueue(device_.perf().transfer_seconds(sizeof(Scalar)), issue_time);

  // Backward.
  for (std::size_t l = layers; l-- > 0;) {
    const auto wv = replica_[l].weights.device_view();
    auto delta = tensor::MatrixView(deltas_[l].device_view().data(), batch,
                                    wv.rows());
    tensor::ConstMatrixView prev_act =
        l == 0 ? tensor::ConstMatrixView(input_rows)
               : tensor::ConstMatrixView(acts_[l - 1].device_view().data(),
                                         batch, wv.cols());
    // dW = delta^T * prev_act.
    tensor::matmul_tn(delta, prev_act, gradient_[l].weights.device_view());
    stream_.enqueue(
        device_.perf().gemm_seconds(wv.rows(), wv.cols(), batch), issue_time);
    // db = column sums of delta.
    tensor::col_sums(delta, gradient_[l].bias.device_view());
    stream_.enqueue(device_.perf().elementwise_seconds(
                        static_cast<std::uint64_t>(delta.size())),
                    issue_time);
    if (l > 0) {
      auto prev_delta = tensor::MatrixView(deltas_[l - 1].device_view().data(),
                                           batch, wv.cols());
      tensor::matmul_nn(delta, wv, prev_delta);
      stream_.enqueue(
          device_.perf().gemm_seconds(batch, wv.cols(), wv.rows()),
          issue_time);
      auto prev_out = tensor::ConstMatrixView(prev_act);
      activation_backward(config_.hidden_activation, prev_out, prev_delta);
      stream_.enqueue(device_.perf().elementwise_seconds(
                          static_cast<std::uint64_t>(prev_delta.size())),
                      issue_time);
    }
  }

  if (completion_time != nullptr) {
    *completion_time = device_.synchronize(stream_, issue_time);
  }
  return loss;
}

double DeviceMlp::apply_gradient_on_device(tensor::Scalar eta,
                                           double issue_time) {
  double t = issue_time;
  for (std::size_t l = 0; l < replica_.size(); ++l) {
    t = device_.axpy(-eta, gradient_[l].weights, replica_[l].weights, stream_,
                     issue_time);
    t = device_.axpy(-eta, gradient_[l].bias, replica_[l].bias, stream_,
                     issue_time);
  }
  return t;
}

double DeviceMlp::download_gradient(Gradient& grad, double issue_time) {
  HETSGD_ASSERT(grad.layer_count() == gradient_.size(),
                "gradient layer count mismatch");
  double t = issue_time;
  for (std::size_t l = 0; l < gradient_.size(); ++l) {
    t = device_.copy_to_host(gradient_[l].weights,
                             grad.layer(l).weights.view(), stream_, issue_time);
    t = device_.copy_to_host(gradient_[l].bias, grad.layer(l).bias.view(),
                             stream_, issue_time);
  }
  return t;
}

double DeviceMlp::download_model(Model& model, double issue_time) {
  HETSGD_ASSERT(model.layer_count() == replica_.size(),
                "model layer count mismatch");
  double t = issue_time;
  for (std::size_t l = 0; l < replica_.size(); ++l) {
    t = device_.copy_to_host(replica_[l].weights, model.layer(l).weights.view(),
                             stream_, issue_time);
    t = device_.copy_to_host(replica_[l].bias, model.layer(l).bias.view(),
                             stream_, issue_time);
  }
  return t;
}

}  // namespace hetsgd::nn
