// Host-side MLP execution: forward pass, back-propagation, SGD step.
//
// Implements Eq. (1) (forward), Eq. (2) (backward/chain rule), and Eq. (3)
// (the update) of the paper for a stack of fully-connected layers. The CPU
// worker calls these directly on the shared model (Hogwild: the update is
// applied with no synchronization); the GPU worker uses the DeviceMlp
// mirror of the same sequence.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/loss.hpp"
#include "nn/model.hpp"
#include "tensor/matrix.hpp"

namespace hetsgd::nn {

// Per-worker scratch space for forward/backward passes. Reused across
// batches; grows to the largest batch seen. The growth is one-way until
// the owner calls clamp() or release() — done at epoch barriers and on
// elastic worker retirement, so a transient large batch can't pin its
// high-water scratch for the rest of a run.
class Workspace {
 public:
  // (Re)sizes buffers for a model and batch size.
  void ensure(const Model& model, tensor::Index batch);

  // Shrinks any buffer taller than `max_batch` rows down to it (0 frees
  // everything). The next ensure() regrows as needed.
  void clamp(tensor::Index max_batch);
  // Frees all scratch; equivalent to clamp(0).
  void release();

  // acts[l]: output of layer l (batch x out_l); acts.back() holds logits.
  std::vector<tensor::Matrix>& acts() { return acts_; }
  // deltas[l]: dLoss/d(pre-activation of layer l), same shape as acts[l].
  std::vector<tensor::Matrix>& deltas() { return deltas_; }

  tensor::Matrix& logits() { return acts_.back(); }

  tensor::Index batch() const { return batch_; }

  // Allocated rows of the tallest buffer (the high-water batch).
  tensor::Index capacity_rows() const;
  // Total bytes of scratch currently allocated.
  std::uint64_t scratch_bytes() const;

 private:
  std::vector<tensor::Matrix> acts_;
  std::vector<tensor::Matrix> deltas_;
  tensor::Index batch_ = 0;
};

// Forward pass over a batch; logits land in ws.logits(). `x` is
// batch x input_dim.
void forward(const Model& model, tensor::ConstMatrixView x, Workspace& ws);

// Forward + mean softmax cross-entropy loss (no gradient).
tensor::Scalar compute_loss(const Model& model, tensor::ConstMatrixView x,
                            std::span<const std::int32_t> labels,
                            Workspace& ws);

// Forward + backward; fills `grad` (shape of model) and returns the loss.
tensor::Scalar compute_gradient(const Model& model, tensor::ConstMatrixView x,
                                std::span<const std::int32_t> labels,
                                Workspace& ws, Gradient& grad);

// Multi-label variant: targets is a dense batch x classes 0/1 matrix and
// the loss is sigmoid BCE.
tensor::Scalar compute_gradient_bce(const Model& model,
                                    tensor::ConstMatrixView x,
                                    tensor::ConstMatrixView targets,
                                    Workspace& ws, Gradient& grad);

// W <- W - eta * grad (Eq. (3)). When `model` is shared across threads this
// is the Hogwild update: racy by design.
void sgd_step(Model& model, const Gradient& grad, tensor::Scalar eta);

// Approximate FLOPs of one forward+backward pass over `batch` examples —
// the quantity the gpusim perf model charges for a training step.
double training_flops(const MlpConfig& config, tensor::Index batch);

}  // namespace hetsgd::nn
