#include "nn/mlp.hpp"

#include <algorithm>

#include "common/macros.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

namespace hetsgd::nn {

using tensor::Index;
using tensor::Scalar;

void Workspace::ensure(const Model& model, tensor::Index batch) {
  const std::size_t layers = model.layer_count();
  acts_.resize(layers);
  deltas_.resize(layers);
  for (std::size_t l = 0; l < layers; ++l) {
    const Index out = model.layer(l).weights.rows();
    if (acts_[l].rows() < batch || acts_[l].cols() != out) {
      acts_[l].resize(batch, out);
      deltas_[l].resize(batch, out);
    }
  }
  batch_ = batch;
}

void Workspace::clamp(tensor::Index max_batch) {
  if (max_batch <= 0) {
    release();
    return;
  }
  for (std::size_t l = 0; l < acts_.size(); ++l) {
    if (acts_[l].rows() > max_batch) {
      acts_[l].resize(max_batch, acts_[l].cols());
      deltas_[l].resize(max_batch, deltas_[l].cols());
    }
  }
  if (batch_ > max_batch) batch_ = max_batch;
}

void Workspace::release() {
  acts_.clear();
  deltas_.clear();
  batch_ = 0;
}

tensor::Index Workspace::capacity_rows() const {
  Index rows = 0;
  for (const auto& m : acts_) rows = std::max(rows, m.rows());
  return rows;
}

std::uint64_t Workspace::scratch_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& m : acts_) {
    bytes += static_cast<std::uint64_t>(m.size()) * sizeof(Scalar);
  }
  for (const auto& m : deltas_) {
    bytes += static_cast<std::uint64_t>(m.size()) * sizeof(Scalar);
  }
  return bytes;
}

namespace {

// Activation view limited to the current batch (workspace rows may exceed
// the batch when a smaller batch follows a larger one).
tensor::MatrixView batch_rows(tensor::Matrix& m, Index batch) {
  return m.rows_view(0, batch);
}

}  // namespace

void forward(const Model& model, tensor::ConstMatrixView x, Workspace& ws) {
  const Index batch = x.rows();
  HETSGD_ASSERT(x.cols() == model.config().input_dim,
                "input width != model input_dim");
  ws.ensure(model, batch);
  const std::size_t layers = model.layer_count();
  tensor::ConstMatrixView input = x;
  for (std::size_t l = 0; l < layers; ++l) {
    const Layer& layer = model.layer(l);
    auto out = batch_rows(ws.acts()[l], batch);
    // out = act(input * W^T + b), bias and activation fused into the GEMM
    // write-back (the output layer keeps raw logits: bias only).
    const tensor::Epilogue ep =
        l + 1 < layers ? bias_act_epilogue(model.config().hidden_activation)
                       : tensor::Epilogue::kBias;
    tensor::gemm_bias_act(tensor::Trans::kNo, tensor::Trans::kYes,
                          tensor::Scalar{1}, input, layer.weights.view(), out,
                          layer.bias.view(), ep);
    input = out;
  }
}

tensor::Scalar compute_loss(const Model& model, tensor::ConstMatrixView x,
                            std::span<const std::int32_t> labels,
                            Workspace& ws) {
  forward(model, x, ws);
  auto logits = ws.logits().rows_view(0, x.rows());
  return softmax_cross_entropy(logits, labels, nullptr);
}

namespace {

// Shared backward pass: assumes ws.deltas().back() already holds
// dLoss/dlogits for the batch. Fills `grad` and the remaining deltas.
void backward(const Model& model, tensor::ConstMatrixView x, Workspace& ws,
              Gradient& grad) {
  const Index batch = x.rows();
  const std::size_t layers = model.layer_count();
  HETSGD_ASSERT(grad.same_shape(model), "gradient shape mismatch");

  for (std::size_t l = layers; l-- > 0;) {
    auto delta = ws.deltas()[l].rows_view(0, batch);
    // Input to layer l during the forward pass.
    tensor::ConstMatrixView prev =
        l == 0 ? x
               : tensor::ConstMatrixView(ws.acts()[l - 1].rows_view(0, batch));
    // dW^l = delta^T * prev   (out x in)
    tensor::matmul_tn(delta, prev, grad.layer(l).weights.view());
    // db^l = column sums of delta.
    tensor::col_sums(delta, grad.layer(l).bias.view());
    if (l > 0) {
      // delta_{l-1} = (delta_l * W^l) ⊙ act'(a_{l-1})
      auto prev_delta = ws.deltas()[l - 1].rows_view(0, batch);
      tensor::matmul_nn(delta, model.layer(l).weights.view(), prev_delta);
      activation_backward(model.config().hidden_activation,
                          ws.acts()[l - 1].rows_view(0, batch), prev_delta);
    }
  }
}

}  // namespace

tensor::Scalar compute_gradient(const Model& model, tensor::ConstMatrixView x,
                                std::span<const std::int32_t> labels,
                                Workspace& ws, Gradient& grad) {
  forward(model, x, ws);
  const Index batch = x.rows();
  auto logits = ws.logits().rows_view(0, batch);
  auto dlogits = ws.deltas().back().rows_view(0, batch);
  const Scalar loss =
      softmax_cross_entropy(logits, labels, &dlogits);
  backward(model, x, ws, grad);
  return loss;
}

tensor::Scalar compute_gradient_bce(const Model& model,
                                    tensor::ConstMatrixView x,
                                    tensor::ConstMatrixView targets,
                                    Workspace& ws, Gradient& grad) {
  forward(model, x, ws);
  const Index batch = x.rows();
  auto logits = ws.logits().rows_view(0, batch);
  auto dlogits = ws.deltas().back().rows_view(0, batch);
  const Scalar loss = sigmoid_bce(logits, targets, &dlogits);
  backward(model, x, ws, grad);
  return loss;
}

void sgd_step(Model& model, const Gradient& grad, tensor::Scalar eta) {
  model.axpy(-eta, grad);
}

double training_flops(const MlpConfig& config, tensor::Index batch) {
  double flops = 0;
  for (const auto& s : config.layer_shapes()) {
    // Forward GEMM + two backward GEMMs (dW and delta propagation), each
    // 2*m*n*k; element-wise work is negligible by comparison.
    flops += 3.0 * tensor::gemm_flops(batch, s.out, s.in);
  }
  return flops;
}

}  // namespace hetsgd::nn
