#include "nn/serialize.hpp"

#include <cstdint>
#include <cstring>

#include "common/macros.hpp"

namespace hetsgd::nn {

namespace {

constexpr char kMagic[4] = {'H', 'S', 'G', 'D'};

// Envelope bytes before the payload: magic + version + size + CRC.
constexpr std::size_t kEnvelopeBytes = 4 + 4 + 8 + 4;

// Upper bound on any single checkpoint dimension. Garbage headers must not
// turn into multi-terabyte allocations before the shape check can reject
// them.
constexpr std::int64_t kMaxDim = 1 << 24;

void write_matrix(ByteWriter& w, const tensor::Matrix& m) {
  w.write_i64(m.rows());
  w.write_i64(m.cols());
  w.write_bytes(m.data(), static_cast<std::size_t>(m.size()) *
                              sizeof(tensor::Scalar));
}

bool read_matrix(ByteReader& r, tensor::Matrix& m, std::string* error) {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  if (!r.read_i64(&rows) || !r.read_i64(&cols)) {
    if (error) *error = "checkpoint truncated (layer header)";
    return false;
  }
  if (rows != m.rows() || cols != m.cols()) {
    if (error) *error = "checkpoint layer shape mismatch";
    return false;
  }
  if (!r.read_bytes(m.data(), static_cast<std::size_t>(m.size()) *
                                  sizeof(tensor::Scalar))) {
    if (error) *error = "checkpoint truncated (layer data)";
    return false;
  }
  return true;
}

}  // namespace

bool write_envelope_file(const std::string& path,
                         const std::vector<std::uint8_t>& payload,
                         std::string* error) {
  ByteWriter w;
  w.write_bytes(kMagic, sizeof(kMagic));
  w.write_u32(kCheckpointVersion);
  w.write_u64(static_cast<std::uint64_t>(payload.size()));
  w.write_u32(crc32(payload.data(), payload.size()));
  w.write_bytes(payload.data(), payload.size());
  return atomic_write_file(path, w.data().data(), w.size(), error);
}

bool read_envelope_file(const std::string& path,
                        std::vector<std::uint8_t>* payload,
                        std::string* error) {
  std::vector<std::uint8_t> raw;
  if (!read_file(path, &raw, error)) return false;
  if (raw.size() < kEnvelopeBytes) {
    if (error) *error = "checkpoint truncated (envelope): " + path;
    return false;
  }
  ByteReader r(raw);
  char magic[4] = {};
  r.read_bytes(magic, sizeof(magic));
  if (std::memcmp(magic, kMagic, 4) != 0) {
    if (error) *error = "not a hetsgd checkpoint (bad magic): " + path;
    return false;
  }
  std::uint32_t version = 0;
  std::uint64_t size = 0;
  std::uint32_t crc = 0;
  r.read_u32(&version);
  r.read_u64(&size);
  r.read_u32(&crc);
  if (version != kCheckpointVersion) {
    if (error) {
      *error = "unsupported checkpoint version " + std::to_string(version);
    }
    return false;
  }
  if (size != r.remaining()) {
    if (error) *error = "checkpoint truncated (size mismatch, torn write?): " + path;
    return false;
  }
  payload->assign(raw.begin() + kEnvelopeBytes, raw.end());
  if (crc32(payload->data(), payload->size()) != crc) {
    if (error) *error = "checkpoint CRC mismatch (corrupt file): " + path;
    return false;
  }
  return true;
}

void write_model(ByteWriter& w, const Model& model) {
  const MlpConfig& c = model.config();
  w.write_i64(c.input_dim);
  w.write_i64(c.num_classes);
  w.write_u32(static_cast<std::uint32_t>(c.hidden_layers));
  w.write_i64(c.hidden_units);
  w.write_u32(static_cast<std::uint32_t>(c.hidden_activation));
  w.write_u32(static_cast<std::uint32_t>(c.init));

  w.write_u32(static_cast<std::uint32_t>(model.layer_count()));
  for (std::size_t l = 0; l < model.layer_count(); ++l) {
    write_matrix(w, model.layer(l).weights);
    write_matrix(w, model.layer(l).bias);
  }
}

std::optional<Model> read_model(ByteReader& r, std::string* error) {
  MlpConfig c;
  std::uint32_t hidden_layers = 0;
  std::uint32_t activation = 0;
  std::uint32_t init = 0;
  std::int64_t input_dim = 0;
  std::int64_t num_classes = 0;
  std::int64_t hidden_units = 0;
  if (!r.read_i64(&input_dim) || !r.read_i64(&num_classes) ||
      !r.read_u32(&hidden_layers) || !r.read_i64(&hidden_units) ||
      !r.read_u32(&activation) || !r.read_u32(&init)) {
    if (error) *error = "checkpoint truncated (header)";
    return std::nullopt;
  }
  // Sanity-check the header before trusting it with allocations:
  // MlpConfig::validate() aborts, and a corrupted size field could demand
  // terabytes. Everything here must fail soft.
  if (input_dim <= 0 || input_dim > kMaxDim || num_classes < 2 ||
      num_classes > kMaxDim || hidden_layers > 1024 ||
      (hidden_layers > 0 && (hidden_units <= 0 || hidden_units > kMaxDim)) ||
      activation > static_cast<std::uint32_t>(Activation::kRelu) ||
      init > static_cast<std::uint32_t>(InitScheme::kZero)) {
    if (error) *error = "checkpoint header is implausible (corrupt file?)";
    return std::nullopt;
  }
  c.input_dim = input_dim;
  c.num_classes = num_classes;
  c.hidden_layers = static_cast<int>(hidden_layers);
  c.hidden_units = hidden_units;
  c.hidden_activation = static_cast<Activation>(activation);
  c.init = static_cast<InitScheme>(init);

  Rng rng(0);  // placeholder init, immediately overwritten
  Model model(c, rng);
  std::uint32_t layers = 0;
  if (!r.read_u32(&layers)) {
    if (error) *error = "checkpoint truncated (layer count)";
    return std::nullopt;
  }
  if (layers != model.layer_count()) {
    if (error) *error = "checkpoint layer count mismatch";
    return std::nullopt;
  }
  for (std::size_t l = 0; l < model.layer_count(); ++l) {
    if (!read_matrix(r, model.layer(l).weights, error) ||
        !read_matrix(r, model.layer(l).bias, error)) {
      return std::nullopt;
    }
  }
  return model;
}

void write_params(ByteWriter& w, const Model& model) {
  for (std::size_t l = 0; l < model.layer_count(); ++l) {
    write_matrix(w, model.layer(l).weights);
    write_matrix(w, model.layer(l).bias);
  }
}

bool read_params(ByteReader& r, Model& model, std::string* error) {
  for (std::size_t l = 0; l < model.layer_count(); ++l) {
    if (!read_matrix(r, model.layer(l).weights, error) ||
        !read_matrix(r, model.layer(l).bias, error)) {
      return false;
    }
  }
  return true;
}

bool try_save_model(const Model& model, const std::string& path,
                    std::string* error) {
  ByteWriter w;
  write_model(w, model);
  return write_envelope_file(path, w.data(), error);
}

void save_model(const Model& model, const std::string& path) {
  std::string error;
  const bool ok = try_save_model(model, path, &error);
  HETSGD_ASSERT(ok, error.c_str());
}

std::optional<Model> try_load_model(const std::string& path,
                                    std::string* error) {
  std::vector<std::uint8_t> payload;
  if (!read_envelope_file(path, &payload, error)) return std::nullopt;
  ByteReader r(payload);
  return read_model(r, error);
}

Model load_model(const std::string& path) {
  std::string error;
  std::optional<Model> model = try_load_model(path, &error);
  HETSGD_ASSERT(model.has_value(), error.c_str());
  return std::move(*model);
}

}  // namespace hetsgd::nn
