#include "nn/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/macros.hpp"

namespace hetsgd::nn {

namespace {

constexpr char kMagic[4] = {'H', 'S', 'G', 'D'};

void write_u32(std::ofstream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_i64(std::ofstream& out, std::int64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::ifstream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  HETSGD_ASSERT(in.good(), "checkpoint truncated");
  return v;
}

std::int64_t read_i64(std::ifstream& in) {
  std::int64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  HETSGD_ASSERT(in.good(), "checkpoint truncated");
  return v;
}

void write_matrix(std::ofstream& out, const tensor::Matrix& m) {
  write_i64(out, m.rows());
  write_i64(out, m.cols());
  out.write(reinterpret_cast<const char*>(m.data()),
            static_cast<std::streamsize>(m.size() * sizeof(tensor::Scalar)));
}

void read_matrix(std::ifstream& in, tensor::Matrix& m) {
  const tensor::Index rows = read_i64(in);
  const tensor::Index cols = read_i64(in);
  HETSGD_ASSERT(rows == m.rows() && cols == m.cols(),
                "checkpoint layer shape mismatch");
  in.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.size() * sizeof(tensor::Scalar)));
  HETSGD_ASSERT(in.good(), "checkpoint truncated");
}

}  // namespace

void save_model(const Model& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  HETSGD_ASSERT(out.good(), "cannot open checkpoint for writing");
  out.write(kMagic, sizeof(kMagic));
  write_u32(out, kCheckpointVersion);

  const MlpConfig& c = model.config();
  write_i64(out, c.input_dim);
  write_i64(out, c.num_classes);
  write_u32(out, static_cast<std::uint32_t>(c.hidden_layers));
  write_i64(out, c.hidden_units);
  write_u32(out, static_cast<std::uint32_t>(c.hidden_activation));
  write_u32(out, static_cast<std::uint32_t>(c.init));

  write_u32(out, static_cast<std::uint32_t>(model.layer_count()));
  for (std::size_t l = 0; l < model.layer_count(); ++l) {
    write_matrix(out, model.layer(l).weights);
    write_matrix(out, model.layer(l).bias);
  }
  out.flush();
  HETSGD_ASSERT(out.good(), "checkpoint write failed");
}

Model load_model(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  HETSGD_ASSERT(in.good(), "cannot open checkpoint for reading");
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  HETSGD_ASSERT(in.good() && std::memcmp(magic, kMagic, 4) == 0,
                "not a hetsgd checkpoint (bad magic)");
  const std::uint32_t version = read_u32(in);
  HETSGD_ASSERT(version == kCheckpointVersion,
                "unsupported checkpoint version");

  MlpConfig c;
  c.input_dim = read_i64(in);
  c.num_classes = read_i64(in);
  c.hidden_layers = static_cast<int>(read_u32(in));
  c.hidden_units = read_i64(in);
  c.hidden_activation = static_cast<Activation>(read_u32(in));
  c.init = static_cast<InitScheme>(read_u32(in));
  c.validate();

  Rng rng(0);  // placeholder init, immediately overwritten
  Model model(c, rng);
  const std::uint32_t layers = read_u32(in);
  HETSGD_ASSERT(layers == model.layer_count(),
                "checkpoint layer count mismatch");
  for (std::size_t l = 0; l < model.layer_count(); ++l) {
    read_matrix(in, model.layer(l).weights);
    read_matrix(in, model.layer(l).bias);
  }
  return model;
}

}  // namespace hetsgd::nn
