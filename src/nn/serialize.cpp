#include "nn/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/macros.hpp"

namespace hetsgd::nn {

namespace {

constexpr char kMagic[4] = {'H', 'S', 'G', 'D'};

// Upper bound on any single checkpoint dimension. Garbage headers must not
// turn into multi-terabyte allocations before the shape check can reject
// them.
constexpr std::int64_t kMaxDim = 1 << 24;

void write_u32(std::ofstream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_i64(std::ofstream& out, std::int64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool read_u32(std::ifstream& in, std::uint32_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

bool read_i64(std::ifstream& in, std::int64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

void write_matrix(std::ofstream& out, const tensor::Matrix& m) {
  write_i64(out, m.rows());
  write_i64(out, m.cols());
  out.write(reinterpret_cast<const char*>(m.data()),
            static_cast<std::streamsize>(m.size() * sizeof(tensor::Scalar)));
}

bool read_matrix(std::ifstream& in, tensor::Matrix& m, std::string* error) {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  if (!read_i64(in, &rows) || !read_i64(in, &cols)) {
    if (error) *error = "checkpoint truncated (layer header)";
    return false;
  }
  if (rows != m.rows() || cols != m.cols()) {
    if (error) *error = "checkpoint layer shape mismatch";
    return false;
  }
  in.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.size() * sizeof(tensor::Scalar)));
  if (!in.good()) {
    if (error) *error = "checkpoint truncated (layer data)";
    return false;
  }
  return true;
}

}  // namespace

void save_model(const Model& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  HETSGD_ASSERT(out.good(), "cannot open checkpoint for writing");
  out.write(kMagic, sizeof(kMagic));
  write_u32(out, kCheckpointVersion);

  const MlpConfig& c = model.config();
  write_i64(out, c.input_dim);
  write_i64(out, c.num_classes);
  write_u32(out, static_cast<std::uint32_t>(c.hidden_layers));
  write_i64(out, c.hidden_units);
  write_u32(out, static_cast<std::uint32_t>(c.hidden_activation));
  write_u32(out, static_cast<std::uint32_t>(c.init));

  write_u32(out, static_cast<std::uint32_t>(model.layer_count()));
  for (std::size_t l = 0; l < model.layer_count(); ++l) {
    write_matrix(out, model.layer(l).weights);
    write_matrix(out, model.layer(l).bias);
  }
  out.flush();
  HETSGD_ASSERT(out.good(), "checkpoint write failed");
}

std::optional<Model> try_load_model(const std::string& path,
                                    std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    if (error) *error = "cannot open checkpoint for reading: " + path;
    return std::nullopt;
  }
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, 4) != 0) {
    if (error) *error = "not a hetsgd checkpoint (bad magic)";
    return std::nullopt;
  }
  std::uint32_t version = 0;
  if (!read_u32(in, &version)) {
    if (error) *error = "checkpoint truncated (version)";
    return std::nullopt;
  }
  if (version != kCheckpointVersion) {
    if (error) {
      *error = "unsupported checkpoint version " + std::to_string(version);
    }
    return std::nullopt;
  }

  MlpConfig c;
  std::uint32_t hidden_layers = 0;
  std::uint32_t activation = 0;
  std::uint32_t init = 0;
  std::int64_t input_dim = 0;
  std::int64_t num_classes = 0;
  std::int64_t hidden_units = 0;
  if (!read_i64(in, &input_dim) || !read_i64(in, &num_classes) ||
      !read_u32(in, &hidden_layers) || !read_i64(in, &hidden_units) ||
      !read_u32(in, &activation) || !read_u32(in, &init)) {
    if (error) *error = "checkpoint truncated (header)";
    return std::nullopt;
  }
  // Sanity-check the header before trusting it with allocations:
  // MlpConfig::validate() aborts, and a corrupted size field could demand
  // terabytes. Everything here must fail soft.
  if (input_dim <= 0 || input_dim > kMaxDim || num_classes < 2 ||
      num_classes > kMaxDim || hidden_layers > 1024 ||
      (hidden_layers > 0 && (hidden_units <= 0 || hidden_units > kMaxDim)) ||
      activation > static_cast<std::uint32_t>(Activation::kRelu) ||
      init > static_cast<std::uint32_t>(InitScheme::kZero)) {
    if (error) *error = "checkpoint header is implausible (corrupt file?)";
    return std::nullopt;
  }
  c.input_dim = input_dim;
  c.num_classes = num_classes;
  c.hidden_layers = static_cast<int>(hidden_layers);
  c.hidden_units = hidden_units;
  c.hidden_activation = static_cast<Activation>(activation);
  c.init = static_cast<InitScheme>(init);

  Rng rng(0);  // placeholder init, immediately overwritten
  Model model(c, rng);
  std::uint32_t layers = 0;
  if (!read_u32(in, &layers)) {
    if (error) *error = "checkpoint truncated (layer count)";
    return std::nullopt;
  }
  if (layers != model.layer_count()) {
    if (error) *error = "checkpoint layer count mismatch";
    return std::nullopt;
  }
  for (std::size_t l = 0; l < model.layer_count(); ++l) {
    if (!read_matrix(in, model.layer(l).weights, error) ||
        !read_matrix(in, model.layer(l).bias, error)) {
      return std::nullopt;
    }
  }
  return model;
}

Model load_model(const std::string& path) {
  std::string error;
  std::optional<Model> model = try_load_model(path, &error);
  HETSGD_ASSERT(model.has_value(), error.c_str());
  return std::move(*model);
}

}  // namespace hetsgd::nn
