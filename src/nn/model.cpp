#include "nn/model.hpp"

#include <algorithm>
#include <cmath>

#include "common/macros.hpp"
#include "tensor/ops.hpp"

namespace hetsgd::nn {

std::vector<LayerShape> MlpConfig::layer_shapes() const {
  std::vector<LayerShape> shapes;
  shapes.reserve(static_cast<std::size_t>(hidden_layers) + 1);
  tensor::Index in = input_dim;
  for (int l = 0; l < hidden_layers; ++l) {
    shapes.push_back({in, hidden_units});
    in = hidden_units;
  }
  shapes.push_back({in, num_classes});
  return shapes;
}

std::uint64_t MlpConfig::parameter_count() const {
  std::uint64_t total = 0;
  for (const auto& s : layer_shapes()) {
    total += static_cast<std::uint64_t>(s.in) * s.out + s.out;
  }
  return total;
}

void MlpConfig::validate() const {
  HETSGD_ASSERT(input_dim > 0, "MlpConfig: input_dim must be positive");
  HETSGD_ASSERT(num_classes >= 2, "MlpConfig: need at least two classes");
  HETSGD_ASSERT(hidden_layers >= 0, "MlpConfig: negative hidden layer count");
  HETSGD_ASSERT(hidden_layers == 0 || hidden_units > 0,
                "MlpConfig: hidden_units must be positive");
}

namespace {

void init_layer(Layer& layer, InitScheme scheme, Rng& rng) {
  const tensor::Index fan_in = layer.weights.cols();
  switch (scheme) {
    case InitScheme::kScaledNormal: {
      const tensor::Scalar stddev =
          tensor::Scalar{1} / std::sqrt(static_cast<tensor::Scalar>(fan_in));
      tensor::fill_normal(layer.weights.view(), rng, 0, stddev);
      layer.bias.set_zero();
      break;
    }
    case InitScheme::kGlorotUniform: {
      const tensor::Index fan_out = layer.weights.rows();
      const tensor::Scalar limit =
          std::sqrt(tensor::Scalar{6} /
                    static_cast<tensor::Scalar>(fan_in + fan_out));
      tensor::fill_uniform(layer.weights.view(), rng, -limit, limit);
      layer.bias.set_zero();
      break;
    }
    case InitScheme::kZero:
      layer.weights.set_zero();
      layer.bias.set_zero();
      break;
  }
}

}  // namespace

Model::Model(const MlpConfig& config, Rng& rng) : config_(config) {
  config_.validate();
  for (const auto& s : config_.layer_shapes()) {
    Layer layer;
    layer.weights = tensor::Matrix(s.out, s.in);
    layer.bias = tensor::Matrix(1, s.out);
    layers_.push_back(std::move(layer));
  }
  initialize(rng);
}

std::uint64_t Model::parameter_count() const {
  std::uint64_t total = 0;
  for (const auto& l : layers_) {
    total += static_cast<std::uint64_t>(l.weights.size()) + l.bias.size();
  }
  return total;
}

void Model::initialize(Rng& rng) {
  for (auto& layer : layers_) {
    init_layer(layer, config_.init, rng);
  }
}

void Model::set_zero() {
  for (auto& layer : layers_) {
    layer.weights.set_zero();
    layer.bias.set_zero();
  }
}

// hetsgd-racy: when `this` is the shared global model, the tensor::axpy
// calls below are the paper's unsynchronized Hogwild update — every CPU
// lane writes the shared parameters while other lanes read them mid-forward
// and the GPU worker snapshots them (race:hetsgd::tensor::axpy in
// scripts/tsan.supp). The race IS the algorithm; do not add locking here.
void Model::axpy(tensor::Scalar alpha, const Model& other) {
  HETSGD_ASSERT(same_shape(other), "Model::axpy shape mismatch");
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    tensor::axpy(alpha, other.layers_[l].weights.view(),
                 layers_[l].weights.view());
    tensor::axpy(alpha, other.layers_[l].bias.view(), layers_[l].bias.view());
  }
}

tensor::Scalar Model::max_abs_diff(const Model& other) const {
  HETSGD_ASSERT(same_shape(other), "Model::max_abs_diff shape mismatch");
  tensor::Scalar best = 0;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    best = std::max(best, tensor::max_abs_diff(layers_[l].weights.view(),
                                               other.layers_[l].weights.view()));
    best = std::max(best, tensor::max_abs_diff(layers_[l].bias.view(),
                                               other.layers_[l].bias.view()));
  }
  return best;
}

tensor::Scalar Model::norm() const {
  tensor::Scalar acc = 0;
  for (const auto& l : layers_) {
    acc += tensor::frobenius_norm_sq(l.weights.view());
    acc += tensor::frobenius_norm_sq(l.bias.view());
  }
  return std::sqrt(acc);
}

bool Model::all_finite() const {
  for (const auto& l : layers_) {
    if (!tensor::all_finite(l.weights.view())) return false;
    if (!tensor::all_finite(l.bias.view())) return false;
  }
  return true;
}

bool Model::same_shape(const Model& other) const {
  if (layers_.size() != other.layers_.size()) return false;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    if (!layers_[l].weights.same_shape(other.layers_[l].weights)) return false;
    if (!layers_[l].bias.same_shape(other.layers_[l].bias)) return false;
  }
  return true;
}

Gradient make_zero_gradient(const Model& model) {
  Gradient g = model;
  g.set_zero();
  return g;
}

}  // namespace hetsgd::nn
