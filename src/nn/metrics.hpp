// Classification evaluation metrics over a trained model.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/mlp.hpp"
#include "tensor/matrix.hpp"

namespace hetsgd::nn {

// Row-major confusion matrix: count[actual * classes + predicted].
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::int32_t classes);

  void add(std::int32_t actual, std::int32_t predicted);

  std::int32_t classes() const { return classes_; }
  std::uint64_t count(std::int32_t actual, std::int32_t predicted) const;
  std::uint64_t total() const { return total_; }

  double accuracy() const;
  // Per-class precision / recall / F1; classes with no support or no
  // predictions yield 0.
  double precision(std::int32_t cls) const;
  double recall(std::int32_t cls) const;
  double f1(std::int32_t cls) const;
  // Unweighted mean over classes (macro averaging).
  double macro_f1() const;

 private:
  std::int32_t classes_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

// Runs the model over (x, labels) in chunks and fills a confusion matrix.
ConfusionMatrix evaluate_classifier(const Model& model,
                                    tensor::ConstMatrixView x,
                                    std::span<const std::int32_t> labels,
                                    Workspace& ws);

}  // namespace hetsgd::nn
