// The DNN model: a stack of fully-connected layers (§III).
//
// Layer l holds W^l ∈ R^{d_{l+1} x d_l} (row-major, one row per output
// unit, matching Eq. (1)'s W·x convention) and a bias row b^l ∈ R^{1 x
// d_{l+1}}. The same structure doubles as a gradient container.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "nn/activation.hpp"
#include "tensor/matrix.hpp"

namespace hetsgd::nn {

// Weight initialization schemes.
enum class InitScheme {
  // N(0, 1/sqrt(fan_in)) — the stabilized reading of the paper's "normal
  // distribution with standard deviation equal to the number of units in
  // the current layer" (taken verbatim the loss overflows immediately).
  kScaledNormal,
  // Glorot/Xavier uniform.
  kGlorotUniform,
  // All zeros (gradient containers, tests).
  kZero,
};

struct LayerShape {
  tensor::Index in = 0;
  tensor::Index out = 0;
};

// Network architecture description.
struct MlpConfig {
  tensor::Index input_dim = 0;
  tensor::Index num_classes = 0;
  // Hidden layers, all `hidden_units` wide (paper: 512 units; 4-8 layers).
  int hidden_layers = 1;
  tensor::Index hidden_units = 512;
  Activation hidden_activation = Activation::kSigmoid;
  InitScheme init = InitScheme::kScaledNormal;

  // Shapes of all P = hidden_layers + 1 weight layers.
  std::vector<LayerShape> layer_shapes() const;
  // Total number of trainable parameters.
  std::uint64_t parameter_count() const;
  // Validates and aborts on an inconsistent configuration.
  void validate() const;
};

struct Layer {
  tensor::Matrix weights;  // out x in
  tensor::Matrix bias;     // 1 x out
};

// The model W = {W^1 … W^P}. Value semantics: copying a Model is the "deep
// copy" the GPU worker performs; CPU workers share one instance by
// reference (Hogwild).
//
// hetsgd-racy: the implicitly-generated copy constructor / operator= are a
// sanctioned race site when the source is the shared global model — the
// GPU worker's upload snapshot and the coordinator's loss-evaluation
// snapshot/rollback deliberately copy while Hogwild lanes write
// (race:hetsgd::nn::Model::operator= in scripts/tsan.supp).
class Model {
 public:
  Model() = default;
  // Builds and initializes from a config.
  Model(const MlpConfig& config, Rng& rng);

  const MlpConfig& config() const { return config_; }
  std::size_t layer_count() const { return layers_.size(); }
  Layer& layer(std::size_t l) { return layers_[l]; }
  const Layer& layer(std::size_t l) const { return layers_[l]; }

  std::uint64_t parameter_count() const;

  // Reinitializes weights (same scheme/seed discipline as construction).
  void initialize(Rng& rng);

  // Sets all parameters to zero (turning the model into a gradient buffer).
  void set_zero();

  // this += alpha * other, layer by layer. This is the SGD update when
  // `other` is a gradient and alpha = -eta; it is intentionally free of any
  // synchronization so Hogwild semantics apply when the model is shared.
  void axpy(tensor::Scalar alpha, const Model& other);

  // Max |a - b| over all parameters (tests, staleness measurements).
  tensor::Scalar max_abs_diff(const Model& other) const;

  // L2 norm over all parameters.
  tensor::Scalar norm() const;

  // True if every parameter is finite.
  bool all_finite() const;

  // Structural equality of shapes (not values).
  bool same_shape(const Model& other) const;

 private:
  MlpConfig config_;
  std::vector<Layer> layers_;
};

// A gradient has exactly the model's structure.
using Gradient = Model;

// Builds a zero gradient matching `model`'s shape.
Gradient make_zero_gradient(const Model& model);

}  // namespace hetsgd::nn
