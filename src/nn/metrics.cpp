#include "nn/metrics.hpp"

#include <algorithm>

#include "common/macros.hpp"

namespace hetsgd::nn {

using tensor::Index;

ConfusionMatrix::ConfusionMatrix(std::int32_t classes)
    : classes_(classes),
      counts_(static_cast<std::size_t>(classes) * classes, 0) {
  HETSGD_ASSERT(classes >= 2, "need at least two classes");
}

void ConfusionMatrix::add(std::int32_t actual, std::int32_t predicted) {
  HETSGD_ASSERT(actual >= 0 && actual < classes_ && predicted >= 0 &&
                    predicted < classes_,
                "class out of range");
  ++counts_[static_cast<std::size_t>(actual) * classes_ + predicted];
  ++total_;
}

std::uint64_t ConfusionMatrix::count(std::int32_t actual,
                                     std::int32_t predicted) const {
  HETSGD_ASSERT(actual >= 0 && actual < classes_ && predicted >= 0 &&
                    predicted < classes_,
                "class out of range");
  return counts_[static_cast<std::size_t>(actual) * classes_ + predicted];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::uint64_t correct = 0;
  for (std::int32_t c = 0; c < classes_; ++c) {
    correct += count(c, c);
  }
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::precision(std::int32_t cls) const {
  std::uint64_t predicted = 0;
  for (std::int32_t a = 0; a < classes_; ++a) {
    predicted += count(a, cls);
  }
  if (predicted == 0) return 0.0;
  return static_cast<double>(count(cls, cls)) /
         static_cast<double>(predicted);
}

double ConfusionMatrix::recall(std::int32_t cls) const {
  std::uint64_t actual = 0;
  for (std::int32_t p = 0; p < classes_; ++p) {
    actual += count(cls, p);
  }
  if (actual == 0) return 0.0;
  return static_cast<double>(count(cls, cls)) / static_cast<double>(actual);
}

double ConfusionMatrix::f1(std::int32_t cls) const {
  const double p = precision(cls);
  const double r = recall(cls);
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double ConfusionMatrix::macro_f1() const {
  double sum = 0.0;
  for (std::int32_t c = 0; c < classes_; ++c) {
    sum += f1(c);
  }
  return sum / static_cast<double>(classes_);
}

ConfusionMatrix evaluate_classifier(const Model& model,
                                    tensor::ConstMatrixView x,
                                    std::span<const std::int32_t> labels,
                                    Workspace& ws) {
  HETSGD_ASSERT(static_cast<Index>(labels.size()) == x.rows(),
                "label count != example count");
  ConfusionMatrix cm(static_cast<std::int32_t>(model.config().num_classes));
  const Index chunk = 512;
  for (Index begin = 0; begin < x.rows(); begin += chunk) {
    const Index count = std::min(chunk, x.rows() - begin);
    forward(model, x.rows_view(begin, count), ws);
    auto logits = ws.logits().rows_view(0, count);
    for (Index r = 0; r < count; ++r) {
      const tensor::Scalar* row = logits.row(r);
      Index best = 0;
      for (Index c = 1; c < logits.cols(); ++c) {
        if (row[c] > row[best]) best = c;
      }
      cm.add(labels[static_cast<std::size_t>(begin + r)],
             static_cast<std::int32_t>(best));
    }
  }
  return cm;
}

}  // namespace hetsgd::nn
