// Loss functions and their gradients with respect to the logits.
//
// The paper's experiments use softmax + cross-entropy (§VII-A); the
// sigmoid+BCE multi-label loss covers the delicious-style setting where an
// example carries several labels at once.
#pragma once

#include <cstdint>
#include <span>

#include "tensor/matrix.hpp"

namespace hetsgd::nn {

enum class LossKind {
  kSoftmaxCrossEntropy,  // labels: one class index per example
  kSigmoidBce,           // labels: dense 0/1 target matrix
};

// Mean softmax cross-entropy over the batch. `logits` is B x C, `labels`
// holds B class indices in [0, C). If `dlogits` is non-null it receives
// dLoss/dlogits = (softmax(logits) - onehot) / B.
tensor::Scalar softmax_cross_entropy(tensor::ConstMatrixView logits,
                                     std::span<const std::int32_t> labels,
                                     tensor::MatrixView* dlogits);

// Mean element-wise sigmoid binary cross-entropy. `targets` is B x C of
// {0,1}. If `dlogits` is non-null it receives
// dLoss/dlogits = (sigmoid(logits) - targets) / (B*C)... normalized per
// example (divided by B only) so magnitudes are comparable with softmax.
tensor::Scalar sigmoid_bce(tensor::ConstMatrixView logits,
                           tensor::ConstMatrixView targets,
                           tensor::MatrixView* dlogits);

// Fraction of examples whose argmax(logits) equals the label.
double accuracy(tensor::ConstMatrixView logits,
                std::span<const std::int32_t> labels);

}  // namespace hetsgd::nn
