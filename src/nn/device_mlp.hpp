// GPU-side MLP execution on the simulated device.
//
// Mirrors the CUDA/cuBLAS path of the paper's GPU worker (§V-A): the model
// replica is a deep copy living in device memory ("a transition buffer
// between CPU and GPU"), batches are moved host->device, the
// forward/backward passes run as a kernel sequence on a stream, and the
// resulting gradient is moved device->host where the worker integrates it
// into the global model. All intermediate outputs stay in device memory to
// minimize data movement, exactly as described in the paper.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/device.hpp"
#include "nn/model.hpp"

namespace hetsgd::nn {

class DeviceMlp {
 public:
  // Allocates device memory for the replica, gradient, activations, and
  // staging buffers, sized for batches up to `max_batch`. The allocation is
  // checked against the device's (16 GB) capacity.
  DeviceMlp(gpusim::Device& device, const MlpConfig& config,
            tensor::Index max_batch);

  const MlpConfig& config() const { return config_; }
  tensor::Index max_batch() const { return max_batch_; }

  // Device-resident bytes held by this executor.
  std::uint64_t device_bytes() const;

  // Uploads (deep-copies) the host model into the device replica.
  // Returns the virtual completion time.
  double upload_model(const Model& model, double issue_time);

  // Runs forward + backward on `x` (batch x input_dim) with the given
  // labels against the device replica. Returns the batch loss and sets
  // `*completion_time`. The gradient remains in device memory.
  tensor::Scalar compute_gradient(tensor::ConstMatrixView x,
                                  std::span<const std::int32_t> labels,
                                  double issue_time, double* completion_time);

  // replica <- replica - eta * gradient, entirely on device.
  double apply_gradient_on_device(tensor::Scalar eta, double issue_time);

  // Moves the device gradient into `grad` (host). The worker then applies
  // it to the global model (gradient-push integration).
  double download_gradient(Gradient& grad, double issue_time);

  // Moves the device replica into `model` (host) — replica-push
  // integration; overwrites concurrent host updates, see §VI-B staleness
  // discussion.
  double download_model(Model& model, double issue_time);

 private:
  gpusim::Device& device_;
  gpusim::Stream& stream_;
  MlpConfig config_;
  tensor::Index max_batch_;

  struct DeviceLayer {
    gpusim::DeviceMatrix weights;
    gpusim::DeviceMatrix bias;
  };
  std::vector<DeviceLayer> replica_;
  std::vector<DeviceLayer> gradient_;
  std::vector<gpusim::DeviceMatrix> acts_;
  std::vector<gpusim::DeviceMatrix> deltas_;
  gpusim::DeviceMatrix input_;
};

}  // namespace hetsgd::nn
