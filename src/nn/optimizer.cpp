#include "nn/optimizer.hpp"

#include <cmath>

#include "common/macros.hpp"
#include "nn/mlp.hpp"
#include "nn/serialize.hpp"
#include "tensor/ops.hpp"

namespace hetsgd::nn {

using tensor::Index;
using tensor::Scalar;

const char* optimizer_name(OptimizerKind k) {
  switch (k) {
    case OptimizerKind::kSgd:      return "sgd";
    case OptimizerKind::kMomentum: return "momentum";
    case OptimizerKind::kAdam:     return "adam";
  }
  return "?";
}

bool parse_optimizer(const std::string& name, OptimizerKind& out) {
  if (name == "sgd")      { out = OptimizerKind::kSgd;      return true; }
  if (name == "momentum") { out = OptimizerKind::kMomentum; return true; }
  if (name == "adam")     { out = OptimizerKind::kAdam;     return true; }
  return false;
}

Optimizer::Optimizer(const OptimizerConfig& config, const Model& shape)
    : config_(config), shape_(&shape) {
  HETSGD_ASSERT(config_.momentum >= 0.0 && config_.momentum < 1.0,
                "momentum out of [0, 1)");
  HETSGD_ASSERT(config_.beta1 >= 0.0 && config_.beta1 < 1.0 &&
                    config_.beta2 >= 0.0 && config_.beta2 < 1.0,
                "Adam betas out of [0, 1)");
  HETSGD_ASSERT(config_.weight_decay >= 0.0, "negative weight decay");
}

void Optimizer::ensure_state(const Model& shape) {
  if (state_ready_) return;
  if (config_.kind != OptimizerKind::kSgd) {
    velocity_ = make_zero_gradient(shape);
  }
  if (config_.kind == OptimizerKind::kAdam) {
    second_ = make_zero_gradient(shape);
  }
  state_ready_ = true;
}

void Optimizer::step(Model& model, const Gradient& grad, tensor::Scalar eta) {
  HETSGD_ASSERT(model.same_shape(grad), "optimizer: model/grad mismatch");
  ensure_state(model);
  ++steps_;

  if (config_.weight_decay > 0.0) {
    // Decoupled decay: shrink weights toward zero before the step.
    const Scalar shrink =
        Scalar{1} - eta * static_cast<Scalar>(config_.weight_decay);
    for (std::size_t l = 0; l < model.layer_count(); ++l) {
      tensor::scale(shrink, model.layer(l).weights.view());
    }
  }

  switch (config_.kind) {
    case OptimizerKind::kSgd:
      model.axpy(-eta, grad);
      break;

    case OptimizerKind::kMomentum: {
      const Scalar mu = static_cast<Scalar>(config_.momentum);
      for (std::size_t l = 0; l < model.layer_count(); ++l) {
        auto apply = [&](tensor::MatrixView v, tensor::ConstMatrixView g,
                         tensor::MatrixView w) {
          Scalar* vs = v.data();
          const Scalar* gs = g.data();
          Scalar* ws = w.data();
          const Index n = v.size();
          for (Index i = 0; i < n; ++i) {
            vs[i] = mu * vs[i] + gs[i];
            ws[i] -= eta * vs[i];
          }
        };
        apply(velocity_.layer(l).weights.view(),
              grad.layer(l).weights.view(), model.layer(l).weights.view());
        apply(velocity_.layer(l).bias.view(), grad.layer(l).bias.view(),
              model.layer(l).bias.view());
      }
      break;
    }

    case OptimizerKind::kAdam: {
      const Scalar b1 = static_cast<Scalar>(config_.beta1);
      const Scalar b2 = static_cast<Scalar>(config_.beta2);
      const Scalar eps = static_cast<Scalar>(config_.epsilon);
      const Scalar bc1 =
          Scalar{1} - std::pow(b1, static_cast<Scalar>(steps_));
      const Scalar bc2 =
          Scalar{1} - std::pow(b2, static_cast<Scalar>(steps_));
      for (std::size_t l = 0; l < model.layer_count(); ++l) {
        auto apply = [&](tensor::MatrixView m1, tensor::MatrixView m2,
                         tensor::ConstMatrixView g, tensor::MatrixView w) {
          Scalar* ms = m1.data();
          Scalar* vs = m2.data();
          const Scalar* gs = g.data();
          Scalar* ws = w.data();
          const Index n = m1.size();
          for (Index i = 0; i < n; ++i) {
            ms[i] = b1 * ms[i] + (Scalar{1} - b1) * gs[i];
            vs[i] = b2 * vs[i] + (Scalar{1} - b2) * gs[i] * gs[i];
            const Scalar mhat = ms[i] / bc1;
            const Scalar vhat = vs[i] / bc2;
            ws[i] -= eta * mhat / (std::sqrt(vhat) + eps);
          }
        };
        apply(velocity_.layer(l).weights.view(),
              second_.layer(l).weights.view(), grad.layer(l).weights.view(),
              model.layer(l).weights.view());
        apply(velocity_.layer(l).bias.view(), second_.layer(l).bias.view(),
              grad.layer(l).bias.view(), model.layer(l).bias.view());
      }
      break;
    }
  }
}

void Optimizer::reset() {
  steps_ = 0;
  state_ready_ = false;
  velocity_ = Model();
  second_ = Model();
}

void Optimizer::serialize(ByteWriter& w) const {
  w.write_u64(steps_);
  w.write_u8(state_ready_ ? 1 : 0);
  if (!state_ready_) return;
  if (config_.kind != OptimizerKind::kSgd) write_params(w, velocity_);
  if (config_.kind == OptimizerKind::kAdam) write_params(w, second_);
}

bool Optimizer::deserialize(ByteReader& r, std::string* error) {
  std::uint64_t steps = 0;
  std::uint8_t has_state = 0;
  if (!r.read_u64(&steps) || !r.read_u8(&has_state)) {
    if (error) *error = "optimizer state truncated";
    return false;
  }
  reset();
  steps_ = steps;
  if (has_state == 0) return true;
  ensure_state(*shape_);
  if (config_.kind != OptimizerKind::kSgd &&
      !read_params(r, velocity_, error)) {
    return false;
  }
  if (config_.kind == OptimizerKind::kAdam &&
      !read_params(r, second_, error)) {
    return false;
  }
  return true;
}

const char* lr_schedule_name(LrSchedule s) {
  switch (s) {
    case LrSchedule::kConstant:    return "constant";
    case LrSchedule::kStepDecay:   return "step";
    case LrSchedule::kInverseTime: return "inverse-time";
  }
  return "?";
}

bool parse_lr_schedule(const std::string& name, LrSchedule& out) {
  if (name == "constant")     { out = LrSchedule::kConstant;    return true; }
  if (name == "step")         { out = LrSchedule::kStepDecay;   return true; }
  if (name == "inverse-time") { out = LrSchedule::kInverseTime; return true; }
  return false;
}

double lr_multiplier(const LrScheduleConfig& schedule, double progress) {
  HETSGD_ASSERT(progress >= 0.0, "negative training progress");
  switch (schedule.kind) {
    case LrSchedule::kConstant:
      return 1.0;
    case LrSchedule::kStepDecay: {
      HETSGD_ASSERT(schedule.step_every > 0.0, "step_every must be positive");
      const double steps = std::floor(progress / schedule.step_every);
      return std::pow(schedule.decay, steps);
    }
    case LrSchedule::kInverseTime:
      return 1.0 / (1.0 + schedule.decay * progress);
  }
  HETSGD_UNREACHABLE("unknown schedule");
}

}  // namespace hetsgd::nn
