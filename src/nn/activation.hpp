// Activation functions for the fully-connected layers.
//
// The paper uses sigmoid in hidden layers and softmax at the output
// (§VII-A Methodology); tanh/ReLU/identity are provided for the framework's
// role as a general testbed.
#pragma once

#include <string>

#include "tensor/matrix.hpp"
#include "tensor/microkernel.hpp"

namespace hetsgd::nn {

enum class Activation {
  kIdentity,
  kSigmoid,
  kTanh,
  kRelu,
};

const char* activation_name(Activation a);
bool parse_activation(const std::string& name, Activation& out);

// Applies the activation element-wise in place.
void activation_forward(Activation a, tensor::MatrixView m);

// Fused-GEMM epilogue computing bias-add + this activation during the C
// write-back (tensor::gemm_bias_act); equivalent to add_row_bias followed
// by activation_forward up to FP-contraction rounding.
tensor::Epilogue bias_act_epilogue(Activation a);

// Multiplies `delta` in place by f'(z) expressed through the *activated*
// values `activated` (all supported activations admit this form:
// sigmoid' = a(1-a), tanh' = 1-a^2, relu' = [a > 0], identity' = 1).
void activation_backward(Activation a, tensor::ConstMatrixView activated,
                         tensor::MatrixView delta);

// Scalar forms used by tests/gradient checks.
tensor::Scalar activation_apply(Activation a, tensor::Scalar x);
tensor::Scalar activation_derivative_from_output(Activation a,
                                                 tensor::Scalar activated);

}  // namespace hetsgd::nn
