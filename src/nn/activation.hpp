// Activation functions for the fully-connected layers.
//
// The paper uses sigmoid in hidden layers and softmax at the output
// (§VII-A Methodology); tanh/ReLU/identity are provided for the framework's
// role as a general testbed.
#pragma once

#include <string>

#include "tensor/matrix.hpp"

namespace hetsgd::nn {

enum class Activation {
  kIdentity,
  kSigmoid,
  kTanh,
  kRelu,
};

const char* activation_name(Activation a);
bool parse_activation(const std::string& name, Activation& out);

// Applies the activation element-wise in place.
void activation_forward(Activation a, tensor::MatrixView m);

// Multiplies `delta` in place by f'(z) expressed through the *activated*
// values `activated` (all supported activations admit this form:
// sigmoid' = a(1-a), tanh' = 1-a^2, relu' = [a > 0], identity' = 1).
void activation_backward(Activation a, tensor::ConstMatrixView activated,
                         tensor::MatrixView delta);

// Scalar forms used by tests/gradient checks.
tensor::Scalar activation_apply(Activation a, tensor::Scalar x);
tensor::Scalar activation_derivative_from_output(Activation a,
                                                 tensor::Scalar activated);

}  // namespace hetsgd::nn
