// LIBSVM-format reader/writer.
//
// The paper's four datasets (covtype, w8a, delicious, real-sim) ship in
// LIBSVM sparse text format; this reader densifies them the way the paper
// does ("we process all the datasets in dense format"). When the real files
// are present they can be loaded directly; the synthetic generators stand
// in when they are not.
#pragma once

#include <optional>
#include <string>

#include "data/dataset.hpp"

namespace hetsgd::data {

struct LibsvmReadOptions {
  // Dimension override; 0 means infer from the max feature index seen.
  tensor::Index dim = 0;
  // Labels in the file may be {-1, +1}, {1..K}, or {0..K-1}; they are
  // remapped to contiguous [0, K) in order of first appearance unless the
  // file already uses that encoding.
  // Cap on examples read; 0 means all.
  tensor::Index max_examples = 0;
  std::string dataset_name;  // defaults to the file path
};

// Parses a LIBSVM file into a dense Dataset. On malformed input (truncated
// pair, non-numeric index, index < 1, non-finite value, index beyond --dim)
// returns nullopt and sets *error to a "path: line N: ..." diagnostic.
std::optional<Dataset> try_read_libsvm(const std::string& path,
                                       const LibsvmReadOptions& options,
                                       std::string* error);

// Parses LIBSVM content from a string (unit tests). Same error contract as
// try_read_libsvm, with "line N: ..." diagnostics.
std::optional<Dataset> try_read_libsvm_string(const std::string& content,
                                              const LibsvmReadOptions& options,
                                              std::string* error);

// Aborting wrappers over the try_* readers for tools that have no recovery
// path: the parse diagnostic becomes the abort message.
Dataset read_libsvm(const std::string& path, const LibsvmReadOptions& options);
Dataset read_libsvm_string(const std::string& content,
                           const LibsvmReadOptions& options);

// Writes a dataset in LIBSVM format (omitting zeros). Round-trips with
// read_libsvm for finite data.
void write_libsvm(const Dataset& dataset, const std::string& path);

}  // namespace hetsgd::data
